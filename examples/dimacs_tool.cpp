// Command-line utility tying the I/O and persistence layers together:
// generate DIMACS instances, preprocess them, save/load the preprocessed
// artifacts, and answer queries — the workflow a downstream user of the
// library would script.
//
//   ./dimacs_tool generate --out=net --side=24 --seed=1
//       writes net.gr / net.co (triangulated planar mesh)
//   ./dimacs_tool preprocess --graph=net
//       writes net.tree / net.aug (decomposition + E+)
//   ./dimacs_tool query --graph=net --source=0 --target=575
//       loads artifacts and answers (validates against Dijkstra)
//   ./dimacs_tool demo [--side=20]
//       runs all three steps in a temp directory
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "core/serialize.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "separator/finders.hpp"
#include "util/cli.hpp"

using namespace sepsp;

namespace {

int generate(const Args& args) {
  const std::string out = args.get_string("out", "net");
  const auto side = args.get_uint("side", 24, 1);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const GeneratedGraph gg =
      make_triangulated_grid(side, side, WeightModel::uniform(1, 10), rng);
  {
    std::ofstream gr(out + ".gr");
    write_dimacs(gr, gg.graph);
  }
  {
    std::ofstream co(out + ".co");
    write_dimacs_coords(co, gg.coords);
  }
  std::printf("wrote %s.gr (%zu vertices, %zu arcs) and %s.co\n", out.c_str(),
              gg.graph.num_vertices(), gg.graph.num_edges(), out.c_str());
  return 0;
}

int preprocess(const Args& args) {
  const std::string name = args.get_string("graph", "net");
  std::ifstream gr(name + ".gr");
  std::string error;
  const auto g = read_dimacs(gr, &error);
  if (!g) {
    std::fprintf(stderr, "cannot read %s.gr: %s\n", name.c_str(),
                 error.c_str());
    return 1;
  }
  std::ifstream co(name + ".co");
  const auto coords = read_dimacs_coords(co, g->num_vertices(), &error);
  const Skeleton skel(*g);
  const SeparatorTree tree = build_separator_tree(
      skel, coords ? make_geometric_finder(*coords) : make_bfs_finder());
  if (const auto err = tree.validate(skel)) {
    std::fprintf(stderr, "decomposition invalid: %s\n", err->c_str());
    return 1;
  }
  const auto engine = SeparatorShortestPaths<>::build(*g, tree);
  {
    std::ofstream ts(name + ".tree", std::ios::binary);
    save_tree(ts, tree);
  }
  {
    std::ofstream as(name + ".aug", std::ios::binary);
    save_augmentation<TropicalD>(as, engine.augmentation());
  }
  std::printf("preprocessed %s: height %u, %zu shortcuts -> %s.tree, %s.aug\n",
              name.c_str(), tree.height(),
              engine.augmentation().shortcuts.size(), name.c_str(),
              name.c_str());
  return 0;
}

int query(const Args& args) {
  const std::string name = args.get_string("graph", "net");
  std::ifstream gr(name + ".gr");
  std::string error;
  const auto g = read_dimacs(gr, &error);
  if (!g) {
    std::fprintf(stderr, "cannot read %s.gr: %s\n", name.c_str(),
                 error.c_str());
    return 1;
  }
  std::ifstream as(name + ".aug", std::ios::binary);
  auto aug = load_augmentation<TropicalD>(as);
  if (!aug) {
    std::fprintf(stderr, "cannot read %s.aug (run preprocess first)\n",
                 name.c_str());
    return 1;
  }
  const auto engine =
      SeparatorShortestPaths<>::from_augmentation(*g, std::move(*aug));
  const auto source = static_cast<Vertex>(args.get_int("source", 0));
  const auto target = static_cast<Vertex>(
      args.get_int("target", static_cast<std::int64_t>(g->num_vertices()) - 1));
  const auto r = engine.distances(source);
  const DijkstraResult check = dijkstra(*g, source);
  std::printf("dist(%u -> %u) = %.6f (dijkstra: %.6f)\n", source, target,
              r.dist[target], check.dist[target]);
  return std::fabs(r.dist[target] - check.dist[target]) < 1e-6 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::string mode =
      args.positional().empty() ? "demo" : args.positional().front();
  if (mode == "generate") return generate(args);
  if (mode == "preprocess") return preprocess(args);
  if (mode == "query") return query(args);
  if (mode == "demo") {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "sepsp_dimacs_demo";
    fs::create_directories(dir);
    const std::string base = (dir / "net").string();
    const std::string side = std::to_string(args.get_int("side", 20));
    const char* gen_argv[] = {"tool", "--out", base.c_str(), "--side",
                              side.c_str()};
    const char* pre_argv[] = {"tool", "--graph", base.c_str()};
    if (generate(Args(5, gen_argv)) != 0) return 1;
    if (preprocess(Args(3, pre_argv)) != 0) return 1;
    if (query(Args(3, pre_argv)) != 0) return 1;
    std::printf("OK (artifacts in %s)\n", dir.string().c_str());
    return 0;
  }
  std::fprintf(stderr, "usage: %s generate|preprocess|query|demo [--flags]\n",
               args.program().c_str());
  return 2;
}
