// Planar road network with time-dependent penalties (paper remark v:
// "planar graphs"; remark iv: the decomposition depends only on the
// skeleton, so re-weighted rush-hour instances reuse the same tree).
//
// Scenario: a triangulated planar mesh as a road network. We decompose
// it once with the geometric (Miller–Teng–Vavasis-style) finder, then
// preprocess *two* weight assignments — off-peak and rush hour — on the
// same tree and compare routes.
//
//   ./road_network [--side=28] [--seed=3] [--trips=6]
#include <cmath>
#include <cstdio>

#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "core/path_tree.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace sepsp;

namespace {

// Rush hour: multiply each lane's travel time by a congestion factor
// that grows toward the mesh center (downtown).
Digraph congest(const GeneratedGraph& base) {
  double cx = 0, cy = 0;
  for (const auto& c : base.coords) {
    cx += c[0];
    cy += c[1];
  }
  cx /= static_cast<double>(base.coords.size());
  cy /= static_cast<double>(base.coords.size());
  double max_r = 1e-9;
  for (const auto& c : base.coords) {
    max_r = std::max(max_r, std::hypot(c[0] - cx, c[1] - cy));
  }
  GraphBuilder builder(base.graph.num_vertices());
  for (const EdgeTriple& e : base.graph.edge_list()) {
    const auto& c = base.coords[e.from];
    const double r = std::hypot(c[0] - cx, c[1] - cy) / max_r;
    const double factor = 1.0 + 3.0 * (1.0 - r);  // up to 4x downtown
    builder.add_edge(e.from, e.to, e.weight * factor);
  }
  return std::move(builder).build();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto side = args.get_uint("side", 28, 1);
  const auto trips = args.get_uint("trips", 6, 1);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 3)));

  const GeneratedGraph city =
      make_triangulated_grid(side, side, WeightModel::uniform(1, 6), rng);
  const Digraph rush = congest(city);
  std::printf("road network: %zu junctions, %zu lanes (planar mesh)\n",
              city.graph.num_vertices(), city.graph.num_edges());

  // One decomposition serves both weightings (remark iv).
  WallTimer t_tree;
  const SeparatorTree tree = build_separator_tree(
      Skeleton(city.graph), make_geometric_finder(city.coords));
  std::printf("decomposed once in %.1f ms (height %u, max |S| %zu)\n",
              t_tree.millis(), tree.height(), tree.stats().max_separator);

  const auto offpeak = SeparatorShortestPaths<>::build(city.graph, tree);
  const auto rushhour = SeparatorShortestPaths<>::build(rush, tree);

  Rng pick(11);
  double total_delay = 0;
  for (std::size_t trip = 0; trip < trips; ++trip) {
    const auto from =
        static_cast<Vertex>(pick.next_below(city.graph.num_vertices()));
    const auto to =
        static_cast<Vertex>(pick.next_below(city.graph.num_vertices()));
    const auto day = offpeak.distances(from);
    const auto jam = rushhour.distances(from);
    const PathTree day_route = extract_path_tree(city.graph, from, day.dist);
    const PathTree jam_route = extract_path_tree(rush, from, jam.dist);
    const std::size_t day_hops = day_route.path_to(to).size() - 1;
    const std::size_t jam_hops = jam_route.path_to(to).size() - 1;
    total_delay += jam.dist[to] - day.dist[to];
    std::printf(
        "trip %u->%u: off-peak %6.2f min (%2zu roads), rush %6.2f min "
        "(%2zu roads)%s\n",
        from, to, day.dist[to], day_hops, jam.dist[to], jam_hops,
        jam_hops != day_hops ? "  [rerouted]" : "");
  }
  std::printf("average rush-hour delay: %.2f min\n",
              total_delay / static_cast<double>(trips));

  // Validate both weightings against Dijkstra from one source.
  const Vertex probe = 0;
  const auto got_day = offpeak.distances(probe);
  const auto got_jam = rushhour.distances(probe);
  const auto want_day = dijkstra(city.graph, probe);
  const auto want_jam = dijkstra(rush, probe);
  for (Vertex v = 0; v < city.graph.num_vertices(); ++v) {
    if (std::fabs(got_day.dist[v] - want_day.dist[v]) > 1e-6 ||
        std::fabs(got_jam.dist[v] - want_jam.dist[v]) > 1e-6) {
      std::fprintf(stderr, "FAIL: mismatch vs Dijkstra\n");
      return 1;
    }
  }
  std::printf("OK (both weightings validated against Dijkstra)\n");
  return 0;
}
