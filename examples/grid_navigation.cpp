// Multi-source route planning on a 3-D grid world (the paper's
// "multi-dimensional grid-like graphs" motivation, remark v).
//
// Scenario: a warehouse with several floors modeled as a 3-D lattice;
// travel times differ per direction (conveyors). Dispatch needs
// distances from every depot to every cell — the classic s-sources
// workload where preprocessing once amortizes.
//
//   ./grid_navigation [--x=20 --y=20 --z=6] [--depots=5] [--seed=1]
#include <cmath>
#include <cstdio>

#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "core/path_tree.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace sepsp;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::vector<std::size_t> dims = {
      args.get_uint("x", 20, 1),
      args.get_uint("y", 20, 1),
      args.get_uint("z", 6, 1)};
  const auto depots = args.get_uint("depots", 5, 1);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  const GeneratedGraph world =
      make_grid(dims, WeightModel::uniform(0.5, 4.0), rng);
  const std::size_t n = world.graph.num_vertices();
  std::printf("warehouse %zux%zux%zu: %zu cells, %zu directed lanes\n",
              dims[0], dims[1], dims[2], n, world.graph.num_edges());

  // The grid's separator decomposition: axis-aligned plane cuts,
  // mu = (d-1)/d = 2/3.
  WallTimer t_prep;
  const SeparatorTree tree =
      build_separator_tree(Skeleton(world.graph), make_grid_finder(dims));
  const auto engine = SeparatorShortestPaths<>::build(world.graph, tree);
  std::printf("preprocessed in %.1f ms: height %u, %zu shortcuts\n",
              t_prep.millis(), tree.height(),
              engine.augmentation().shortcuts.size());

  // Depot positions.
  std::vector<Vertex> depot_cells;
  Rng pick(7);
  for (std::size_t d = 0; d < depots; ++d) {
    depot_cells.push_back(static_cast<Vertex>(pick.next_below(n)));
  }

  // Batch query (parallel over depots); then per-cell best depot.
  WallTimer t_query;
  const auto per_depot = engine.distances_batch(depot_cells);
  std::vector<std::size_t> best_depot(n, 0);
  std::vector<double> best_time(n);
  for (Vertex cell = 0; cell < n; ++cell) {
    best_time[cell] = per_depot[0].dist[cell];
    for (std::size_t d = 1; d < depots; ++d) {
      if (per_depot[d].dist[cell] < best_time[cell]) {
        best_time[cell] = per_depot[d].dist[cell];
        best_depot[cell] = d;
      }
    }
  }
  std::printf("%zu-depot coverage computed in %.1f ms\n", depots,
              t_query.millis());

  std::vector<std::size_t> served(depots, 0);
  double worst = 0;
  Vertex worst_cell = 0;
  for (Vertex cell = 0; cell < n; ++cell) {
    ++served[best_depot[cell]];
    if (best_time[cell] > worst) {
      worst = best_time[cell];
      worst_cell = cell;
    }
  }
  for (std::size_t d = 0; d < depots; ++d) {
    std::printf("  depot %zu at cell %u serves %zu cells\n", d,
                depot_cells[d], served[d]);
  }

  // Reconstruct the delivery route to the worst-served cell.
  const std::size_t d = best_depot[worst_cell];
  const PathTree route =
      extract_path_tree(world.graph, depot_cells[d], per_depot[d].dist);
  const auto hops = route.path_to(worst_cell).size() - 1;
  std::printf("worst-served cell %u: %.2f minutes from depot %zu (%zu hops)\n",
              worst_cell, worst, d, hops);

  // Spot-check one depot against Dijkstra.
  const DijkstraResult check = dijkstra(world.graph, depot_cells[0]);
  for (Vertex cell = 0; cell < n; ++cell) {
    if (std::fabs(check.dist[cell] - per_depot[0].dist[cell]) > 1e-6) {
      std::fprintf(stderr, "FAIL: mismatch vs Dijkstra at %u\n", cell);
      return 1;
    }
  }
  std::printf("OK (validated against Dijkstra)\n");
  return 0;
}
