// Project scheduling with difference constraints — the paper's
// "two variables per inequality" application (Section 1).
//
// Scenario: tasks on an assembly line, constraints of the form
//   start[j] - start[i] <= c   (max lag / min lead / windows).
// The constraint graph of a pipeline is path-like, so it has O(1)
// separators and the separator engine solves it in near-linear work.
//
//   ./constraint_solver [--stages=40] [--lanes=4] [--seed=2]
#include <cstdio>

#include "separator/finders.hpp"
#include "solver/difference_constraints.hpp"
#include "util/cli.hpp"

using namespace sepsp;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto stages = args.get_uint("stages", 40, 1);
  const auto lanes = args.get_uint("lanes", 4, 1);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 2)));

  // Variable (l, s) = start time of stage s on lane l.
  const std::size_t n = stages * lanes;
  auto var = [&](std::size_t lane, std::size_t stage) {
    return static_cast<std::uint32_t>(lane * stages + stage);
  };
  DifferenceSystem sys(n);
  std::size_t precedence = 0, windows = 0, sync = 0;
  for (std::size_t l = 0; l < lanes; ++l) {
    for (std::size_t s = 0; s + 1 < stages; ++s) {
      const double duration = rng.next_double(1.0, 5.0);
      // Precedence: the next stage starts only after this one finishes:
      // start[s] - start[s+1] <= -duration.
      sys.add(var(l, s + 1), var(l, s), -duration);
      ++precedence;
      // Window: the next stage must start within duration + slack:
      // start[s+1] - start[s] <= duration + slack.
      sys.add(var(l, s), var(l, s + 1), duration + rng.next_double(0.5, 3.0));
      ++windows;
    }
  }
  // Lane synchronization at inspection points: lanes may drift by <= 2.
  for (std::size_t s = 0; s < stages; s += 8) {
    for (std::size_t l = 0; l + 1 < lanes; ++l) {
      sys.add(var(l, s), var(l + 1, s), 2.0);
      sys.add(var(l + 1, s), var(l, s), 2.0);
      sync += 2;
    }
  }
  std::printf(
      "schedule: %zu variables; %zu precedence + %zu window + %zu sync "
      "constraints\n",
      n, precedence, windows, sync);

  const DifferenceSolution sol = sys.solve();
  if (!sol.feasible) {
    std::fprintf(stderr, "FAIL: expected feasible\n");
    return 1;
  }
  // Normalize so the earliest start is 0 (any shift stays feasible).
  double earliest = sol.x[0];
  for (const double x : sol.x) earliest = std::min(earliest, x);
  std::printf("feasible. lane-0 schedule (first 8 stages):\n  ");
  for (std::size_t s = 0; s < std::min<std::size_t>(8, stages); ++s) {
    std::printf("t%zu=%.1f ", s, sol.x[var(0, s)] - earliest);
  }
  std::printf("\n");

  // Now break it: a window too tight for the chain of durations.
  DifferenceSystem broken = sys;
  broken.add(var(0, 0), var(0, stages - 1), 1.0);  // whole lane in 1 minute
  const DifferenceSolution diag = broken.solve();
  if (diag.feasible) {
    std::fprintf(stderr, "FAIL: expected infeasible\n");
    return 1;
  }
  std::printf(
      "after adding 'lane 0 completes within 1 minute': infeasible, "
      "certificate cycle of %zu constraints\n",
      diag.certificate.size());

  // Cross-check with the Bellman–Ford reference solver.
  const auto ref = sys.solve_reference();
  if (!ref.feasible) {
    std::fprintf(stderr, "FAIL: reference disagrees\n");
    return 1;
  }
  std::printf("OK (engine and reference agree)\n");
  return 0;
}
