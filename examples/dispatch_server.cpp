// A dispatch server under live load: the sharded serving front-end
// (src/service/sharded.hpp) over a city grid, with concurrent ETA
// clients and an incident feed swapping weighting epochs underneath
// them.
//
// Scenario: emergency dispatch keeps asking "distances from depot d"
// while traffic incidents keep changing road speeds. The front-end
// routes each request to one of its topology-placed QueryService
// shards (one per NUMA node by default; --shards overrides); every
// shard coalesces concurrent requests into source-batched kernel
// calls, answers repeats from its epoch-tagged distance cache, and
// each incident batch fans out as parallel per-shard RCU-style
// snapshot swaps — clients are never blocked and never see a
// half-updated weighting, and replies are bit-identical regardless of
// which shard answers.
//
// With --eps > 0 the fleet runs in approximate mode: every shard also
// carries the (1 + eps)-approximate engine (src/approx) per epoch,
// distance and st-distance requests resolve against it (paths have no
// approximate spelling and stay exact), each reply is tagged with the
// engine's certified error bound, and the final validation checks the
// one-sided sandwich dist <= approx <= (1 + bound) * dist against
// Dijkstra on the final weights.
//
//   ./dispatch_server [--side=32] [--clients=4] [--requests=200]
//                     [--incidents=8] [--depots=12] [--shards=0]
//                     [--seed=7] [--eps=0]
#include <atomic>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "baseline/dijkstra.hpp"
#include "core/incremental.hpp"
#include "graph/generators.hpp"
#include "obs/stats.hpp"
#include "separator/finders.hpp"
#include "service/service.hpp"
#include "service/sharded.hpp"
#include "util/cli.hpp"

using namespace sepsp;
using service::Reply;
using service::ServiceOptions;
using service::ShardedOptions;
using service::ShardedService;
using service::SingleSource;
using service::StDistance;
using service::StPath;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto side = args.get_uint("side", 32, 2);
  const auto clients = args.get_uint("clients", 4, 1);
  const auto requests = args.get_uint("requests", 200, 1);
  const auto incidents = args.get_uint("incidents", 8, 0);
  const auto depots = args.get_uint("depots", 12, 1);
  const auto shards = args.get_uint("shards", 0, 0);
  const double eps = args.get_double("eps", 0.0);
  const bool approx = eps > 0.0;
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));

  const std::vector<std::size_t> dims = {side, side};
  const GeneratedGraph city = make_grid(dims, WeightModel::uniform(1, 6), rng);
  const std::size_t n = city.graph.num_vertices();
  std::printf("city grid %zux%zu: %zu intersections, %zu road segments\n",
              side, side, n, city.graph.num_edges());

  const SeparatorTree tree =
      build_separator_tree(Skeleton(city.graph), make_grid_finder(dims));

  std::vector<Vertex> depot_pool(depots);
  for (Vertex& d : depot_pool) {
    d = static_cast<Vertex>(rng.next_below(n));
  }

  ShardedOptions opts;
  opts.shards = static_cast<unsigned>(shards);  // 0 = one per NUMA node
  opts.shard.lanes = 8;
  opts.shard.max_delay_us = 150;
  opts.shard.cache_capacity_bytes = std::size_t{8} << 20;
  // Depot traffic is skewed: replicate the depots across every shard
  // so their cached vectors serve from each shard's local cache.
  opts.routing.kind = service::RoutingPolicy::Kind::kHotReplicated;
  opts.routing.hot_sources = depot_pool;
  if (approx) {
    opts.shard.approx.enabled = true;
    opts.shard.approx.eps = eps;
  }
  ShardedService service(city.graph, tree, opts);
  std::printf("serving with %zu shard(s) over %zu NUMA node(s), %zu cores\n",
              service.shard_count(), service.topology().nodes.size(),
              service.topology().physical_cores);
  if (approx) {
    std::printf("approximate mode: eps = %.3f (ETAs may overshoot by at most "
                "the replies' tagged bound)\n", eps);
  }

  // Clients: closed-loop ETA queries against the depot pool. Most
  // requests want the full distance vector from a depot; every fourth
  // is a point-to-point question ("how far / which way from depot d to
  // incident site t?") answered at submit time from the hub labels.
  std::atomic<std::uint64_t> ok{0}, hits{0}, failures{0};
  // Largest certified error bound tagged on any reply a client saw
  // (always 0 in exact mode; per-client slots, max-reduced after join).
  std::vector<double> bound_seen(clients, 0.0);
  std::vector<std::thread> fleet;
  fleet.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      Rng pick(100 + c);
      for (std::size_t i = 0; i < requests; ++i) {
        const Vertex depot = depot_pool[pick.next_below(depot_pool.size())];
        Reply reply;
        if (i % 4 == 3) {
          const Vertex site = static_cast<Vertex>(pick.next_below(n));
          // Paths have no approximate spelling: the every-8th StPath
          // request stays exact even in --eps mode.
          reply = (i % 8 == 7)
                      ? service.query(StPath{depot, site})
                      : service.query(StDistance{depot, site, approx});
        } else {
          reply = service.query(SingleSource{depot, approx});
        }
        if (!reply.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        ok.fetch_add(1, std::memory_order_relaxed);
        if (reply.cache_hit) hits.fetch_add(1, std::memory_order_relaxed);
        bound_seen[c] = std::max(bound_seen[c], reply.error_bound);
      }
    });
  }

  // Incident feed: weight updates applied as epoch swaps while the
  // fleet keeps querying. Remember the final weight of every touched
  // road for the Dijkstra validation below.
  const auto edges = city.graph.edge_list();
  std::map<std::pair<Vertex, Vertex>, double> final_weight;
  std::thread incident_feed([&] {
    Rng pick(17);
    for (std::size_t i = 0; i < incidents; ++i) {
      const EdgeTriple& road = edges[pick.next_below(edges.size())];
      const double new_time = pick.next_bool(0.7) ? road.weight * 4.0
                                                  : road.weight * 0.5;
      final_weight[{road.from, road.to}] = new_time;
      const std::uint64_t epoch = service.apply_updates(
          std::vector<service::EdgeUpdate>{{road.from, road.to, new_time}});
      std::printf("incident %2zu: road %4u->%4u now %5.2f min -> epoch %llu\n",
                  i, road.from, road.to, new_time,
                  static_cast<unsigned long long>(epoch));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (std::thread& t : fleet) t.join();
  incident_feed.join();

  std::printf("\nfleet done: %llu ok (%llu cache hits), %llu failed\n",
              static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(hits.load()),
              static_cast<unsigned long long>(failures.load()));
  const auto sharded_stats = service.stats();
  sharded_stats.total.print(std::cout);
  std::printf("shard balance %.3f over %zu shard(s); %llu swap fan-outs, "
              "mean wall %.1f us\n",
              sharded_stats.completed_balance(), sharded_stats.shards.size(),
              static_cast<unsigned long long>(sharded_stats.swap_fanouts),
              sharded_stats.mean_swap_wall_us());

  if (obs::compiled_in()) {
    const auto snap = obs::StatsRegistry::instance().snapshot();
    for (const auto& h : snap.histograms) {
      if (h.name == "service.coalesce_us" && h.count > 0) {
        std::printf("coalesce wait: ~p50 %.0f us, ~p99 %.0f us (%llu batches)\n",
                    obs::StatsSnapshot::quantile(h, 0.5),
                    obs::StatsSnapshot::quantile(h, 0.99),
                    static_cast<unsigned long long>(h.count));
      }
    }
  }

  // Validate the final epoch against Dijkstra on the final weights.
  GraphBuilder b(n);
  for (const EdgeTriple& e : edges) {
    const auto it = final_weight.find({e.from, e.to});
    b.add_edge(e.from, e.to,
               it == final_weight.end() ? e.weight : it->second);
  }
  const Digraph current = std::move(b).build();
  const Reply probe = service.query(depot_pool[0]);
  const auto want = dijkstra(current, depot_pool[0]);
  for (Vertex v = 0; v < n; ++v) {
    if (std::fabs(probe.dist()[v] - want.dist[v]) > 1e-6) {
      std::fprintf(stderr, "FAIL: drift at %u\n", v);
      return 1;
    }
  }
  // And the point-to-point path: exact distance, and a route whose
  // re-walked weight over the final road network equals that distance.
  const Vertex far_site = static_cast<Vertex>(n - 1);
  const Reply st_probe = service.query(StPath{depot_pool[0], far_site});
  if (std::fabs(st_probe.distance() - want.dist[far_site]) > 1e-6) {
    std::fprintf(stderr, "FAIL: st-distance drift at %u\n", far_site);
    return 1;
  }
  double walked = 0;
  const auto& route = st_probe.path();
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    double w = 0;
    if (!current.find_arc(route[i], route[i + 1], &w)) {
      std::fprintf(stderr, "FAIL: st route uses missing road %u->%u\n",
                   route[i], route[i + 1]);
      return 1;
    }
    walked += w;
  }
  if (std::fabs(walked - st_probe.distance()) > 1e-6) {
    std::fprintf(stderr, "FAIL: st route weight %f != distance %f\n", walked,
                 st_probe.distance());
    return 1;
  }
  // In --eps mode, probe the approximate lane too. Every approximate
  // ETA must sandwich one-sidedly against the Dijkstra oracle:
  // dist <= approx <= (1 + bound) * dist, with `bound` taken from the
  // reply's own error tag — the contract every client relied on above.
  if (approx) {
    double fleet_bound = 0.0;
    for (const double bnd : bound_seen) fleet_bound = std::max(fleet_bound, bnd);
    const Reply aprobe = service.query(SingleSource{depot_pool[0], true});
    if (!aprobe.ok() || aprobe.error_bound <= 0.0) {
      std::fprintf(stderr, "FAIL: approx reply lost its error-bound tag\n");
      return 1;
    }
    double max_rel = 0.0;
    for (Vertex v = 0; v < n; ++v) {
      const double got = aprobe.dist()[v];
      const double truth = want.dist[v];
      if (std::isinf(truth)) {
        if (!std::isinf(got)) {
          std::fprintf(stderr, "FAIL: approx ETA reaches unreachable %u\n", v);
          return 1;
        }
        continue;
      }
      if (got < truth - 1e-6 ||
          got > (1.0 + aprobe.error_bound) * truth + 1e-6) {
        std::fprintf(stderr,
                     "FAIL: approx ETA at %u is %f, outside [%f, %f]\n", v,
                     got, truth, (1.0 + aprobe.error_bound) * truth);
        return 1;
      }
      if (truth > 0) max_rel = std::max(max_rel, (got - truth) / truth);
    }
    std::printf("approx lane: replies tagged bound %.4f (fleet saw %.4f); "
                "measured max relative error %.4f\n",
                aprobe.error_bound, fleet_bound, max_rel);
  }
  std::printf(
      "OK (final epoch %llu validated against Dijkstra; st route %zu hops)\n",
      static_cast<unsigned long long>(probe.epoch), route.size());
  return 0;
}
