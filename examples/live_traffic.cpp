// Live traffic updates on a road grid with the incremental engine
// (paper remark iv: one decomposition for every weighting).
//
// Scenario: a dispatch service keeps shortest-path state over a city
// grid while incidents change road speeds. A full preprocessing run per
// incident would be wasteful; the incremental engine recomputes only
// the decomposition nodes an incident actually affects and patches E+
// in place.
//
//   ./live_traffic [--side=40] [--incidents=12] [--seed=6]
#include <cmath>
#include <cstdio>

#include "baseline/dijkstra.hpp"
#include "core/incremental.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace sepsp;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto side = args.get_uint("side", 40, 1);
  const auto incidents =
      args.get_uint("incidents", 12, 1);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 6)));

  const std::vector<std::size_t> dims = {side, side};
  const GeneratedGraph city = make_grid(dims, WeightModel::uniform(1, 6), rng);
  const std::size_t n = city.graph.num_vertices();
  std::printf("city grid %zux%zu: %zu intersections, %zu road segments\n",
              side, side, n, city.graph.num_edges());

  const SeparatorTree tree =
      build_separator_tree(Skeleton(city.graph), make_grid_finder(dims));
  WallTimer t_build;
  IncrementalEngine engine = IncrementalEngine::build(city.graph, tree);
  const double build_ms = t_build.millis();
  std::printf("initial preprocessing: %.1f ms (%zu tree nodes)\n", build_ms,
              tree.num_nodes());

  const Vertex dispatch = 0;
  const auto hospital = static_cast<Vertex>(n - 1);
  double baseline_eta = engine.distances(dispatch).dist[hospital];
  std::printf("baseline ETA dispatch -> hospital: %.2f min\n", baseline_eta);

  const auto edges = city.graph.edge_list();
  Rng pick(17);
  double total_apply_ms = 0;
  std::size_t total_nodes = 0;
  for (std::size_t i = 0; i < incidents; ++i) {
    const EdgeTriple& road = edges[pick.next_below(edges.size())];
    const bool jam = pick.next_bool(0.7);
    const double new_time = jam ? road.weight * pick.next_double(3, 8)
                                : road.weight * 0.5;
    engine.update_edge(road.from, road.to, new_time);
    WallTimer t_apply;
    const std::size_t touched = engine.apply();
    const double apply_ms = t_apply.millis();
    total_apply_ms += apply_ms;
    total_nodes += touched;
    const double eta = engine.distances(dispatch).dist[hospital];
    std::printf(
        "incident %2zu: road %4u->%4u %s to %5.2f | %2zu nodes recomputed "
        "in %5.2f ms | ETA %6.2f%s\n",
        i, road.from, road.to, jam ? "jammed " : "cleared", new_time, touched,
        apply_ms, eta,
        std::fabs(eta - baseline_eta) > 1e-9 ? "  [changed]" : "");
    baseline_eta = eta;
  }
  std::printf(
      "avg per incident: %.2f ms, %.1f nodes (vs %.1f ms full rebuild, "
      "%zu nodes)\n",
      total_apply_ms / static_cast<double>(incidents),
      static_cast<double>(total_nodes) / static_cast<double>(incidents),
      build_ms, tree.num_nodes());

  // Validate the final state against Dijkstra on the current weights.
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u) {
    for (const Arc& a : city.graph.out(u)) {
      b.add_edge(u, a.to, engine.weight(u, a.to));
    }
  }
  const Digraph current = std::move(b).build();
  const auto got = engine.distances(dispatch);
  const auto want = dijkstra(current, dispatch);
  for (Vertex v = 0; v < n; ++v) {
    if (std::fabs(got.dist[v] - want.dist[v]) > 1e-6) {
      std::fprintf(stderr, "FAIL: drift at %u\n", v);
      return 1;
    }
  }
  std::printf("OK (final state validated against Dijkstra)\n");
  return 0;
}
