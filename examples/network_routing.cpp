// Compact routing on a mesh network (the Section-6 "compact routing
// table" deliverable in action).
//
// Scenario: routers on a planar mesh forward packets using only their
// local table (hub labels + a leaf next-hop matrix) — no router knows
// the whole topology, yet every packet follows an exact shortest path.
//
//   ./network_routing [--side=16] [--packets=8] [--seed=5]
#include <cmath>
#include <cstdio>

#include "baseline/dijkstra.hpp"
#include "core/routing.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace sepsp;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto side = args.get_uint("side", 16, 1);
  const auto packets = args.get_uint("packets", 8, 1);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 5)));

  const GeneratedGraph net =
      make_triangulated_grid(side, side, WeightModel::uniform(1, 10), rng);
  const std::size_t n = net.graph.num_vertices();
  std::printf("mesh network: %zu routers, %zu links\n", n,
              net.graph.num_edges());

  WallTimer t_build;
  const SeparatorTree tree = build_separator_tree(
      Skeleton(net.graph), make_geometric_finder(net.coords));
  const RoutingScheme scheme = RoutingScheme::build(net.graph, tree);
  std::printf(
      "routing tables built in %.1f ms: %zu total entries "
      "(%.1f per router; a full next-hop matrix would need %zu)\n",
      t_build.millis(), scheme.total_entries(),
      static_cast<double>(scheme.total_entries()) / static_cast<double>(n),
      n * n);

  Rng pick(9);
  for (std::size_t p = 0; p < packets; ++p) {
    const auto src = static_cast<Vertex>(pick.next_below(n));
    const auto dst = static_cast<Vertex>(pick.next_below(n));
    const auto path = scheme.route(src, dst);
    const DijkstraResult truth = dijkstra(net.graph, src);
    double latency = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      double w = 0;
      net.graph.find_arc(path[i], path[i + 1], &w);
      latency += w;
    }
    std::printf("packet %zu: %4u -> %4u  %2zu hops, latency %6.2f", p, src,
                dst, path.empty() ? 0 : path.size() - 1, latency);
    if (std::fabs(latency - truth.dist[dst]) > 1e-6) {
      std::printf("  MISMATCH (optimal %.2f)\n", truth.dist[dst]);
      return 1;
    }
    std::printf("  (optimal)\n");
  }

  // Link failure drill: drop a link on a used path, rebuild, re-route.
  const auto demo_src = static_cast<Vertex>(0);
  const auto demo_dst = static_cast<Vertex>(n - 1);
  const auto before = scheme.route(demo_src, demo_dst);
  if (before.size() >= 3) {
    GraphBuilder builder(n);
    for (const EdgeTriple& e : net.graph.edge_list()) {
      if (!(e.from == before[1] && e.to == before[2]) &&
          !(e.from == before[2] && e.to == before[1])) {
        builder.add_edge(e.from, e.to, e.weight);
      }
    }
    const Digraph degraded = std::move(builder).build();
    // Remark iv: the old decomposition still covers the degraded
    // skeleton (dropping edges cannot break separation).
    const RoutingScheme rerouted = RoutingScheme::build(degraded, tree);
    const auto after = rerouted.route(demo_src, demo_dst);
    const DijkstraResult truth = dijkstra(degraded, demo_src);
    double latency = 0;
    for (std::size_t i = 0; i + 1 < after.size(); ++i) {
      double w = 0;
      degraded.find_arc(after[i], after[i + 1], &w);
      latency += w;
    }
    std::printf(
        "link %u--%u failed: route %u -> %u now %zu hops, latency %.2f "
        "(optimal %.2f)\n",
        before[1], before[2], demo_src, demo_dst,
        after.empty() ? 0 : after.size() - 1, latency, truth.dist[demo_dst]);
    if (std::fabs(latency - truth.dist[demo_dst]) > 1e-6) {
      std::printf("FAIL: rerouted path is not optimal\n");
      return 1;
    }
  }
  std::printf("OK\n");
  return 0;
}
