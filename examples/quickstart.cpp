// Quickstart: shortest paths on a weighted grid with the separator
// engine, compared against Dijkstra.
//
//   ./quickstart [--rows=32] [--cols=32] [--sources=4] [--seed=1]
//                [--stats]   (print engine + process observability)
#include <cstdio>
#include <iostream>

#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "obs/sink.hpp"
#include "core/path_tree.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace sepsp;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto rows = args.get_uint("rows", 32, 1);
  const auto cols = args.get_uint("cols", 32, 1);
  const auto num_sources = args.get_uint("sources", 4, 1);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  // 1. A weighted directed grid (independent weights per direction).
  const std::vector<std::size_t> dims = {cols, rows};
  const GeneratedGraph gg =
      make_grid(dims, WeightModel::uniform(1.0, 10.0), rng);
  std::printf("grid %zux%zu: n=%zu m=%zu\n", rows, cols,
              gg.graph.num_vertices(), gg.graph.num_edges());

  // 2. Separator decomposition of the (undirected, unweighted) skeleton.
  const Skeleton skel(gg.graph);
  WallTimer t_tree;
  const SeparatorTree tree = build_separator_tree(skel, make_grid_finder(dims));
  const auto stats = tree.stats();
  std::printf("decomposition: %zu nodes, height %u, max |S|=%zu (%.1f ms)\n",
              stats.num_nodes, stats.height, stats.max_separator,
              t_tree.millis());

  // 3. Preprocess: build the shortcut set E+ (Algorithm 4.1).
  WallTimer t_build;
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const auto& aug = engine.augmentation();
  std::printf("E+: %zu shortcuts, diameter bound %zu (%.1f ms)\n",
              aug.shortcuts.size(), aug.diameter_bound(), t_build.millis());

  // 4. Query several sources; cross-check against Dijkstra.
  Rng pick(7);
  for (std::size_t s = 0; s < num_sources; ++s) {
    const auto source =
        static_cast<Vertex>(pick.next_below(gg.graph.num_vertices()));
    WallTimer t_query;
    const QueryResult<TropicalD> r = engine.distances(source);
    const double query_ms = t_query.millis();
    const DijkstraResult check = dijkstra(gg.graph, source);
    double max_err = 0;
    std::size_t reached = 0;
    for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
      if (std::isfinite(check.dist[v])) {
        ++reached;
        max_err = std::max(max_err, std::fabs(r.dist[v] - check.dist[v]));
      }
    }
    // 5. Recover an explicit shortest path in the original graph.
    const auto target = static_cast<Vertex>(gg.graph.num_vertices() - 1);
    const PathTree tree_sp = extract_path_tree(gg.graph, source, r.dist);
    const auto path = tree_sp.path_to(target);
    std::printf(
        "source %5u: %zu reached, query %.2f ms (%llu scans), "
        "max |err| vs Dijkstra %.2e, path to %u has %zu hops\n",
        source, reached, query_ms,
        static_cast<unsigned long long>(r.edges_scanned), max_err, target,
        path.empty() ? 0 : path.size() - 1);
    if (max_err > 1e-6) {
      std::fprintf(stderr, "FAIL: distances disagree with Dijkstra\n");
      return 1;
    }
  }
  // 6. Observability: schedule shape + cumulative query counters
  //    (dynamic counters stay zero when built with SEPSP_OBS=OFF).
  if (args.get_bool("stats", false)) {
    engine.stats().print(std::cout);
    if (obs::compiled_in()) {
      obs::print_all(std::cout);
    }
  }
  std::printf("OK\n");
  return 0;
}
