// Dependency-impact audit via the reachability engine.
//
// Scenario: a layered build/dependency DAG (modules on a grid of
// packages x layers, edges to the next layer). "If module X changes,
// what can be affected?" is reachability from X — asked for many X, so
// the preprocess-once separator engine fits. Results are cross-checked
// against BFS and the dense transitive closure.
//
//   ./reachability_audit [--packages=24] [--layers=24] [--seed=4]
#include <cstdio>

#include "baseline/reach.hpp"
#include "core/reachability.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace sepsp;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto packages = args.get_uint("packages", 24, 1);
  const auto layers = args.get_uint("layers", 24, 1);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 4)));

  // Module (p, l) may depend on modules (p', l+1) for nearby p'.
  const std::size_t n = packages * layers;
  auto id = [&](std::size_t p, std::size_t l) {
    return static_cast<Vertex>(l * packages + p);
  };
  GraphBuilder builder(n);
  std::size_t deps = 0;
  for (std::size_t l = 0; l + 1 < layers; ++l) {
    for (std::size_t p = 0; p < packages; ++p) {
      for (std::size_t dp = 0; dp < 3; ++dp) {
        const std::size_t p2 =
            (p + rng.next_below(5) + packages - 2) % packages;
        if (rng.next_bool(0.6)) {
          builder.add_edge(id(p, l), id(p2, l + 1), 1.0);
          ++deps;
        }
      }
    }
  }
  const Digraph dag = std::move(builder).build();
  std::printf("dependency graph: %zu modules, %zu edges, %zu layers\n", n,
              dag.num_edges(), layers);

  WallTimer t_prep;
  const SeparatorTree tree =
      build_separator_tree(Skeleton(dag), make_bfs_finder());
  const ReachabilityEngine engine = ReachabilityEngine::build(dag, tree);
  std::printf("preprocessed in %.1f ms (%zu Boolean shortcuts)\n",
              t_prep.millis(), engine.augmentation().shortcuts.size());

  // Audit every module in layer 0: blast radius of a change.
  WallTimer t_audit;
  std::size_t widest = 0;
  Vertex widest_module = 0;
  for (std::size_t p = 0; p < packages; ++p) {
    const auto affected = engine.reachable_from(id(p, 0));
    std::size_t count = 0;
    for (const auto bit : affected) count += bit;
    if (count > widest) {
      widest = count;
      widest_module = id(p, 0);
    }
  }
  std::printf(
      "audited %zu roots in %.1f ms; widest blast radius: module %u "
      "affects %zu of %zu modules\n",
      packages, t_audit.millis(), widest_module, widest, n);

  // Validate against BFS and the dense closure.
  const BitMatrix closure = transitive_closure_dense(dag);
  for (const Vertex probe : {id(0, 0), id(packages / 2, 0), widest_module}) {
    const auto got = engine.reachable_from(probe);
    const auto want = bfs_reachable(dag, probe);
    for (Vertex v = 0; v < n; ++v) {
      if ((got[v] != 0) != (want[v] != 0) ||
          (got[v] != 0) != closure.get(probe, v)) {
        std::fprintf(stderr, "FAIL: mismatch at %u -> %u\n", probe, v);
        return 1;
      }
    }
  }
  std::printf("OK (validated against BFS and dense closure)\n");
  return 0;
}
