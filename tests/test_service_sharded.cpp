// The sharded serving front-end (src/service/sharded.hpp): topology
// discovery, routing/ledger balance, memcmp parity against a
// single-instance oracle, and epoch-swap consistency across shards —
// including a concurrent update-stream stress that doubles as the TSan
// workload for the sharded path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "core/incremental.hpp"
#include "graph/generators.hpp"
#include "pram/topology.hpp"
#include "separator/finders.hpp"
#include "service/service.hpp"
#include "service/sharded.hpp"

namespace sepsp {
namespace {

using service::EdgeUpdate;
using service::QueryService;
using service::Reply;
using service::RoutingPolicy;
using service::ServiceOptions;
using service::ShardedOptions;
using service::ShardedService;
using service::ShardedStats;
using service::SingleSource;
using service::StDistance;
using service::StPath;

struct Fixture {
  GeneratedGraph gg;
  SeparatorTree tree;
};

Fixture make_grid_fixture(std::size_t side, std::uint64_t seed) {
  Rng rng(seed);
  Fixture f{make_grid({side, side}, WeightModel::uniform(1, 9), rng), {}};
  f.tree = build_separator_tree(Skeleton(f.gg.graph),
                                make_grid_finder({side, side}));
  return f;
}

ServiceOptions lean_options() {
  ServiceOptions o;
  o.max_delay_us = 50;
  o.point_to_point = false;
  return o;
}

TEST(Topology, DiscoversAtLeastOneNodeCoveringAllCpus) {
  const pram::Topology& topo = pram::Topology::system();
  ASSERT_GE(topo.nodes.size(), 1u);
  EXPECT_GE(topo.logical_cpus, 1u);
  EXPECT_GE(topo.physical_cores, 1u);
  EXPECT_LE(topo.physical_cores, topo.logical_cpus);
  std::set<int> covered;
  for (const auto& node : topo.nodes) {
    EXPECT_FALSE(node.cpus.empty()) << "node " << node.id;
    covered.insert(node.cpus.begin(), node.cpus.end());
  }
  EXPECT_EQ(covered.size(), topo.logical_cpus);
  // home_of round-robins over the node list.
  EXPECT_EQ(topo.home_of(0).id, topo.nodes[0].id);
  EXPECT_EQ(topo.home_of(topo.nodes.size()).id, topo.nodes[0].id);
}

TEST(Topology, ParseCpulistHandlesRangesAndGarbage) {
  EXPECT_EQ(pram::parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(pram::parse_cpulist("0,2,4"), (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(pram::parse_cpulist("0-1,8-9,4"),
            (std::vector<int>{0, 1, 4, 8, 9}));
  EXPECT_EQ(pram::parse_cpulist("3,3,1-3"), (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(pram::parse_cpulist("").empty());
  EXPECT_TRUE(pram::parse_cpulist("whatever").empty());
}

TEST(Sharded, AutoShardCountFollowsTopology) {
  const Fixture f = make_grid_fixture(7, 1);
  ShardedOptions opts;
  opts.shard = lean_options();
  ShardedService svc(f.gg.graph, f.tree, opts);
  EXPECT_EQ(svc.shard_count(), svc.topology().nodes.size());
}

TEST(Sharded, CacheBudgetDividesAcrossShards) {
  const pram::Topology topo = pram::Topology::discover();
  ShardedOptions opts;
  opts.shards = 4;
  opts.shard.cache_capacity_bytes = 64 << 10;
  opts.shard.st_cache_capacity_bytes = 32 << 10;
  const ShardedOptions resolved = opts.validated(topo);
  EXPECT_EQ(resolved.shard.cache_capacity_bytes, (64u << 10) / 4);
  EXPECT_EQ(resolved.shard.st_cache_capacity_bytes, (32u << 10) / 4);
  ShardedOptions keep = opts;
  keep.divide_cache_budget = false;
  EXPECT_EQ(keep.validated(topo).shard.cache_capacity_bytes, 64u << 10);
}

TEST(Sharded, LedgerBalancesAcrossShards) {
  // Wide uniform traffic over 4 shards: the aggregate ledger must obey
  // the single-instance invariants, per-shard counters must sum to it,
  // and hash routing must not starve any shard.
  const Fixture f = make_grid_fixture(9, 2);
  ShardedOptions opts;
  opts.shards = 4;
  opts.shard = lean_options();
  ShardedService svc(f.gg.graph, f.tree, opts);
  const auto n = f.gg.graph.num_vertices();
  for (Vertex s = 0; s < n; ++s) {
    ASSERT_TRUE(svc.query(SingleSource{s}).ok());
  }
  const ShardedStats st = svc.stats();
  EXPECT_EQ(st.total.submitted, n);
  EXPECT_EQ(st.total.completed, n);
  EXPECT_EQ(st.total.shed + st.total.stopped, 0u);
  EXPECT_EQ(st.total.cache_hits + st.total.cache_misses, st.total.completed);
  std::uint64_t sum = 0;
  for (const auto& shard : st.shards) {
    sum += shard.completed;
    EXPECT_GT(shard.completed, 0u) << "a shard was starved";
  }
  EXPECT_EQ(sum, st.total.completed);
  EXPECT_GT(st.completed_balance(), 0.0);
}

TEST(Sharded, HotReplicatedRoutingSpreadsTheHotSet) {
  const Fixture f = make_grid_fixture(7, 3);
  ShardedOptions opts;
  opts.shards = 4;
  opts.shard = lean_options();
  opts.routing.kind = RoutingPolicy::Kind::kHotReplicated;
  opts.routing.hot_sources = {5};
  ShardedService svc(f.gg.graph, f.tree, opts);
  // A hot source's consecutive submits round-robin over every shard; a
  // cold source sticks to its hash home.
  std::set<std::size_t> hot_homes, cold_homes;
  for (int i = 0; i < 8; ++i) {
    hot_homes.insert(svc.shard_of_source(5));
    cold_homes.insert(svc.shard_of_source(6));
  }
  EXPECT_EQ(hot_homes.size(), 4u);
  EXPECT_EQ(cold_homes.size(), 1u);
}

TEST(Sharded, RepliesAreBitIdenticalToSingleInstanceOracle) {
  // Mixed SingleSource / StDistance / StPath traffic: every sharded
  // reply payload must memcmp-equal the single-instance oracle's. This
  // is the correctness contract that makes sharding a pure
  // load-balancing decision.
  const Fixture f = make_grid_fixture(7, 4);
  ServiceOptions so = lean_options();
  so.point_to_point = true;
  QueryService oracle(IncrementalEngine::build(f.gg.graph, f.tree), so);
  ShardedOptions opts;
  opts.shards = 3;
  opts.shard = so;
  ShardedService sharded(f.gg.graph, f.tree, opts);
  const auto n = f.gg.graph.num_vertices();
  Rng pick(11);
  for (int i = 0; i < 24; ++i) {
    const auto s = static_cast<Vertex>(pick.next_below(n));
    const auto t = static_cast<Vertex>(pick.next_below(n));
    const Reply a = oracle.query(SingleSource{s});
    const Reply b = sharded.query(SingleSource{s});
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a.dist().size(), b.dist().size());
    EXPECT_EQ(std::memcmp(a.dist().data(), b.dist().data(),
                          a.dist().size() * sizeof(double)),
              0)
        << "single-source divergence at s=" << s;
    const Reply c = oracle.query(StDistance{s, t});
    const Reply d = sharded.query(StDistance{s, t});
    ASSERT_TRUE(c.ok() && d.ok());
    EXPECT_EQ(std::memcmp(&c.st->distance, &d.st->distance, sizeof(double)),
              0)
        << "st-distance divergence at " << s << "->" << t;
    const Reply e = oracle.query(StPath{s, t});
    const Reply g = sharded.query(StPath{s, t});
    ASSERT_TRUE(e.ok() && g.ok());
    EXPECT_EQ(std::memcmp(&e.st->distance, &g.st->distance, sizeof(double)),
              0);
    EXPECT_EQ(e.st->path, g.st->path)
        << "st-path divergence at " << s << "->" << t;
  }
}

TEST(Sharded, UpdateFanOutLandsEveryShardOnTheSameEpoch) {
  const Fixture f = make_grid_fixture(7, 5);
  ShardedOptions opts;
  opts.shards = 3;
  opts.shard = lean_options();
  ShardedService svc(f.gg.graph, f.tree, opts);
  EXPECT_EQ(svc.epoch(), 0u);
  const auto edges = f.gg.graph.edge_list();
  for (int round = 1; round <= 4; ++round) {
    const EdgeTriple& e = edges[static_cast<std::size_t>(round) * 3];
    const std::uint64_t epoch = svc.apply_updates(
        std::vector<EdgeUpdate>{{e.from, e.to, 0.5 * round}});
    EXPECT_EQ(epoch, static_cast<std::uint64_t>(round));
    for (std::size_t i = 0; i < svc.shard_count(); ++i) {
      EXPECT_EQ(svc.shard(i).epoch(), epoch) << "shard " << i;
    }
  }
  const ShardedStats st = svc.stats();
  EXPECT_TRUE(st.epochs_consistent);
  EXPECT_EQ(st.swap_fanouts, 4u);
  // Lockstep swaps: the aggregate reports fan-outs, not shards *
  // fan-outs.
  EXPECT_EQ(st.total.epoch_swaps, 4u);
  EXPECT_EQ(st.total.epoch, 4u);
}

TEST(Sharded, PostSwapRepliesMatchOracleOverReweightedGraph) {
  // After a fan-out, every shard must answer under the new weighting —
  // verified against a single instance driven through the same update.
  const Fixture f = make_grid_fixture(7, 6);
  ServiceOptions so = lean_options();
  QueryService oracle(IncrementalEngine::build(f.gg.graph, f.tree), so);
  ShardedOptions opts;
  opts.shards = 2;
  opts.shard = so;
  ShardedService sharded(f.gg.graph, f.tree, opts);
  const auto edges = f.gg.graph.edge_list();
  const std::vector<EdgeUpdate> batch{{edges[0].from, edges[0].to, 0.25},
                                      {edges[9].from, edges[9].to, 17.0}};
  oracle.apply_updates(batch);
  EXPECT_EQ(sharded.apply_updates(batch), 1u);
  const auto n = f.gg.graph.num_vertices();
  for (Vertex s = 0; s < n; s += 5) {
    const Reply a = oracle.query(SingleSource{s});
    const Reply b = sharded.query(SingleSource{s});
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.epoch, 1u);
    EXPECT_EQ(b.epoch, 1u);
    EXPECT_EQ(std::memcmp(a.dist().data(), b.dist().data(),
                          a.dist().size() * sizeof(double)),
              0)
        << s;
  }
}

TEST(Sharded, ConcurrentUpdateStreamKeepsShardsConsistent) {
  // The TSan workload for the sharded path: client threads hammer all
  // three request kinds through the router while an updater thread
  // fans out epoch swaps. No reply may fail, and every reply must be
  // internally consistent (epoch-tagged payload from one snapshot).
  const Fixture f = make_grid_fixture(6, 7);
  ServiceOptions so = lean_options();
  so.point_to_point = true;
  ShardedOptions opts;
  opts.shards = 2;
  opts.shard = so;
  ShardedService svc(f.gg.graph, f.tree, opts);
  const auto n = f.gg.graph.num_vertices();
  const auto edges = f.gg.graph.edge_list();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Rng pick(100 + c);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto s = static_cast<Vertex>(pick.next_below(n));
        const auto t = static_cast<Vertex>(pick.next_below(n));
        Reply r;
        switch (pick.next_below(3)) {
          case 0:
            r = svc.query(SingleSource{s});
            break;
          case 1:
            r = svc.query(StDistance{s, t});
            break;
          default:
            r = svc.query(StPath{s, t});
            break;
        }
        if (!r.ok()) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread updater([&] {
    Rng pick(55);
    for (int round = 0; round < 12; ++round) {
      const EdgeTriple& e = edges[pick.next_below(edges.size())];
      svc.apply_updates(std::vector<EdgeUpdate>{
          {e.from, e.to, pick.next_double(0.5, 12.0)}});
    }
    stop.store(true, std::memory_order_relaxed);
  });
  updater.join();
  for (auto& cthread : clients) cthread.join();
  EXPECT_EQ(failures.load(), 0u);
  const ShardedStats st = svc.stats();
  EXPECT_TRUE(st.epochs_consistent);
  EXPECT_EQ(st.swap_fanouts, 12u);
  EXPECT_EQ(st.total.epoch, 12u);
  EXPECT_EQ(st.total.submitted,
            st.total.completed + st.total.shed + st.total.stopped);
}

TEST(Sharded, StopIsIdempotentAndStopsEveryShard) {
  const Fixture f = make_grid_fixture(6, 8);
  ShardedOptions opts;
  opts.shards = 2;
  opts.shard = lean_options();
  ShardedService svc(f.gg.graph, f.tree, opts);
  ASSERT_TRUE(svc.query(SingleSource{0}).ok());
  svc.stop();
  svc.stop();
  const Reply r = svc.query(SingleSource{1});
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace sepsp
