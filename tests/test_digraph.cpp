// Unit tests for the CSR digraph and its builder.
#include <gtest/gtest.h>

#include "graph/digraph.hpp"

namespace sepsp {
namespace {

Digraph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 2.0);
  b.add_edge(2, 0, 3.0);
  return std::move(b).build();
}

TEST(Digraph, BasicShape) {
  const Digraph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  ASSERT_EQ(g.out(0).size(), 1u);
  EXPECT_EQ(g.out(0)[0].to, 1u);
  EXPECT_DOUBLE_EQ(g.out(0)[0].weight, 1.0);
  EXPECT_EQ(g.out_degree(2), 1u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 6.0);
}

TEST(Digraph, EmptyGraph) {
  const Digraph g = std::move(*std::make_unique<GraphBuilder>(0)).build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Digraph, IsolatedVertices) {
  GraphBuilder b(5);
  b.add_edge(1, 3, 1.5);
  const Digraph g = std::move(b).build();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.out_degree(0), 0u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.out_degree(4), 0u);
}

TEST(GraphBuilder, DedupKeepsMinimumWeight) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 5.0);
  b.add_edge(0, 1, 2.0);
  b.add_edge(0, 1, 9.0);
  const Digraph g = std::move(b).build(/*dedup_min=*/true);
  EXPECT_EQ(g.num_edges(), 1u);
  double w = 0;
  EXPECT_TRUE(g.find_arc(0, 1, &w));
  EXPECT_DOUBLE_EQ(w, 2.0);
}

TEST(GraphBuilder, NoDedupKeepsParallelArcs) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 5.0);
  b.add_edge(0, 1, 2.0);
  const Digraph g = std::move(b).build(/*dedup_min=*/false);
  EXPECT_EQ(g.num_edges(), 2u);
  double w = 0;
  EXPECT_TRUE(g.find_arc(0, 1, &w));
  EXPECT_DOUBLE_EQ(w, 2.0);  // find_arc reports the min among parallels
}

TEST(GraphBuilder, AddBidirectional) {
  GraphBuilder b(2);
  b.add_bidirectional(0, 1, 4.0);
  const Digraph g = std::move(b).build();
  EXPECT_TRUE(g.find_arc(0, 1));
  EXPECT_TRUE(g.find_arc(1, 0));
}

TEST(Digraph, FindArcNegativeCases) {
  const Digraph g = triangle();
  EXPECT_FALSE(g.find_arc(0, 2));
  EXPECT_FALSE(g.find_arc(1, 0));
}

TEST(Digraph, SourceOfMatchesEdgeList) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 2, 1);
  b.add_edge(2, 3, 1);
  b.add_edge(3, 0, 1);
  const Digraph g = std::move(b).build();
  const auto edges = g.edge_list();
  ASSERT_EQ(edges.size(), g.num_edges());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(g.source_of(i), edges[i].from);
  }
}

TEST(Digraph, TransposeReversesEverything) {
  const Digraph g = triangle();
  const Digraph t = g.transpose();
  EXPECT_EQ(t.num_edges(), 3u);
  double w = 0;
  EXPECT_TRUE(t.find_arc(1, 0, &w));
  EXPECT_DOUBLE_EQ(w, 1.0);
  EXPECT_TRUE(t.find_arc(0, 2, &w));
  EXPECT_DOUBLE_EQ(w, 3.0);
  // Double transpose is the identity.
  const Digraph tt = t.transpose();
  EXPECT_EQ(tt.edge_list(), g.edge_list());
}

TEST(Digraph, InducedSubgraphKeepsInternalArcsOnly) {
  GraphBuilder b(5);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 2);
  b.add_edge(2, 3, 3);  // leaves the subset
  b.add_edge(3, 4, 4);
  b.add_edge(4, 0, 5);  // enters the subset
  const Digraph g = std::move(b).build();
  const std::vector<Vertex> subset{0, 1, 2};
  const Digraph::Induced ind = g.induced(subset);
  EXPECT_EQ(ind.graph.num_vertices(), 3u);
  EXPECT_EQ(ind.graph.num_edges(), 2u);
  EXPECT_EQ(ind.local_of[0], 0u);
  EXPECT_EQ(ind.local_of[3], kInvalidVertex);
  EXPECT_EQ(ind.global_of[2], 2u);
  double w = 0;
  EXPECT_TRUE(ind.graph.find_arc(ind.local_of[1], ind.local_of[2], &w));
  EXPECT_DOUBLE_EQ(w, 2.0);
}

TEST(Digraph, ArcSourcesMatchesEdgeListAndIsShared) {
  GraphBuilder b(6);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 2, 1);
  b.add_edge(2, 2, 1);  // self-loop
  b.add_edge(4, 0, 1);  // vertex 3 has no out-arcs: skipped in the index
  b.add_edge(4, 5, 1);
  const Digraph g = std::move(b).build();
  const auto sources = g.arc_sources();
  const auto edges = g.edge_list();
  ASSERT_EQ(sources.size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(sources[i], edges[i].from) << "arc " << i;
    EXPECT_EQ(g.source_of(i), edges[i].from) << "arc " << i;
  }
  // Copies share the memoized index (same underlying storage).
  const Digraph copy = g;
  EXPECT_EQ(copy.arc_sources().data(), sources.data());
}

TEST(Digraph, ArcsAreSortedByTarget) {
  GraphBuilder b(4);
  b.add_edge(0, 3, 1);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 2, 1);
  const Digraph g = std::move(b).build();
  const auto arcs = g.out(0);
  ASSERT_EQ(arcs.size(), 3u);
  EXPECT_EQ(arcs[0].to, 1u);
  EXPECT_EQ(arcs[1].to, 2u);
  EXPECT_EQ(arcs[2].to, 3u);
}

}  // namespace
}  // namespace sepsp
