// SIMD substrate correctness (semiring/simd.hpp).
//
// The contract under test: every dispatch tier produces BIT-identical
// results to the scalar reference — distances, change flags, counters —
// for all four semirings, including zero()/one() sentinels (+-inf),
// denormal-adjacent values, ragged lane counts, and self-loops. Bit
// identity is checked with memcmp, not operator== (so a -0.0 vs +0.0
// divergence would be caught).
//
// Also covered: tier naming/parsing, SEPSP_FORCE_ISA resolution (the CI
// force-isa job runs this whole binary under each forced tier — the
// ForcedTierMatchesEnv test is what fails if dispatch ignored the env),
// the simd.cells counter, and the aligned storage helpers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <typeinfo>
#include <vector>

#include "core/engine.hpp"
#include "core/query_batch.hpp"
#include "graph/generators.hpp"
#include "semiring/matrix.hpp"
#include "semiring/simd.hpp"
#include "separator/finders.hpp"
#include "util/aligned.hpp"
#include "util/random.hpp"

namespace sepsp {
namespace {

/// Restores the ambient dispatch tier on scope exit, so tests that
/// force tiers cannot leak into each other (or into the ambient
/// SEPSP_FORCE_ISA configuration the CI job pins).
class TierGuard {
 public:
  TierGuard() : saved_(simd::active_tier()) {}
  ~TierGuard() { simd::force_tier(saved_); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;

 private:
  simd::Tier saved_;
};

/// Every tier this machine can actually run (always includes scalar).
std::vector<simd::Tier> runnable_tiers() {
  std::vector<simd::Tier> tiers;
  for (int t = 0; t <= static_cast<int>(simd::detected_tier()); ++t) {
    tiers.push_back(static_cast<simd::Tier>(t));
  }
  return tiers;
}

// --- value generators, per semiring ------------------------------------
// Mixes ordinary values with the hazardous ones: zero()/one() sentinels
// (+-inf for the double semirings), denormal-adjacent magnitudes, and
// signed zeros.

template <typename S>
struct Gen;

template <>
struct Gen<TropicalD> {
  static double dist_value(Rng& rng) {
    switch (rng.next_below(8)) {
      case 0:
        return TropicalD::zero();  // +inf: unreached
      case 1:
        return TropicalD::one();  // 0.0
      case 2:
        return -0.0;
      case 3:
        return std::numeric_limits<double>::denorm_min();
      case 4:
        return -std::numeric_limits<double>::denorm_min() * 3;
      default:
        return rng.next_double(-100.0, 100.0);
    }
  }
  /// Edge / tile-scalar values: never zero() (the kernels' contract).
  static double edge_value(Rng& rng) {
    switch (rng.next_below(6)) {
      case 0:
        return 0.0;
      case 1:
        return std::numeric_limits<double>::denorm_min();
      default:
        return rng.next_double(-10.0, 10.0);
    }
  }
};

template <>
struct Gen<TropicalI> {
  static long long dist_value(Rng& rng) {
    if (rng.next_below(5) == 0) return TropicalI::zero();  // kInf
    return static_cast<long long>(rng.next_below(2001)) - 1000;
  }
  static long long edge_value(Rng& rng) {
    return static_cast<long long>(rng.next_below(41)) - 20;
  }
};

template <>
struct Gen<BooleanSR> {
  static std::uint8_t dist_value(Rng& rng) {
    return static_cast<std::uint8_t>(rng.next_below(2));
  }
  static std::uint8_t edge_value(Rng&) { return 1; }  // never zero()
};

template <>
struct Gen<BottleneckSR> {
  static double dist_value(Rng& rng) {
    switch (rng.next_below(6)) {
      case 0:
        return BottleneckSR::zero();  // -inf
      case 1:
        return BottleneckSR::one();  // +inf
      case 2:
        return -0.0;
      default:
        return rng.next_double(-100.0, 100.0);
    }
  }
  static double edge_value(Rng& rng) { return rng.next_double(0.1, 50.0); }
};

template <typename V>
bool bits_equal(const std::vector<V>& a, const std::vector<V>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(V)) == 0;
}

// --- kernel-level parity: each tier vs the dispatched scalar loops -----

template <typename S>
void check_kernel_parity(simd::Tier tier) {
  using Value = typename S::Value;
  SCOPED_TRACE(std::string("tier=") + simd::tier_name(tier) +
               " semiring=" + typeid(S).name());
  Rng rng(1234 + static_cast<int>(tier));
  const simd::KernelTable& vt = simd::table(tier);
  const simd::KernelTable& st = simd::table(simd::Tier::kScalar);

  for (const std::size_t n : {1u, 3u, 7u, 16u, 33u, 64u, 100u}) {
    // tile_row: o = combine(o, extend(a, b)) over a row.
    std::vector<Value> o(n), b(n);
    for (auto& v : o) v = Gen<S>::dist_value(rng);
    for (auto& v : b) v = Gen<S>::dist_value(rng);
    const Value a = Gen<S>::edge_value(rng);
    std::vector<Value> o_vec = o, o_ref = o;
    (vt.*simd::KindTraits<S>::kTileRow)(o_vec.data(), b.data(), a, n);
    (st.*simd::KindTraits<S>::kTileRow)(o_ref.data(), b.data(), a, n);
    EXPECT_TRUE(bits_equal(o_vec, o_ref)) << "tile_row n=" << n;

    // combine_row: fused merge + any-improvement flag.
    std::vector<Value> dst(n), src(n);
    for (auto& v : dst) v = Gen<S>::dist_value(rng);
    for (auto& v : src) v = Gen<S>::dist_value(rng);
    std::vector<Value> d_vec = dst, d_ref = dst;
    const int c_vec =
        (vt.*simd::KindTraits<S>::kCombineRow)(d_vec.data(), src.data(), n);
    const int c_ref =
        (st.*simd::KindTraits<S>::kCombineRow)(d_ref.data(), src.data(), n);
    EXPECT_TRUE(bits_equal(d_vec, d_ref)) << "combine_row n=" << n;
    EXPECT_EQ(c_vec != 0, c_ref != 0) << "combine_row changed flag n=" << n;
  }

  // Bucket sweeps over a lane-major dist matrix, including self-loops
  // and repeated targets, at ragged lane counts.
  for (const std::size_t lanes : {1u, 3u, 8u, 16u, 23u, 64u}) {
    const std::size_t verts = 17;
    const std::size_t m = 60;
    std::vector<Value> dist0(verts * lanes);
    for (auto& v : dist0) v = Gen<S>::dist_value(rng);
    std::vector<std::uint32_t> from(m), to(m);
    std::vector<Value> value(m);
    for (std::size_t i = 0; i < m; ++i) {
      from[i] = static_cast<std::uint32_t>(rng.next_below(verts));
      // Every 8th edge is a self-loop (exact row aliasing).
      to[i] = (i % 8 == 0) ? from[i]
                           : static_cast<std::uint32_t>(rng.next_below(verts));
      value[i] = Gen<S>::edge_value(rng);
    }

    std::vector<Value> dv = dist0, dr = dist0;
    (vt.*simd::KindTraits<S>::kSweep)(dv.data(), from.data(), to.data(),
                                      value.data(), m, lanes);
    (st.*simd::KindTraits<S>::kSweep)(dr.data(), from.data(), to.data(),
                                      value.data(), m, lanes);
    EXPECT_TRUE(bits_equal(dv, dr)) << "sweep lanes=" << lanes;

    std::vector<Value> tv = dist0, tr = dist0;
    std::vector<std::uint8_t> cv(lanes, 0), cr(lanes, 0);
    (vt.*simd::KindTraits<S>::kSweepTracked)(tv.data(), from.data(), to.data(),
                                             value.data(), m, lanes,
                                             cv.data());
    (st.*simd::KindTraits<S>::kSweepTracked)(tr.data(), from.data(), to.data(),
                                             value.data(), m, lanes,
                                             cr.data());
    EXPECT_TRUE(bits_equal(tv, tr)) << "sweep_tracked lanes=" << lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      EXPECT_EQ(cv[l] != 0, cr[l] != 0)
          << "sweep_tracked changed flag lane=" << l << " lanes=" << lanes;
    }
  }
}

template <typename S>
class SimdKernelParity : public ::testing::Test {};
using AllSemirings =
    ::testing::Types<TropicalD, TropicalI, BooleanSR, BottleneckSR>;
TYPED_TEST_SUITE(SimdKernelParity, AllSemirings);

TYPED_TEST(SimdKernelParity, EveryRunnableTierMatchesScalarBitwise) {
  for (const simd::Tier t : runnable_tiers()) {
    check_kernel_parity<TypeParam>(t);
  }
}

// --- matrix kernels: per-tier outputs of the public entry points -------

TYPED_TEST(SimdKernelParity, MatrixKernelsBitIdenticalAcrossTiers) {
  using S = TypeParam;
  TierGuard guard;
  Rng rng(77);
  const std::size_t n = 70;  // forces partial tiles at the fringe
  Matrix<S> input(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.next_bool(0.4)) input.at(i, j) = Gen<S>::edge_value(rng);
    }
  }

  simd::force_tier(simd::Tier::kScalar);
  const Matrix<S> product_ref = multiply(input, input);
  Matrix<S> fw_ref = input;
  floyd_warshall(fw_ref);
  Matrix<S> sq_ref = input, sq_scratch;
  const bool sq_changed_ref = square_step(sq_ref, sq_scratch);

  for (const simd::Tier t : runnable_tiers()) {
    SCOPED_TRACE(simd::tier_name(t));
    simd::force_tier(t);
    EXPECT_EQ(multiply(input, input), product_ref);
    Matrix<S> fw = input;
    floyd_warshall(fw);
    EXPECT_EQ(fw, fw_ref);
    Matrix<S> sq = input, scratch;
    EXPECT_EQ(square_step(sq, scratch), sq_changed_ref);
    EXPECT_EQ(sq, sq_ref);
  }
}

// --- end-to-end: batched query per tier vs scalar tier -----------------

template <typename S>
void expect_result_bits_eq(const QueryResult<S>& got,
                           const QueryResult<S>& want, const char* what) {
  EXPECT_TRUE(bits_equal(got.dist, want.dist)) << what << ": dist bits";
  EXPECT_EQ(got.negative_cycle, want.negative_cycle) << what;
  EXPECT_EQ(got.edges_scanned, want.edges_scanned) << what;
  EXPECT_EQ(got.phases, want.phases) << what;
}

TYPED_TEST(SimdKernelParity, BatchedQueryBitIdenticalAcrossTiers) {
  using S = TypeParam;
  TierGuard guard;
  Rng rng(91);
  const auto gg = make_grid({9, 9}, WeightModel::uniform(1, 9), rng);
  const auto tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({9, 9}));
  const auto engine = SeparatorShortestPaths<S>::build(gg.graph, tree);
  const BatchedLeveledQuery<S, 8> batched(engine.query_engine());
  const std::vector<Vertex> sources{0, 13, 40, 44, 66, 80, 7};  // ragged

  simd::force_tier(simd::Tier::kScalar);
  const auto ref = batched.run_block(sources);
  for (const simd::Tier t : runnable_tiers()) {
    SCOPED_TRACE(simd::tier_name(t));
    simd::force_tier(t);
    const auto got = batched.run_block(sources);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      expect_result_bits_eq(got[i], ref[i],
                            ("lane " + std::to_string(i)).c_str());
    }
  }
}

// Negative weights drive the tropical kernels through their saturation
// paths (+inf + negative must stay +inf / kInf must not look reachable).
TEST(SimdEndToEnd, NegativeWeightsBitIdenticalAcrossTiers) {
  TierGuard guard;
  Rng rng(5);
  auto gg = make_grid({8, 8}, WeightModel::uniform(1, 9), rng);
  // Re-weight a scattering of forward arcs negative. Every grid cycle
  // pairs each forward (index-increasing) arc with a backward one, and
  // |w|/16 < 1 <= any backward weight, so no negative cycle arises.
  GraphBuilder b(gg.graph.num_vertices());
  const auto srcs = gg.graph.arc_sources();
  const auto arcs = gg.graph.arcs();
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    const bool forward = arcs[i].to > srcs[i];
    const double w = (forward && rng.next_bool(0.3)) ? -arcs[i].weight / 16
                                                     : arcs[i].weight;
    b.add_edge(srcs[i], arcs[i].to, w);
  }
  const Digraph g = std::move(b).build();
  const auto tree = build_separator_tree(Skeleton(g), make_grid_finder({8, 8}));
  const auto engine = SeparatorShortestPaths<TropicalD>::build(g, tree);
  const BatchedLeveledQuery<TropicalD, 8> batched(engine.query_engine());
  const std::vector<Vertex> sources{0, 9, 27, 63};

  simd::force_tier(simd::Tier::kScalar);
  const auto ref = batched.run_block(sources);
  for (const simd::Tier t : runnable_tiers()) {
    SCOPED_TRACE(simd::tier_name(t));
    simd::force_tier(t);
    const auto got = batched.run_block(sources);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      expect_result_bits_eq(got[i], ref[i], "negative-weight lane");
    }
  }
}

// Fuzz: random graphs, ambient tier (whatever SEPSP_FORCE_ISA / CPUID
// resolved) vs forced scalar, bit-identical end to end.
TEST(SimdEndToEnd, FuzzSweepAmbientTierVsScalar) {
  TierGuard guard;
  const simd::Tier ambient = simd::active_tier();
  Rng rng(20260806);
  for (int round = 0; round < 6; ++round) {
    const std::size_t side = 4 + rng.next_below(5);
    auto gg = make_grid({side, side}, WeightModel::uniform(1, 20), rng);
    const auto tree = build_separator_tree(
        Skeleton(gg.graph),
        make_grid_finder({side, side}));
    const auto engine =
        SeparatorShortestPaths<TropicalD>::build(gg.graph, tree);
    const BatchedLeveledQuery<TropicalD, 16> batched(engine.query_engine());
    std::vector<Vertex> sources;
    for (std::size_t i = 0; i < 11; ++i) {
      sources.push_back(
          static_cast<Vertex>(rng.next_below(gg.graph.num_vertices())));
    }
    simd::force_tier(ambient);
    const auto got = batched.run_block(sources);
    simd::force_tier(simd::Tier::kScalar);
    const auto ref = batched.run_block(sources);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      expect_result_bits_eq(got[i], ref[i],
                            ("round " + std::to_string(round)).c_str());
    }
  }
}

// --- dispatch plumbing -------------------------------------------------

TEST(SimdDispatch, TierNamesRoundTrip) {
  using simd::Tier;
  for (const Tier t :
       {Tier::kScalar, Tier::kSse, Tier::kAvx2, Tier::kAvx512}) {
    Tier parsed;
    ASSERT_TRUE(simd::parse_tier(simd::tier_name(t), &parsed));
    EXPECT_EQ(parsed, t);
  }
  Tier out;
  EXPECT_FALSE(simd::parse_tier("", &out));
  EXPECT_FALSE(simd::parse_tier("avx1024", &out));
  EXPECT_TRUE(simd::parse_tier("v128", &out));  // alias for sse
  EXPECT_EQ(out, Tier::kSse);
}

TEST(SimdDispatch, TierOrderIsCoherent) {
  EXPECT_LE(static_cast<int>(simd::detected_tier()),
            static_cast<int>(simd::compiled_tier()));
  EXPECT_LE(static_cast<int>(simd::active_tier()),
            static_cast<int>(simd::detected_tier()));
  if (!simd::compiled_in()) {
    EXPECT_EQ(simd::compiled_tier(), simd::Tier::kScalar);
    EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
  }
}

TEST(SimdDispatch, ForceTierClampsToDetected) {
  TierGuard guard;
  const simd::Tier got = simd::force_tier(simd::Tier::kAvx512);
  EXPECT_EQ(got, simd::detected_tier());
  EXPECT_EQ(simd::active_tier(), simd::detected_tier());
  EXPECT_EQ(simd::force_tier(simd::Tier::kScalar), simd::Tier::kScalar);
  EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
}

// The CI force-isa job runs this binary under SEPSP_FORCE_ISA=<tier>
// and relies on this test to fail if the dispatched tier does not match
// the forced one (clamped to hardware/compile support).
TEST(SimdDispatch, ForcedTierMatchesEnv) {
  const char* forced = std::getenv("SEPSP_FORCE_ISA");
  if (forced == nullptr || *forced == '\0') {
    GTEST_SKIP() << "SEPSP_FORCE_ISA not set";
  }
  simd::Tier want;
  ASSERT_TRUE(simd::parse_tier(forced, &want))
      << "unparsable SEPSP_FORCE_ISA: " << forced;
  if (static_cast<int>(want) > static_cast<int>(simd::detected_tier())) {
    want = simd::detected_tier();  // forcing clamps down, never up
  }
  EXPECT_EQ(simd::active_tier(), want)
      << "active=" << simd::tier_name(simd::active_tier())
      << " forced=" << forced;
}

TEST(SimdDispatch, SimdCellsCounterTracksVectorWork) {
  if (!obs::compiled_in()) GTEST_SKIP() << "SEPSP_OBS=OFF";
  TierGuard guard;
  Matrix<TropicalD> m(40);
  Rng rng(3);
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < 40; ++j) {
      if (rng.next_bool(0.5)) m.at(i, j) = rng.next_double(1.0, 9.0);
    }
  }
  simd::force_tier(simd::Tier::kScalar);
  const auto before_scalar = obs::counter("simd.cells").value();
  (void)multiply(m, m);
  EXPECT_EQ(obs::counter("simd.cells").value(), before_scalar)
      << "scalar tier must not charge simd.cells";
  if (simd::detected_tier() == simd::Tier::kScalar) return;
  simd::force_tier(simd::detected_tier());
  const auto before_vec = obs::counter("simd.cells").value();
  (void)multiply(m, m);
  EXPECT_EQ(obs::counter("simd.cells").value() - before_vec,
            std::uint64_t{40} * 40 * 40);
}

TEST(SimdDispatch, EngineStatsReportActiveTier) {
  TierGuard guard;
  Rng rng(17);
  const auto gg = make_grid({5, 5}, WeightModel::uniform(1, 9), rng);
  const auto tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({5, 5}));
  const auto engine = SeparatorShortestPaths<TropicalD>::build(gg.graph, tree);
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.simd_tier, simd::tier_name(simd::active_tier()));
}

// --- aligned storage helpers ------------------------------------------

TEST(AlignedStorage, VectorDataIsCacheLineAligned) {
  for (const std::size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedVector<double> vd(n, 0.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(vd.data()) % kSimdAlign, 0u);
    AlignedVector<std::uint8_t> vb(n, 0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(vb.data()) % kSimdAlign, 0u);
  }
}

TEST(AlignedStorage, PaddedSizeRoundsToWholeBlocks) {
  EXPECT_EQ(padded_size<double>(0), 0u);
  EXPECT_EQ(padded_size<double>(1), 8u);
  EXPECT_EQ(padded_size<double>(8), 8u);
  EXPECT_EQ(padded_size<double>(9), 16u);
  EXPECT_EQ(padded_size<std::uint8_t>(1), 64u);
  EXPECT_EQ(padded_size<std::uint32_t>(17), 32u);
}

}  // namespace
}  // namespace sepsp
