// Bit-packed Boolean matrix tests against dense references, including
// shapes that straddle the 64-bit word boundary.
#include <gtest/gtest.h>

#include <vector>

#include "semiring/bitmatrix.hpp"
#include "semiring/matrix.hpp"
#include "semiring/semiring.hpp"
#include "util/random.hpp"

namespace sepsp {
namespace {

BitMatrix random_bits(std::size_t rows, std::size_t cols, Rng& rng,
                      double density = 0.2) {
  BitMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (rng.next_bool(density)) m.set(i, j);
    }
  }
  return m;
}

Matrix<BooleanSR> to_dense(const BitMatrix& m) {
  Matrix<BooleanSR> d(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      d.at(i, j) = m.get(i, j) ? 1 : 0;
    }
  }
  return d;
}

TEST(BitMatrix, SetGetAndClear) {
  BitMatrix m(70, 70);  // crosses the word boundary
  EXPECT_FALSE(m.get(69, 69));
  m.set(69, 69);
  m.set(0, 63);
  m.set(0, 64);
  EXPECT_TRUE(m.get(69, 69));
  EXPECT_TRUE(m.get(0, 63));
  EXPECT_TRUE(m.get(0, 64));
  EXPECT_FALSE(m.get(0, 62));
  m.set(0, 63, false);
  EXPECT_FALSE(m.get(0, 63));
  EXPECT_EQ(m.popcount(), 2u);
}

TEST(BitMatrix, IdentityAndMerge) {
  BitMatrix id = BitMatrix::identity(5);
  EXPECT_EQ(id.popcount(), 5u);
  BitMatrix other(5, 5);
  other.set(0, 4);
  id.merge(other);
  EXPECT_TRUE(id.get(0, 4));
  EXPECT_EQ(id.popcount(), 6u);
}

TEST(BitMatrix, MultiplyMatchesDenseSemiring) {
  Rng rng(31);
  for (const auto [r, k, c] :
       {std::array<std::size_t, 3>{5, 5, 5},
        std::array<std::size_t, 3>{10, 70, 3},
        std::array<std::size_t, 3>{65, 65, 65},
        std::array<std::size_t, 3>{1, 128, 1}}) {
    const BitMatrix a = random_bits(r, k, rng);
    const BitMatrix b = random_bits(k, c, rng);
    const BitMatrix got = a.multiply(b);
    const Matrix<BooleanSR> want = multiply(to_dense(a), to_dense(b));
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < c; ++j) {
        ASSERT_EQ(got.get(i, j), want.at(i, j) != 0)
            << r << "x" << k << "x" << c << " at " << i << "," << j;
      }
    }
  }
}

TEST(BitMatrix, ClosureMatchesDenseClosure) {
  Rng rng(32);
  for (const std::size_t n : {1u, 7u, 64u, 100u}) {
    const BitMatrix a = random_bits(n, n, rng, 0.05);
    const BitMatrix got = a.closure();
    const auto want = closure_by_squaring(to_dense(a));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(got.get(i, j), want.at(i, j) != 0) << n;
      }
    }
  }
}

TEST(BitMatrix, ClosureOfPathIsUpperTriangle) {
  BitMatrix m(50, 50);
  for (std::size_t i = 0; i + 1 < 50; ++i) m.set(i, i + 1);
  const BitMatrix c = m.closure();
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t j = 0; j < 50; ++j) {
      EXPECT_EQ(c.get(i, j), j >= i) << i << "," << j;
    }
  }
}

TEST(BitMatrix, SquareStepFixpoint) {
  BitMatrix m = BitMatrix::identity(4);
  m.set(0, 1);
  EXPECT_FALSE(m.square_step());
  m.set(1, 2);
  EXPECT_TRUE(m.square_step());
  EXPECT_TRUE(m.get(0, 2));
}

}  // namespace
}  // namespace sepsp
