// The sepsp::obs subsystem: interned instruments, snapshots, resets,
// nested trace spans, and the sinks. Recording assertions are gated on
// SEPSP_OBS_ENABLED so the suite also passes (trivially) in an
// observability-off build, where the same calls must compile to no-ops.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "obs/obs.hpp"
#include "obs/sink.hpp"

namespace sepsp::obs {
namespace {

TEST(Stats, CounterInternedByName) {
  Counter& a = counter("test.obs.interned");
  Counter& b = counter("test.obs.interned");
  EXPECT_EQ(&a, &b);  // stable address: hot paths may cache the handle
  a.reset();
  a.add(3);
  b.add(4);
  if constexpr (compiled_in()) {
    EXPECT_EQ(a.value(), 7u);
  } else {
    EXPECT_EQ(a.value(), 0u);
  }
}

TEST(Stats, GaugeLastWriteWins) {
  Gauge& g = gauge("test.obs.gauge");
  g.set(42);
  g.add(-2);
  if constexpr (compiled_in()) {
    EXPECT_EQ(g.value(), 40);
  }
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Stats, HistogramBucketsByBitWidth) {
  Histogram& h = histogram("test.obs.hist");
  h.reset();
  h.record(0);
  h.record(1);
  h.record(5);   // bit_width 3
  h.record(5);
  StatsSnapshot::HistogramData d;
  h.snapshot_into(&d);
  if constexpr (compiled_in()) {
    EXPECT_EQ(d.count, 4u);
    EXPECT_EQ(d.sum, 11u);
    EXPECT_EQ(d.min, 0u);
    EXPECT_EQ(d.max, 5u);
    EXPECT_EQ(d.buckets[0], 1u);  // the sample 0
    EXPECT_EQ(d.buckets[1], 1u);  // 1
    EXPECT_EQ(d.buckets[3], 2u);  // 4..7
  }
}

TEST(Stats, SnapshotFindsCounterByName) {
  counter("test.obs.snap").reset();
  counter("test.obs.snap").add(9);
  const StatsSnapshot snap = StatsRegistry::instance().snapshot();
  if constexpr (compiled_in()) {
    EXPECT_EQ(snap.counter_or_zero("test.obs.snap"), 9u);
  }
  EXPECT_EQ(snap.counter_or_zero("test.obs.does_not_exist"), 0u);
}

TEST(Stats, ResetValuesKeepsAddresses) {
  Counter& c = counter("test.obs.reset");
  c.add(5);
  StatsRegistry::instance().reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&c, &counter("test.obs.reset"));
}

TEST(Stats, CountersAreThreadSafe) {
  Counter& c = counter("test.obs.mt");
  c.reset();
  constexpr int kThreads = 4, kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  if constexpr (compiled_in()) {
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
  }
}

TEST(Trace, NestedSpansFormTree) {
  trace_reset();
  {
    SEPSP_TRACE_SPAN("test.outer");
    for (int i = 0; i < 3; ++i) {
      SEPSP_TRACE_SPAN("test.inner");
    }
  }
  const TraceSnapshotNode root = trace_snapshot();
#if SEPSP_OBS_ENABLED
  const TraceSnapshotNode* outer = find_trace_node(root, "test.outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->calls, 1u);
  ASSERT_EQ(outer->children.size(), 1u);
  EXPECT_EQ(outer->children[0].name, "test.inner");
  EXPECT_EQ(outer->children[0].calls, 3u);  // aggregated, not 3 nodes
#else
  EXPECT_TRUE(root.children.empty());
#endif
}

TEST(Trace, ResetClearsRecordedSpans) {
  {
    SEPSP_TRACE_SPAN("test.cleared");
  }
  trace_reset();
  EXPECT_EQ(find_trace_node(trace_snapshot(), "test.cleared"), nullptr);
}

TEST(Trace, SpansMergeAcrossThreads) {
  trace_reset();
  std::thread worker([] {
    SEPSP_TRACE_SPAN("test.cross_thread");
  });
  worker.join();
  {
    SEPSP_TRACE_SPAN("test.cross_thread");
  }
  const TraceSnapshotNode root = trace_snapshot();
#if SEPSP_OBS_ENABLED
  const TraceSnapshotNode* node = find_trace_node(root, "test.cross_thread");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->calls, 2u);  // same name, two arenas, one merged node
#endif
}

TEST(Sink, HumanTablesPrintWithoutCrashing) {
  counter("test.obs.sink").add(1);
  {
    SEPSP_TRACE_SPAN("test.sink_span");
  }
  std::ostringstream os;
  print_all(os);
  if constexpr (compiled_in()) {
    EXPECT_NE(os.str().find("test.obs.sink"), std::string::npos);
  }
}

TEST(Sink, JsonRecordsAreTyped) {
  StatsRegistry::instance().reset_values();
  trace_reset();
  counter("test.obs.json").add(2);
  {
    SEPSP_TRACE_SPAN("test.json_span");
  }
  std::ostringstream os;
  write_json(os, StatsRegistry::instance().snapshot(), trace_snapshot());
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '[');
  if constexpr (compiled_in()) {
    EXPECT_NE(out.find("\"kind\": \"counter\""), std::string::npos);
    EXPECT_NE(out.find("\"test.obs.json\""), std::string::npos);
    EXPECT_NE(out.find("\"kind\": \"span\""), std::string::npos);
  }
}

}  // namespace
}  // namespace sepsp::obs
