// Distance labeling (compact APSP representation): exactness against
// Dijkstra / Bellman–Ford over all pairs, label-size scaling, and edge
// cases (unreachability, negative weights, same-leaf pairs).
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/bellman_ford.hpp"
#include "baseline/dijkstra.hpp"
#include "baseline/reach.hpp"
#include "core/incremental.hpp"
#include "core/labeling.hpp"
#include "semiring/matrix.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

void check_all_pairs(const Digraph& g, const SeparatorTree& tree,
                     bool negative = false) {
  const DistanceLabeling labeling = DistanceLabeling::build(g, tree);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    std::vector<double> want;
    if (negative) {
      const BellmanFordResult bf = bellman_ford(g, u);
      ASSERT_FALSE(bf.negative_cycle);
      want = bf.dist;
    } else {
      want = dijkstra(g, u).dist;
    }
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const double got = labeling.distance(u, v);
      if (std::isinf(want[v])) {
        EXPECT_TRUE(std::isinf(got)) << u << "->" << v;
      } else {
        EXPECT_NEAR(got, want[v], 1e-8) << u << "->" << v;
      }
    }
  }
}

TEST(Labeling, ExactOnGrid) {
  Rng rng(1);
  const GeneratedGraph gg = make_grid({8, 8}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({8, 8}));
  check_all_pairs(gg.graph, tree);
}

TEST(Labeling, ExactOnTree) {
  Rng rng(2);
  const GeneratedGraph gg = make_random_tree(90, WeightModel::uniform(1, 5), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_tree_finder());
  check_all_pairs(gg.graph, tree);
}

TEST(Labeling, ExactOnMeshWithNegativeWeights) {
  Rng rng(3);
  const GeneratedGraph gg =
      make_triangulated_grid(6, 8, WeightModel::mixed_sign(6), rng);
  const SeparatorTree tree = build_separator_tree(
      Skeleton(gg.graph), make_geometric_finder(gg.coords));
  check_all_pairs(gg.graph, tree, /*negative=*/true);
}

TEST(Labeling, ExactOnDirectedSparseGraphWithUnreachablePairs) {
  Rng rng(4);
  const GeneratedGraph gg =
      make_random_digraph(70, 140, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_bfs_finder());
  check_all_pairs(gg.graph, tree);
}

TEST(Labeling, SelfDistanceIsZero) {
  Rng rng(5);
  const GeneratedGraph gg = make_grid({5, 5}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({5, 5}));
  const DistanceLabeling labeling = DistanceLabeling::build(gg.graph, tree);
  for (Vertex v = 0; v < 25; ++v) {
    EXPECT_DOUBLE_EQ(labeling.distance(v, v), 0.0);
  }
}

TEST(Labeling, LabelSizesScaleLikeSqrtNOnGrids) {
  Rng rng(6);
  double prev_avg = 0;
  for (const std::size_t side : {8u, 16u, 32u}) {
    const std::vector<std::size_t> dims = {side, side};
    const GeneratedGraph gg = make_grid(dims, WeightModel::uniform(1, 9), rng);
    const SeparatorTree tree =
        build_separator_tree(Skeleton(gg.graph), make_grid_finder(dims));
    const DistanceLabeling labeling =
        DistanceLabeling::build(gg.graph, tree);
    const double avg = labeling.average_label_size();
    // Hubs per vertex ~ sum of separator sizes up the path = O(sqrt n):
    // far below n.
    EXPECT_LT(avg, 8.0 * side);
    EXPECT_GT(avg, prev_avg);  // grows with n...
    prev_avg = avg;
    EXPECT_EQ(labeling.total_label_entries(),
              [&] {
                std::size_t total = 0;
                for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
                  total += labeling.label_size(v);
                }
                return total;
              }());
  }
}

TEST(Labeling, ReachabilityLabelsMatchBfs) {
  Rng rng(8);
  const GeneratedGraph full = make_grid({8, 8}, WeightModel::unit(), rng);
  GraphBuilder b(full.graph.num_vertices());
  for (const EdgeTriple& e : full.graph.edge_list()) {
    if (rng.next_bool(0.65)) b.add_edge(e.from, e.to, 1.0);
  }
  const Digraph g = std::move(b).build();
  const SeparatorTree tree =
      build_separator_tree(Skeleton(g), make_grid_finder({8, 8}));
  const ReachabilityLabeling labels = ReachabilityLabeling::build(g, tree);
  for (Vertex u = 0; u < g.num_vertices(); u += 5) {
    const auto want = bfs_reachable(g, u);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(labels.reachable(u, v), want[v] != 0) << u << "->" << v;
    }
  }
}

TEST(Labeling, BottleneckLabelsMatchClosure) {
  Rng rng(9);
  const GeneratedGraph gg =
      make_grid({6, 6}, WeightModel::uniform(1, 100), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({6, 6}));
  const auto labels = HubLabeling<BottleneckSR>::build(gg.graph, tree);
  Matrix<BottleneckSR> want(gg.graph.num_vertices());
  for (Vertex u = 0; u < gg.graph.num_vertices(); ++u) {
    want.at(u, u) = BottleneckSR::one();
    for (const Arc& a : gg.graph.out(u)) {
      want.merge(u, a.to, BottleneckSR::from_weight(a.weight));
    }
  }
  floyd_warshall(want);
  for (Vertex u = 0; u < gg.graph.num_vertices(); u += 4) {
    for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
      EXPECT_DOUBLE_EQ(labels.value(u, v), want.at(u, v)) << u << "->" << v;
    }
  }
}

TEST(Labeling, DoublingBuilderVariantAgrees) {
  Rng rng(7);
  const GeneratedGraph gg = make_grid({6, 6}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({6, 6}));
  DistanceLabeling::Options recursive;
  recursive.build.builder = BuilderKind::kRecursive;
  DistanceLabeling::Options doubling;
  doubling.build.builder = BuilderKind::kDoubling;
  const DistanceLabeling a = DistanceLabeling::build(gg.graph, tree, recursive);
  const DistanceLabeling b = DistanceLabeling::build(gg.graph, tree, doubling);
  for (Vertex u = 0; u < 36; u += 5) {
    for (Vertex v = 0; v < 36; v += 3) {
      EXPECT_NEAR(a.distance(u, v), b.distance(u, v), 1e-9);
    }
  }
}

TEST(Labeling, OptionsFacadeBuildIsDeterministic) {
  // The bare-BuilderKind overloads deprecated in the previous release
  // are gone; the nested Options facade is the sole spelling. Two
  // builds from the same options must be identical — the sharded
  // serving front-end replicates engines per shard and relies on
  // deterministic builds for bit-identical replies.
  Rng rng(8);
  const GeneratedGraph gg = make_grid({5, 5}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({5, 5}));
  DistanceLabeling::Options doubling;
  doubling.build.builder = BuilderKind::kDoubling;
  const DistanceLabeling a = DistanceLabeling::build(gg.graph, tree, doubling);
  const DistanceLabeling b = DistanceLabeling::build(gg.graph, tree, doubling);
  EXPECT_EQ(a.total_label_entries(), b.total_label_entries());
  for (Vertex u = 0; u < 25; ++u) {
    for (Vertex v = 0; v < 25; v += 2) {
      EXPECT_DOUBLE_EQ(a.distance(u, v), b.distance(u, v));
    }
  }
}

TEST(Labeling, BuildFromEnginesMatchesStandaloneBuild) {
  // The serving runtime's epoch-swap hook: building against externally
  // owned forward/backward engines (with an effective-weight override)
  // must agree with the self-contained build over an equivalently
  // reweighted graph.
  Rng rng(9);
  const GeneratedGraph gg = make_grid({6, 6}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({6, 6}));
  IncrementalEngine fwd = IncrementalEngine::build(gg.graph, tree);
  fwd.update_edge(0, 1, 0.25);
  fwd.update_edge(7, 8, 11.0);
  fwd.apply();

  // Backward engine over the reversed graph under the same weighting.
  GraphBuilder rb(gg.graph.num_vertices());
  const auto arcs = gg.graph.arcs();
  const auto arc_src = gg.graph.arc_sources();
  const auto weights = fwd.weights();
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    rb.add_edge(arcs[i].to, arc_src[i], weights[i]);
  }
  const Digraph reversed = std::move(rb).build(/*dedup_min=*/false);
  const IncrementalEngine bwd = IncrementalEngine::build(reversed, tree);

  const auto fwd_snap = fwd.snapshot();
  const auto bwd_snap = bwd.snapshot();
  const DistanceLabeling from_engines = DistanceLabeling::build_from_engines(
      gg.graph, tree, *fwd_snap.engine, *bwd_snap.engine, fwd.weights());

  GraphBuilder wb(gg.graph.num_vertices());
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    wb.add_edge(arc_src[i], arcs[i].to, weights[i]);
  }
  const Digraph reweighted = std::move(wb).build(/*dedup_min=*/false);
  const DistanceLabeling standalone =
      DistanceLabeling::build(reweighted, tree);
  for (Vertex u = 0; u < 36; ++u) {
    for (Vertex v = 0; v < 36; v += 2) {
      EXPECT_DOUBLE_EQ(from_engines.distance(u, v),
                       standalone.distance(u, v))
          << u << "->" << v;
    }
  }
}

}  // namespace
}  // namespace sepsp
