// Paper remark (iii): the engine is generic over path-algebra semirings.
// Boolean and bottleneck instances against brute-force references, and
// the integer tropical instance against Dijkstra.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "semiring/matrix.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

template <Semiring S>
Matrix<S> reference_closure(const Digraph& g) {
  Matrix<S> m(g.num_vertices());
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    m.at(u, u) = S::one();
    for (const Arc& a : g.out(u)) {
      m.merge(u, a.to, S::from_weight(a.weight));
    }
  }
  floyd_warshall(m);
  return m;
}

TEST(SemiringEngines, BottleneckWidestPaths) {
  // Weights are capacities; the engine computes widest (max-min) paths.
  Rng rng(1);
  const GeneratedGraph gg =
      make_grid({7, 7}, WeightModel::uniform(1, 100), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({7, 7}));
  const auto engine =
      SeparatorShortestPaths<BottleneckSR>::build(gg.graph, tree);
  const auto want = reference_closure<BottleneckSR>(gg.graph);
  for (const Vertex s : {Vertex{0}, Vertex{24}, Vertex{48}}) {
    const auto got = engine.distances(s);
    for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
      EXPECT_DOUBLE_EQ(got.dist[v], want.at(s, v)) << s << "->" << v;
    }
  }
}

TEST(SemiringEngines, BottleneckOnDirectedSparseGraph) {
  Rng rng(2);
  const GeneratedGraph gg =
      make_random_digraph(90, 270, WeightModel::uniform(1, 50), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_bfs_finder());
  const auto engine =
      SeparatorShortestPaths<BottleneckSR>::build(gg.graph, tree);
  const auto want = reference_closure<BottleneckSR>(gg.graph);
  const auto got = engine.distances(0);
  for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(got.dist[v], want.at(0, v)) << v;
  }
}

TEST(SemiringEngines, BooleanEngineTemplateMatchesClosure) {
  Rng rng(3);
  const GeneratedGraph gg =
      make_random_digraph(80, 160, WeightModel::unit(), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_bfs_finder());
  const auto engine = SeparatorShortestPaths<BooleanSR>::build(gg.graph, tree);
  const auto want = reference_closure<BooleanSR>(gg.graph);
  for (const Vertex s : {Vertex{0}, Vertex{40}}) {
    const auto got = engine.distances(s);
    for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
      EXPECT_EQ(got.dist[v] != 0, want.at(s, v) != 0) << s << "->" << v;
    }
  }
}

TEST(SemiringEngines, IntegerTropicalIsExact) {
  Rng rng(4);
  // Integer weights drawn in [1, 9]; TropicalI must match Dijkstra
  // exactly (no floating-point tolerance at all).
  const GeneratedGraph gg = make_grid({9, 9}, WeightModel::unit(), rng);
  GraphBuilder b(gg.graph.num_vertices());
  Rng wrng(5);
  for (const EdgeTriple& e : gg.graph.edge_list()) {
    b.add_edge(e.from, e.to, static_cast<double>(wrng.next_int(1, 9)));
  }
  const Digraph g = std::move(b).build();
  const SeparatorTree tree =
      build_separator_tree(Skeleton(g), make_grid_finder({9, 9}));
  const auto engine = SeparatorShortestPaths<TropicalI>::build(g, tree);
  const auto got = engine.distances(0);
  const DijkstraResult dj = dijkstra(g, 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    ASSERT_TRUE(std::isfinite(dj.dist[v]));
    EXPECT_EQ(got.dist[v], static_cast<long long>(dj.dist[v])) << v;
  }
}

TEST(SemiringEngines, BothBuildersAgreeOnBottleneck) {
  Rng rng(6);
  const GeneratedGraph gg =
      make_grid({6, 6}, WeightModel::uniform(1, 30), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({6, 6}));
  typename SeparatorShortestPaths<BottleneckSR>::Options dbl;
  dbl.build.builder = BuilderKind::kDoubling;
  const auto a = SeparatorShortestPaths<BottleneckSR>::build(gg.graph, tree);
  const auto b = SeparatorShortestPaths<BottleneckSR>::build(gg.graph, tree, dbl);
  const auto ra = a.distances(0);
  const auto rb = b.distances(0);
  EXPECT_EQ(ra.dist, rb.dist);
}

}  // namespace
}  // namespace sepsp
