// Shortest-path tree extraction tests (paper remark ii).
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "core/path_tree.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

TEST(PathTree, TreePathsRealizeDistances) {
  Rng rng(1);
  const GeneratedGraph gg =
      make_grid({10, 10}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({10, 10}));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const Vertex source = 0;
  const auto r = engine.distances(source);
  const PathTree pt = extract_path_tree(gg.graph, source, r.dist);
  for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
    if (!std::isfinite(r.dist[v])) continue;
    const auto path = pt.path_to(v);
    ASSERT_FALSE(path.empty()) << v;
    EXPECT_EQ(path.front(), source);
    EXPECT_EQ(path.back(), v);
    EXPECT_NEAR(tree_path_weight(gg.graph, pt, v), r.dist[v], 1e-6) << v;
  }
}

TEST(PathTree, ParentArcsAreRealAndTight) {
  Rng rng(2);
  const GeneratedGraph gg =
      make_triangulated_grid(8, 8, WeightModel::uniform(1, 5), rng);
  const SeparatorTree tree = build_separator_tree(
      Skeleton(gg.graph), make_geometric_finder(gg.coords));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const auto r = engine.distances(10);
  const PathTree pt = extract_path_tree(gg.graph, 10, r.dist);
  for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
    if (v == 10 || pt.parent[v] == kInvalidVertex) continue;
    double w = 0;
    ASSERT_TRUE(gg.graph.find_arc(pt.parent[v], v, &w));
    EXPECT_NEAR(r.dist[pt.parent[v]] + w, r.dist[v], 1e-6);
  }
}

TEST(PathTree, UnreachableVerticesHaveNoParent) {
  Rng rng(3);
  const GeneratedGraph gg = make_path(30, WeightModel::uniform(1, 4), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_tree_finder());
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const auto r = engine.distances(15);
  const PathTree pt = extract_path_tree(gg.graph, 15, r.dist);
  for (Vertex v = 0; v < 15; ++v) {
    EXPECT_EQ(pt.parent[v], kInvalidVertex);
    EXPECT_TRUE(pt.path_to(v).empty());
  }
  EXPECT_EQ(pt.path_to(20).size(), 6u);
}

TEST(PathTree, ZeroWeightCyclesDoNotLoop) {
  // Two vertices joined by zero-weight arcs in both directions: every
  // arc is tight, yet the BFS construction must stay acyclic.
  GraphBuilder b(3);
  b.add_edge(0, 1, 0.0);
  b.add_edge(1, 0, 0.0);
  b.add_edge(1, 2, 1.0);
  const Digraph g = std::move(b).build();
  std::vector<double> dist{0.0, 0.0, 1.0};
  const PathTree pt = extract_path_tree(g, 0, dist);
  EXPECT_EQ(pt.path_to(2), (std::vector<Vertex>{0, 1, 2}));
  EXPECT_EQ(pt.path_to(1), (std::vector<Vertex>{0, 1}));
}

TEST(PathTree, AgreesWithDijkstraTreeWeights) {
  Rng rng(4);
  const GeneratedGraph gg =
      make_random_digraph(80, 300, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_bfs_finder());
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const auto r = engine.distances(0);
  const DijkstraResult dj = dijkstra(gg.graph, 0);
  const PathTree pt = extract_path_tree(gg.graph, 0, r.dist);
  for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
    if (!std::isfinite(dj.dist[v])) continue;
    EXPECT_NEAR(tree_path_weight(gg.graph, pt, v), dj.dist[v], 1e-6);
  }
}

}  // namespace
}  // namespace sepsp
