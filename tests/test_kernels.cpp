// Parity suite for the cache-blocked dense kernels: blocked and
// reference (element-at-a-time) implementations must produce
// bit-identical results — same bytes, not just "close" — over TropicalD
// and the boolean semiring, on random matrices and adversarial
// tile-boundary shapes.
//
// Why bit-identity is the right bar: multiply/square_step preserve the
// per-cell combine order (k strictly ascending for every output cell),
// so they are unconditionally exact. Blocked Floyd–Warshall re-associates
// cross-tile float additions, so its parity cases use integer-valued
// doubles (exact in IEEE double well past these magnitudes); the
// builders' end-to-end parity below exercises the full pipeline.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/builder_doubling.hpp"
#include "core/builder_recursive.hpp"
#include "graph/generators.hpp"
#include "semiring/matrix.hpp"
#include "semiring/semiring.hpp"
#include "separator/finders.hpp"
#include "util/random.hpp"

namespace sepsp {
namespace {

// Sizes straddling the kKernelTile = 64 boundary plus degenerate and
// multi-tile cases.
const std::vector<std::size_t> kParitySizes = {1, 7, 8, 9, 63, 64, 65, 200};

/// Sets the kernel toggle for the duration of a scope.
class KernelMode {
 public:
  explicit KernelMode(bool blocked)
      : saved_(blocked_kernels_enabled().load()) {
    blocked_kernels_enabled().store(blocked);
  }
  ~KernelMode() { blocked_kernels_enabled().store(saved_); }

 private:
  bool saved_;
};

/// Exact per-cell comparison. For doubles compare the bit patterns so
/// that e.g. -0.0 vs +0.0 or differently-rounded sums cannot slip
/// through an operator== comparison.
template <Semiring S>
void expect_bit_identical(const Matrix<S>& a, const Matrix<S>& b,
                          const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if constexpr (std::is_same_v<typename S::Value, double>) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a.at(i, j)),
                  std::bit_cast<std::uint64_t>(b.at(i, j)))
            << what << " cell (" << i << "," << j << "): " << a.at(i, j)
            << " vs " << b.at(i, j);
      } else {
        EXPECT_EQ(a.at(i, j), b.at(i, j))
            << what << " cell (" << i << "," << j << ")";
      }
    }
  }
}

Matrix<TropicalD> random_tropical(std::size_t rows, std::size_t cols,
                                  Rng& rng, double density,
                                  bool integer_weights) {
  Matrix<TropicalD> m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (!rng.next_bool(density)) continue;
      m.at(i, j) = integer_weights
                       ? static_cast<double>(rng.next_int(1, 20))
                       : rng.next_double(0.25, 8.0);
    }
  }
  return m;
}

Matrix<BooleanSR> random_boolean(std::size_t rows, std::size_t cols, Rng& rng,
                                 double density) {
  Matrix<BooleanSR> m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (rng.next_bool(density)) m.at(i, j) = 1;
    }
  }
  return m;
}

template <Semiring S>
void check_multiply_parity(const Matrix<S>& a, const Matrix<S>& b) {
  Matrix<S> blocked, reference;
  {
    KernelMode mode(true);
    multiply_into(a, b, blocked);
  }
  {
    KernelMode mode(false);
    multiply_into(a, b, reference);
  }
  expect_bit_identical(blocked, reference, "multiply");
}

template <Semiring S>
void check_fw_parity(const Matrix<S>& input) {
  Matrix<S> blocked = input;
  Matrix<S> reference = input;
  {
    KernelMode mode(true);
    floyd_warshall(blocked);
  }
  {
    KernelMode mode(false);
    floyd_warshall(reference);
  }
  expect_bit_identical(blocked, reference, "floyd_warshall");
}

template <Semiring S>
void check_square_parity(const Matrix<S>& input) {
  Matrix<S> blocked = input;
  Matrix<S> reference = input;
  bool cb, cr;
  {
    KernelMode mode(true);
    Matrix<S> scratch;
    cb = square_step(blocked, scratch);
  }
  {
    KernelMode mode(false);
    cr = square_step(reference);  // allocating overload doubles as API check
  }
  EXPECT_EQ(cb, cr) << "square_step changed flag";
  expect_bit_identical(blocked, reference, "square_step");
}

TEST(KernelParity, MultiplySquareShapesTropical) {
  Rng rng(11);
  for (const std::size_t n : kParitySizes) {
    SCOPED_TRACE(n);
    const auto a = random_tropical(n, n, rng, 0.4, /*integer_weights=*/false);
    const auto b = random_tropical(n, n, rng, 0.4, /*integer_weights=*/false);
    check_multiply_parity(a, b);
  }
}

TEST(KernelParity, MultiplySquareShapesBoolean) {
  Rng rng(12);
  for (const std::size_t n : kParitySizes) {
    SCOPED_TRACE(n);
    check_multiply_parity(random_boolean(n, n, rng, 0.3),
                          random_boolean(n, n, rng, 0.3));
  }
}

TEST(KernelParity, MultiplyRectangularShapes) {
  Rng rng(13);
  const std::size_t shapes[][3] = {
      {1, 200, 1}, {65, 7, 129}, {9, 64, 65}, {64, 65, 63}, {200, 1, 200}};
  for (const auto& s : shapes) {
    SCOPED_TRACE(::testing::Message() << s[0] << "x" << s[1] << "x" << s[2]);
    const auto a = random_tropical(s[0], s[1], rng, 0.5, false);
    const auto b = random_tropical(s[1], s[2], rng, 0.5, false);
    check_multiply_parity(a, b);
  }
}

TEST(KernelParity, FloydWarshallTropicalIntegerWeights) {
  Rng rng(14);
  for (const std::size_t n : kParitySizes) {
    SCOPED_TRACE(n);
    check_fw_parity(random_tropical(n, n, rng, 0.25, /*integer_weights=*/true));
  }
}

TEST(KernelParity, FloydWarshallSingleTileRealWeights) {
  // Up to one tile the blocked kernel IS the reference loop, so real
  // (non-integer) weights are bit-exact too.
  Rng rng(15);
  for (const std::size_t n : {1u, 9u, 63u, 64u}) {
    SCOPED_TRACE(n);
    check_fw_parity(random_tropical(n, n, rng, 0.3, false));
  }
}

TEST(KernelParity, FloydWarshallBoolean) {
  Rng rng(16);
  for (const std::size_t n : kParitySizes) {
    SCOPED_TRACE(n);
    check_fw_parity(random_boolean(n, n, rng, 0.15));
  }
}

TEST(KernelParity, SquareStepValuesAndChangedFlag) {
  Rng rng(17);
  for (const std::size_t n : kParitySizes) {
    SCOPED_TRACE(n);
    check_square_parity(random_tropical(n, n, rng, 0.3, false));
    check_square_parity(random_boolean(n, n, rng, 0.25));
  }
}

TEST(KernelParity, AdversarialAllZeroAndIdentity) {
  for (const std::size_t n : {64u, 65u, 200u}) {
    SCOPED_TRACE(n);
    check_multiply_parity(Matrix<TropicalD>(n), Matrix<TropicalD>(n));
    check_fw_parity(Matrix<TropicalD>(n));
    check_square_parity(Matrix<TropicalD>(n));
    const auto id = Matrix<TropicalD>::identity(n);
    check_multiply_parity(id, id);
    check_fw_parity(id);
  }
}

TEST(KernelParity, AdversarialTileBoundaryEntries) {
  // Finite entries only in the rows/cols straddling tile boundaries:
  // exercises the panel phases of blocked FW with everything else zero.
  for (const std::size_t n : {65u, 129u, 200u}) {
    SCOPED_TRACE(n);
    Matrix<TropicalD> m(n);
    for (const std::size_t r : {std::size_t{63}, std::size_t{64},
                                std::size_t{65} % n}) {
      for (std::size_t j = 0; j < n; ++j) {
        m.at(r, j) = static_cast<double>((r + j) % 9 + 1);
        m.at(j, r) = static_cast<double>((r * 3 + j) % 7 + 1);
      }
    }
    check_multiply_parity(m, m);
    check_fw_parity(m);
    check_square_parity(m);
  }
}

TEST(KernelParity, NegativeWeightsUpperTriangular) {
  // Negative arcs without negative cycles (DAG order): integer-valued.
  Rng rng(18);
  for (const std::size_t n : {9u, 65u, 200u}) {
    SCOPED_TRACE(n);
    Matrix<TropicalD> m(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.next_bool(0.2)) {
          m.at(i, j) = static_cast<double>(rng.next_int(-5, 10));
        }
      }
    }
    check_fw_parity(m);
    check_multiply_parity(m, m);
  }
}

TEST(KernelParity, ScratchReuseAcrossShapes) {
  // One scratch matrix threaded through products of different shapes —
  // the builders' arena pattern — must match fresh-scratch results.
  Rng rng(19);
  Matrix<TropicalD> reused;
  const std::size_t shapes[][3] = {{65, 9, 70}, {7, 64, 7}, {200, 3, 1}};
  for (const auto& s : shapes) {
    const auto a = random_tropical(s[0], s[1], rng, 0.5, false);
    const auto b = random_tropical(s[1], s[2], rng, 0.5, false);
    multiply_into(a, b, reused);
    const auto fresh = multiply(a, b);
    expect_bit_identical(reused, fresh, "scratch reuse");
  }
}

TEST(KernelParity, ClosureBySquaringParity) {
  Rng rng(20);
  for (const std::size_t n : {9u, 64u, 65u, 129u}) {
    SCOPED_TRACE(n);
    const auto input = random_tropical(n, n, rng, 0.1, false);
    Matrix<TropicalD> blocked, reference;
    {
      KernelMode mode(true);
      blocked = closure_by_squaring(input);
    }
    {
      KernelMode mode(false);
      reference = closure_by_squaring(input);
    }
    expect_bit_identical(blocked, reference, "closure_by_squaring");
  }
}

/// End-to-end: both builders, both closure kernels, blocked vs
/// reference, on a 17x17 grid — shortcut sets, weights (bit-compared),
/// and cost-model charges must all agree.
template <typename BuildFn>
void check_build_parity(const BuildFn& build) {
  Augmentation<TropicalD> blocked, reference;
  {
    KernelMode mode(true);
    blocked = build();
  }
  {
    KernelMode mode(false);
    reference = build();
  }
  ASSERT_EQ(blocked.shortcuts.size(), reference.shortcuts.size());
  for (std::size_t i = 0; i < blocked.shortcuts.size(); ++i) {
    EXPECT_EQ(blocked.shortcuts[i].from, reference.shortcuts[i].from);
    EXPECT_EQ(blocked.shortcuts[i].to, reference.shortcuts[i].to);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(blocked.shortcuts[i].value),
              std::bit_cast<std::uint64_t>(reference.shortcuts[i].value))
        << "shortcut " << i;
  }
  EXPECT_EQ(blocked.build_cost.work, reference.build_cost.work);
  EXPECT_EQ(blocked.critical_depth, reference.critical_depth);
}

TEST(KernelParity, EndToEndAugmentation) {
  Rng rng(21);
  const auto gg = make_grid({17, 17}, WeightModel::uniform(1, 10), rng);
  const auto tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({17, 17}));
  check_build_parity([&] {
    return build_augmentation_recursive<TropicalD>(gg.graph, tree,
                                                   ClosureKind::kSquaring);
  });
  check_build_parity([&] {
    return build_augmentation_recursive<TropicalD>(
        gg.graph, tree, ClosureKind::kFloydWarshall);
  });
  check_build_parity(
      [&] { return build_augmentation_doubling<TropicalD>(gg.graph, tree); });
}

}  // namespace
}  // namespace sepsp
