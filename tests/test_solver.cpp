// Difference-constraint solver tests: feasible systems yield satisfying
// assignments, infeasible ones yield valid negative-cycle certificates,
// and the engine path agrees with the Bellman–Ford reference.
#include <gtest/gtest.h>

#include "separator/finders.hpp"
#include "solver/difference_constraints.hpp"
#include "util/random.hpp"

namespace sepsp {
namespace {

void expect_satisfies(const DifferenceSystem& sys,
                      const std::vector<DifferenceConstraint>& constraints,
                      const DifferenceSolution& sol) {
  ASSERT_TRUE(sol.feasible);
  ASSERT_EQ(sol.x.size(), sys.num_variables());
  for (const DifferenceConstraint& c : constraints) {
    EXPECT_LE(sol.x[c.j] - sol.x[c.i], c.c + 1e-9)
        << "x" << c.j << " - x" << c.i << " <= " << c.c;
  }
}

std::vector<DifferenceConstraint> random_feasible(std::size_t n,
                                                  std::size_t m, Rng& rng) {
  // Feasibility by construction: pick a hidden assignment h and only add
  // constraints it satisfies (c >= h[j] - h[i]).
  std::vector<double> h(n);
  for (double& x : h) x = rng.next_double(-20, 20);
  std::vector<DifferenceConstraint> out;
  for (std::size_t k = 0; k < m; ++k) {
    const auto i = static_cast<std::uint32_t>(rng.next_below(n));
    auto j = static_cast<std::uint32_t>(rng.next_below(n - 1));
    if (j >= i) ++j;
    out.push_back({i, j, h[j] - h[i] + rng.next_double(0, 5)});
  }
  return out;
}

TEST(Solver, FeasibleSystemSolved) {
  Rng rng(1);
  const auto constraints = random_feasible(40, 140, rng);
  DifferenceSystem sys(40);
  for (const auto& c : constraints) sys.add(c.i, c.j, c.c);
  expect_satisfies(sys, constraints, sys.solve());
  expect_satisfies(sys, constraints, sys.solve_reference());
}

TEST(Solver, EngineAndReferenceAgreeOnAssignment) {
  Rng rng(2);
  const auto constraints = random_feasible(30, 90, rng);
  DifferenceSystem sys(30);
  for (const auto& c : constraints) sys.add(c.i, c.j, c.c);
  const auto a = sys.solve();
  const auto b = sys.solve_reference();
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  // Both compute distances from the same virtual source, so the actual
  // assignments coincide (not just both feasible).
  for (std::size_t v = 0; v < 30; ++v) {
    EXPECT_NEAR(a.x[v], b.x[v], 1e-9);
  }
}

TEST(Solver, InfeasibleSystemGivesValidCertificate) {
  // x1 - x0 <= 1, x2 - x1 <= 1, x0 - x2 <= -3: summing gives 0 <= -1.
  DifferenceSystem sys(3);
  sys.add(0, 1, 1);
  sys.add(1, 2, 1);
  sys.add(2, 0, -3);
  for (const auto& sol : {sys.solve(), sys.solve_reference()}) {
    ASSERT_FALSE(sol.feasible);
    ASSERT_GE(sol.certificate.size(), 2u);
    // The certificate cycle must have negative total constraint weight.
    const Digraph g = sys.constraint_graph();
    double total = 0;
    for (std::size_t k = 0; k < sol.certificate.size(); ++k) {
      const Vertex u = sol.certificate[k];
      const Vertex v = sol.certificate[(k + 1) % sol.certificate.size()];
      double w = 0;
      ASSERT_TRUE(g.find_arc(u, v, &w)) << u << "->" << v;
      total += w;
    }
    EXPECT_LT(total, 0);
  }
}

TEST(Solver, InfeasibleBuriedInLargeFeasibleSystem) {
  Rng rng(3);
  const auto constraints = random_feasible(50, 150, rng);
  DifferenceSystem sys(50);
  for (const auto& c : constraints) sys.add(c.i, c.j, c.c);
  // Inject a tight negative loop between variables 7 and 8.
  sys.add(7, 8, 2.0);
  sys.add(8, 7, -2.5);
  const auto sol = sys.solve();
  ASSERT_FALSE(sol.feasible);
  const Digraph g = sys.constraint_graph();
  double total = 0;
  for (std::size_t k = 0; k < sol.certificate.size(); ++k) {
    const Vertex u = sol.certificate[k];
    const Vertex v = sol.certificate[(k + 1) % sol.certificate.size()];
    double w = 0;
    ASSERT_TRUE(g.find_arc(u, v, &w));
    total += w;
  }
  EXPECT_LT(total, 0);
}

TEST(Solver, AcceptsExternalDecomposition) {
  // Chain constraints give a path-shaped constraint graph: decompose it
  // with the tree finder and pass the tree in.
  DifferenceSystem sys(20);
  std::vector<DifferenceConstraint> cs;
  for (std::uint32_t v = 0; v + 1 < 20; ++v) {
    cs.push_back({v, v + 1, 1.0});
    cs.push_back({v + 1, v, 0.5});
    sys.add(v, v + 1, 1.0);
    sys.add(v + 1, v, 0.5);
  }
  const Digraph g = sys.constraint_graph();
  const Skeleton skel(g);
  const SeparatorTree tree = build_separator_tree(skel, make_tree_finder());
  const auto sol = sys.solve(&tree, BuilderKind::kDoubling);
  expect_satisfies(sys, cs, sol);
}

TEST(Solver, EmptySystemIsFeasible) {
  DifferenceSystem sys(5);
  const auto sol = sys.solve();
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.x.size(), 5u);
}

TEST(Solver, ZeroCycleIsFeasible) {
  // x1 - x0 <= 1 and x0 - x1 <= -1: tight but consistent.
  DifferenceSystem sys(2);
  sys.add(0, 1, 1);
  sys.add(1, 0, -1);
  const auto sol = sys.solve();
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.x[1] - sol.x[0], 1.0, 1e-9);
}

}  // namespace
}  // namespace sepsp
