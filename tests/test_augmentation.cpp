// Properties of the E+ augmentation (Section 3 / Theorem 3.1):
//   (i)  shortcut weights never undercut true distances, and distances
//        in G+ equal distances in G,
//   (ii) the min-weight diameter of G+ respects 4 d_G + 2 ell + 1,
//   plus: both builders agree, shortcut endpoints have defined levels,
//   and shortcut weights are exactly dist_{G(t)} on the node subgraphs.
#include <gtest/gtest.h>

#include <map>

#include "baseline/dijkstra.hpp"
#include "core/builder_doubling.hpp"
#include "core/builder_recursive.hpp"
#include "core/query.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

struct Family {
  std::string name;
  GeneratedGraph gg;
  SeparatorTree tree;
};

std::vector<Family> families() {
  std::vector<Family> out;
  Rng rng(99);
  {
    Family f{"grid8x8",
             make_grid({8, 8}, WeightModel::uniform(1, 10), rng), {}};
    f.tree = build_separator_tree(Skeleton(f.gg.graph),
                                  make_grid_finder({8, 8}));
    out.push_back(std::move(f));
  }
  {
    Family f{"grid4x4x4",
             make_grid({4, 4, 4}, WeightModel::uniform(1, 5), rng), {}};
    f.tree = build_separator_tree(Skeleton(f.gg.graph),
                                  make_grid_finder({4, 4, 4}));
    out.push_back(std::move(f));
  }
  {
    Family f{"tree200", make_random_tree(200, WeightModel::uniform(1, 9), rng),
             {}};
    f.tree = build_separator_tree(Skeleton(f.gg.graph), make_tree_finder());
    out.push_back(std::move(f));
  }
  {
    Family f{"trimesh", make_triangulated_grid(8, 8,
                                               WeightModel::uniform(1, 4), rng),
             {}};
    f.tree = build_separator_tree(Skeleton(f.gg.graph),
                                  make_geometric_finder(f.gg.coords));
    out.push_back(std::move(f));
  }
  {
    Family f{"sparse-random",
             make_random_digraph(150, 450, WeightModel::uniform(1, 9), rng),
             {}};
    f.tree = build_separator_tree(Skeleton(f.gg.graph), make_bfs_finder());
    out.push_back(std::move(f));
  }
  return out;
}

TEST(Augmentation, ShortcutsNeverUndercutTrueDistances) {
  for (const Family& f : families()) {
    const auto aug = build_augmentation_recursive<TropicalD>(f.gg.graph, f.tree);
    // Group shortcuts by source to reuse one Dijkstra per source.
    std::map<Vertex, std::vector<const Shortcut<TropicalD>*>> by_source;
    for (const auto& e : aug.shortcuts) by_source[e.from].push_back(&e);
    for (const auto& [source, edges] : by_source) {
      const DijkstraResult dj = dijkstra(f.gg.graph, source);
      for (const auto* e : edges) {
        EXPECT_GE(e->value, dj.dist[e->to] - 1e-9)
            << f.name << " shortcut " << e->from << "->" << e->to;
      }
    }
  }
}

TEST(Augmentation, ShortcutEndpointsHaveDefinedLevels) {
  for (const Family& f : families()) {
    const auto aug = build_augmentation_recursive<TropicalD>(f.gg.graph, f.tree);
    for (const auto& e : aug.shortcuts) {
      EXPECT_TRUE(aug.levels.defined(e.from)) << f.name;
      EXPECT_TRUE(aug.levels.defined(e.to)) << f.name;
      EXPECT_NE(e.from, e.to) << f.name;
      EXPECT_TRUE(TropicalD::improves(TropicalD::zero(), e.value)) << f.name;
    }
  }
}

TEST(Augmentation, Theorem31DiameterBound) {
  Rng pick(5);
  for (const Family& f : families()) {
    const auto aug = build_augmentation_recursive<TropicalD>(f.gg.graph, f.tree);
    const std::size_t bound = aug.diameter_bound();
    // Sample a few sources; the radius from each must respect the bound.
    for (int trial = 0; trial < 3; ++trial) {
      const auto source =
          static_cast<Vertex>(pick.next_below(f.gg.graph.num_vertices()));
      const std::size_t radius =
          measure_shortcut_radius(f.gg.graph, aug, source);
      EXPECT_LE(radius, bound) << f.name << " source " << source;
    }
  }
}

TEST(Augmentation, AugmentationShrinksRadiusDramatically) {
  // On a long path graph the raw min-weight diameter is n-1, while G+
  // must stay logarithmic: the sharpest illustration of Theorem 3.1.
  Rng rng(6);
  const GeneratedGraph gg =
      make_path(257, WeightModel::uniform(1, 3), rng, /*bidirectional=*/true);
  const Skeleton skel(gg.graph);
  const SeparatorTree tree = build_separator_tree(skel, make_tree_finder());
  const auto aug = build_augmentation_recursive<TropicalD>(gg.graph, tree);
  const std::size_t radius = measure_shortcut_radius(gg.graph, aug, 0);
  EXPECT_LE(radius, aug.diameter_bound());
  EXPECT_LT(radius, 64u);   // log-ish, nowhere near 256
  EXPECT_GE(aug.height, 6u);
}

TEST(Augmentation, BothBuildersProduceIdenticalDistances) {
  for (const Family& f : families()) {
    const auto rec = build_augmentation_recursive<TropicalD>(f.gg.graph, f.tree);
    const auto dbl = build_augmentation_doubling<TropicalD>(f.gg.graph, f.tree);
    // The shortcut edge sets coincide (same Et definition); values match.
    ASSERT_EQ(rec.shortcuts.size(), dbl.shortcuts.size()) << f.name;
    for (std::size_t i = 0; i < rec.shortcuts.size(); ++i) {
      EXPECT_EQ(rec.shortcuts[i].from, dbl.shortcuts[i].from) << f.name;
      EXPECT_EQ(rec.shortcuts[i].to, dbl.shortcuts[i].to) << f.name;
      EXPECT_NEAR(rec.shortcuts[i].value, dbl.shortcuts[i].value, 1e-9)
          << f.name << " edge " << rec.shortcuts[i].from << "->"
          << rec.shortcuts[i].to;
    }
  }
}

TEST(Augmentation, ClosureKindsAgree) {
  for (const Family& f : families()) {
    const auto sq = build_augmentation_recursive<TropicalD>(
        f.gg.graph, f.tree, ClosureKind::kSquaring);
    const auto fw = build_augmentation_recursive<TropicalD>(
        f.gg.graph, f.tree, ClosureKind::kFloydWarshall);
    ASSERT_EQ(sq.shortcuts.size(), fw.shortcuts.size()) << f.name;
    for (std::size_t i = 0; i < sq.shortcuts.size(); ++i) {
      EXPECT_NEAR(sq.shortcuts[i].value, fw.shortcuts[i].value, 1e-9)
          << f.name;
    }
  }
}

TEST(Augmentation, DoublingWithoutEarlyExitMatches) {
  Rng rng(7);
  const GeneratedGraph gg = make_grid({7, 7}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({7, 7}));
  DoublingOptions full;
  full.early_exit = false;
  const auto a = build_augmentation_doubling<TropicalD>(gg.graph, tree);
  const auto b = build_augmentation_doubling<TropicalD>(gg.graph, tree, full);
  ASSERT_EQ(a.shortcuts.size(), b.shortcuts.size());
  for (std::size_t i = 0; i < a.shortcuts.size(); ++i) {
    EXPECT_NEAR(a.shortcuts[i].value, b.shortcuts[i].value, 1e-12);
  }
}

TEST(Augmentation, ExactIntegerShortcutsEqualSubgraphDistances) {
  // With integer weights, check shortcut values are *exactly* the
  // distances within the owning node subgraph G(t) — Proposition 4.2.
  Rng rng(8);
  const GeneratedGraph gg = make_grid({6, 6}, WeightModel::uniform(1, 9), rng);
  // Round weights to integers via TropicalI and compare with per-node FW.
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({6, 6}));
  const auto aug = build_augmentation_recursive<TropicalI>(gg.graph, tree);
  // Reference: global dedup of per-node brute-force subgraph distances.
  std::map<std::pair<Vertex, Vertex>, long long> best;
  for (std::size_t id = 0; id < tree.num_nodes(); ++id) {
    const DecompNode& t = tree.node(id);
    const Digraph::Induced sub = gg.graph.induced(t.vertices);
    Matrix<TropicalI> m(t.vertices.size());
    for (std::size_t i = 0; i < t.vertices.size(); ++i) {
      m.at(i, i) = 0;
      for (const Arc& a : sub.graph.out(static_cast<Vertex>(i))) {
        m.merge(i, a.to, TropicalI::from_weight(a.weight));
      }
    }
    floyd_warshall(m);
    auto emit = [&](const std::vector<Vertex>& group) {
      for (const Vertex u : group) {
        for (const Vertex v : group) {
          if (u == v) continue;
          const long long d =
              m.at(sub.local_of[u], sub.local_of[v]);
          if (d >= TropicalI::kInf) continue;
          const auto key = std::make_pair(u, v);
          const auto it = best.find(key);
          if (it == best.end() || d < it->second) best[key] = d;
        }
      }
    };
    emit(t.separator);
    emit(t.boundary);
  }
  ASSERT_EQ(aug.shortcuts.size(), best.size());
  for (const auto& e : aug.shortcuts) {
    const auto it = best.find({e.from, e.to});
    ASSERT_NE(it, best.end());
    EXPECT_EQ(e.value, it->second) << e.from << "->" << e.to;
  }
}

}  // namespace
}  // namespace sepsp
