// Unit tests for src/util: PRNG, tables, CLI parsing, env helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>

#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/random.hpp"
#include "util/slab.hpp"
#include "util/table.hpp"

namespace sepsp {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    // Different seeds diverge almost surely.
  }
  int equal = 0;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) equal += (a2() == c());
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowIsInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::vector<int> histogram(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++histogram[v];
  }
  for (const int count : histogram) {
    EXPECT_NEAR(count, trials / 10, trials / 100);
  }
}

TEST(Rng, NextIntCoversBoundsInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_int(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng rng(5);
  Rng child = rng.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (rng() == child());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  shuffle(v, rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Splitmix, MixesNearbySeeds) {
  EXPECT_NE(splitmix64(1), splitmix64(2));
  EXPECT_NE(splitmix64(0), 0u);
}

TEST(Table, PrintsAlignedRows) {
  Table t("demo");
  t.set_header({"a", "value"});
  t.add_row().cell(1).cell(2.5);
  t.add_row().cell(std::uint64_t{12345}).cell("xyz");
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  EXPECT_NE(s.find("2.500"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(1000000000ULL), "1,000,000,000");
}

TEST(Table, LogLogSlopeRecoversExponent) {
  std::vector<double> xs, ys;
  for (double x : {100.0, 200.0, 400.0, 800.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 1.5));
  }
  EXPECT_NEAR(fit_log_log_slope(xs, ys), 1.5, 1e-9);
}

TEST(Args, ParsesAllForms) {
  const char* argv[] = {"prog",       "--alpha=3",  "--beta", "4",
                        "positional", "--flag",     "--gamma=x"};
  const Args args(7, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 4);
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_EQ(args.get_string("gamma", ""), "x");
  EXPECT_EQ(args.get_int("missing", 42), 42);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Args, GetUintParsesAndValidates) {
  const char* argv[] = {"prog", "--n=12", "--neg=-1", "--big=100"};
  const Args args(4, argv);
  EXPECT_EQ(args.get_uint("n", 0), 12u);
  EXPECT_EQ(args.get_uint("missing", 7), 7u);
  EXPECT_EQ(args.get_uint("n", 0, 1, 64), 12u);
  EXPECT_DEATH(args.get_uint("neg", 0), "non-negative");
  EXPECT_DEATH(args.get_uint("big", 0, 1, 64), "out of range");
  EXPECT_DEATH(args.get_uint("n", 0, 16, 64), "out of range");
}

TEST(Args, BooleanNegatives) {
  const char* argv[] = {"prog", "--x=false", "--y=0", "--z=no"};
  const Args args(4, argv);
  EXPECT_FALSE(args.get_bool("x", true));
  EXPECT_FALSE(args.get_bool("y", true));
  EXPECT_FALSE(args.get_bool("z", true));
}

std::vector<double> iota_values(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
  return v;
}

TEST(SlabVector, RoundTripsContentsAcrossSlabBoundaries) {
  // A ragged tail: two full slabs plus a partial third.
  const std::size_t n = 2 * SlabVector<double>::kSlabEntries + 100;
  const auto init = iota_values(n);
  const SlabVector<double> v{std::span<const double>(init)};
  ASSERT_EQ(v.size(), n);
  EXPECT_EQ(v.slab_count(), 3u);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(v[i], init[i]) << i;

  std::size_t covered = 0;
  std::size_t runs = 0;
  v.for_each_run([&](std::size_t lo, std::size_t len, const double* data) {
    EXPECT_EQ(lo, runs * SlabVector<double>::kSlabEntries);
    for (std::size_t i = 0; i < len; ++i) ASSERT_EQ(data[i], init[lo + i]);
    covered += len;
    ++runs;
  });
  EXPECT_EQ(covered, n);
  EXPECT_EQ(runs, 3u);
}

TEST(SlabVector, ForkAliasesEverySlab) {
  const auto init = iota_values(SlabVector<double>::kSlabEntries + 5);
  SlabVector<double> owner{std::span<const double>(init)};
  const SlabVector<double> fork = owner.fork();
  ASSERT_EQ(fork.slab_count(), owner.slab_count());
  for (std::size_t s = 0; s < owner.slab_count(); ++s) {
    EXPECT_EQ(owner.slab_data(s), fork.slab_data(s)) << s;
  }
  EXPECT_EQ(owner.slabs_shared_with(fork), owner.slab_count());
}

TEST(SlabVector, SetClonesSharedSlabOnceAndFreezesForks) {
  const std::size_t n = 2 * SlabVector<double>::kSlabEntries;
  SlabVector<double> owner{std::span<const double>(iota_values(n))};
  const SlabVector<double> fork = owner.fork();

  // First write to a shared slab clones it; the fork keeps the old
  // values and the old storage.
  const double* fork_slab0 = fork.slab_data(0);
  EXPECT_TRUE(owner.set(10, -1.0));
  EXPECT_EQ(owner[10], -1.0);
  EXPECT_EQ(fork[10], 10.0);
  EXPECT_EQ(fork.slab_data(0), fork_slab0);
  EXPECT_NE(owner.slab_data(0), fork.slab_data(0));
  EXPECT_EQ(owner.slabs_shared_with(fork), owner.slab_count() - 1);

  // Further writes into the already-detached slab are in place.
  EXPECT_FALSE(owner.set(11, -2.0));
  EXPECT_EQ(fork[11], 11.0);

  // The untouched slab stays aliased.
  EXPECT_EQ(owner.slab_data(1), fork.slab_data(1));
}

TEST(SlabVector, RepeatedForksStayIndependent) {
  SlabVector<double> owner{std::span<const double>(iota_values(64))};
  const SlabVector<double> epoch0 = owner.fork();
  owner.set(0, 100.0);
  const SlabVector<double> epoch1 = owner.fork();
  owner.set(0, 200.0);
  EXPECT_EQ(epoch0[0], 0.0);
  EXPECT_EQ(epoch1[0], 100.0);
  EXPECT_EQ(owner[0], 200.0);
  EXPECT_EQ(epoch0.slabs_shared_with(epoch1), 0u);
}

TEST(Env, ReadsAndFallsBack) {
  ::setenv("SEPSP_TEST_ENV_INT", "17", 1);
  EXPECT_EQ(env_int("SEPSP_TEST_ENV_INT", 1), 17);
  EXPECT_EQ(env_int("SEPSP_TEST_ENV_MISSING", 5), 5);
  ::setenv("SEPSP_TEST_ENV_BAD", "zzz", 1);
  EXPECT_EQ(env_int("SEPSP_TEST_ENV_BAD", 9), 9);
  EXPECT_EQ(env_string("SEPSP_TEST_ENV_MISSING", "dflt"), "dflt");
}

}  // namespace
}  // namespace sepsp
