// Delta-stepping, negative-cycle extraction and condensation
// reachability.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/delta_stepping.hpp"
#include "baseline/dijkstra.hpp"
#include "baseline/negative_cycle.hpp"
#include "baseline/reach.hpp"
#include "core/condensation.hpp"
#include "graph/generators.hpp"

namespace sepsp {
namespace {

TEST(DeltaStepping, MatchesDijkstraAcrossFamilies) {
  Rng rng(1);
  const std::vector<GeneratedGraph> graphs = {
      make_grid({12, 12}, WeightModel::uniform(1, 10), rng),
      make_random_digraph(200, 900, WeightModel::uniform(0.1, 20), rng),
      make_random_tree(150, WeightModel::uniform(1, 3), rng),
      make_path(64, WeightModel::uniform(1, 2), rng),
  };
  for (const auto& gg : graphs) {
    for (const Vertex src : {Vertex{0}, Vertex{10}}) {
      const DeltaSteppingResult got = delta_stepping(gg.graph, src);
      const DijkstraResult want = dijkstra(gg.graph, src);
      for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
        if (std::isinf(want.dist[v])) {
          EXPECT_TRUE(std::isinf(got.dist[v]));
        } else {
          EXPECT_NEAR(got.dist[v], want.dist[v], 1e-9) << v;
        }
      }
    }
  }
}

TEST(DeltaStepping, DeltaSweepAllCorrect) {
  Rng rng(2);
  const GeneratedGraph gg =
      make_grid({10, 10}, WeightModel::uniform(1, 10), rng);
  const DijkstraResult want = dijkstra(gg.graph, 0);
  for (const double delta : {0.5, 2.0, 8.0, 100.0}) {
    const DeltaSteppingResult got = delta_stepping(gg.graph, 0, delta);
    for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
      EXPECT_NEAR(got.dist[v], want.dist[v], 1e-9)
          << "delta " << delta << " v " << v;
    }
  }
}

TEST(DeltaStepping, ZeroWeightEdgesConverge) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 0.0);
  b.add_edge(1, 2, 0.0);
  b.add_edge(2, 3, 1.0);
  const Digraph g = std::move(b).build();
  const DeltaSteppingResult r = delta_stepping(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[3], 1.0);
}

TEST(DeltaStepping, BucketPhasesScaleWithDiameterOverDelta) {
  Rng rng(3);
  const GeneratedGraph gg = make_path(200, WeightModel::unit(), rng);
  const DeltaSteppingResult coarse = delta_stepping(gg.graph, 0, 100.0);
  const DeltaSteppingResult fine = delta_stepping(gg.graph, 0, 1.0);
  EXPECT_LT(coarse.bucket_phases, fine.bucket_phases);
}

TEST(NegativeCycle, FindsPlantedCycle) {
  Rng rng(4);
  GeneratedGraph gg = make_grid({8, 8}, WeightModel::uniform(1, 5), rng);
  GraphBuilder b(gg.graph.num_vertices());
  b.add_edges(gg.graph.edge_list());
  b.add_edge(3, 20, 1.0);
  b.add_edge(20, 35, 1.0);
  b.add_edge(35, 3, -9.0);
  const Digraph g = std::move(b).build();
  const auto cycle = find_negative_cycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_GE(cycle->size(), 2u);
  EXPECT_LT(cycle_weight(g, *cycle), 0.0);
}

TEST(NegativeCycle, NoneOnCleanGraphs) {
  Rng rng(5);
  const GeneratedGraph a = make_grid({7, 7}, WeightModel::mixed_sign(), rng);
  EXPECT_FALSE(find_negative_cycle(a.graph).has_value());
  const GeneratedGraph b = make_grid({7, 7}, WeightModel::uniform(1, 9), rng);
  EXPECT_FALSE(find_negative_cycle(b.graph).has_value());
}

TEST(NegativeCycle, TightZeroCycleIsNotNegative) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 2.0);
  b.add_edge(1, 0, -2.0);
  EXPECT_FALSE(find_negative_cycle(std::move(b).build()).has_value());
}

TEST(Condensation, ReachabilityThroughCycles) {
  // Three 10-cycles chained by one-way bridges plus random chords.
  Rng rng(6);
  GraphBuilder b(30);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 10; ++i) {
      b.add_edge(static_cast<Vertex>(10 * c + i),
                 static_cast<Vertex>(10 * c + (i + 1) % 10), 1.0);
    }
  }
  b.add_edge(3, 14, 1.0);
  b.add_edge(17, 25, 1.0);
  const Digraph g = std::move(b).build();
  const CondensedReachability cr = CondensedReachability::build(g);
  EXPECT_EQ(cr.num_components(), 3u);
  for (const Vertex src : {Vertex{0}, Vertex{12}, Vertex{29}}) {
    const auto got = cr.reachable_from(src);
    const auto want = bfs_reachable(g, src);
    for (Vertex v = 0; v < 30; ++v) {
      EXPECT_EQ(got[v] != 0, want[v] != 0) << src << "->" << v;
    }
  }
}

TEST(Condensation, RandomGraphsAgreeWithBfs) {
  Rng rng(7);
  for (int trial = 0; trial < 4; ++trial) {
    const GeneratedGraph gg =
        make_random_digraph(150, 300 + 50 * trial, WeightModel::unit(), rng);
    const CondensedReachability cr = CondensedReachability::build(gg.graph);
    EXPECT_LE(cr.num_components(), gg.graph.num_vertices());
    for (const Vertex src : {Vertex{0}, Vertex{75}, Vertex{149}}) {
      const auto got = cr.reachable_from(src);
      const auto want = bfs_reachable(gg.graph, src);
      for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
        ASSERT_EQ(got[v] != 0, want[v] != 0) << src << "->" << v;
      }
    }
  }
}

TEST(Condensation, StronglyConnectedGraphIsOneComponent) {
  Rng rng(8);
  const GeneratedGraph gg = make_grid({6, 6}, WeightModel::unit(), rng);
  const CondensedReachability cr = CondensedReachability::build(gg.graph);
  EXPECT_EQ(cr.num_components(), 1u);
  const auto reach = cr.reachable_from(5);
  for (Vertex v = 0; v < 36; ++v) EXPECT_TRUE(reach[v]);
}

}  // namespace
}  // namespace sepsp
