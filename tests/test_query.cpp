// Query engine correctness: the leveled schedule against Dijkstra /
// Bellman–Ford ground truth across families, weight models and sources;
// multi-source and weighted-seed runs; negative-cycle detection; work
// accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/bellman_ford.hpp"
#include "baseline/dijkstra.hpp"
#include "baseline/johnson.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

// Parameterized sweep: (family, weight model, builder).
struct Case {
  std::string family;
  std::string weights;
  BuilderKind builder;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return info.param.family + "_" + info.param.weights + "_" +
         (info.param.builder == BuilderKind::kRecursive ? "rec" : "dbl");
}

class QuerySweep : public ::testing::TestWithParam<Case> {
 public:
  struct Instance {
    GeneratedGraph gg;
    SeparatorTree tree;
  };

  Instance make_instance() const {
    Rng rng(2024);
    const Case& c = GetParam();
    WeightModel wm = WeightModel::uniform(1, 10);
    if (c.weights == "unit") wm = WeightModel::unit();
    if (c.weights == "mixed") wm = WeightModel::mixed_sign(8.0);

    Instance inst;
    if (c.family == "grid2d") {
      inst.gg = make_grid({11, 11}, wm, rng);
      inst.tree = build_separator_tree(Skeleton(inst.gg.graph),
                                       make_grid_finder({11, 11}));
    } else if (c.family == "grid3d") {
      inst.gg = make_grid({5, 5, 5}, wm, rng);
      inst.tree = build_separator_tree(Skeleton(inst.gg.graph),
                                       make_grid_finder({5, 5, 5}));
    } else if (c.family == "tree") {
      inst.gg = make_random_tree(180, wm, rng);
      inst.tree =
          build_separator_tree(Skeleton(inst.gg.graph), make_tree_finder());
    } else if (c.family == "mesh") {
      inst.gg = make_triangulated_grid(9, 13, wm, rng);
      inst.tree = build_separator_tree(Skeleton(inst.gg.graph),
                                       make_geometric_finder(inst.gg.coords));
    } else if (c.family == "sparse") {
      inst.gg = make_random_digraph(140, 420, wm, rng);
      inst.tree =
          build_separator_tree(Skeleton(inst.gg.graph), make_bfs_finder());
    } else {
      ADD_FAILURE() << "unknown family";
    }
    return inst;
  }
};

TEST_P(QuerySweep, MatchesGroundTruthFromManySources) {
  const Instance inst = make_instance();
  typename SeparatorShortestPaths<>::Options opts;
  opts.build.builder = GetParam().builder;
  const auto engine =
      SeparatorShortestPaths<>::build(inst.gg.graph, inst.tree, opts);

  const bool negative_weights = GetParam().weights == "mixed";
  Rng pick(55);
  for (int trial = 0; trial < 6; ++trial) {
    const auto source =
        static_cast<Vertex>(pick.next_below(inst.gg.graph.num_vertices()));
    const QueryResult<TropicalD> got = engine.distances(source);
    ASSERT_FALSE(got.negative_cycle);
    std::vector<double> want;
    if (negative_weights) {
      const BellmanFordResult bf = bellman_ford(inst.gg.graph, source);
      ASSERT_FALSE(bf.negative_cycle);
      want = bf.dist;
    } else {
      want = dijkstra(inst.gg.graph, source).dist;
    }
    for (Vertex v = 0; v < inst.gg.graph.num_vertices(); ++v) {
      if (std::isinf(want[v])) {
        EXPECT_TRUE(std::isinf(got.dist[v])) << "v=" << v;
      } else {
        EXPECT_NEAR(got.dist[v], want[v], 1e-8) << "v=" << v;
      }
    }
  }
}

TEST_P(QuerySweep, UnscheduledAgreesWithScheduled) {
  const Instance inst = make_instance();
  typename SeparatorShortestPaths<>::Options opts;
  opts.build.builder = GetParam().builder;
  const auto engine =
      SeparatorShortestPaths<>::build(inst.gg.graph, inst.tree, opts);
  const Vertex source = 3;
  const auto scheduled = engine.query_engine().run(source);
  const auto naive = engine.query_engine().run_unscheduled(source);
  for (Vertex v = 0; v < inst.gg.graph.num_vertices(); ++v) {
    if (std::isinf(scheduled.dist[v])) {
      EXPECT_TRUE(std::isinf(naive.dist[v]));
    } else {
      EXPECT_NEAR(scheduled.dist[v], naive.dist[v], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, QuerySweep,
    ::testing::Values(
        Case{"grid2d", "uniform", BuilderKind::kRecursive},
        Case{"grid2d", "uniform", BuilderKind::kDoubling},
        Case{"grid2d", "mixed", BuilderKind::kRecursive},
        Case{"grid2d", "unit", BuilderKind::kRecursive},
        Case{"grid3d", "uniform", BuilderKind::kRecursive},
        Case{"grid3d", "mixed", BuilderKind::kDoubling},
        Case{"tree", "uniform", BuilderKind::kRecursive},
        Case{"tree", "mixed", BuilderKind::kRecursive},
        Case{"mesh", "uniform", BuilderKind::kDoubling},
        Case{"mesh", "mixed", BuilderKind::kRecursive},
        Case{"sparse", "uniform", BuilderKind::kRecursive},
        Case{"sparse", "uniform", BuilderKind::kDoubling}),
    case_name);

TEST(Query, UnreachableVerticesStayInfinite) {
  // A one-way path: nothing before the source is reachable.
  Rng rng(3);
  const GeneratedGraph gg = make_path(40, WeightModel::uniform(1, 5), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_tree_finder());
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const auto r = engine.distances(20);
  for (Vertex v = 0; v < 20; ++v) EXPECT_TRUE(std::isinf(r.dist[v]));
  for (Vertex v = 20; v < 40; ++v) EXPECT_FALSE(std::isinf(r.dist[v]));
}

TEST(Query, NegativeCycleIsDetected) {
  // A grid plus an injected strongly negative 3-cycle.
  Rng rng(4);
  GeneratedGraph gg = make_grid({6, 6}, WeightModel::uniform(1, 5), rng);
  GraphBuilder b(gg.graph.num_vertices());
  b.add_edges(gg.graph.edge_list());
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 6, 1.0);
  b.add_edge(6, 0, -10.0);
  const Digraph g = std::move(b).build(/*dedup_min=*/true);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(g), make_grid_finder({6, 6}));
  const auto engine = SeparatorShortestPaths<>::build(g, tree);
  EXPECT_TRUE(engine.distances(0).negative_cycle);
  // Reference agrees.
  EXPECT_TRUE(bellman_ford(g, 0).negative_cycle);
}

TEST(Query, NegativeCycleUnreachableFromSourceIsNotFlagged) {
  // Negative cycle in a separate component: per the paper's remark (i),
  // only cycles reachable from the source make its distances undefined.
  GraphBuilder b(6);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 0, 1.0);
  b.add_edge(2, 3, 1.0);  // component {2,3,4}: negative triangle
  b.add_edge(3, 4, 1.0);
  b.add_edge(4, 2, -5.0);
  const Digraph g = std::move(b).build();
  const SeparatorTree tree =
      build_separator_tree(Skeleton(g), make_bfs_finder());
  const auto engine = SeparatorShortestPaths<>::build(g, tree);
  EXPECT_FALSE(engine.distances(0).negative_cycle);
  EXPECT_TRUE(engine.distances(2).negative_cycle);
}

TEST(Query, MultiSourceEqualsMinOverSources) {
  Rng rng(5);
  const GeneratedGraph gg = make_grid({8, 8}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({8, 8}));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const std::vector<Vertex> sources{0, 27, 63};
  const auto multi = engine.query_engine().run_multi(sources);
  std::vector<QueryResult<TropicalD>> singles;
  for (const Vertex s : sources) singles.push_back(engine.distances(s));
  for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
    double want = TropicalD::zero();
    for (const auto& r : singles) want = std::min(want, r.dist[v]);
    EXPECT_NEAR(multi.dist[v], want, 1e-9) << v;
  }
}

TEST(Query, WeightedSeedsActAsVirtualSource) {
  Rng rng(6);
  const GeneratedGraph gg = make_grid({7, 7}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({7, 7}));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const std::vector<std::pair<Vertex, double>> seeds{{0, 5.0}, {48, 1.0}};
  const auto got = engine.query_engine().run_weighted(seeds);
  const auto d0 = engine.distances(0);
  const auto d48 = engine.distances(48);
  for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
    const double want = std::min(5.0 + d0.dist[v], 1.0 + d48.dist[v]);
    EXPECT_NEAR(got.dist[v], want, 1e-9) << v;
  }
}

TEST(Query, ScheduledScansFewerEdgesThanNaive) {
  Rng rng(7);
  const GeneratedGraph gg =
      make_grid({16, 16}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({16, 16}));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const auto sched = engine.query_engine().run(0);
  const auto naive = engine.query_engine().run_unscheduled(0);
  // The whole point of Section 3.2: O(1) passes per bucket vs diam passes.
  EXPECT_LT(sched.edges_scanned, naive.edges_scanned);
}

TEST(Query, BatchMatchesSingles) {
  Rng rng(8);
  const GeneratedGraph gg = make_grid({6, 6}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({6, 6}));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const std::vector<Vertex> sources{0, 5, 17, 35};
  const auto batch = engine.distances_batch(sources);
  ASSERT_EQ(batch.size(), sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto single = engine.distances(sources[i]);
    EXPECT_EQ(batch[i].dist, single.dist);
  }
}

TEST(Query, RunBaseOnlyMatchesBellmanFord) {
  Rng rng(9);
  const GeneratedGraph gg = make_grid({6, 6}, WeightModel::mixed_sign(), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({6, 6}));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const auto got = engine.query_engine().run_base_only(0);
  const auto want = bellman_ford_phases(gg.graph, 0);
  ASSERT_FALSE(got.negative_cycle);
  for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
    EXPECT_NEAR(got.dist[v], want.dist[v], 1e-9);
  }
}

TEST(Query, JohnsonAgreesOnNegativeWeights) {
  Rng rng(10);
  const GeneratedGraph gg = make_grid({9, 9}, WeightModel::mixed_sign(), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({9, 9}));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const auto johnson = Johnson::build(gg.graph);
  ASSERT_TRUE(johnson.has_value());
  for (const Vertex source : {Vertex{0}, Vertex{40}}) {
    const auto a = engine.distances(source);
    const auto b = johnson->distances(source);
    for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
      EXPECT_NEAR(a.dist[v], b.dist[v], 1e-8);
    }
  }
}

}  // namespace
}  // namespace sepsp
