// Compact routing: every route realizes the exact shortest-path weight,
// hop by hop, with only per-vertex tables consulted.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/dijkstra.hpp"
#include "core/incremental.hpp"
#include "core/routing.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

double walk_weight(const Digraph& g, const std::vector<Vertex>& path) {
  double total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    double w = 0;
    EXPECT_TRUE(g.find_arc(path[i], path[i + 1], &w))
        << path[i] << "->" << path[i + 1] << " is not an arc";
    total += w;
  }
  return total;
}

void check_routing(const Digraph& g, const SeparatorTree& tree,
                   std::span<const Vertex> sources) {
  const RoutingScheme scheme = RoutingScheme::build(g, tree);
  for (const Vertex u : sources) {
    const DijkstraResult truth = dijkstra(g, u);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (u == v) continue;
      if (std::isinf(truth.dist[v])) {
        EXPECT_EQ(scheme.next_hop(u, v), kInvalidVertex);
        EXPECT_TRUE(scheme.route(u, v).empty());
        continue;
      }
      EXPECT_NEAR(scheme.distance(u, v), truth.dist[v], 1e-8);
      const std::vector<Vertex> path = scheme.route(u, v);
      ASSERT_FALSE(path.empty()) << u << "->" << v;
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      EXPECT_NEAR(walk_weight(g, path), truth.dist[v], 1e-7)
          << u << "->" << v;
    }
  }
}

TEST(Routing, GridRoutesAreExact) {
  Rng rng(1);
  const GeneratedGraph gg = make_grid({9, 9}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({9, 9}));
  const std::vector<Vertex> sources{0, 40, 80};
  check_routing(gg.graph, tree, sources);
}

TEST(Routing, MeshRoutesAreExact) {
  Rng rng(2);
  const GeneratedGraph gg =
      make_triangulated_grid(7, 9, WeightModel::uniform(1, 5), rng);
  const SeparatorTree tree = build_separator_tree(
      Skeleton(gg.graph), make_geometric_finder(gg.coords));
  const std::vector<Vertex> sources{0, 31, 62};
  check_routing(gg.graph, tree, sources);
}

TEST(Routing, DirectedSparseWithUnreachablePairs) {
  Rng rng(3);
  const GeneratedGraph gg =
      make_random_digraph(80, 200, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_bfs_finder());
  const std::vector<Vertex> sources{0, 40};
  check_routing(gg.graph, tree, sources);
}

TEST(Routing, TreeFamilyAllPairs) {
  Rng rng(4);
  const GeneratedGraph gg =
      make_random_tree(60, WeightModel::uniform(1, 7), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_tree_finder());
  std::vector<Vertex> sources;
  for (Vertex v = 0; v < 60; v += 7) sources.push_back(v);
  check_routing(gg.graph, tree, sources);
}

TEST(Routing, TablesAreCompact) {
  Rng rng(5);
  const GeneratedGraph gg =
      make_grid({16, 16}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({16, 16}));
  const RoutingScheme scheme = RoutingScheme::build(gg.graph, tree);
  const std::size_t n = gg.graph.num_vertices();
  // Far below the n^2 of explicit all-pairs next-hop matrices.
  EXPECT_LT(scheme.total_entries(), n * n / 4);
  EXPECT_GT(scheme.total_entries(), n);  // and nontrivial
}

TEST(Routing, SelfRouteIsTrivial) {
  Rng rng(6);
  const GeneratedGraph gg = make_grid({4, 4}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({4, 4}));
  const RoutingScheme scheme = RoutingScheme::build(gg.graph, tree);
  EXPECT_EQ(scheme.next_hop(3, 3), kInvalidVertex);
  EXPECT_DOUBLE_EQ(scheme.distance(3, 3), 0.0);
  EXPECT_EQ(scheme.route(3, 3), std::vector<Vertex>{3});
}

TEST(Routing, BuildFromEnginesMatchesStandaloneBuild) {
  // The serving runtime's epoch-swap hook: routing tables built against
  // externally owned engines (effective-weight override included) must
  // route exactly like the self-contained build over an equivalently
  // reweighted graph.
  Rng rng(7);
  const GeneratedGraph gg = make_grid({6, 6}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({6, 6}));
  IncrementalEngine fwd = IncrementalEngine::build(gg.graph, tree);
  fwd.update_edge(4, 5, 0.5);
  fwd.update_edge(12, 13, 14.0);
  fwd.apply();

  const auto arcs = gg.graph.arcs();
  const auto arc_src = gg.graph.arc_sources();
  const auto weights = fwd.weights();
  GraphBuilder rb(gg.graph.num_vertices());
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    rb.add_edge(arcs[i].to, arc_src[i], weights[i]);
  }
  const Digraph reversed = std::move(rb).build(/*dedup_min=*/false);
  const IncrementalEngine bwd = IncrementalEngine::build(reversed, tree);

  const auto fwd_snap = fwd.snapshot();
  const auto bwd_snap = bwd.snapshot();
  const RoutingScheme from_engines = RoutingScheme::build_from_engines(
      gg.graph, tree, *fwd_snap.engine, *bwd_snap.engine, reversed,
      fwd.weights(), bwd.weights());

  GraphBuilder wb(gg.graph.num_vertices());
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    wb.add_edge(arc_src[i], arcs[i].to, weights[i]);
  }
  const Digraph reweighted = std::move(wb).build(/*dedup_min=*/false);
  const RoutingScheme standalone = RoutingScheme::build(reweighted, tree);
  for (Vertex u = 0; u < 36; u += 2) {
    const DijkstraResult truth = dijkstra(reweighted, u);
    for (Vertex v = 0; v < 36; ++v) {
      EXPECT_DOUBLE_EQ(from_engines.distance(u, v), standalone.distance(u, v))
          << u << "->" << v;
      if (std::isinf(truth.dist[v]) || u == v) continue;
      const std::vector<Vertex> path = from_engines.route(u, v);
      ASSERT_FALSE(path.empty()) << u << "->" << v;
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      EXPECT_NEAR(walk_weight(reweighted, path), truth.dist[v], 1e-9);
    }
  }
}

}  // namespace
}  // namespace sepsp
