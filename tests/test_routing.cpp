// Compact routing: every route realizes the exact shortest-path weight,
// hop by hop, with only per-vertex tables consulted.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/dijkstra.hpp"
#include "core/routing.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

double walk_weight(const Digraph& g, const std::vector<Vertex>& path) {
  double total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    double w = 0;
    EXPECT_TRUE(g.find_arc(path[i], path[i + 1], &w))
        << path[i] << "->" << path[i + 1] << " is not an arc";
    total += w;
  }
  return total;
}

void check_routing(const Digraph& g, const SeparatorTree& tree,
                   std::span<const Vertex> sources) {
  const RoutingScheme scheme = RoutingScheme::build(g, tree);
  for (const Vertex u : sources) {
    const DijkstraResult truth = dijkstra(g, u);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (u == v) continue;
      if (std::isinf(truth.dist[v])) {
        EXPECT_EQ(scheme.next_hop(u, v), kInvalidVertex);
        EXPECT_TRUE(scheme.route(u, v).empty());
        continue;
      }
      EXPECT_NEAR(scheme.distance(u, v), truth.dist[v], 1e-8);
      const std::vector<Vertex> path = scheme.route(u, v);
      ASSERT_FALSE(path.empty()) << u << "->" << v;
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      EXPECT_NEAR(walk_weight(g, path), truth.dist[v], 1e-7)
          << u << "->" << v;
    }
  }
}

TEST(Routing, GridRoutesAreExact) {
  Rng rng(1);
  const GeneratedGraph gg = make_grid({9, 9}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({9, 9}));
  const std::vector<Vertex> sources{0, 40, 80};
  check_routing(gg.graph, tree, sources);
}

TEST(Routing, MeshRoutesAreExact) {
  Rng rng(2);
  const GeneratedGraph gg =
      make_triangulated_grid(7, 9, WeightModel::uniform(1, 5), rng);
  const SeparatorTree tree = build_separator_tree(
      Skeleton(gg.graph), make_geometric_finder(gg.coords));
  const std::vector<Vertex> sources{0, 31, 62};
  check_routing(gg.graph, tree, sources);
}

TEST(Routing, DirectedSparseWithUnreachablePairs) {
  Rng rng(3);
  const GeneratedGraph gg =
      make_random_digraph(80, 200, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_bfs_finder());
  const std::vector<Vertex> sources{0, 40};
  check_routing(gg.graph, tree, sources);
}

TEST(Routing, TreeFamilyAllPairs) {
  Rng rng(4);
  const GeneratedGraph gg =
      make_random_tree(60, WeightModel::uniform(1, 7), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_tree_finder());
  std::vector<Vertex> sources;
  for (Vertex v = 0; v < 60; v += 7) sources.push_back(v);
  check_routing(gg.graph, tree, sources);
}

TEST(Routing, TablesAreCompact) {
  Rng rng(5);
  const GeneratedGraph gg =
      make_grid({16, 16}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({16, 16}));
  const RoutingScheme scheme = RoutingScheme::build(gg.graph, tree);
  const std::size_t n = gg.graph.num_vertices();
  // Far below the n^2 of explicit all-pairs next-hop matrices.
  EXPECT_LT(scheme.total_entries(), n * n / 4);
  EXPECT_GT(scheme.total_entries(), n);  // and nontrivial
}

TEST(Routing, SelfRouteIsTrivial) {
  Rng rng(6);
  const GeneratedGraph gg = make_grid({4, 4}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({4, 4}));
  const RoutingScheme scheme = RoutingScheme::build(gg.graph, tree);
  EXPECT_EQ(scheme.next_hop(3, 3), kInvalidVertex);
  EXPECT_DOUBLE_EQ(scheme.distance(3, 3), 0.0);
  EXPECT_EQ(scheme.route(3, 3), std::vector<Vertex>{3});
}

}  // namespace
}  // namespace sepsp
