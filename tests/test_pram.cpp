// Unit tests for the PRAM substrate: thread pool and cost meter.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "pram/cost_model.hpp"
#include "pram/thread_pool.hpp"

namespace sepsp::pram {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndSingletonRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelBlocksPartitionsRange) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_blocks(
      0, 1000,
      [&](std::size_t lo, std::size_t hi) {
        ASSERT_LE(lo, hi);
        total.fetch_add(hi - lo, std::memory_order_relaxed);
      },
      17);
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPool, SumMatchesSequential) {
  ThreadPool pool(4);
  std::vector<long long> values(10000);
  std::iota(values.begin(), values.end(), 1);
  std::atomic<long long> sum{0};
  pool.parallel_for(0, values.size(), [&](std::size_t i) {
    sum.fetch_add(values[i], std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 10000LL * 10001 / 2);
}

TEST(ThreadPool, NestedRegionsCoverEveryIteration) {
  ThreadPool pool(4);
  std::atomic<int> inner{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 10, [&](std::size_t) {
      inner.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner.load(), 80);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::size_t count = 0;
  // A 1-thread pool has no workers, so regions run inline: no races.
  pool.parallel_for(0, 100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 100u);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 100, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, GlobalPoolExists) {
  EXPECT_GE(ThreadPool::global().concurrency(), 1u);
}

TEST(CostMeter, ChargesAndSnapshots) {
  const Cost before = CostMeter::snapshot();
  CostMeter::charge_work(100);
  CostMeter::charge_depth(3);
  const Cost delta = CostMeter::snapshot() - before;
  EXPECT_EQ(delta.work, 100u);
  EXPECT_EQ(delta.depth, 3u);
}

TEST(CostMeter, CostScopeMeasuresRegion) {
  CostScope scope;
  CostMeter::charge_work(7);
  const Cost c = scope.cost();
  EXPECT_GE(c.work, 7u);
}

TEST(CostMeter, ToStringFormats) {
  const Cost c{1234567, 42};
  EXPECT_EQ(to_string(c), "work=1,234,567 depth=42");
}

}  // namespace
}  // namespace sepsp::pram
