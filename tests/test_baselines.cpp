// Baseline algorithms agree with one another (and with brute force).
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/bellman_ford.hpp"
#include "baseline/dijkstra.hpp"
#include "baseline/johnson.hpp"
#include "baseline/reach.hpp"
#include "graph/generators.hpp"
#include "semiring/matrix.hpp"

namespace sepsp {
namespace {

Matrix<TropicalD> apsp_floyd(const Digraph& g) {
  Matrix<TropicalD> m(g.num_vertices());
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    m.at(u, u) = 0;
    for (const Arc& a : g.out(u)) m.merge(u, a.to, a.weight);
  }
  floyd_warshall(m);
  return m;
}

TEST(Baselines, DijkstraMatchesFloydWarshall) {
  Rng rng(1);
  const GeneratedGraph gg =
      make_random_digraph(60, 220, WeightModel::uniform(1, 9), rng);
  const auto fw = apsp_floyd(gg.graph);
  for (const Vertex s : {Vertex{0}, Vertex{30}, Vertex{59}}) {
    const DijkstraResult dj = dijkstra(gg.graph, s);
    for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
      if (std::isinf(dj.dist[v])) {
        EXPECT_EQ(fw.at(s, v), TropicalD::zero());
      } else {
        EXPECT_NEAR(dj.dist[v], fw.at(s, v), 1e-9);
      }
    }
  }
}

TEST(Baselines, BellmanFordVariantsAgree) {
  Rng rng(2);
  const GeneratedGraph gg = make_grid({8, 8}, WeightModel::mixed_sign(), rng);
  const BellmanFordResult queue_based = bellman_ford(gg.graph, 0);
  const BellmanFordResult phased = bellman_ford_phases(gg.graph, 0);
  ASSERT_FALSE(queue_based.negative_cycle);
  ASSERT_FALSE(phased.negative_cycle);
  for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
    EXPECT_NEAR(queue_based.dist[v], phased.dist[v], 1e-9);
  }
}

TEST(Baselines, BellmanFordDetectsNegativeCycle) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 2.0);
  b.add_edge(1, 2, -3.0);
  b.add_edge(2, 1, 2.5);  // cycle 1->2->1 = -0.5
  const Digraph g = std::move(b).build();
  EXPECT_TRUE(bellman_ford(g, 0).negative_cycle);
  EXPECT_TRUE(bellman_ford_phases(g, 0).negative_cycle);
}

TEST(Baselines, BellmanFordIgnoresUnreachableNegativeCycle) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1.0);
  b.add_edge(2, 3, -3.0);
  b.add_edge(3, 2, 1.0);
  const Digraph g = std::move(b).build();
  EXPECT_FALSE(bellman_ford(g, 0).negative_cycle);
  EXPECT_FALSE(bellman_ford_phases(g, 0).negative_cycle);
}

TEST(Baselines, JohnsonEqualsBellmanFordOnNegativeWeights) {
  Rng rng(3);
  const GeneratedGraph gg = make_grid({7, 7}, WeightModel::mixed_sign(), rng);
  const auto johnson = Johnson::build(gg.graph);
  ASSERT_TRUE(johnson.has_value());
  for (const Vertex s : {Vertex{0}, Vertex{24}}) {
    const auto dj = johnson->distances(s);
    const auto bf = bellman_ford(gg.graph, s);
    for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
      EXPECT_NEAR(dj.dist[v], bf.dist[v], 1e-9);
    }
  }
}

TEST(Baselines, JohnsonRejectsNegativeCycleGraphs) {
  GraphBuilder b(2);
  b.add_edge(0, 1, -1.0);
  b.add_edge(1, 0, -1.0);
  EXPECT_FALSE(Johnson::build(std::move(b).build()).has_value());
}

TEST(Baselines, JohnsonBatch) {
  Rng rng(4);
  const GeneratedGraph gg = make_grid({6, 6}, WeightModel::uniform(1, 9), rng);
  const auto johnson = Johnson::build(gg.graph);
  ASSERT_TRUE(johnson.has_value());
  const std::vector<Vertex> sources{0, 18, 35};
  const auto batch = johnson->distances_batch(sources);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(batch[i].dist, johnson->distances(sources[i]).dist);
  }
}

TEST(Baselines, BfsReachableMatchesDenseClosure) {
  Rng rng(5);
  const GeneratedGraph gg =
      make_random_digraph(70, 150, WeightModel::unit(), rng);
  const BitMatrix closure = transitive_closure_dense(gg.graph);
  for (const Vertex s : {Vertex{0}, Vertex{35}, Vertex{69}}) {
    const auto reach = bfs_reachable(gg.graph, s);
    for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
      EXPECT_EQ(reach[v] != 0, closure.get(s, v)) << s << "->" << v;
    }
  }
}

TEST(Baselines, DijkstraHeapOpsBounded) {
  Rng rng(6);
  const GeneratedGraph gg =
      make_grid({12, 12}, WeightModel::uniform(1, 9), rng);
  const DijkstraResult r = dijkstra(gg.graph, 0);
  // Lazy deletion: at most one push per arc plus the source.
  EXPECT_LE(r.heap_ops, 2 * (gg.graph.num_edges() + 1));
}

TEST(Baselines, DijkstraTreeIsConsistent) {
  Rng rng(7);
  const GeneratedGraph gg =
      make_random_digraph(50, 200, WeightModel::uniform(1, 9), rng);
  const DijkstraResult r = dijkstra(gg.graph, 0);
  for (Vertex v = 1; v < gg.graph.num_vertices(); ++v) {
    if (std::isinf(r.dist[v])) {
      EXPECT_EQ(r.parent[v], kInvalidVertex);
      continue;
    }
    double w = 0;
    ASSERT_TRUE(gg.graph.find_arc(r.parent[v], v, &w));
    EXPECT_NEAR(r.dist[r.parent[v]] + w, r.dist[v], 1e-9);
  }
}

}  // namespace
}  // namespace sepsp
