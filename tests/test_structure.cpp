// Biconnectivity, hammock detection and DAG shortest paths.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baseline/bellman_ford.hpp"
#include "baseline/dag_sssp.hpp"
#include "baseline/dijkstra.hpp"
#include "graph/biconnectivity.hpp"
#include "graph/generators.hpp"
#include "planar/hammock_detect.hpp"
#include "planar/qface.hpp"

namespace sepsp {
namespace {

// --- biconnected components ------------------------------------------------

TEST(Biconnectivity, TwoTrianglesSharingAVertex) {
  GraphBuilder b(5);
  b.add_bidirectional(0, 1, 1);
  b.add_bidirectional(1, 2, 1);
  b.add_bidirectional(2, 0, 1);
  b.add_bidirectional(2, 3, 1);
  b.add_bidirectional(3, 4, 1);
  b.add_bidirectional(4, 2, 1);
  const Skeleton s(std::move(b).build());
  const BiconnectedComponents bcc = biconnected_components(s);
  EXPECT_EQ(bcc.count, 2u);
  EXPECT_TRUE(bcc.is_articulation[2]);
  for (const Vertex v : {0u, 1u, 3u, 4u}) {
    EXPECT_FALSE(bcc.is_articulation[v]) << v;
  }
  const auto c0 = bcc.component_vertices(0);
  const auto c1 = bcc.component_vertices(1);
  EXPECT_EQ(c0.size(), 3u);
  EXPECT_EQ(c1.size(), 3u);
}

TEST(Biconnectivity, PathIsAllBridges) {
  Rng rng(1);
  const GeneratedGraph gg =
      make_path(10, WeightModel::unit(), rng, /*bidirectional=*/true);
  const Skeleton s(gg.graph);
  const BiconnectedComponents bcc = biconnected_components(s);
  EXPECT_EQ(bcc.count, 9u);  // each edge is its own component
  for (Vertex v = 1; v + 1 < 10; ++v) EXPECT_TRUE(bcc.is_articulation[v]);
  EXPECT_FALSE(bcc.is_articulation[0]);
  EXPECT_FALSE(bcc.is_articulation[9]);
}

TEST(Biconnectivity, CycleIsOneComponent) {
  GraphBuilder b(6);
  for (Vertex v = 0; v < 6; ++v) {
    b.add_bidirectional(v, (v + 1) % 6, 1.0);
  }
  const Skeleton s(std::move(b).build());
  const BiconnectedComponents bcc = biconnected_components(s);
  EXPECT_EQ(bcc.count, 1u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_FALSE(bcc.is_articulation[v]);
}

TEST(Biconnectivity, GridIsBiconnected) {
  Rng rng(2);
  const GeneratedGraph gg = make_grid({6, 6}, WeightModel::unit(), rng);
  const BiconnectedComponents bcc = biconnected_components(Skeleton(gg.graph));
  EXPECT_EQ(bcc.count, 1u);
}

TEST(Biconnectivity, DisconnectedGraphHandled) {
  GraphBuilder b(7);
  b.add_bidirectional(0, 1, 1);
  b.add_bidirectional(1, 2, 1);
  b.add_bidirectional(2, 0, 1);
  b.add_bidirectional(4, 5, 1);  // separate edge; vertices 3, 6 isolated
  const Skeleton s(std::move(b).build());
  const BiconnectedComponents bcc = biconnected_components(s);
  EXPECT_EQ(bcc.count, 2u);
}

TEST(Biconnectivity, EveryEdgeGetsExactlyOneComponent) {
  Rng rng(3);
  const GeneratedGraph gg =
      make_random_digraph(80, 160, WeightModel::unit(), rng);
  const Skeleton s(gg.graph);
  const BiconnectedComponents bcc = biconnected_components(s);
  EXPECT_EQ(bcc.edge_component.size(), s.num_edges());
  for (const std::uint32_t c : bcc.edge_component) {
    EXPECT_LT(c, bcc.count);
  }
}

// --- hammock detection -------------------------------------------------

TEST(HammockDetect, RecoversChainStructure) {
  Rng rng(4);
  const HammockGraph truth =
      make_hammock_chain(6, 8, WeightModel::uniform(1, 9), rng);
  const auto detected = detect_hammocks(truth.graph, truth.coords);
  ASSERT_TRUE(detected.has_value());
  EXPECT_EQ(detected->num_hammocks(), truth.num_hammocks());
  // Same bodies (as vertex sets), possibly in a different order.
  std::set<std::vector<Vertex>> want, got;
  for (const Hammock& h : truth.hammocks) want.insert(h.vertices);
  for (const Hammock& h : detected->hammocks) got.insert(h.vertices);
  EXPECT_EQ(want, got);
}

TEST(HammockDetect, PipelineOnDetectedDecompositionIsExact) {
  Rng rng(5);
  const HammockGraph truth =
      make_hammock_chain(5, 7, WeightModel::uniform(1, 9), rng);
  const auto detected = detect_hammocks(truth.graph, truth.coords);
  ASSERT_TRUE(detected.has_value());
  const QFacePipeline pipeline = QFacePipeline::build(*detected);
  Rng pick(6);
  for (int trial = 0; trial < 3; ++trial) {
    const auto src = static_cast<Vertex>(
        pick.next_below(truth.graph.num_vertices()));
    const auto got = pipeline.distances(src);
    const DijkstraResult want = dijkstra(truth.graph, src);
    for (Vertex v = 0; v < truth.graph.num_vertices(); ++v) {
      EXPECT_NEAR(got[v], want.dist[v], 1e-8) << src << "->" << v;
    }
  }
}

TEST(HammockDetect, RejectsNonHammockGraphs) {
  Rng rng(7);
  // A grid is one biconnected blob with no articulation points: one body,
  // fine — but a star of triangles with a high-degree center exceeds the
  // 4-attachment limit.
  GraphBuilder b(11);
  for (int arm = 0; arm < 5; ++arm) {
    const auto x = static_cast<Vertex>(1 + 2 * arm);
    const auto y = static_cast<Vertex>(2 + 2 * arm);
    b.add_bidirectional(0, x, 1);
    b.add_bidirectional(x, y, 1);
    b.add_bidirectional(y, 0, 1);
  }
  const Digraph g = std::move(b).build();
  std::vector<std::array<double, 3>> coords(11, {0, 0, 0});
  // Five triangle bodies share articulation vertex 0: each body has one
  // articulation point, which is fine; so this one is actually accepted —
  // and the pipeline must handle bodies that *share* an attachment.
  const auto detected = detect_hammocks(g, coords);
  ASSERT_TRUE(detected.has_value());
  EXPECT_EQ(detected->num_hammocks(), 5u);
  const QFacePipeline pipeline = QFacePipeline::build(*detected);
  for (const Vertex src : {Vertex{0}, Vertex{3}, Vertex{10}}) {
    const auto got = pipeline.distances(src);
    const DijkstraResult want = dijkstra(g, src);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_NEAR(got[v], want.dist[v], 1e-9) << src << "->" << v;
    }
  }
  // Mismatched coords size is rejected.
  EXPECT_FALSE(detect_hammocks(g, {}).has_value());
  (void)rng;
}

TEST(HammockDetect, PendantEdgeRejected) {
  // Triangle plus a pendant vertex: the leaf belongs to no body.
  GraphBuilder b(4);
  b.add_bidirectional(0, 1, 1);
  b.add_bidirectional(1, 2, 1);
  b.add_bidirectional(2, 0, 1);
  b.add_bidirectional(2, 3, 1);  // pendant
  const Digraph g = std::move(b).build();
  std::vector<std::array<double, 3>> coords(4, {0, 0, 0});
  EXPECT_FALSE(detect_hammocks(g, coords).has_value());
}

// --- DAG shortest paths --------------------------------------------------

TEST(DagSssp, MatchesBellmanFordOnLayeredDag) {
  Rng rng(8);
  GraphBuilder b(60);
  for (Vertex v = 0; v < 60; ++v) {
    for (int k = 0; k < 3; ++k) {
      const Vertex to = v + 1 + static_cast<Vertex>(rng.next_below(5));
      if (to < 60) {
        b.add_edge(v, to, rng.next_double(-4, 10));  // negative arcs fine
      }
    }
  }
  const Digraph g = std::move(b).build();
  const auto got = dag_shortest_paths(g, 0);
  ASSERT_TRUE(got.has_value());
  const BellmanFordResult want = bellman_ford(g, 0);
  for (Vertex v = 0; v < 60; ++v) {
    if (std::isinf(want.dist[v])) {
      EXPECT_TRUE(std::isinf(got->dist[v]));
    } else {
      EXPECT_NEAR(got->dist[v], want.dist[v], 1e-9) << v;
    }
  }
}

TEST(DagSssp, RejectsCyclicGraphs) {
  Rng rng(9);
  const GeneratedGraph cyc = make_cycle(5, WeightModel::unit(), rng);
  EXPECT_FALSE(dag_shortest_paths(cyc.graph, 0).has_value());
}

TEST(DagSssp, SingleSweepScanCount) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(0, 3, 5);
  b.add_edge(2, 3, 1);
  const Digraph g = std::move(b).build();
  const auto r = dag_shortest_paths(g, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->edges_scanned, g.num_edges());
  EXPECT_DOUBLE_EQ(r->dist[3], 3.0);
}

}  // namespace
}  // namespace sepsp
