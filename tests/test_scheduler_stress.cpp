// Stress tests for the work-stealing scheduler: nested regions forked
// from every worker, deep nesting, exception propagation through fork
// points, degenerate single-thread pools, and concurrent external
// submitters. Also run under TSAN in CI (tsan job).
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "pram/thread_pool.hpp"

namespace sepsp::pram {
namespace {

TEST(SchedulerStress, NestedRegionsFromAllWorkers) {
  ThreadPool pool(4);
  std::atomic<std::size_t> inner{0};
  pool.parallel_for(
      0, 64,
      [&](std::size_t) {
        pool.parallel_for(
            0, 100,
            [&](std::size_t) {
              inner.fetch_add(1, std::memory_order_relaxed);
            },
            /*grain=*/3);
      },
      /*grain=*/1);
  EXPECT_EQ(inner.load(), 64u * 100u);
}

TEST(SchedulerStress, TriplyNestedRegions) {
  ThreadPool pool(4);
  std::atomic<std::size_t> count{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) {
      pool.parallel_for(0, 8, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
      });
    });
  });
  EXPECT_EQ(count.load(), 8u * 8u * 8u);
}

TEST(SchedulerStress, RecursiveForkJoin) {
  // Divide-and-conquer sum via recursive parallel_blocks: every join is
  // help-first, so workers keep making progress while waiting.
  ThreadPool pool(4);
  std::function<std::size_t(std::size_t, std::size_t)> sum =
      [&](std::size_t lo, std::size_t hi) -> std::size_t {
    if (hi - lo <= 32) {
      std::size_t s = 0;
      for (std::size_t i = lo; i < hi; ++i) s += i;
      return s;
    }
    const std::size_t mid = lo + (hi - lo) / 2;
    std::atomic<std::size_t> total{0};
    pool.parallel_blocks(
        0, 2,
        [&](std::size_t b, std::size_t e) {
          for (std::size_t h = b; h < e; ++h) {
            const std::size_t s =
                h == 0 ? sum(lo, mid) : sum(mid, hi);
            total.fetch_add(s, std::memory_order_relaxed);
          }
        },
        /*grain=*/1);
    return total.load();
  };
  const std::size_t n = 4096;
  EXPECT_EQ(sum(0, n), n * (n - 1) / 2);
}

TEST(SchedulerStress, ExceptionPropagatesToForkPoint) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(SchedulerStress, ExceptionFromNestedRegionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 8,
                                 [&](std::size_t) {
                                   pool.parallel_for(0, 8, [&](std::size_t j) {
                                     if (j == 3) {
                                       throw std::logic_error("inner");
                                     }
                                   });
                                 }),
               std::logic_error);
}

TEST(SchedulerStress, PoolUsableAfterException) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(pool.parallel_for(0, 50,
                                   [&](std::size_t i) {
                                     if (i == 25) {
                                       throw std::runtime_error("again");
                                     }
                                   }),
                 std::runtime_error);
    std::atomic<int> ok{0};
    pool.parallel_for(0, 100, [&](std::size_t) {
      ok.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(ok.load(), 100);
  }
}

TEST(SchedulerStress, SizeOnePoolDegeneratesToPlainLoop) {
  // A 1-thread pool has no workers: regions run inline on the caller,
  // so non-atomic state needs no synchronization — even nested.
  ThreadPool pool(1);
  std::size_t outer = 0;
  std::size_t inner = 0;
  pool.parallel_for(0, 10, [&](std::size_t) {
    ++outer;
    pool.parallel_for(0, 10, [&](std::size_t) { ++inner; });
  });
  EXPECT_EQ(outer, 10u);
  EXPECT_EQ(inner, 100u);
}

TEST(SchedulerStress, ConcurrentExternalSubmitters) {
  // Threads that are not pool workers fork regions concurrently; the
  // pool must serve all of them (inject queue) without cross-talk.
  ThreadPool pool(3);
  constexpr int kSubmitters = 6;
  std::vector<std::size_t> sums(kSubmitters, 0);
  std::vector<std::thread> threads;
  threads.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&pool, &sums, t] {
      for (int round = 0; round < 25; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallel_for(0, 200, [&](std::size_t i) {
          sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
        sums[t] += sum.load();
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::size_t per_round = 200u * 201u / 2u;
  for (int t = 0; t < kSubmitters; ++t) {
    EXPECT_EQ(sums[t], 25u * per_round) << "submitter " << t;
  }
}

TEST(SchedulerStress, ManyRoundsOfNestedWork) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::size_t> count{0};
    pool.parallel_for(0, 16, [&](std::size_t) {
      pool.parallel_blocks(0, 64, [&](std::size_t lo, std::size_t hi) {
        count.fetch_add(hi - lo, std::memory_order_relaxed);
      });
    });
    ASSERT_EQ(count.load(), 16u * 64u) << "round " << round;
  }
}

TEST(SchedulerStress, HugeBlockCountWithUnitGrain) {
  // Far more blocks than helper handles: participants must drain the
  // shared cursor to completion, not just their own handle's worth.
  ThreadPool pool(2);
  std::atomic<std::size_t> count{0};
  pool.parallel_for(
      0, 100000,
      [&](std::size_t) { count.fetch_add(1, std::memory_order_relaxed); },
      /*grain=*/1);
  EXPECT_EQ(count.load(), 100000u);
}

}  // namespace
}  // namespace sepsp::pram
