// Out-of-core engine (src/store/): v3 image round trips under every
// semiring, the buffer pool's residency accounting, eviction storms
// under a tiny budget, open-time validation of damaged images, writer
// determinism, and the read-only service path.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/incremental.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"
#include "service/service.hpp"
#include "store/format.hpp"
#include "store/pool.hpp"
#include "store/stored_engine.hpp"
#include "store/writer.hpp"
#include "util/aligned.hpp"

namespace sepsp {
namespace {

/// A per-test temp path; the returned file does not exist yet.
std::string temp_path(const std::string& stem) {
  return testing::TempDir() + "sepsp_store_" + stem + ".sep3";
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

/// Builds a heap engine over a weighted grid, writes its v3 image, and
/// checks that the stored engine answers bit-identically (memcmp over
/// the raw value buffers) for single and batched sources.
template <Semiring S>
void round_trip_semiring(const std::string& stem) {
  Rng rng(11);
  const GeneratedGraph gg =
      make_grid({9, 9}, WeightModel::uniform(1, 50), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({9, 9}));
  const auto heap = SeparatorShortestPaths<S>::build(gg.graph, tree);

  TempFile file(temp_path(stem));
  std::string error;
  ASSERT_TRUE(store::write_engine_image(file.path, heap, &error)) << error;

  auto stored = store::StoredEngine<S>::open(file.path, {}, &error);
  ASSERT_TRUE(stored.has_value()) << error;

  using Value = typename S::Value;
  const std::vector<Vertex> sources = {0, 13, 40, 77, 80};
  for (const Vertex s : sources) {
    const auto want = heap.distances(s);
    const auto got = stored->engine().distances(s);
    ASSERT_EQ(got.dist.size(), want.dist.size());
    EXPECT_EQ(std::memcmp(got.dist.data(), want.dist.data(),
                          want.dist.size() * sizeof(Value)),
              0)
        << "source " << s;
    EXPECT_EQ(got.negative_cycle, want.negative_cycle);
  }

  // The batched kernel walks the same external buckets via a different
  // code path (query_batch.hpp) — it must see identical bytes.
  const auto want_batch = heap.distances_batch(sources);
  const auto got_batch = stored->engine().distances_batch(sources);
  ASSERT_EQ(got_batch.size(), want_batch.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(std::memcmp(got_batch[i].dist.data(), want_batch[i].dist.data(),
                          want_batch[i].dist.size() * sizeof(Value)),
              0)
        << "batched source " << sources[i];
  }
}

TEST(Store, RoundTripTropicalD) { round_trip_semiring<TropicalD>("trod"); }
TEST(Store, RoundTripTropicalI) { round_trip_semiring<TropicalI>("troi"); }
TEST(Store, RoundTripBoolean) { round_trip_semiring<BooleanSR>("bool"); }
TEST(Store, RoundTripBottleneck) { round_trip_semiring<BottleneckSR>("botn"); }

TEST(Store, WriterIsDeterministic) {
  Rng rng(12);
  const GeneratedGraph gg =
      make_grid({8, 8}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({8, 8}));
  const auto heap = SeparatorShortestPaths<TropicalD>::build(gg.graph, tree);

  TempFile a(temp_path("det_a")), b(temp_path("det_b"));
  std::string error;
  ASSERT_TRUE(store::write_engine_image(a.path, heap, &error)) << error;
  ASSERT_TRUE(store::write_engine_image(b.path, heap, &error)) << error;
  const auto ba = slurp(a.path), bb = slurp(b.path);
  ASSERT_FALSE(ba.empty());
  EXPECT_EQ(ba, bb) << "two writes of the same engine must be byte-identical";
}

// ---------------------------------------------------------------------
// BufferPool unit tests over a synthetic pattern file.

TEST(Store, PoolResidencyAndEviction) {
  // 16 pages, each filled with its own page index byte.
  constexpr std::size_t kPages = 16;
  TempFile file(temp_path("pool"));
  {
    std::ofstream out(file.path, std::ios::binary);
    for (std::size_t p = 0; p < kPages; ++p) {
      const std::string page(kPageBytes, static_cast<char>('a' + p));
      out.write(page.data(), static_cast<std::streamsize>(page.size()));
    }
  }

  store::PoolOptions opts;
  opts.budget_bytes = 4 * kPageBytes;
  std::string error;
  auto pool = store::BufferPool::open(file.path, opts, &error);
  ASSERT_NE(pool, nullptr) << error;
  EXPECT_EQ(pool->size(), kPages * kPageBytes);
  EXPECT_EQ(pool->num_pages(), kPages);

  // Pin one page and read it through the mapping.
  pool->pin(0, kPageBytes);
  EXPECT_EQ(pool->page_pins(0), 1u);
  EXPECT_TRUE(pool->page_resident(0));
  EXPECT_EQ(reinterpret_cast<const char*>(pool->data())[0], 'a');

  // Sweep every other page; the 4-page budget forces evictions, but
  // the pinned page must survive every storm.
  for (int round = 0; round < 3; ++round) {
    for (std::size_t p = 1; p < kPages; ++p) {
      pool->pin(p * kPageBytes, kPageBytes);
      EXPECT_EQ(reinterpret_cast<const char*>(pool->data())[p * kPageBytes],
                static_cast<char>('a' + p));
      pool->unpin(p * kPageBytes, kPageBytes);
    }
  }
  const auto stats = pool->stats();
#if defined(__linux__)
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.resident_bytes, opts.budget_bytes + kPageBytes);
#endif
  EXPECT_GT(stats.faults, 0u);
  EXPECT_TRUE(pool->page_resident(0)) << "pinned pages are not evictable";
  EXPECT_EQ(reinterpret_cast<const char*>(pool->data())[0], 'a');
  pool->unpin(0, kPageBytes);
  EXPECT_EQ(pool->page_pins(0), 0u);

  // A range pin spanning several pages pins each page once.
  pool->pin(2 * kPageBytes, 3 * kPageBytes);
  EXPECT_EQ(pool->page_pins(2), 1u);
  EXPECT_EQ(pool->page_pins(3), 1u);
  EXPECT_EQ(pool->page_pins(4), 1u);
  pool->unpin(2 * kPageBytes, 3 * kPageBytes);
  EXPECT_EQ(pool->page_pins(3), 0u);
}

TEST(Store, PoolRefaultAfterEvictionReadsIdenticalBytes) {
  constexpr std::size_t kPages = 8;
  TempFile file(temp_path("refault"));
  {
    std::ofstream out(file.path, std::ios::binary);
    for (std::size_t p = 0; p < kPages; ++p) {
      std::vector<std::uint64_t> words(kPageBytes / 8, 0x1234567890abcdefULL + p);
      out.write(reinterpret_cast<const char*>(words.data()),
                static_cast<std::streamsize>(kPageBytes));
    }
  }
  store::PoolOptions opts;
  opts.budget_bytes = 2 * kPageBytes;
  std::string error;
  auto pool = store::BufferPool::open(file.path, opts, &error);
  ASSERT_NE(pool, nullptr) << error;
  const auto* words = reinterpret_cast<const std::uint64_t*>(pool->data());
  for (int round = 0; round < 4; ++round) {
    for (std::size_t p = 0; p < kPages; ++p) {
      pool->pin(p * kPageBytes, kPageBytes);
      EXPECT_EQ(words[p * kPageBytes / 8], 0x1234567890abcdefULL + p);
      pool->unpin(p * kPageBytes, kPageBytes);
    }
  }
}

// ---------------------------------------------------------------------
// Eviction storm through the full engine: a budget of two pages is far
// below any real working set, so every bucket sweep cycles the pool —
// results must still be bit-identical.

TEST(Store, EvictionStormKeepsBitParity) {
  Rng rng(13);
  const GeneratedGraph gg =
      make_grid({10, 10}, WeightModel::uniform(1, 20), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({10, 10}));
  const auto heap = SeparatorShortestPaths<TropicalD>::build(gg.graph, tree);

  TempFile file(temp_path("storm"));
  std::string error;
  ASSERT_TRUE(store::write_engine_image(file.path, heap, &error)) << error;

  store::StoredEngine<TropicalD>::OpenOptions opts;
  opts.pool.budget_bytes = 2 * kPageBytes;
  auto stored = store::StoredEngine<TropicalD>::open(file.path, opts, &error);
  ASSERT_TRUE(stored.has_value()) << error;

  for (const Vertex s : {Vertex{0}, Vertex{55}, Vertex{99}}) {
    const auto want = heap.distances(s);
    const auto got = stored->engine().distances(s);
    ASSERT_EQ(std::memcmp(got.dist.data(), want.dist.data(),
                          want.dist.size() * sizeof(double)),
              0)
        << "source " << s;
  }
#if defined(__linux__)
  EXPECT_GT(stored->pool().stats().evictions, 0u)
      << "a 2-page budget must actually storm the pool";
#endif
}

// ---------------------------------------------------------------------
// Open-time validation: damaged images fail closed with a reason.

class StoreDamage : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(14);
    const GeneratedGraph gg =
        make_grid({7, 7}, WeightModel::uniform(1, 9), rng);
    const SeparatorTree tree =
        build_separator_tree(Skeleton(gg.graph), make_grid_finder({7, 7}));
    const auto heap =
        SeparatorShortestPaths<TropicalD>::build(gg.graph, tree);
    std::string error;
    ASSERT_TRUE(store::write_engine_image(path_, heap, &error)) << error;
    image_ = slurp(path_);
    ASSERT_GE(image_.size(), sizeof(store::Header));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Writes `bytes` to the temp path and expects open() to fail with a
  /// non-empty reason.
  void expect_rejected(const std::vector<char>& bytes, const char* what) {
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    std::string error;
    const auto stored =
        store::StoredEngine<TropicalD>::open(path_, {}, &error);
    EXPECT_FALSE(stored.has_value()) << what;
    EXPECT_FALSE(error.empty()) << what;
  }

  std::string path_ = temp_path("damage");
  std::vector<char> image_;
};

TEST_F(StoreDamage, RejectsBadMagic) {
  auto bad = image_;
  bad[0] ^= 0x5a;
  expect_rejected(bad, "flipped magic");
}

TEST_F(StoreDamage, RejectsWrongSemiring) {
  std::string error;
  const auto as_bool =
      store::StoredEngine<BooleanSR>::open(path_, {}, &error);
  EXPECT_FALSE(as_bool.has_value());
  EXPECT_FALSE(error.empty());
}

TEST_F(StoreDamage, RejectsTruncation) {
  // Truncate at a sweep of prefixes: header-only, mid-directory, and
  // mid-payload. Every prefix must fail closed.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{10}, sizeof(store::Header),
        image_.size() / 4, image_.size() / 2, image_.size() - 1}) {
    std::vector<char> bad(image_.begin(),
                          image_.begin() + static_cast<std::ptrdiff_t>(keep));
    expect_rejected(bad, "truncated image");
  }
}

TEST_F(StoreDamage, RejectsCorruptDirectory) {
  // The directory starts at the first page boundary. Smash a segment
  // record's offset so it points past the file.
  auto bad = image_;
  const std::size_t dir = round_up_to_page(sizeof(store::Header));
  ASSERT_GT(bad.size(), dir + sizeof(store::SegmentRecord));
  const std::uint64_t garbage = ~std::uint64_t{0} << 12;  // page aligned, huge
  std::memcpy(bad.data() + dir + offsetof(store::SegmentRecord, offset),
              &garbage, sizeof garbage);
  expect_rejected(bad, "out-of-range segment offset");
}

TEST_F(StoreDamage, RejectsMissingFile) {
  std::string error;
  const auto stored = store::StoredEngine<TropicalD>::open(
      temp_path("does_not_exist"), {}, &error);
  EXPECT_FALSE(stored.has_value());
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------
// Read-only QueryService over a stored snapshot.

TEST(Store, ReadOnlyServiceServesStoredSnapshot) {
  Rng rng(15);
  const GeneratedGraph gg =
      make_grid({9, 9}, WeightModel::uniform(1, 30), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({9, 9}));
  const auto heap = SeparatorShortestPaths<TropicalD>::build(gg.graph, tree);

  TempFile file(temp_path("service"));
  std::string error;
  ASSERT_TRUE(store::write_engine_image(file.path, heap, &error)) << error;
  auto stored = store::StoredEngine<TropicalD>::open(file.path, {}, &error);
  ASSERT_TRUE(stored.has_value()) << error;

  service::ServiceOptions opts;
  opts.point_to_point = false;
  service::QueryService svc(stored->snapshot(), opts);
  for (const Vertex s : {Vertex{0}, Vertex{40}, Vertex{80}, Vertex{40}}) {
    const service::Reply r = svc.query(s);
    ASSERT_EQ(r.status, service::ReplyStatus::kOk);
    ASSERT_NE(r.value, nullptr);
    EXPECT_EQ(r.epoch, 0u);
    const auto want = heap.distances(s);
    ASSERT_EQ(r.value->dist.size(), want.dist.size());
    EXPECT_EQ(std::memcmp(r.value->dist.data(), want.dist.data(),
                          want.dist.size() * sizeof(double)),
              0)
        << "source " << s;
  }
  svc.stop();

  // The snapshot (and its pool) outlives the StoredEngine handle.
  auto snap = stored->snapshot();
  stored.reset();
  EXPECT_EQ(snap->distances(0).dist.size(), gg.graph.num_vertices());
}

}  // namespace
}  // namespace sepsp
