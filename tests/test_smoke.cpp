// End-to-end smoke test: generate a grid, decompose, build E+ with both
// algorithms, and check every distance against Dijkstra.
#include <gtest/gtest.h>

#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

TEST(Smoke, GridEndToEnd) {
  Rng rng(42);
  const std::vector<std::size_t> dims = {9, 9};
  const GeneratedGraph gg =
      make_grid(dims, WeightModel::uniform(1.0, 10.0), rng);
  const Skeleton skel(gg.graph);
  const SeparatorTree tree =
      build_separator_tree(skel, make_grid_finder(dims));
  ASSERT_EQ(tree.validate(skel), std::nullopt) << *tree.validate(skel);

  for (const BuilderKind kind :
       {BuilderKind::kRecursive, BuilderKind::kDoubling}) {
    typename SeparatorShortestPaths<>::Options opts;
    opts.build.builder = kind;
    const auto engine =
        SeparatorShortestPaths<>::build(gg.graph, tree, opts);
    for (const Vertex source : {Vertex{0}, Vertex{40}, Vertex{80}}) {
      const QueryResult<TropicalD> got = engine.distances(source);
      ASSERT_FALSE(got.negative_cycle);
      const DijkstraResult want = dijkstra(gg.graph, source);
      for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
        EXPECT_NEAR(got.dist[v], want.dist[v], 1e-9)
            << "source " << source << " target " << v;
      }
    }
  }
}

}  // namespace
}  // namespace sepsp
