// Tests for the level/node labeling of Section 3.1.
#include <gtest/gtest.h>

#include "core/levels.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

struct LevelsFixture {
  GeneratedGraph gg;
  Skeleton skel;
  SeparatorTree tree;
  LevelAssignment levels;
};

LevelsFixture make_setup(std::uint64_t seed = 1) {
  Rng rng(seed);
  LevelsFixture s{make_grid({9, 9}, WeightModel::unit(), rng), {}, {}, {}};
  s.skel = Skeleton(s.gg.graph);
  s.tree = build_separator_tree(s.skel, make_grid_finder({9, 9}));
  s.levels = compute_levels(s.tree);
  return s;
}

TEST(Levels, EveryVertexHasANode) {
  const LevelsFixture s = make_setup();
  for (Vertex v = 0; v < s.gg.graph.num_vertices(); ++v) {
    ASSERT_GE(s.levels.node[v], 0);
    ASSERT_LT(static_cast<std::size_t>(s.levels.node[v]), s.tree.num_nodes());
  }
}

TEST(Levels, DefinedLevelsAreMinOverSeparators) {
  const LevelsFixture s = make_setup();
  const std::size_t n = s.gg.graph.num_vertices();
  std::vector<std::uint32_t> expected(n, LevelAssignment::kUndefined);
  for (std::size_t id = 0; id < s.tree.num_nodes(); ++id) {
    const DecompNode& t = s.tree.node(id);
    for (const Vertex v : t.separator) {
      expected[v] = std::min(expected[v], t.level);
    }
  }
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_EQ(s.levels.level[v], expected[v]) << v;
  }
}

TEST(Levels, NodeAttainsTheLevel) {
  const LevelsFixture s = make_setup();
  for (Vertex v = 0; v < s.gg.graph.num_vertices(); ++v) {
    const DecompNode& t = s.tree.node(static_cast<std::size_t>(s.levels.node[v]));
    if (s.levels.defined(v)) {
      EXPECT_EQ(t.level, s.levels.level[v]);
      EXPECT_TRUE(std::binary_search(t.separator.begin(), t.separator.end(), v));
    } else {
      EXPECT_TRUE(t.is_leaf());
      EXPECT_TRUE(std::binary_search(t.vertices.begin(), t.vertices.end(), v));
    }
  }
}

TEST(Levels, UndefinedVerticesAppearInExactlyOneLeaf) {
  const LevelsFixture s = make_setup();
  std::vector<int> leaf_count(s.gg.graph.num_vertices(), 0);
  for (const std::size_t id : s.tree.leaf_ids()) {
    for (const Vertex v : s.tree.node(id).vertices) {
      if (!s.levels.defined(v)) ++leaf_count[v];
    }
  }
  for (Vertex v = 0; v < s.gg.graph.num_vertices(); ++v) {
    if (!s.levels.defined(v)) {
      EXPECT_EQ(leaf_count[v], 1) << v;
    }
  }
}

TEST(Levels, BoundaryVerticesHaveStrictlySmallerLevelThanNode) {
  // Paper: v in B(t) implies level(v) < level(t); v in S(t) implies
  // level(v) <= level(t).
  const LevelsFixture s = make_setup();
  for (std::size_t id = 0; id < s.tree.num_nodes(); ++id) {
    const DecompNode& t = s.tree.node(id);
    for (const Vertex v : t.boundary) {
      ASSERT_TRUE(s.levels.defined(v));
      EXPECT_LT(s.levels.level[v], t.level);
    }
    for (const Vertex v : t.separator) {
      ASSERT_TRUE(s.levels.defined(v));
      EXPECT_LE(s.levels.level[v], t.level);
    }
  }
}

TEST(Levels, HeightMatchesTree) {
  const LevelsFixture s = make_setup();
  EXPECT_EQ(s.levels.height, s.tree.height());
  for (Vertex v = 0; v < s.gg.graph.num_vertices(); ++v) {
    if (s.levels.defined(v)) {
      EXPECT_LE(s.levels.level[v], s.levels.height);
    }
  }
}

TEST(Levels, RootSeparatorIsLevelZero) {
  const LevelsFixture s = make_setup();
  for (const Vertex v : s.tree.root().separator) {
    EXPECT_EQ(s.levels.level[v], 0u);
  }
}

}  // namespace
}  // namespace sepsp
