// The SeparatorShortestPaths facade: nested Options with validated()
// coherence checks, the unified distances_batch(sources, BatchPolicy)
// entry point, allocation-free distances_into, the QueryResult
// accessors, engine.stats(), the snapshot hooks (freeze /
// weight-overriding from_augmentation), and the versioned augmentation
// save/load round trip.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "core/engine.hpp"
#include "core/serialize.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

struct Fixture {
  GeneratedGraph gg;
  SeparatorTree tree;
};

Fixture make_fixture(std::size_t side = 8, std::uint64_t seed = 11) {
  Rng rng(seed);
  GeneratedGraph gg =
      make_grid({side, side}, WeightModel::uniform(1, 9), rng);
  SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({side, side}));
  return {std::move(gg), std::move(tree)};
}

std::vector<Vertex> every_kth_vertex(std::size_t n, std::size_t k) {
  std::vector<Vertex> sources;
  for (std::size_t v = 0; v < n; v += k) {
    sources.push_back(static_cast<Vertex>(v));
  }
  return sources;
}

// --- Options ----------------------------------------------------------

TEST(EngineOptions, NestedFieldsAreTheSourceOfTruth) {
  SeparatorShortestPaths<>::Options opts;
  opts.build.builder = BuilderKind::kDoubling;
  opts.query.detect_negative_cycles = false;
  const auto v = opts.validated();
  EXPECT_EQ(v.build.builder, BuilderKind::kDoubling);
  EXPECT_FALSE(v.query.detect_negative_cycles);
  EXPECT_EQ(v.query.batch_lanes, SeparatorShortestPaths<>::kBatchLanes);
}

TEST(EngineOptions, ValidatedPreservesNonDefaultNestedValues) {
  SeparatorShortestPaths<>::Options opts;
  opts.build.closure = ClosureKind::kFloydWarshall;
  const auto v = opts.validated();
  EXPECT_EQ(v.build.closure, ClosureKind::kFloydWarshall);
}

using EngineOptionsDeathTest = ::testing::Test;

TEST(EngineOptionsDeathTest, RejectsUndispatchableLaneWidth) {
  SeparatorShortestPaths<>::Options opts;
  opts.query.batch_lanes = 3;
  EXPECT_DEATH((void)opts.validated(), "batch_lanes");
}

TEST(EngineOptionsDeathTest, RejectsClosureWithDoublingBuilder) {
  SeparatorShortestPaths<>::Options opts;
  opts.build.builder = BuilderKind::kDoubling;
  opts.build.closure = ClosureKind::kFloydWarshall;
  EXPECT_DEATH((void)opts.validated(), "closure");
}

TEST(EngineOptionsDeathTest, RejectsDoublingKnobsWithRecursiveBuilder) {
  SeparatorShortestPaths<>::Options opts;
  opts.build.doubling.extra_iterations = 1;
  EXPECT_DEATH((void)opts.validated(), "doubling");
}

// --- batch entry points ----------------------------------------------

TEST(EngineBatch, PolicyVariantsAgreeWithScalarQueries) {
  const Fixture f = make_fixture();
  const auto engine = SeparatorShortestPaths<>::build(f.gg.graph, f.tree);
  const auto sources = every_kth_vertex(f.gg.graph.num_vertices(), 5);

  const auto def = engine.distances_batch(sources);
  const auto lanes4 = engine.distances_batch(sources, {.lanes = 4});
  const auto scalar =
      engine.distances_batch(sources, {.force_per_source = true});
  ASSERT_EQ(def.size(), sources.size());
  ASSERT_EQ(lanes4.size(), sources.size());
  ASSERT_EQ(scalar.size(), sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto one = engine.distances(sources[i]);
    EXPECT_EQ(def[i].dist, one.dist);  // bit-identical lane parity
    EXPECT_EQ(lanes4[i].dist, one.dist);
    EXPECT_EQ(scalar[i].dist, one.dist);
    EXPECT_EQ(def[i].edges_scanned, one.edges_scanned);
    EXPECT_EQ(lanes4[i].edges_scanned, one.edges_scanned);
  }
}

TEST(EngineBatch, EngineDefaultLaneWidthComesFromOptions) {
  const Fixture f = make_fixture();
  SeparatorShortestPaths<>::Options opts;
  opts.query.batch_lanes = 2;
  const auto engine =
      SeparatorShortestPaths<>::build(f.gg.graph, f.tree, opts);
  EXPECT_EQ(engine.query_options().batch_lanes, 2u);
  const auto sources = every_kth_vertex(f.gg.graph.num_vertices(), 9);
  const auto batch = engine.distances_batch(sources);  // uses lanes = 2
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(batch[i].dist, engine.distances(sources[i]).dist);
  }
}

// --- snapshot hooks ----------------------------------------------------

TEST(EngineSnapshot, FreezeYieldsSharedImmutableEngineWithSameResults) {
  const Fixture f = make_fixture();
  auto mutable_engine = SeparatorShortestPaths<>::build(f.gg.graph, f.tree);
  const auto expected = mutable_engine.distances(7).dist;
  const SeparatorShortestPaths<>::Snapshot snap =
      SeparatorShortestPaths<>::freeze(std::move(mutable_engine));
  const SeparatorShortestPaths<>::Snapshot alias = snap;  // shared handle
  EXPECT_EQ(snap->distances(7).dist, expected);
  EXPECT_EQ(alias->distances(7).dist, expected);
  EXPECT_EQ(snap.use_count(), 2);
}

TEST(EngineSnapshot, FromAugmentationWithWeightOverrides) {
  // Reweight every arc to 1.0: the overridden engine must agree with an
  // engine built from a graph that actually carries those weights.
  const Fixture f = make_fixture(6);
  GraphBuilder b(f.gg.graph.num_vertices());
  for (const EdgeTriple& e : f.gg.graph.edge_list()) {
    b.add_edge(e.from, e.to, 1.0);
  }
  const Digraph unit = std::move(b).build(/*dedup_min=*/false);
  const auto want = SeparatorShortestPaths<>::build(unit, f.tree);

  const auto unit_aug = want.augmentation();  // shortcuts match weighting
  const std::vector<double> weights(f.gg.graph.num_edges(), 1.0);
  const auto overridden = SeparatorShortestPaths<>::from_augmentation(
      f.gg.graph, unit_aug, weights);
  for (const Vertex src : {Vertex{0}, Vertex{15}, Vertex{35}}) {
    EXPECT_EQ(overridden.distances(src).dist, want.distances(src).dist);
  }
}

TEST(EngineBatch, EmptySourceListYieldsEmptyResult) {
  const Fixture f = make_fixture(6);
  const auto engine = SeparatorShortestPaths<>::build(f.gg.graph, f.tree);
  EXPECT_TRUE(engine.distances_batch({}).empty());
  EXPECT_TRUE(engine.distances_batch({}, {.force_per_source = true}).empty());
}

// --- distances_into / QueryResult accessors ---------------------------

TEST(EngineQuery, DistancesIntoMatchesAllocatingPath) {
  const Fixture f = make_fixture();
  const auto engine = SeparatorShortestPaths<>::build(f.gg.graph, f.tree);
  std::vector<double> buf(f.gg.graph.num_vertices(), -1.0);
  for (const Vertex src : {Vertex{0}, Vertex{21}, Vertex{63}}) {
    const auto r = engine.distances(src);
    const QueryStats s = engine.distances_into(src, buf);  // reused buffer
    EXPECT_EQ(buf, r.dist);
    EXPECT_EQ(s.edges_scanned, r.edges_scanned);
    EXPECT_EQ(s.phases, r.phases);
    EXPECT_EQ(s.negative_cycle, r.negative_cycle);
  }
}

TEST(EngineQuery, ReachedAndDistOrHonorTheSentinel) {
  // Two-vertex graph with a single arc 0 -> 1: vertex 0 cannot be
  // reached from 1, so its entry stays at the zero() sentinel.
  GraphBuilder b(2);
  b.add_edge(0, 1, 3.0);
  const Digraph g = std::move(b).build();
  const SeparatorTree tree =
      build_separator_tree(Skeleton(g), make_bfs_finder());
  const auto engine = SeparatorShortestPaths<>::build(g, tree);
  const auto from1 = engine.distances(1);
  EXPECT_TRUE(from1.reached(1));
  EXPECT_FALSE(from1.reached(0));
  EXPECT_EQ(from1.dist_or(0, -7.0), -7.0);
  EXPECT_EQ(from1.dist_or(1, -7.0), 0.0);
  const auto from0 = engine.distances(0);
  EXPECT_TRUE(from0.reached(1));
  EXPECT_EQ(from0.dist_or(1, -7.0), 3.0);
}

// --- stats ------------------------------------------------------------

TEST(EngineStatsApi, StructuralFieldsAlwaysPopulated) {
  const Fixture f = make_fixture();
  const auto engine = SeparatorShortestPaths<>::build(f.gg.graph, f.tree);
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.num_vertices, f.gg.graph.num_vertices());
  EXPECT_EQ(st.num_edges, f.gg.graph.num_edges());
  EXPECT_EQ(st.eplus_edges, engine.augmentation().shortcuts.size());
  EXPECT_EQ(st.height, f.tree.height());
  EXPECT_EQ(st.diameter_bound, engine.augmentation().diameter_bound());
  EXPECT_EQ(st.levels.size(), static_cast<std::size_t>(st.height) + 1);
  EXPECT_GT(st.build_work, 0u);
  std::ostringstream os;
  st.print(os);  // human sink renders without crashing
  EXPECT_NE(os.str().find("engine stats"), std::string::npos);
}

TEST(EngineStatsApi, CountersTrackQueriesWhenCompiledIn) {
  const Fixture f = make_fixture();
  const auto engine = SeparatorShortestPaths<>::build(f.gg.graph, f.tree);
  const auto sources = every_kth_vertex(f.gg.graph.num_vertices(), 7);
  std::uint64_t expected_edges = 0;
  for (const Vertex s : sources) {
    expected_edges += engine.distances(s).edges_scanned;
  }
  const EngineStats st = engine.stats();
  if constexpr (obs::compiled_in()) {
    EXPECT_EQ(st.queries, sources.size());
    EXPECT_EQ(st.edges_scanned, expected_edges);
    EXPECT_GT(st.phases, 0u);
  } else {
    EXPECT_EQ(st.queries, 0u);
    EXPECT_EQ(st.edges_scanned, 0u);
  }
}

TEST(EngineStatsApi, ScalarAndBatchedScanTotalsAgree) {
  // The batched kernel must charge exactly what the scalar schedule
  // charges, per lane — compare whole-engine totals over one engine
  // driven scalar and one driven batched (ragged last block included).
  const Fixture f = make_fixture();
  const auto scalar_engine =
      SeparatorShortestPaths<>::build(f.gg.graph, f.tree);
  const auto batched_engine =
      SeparatorShortestPaths<>::build(f.gg.graph, f.tree);
  const auto sources = every_kth_vertex(f.gg.graph.num_vertices(), 3);
  ASSERT_NE(sources.size() % SeparatorShortestPaths<>::kBatchLanes, 0u);

  (void)scalar_engine.distances_batch(sources, {.force_per_source = true});
  (void)batched_engine.distances_batch(sources);

  const EngineStats ss = scalar_engine.stats();
  const EngineStats bs = batched_engine.stats();
  if constexpr (obs::compiled_in()) {
    EXPECT_EQ(ss.queries, sources.size());
    EXPECT_EQ(bs.queries, sources.size());
    EXPECT_EQ(ss.edges_scanned, bs.edges_scanned);
    EXPECT_EQ(ss.phases, bs.phases);
    // Per-level charges agree too (the schedule's bucket scans).
    ASSERT_EQ(ss.levels.size(), bs.levels.size());
    for (std::size_t l = 0; l < ss.levels.size(); ++l) {
      EXPECT_EQ(ss.levels[l].edges_scanned, bs.levels[l].edges_scanned)
          << "level " << l;
    }
    EXPECT_GT(bs.batch_blocks, 0u);
    EXPECT_GT(bs.lane_occupancy(), 0.0);
    EXPECT_LT(bs.lane_occupancy(), 1.0);  // ragged last block
  }
}

// --- serialization round trip & versioning ----------------------------

template <Semiring S>
void round_trip_exact_distances() {
  const Fixture f = make_fixture();
  const auto original = SeparatorShortestPaths<S>::build(f.gg.graph, f.tree);
  std::stringstream ss;
  save_augmentation<S>(ss, original.augmentation());
  std::string error;
  auto loaded = load_augmentation<S>(ss, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->critical_depth, original.augmentation().critical_depth);
  EXPECT_EQ(loaded->build_cost.work, original.augmentation().build_cost.work);
  const auto revived =
      SeparatorShortestPaths<S>::from_augmentation(f.gg.graph,
                                                   std::move(*loaded));
  for (const Vertex src : {Vertex{0}, Vertex{13}, Vertex{42}, Vertex{63}}) {
    EXPECT_EQ(revived.distances(src).dist, original.distances(src).dist);
  }
}

TEST(EngineSerialize, RoundTripExactTropicalD) {
  round_trip_exact_distances<TropicalD>();
}
TEST(EngineSerialize, RoundTripExactTropicalI) {
  round_trip_exact_distances<TropicalI>();
}
TEST(EngineSerialize, RoundTripExactBoolean) {
  round_trip_exact_distances<BooleanSR>();
}
TEST(EngineSerialize, RoundTripExactBottleneck) {
  round_trip_exact_distances<BottleneckSR>();
}

TEST(EngineSerialize, ReadsVersion1Payloads) {
  // Hand-written v1 layout (no build-cost metadata): must still load,
  // with the v2 fields defaulting to zero.
  const Fixture f = make_fixture(6);
  const auto aug =
      build_augmentation_recursive<TropicalD>(f.gg.graph, f.tree);
  std::stringstream ss;
  using serial_detail::write_pod;
  using serial_detail::write_vec;
  write_pod(ss, serial_detail::kAugMagic);
  write_pod(ss, std::uint32_t{1});
  write_pod(ss, static_cast<std::uint64_t>(aug.levels.level.size()));
  write_pod(ss, aug.height);
  write_pod(ss, static_cast<std::uint64_t>(aug.ell));
  write_vec(ss, aug.levels.level);
  write_vec(ss, aug.levels.node);
  write_vec(ss, aug.shortcuts);

  std::string error;
  const auto loaded = load_augmentation<TropicalD>(ss, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->height, aug.height);
  EXPECT_EQ(loaded->shortcuts.size(), aug.shortcuts.size());
  EXPECT_EQ(loaded->critical_depth, 0u);
  EXPECT_EQ(loaded->build_cost.work, 0u);
}

TEST(EngineSerialize, RejectsUnknownFutureVersionWithClearError) {
  std::stringstream ss;
  serial_detail::write_pod(ss, serial_detail::kAugMagic);
  serial_detail::write_pod(ss, std::uint32_t{99});
  std::string error;
  EXPECT_FALSE(load_augmentation<TropicalD>(ss, &error).has_value());
  EXPECT_NE(error.find("unsupported format version 99"), std::string::npos);
}

TEST(EngineSerialize, RejectsWrongMagicWithClearError) {
  std::stringstream ss("definitely not an augmentation");
  std::string error;
  EXPECT_FALSE(load_augmentation<TropicalD>(ss, &error).has_value());
  EXPECT_NE(error.find("bad magic"), std::string::npos);
}

TEST(EngineSerialize, TreeLoaderReportsTruncation) {
  std::stringstream ss;
  serial_detail::write_pod(ss, serial_detail::kTreeMagic);
  std::string error;
  EXPECT_FALSE(load_tree(ss, &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos);
}

}  // namespace
}  // namespace sepsp
