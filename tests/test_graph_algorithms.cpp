// Unit tests for skeletons, BFS, components, SCC, topological order.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/skeleton.hpp"

namespace sepsp {
namespace {

TEST(Skeleton, MergesDirectionsAndDedups) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 0, 2);  // same undirected edge
  b.add_edge(1, 2, 3);
  b.add_edge(1, 1, 9);  // self loop ignored
  const Digraph g = std::move(b).build();
  const Skeleton s(g);
  EXPECT_EQ(s.num_vertices(), 3u);
  EXPECT_EQ(s.num_edges(), 2u);
  EXPECT_EQ(s.degree(1), 2u);
  EXPECT_EQ(s.degree(0), 1u);
}

TEST(Skeleton, FromEdges) {
  const std::vector<EdgeTriple> edges{{0, 1, 1.0}, {2, 1, 1.0}};
  const Skeleton s = Skeleton::from_edges(4, edges);
  EXPECT_EQ(s.num_edges(), 2u);
  EXPECT_EQ(s.degree(3), 0u);
}

TEST(Bfs, DirectedHopsAndParents) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(3, 0, 1);  // 3 unreachable FROM 0
  const Digraph g = std::move(b).build();
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.hops[0], 0u);
  EXPECT_EQ(r.hops[1], 1u);
  EXPECT_EQ(r.hops[2], 2u);
  EXPECT_EQ(r.hops[3], BfsResult::kUnreachedHops);
  EXPECT_EQ(r.parent[2], 1u);
  EXPECT_EQ(r.parent[0], kInvalidVertex);
}

TEST(Bfs, SkeletonWithMask) {
  Rng rng(1);
  const GeneratedGraph gg = make_grid({5, 5}, WeightModel::unit(), rng);
  const Skeleton s(gg.graph);
  // Mask away the middle column (x == 2): vertex v has x = v % 5.
  std::vector<std::uint8_t> mask(25, 1);
  for (Vertex v = 0; v < 25; ++v) {
    if (v % 5 == 2) mask[v] = 0;
  }
  const BfsResult r = bfs(s, 0, mask);
  EXPECT_EQ(r.hops[1], 1u);                              // same side
  EXPECT_EQ(r.hops[2], BfsResult::kUnreachedHops);       // masked out
  EXPECT_EQ(r.hops[4], BfsResult::kUnreachedHops);       // across the cut
}

TEST(Components, CountsAndSizes) {
  GraphBuilder b(6);
  b.add_edge(0, 1, 1);
  b.add_edge(2, 3, 1);
  b.add_edge(3, 4, 1);
  const Digraph g = std::move(b).build();
  const Skeleton s(g);
  const Components c = connected_components(s);
  EXPECT_EQ(c.count, 3u);  // {0,1}, {2,3,4}, {5}
  EXPECT_EQ(c.id[0], c.id[1]);
  EXPECT_EQ(c.id[2], c.id[4]);
  EXPECT_NE(c.id[0], c.id[2]);
  std::vector<std::size_t> sizes = c.size;
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(Components, MaskRestricts) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  const Digraph g = std::move(b).build();
  const Skeleton s(g);
  const std::vector<std::uint8_t> mask{1, 0, 1};
  const Components c = connected_components(s, mask);
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.id[1], Components::kNoComponent);
}

TEST(Scc, DecomposesMixedGraph) {
  // Two 2-cycles joined by a one-way arc, plus a sink.
  GraphBuilder b(5);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 0, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 1);
  b.add_edge(3, 2, 1);
  b.add_edge(3, 4, 1);
  const Digraph g = std::move(b).build();
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.count, 3u);
  EXPECT_EQ(r.id[0], r.id[1]);
  EXPECT_EQ(r.id[2], r.id[3]);
  EXPECT_NE(r.id[0], r.id[2]);
  EXPECT_NE(r.id[4], r.id[2]);
}

TEST(Scc, SingletonsOnDag) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(0, 3, 1);
  const Digraph g = std::move(b).build();
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.count, 4u);
}

TEST(Scc, LargeCycleIsOneComponent) {
  Rng rng(3);
  const GeneratedGraph gg = make_cycle(500, WeightModel::unit(), rng);
  const SccResult r = strongly_connected_components(gg.graph);
  EXPECT_EQ(r.count, 1u);
}

TEST(Topo, OrdersDagAndRejectsCycle) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 2, 1);
  b.add_edge(1, 3, 1);
  b.add_edge(2, 3, 1);
  const Digraph dag = std::move(b).build();
  const auto order = topological_order(dag);
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  for (const EdgeTriple& e : dag.edge_list()) {
    EXPECT_LT(pos[e.from], pos[e.to]);
  }

  Rng rng(4);
  const GeneratedGraph cyc = make_cycle(5, WeightModel::unit(), rng);
  EXPECT_FALSE(topological_order(cyc.graph).has_value());
}

TEST(IsConnected, DetectsBothCases) {
  Rng rng(5);
  const GeneratedGraph grid = make_grid({4, 4}, WeightModel::unit(), rng);
  EXPECT_TRUE(is_connected(Skeleton(grid.graph)));
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  EXPECT_FALSE(is_connected(Skeleton(std::move(b).build())));
}

}  // namespace
}  // namespace sepsp
