// Boundary and degenerate inputs across the whole stack: self loops,
// parallel arcs, zero weights, single-vertex/single-leaf instances,
// complete graphs, empty-ish graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/bellman_ford.hpp"
#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "core/builder_recursive.hpp"
#include "core/incremental.hpp"
#include "core/query.hpp"
#include "semiring/bitmatrix.hpp"
#include "semiring/matrix.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

SeparatorTree tree_of(const Digraph& g, std::size_t leaf_size = 4) {
  DecompositionOptions opts;
  opts.leaf_size = leaf_size;
  const Skeleton skel(g);
  return build_separator_tree(skel, make_auto_finder(skel), opts);
}

TEST(EdgeCases, SingleVertexGraph) {
  GraphBuilder b(1);
  const Digraph g = std::move(b).build();
  const SeparatorTree tree = tree_of(g);
  const auto engine = SeparatorShortestPaths<>::build(g, tree);
  const auto r = engine.distances(0);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
  EXPECT_FALSE(r.negative_cycle);
}

TEST(EdgeCases, TwoVerticesOneArc) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 4.5);
  const Digraph g = std::move(b).build();
  const auto engine = SeparatorShortestPaths<>::build(g, tree_of(g));
  const auto r = engine.distances(0);
  EXPECT_DOUBLE_EQ(r.dist[1], 4.5);
  EXPECT_TRUE(std::isinf(engine.distances(1).dist[0]));
}

TEST(EdgeCases, PositiveSelfLoopsAreIgnoredByDistances) {
  GraphBuilder b(3);
  b.add_edge(0, 0, 5.0);  // harmless self loop
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(2, 2, 0.5);
  const Digraph g = std::move(b).build();
  const auto engine = SeparatorShortestPaths<>::build(g, tree_of(g));
  const auto r = engine.distances(0);
  EXPECT_FALSE(r.negative_cycle);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(r.dist[2], 2.0);
}

TEST(EdgeCases, NegativeSelfLoopIsANegativeCycle) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 1, -0.25);
  const Digraph g = std::move(b).build();
  const auto engine = SeparatorShortestPaths<>::build(g, tree_of(g));
  EXPECT_TRUE(engine.distances(0).negative_cycle);
  EXPECT_TRUE(bellman_ford(g, 0).negative_cycle);
  // Unreachable from 1's perspective? 1 reaches itself: still flagged.
  EXPECT_TRUE(engine.distances(1).negative_cycle);
}

TEST(EdgeCases, ParallelArcsKeepTheMinimum) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 9.0);
  b.add_edge(0, 1, 2.0);
  b.add_edge(0, 1, 5.0);
  const Digraph g = std::move(b).build(/*dedup_min=*/false);
  const auto engine = SeparatorShortestPaths<>::build(g, tree_of(g));
  EXPECT_DOUBLE_EQ(engine.distances(0).dist[1], 2.0);
}

TEST(EdgeCases, ZeroWeightGraph) {
  Rng rng(1);
  const GeneratedGraph gg = make_grid({5, 5}, WeightModel::unit(), rng);
  GraphBuilder b(25);
  for (const EdgeTriple& e : gg.graph.edge_list()) {
    b.add_edge(e.from, e.to, 0.0);
  }
  const Digraph g = std::move(b).build();
  const auto engine = SeparatorShortestPaths<>::build(g, tree_of(g));
  const auto r = engine.distances(12);
  EXPECT_FALSE(r.negative_cycle);
  for (Vertex v = 0; v < 25; ++v) EXPECT_DOUBLE_EQ(r.dist[v], 0.0);
}

TEST(EdgeCases, SingleLeafTreeDegradesToBellmanFord) {
  // leaf_size >= n: the tree is one leaf, E+ is empty, ell = n - 1, and
  // the schedule is plain phase-limited Bellman–Ford — still exact.
  Rng rng(2);
  const GeneratedGraph gg = make_grid({6, 6}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree = tree_of(gg.graph, /*leaf_size=*/64);
  EXPECT_EQ(tree.num_nodes(), 1u);
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  EXPECT_TRUE(engine.augmentation().shortcuts.empty());
  const auto got = engine.distances(0);
  const auto want = dijkstra(gg.graph, 0);
  for (Vertex v = 0; v < 36; ++v) {
    EXPECT_NEAR(got.dist[v], want.dist[v], 1e-9);
  }
}

TEST(EdgeCases, CompleteGraphEngineWorksDespiteNoSeparators) {
  Rng rng(3);
  const GeneratedGraph gg = make_complete(12, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree = tree_of(gg.graph);
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const auto got = engine.distances(0);
  const auto want = dijkstra(gg.graph, 0);
  for (Vertex v = 0; v < 12; ++v) {
    EXPECT_NEAR(got.dist[v], want.dist[v], 1e-9);
  }
}

TEST(EdgeCases, DisconnectedPiecesAndIsolatedVertices) {
  GraphBuilder b(9);
  b.add_bidirectional(0, 1, 1);
  b.add_bidirectional(1, 2, 1);
  b.add_bidirectional(4, 5, 2);  // 3, 6, 7, 8 isolated
  const Digraph g = std::move(b).build();
  const auto engine = SeparatorShortestPaths<>::build(g, tree_of(g, 2));
  const auto r = engine.distances(0);
  EXPECT_DOUBLE_EQ(r.dist[2], 2.0);
  for (const Vertex v : {3u, 4u, 6u, 8u}) EXPECT_TRUE(std::isinf(r.dist[v]));
  const auto r8 = engine.distances(8);
  EXPECT_DOUBLE_EQ(r8.dist[8], 0.0);
}

TEST(EdgeCases, IncrementalWithParallelArcs) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 9.0);
  b.add_edge(0, 1, 3.0);  // parallel
  b.add_edge(1, 2, 1.0);
  const Digraph g = std::move(b).build(/*dedup_min=*/false);
  const SeparatorTree tree = tree_of(g, 2);
  IncrementalEngine engine = IncrementalEngine::build(g, tree);
  EXPECT_DOUBLE_EQ(engine.distances(0).dist[2], 4.0);
  engine.update_edge(0, 1, 7.0);  // sets BOTH parallels
  engine.apply();
  EXPECT_DOUBLE_EQ(engine.weight(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(engine.distances(0).dist[2], 8.0);
}

TEST(EdgeCases, HugeWeightsDoNotOverflow) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1e300);
  b.add_edge(1, 2, 1e300);
  const Digraph g = std::move(b).build();
  const auto engine = SeparatorShortestPaths<>::build(g, tree_of(g, 2));
  const auto r = engine.distances(0);
  EXPECT_FALSE(r.negative_cycle);
  EXPECT_DOUBLE_EQ(r.dist[2], 2e300);
}

TEST(EdgeCases, EmptySeedSetsAndEmptyBatches) {
  Rng rng(5);
  const GeneratedGraph gg = make_grid({4, 4}, WeightModel::uniform(1, 9), rng);
  const auto engine =
      SeparatorShortestPaths<>::build(gg.graph, tree_of(gg.graph));
  // No seeds: nothing is reachable, nothing crashes.
  const auto none = engine.query_engine().run_weighted({});
  for (Vertex v = 0; v < 16; ++v) EXPECT_TRUE(std::isinf(none.dist[v]));
  EXPECT_FALSE(none.negative_cycle);
  const auto batch = engine.distances_batch({});
  EXPECT_TRUE(batch.empty());
}

TEST(EdgeCases, ZeroSizedMatrices) {
  Matrix<TropicalD> a(0), b(0);
  const auto c = multiply(a, b);
  EXPECT_EQ(c.rows(), 0u);
  floyd_warshall(a);  // no-op, no crash
  BitMatrix bits(0, 0);
  EXPECT_EQ(bits.popcount(), 0u);
  EXPECT_EQ(bits.closure().popcount(), 0u);
}

TEST(EdgeCases, MeasuredRadiusOnTrivialGraphs) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1.0);
  const Digraph g = std::move(b).build();
  const SeparatorTree tree = tree_of(g, 2);
  const auto aug = build_augmentation_recursive<TropicalD>(g, tree);
  EXPECT_LE(measure_shortcut_radius(g, aug, 0), aug.diameter_bound());
  EXPECT_EQ(measure_shortcut_radius(g, aug, 1), 0u);  // nothing reachable
}

TEST(EdgeCases, BatchWithDuplicateSources) {
  Rng rng(4);
  const GeneratedGraph gg = make_grid({4, 4}, WeightModel::uniform(1, 9), rng);
  const auto engine =
      SeparatorShortestPaths<>::build(gg.graph, tree_of(gg.graph));
  const std::vector<Vertex> sources{3, 3, 3};
  const auto batch = engine.distances_batch(sources);
  EXPECT_EQ(batch[0].dist, batch[1].dist);
  EXPECT_EQ(batch[1].dist, batch[2].dist);
}

}  // namespace
}  // namespace sepsp
