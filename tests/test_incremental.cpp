// Incremental reweighting: staged updates recompute only the affected
// tree nodes yet always agree with a fresh build / Dijkstra.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/bellman_ford.hpp"
#include "baseline/dijkstra.hpp"
#include "core/incremental.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

struct Fixture {
  GeneratedGraph gg;
  SeparatorTree tree;
};

Fixture make_grid_fixture(std::size_t side, std::uint64_t seed) {
  Rng rng(seed);
  Fixture f{make_grid({side, side}, WeightModel::uniform(1, 9), rng), {}};
  f.tree = build_separator_tree(Skeleton(f.gg.graph),
                                make_grid_finder({side, side}));
  return f;
}

void expect_matches_dijkstra(const IncrementalEngine& engine,
                             const Digraph& reference, Vertex source) {
  const auto got = engine.distances(source);
  const DijkstraResult want = dijkstra(reference, source);
  for (Vertex v = 0; v < reference.num_vertices(); ++v) {
    if (std::isinf(want.dist[v])) {
      EXPECT_TRUE(std::isinf(got.dist[v])) << v;
    } else {
      EXPECT_NEAR(got.dist[v], want.dist[v], 1e-8) << v;
    }
  }
}

// Reference graph with selected arc weights replaced.
Digraph reweighted(const Digraph& g,
                   const std::vector<EdgeTriple>& updates) {
  GraphBuilder b(g.num_vertices());
  for (EdgeTriple e : g.edge_list()) {
    for (const EdgeTriple& u : updates) {
      if (u.from == e.from && u.to == e.to) e.weight = u.weight;
    }
    b.add_edge(e.from, e.to, e.weight);
  }
  return std::move(b).build(/*dedup_min=*/false);
}

TEST(Incremental, FreshBuildMatchesDijkstra) {
  const Fixture f = make_grid_fixture(9, 1);
  const IncrementalEngine engine =
      IncrementalEngine::build(f.gg.graph, f.tree);
  expect_matches_dijkstra(engine, f.gg.graph, 0);
  expect_matches_dijkstra(engine, f.gg.graph, 40);
}

TEST(Incremental, SingleUpdateTouchesFewNodesAndStaysExact) {
  const Fixture f = make_grid_fixture(12, 2);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  const std::vector<EdgeTriple> updates{{5, 6, 0.25}};
  engine.update_edge(5, 6, 0.25);
  const std::size_t touched = engine.apply();
  EXPECT_GT(touched, 0u);
  EXPECT_LT(touched, f.tree.num_nodes() / 4);  // localized, not a rebuild
  EXPECT_DOUBLE_EQ(engine.weight(5, 6), 0.25);
  const Digraph reference = reweighted(f.gg.graph, updates);
  expect_matches_dijkstra(engine, reference, 0);
  expect_matches_dijkstra(engine, reference, 100);
}

TEST(Incremental, BatchedUpdates) {
  const Fixture f = make_grid_fixture(10, 3);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  std::vector<EdgeTriple> updates;
  Rng pick(4);
  for (const EdgeTriple& e : f.gg.graph.edge_list()) {
    if (pick.next_bool(0.05)) {
      updates.push_back({e.from, e.to, e.weight * 10.0});
      engine.update_edge(e.from, e.to, e.weight * 10.0);
    }
  }
  ASSERT_FALSE(updates.empty());
  engine.apply();
  const Digraph reference = reweighted(f.gg.graph, updates);
  expect_matches_dijkstra(engine, reference, 37);
}

TEST(Incremental, RepeatedUpdateCyclesConverge) {
  const Fixture f = make_grid_fixture(8, 5);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  std::vector<EdgeTriple> current = f.gg.graph.edge_list();
  Rng rng(6);
  for (int round = 0; round < 5; ++round) {
    const std::size_t idx = rng.next_below(current.size());
    const double w = rng.next_double(0.5, 20.0);
    current[idx].weight = w;
    // Parallel arcs share the update in the engine; mirror that.
    for (auto& e : current) {
      if (e.from == current[idx].from && e.to == current[idx].to) {
        e.weight = w;
      }
    }
    engine.update_edge(current[idx].from, current[idx].to, w);
    engine.apply();
    GraphBuilder b(f.gg.graph.num_vertices());
    for (const auto& e : current) b.add_edge(e.from, e.to, e.weight);
    const Digraph reference = std::move(b).build(/*dedup_min=*/false);
    expect_matches_dijkstra(engine, reference, 0);
  }
}

TEST(Incremental, NegativeReweightingSupported) {
  const Fixture f = make_grid_fixture(7, 7);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  // Make one edge mildly negative (no cycle becomes negative: the grid
  // has all-positive weights >= 1 and cycles of length >= 4).
  engine.update_edge(0, 1, -0.5);
  engine.apply();
  const Digraph reference = reweighted(f.gg.graph, {{0, 1, -0.5}});
  const auto got = engine.distances(0);
  ASSERT_FALSE(got.negative_cycle);
  const BellmanFordResult want = bellman_ford(reference, 0);
  ASSERT_FALSE(want.negative_cycle);
  for (Vertex v = 0; v < reference.num_vertices(); ++v) {
    EXPECT_NEAR(got.dist[v], want.dist[v], 1e-9) << v;
  }
  EXPECT_NEAR(got.dist[1], -0.5, 1e-9);
}

TEST(Incremental, SnapshotsServeBatchedQueriesPreAndPostUpdate) {
  const Fixture f = make_grid_fixture(9, 10);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  const std::vector<Vertex> sources{0, 7, 23, 44, 61, 80};

  const IncrementalEngine::Snapshot pre = engine.snapshot();
  EXPECT_EQ(pre.epoch, 0u);

  const std::vector<EdgeTriple> updates{{4, 5, 0.25}, {40, 41, 30.0}};
  for (const EdgeTriple& u : updates) {
    engine.update_edge(u.from, u.to, u.weight);
  }
  engine.apply();
  const IncrementalEngine::Snapshot post = engine.snapshot();
  EXPECT_EQ(post.epoch, 1u);

  // Each frozen engine answers the batched-lane workload against the
  // weighting of its own epoch — the pre snapshot is unaffected by the
  // update applied after it was taken.
  const Digraph post_ref = reweighted(f.gg.graph, updates);
  const auto pre_got = pre.engine->distances_batch(sources, {.lanes = 4});
  const auto post_got = post.engine->distances_batch(sources, {.lanes = 4});
  ASSERT_EQ(pre_got.size(), sources.size());
  ASSERT_EQ(post_got.size(), sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const DijkstraResult pre_want = dijkstra(f.gg.graph, sources[i]);
    const DijkstraResult post_want = dijkstra(post_ref, sources[i]);
    for (Vertex v = 0; v < f.gg.graph.num_vertices(); ++v) {
      EXPECT_NEAR(pre_got[i].dist[v], pre_want.dist[v], 1e-9)
          << "pre s=" << sources[i] << " v=" << v;
      EXPECT_NEAR(post_got[i].dist[v], post_want.dist[v], 1e-9)
          << "post s=" << sources[i] << " v=" << v;
    }
  }
}

TEST(Incremental, SnapshotWithStagedUpdatesAborts) {
  const Fixture f = make_grid_fixture(6, 11);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  engine.update_edge(0, 1, 2.0);
  EXPECT_DEATH({ (void)engine.snapshot(); }, "apply");
}

TEST(Incremental, ApplyWithoutUpdatesIsNoop) {
  const Fixture f = make_grid_fixture(6, 8);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  EXPECT_EQ(engine.apply(), 0u);
}

TEST(Incremental, QueryBeforeApplyAborts) {
  const Fixture f = make_grid_fixture(6, 9);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  engine.update_edge(0, 1, 3.0);
  EXPECT_DEATH({ (void)engine.distances(0); }, "apply");
}

}  // namespace
}  // namespace sepsp
