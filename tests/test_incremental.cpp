// Incremental reweighting: staged updates recompute only the affected
// tree nodes yet always agree with a fresh build / Dijkstra.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "baseline/bellman_ford.hpp"
#include "baseline/dijkstra.hpp"
#include "core/incremental.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

struct Fixture {
  GeneratedGraph gg;
  SeparatorTree tree;
};

Fixture make_grid_fixture(std::size_t side, std::uint64_t seed) {
  Rng rng(seed);
  Fixture f{make_grid({side, side}, WeightModel::uniform(1, 9), rng), {}};
  f.tree = build_separator_tree(Skeleton(f.gg.graph),
                                make_grid_finder({side, side}));
  return f;
}

void expect_matches_dijkstra(const IncrementalEngine& engine,
                             const Digraph& reference, Vertex source) {
  const auto got = engine.distances(source);
  const DijkstraResult want = dijkstra(reference, source);
  for (Vertex v = 0; v < reference.num_vertices(); ++v) {
    if (std::isinf(want.dist[v])) {
      EXPECT_TRUE(std::isinf(got.dist[v])) << v;
    } else {
      EXPECT_NEAR(got.dist[v], want.dist[v], 1e-8) << v;
    }
  }
}

// Reference graph with selected arc weights replaced.
Digraph reweighted(const Digraph& g,
                   const std::vector<EdgeTriple>& updates) {
  GraphBuilder b(g.num_vertices());
  for (EdgeTriple e : g.edge_list()) {
    for (const EdgeTriple& u : updates) {
      if (u.from == e.from && u.to == e.to) e.weight = u.weight;
    }
    b.add_edge(e.from, e.to, e.weight);
  }
  return std::move(b).build(/*dedup_min=*/false);
}

TEST(Incremental, FreshBuildMatchesDijkstra) {
  const Fixture f = make_grid_fixture(9, 1);
  const IncrementalEngine engine =
      IncrementalEngine::build(f.gg.graph, f.tree);
  expect_matches_dijkstra(engine, f.gg.graph, 0);
  expect_matches_dijkstra(engine, f.gg.graph, 40);
}

TEST(Incremental, SingleUpdateTouchesFewNodesAndStaysExact) {
  const Fixture f = make_grid_fixture(12, 2);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  const std::vector<EdgeTriple> updates{{5, 6, 0.25}};
  engine.update_edge(5, 6, 0.25);
  const std::size_t touched = engine.apply();
  EXPECT_GT(touched, 0u);
  EXPECT_LT(touched, f.tree.num_nodes() / 4);  // localized, not a rebuild
  EXPECT_DOUBLE_EQ(engine.weight(5, 6), 0.25);
  const Digraph reference = reweighted(f.gg.graph, updates);
  expect_matches_dijkstra(engine, reference, 0);
  expect_matches_dijkstra(engine, reference, 100);
}

TEST(Incremental, BatchedUpdates) {
  const Fixture f = make_grid_fixture(10, 3);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  std::vector<EdgeTriple> updates;
  Rng pick(4);
  for (const EdgeTriple& e : f.gg.graph.edge_list()) {
    if (pick.next_bool(0.05)) {
      updates.push_back({e.from, e.to, e.weight * 10.0});
      engine.update_edge(e.from, e.to, e.weight * 10.0);
    }
  }
  ASSERT_FALSE(updates.empty());
  engine.apply();
  const Digraph reference = reweighted(f.gg.graph, updates);
  expect_matches_dijkstra(engine, reference, 37);
}

TEST(Incremental, RepeatedUpdateCyclesConverge) {
  const Fixture f = make_grid_fixture(8, 5);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  std::vector<EdgeTriple> current = f.gg.graph.edge_list();
  Rng rng(6);
  for (int round = 0; round < 5; ++round) {
    const std::size_t idx = rng.next_below(current.size());
    const double w = rng.next_double(0.5, 20.0);
    current[idx].weight = w;
    // Parallel arcs share the update in the engine; mirror that.
    for (auto& e : current) {
      if (e.from == current[idx].from && e.to == current[idx].to) {
        e.weight = w;
      }
    }
    engine.update_edge(current[idx].from, current[idx].to, w);
    engine.apply();
    GraphBuilder b(f.gg.graph.num_vertices());
    for (const auto& e : current) b.add_edge(e.from, e.to, e.weight);
    const Digraph reference = std::move(b).build(/*dedup_min=*/false);
    expect_matches_dijkstra(engine, reference, 0);
  }
}

TEST(Incremental, NegativeReweightingSupported) {
  const Fixture f = make_grid_fixture(7, 7);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  // Make one edge mildly negative (no cycle becomes negative: the grid
  // has all-positive weights >= 1 and cycles of length >= 4).
  engine.update_edge(0, 1, -0.5);
  engine.apply();
  const Digraph reference = reweighted(f.gg.graph, {{0, 1, -0.5}});
  const auto got = engine.distances(0);
  ASSERT_FALSE(got.negative_cycle);
  const BellmanFordResult want = bellman_ford(reference, 0);
  ASSERT_FALSE(want.negative_cycle);
  for (Vertex v = 0; v < reference.num_vertices(); ++v) {
    EXPECT_NEAR(got.dist[v], want.dist[v], 1e-9) << v;
  }
  EXPECT_NEAR(got.dist[1], -0.5, 1e-9);
}

TEST(Incremental, SnapshotsServeBatchedQueriesPreAndPostUpdate) {
  const Fixture f = make_grid_fixture(9, 10);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  const std::vector<Vertex> sources{0, 7, 23, 44, 61, 80};

  const IncrementalEngine::Snapshot pre = engine.snapshot();
  EXPECT_EQ(pre.epoch, 0u);

  const std::vector<EdgeTriple> updates{{4, 5, 0.25}, {40, 41, 30.0}};
  for (const EdgeTriple& u : updates) {
    engine.update_edge(u.from, u.to, u.weight);
  }
  engine.apply();
  const IncrementalEngine::Snapshot post = engine.snapshot();
  EXPECT_EQ(post.epoch, 1u);

  // Each frozen engine answers the batched-lane workload against the
  // weighting of its own epoch — the pre snapshot is unaffected by the
  // update applied after it was taken.
  const Digraph post_ref = reweighted(f.gg.graph, updates);
  const auto pre_got = pre.engine->distances_batch(sources, {.lanes = 4});
  const auto post_got = post.engine->distances_batch(sources, {.lanes = 4});
  ASSERT_EQ(pre_got.size(), sources.size());
  ASSERT_EQ(post_got.size(), sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const DijkstraResult pre_want = dijkstra(f.gg.graph, sources[i]);
    const DijkstraResult post_want = dijkstra(post_ref, sources[i]);
    for (Vertex v = 0; v < f.gg.graph.num_vertices(); ++v) {
      EXPECT_NEAR(pre_got[i].dist[v], pre_want.dist[v], 1e-9)
          << "pre s=" << sources[i] << " v=" << v;
      EXPECT_NEAR(post_got[i].dist[v], post_want.dist[v], 1e-9)
          << "post s=" << sources[i] << " v=" << v;
    }
  }
}

bool bit_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(Incremental, HeldSnapshotStaysBitIdenticalAcrossApplies) {
  const Fixture f = make_grid_fixture(9, 21);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  const std::vector<Vertex> sources{0, 13, 57, 80};

  const IncrementalEngine::Snapshot held = engine.snapshot();
  std::vector<std::vector<double>> before;
  for (const Vertex s : sources) {
    before.push_back(held.engine->distances(s).dist);
  }

  // Two further epochs, each touching different regions: the held
  // snapshot's copy-on-write slabs must detach, not mutate.
  engine.update_edge(4, 5, 0.125);
  engine.apply();
  engine.update_edge(60, 61, 40.0);
  engine.update_edge(30, 31, 0.5);
  engine.apply();
  EXPECT_EQ(engine.epoch(), 2u);

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto after = held.engine->distances(sources[i]).dist;
    EXPECT_TRUE(bit_equal(before[i], after)) << "source " << sources[i];
  }
  // The batched kernel reads the same frozen slabs.
  const auto batched = held.engine->distances_batch(sources, {.lanes = 4});
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_TRUE(bit_equal(before[i], batched[i].dist))
        << "batched source " << sources[i];
  }
}

TEST(Incremental, SnapshotsStructurallyShareUntouchedSlabs) {
  const Fixture f = make_grid_fixture(12, 22);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);

  const IncrementalEngine::Snapshot s1 = engine.snapshot();
  const std::size_t total = engine.query_engine().total_slabs();
  ASSERT_GT(total, 0u);
  // A snapshot taken with no intervening apply aliases every slab.
  EXPECT_EQ(engine.query_engine().slabs_shared_with(s1.engine->query_engine()),
            total);

  engine.update_edge(5, 6, 0.25);
  engine.apply();
  const IncrementalEngine::ApplyStats st = engine.last_apply_stats();
  EXPECT_GT(st.nodes_recomputed, 0u);
  EXPECT_GT(st.slots_touched, 0u);
  EXPECT_GT(st.slabs_copied, 0u);

  const IncrementalEngine::Snapshot s2 = engine.snapshot();
  const auto& q1 = s1.engine->query_engine();
  const auto& q2 = s2.engine->query_engine();
  const std::size_t shared = q1.slabs_shared_with(q2);
  // A point update detaches only the touched slabs: successive epochs
  // keep aliasing the rest, and exactly the apply()'s copy count is
  // missing. (On this small fixture most buckets are a single slab, so
  // the *fraction* shared is modest; the identity is what matters.)
  EXPECT_EQ(shared, total - st.slabs_copied);
  EXPECT_GT(shared, 0u);
  EXPECT_LT(st.slabs_copied, total);
}

TEST(Incremental, ParallelAndSerialApplyBitIdentical) {
  const Fixture f = make_grid_fixture(12, 23);
  IncrementalEngine par = IncrementalEngine::build(f.gg.graph, f.tree);
  IncrementalEngine ser = IncrementalEngine::build(f.gg.graph, f.tree);
  ser.set_parallel_apply(false);
  EXPECT_TRUE(par.parallel_apply());
  EXPECT_FALSE(ser.parallel_apply());

  Rng pick(9);
  const auto edges = f.gg.graph.edge_list();
  for (int round = 0; round < 3; ++round) {
    // A batch wide enough that several leaves go dirty per level.
    for (int i = 0; i < 12; ++i) {
      const EdgeTriple& e = edges[pick.next_below(edges.size())];
      const double w = pick.next_double(0.25, 25.0);
      par.update_edge(e.from, e.to, w);
      ser.update_edge(e.from, e.to, w);
    }
    const std::size_t n_par = par.apply();
    const std::size_t n_ser = ser.apply();
    EXPECT_EQ(n_par, n_ser) << "round " << round;
    const auto st_par = par.last_apply_stats();
    const auto st_ser = ser.last_apply_stats();
    EXPECT_EQ(st_par.nodes_recomputed, st_ser.nodes_recomputed);
    EXPECT_EQ(st_par.slots_touched, st_ser.slots_touched);

    // Shortcut values and query results must be bit-identical, not just
    // close: both paths run the same kernels in the same order.
    const auto& sp = par.augmentation().shortcuts;
    const auto& ss = ser.augmentation().shortcuts;
    ASSERT_EQ(sp.size(), ss.size());
    for (std::size_t i = 0; i < sp.size(); ++i) {
      ASSERT_EQ(std::memcmp(&sp[i].value, &ss[i].value, sizeof(sp[i].value)),
                0)
          << "shortcut " << i;
    }
    for (const Vertex s : {Vertex{0}, Vertex{71}, Vertex{143}}) {
      EXPECT_TRUE(bit_equal(par.distances(s).dist, ser.distances(s).dist))
          << "round " << round << " source " << s;
    }
  }
}

TEST(Incremental, SnapshotWithStagedUpdatesAborts) {
  const Fixture f = make_grid_fixture(6, 11);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  engine.update_edge(0, 1, 2.0);
  EXPECT_DEATH({ (void)engine.snapshot(); }, "apply");
}

TEST(Incremental, ApplyWithoutUpdatesIsNoop) {
  const Fixture f = make_grid_fixture(6, 8);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  EXPECT_EQ(engine.apply(), 0u);
}

TEST(Incremental, QueryBeforeApplyAborts) {
  const Fixture f = make_grid_fixture(6, 9);
  IncrementalEngine engine = IncrementalEngine::build(f.gg.graph, f.tree);
  engine.update_edge(0, 1, 3.0);
  EXPECT_DEATH({ (void)engine.distances(0); }, "apply");
}

}  // namespace
}  // namespace sepsp
