// Persistence round trips for trees and augmentations, plus engine
// revival from a loaded augmentation.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <sstream>

#include "core/builder_recursive.hpp"
#include "core/engine.hpp"
#include "core/serialize.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

TEST(Serialize, TreeRoundTrip) {
  Rng rng(1);
  const GeneratedGraph gg = make_grid({7, 7}, WeightModel::uniform(1, 9), rng);
  const Skeleton skel(gg.graph);
  const SeparatorTree tree =
      build_separator_tree(skel, make_grid_finder({7, 7}));
  std::stringstream ss;
  save_tree(ss, tree);
  const auto loaded = load_tree(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_nodes(), tree.num_nodes());
  EXPECT_EQ(loaded->height(), tree.height());
  EXPECT_EQ(loaded->validate(skel), std::nullopt);
  for (std::size_t id = 0; id < tree.num_nodes(); ++id) {
    EXPECT_EQ(loaded->node(id).vertices, tree.node(id).vertices);
    EXPECT_EQ(loaded->node(id).separator, tree.node(id).separator);
    EXPECT_EQ(loaded->node(id).boundary, tree.node(id).boundary);
    EXPECT_EQ(loaded->node(id).level, tree.node(id).level);
  }
}

TEST(Serialize, TreeRejectsGarbage) {
  {
    std::stringstream ss("not a tree at all");
    EXPECT_FALSE(load_tree(ss).has_value());
  }
  {
    std::stringstream ss;  // truncated: magic only
    serial_detail::write_pod(ss, serial_detail::kTreeMagic);
    EXPECT_FALSE(load_tree(ss).has_value());
  }
}

template <Semiring S>
void round_trip_augmentation() {
  Rng rng(2);
  const GeneratedGraph gg = make_grid({6, 6}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({6, 6}));
  const auto aug = build_augmentation_recursive<S>(gg.graph, tree);
  std::stringstream ss;
  save_augmentation<S>(ss, aug);
  const auto loaded = load_augmentation<S>(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->height, aug.height);
  EXPECT_EQ(loaded->ell, aug.ell);
  EXPECT_EQ(loaded->levels.level, aug.levels.level);
  ASSERT_EQ(loaded->shortcuts.size(), aug.shortcuts.size());
  for (std::size_t i = 0; i < aug.shortcuts.size(); ++i) {
    EXPECT_EQ(loaded->shortcuts[i].from, aug.shortcuts[i].from);
    EXPECT_EQ(loaded->shortcuts[i].to, aug.shortcuts[i].to);
    EXPECT_EQ(loaded->shortcuts[i].value, aug.shortcuts[i].value);
  }
}

TEST(Serialize, AugmentationRoundTripTropical) {
  round_trip_augmentation<TropicalD>();
}
TEST(Serialize, AugmentationRoundTripInteger) {
  round_trip_augmentation<TropicalI>();
}
TEST(Serialize, AugmentationRoundTripBoolean) {
  round_trip_augmentation<BooleanSR>();
}

TEST(Serialize, EngineRevivedFromLoadedAugmentation) {
  Rng rng(3);
  const GeneratedGraph gg =
      make_grid({8, 8}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({8, 8}));
  const auto original = SeparatorShortestPaths<>::build(gg.graph, tree);

  std::stringstream ss;
  save_augmentation<TropicalD>(ss, original.augmentation());
  auto loaded = load_augmentation<TropicalD>(ss);
  ASSERT_TRUE(loaded.has_value());
  const auto revived =
      SeparatorShortestPaths<>::from_augmentation(gg.graph,
                                                  std::move(*loaded));
  for (const Vertex src : {Vertex{0}, Vertex{33}, Vertex{63}}) {
    EXPECT_EQ(revived.distances(src).dist, original.distances(src).dist);
  }
}

// ---------------------------------------------------------------------
// Malformed-input fuzzing (ISSUE 9 satellite): loaders must fail closed
// — nullopt plus a reason — on every truncation prefix and on random
// byte flips, never crash or over-allocate. The v1/v2 byte-bounds
// hardening (remaining_bytes() checks in read_vec) is what keeps a
// corrupted element count from turning into a multi-GiB resize.

/// Every prefix of a short image, and a stride of prefixes of a long
/// one — truncation can land mid-header, mid-count, or mid-payload.
void fuzz_truncations(const std::string& bytes,
                      const std::function<bool(const std::string&)>& load) {
  const std::size_t stride = bytes.size() > 512 ? bytes.size() / 257 : 1;
  for (std::size_t keep = 0; keep + 1 < bytes.size(); keep += stride) {
    EXPECT_FALSE(load(bytes.substr(0, keep))) << "prefix of " << keep;
  }
}

/// Deterministic byte flips all over the image. A flip may survive
/// (e.g. in a weight payload) — the invariant under test is "returns,
/// no crash, sane allocation", not rejection.
void fuzz_flips(const std::string& bytes,
                const std::function<bool(const std::string&)>& load) {
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    std::string mutated = bytes;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<char>(1 + rng.next_below(255));
    (void)load(mutated);
  }
}

TEST(Serialize, TreeLoaderSurvivesFuzz) {
  Rng rng(5);
  const GeneratedGraph gg = make_grid({6, 6}, WeightModel::unit(), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({6, 6}));
  std::stringstream ss;
  save_tree(ss, tree);
  const std::string bytes = ss.str();
  const auto load = [](const std::string& b) {
    std::stringstream in(b);
    std::string reason;
    const bool ok = load_tree(in, &reason).has_value();
    if (!ok) {
      EXPECT_FALSE(reason.empty());
    }
    return ok;
  };
  ASSERT_TRUE(load(bytes));
  fuzz_truncations(bytes, load);
  fuzz_flips(bytes, load);
}

TEST(Serialize, AugmentationLoaderSurvivesFuzz) {
  Rng rng(6);
  const GeneratedGraph gg =
      make_grid({6, 6}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({6, 6}));
  const auto aug = build_augmentation_recursive<TropicalD>(gg.graph, tree);
  std::stringstream ss;
  save_augmentation<TropicalD>(ss, aug);
  const std::string bytes = ss.str();
  const auto load = [](const std::string& b) {
    std::stringstream in(b);
    std::string reason;
    const bool ok = load_augmentation<TropicalD>(in, &reason).has_value();
    if (!ok) {
      EXPECT_FALSE(reason.empty());
    }
    return ok;
  };
  ASSERT_TRUE(load(bytes));
  fuzz_truncations(bytes, load);
  fuzz_flips(bytes, load);
}

TEST(Serialize, HugeCountsDoNotAllocate) {
  // A v1 header whose element count claims 2^60 entries: the byte-bounds
  // check must reject it against the stream's actual size instead of
  // calling vector::resize(2^60).
  std::stringstream ss;
  Rng rng(7);
  const GeneratedGraph gg = make_grid({5, 5}, WeightModel::unit(), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({5, 5}));
  save_tree(ss, tree);
  std::string bytes = ss.str();
  // The first u64 after magic+version+num_vertices is num_nodes.
  const std::uint64_t huge = std::uint64_t{1} << 60;
  std::memcpy(bytes.data() + 16, &huge, sizeof huge);
  std::stringstream in(bytes);
  std::string reason;
  EXPECT_FALSE(load_tree(in, &reason).has_value());
  EXPECT_FALSE(reason.empty());
}

TEST(Serialize, AugmentationRejectsOutOfRangeShortcut) {
  Rng rng(4);
  const GeneratedGraph gg = make_grid({4, 4}, WeightModel::unit(), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({4, 4}));
  auto aug = build_augmentation_recursive<TropicalD>(gg.graph, tree);
  ASSERT_FALSE(aug.shortcuts.empty());
  aug.shortcuts[0].to = 999;  // corrupt
  std::stringstream ss;
  save_augmentation<TropicalD>(ss, aug);
  EXPECT_FALSE(load_augmentation<TropicalD>(ss).has_value());
}

}  // namespace
}  // namespace sepsp
