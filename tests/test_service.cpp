// The query-serving runtime (src/service/): coalescing, cache
// semantics, shedding, epoch swaps — single-threaded or lightly
// threaded determinism tests. The concurrency soak lives in
// test_service_stress.cpp.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <utility>
#include <vector>

#include "baseline/dijkstra.hpp"
#include "core/incremental.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"
#include "service/cache.hpp"
#include "service/service.hpp"

namespace sepsp {
namespace {

using service::CachedDistances;
using service::CachedStAnswer;
using service::DistanceCache;
using service::EdgeUpdate;
using service::QueryService;
using service::Reply;
using service::ReplyStatus;
using service::RequestKind;
using service::ServiceOptions;
using service::SingleSource;
using service::StCache;
using service::StDistance;
using service::StPath;

struct Fixture {
  GeneratedGraph gg;
  SeparatorTree tree;
};

Fixture make_grid_fixture(std::size_t side, std::uint64_t seed) {
  Rng rng(seed);
  Fixture f{make_grid({side, side}, WeightModel::uniform(1, 9), rng), {}};
  f.tree = build_separator_tree(Skeleton(f.gg.graph),
                                make_grid_finder({side, side}));
  return f;
}

void expect_matches_dijkstra(const std::vector<double>& got,
                             const Digraph& reference, Vertex source) {
  const DijkstraResult want = dijkstra(reference, source);
  ASSERT_EQ(got.size(), reference.num_vertices());
  for (Vertex v = 0; v < reference.num_vertices(); ++v) {
    if (std::isinf(want.dist[v])) {
      EXPECT_TRUE(std::isinf(got[v])) << v;
    } else {
      EXPECT_NEAR(got[v], want.dist[v], 1e-8) << v;
    }
  }
}

Digraph reweighted(const Digraph& g, const std::vector<EdgeUpdate>& updates) {
  GraphBuilder b(g.num_vertices());
  for (EdgeTriple e : g.edge_list()) {
    for (const EdgeUpdate& u : updates) {
      if (u.from == e.from && u.to == e.to) e.weight = u.weight;
    }
    b.add_edge(e.from, e.to, e.weight);
  }
  return std::move(b).build(/*dedup_min=*/false);
}

TEST(Service, ParityWithDijkstra) {
  const Fixture f = make_grid_fixture(9, 1);
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree));
  for (const Vertex s : {0u, 17u, 40u, 80u}) {
    const Reply r = svc.query(s);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.epoch, 0u);
    expect_matches_dijkstra(r.dist(), f.gg.graph, s);
  }
}

TEST(Service, CacheHitIsBitIdenticalAndShared) {
  const Fixture f = make_grid_fixture(8, 2);
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree));
  const Reply cold = svc.query(11);
  const Reply warm = svc.query(11);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  // Hit and miss share one immutable object — parity is structural,
  // not merely numeric.
  EXPECT_EQ(cold.value.get(), warm.value.get());
  EXPECT_EQ(std::memcmp(cold.dist().data(), warm.dist().data(),
                        cold.dist().size() * sizeof(double)),
            0);
  EXPECT_GE(svc.stats().cache_hits, 1u);
}

TEST(Service, CacheDisabledNeverHits) {
  const Fixture f = make_grid_fixture(8, 3);
  ServiceOptions opts;
  opts.cache_enabled = false;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);
  const Reply a = svc.query(5);
  const Reply b = svc.query(5);
  EXPECT_FALSE(a.cache_hit);
  EXPECT_FALSE(b.cache_hit);
  EXPECT_EQ(svc.stats().cache_hits, 0u);
  for (std::size_t v = 0; v < a.dist().size(); ++v) {
    EXPECT_EQ(a.dist()[v], b.dist()[v]) << v;  // still identical values
  }
}

TEST(Service, CoalescesQueuedRequestsIntoFullLaneGroups) {
  const Fixture f = make_grid_fixture(8, 4);
  ServiceOptions opts;
  opts.lanes = 4;
  opts.dispatchers = 0;  // queue everything; stop() drains
  opts.cache_enabled = false;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);
  std::vector<std::future<Reply>> futures;
  for (Vertex s = 0; s < 8; ++s) futures.push_back(svc.submit(s));
  svc.stop();
  for (Vertex s = 0; s < 8; ++s) {
    const Reply r = futures[s].get();
    ASSERT_TRUE(r.ok());
    expect_matches_dijkstra(r.dist(), f.gg.graph, s);
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.batches, 2u);  // 8 requests / 4 lanes
  EXPECT_EQ(stats.batch_lanes_used, 8u);
  EXPECT_DOUBLE_EQ(stats.batch_occupancy(), 1.0);
  EXPECT_EQ(stats.queue_peak, 8u);
}

TEST(Service, DeduplicatesRepeatedSourcesWithinAGroup) {
  const Fixture f = make_grid_fixture(8, 5);
  ServiceOptions opts;
  opts.lanes = 4;
  opts.dispatchers = 0;
  opts.cache_enabled = false;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);
  std::vector<std::future<Reply>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(svc.submit(7));
  svc.stop();
  Reply first = futures[0].get();
  ASSERT_TRUE(first.ok());
  for (int i = 1; i < 4; ++i) {
    const Reply r = futures[i].get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value.get(), first.value.get());  // one kernel run shared
  }
}

TEST(Service, ShedsOnOverloadAndDrainsAdmittedOnStop) {
  const Fixture f = make_grid_fixture(8, 6);
  ServiceOptions opts;
  opts.lanes = 4;
  opts.dispatchers = 0;
  opts.max_queue = 4;
  opts.cache_enabled = false;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);
  std::vector<std::future<Reply>> futures;
  for (Vertex s = 0; s < 6; ++s) futures.push_back(svc.submit(s));
  // The first 4 were admitted; 5 and 6 exceeded max_queue and must be
  // shed immediately (future already resolved, pre-stop).
  EXPECT_EQ(futures[4].get().status, ReplyStatus::kShed);
  EXPECT_EQ(futures[5].get().status, ReplyStatus::kShed);
  svc.stop();
  for (Vertex s = 0; s < 4; ++s) {
    const Reply r = futures[s].get();
    ASSERT_TRUE(r.ok()) << s;
    expect_matches_dijkstra(r.dist(), f.gg.graph, s);
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.submitted, 6u);
}

TEST(Service, RejectsSubmissionsAfterStop) {
  const Fixture f = make_grid_fixture(8, 7);
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree));
  svc.stop();
  const Reply r = svc.query(0);
  EXPECT_EQ(r.status, ReplyStatus::kStopped);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(svc.stats().stopped, 1u);
}

TEST(Service, FlushesPartialGroupAtDeadline) {
  const Fixture f = make_grid_fixture(8, 8);
  ServiceOptions opts;
  opts.lanes = 8;
  opts.max_delay_us = 500;
  opts.cache_enabled = false;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);
  // 3 requests never fill an 8-lane group; only the deadline flushes.
  std::vector<std::future<Reply>> futures;
  for (Vertex s = 0; s < 3; ++s) futures.push_back(svc.submit(s));
  for (auto& fut : futures) EXPECT_TRUE(fut.get().ok());
  const auto stats = svc.stats();
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.batch_lanes_used, 3u);
}

TEST(Service, EpochSwapServesNewWeightsAndKeepsOldRepliesAlive) {
  const Fixture f = make_grid_fixture(9, 9);
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree));
  const Vertex source = 0;
  const Reply before = svc.query(source);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.epoch, 0u);

  const std::vector<EdgeUpdate> updates{{0, 1, 0.125}, {1, 2, 0.125}};
  const std::uint64_t epoch = svc.apply_updates(updates);
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(svc.epoch(), 1u);

  const Reply after = svc.query(source);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.epoch, 1u);
  EXPECT_FALSE(after.cache_hit);  // epoch-0 entry is stale, not served
  expect_matches_dijkstra(after.dist(), reweighted(f.gg.graph, updates),
                          source);
  // The pre-swap reply is untouched — still the epoch-0 answer.
  expect_matches_dijkstra(before.dist(), f.gg.graph, source);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.epoch_swaps, 1u);
  EXPECT_GE(stats.cache_invalidations, 1u);
}

TEST(Service, EmptyUpdateBatchIsANoOp) {
  const Fixture f = make_grid_fixture(8, 10);
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree));
  EXPECT_EQ(svc.apply_updates({}), 0u);
  EXPECT_EQ(svc.stats().epoch_swaps, 0u);
}

TEST(Service, OldSnapshotStaysValidAcrossSwaps) {
  const Fixture f = make_grid_fixture(8, 11);
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree));
  const auto old_snapshot = svc.current_snapshot();
  const std::vector<EdgeUpdate> updates{{3, 4, 0.5}};
  svc.apply_updates(updates);
  // RCU contract: a holder of the superseded snapshot keeps getting
  // the old weighting's answers.
  EXPECT_EQ(old_snapshot.epoch, 0u);
  const auto result = old_snapshot.engine->distances(2);
  expect_matches_dijkstra(result.dist, f.gg.graph, 2);
}

TEST(Service, TinyCacheEvictsInsteadOfGrowing) {
  const Fixture f = make_grid_fixture(8, 12);
  ServiceOptions opts;
  // Room for roughly one 64-vertex distance vector in one shard.
  opts.cache_capacity_bytes = 64 * sizeof(double) + 256;
  opts.cache_shards = 1;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);
  for (Vertex s = 0; s < 6; ++s) EXPECT_TRUE(svc.query(s).ok());
  const auto stats = svc.stats();
  EXPECT_GE(stats.cache_evictions, 4u);
  EXPECT_LE(stats.cache_bytes, opts.cache_capacity_bytes);
  EXPECT_LE(stats.cache_entries, 1u);
}

TEST(Service, StatsLedgerBalances) {
  const Fixture f = make_grid_fixture(8, 13);
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree));
  for (Vertex s = 0; s < 5; ++s) EXPECT_TRUE(svc.query(s % 3).ok());
  svc.stop();
  const Reply late = svc.query(0);
  EXPECT_EQ(late.status, ReplyStatus::kStopped);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed + stats.stopped);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.completed);
}

TEST(ServiceOptionsTest, ValidationRejectsBadKnobs) {
  ServiceOptions lanes_bad;
  lanes_bad.lanes = 3;
  EXPECT_DEATH((void)lanes_bad.validated(), "lanes");
  ServiceOptions queue_bad;
  queue_bad.max_queue = 0;
  EXPECT_DEATH((void)queue_bad.validated(), "max_queue");
}

TEST(ServiceOptionsTest, ShardCountRoundsUpToPowerOfTwo) {
  ServiceOptions opts;
  opts.cache_shards = 5;
  EXPECT_EQ(opts.validated().cache_shards, 8u);
}

double walk_weight(const Digraph& g, const std::vector<Vertex>& path) {
  double total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    double w = 0;
    EXPECT_TRUE(g.find_arc(path[i], path[i + 1], &w))
        << path[i] << "->" << path[i + 1] << " is not an arc";
    total += w;
  }
  return total;
}

TEST(ServiceSt, StDistanceResolvesAtSubmitTimeAndMatchesDijkstra) {
  const Fixture f = make_grid_fixture(9, 20);
  ServiceOptions opts;
  opts.dispatchers = 0;  // nothing drains the queue ...
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);
  for (const auto [s, t] : {std::pair<Vertex, Vertex>{0, 80},
                            {17, 3},
                            {44, 44},
                            {80, 0}}) {
    std::future<Reply> fut = svc.submit(StDistance{s, t});
    // ... so a ready future proves submit-time resolution, no queue hop.
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const Reply r = fut.get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.kind, RequestKind::kStDistance);
    EXPECT_EQ(r.epoch, 0u);
    const double want = dijkstra(f.gg.graph, s).dist[t];
    EXPECT_NEAR(r.distance(), want, 1e-9) << s << "->" << t;
  }
  EXPECT_EQ(svc.stats().st_distance, 4u);
  EXPECT_EQ(svc.stats().queue_depth, 0u);
}

TEST(ServiceSt, StPathIsDijkstraExact) {
  const Fixture f = make_grid_fixture(8, 21);
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree));
  for (const auto [s, t] :
       {std::pair<Vertex, Vertex>{0, 63}, {9, 41}, {55, 2}}) {
    const Reply r = svc.query(StPath{s, t});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.kind, RequestKind::kStPath);
    const double want = dijkstra(f.gg.graph, s).dist[t];
    EXPECT_NEAR(r.distance(), want, 1e-9);
    const std::vector<Vertex>& path = r.path();
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), t);
    EXPECT_NEAR(walk_weight(f.gg.graph, path), want, 1e-9);
  }
}

TEST(ServiceSt, UnreachablePairReportsInfinityAndEmptyPath) {
  // Two-vertex graph with a single arc 0 -> 1: nothing reaches 0.
  GraphBuilder b(2);
  b.add_edge(0, 1, 2.5);
  const Digraph g = std::move(b).build();
  const SeparatorTree tree = build_separator_tree(Skeleton(g), make_bfs_finder());
  QueryService svc(IncrementalEngine::build(g, tree));
  const Reply d = svc.query(StDistance{1, 0});
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(std::isinf(d.distance()));
  const Reply p = svc.query(StPath{1, 0});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(std::isinf(p.distance()));
  EXPECT_TRUE(p.path().empty());
}

TEST(ServiceSt, StCacheHitIsBitIdenticalAndShared) {
  const Fixture f = make_grid_fixture(8, 22);
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree));
  const Reply cold = svc.query(StPath{5, 60});
  const Reply warm = svc.query(StPath{5, 60});
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  // Hit and miss share one immutable object — parity is structural.
  EXPECT_EQ(cold.st.get(), warm.st.get());
  EXPECT_EQ(std::memcmp(&cold.st->distance, &warm.st->distance,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(cold.path().data(), warm.path().data(),
                        cold.path().size() * sizeof(Vertex)),
            0);
  EXPECT_EQ(svc.stats().st_cache_hits, 1u);
}

TEST(ServiceSt, StPathUpgradesDistanceOnlyCacheEntry) {
  const Fixture f = make_grid_fixture(8, 23);
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree));
  const Reply scalar = svc.query(StDistance{3, 48});
  ASSERT_TRUE(scalar.ok());
  EXPECT_FALSE(scalar.cache_hit);
  // A path request must not serve the path-less entry: it recomputes
  // and upgrades the slot in place.
  const Reply path = svc.query(StPath{3, 48});
  ASSERT_TRUE(path.ok());
  EXPECT_FALSE(path.cache_hit);
  EXPECT_EQ(path.path().front(), 3u);
  EXPECT_DOUBLE_EQ(path.distance(), scalar.distance());
  // Both kinds now hit the upgraded entry — the very same object.
  const Reply scalar_again = svc.query(StDistance{3, 48});
  const Reply path_again = svc.query(StPath{3, 48});
  EXPECT_TRUE(scalar_again.cache_hit);
  EXPECT_TRUE(path_again.cache_hit);
  EXPECT_EQ(scalar_again.st.get(), path.st.get());
  EXPECT_EQ(path_again.st.get(), path.st.get());
}

TEST(ServiceSt, EpochSwapInvalidatesStCacheAndServesNewWeights) {
  const Fixture f = make_grid_fixture(9, 24);
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree));
  const Reply before = svc.query(StPath{0, 80});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.epoch, 0u);

  const std::vector<EdgeUpdate> updates{{0, 1, 0.125}, {1, 2, 0.125}};
  ASSERT_EQ(svc.apply_updates(updates), 1u);

  const Reply after = svc.query(StPath{0, 80});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.epoch, 1u);
  EXPECT_FALSE(after.cache_hit);  // epoch-0 entry swept, not served
  const Digraph shadow = reweighted(f.gg.graph, updates);
  EXPECT_NEAR(after.distance(), dijkstra(shadow, 0).dist[80], 1e-9);
  EXPECT_NEAR(walk_weight(shadow, after.path()), after.distance(), 1e-9);
  // The pre-swap reply still holds the epoch-0 answer.
  EXPECT_NEAR(before.distance(), dijkstra(f.gg.graph, 0).dist[80], 1e-9);
  EXPECT_GE(svc.stats().st_cache_invalidations, 1u);
  EXPECT_GE(svc.stats().label_builds, 2u);  // constructor + swap
}

TEST(ServiceSt, MixedKindLedgerBalances) {
  const Fixture f = make_grid_fixture(8, 25);
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree));
  EXPECT_TRUE(svc.query(SingleSource{4}).ok());
  EXPECT_TRUE(svc.query(4).ok());  // bare-vertex alias, cache hit
  EXPECT_TRUE(svc.query(StDistance{1, 9}).ok());
  EXPECT_TRUE(svc.query(StPath{1, 9}).ok());
  EXPECT_TRUE(svc.query(StPath{1, 9}).ok());
  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.single_source, 2u);
  EXPECT_EQ(stats.st_distance, 1u);
  EXPECT_EQ(stats.st_path, 2u);
  EXPECT_EQ(stats.single_source + stats.st_distance + stats.st_path,
            stats.submitted);
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed + stats.stopped);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses + stats.st_cache_hits +
                stats.st_cache_misses,
            stats.completed);
}

TEST(ServiceSt, StoppedServiceRejectsStRequests) {
  const Fixture f = make_grid_fixture(8, 26);
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree));
  svc.stop();
  const Reply r = svc.query(StDistance{0, 1});
  EXPECT_EQ(r.status, ReplyStatus::kStopped);
  EXPECT_EQ(r.kind, RequestKind::kStDistance);
}

TEST(ServiceStDeathTest, StRequestWithoutPointToPointAborts) {
  const Fixture f = make_grid_fixture(8, 27);
  ServiceOptions opts;
  opts.point_to_point = false;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);
  EXPECT_TRUE(svc.query(7).ok());  // single-source still serves
  EXPECT_DEATH((void)svc.query(StDistance{0, 1}), "point_to_point");
}

TEST(StCacheTest, EpochInvalidationAndPairKeying) {
  StCache cache({/*capacity_bytes=*/4096, /*shards=*/1});
  const auto value = [](double d) {
    return std::make_shared<const CachedStAnswer>(
        CachedStAnswer{d, false, {}});
  };
  cache.insert(0, 1, 2, value(5.0));
  cache.insert(0, 2, 1, value(7.0));  // reversed pair is a distinct key
  ASSERT_NE(cache.lookup(0, 1, 2), nullptr);
  EXPECT_DOUBLE_EQ(cache.lookup(0, 1, 2)->distance, 5.0);
  EXPECT_DOUBLE_EQ(cache.lookup(0, 2, 1)->distance, 7.0);
  // Stale-on-contact at another epoch.
  EXPECT_EQ(cache.lookup(1, 1, 2), nullptr);
  EXPECT_EQ(cache.lookup(0, 1, 2), nullptr);
  // Sweep: the remaining epoch-0 entry dies, a fresh one survives.
  cache.insert(1, 3, 4, value(1.0));
  EXPECT_EQ(cache.invalidate_older_than(1), 1u);
  EXPECT_NE(cache.lookup(1, 3, 4), nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(DistanceCacheTest, LruEvictionAndEpochInvalidation) {
  DistanceCache cache({/*capacity_bytes=*/3 * (4 * sizeof(double) + 128),
                       /*shards=*/1});
  const auto value = [] {
    return std::make_shared<const CachedDistances>(
        CachedDistances{{1.0, 2.0, 3.0, 4.0}, false});
  };
  cache.insert(0, 1, value());
  cache.insert(0, 2, value());
  cache.insert(0, 3, value());
  EXPECT_NE(cache.lookup(0, 1), nullptr);  // refresh 1's recency
  cache.insert(0, 4, value());             // evicts 2 (LRU tail)
  EXPECT_EQ(cache.lookup(0, 2), nullptr);
  EXPECT_NE(cache.lookup(0, 1), nullptr);
  // A lookup at another epoch kills the entry on contact.
  EXPECT_EQ(cache.lookup(1, 1), nullptr);
  EXPECT_EQ(cache.lookup(0, 1), nullptr);
  // Sweep removes everything older than the new epoch (3 and 4 remain
  // at epoch 0; the fresh entry at epoch 1 survives).
  cache.insert(1, 5, value());
  EXPECT_EQ(cache.invalidate_older_than(1), 2u);
  EXPECT_NE(cache.lookup(1, 5), nullptr);
}

}  // namespace
}  // namespace sepsp
