// Concurrency soak for the query-serving runtime, designed to run
// under ThreadSanitizer (see .github/workflows/ci.yml): concurrent
// submitters race epoch swaps, a tiny cache churns, and the service is
// stopped under load. Correctness bar: zero lost responses (every
// future resolves) and zero stale-epoch responses (every kOk reply's
// distances equal the Dijkstra oracle of exactly the epoch it names).
//
// Weights are integer-valued doubles throughout, so path sums are
// exact regardless of association and oracle comparisons can demand
// bitwise equality — a reply computed against a half-swapped weighting
// cannot sneak past as "close enough".
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <future>
#include <limits>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "baseline/dijkstra.hpp"
#include "core/incremental.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"
#include "service/service.hpp"

namespace sepsp {
namespace {

using service::EdgeUpdate;
using service::QueryService;
using service::Reply;
using service::ReplyStatus;
using service::RequestKind;
using service::ServiceOptions;
using service::StDistance;
using service::StPath;

struct Fixture {
  GeneratedGraph gg;
  SeparatorTree tree;
};

Fixture make_fixture(std::size_t side, std::uint64_t seed) {
  Rng rng(seed);
  Fixture f{make_grid({side, side}, WeightModel::uniform(1, 9), rng), {}};
  // Floor the generated weights to integers (see file comment): exact
  // path sums make the Dijkstra-vs-kernel comparison bitwise.
  GraphBuilder b(f.gg.graph.num_vertices());
  for (const EdgeTriple& e : f.gg.graph.edge_list()) {
    b.add_edge(e.from, e.to, std::floor(e.weight));
  }
  f.gg.graph = std::move(b).build(/*dedup_min=*/false);
  f.tree = build_separator_tree(Skeleton(f.gg.graph),
                                make_grid_finder({side, side}));
  return f;
}

/// Per-epoch ground truth for a fixed source pool. The updater thread
/// registers each epoch's oracle BEFORE the service starts serving that
/// epoch, so a reader holding a kOk reply can always resolve its epoch.
class EpochOracle {
 public:
  EpochOracle(const Digraph& g, std::vector<Vertex> pool)
      : g_(&g), pool_(std::move(pool)) {
    weights_.reserve(g.edge_list().size());
    for (const EdgeTriple& e : g.edge_list()) weights_.push_back(e.weight);
    publish(0);
  }

  const std::vector<Vertex>& pool() const { return pool_; }

  /// Applies `u` to the shadow weights and publishes the oracle for
  /// `epoch`. Call before QueryService::apply_updates.
  void advance(const EdgeUpdate& u, std::uint64_t epoch) {
    const auto edges = g_->edge_list();
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].from == u.from && edges[i].to == u.to) {
        weights_[i] = u.weight;
      }
    }
    publish(epoch);
  }

  /// Batch variant: applies every update, then publishes one oracle for
  /// `epoch` — mirroring the all-or-nothing epoch semantics of
  /// QueryService::apply_updates on a multi-edge batch.
  void advance(const std::vector<EdgeUpdate>& batch, std::uint64_t epoch) {
    const auto edges = g_->edge_list();
    for (const EdgeUpdate& u : batch) {
      for (std::size_t i = 0; i < edges.size(); ++i) {
        if (edges[i].from == u.from && edges[i].to == u.to) {
          weights_[i] = u.weight;
        }
      }
    }
    publish(epoch);
  }

  /// Exact expected distances for pool[i] at `epoch`; fails the test if
  /// the epoch was never published (a stale- or future-epoch reply).
  const std::vector<double>* expected(std::uint64_t epoch,
                                      std::size_t pool_index) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = by_epoch_.find(epoch);
    if (it == by_epoch_.end()) return nullptr;
    return &it->second[pool_index];
  }

 private:
  void publish(std::uint64_t epoch) {
    GraphBuilder b(g_->num_vertices());
    const auto edges = g_->edge_list();
    for (std::size_t i = 0; i < edges.size(); ++i) {
      b.add_edge(edges[i].from, edges[i].to, weights_[i]);
    }
    const Digraph shadow = std::move(b).build(/*dedup_min=*/false);
    std::vector<std::vector<double>> dists;
    dists.reserve(pool_.size());
    for (const Vertex s : pool_) dists.push_back(dijkstra(shadow, s).dist);
    std::lock_guard<std::mutex> lock(mutex_);
    by_epoch_[epoch] = std::move(dists);
    weights_by_epoch_[epoch] = weights_;
  }

 public:
  /// Sum of `epoch`'s weights along `path` (min over parallel arcs).
  /// Infinity if the epoch was never published or some consecutive pair
  /// is not an arc — either way the caller's distance comparison fails.
  double path_weight(std::uint64_t epoch,
                     const std::vector<Vertex>& path) const {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> w;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = weights_by_epoch_.find(epoch);
      if (it == weights_by_epoch_.end()) return kInf;
      w = it->second;
    }
    const auto edges = g_->edge_list();
    double total = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      double best = kInf;
      for (std::size_t j = 0; j < edges.size(); ++j) {
        if (edges[j].from == path[i] && edges[j].to == path[i + 1]) {
          best = std::min(best, w[j]);
        }
      }
      if (best == kInf) return kInf;
      total += best;
    }
    return total;
  }

 private:
  const Digraph* g_;
  std::vector<Vertex> pool_;
  std::vector<double> weights_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::vector<std::vector<double>>> by_epoch_;
  std::map<std::uint64_t, std::vector<double>> weights_by_epoch_;
};

/// Bitwise equality — integer weights make the oracle exact.
bool bit_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(ServiceStress, ConcurrentSubmittersMatchOracle) {
  const Fixture f = make_fixture(9, 1);
  ServiceOptions opts;
  opts.lanes = 4;
  opts.max_delay_us = 100;
  opts.dispatchers = 2;
  opts.point_to_point = false;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);
  const EpochOracle oracle(f.gg.graph, {0, 11, 27, 40, 66, 80});

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 150;
  std::atomic<std::uint64_t> checked{0};
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      Rng pick(50 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t idx = pick.next_below(oracle.pool().size());
        const Reply r = svc.query(oracle.pool()[idx]);
        ASSERT_TRUE(r.ok());
        const auto* want = oracle.expected(r.epoch, idx);
        ASSERT_NE(want, nullptr) << "unpublished epoch " << r.epoch;
        EXPECT_TRUE(bit_equal(r.dist(), *want));
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(checked.load(), kThreads * kPerThread);  // zero lost
  EXPECT_EQ(svc.stats().completed, kThreads * kPerThread);
}

TEST(ServiceStress, SwapsUnderLoadNeverServeStaleEpochs) {
  const Fixture f = make_fixture(9, 2);
  ServiceOptions opts;
  opts.lanes = 4;
  opts.max_delay_us = 100;
  opts.dispatchers = 2;
  // Tiny cache: constant churn between hits, evictions, and
  // invalidations while epochs move underneath.
  opts.cache_capacity_bytes = 2 * (81 * sizeof(double) + 128);
  opts.cache_shards = 1;
  opts.point_to_point = false;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);
  EpochOracle oracle(f.gg.graph, {0, 13, 40, 67, 80});

  // Readers do a fixed amount of verified work; the updater keeps
  // swapping epochs underneath them for the whole time (it stops only
  // after every reader finished, so each run interleaves by schedule).
  std::atomic<std::uint64_t> checked{0};
  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kPerThread = 120;
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      Rng pick(80 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t idx = pick.next_below(oracle.pool().size());
        const Reply r = svc.query(oracle.pool()[idx]);
        ASSERT_TRUE(r.ok());
        const auto* want = oracle.expected(r.epoch, idx);
        ASSERT_NE(want, nullptr) << "unpublished epoch " << r.epoch;
        EXPECT_TRUE(bit_equal(r.dist(), *want)) << "epoch " << r.epoch;
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Updater: integer weights only; oracle published BEFORE the swap.
  std::atomic<bool> readers_done{false};
  std::uint64_t epochs_applied = 0;
  std::thread updater([&] {
    const auto edges = f.gg.graph.edge_list();
    Rng pick(7);
    while (!readers_done.load(std::memory_order_acquire)) {
      const EdgeTriple& edge = edges[pick.next_below(edges.size())];
      const EdgeUpdate u{edge.from, edge.to,
                         static_cast<double>(1 + pick.next_below(9))};
      const std::uint64_t e = epochs_applied + 1;
      oracle.advance(u, e);
      ASSERT_EQ(svc.apply_updates(std::vector<EdgeUpdate>{u}), e);
      epochs_applied = e;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  for (auto& t : readers) t.join();
  readers_done.store(true, std::memory_order_release);
  updater.join();

  EXPECT_EQ(checked.load(), kThreads * kPerThread);  // zero lost
  EXPECT_GT(epochs_applied, 0u);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.epoch_swaps, epochs_applied);
  EXPECT_EQ(stats.epoch, epochs_applied);
  EXPECT_EQ(stats.completed, checked.load());
}

TEST(ServiceStress, BatchedUpdatesRaceBatchedQueryGroups) {
  // The proportional-swap path under maximum contention: multi-edge
  // update batches (parallel dirty recompute + structural snapshot
  // fork) race groups of in-flight futures whose lanes read the
  // copy-on-write slabs of whichever epoch they captured. Every reply
  // must still be bitwise-exact for the epoch it names.
  const Fixture f = make_fixture(9, 4);
  ServiceOptions opts;
  opts.lanes = 4;
  opts.max_delay_us = 100;
  opts.dispatchers = 2;
  opts.cache_capacity_bytes = 2 * (81 * sizeof(double) + 128);
  opts.cache_shards = 1;
  opts.point_to_point = false;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);
  EpochOracle oracle(f.gg.graph, {0, 17, 36, 59, 80});

  std::atomic<std::uint64_t> checked{0};
  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kGroups = 40;
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      for (std::size_t g = 0; g < kGroups; ++g) {
        // One future per pool source, submitted before any resolves:
        // the whole group is in flight at once and typically coalesces
        // into shared lane batches that straddle epoch swaps.
        std::vector<std::future<Reply>> group;
        group.reserve(oracle.pool().size());
        for (const Vertex s : oracle.pool()) group.push_back(svc.submit(s));
        for (std::size_t idx = 0; idx < group.size(); ++idx) {
          const Reply r = group[idx].get();
          ASSERT_TRUE(r.ok());
          const auto* want = oracle.expected(r.epoch, idx);
          ASSERT_NE(want, nullptr) << "unpublished epoch " << r.epoch;
          EXPECT_TRUE(bit_equal(r.dist(), *want)) << "epoch " << r.epoch;
          checked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::atomic<bool> readers_done{false};
  std::uint64_t epochs_applied = 0;
  std::thread updater([&] {
    const auto edges = f.gg.graph.edge_list();
    Rng pick(9);
    std::vector<EdgeUpdate> batch(3);
    while (!readers_done.load(std::memory_order_acquire)) {
      for (EdgeUpdate& u : batch) {
        const EdgeTriple& edge = edges[pick.next_below(edges.size())];
        u = {edge.from, edge.to, static_cast<double>(1 + pick.next_below(9))};
      }
      const std::uint64_t e = epochs_applied + 1;
      oracle.advance(batch, e);
      ASSERT_EQ(svc.apply_updates(batch), e);
      epochs_applied = e;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  for (auto& t : readers) t.join();
  readers_done.store(true, std::memory_order_release);
  updater.join();

  EXPECT_EQ(checked.load(), kThreads * kGroups * oracle.pool().size());
  EXPECT_GT(epochs_applied, 0u);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.epoch_swaps, epochs_applied);
  EXPECT_EQ(stats.epoch, epochs_applied);
}

TEST(ServiceStress, MixedKindsRaceSwapsNeverServeStaleEpochs) {
  // The ISSUE-7 acceptance soak: SingleSource, StDistance, and StPath
  // traffic race apply_updates() (which rebuilds labels + routing per
  // epoch) and both caches churn. Every kOk reply — vector, scalar, or
  // path — must be exact for the epoch it names; integer weights make
  // the comparisons bitwise.
  const Fixture f = make_fixture(9, 5);
  ServiceOptions opts;
  opts.lanes = 4;
  opts.max_delay_us = 100;
  opts.dispatchers = 2;
  opts.cache_capacity_bytes = 2 * (81 * sizeof(double) + 128);
  opts.cache_shards = 1;
  // A handful of st entries: hits, evictions, and epoch sweeps all
  // happen under the race.
  opts.st_cache_capacity_bytes = 4 * 256;
  opts.st_cache_shards = 1;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);
  EpochOracle oracle(f.gg.graph, {0, 13, 40, 67, 80});
  const std::vector<Vertex> targets{5, 22, 44, 71, 80};

  std::atomic<std::uint64_t> checked{0};
  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kPerThread = 120;
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      Rng pick(140 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t idx = pick.next_below(oracle.pool().size());
        const Vertex s = oracle.pool()[idx];
        const Vertex target = targets[pick.next_below(targets.size())];
        switch (i % 3) {
          case 0: {
            const Reply r = svc.query(s);
            ASSERT_TRUE(r.ok());
            const auto* want = oracle.expected(r.epoch, idx);
            ASSERT_NE(want, nullptr) << "unpublished epoch " << r.epoch;
            EXPECT_TRUE(bit_equal(r.dist(), *want)) << "epoch " << r.epoch;
            break;
          }
          case 1: {
            const Reply r = svc.query(StDistance{s, target});
            ASSERT_TRUE(r.ok());
            ASSERT_EQ(r.kind, RequestKind::kStDistance);
            const auto* want = oracle.expected(r.epoch, idx);
            ASSERT_NE(want, nullptr) << "unpublished epoch " << r.epoch;
            // Integer weights: the label merge's sum is bitwise equal
            // to the oracle's — a stale-epoch scalar cannot pass.
            EXPECT_EQ(r.distance(), (*want)[target])
                << s << "->" << target << " epoch " << r.epoch;
            break;
          }
          case 2: {
            const Reply r = svc.query(StPath{s, target});
            ASSERT_TRUE(r.ok());
            ASSERT_EQ(r.kind, RequestKind::kStPath);
            const auto* want = oracle.expected(r.epoch, idx);
            ASSERT_NE(want, nullptr) << "unpublished epoch " << r.epoch;
            EXPECT_EQ(r.distance(), (*want)[target]) << "epoch " << r.epoch;
            const std::vector<Vertex>& path = r.path();
            ASSERT_FALSE(path.empty());
            EXPECT_EQ(path.front(), s);
            EXPECT_EQ(path.back(), target);
            // The path must realize its scalar under the weights of
            // exactly the reply's epoch.
            EXPECT_EQ(oracle.path_weight(r.epoch, path), r.distance())
                << "epoch " << r.epoch;
            break;
          }
        }
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::atomic<bool> readers_done{false};
  std::uint64_t epochs_applied = 0;
  std::thread updater([&] {
    const auto edges = f.gg.graph.edge_list();
    Rng pick(11);
    while (!readers_done.load(std::memory_order_acquire)) {
      const EdgeTriple& edge = edges[pick.next_below(edges.size())];
      const EdgeUpdate u{edge.from, edge.to,
                         static_cast<double>(1 + pick.next_below(9))};
      const std::uint64_t e = epochs_applied + 1;
      oracle.advance(u, e);
      ASSERT_EQ(svc.apply_updates(std::vector<EdgeUpdate>{u}), e);
      epochs_applied = e;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  for (auto& t : readers) t.join();
  readers_done.store(true, std::memory_order_release);
  updater.join();

  EXPECT_EQ(checked.load(), kThreads * kPerThread);  // zero lost
  EXPECT_GT(epochs_applied, 0u);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.epoch_swaps, epochs_applied);
  EXPECT_EQ(stats.completed, checked.load());
  EXPECT_GT(stats.st_distance, 0u);
  EXPECT_GT(stats.st_path, 0u);
  EXPECT_EQ(stats.single_source + stats.st_distance + stats.st_path,
            stats.submitted);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses + stats.st_cache_hits +
                stats.st_cache_misses,
            stats.completed);
}

TEST(ServiceStress, StopUnderLoadResolvesEveryFuture) {
  const Fixture f = make_fixture(8, 3);
  ServiceOptions opts;
  opts.lanes = 4;
  opts.max_delay_us = 50;
  opts.dispatchers = 2;
  opts.max_queue = 64;
  opts.point_to_point = false;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);

  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> resolved{0};
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 100;
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      Rng pick(30 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const auto source =
            static_cast<Vertex>(pick.next_below(f.gg.graph.num_vertices()));
        // get() must return for every submission — ok, shed, or
        // stopped; a hung or broken future fails the test by timeout
        // or thrown std::future_error.
        const Reply r = svc.submit(source).get();
        EXPECT_TRUE(r.status == ReplyStatus::kOk ||
                    r.status == ReplyStatus::kShed ||
                    r.status == ReplyStatus::kStopped);
        resolved.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  go.store(true, std::memory_order_release);
  svc.stop();  // races the submitters by design
  for (auto& t : submitters) t.join();
  EXPECT_EQ(resolved.load(), kThreads * kPerThread);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.submitted, stats.completed + stats.shed + stats.stopped);
}

}  // namespace
}  // namespace sepsp
