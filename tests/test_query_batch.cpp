// Source-batched kernel correctness: BatchedLeveledQuery must reproduce
// LeveledQuery::run lane for lane — distances (bit-identical: lanes
// share edge order and arithmetic with the scalar kernel), per-lane
// edges_scanned/phases accounting, per-lane negative-cycle flags,
// ragged last blocks, and multi-source seeding as a degenerate lane.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/query_batch.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

template <Semiring S>
void expect_result_eq(const QueryResult<S>& got, const QueryResult<S>& want,
                      const std::string& what) {
  EXPECT_EQ(got.dist, want.dist) << what << ": distances differ";
  EXPECT_EQ(got.negative_cycle, want.negative_cycle) << what;
  EXPECT_EQ(got.edges_scanned, want.edges_scanned) << what;
  EXPECT_EQ(got.phases, want.phases) << what;
}

template <typename S>
class BatchParity : public ::testing::Test {
 public:
  struct Instance {
    GeneratedGraph gg;
    SeparatorTree tree;
  };

  static Instance make_instance() {
    Rng rng(91);
    Instance inst;
    inst.gg = make_grid({9, 9}, WeightModel::uniform(1, 9), rng);
    inst.tree = build_separator_tree(Skeleton(inst.gg.graph),
                                     make_grid_finder({9, 9}));
    return inst;
  }
};

using AllSemirings =
    ::testing::Types<TropicalD, TropicalI, BooleanSR, BottleneckSR>;
TYPED_TEST_SUITE(BatchParity, AllSemirings);

TYPED_TEST(BatchParity, FullAndRaggedBlocksMatchScalarRuns) {
  using S = TypeParam;
  const auto inst = TestFixture::make_instance();
  const auto engine =
      SeparatorShortestPaths<S>::build(inst.gg.graph, inst.tree);
  const LeveledQuery<S>& scalar = engine.query_engine();
  const BatchedLeveledQuery<S, 4> batched(scalar);

  // A full block and a ragged one (3 of 4 lanes seeded).
  const std::vector<Vertex> full{0, 13, 40, 80};
  const std::vector<Vertex> ragged{7, 7, 44};  // duplicate sources allowed
  for (const auto& sources : {full, ragged}) {
    const auto block = batched.run_block(sources);
    ASSERT_EQ(block.size(), sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      expect_result_eq(block[i], scalar.run(sources[i]),
                       "lane " + std::to_string(i));
    }
  }
}

TYPED_TEST(BatchParity, SeededLanesMatchRunMulti) {
  using S = TypeParam;
  const auto inst = TestFixture::make_instance();
  const auto engine =
      SeparatorShortestPaths<S>::build(inst.gg.graph, inst.tree);
  const LeveledQuery<S>& scalar = engine.query_engine();
  const BatchedLeveledQuery<S, 4> batched(scalar);

  // Lane 1 is a single-source degenerate lane; the others are genuine
  // multi-source seedings.
  const std::vector<std::vector<Vertex>> lanes{{3, 41, 66}, {12}, {0, 80}};
  const auto block = batched.run_seeded(lanes);
  ASSERT_EQ(block.size(), lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    expect_result_eq(block[i], scalar.run_multi(lanes[i]),
                     "seeded lane " + std::to_string(i));
  }
}

TYPED_TEST(BatchParity, EngineBatchMatchesPerSourcePath) {
  using S = TypeParam;
  const auto inst = TestFixture::make_instance();
  const auto engine =
      SeparatorShortestPaths<S>::build(inst.gg.graph, inst.tree);
  // 81 sources with kBatchLanes = 8 exercises a ragged last block.
  std::vector<Vertex> sources(inst.gg.graph.num_vertices());
  for (Vertex v = 0; v < sources.size(); ++v) sources[v] = v;
  const auto batched = engine.distances_batch(sources);
  const auto persource = engine.distances_batch(sources, {.force_per_source = true});
  ASSERT_EQ(batched.size(), persource.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    expect_result_eq(batched[i], persource[i],
                     "source " + std::to_string(sources[i]));
  }
}

TEST(BatchQuery, NegativeCycleFlagsArePerLane) {
  // A negative triangle in one component; a clean component beside it.
  // Lanes whose source reaches the cycle must flag it, the others not.
  GraphBuilder b(7);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 0, 1.0);
  b.add_edge(2, 3, 1.0);  // component {2,3,4}: negative triangle
  b.add_edge(3, 4, 1.0);
  b.add_edge(4, 2, -5.0);
  b.add_edge(5, 6, 2.0);
  b.add_edge(6, 2, 1.0);  // 5 and 6 reach the cycle
  const Digraph g = std::move(b).build();
  const SeparatorTree tree =
      build_separator_tree(Skeleton(g), make_bfs_finder());
  const auto engine = SeparatorShortestPaths<>::build(g, tree);
  const BatchedLeveledQuery<TropicalD, 8> batched(engine.query_engine());

  const std::vector<Vertex> sources{0, 2, 5, 1, 3, 6};
  const auto block = batched.run_block(sources);
  const std::vector<bool> want{false, true, true, false, true, true};
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(block[i].negative_cycle, want[i]) << "source " << sources[i];
    expect_result_eq(block[i], engine.query_engine().run(sources[i]),
                     "source " + std::to_string(sources[i]));
  }
}

TEST(BatchQuery, WideLanesHandleShortBlocks) {
  // Fewer sources than lanes: the unseeded lanes must neither corrupt
  // the seeded ones nor appear in the output.
  Rng rng(5);
  const GeneratedGraph gg = make_grid({6, 6}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({6, 6}));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const BatchedLeveledQuery<TropicalD, 16> batched(engine.query_engine());
  const std::vector<Vertex> sources{11, 29};
  const auto block = batched.run_block(sources);
  ASSERT_EQ(block.size(), 2u);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    expect_result_eq(block[i], engine.query_engine().run(sources[i]),
                     "source " + std::to_string(sources[i]));
  }
}

TEST(BatchQuery, EmptySourceListYieldsEmptyBatch) {
  Rng rng(6);
  const GeneratedGraph gg = make_grid({4, 4}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({4, 4}));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  EXPECT_TRUE(engine.distances_batch({}).empty());
}

TEST(BatchQuery, NegativeWeightsMatchScalarExactly) {
  // Mixed-sign weights drive many relaxation rounds; lane trajectories
  // must still be bit-identical to the scalar kernel's.
  Rng rng(12);
  const GeneratedGraph gg = make_grid({8, 8}, WeightModel::mixed_sign(6.0), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({8, 8}));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const BatchedLeveledQuery<TropicalD, 4> batched(engine.query_engine());
  const std::vector<Vertex> sources{0, 21, 42, 63};
  const auto block = batched.run_block(sources);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    expect_result_eq(block[i], engine.query_engine().run(sources[i]),
                     "source " + std::to_string(sources[i]));
  }
}

TEST(BatchQuery, AllPairsUsesBatchedKernel) {
  Rng rng(13);
  const GeneratedGraph gg = make_grid({5, 5}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({5, 5}));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const auto all = engine.all_pairs();
  ASSERT_EQ(all.size(), gg.graph.num_vertices());
  for (Vertex s = 0; s < gg.graph.num_vertices(); ++s) {
    EXPECT_EQ(all[s].dist, engine.distances(s).dist) << "source " << s;
  }
}

}  // namespace
}  // namespace sepsp
