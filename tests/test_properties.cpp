// Consolidated property sweep (TEST_P): for every combination of
// graph family x weight model x builder x leaf size, check the full
// invariant chain end to end:
//   1. the decomposition validates,
//   2. shortcut endpoints carry defined levels; values never undercut
//      true distances,
//   3. measured shortcut radius respects Theorem 3.1's bound,
//   4. scheduled, unscheduled and parallel queries all equal ground
//      truth (Dijkstra / Bellman–Ford),
//   5. the Remark-4.4 compact builder yields the same distances.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/bellman_ford.hpp"
#include "baseline/dijkstra.hpp"
#include "core/builder_compact.hpp"
#include "core/engine.hpp"
#include "core/labeling.hpp"
#include "core/query.hpp"
#include "graph/generators.hpp"
#include "separator/cycle_separator.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

struct Sweep {
  std::string family;
  std::string weights;
  BuilderKind builder = BuilderKind::kRecursive;
  std::size_t leaf_size = 4;
};

std::string sweep_name(const ::testing::TestParamInfo<Sweep>& info) {
  std::string name = info.param.family + "_" + info.param.weights + "_" +
                     (info.param.builder == BuilderKind::kRecursive ? "rec"
                                                                    : "dbl") +
                     "_leaf" + std::to_string(info.param.leaf_size);
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

class PropertySweep : public ::testing::TestWithParam<Sweep> {
 public:
  void SetUp() override {
    Rng rng(777);
    const Sweep& p = GetParam();
    WeightModel wm = WeightModel::uniform(1, 10);
    if (p.weights == "unit") wm = WeightModel::unit();
    if (p.weights == "mixed") wm = WeightModel::mixed_sign(7.0);
    negative_ = p.weights == "mixed";

    SeparatorFinder finder;
    if (p.family == "grid2d") {
      gg_ = make_grid({10, 10}, wm, rng);
      finder = make_grid_finder({10, 10});
    } else if (p.family == "grid3d") {
      gg_ = make_grid({4, 5, 4}, wm, rng);
      finder = make_grid_finder({4, 5, 4});
    } else if (p.family == "tree") {
      gg_ = make_random_tree(150, wm, rng);
      finder = make_tree_finder();
    } else if (p.family == "mesh-geo") {
      gg_ = make_triangulated_grid(8, 11, wm, rng);
      finder = make_geometric_finder(gg_.coords);
    } else if (p.family == "mesh-cycle") {
      gg_ = make_triangulated_grid(8, 11, wm, rng);
      finder = make_cycle_finder(gg_.coords);
    } else if (p.family == "unitdisk") {
      gg_ = make_unit_disk(250, 7.0, wm, rng);
      finder = make_geometric_finder(gg_.coords);
    } else if (p.family == "sparse") {
      gg_ = make_random_digraph(120, 360, wm, rng);
      finder = make_bfs_finder();
    } else if (p.family == "ktree") {
      gg_ = make_partial_ktree(140, 3, 0.5, wm, rng);
      finder = make_bfs_finder();
    } else {
      FAIL() << "unknown family " << p.family;
    }
    skel_ = Skeleton(gg_.graph);
    DecompositionOptions opts;
    opts.leaf_size = p.leaf_size;
    tree_ = build_separator_tree(skel_, finder, opts);
  }

  std::vector<double> ground_truth(Vertex source) const {
    if (negative_) {
      const BellmanFordResult bf = bellman_ford(gg_.graph, source);
      EXPECT_FALSE(bf.negative_cycle);
      return bf.dist;
    }
    return dijkstra(gg_.graph, source).dist;
  }

  std::vector<Vertex> sample_sources(std::size_t count) const {
    std::vector<Vertex> out;
    Rng pick(99);
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(
          static_cast<Vertex>(pick.next_below(gg_.graph.num_vertices())));
    }
    return out;
  }

  GeneratedGraph gg_;
  Skeleton skel_;
  SeparatorTree tree_;
  bool negative_ = false;
};

TEST_P(PropertySweep, DecompositionValidates) {
  const auto err = tree_.validate(skel_);
  EXPECT_EQ(err, std::nullopt) << (err ? *err : "");
  // Leaves may exceed leaf_size only where no separator exists (embedded
  // cliques); allow modest slack for the random families.
  EXPECT_LE(tree_.stats().max_leaf_vertices,
            std::max<std::size_t>(GetParam().leaf_size, 24));
}

TEST_P(PropertySweep, ShortcutInvariants) {
  const auto aug =
      build_augmentation_recursive<TropicalD>(gg_.graph, tree_);
  // Endpoint levels defined; sampled value domination.
  Rng pick(5);
  std::vector<double> truth;
  Vertex truth_source = kInvalidVertex;
  std::size_t checked = 0;
  for (const auto& e : aug.shortcuts) {
    ASSERT_TRUE(aug.levels.defined(e.from));
    ASSERT_TRUE(aug.levels.defined(e.to));
    if (checked < 200 && pick.next_bool(0.1)) {
      if (e.from != truth_source) {
        truth = ground_truth(e.from);
        truth_source = e.from;
      }
      EXPECT_GE(e.value, truth[e.to] - 1e-8);
      ++checked;
    }
  }
}

TEST_P(PropertySweep, Theorem31RadiusBound) {
  const auto aug =
      build_augmentation_recursive<TropicalD>(gg_.graph, tree_);
  for (const Vertex src : sample_sources(2)) {
    EXPECT_LE(measure_shortcut_radius(gg_.graph, aug, src),
              aug.diameter_bound());
  }
}

TEST_P(PropertySweep, AllQueryModesMatchGroundTruth) {
  typename SeparatorShortestPaths<>::Options opts;
  opts.build.builder = GetParam().builder;
  const auto engine =
      SeparatorShortestPaths<>::build(gg_.graph, tree_, opts);
  for (const Vertex src : sample_sources(3)) {
    const std::vector<double> want = ground_truth(src);
    const auto scheduled = engine.query_engine().run(src);
    const auto naive = engine.query_engine().run_unscheduled(src);
    const auto parallel = engine.query_engine().run_parallel(src);
    ASSERT_FALSE(scheduled.negative_cycle);
    for (Vertex v = 0; v < gg_.graph.num_vertices(); ++v) {
      if (std::isinf(want[v])) {
        EXPECT_TRUE(std::isinf(scheduled.dist[v])) << v;
        EXPECT_TRUE(std::isinf(naive.dist[v])) << v;
        EXPECT_TRUE(std::isinf(parallel.dist[v])) << v;
      } else {
        EXPECT_NEAR(scheduled.dist[v], want[v], 1e-8) << v;
        EXPECT_NEAR(naive.dist[v], want[v], 1e-8) << v;
        EXPECT_NEAR(parallel.dist[v], want[v], 1e-8) << v;
      }
    }
  }
}

TEST_P(PropertySweep, CompactBuilderMatches) {
  const auto aug = build_augmentation_compact<TropicalD>(gg_.graph, tree_);
  const auto engine =
      SeparatorShortestPaths<>::from_augmentation(gg_.graph, aug);
  const Vertex src = sample_sources(1)[0];
  const std::vector<double> want = ground_truth(src);
  const auto got = engine.distances(src);
  for (Vertex v = 0; v < gg_.graph.num_vertices(); ++v) {
    if (std::isinf(want[v])) {
      EXPECT_TRUE(std::isinf(got.dist[v])) << v;
    } else {
      EXPECT_NEAR(got.dist[v], want[v], 1e-8) << v;
    }
  }
}

TEST_P(PropertySweep, HubLabelingSpotCheck) {
  const auto labels = HubLabeling<TropicalD>::build(gg_.graph, tree_);
  Rng pick(17);
  std::vector<double> truth;
  Vertex truth_source = kInvalidVertex;
  for (int trial = 0; trial < 40; ++trial) {
    const auto u =
        static_cast<Vertex>(pick.next_below(gg_.graph.num_vertices()));
    const auto v =
        static_cast<Vertex>(pick.next_below(gg_.graph.num_vertices()));
    if (u != truth_source) {
      truth = ground_truth(u);
      truth_source = u;
    }
    const double got = labels.value(u, v);
    if (std::isinf(truth[v])) {
      EXPECT_TRUE(std::isinf(got)) << u << "->" << v;
    } else {
      EXPECT_NEAR(got, truth[v], 1e-7) << u << "->" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PropertySweep,
    ::testing::Values(
        Sweep{"grid2d", "uniform", BuilderKind::kRecursive, 4},
        Sweep{"grid2d", "mixed", BuilderKind::kDoubling, 4},
        Sweep{"grid2d", "unit", BuilderKind::kRecursive, 2},
        Sweep{"grid2d", "uniform", BuilderKind::kRecursive, 16},
        Sweep{"grid3d", "uniform", BuilderKind::kRecursive, 4},
        Sweep{"grid3d", "mixed", BuilderKind::kRecursive, 8},
        Sweep{"tree", "uniform", BuilderKind::kDoubling, 4},
        Sweep{"tree", "mixed", BuilderKind::kRecursive, 2},
        Sweep{"mesh-geo", "uniform", BuilderKind::kRecursive, 4},
        Sweep{"mesh-geo", "mixed", BuilderKind::kRecursive, 4},
        Sweep{"mesh-cycle", "uniform", BuilderKind::kRecursive, 4},
        Sweep{"mesh-cycle", "unit", BuilderKind::kDoubling, 8},
        Sweep{"unitdisk", "uniform", BuilderKind::kRecursive, 4},
        Sweep{"unitdisk", "mixed", BuilderKind::kRecursive, 4},
        Sweep{"sparse", "uniform", BuilderKind::kRecursive, 4},
        Sweep{"sparse", "unit", BuilderKind::kDoubling, 2},
        Sweep{"ktree", "uniform", BuilderKind::kRecursive, 4},
        Sweep{"ktree", "mixed", BuilderKind::kRecursive, 8}),
    sweep_name);

}  // namespace
}  // namespace sepsp
