// Approximate serving through QueryService: approx requests resolve
// against the snapshot's (1 + eps)-approximate engine, live in their
// own (epoch, mode)-keyed caches with bit-identical hit/miss parity,
// carry the certified error bound, and stay epoch-consistent while
// racing apply_updates() (the stress half runs under ThreadSanitizer —
// see .github/workflows/ci.yml).
//
// Exact-mode weights are integer-valued doubles so exact replies can be
// compared bitwise against a per-epoch Dijkstra oracle; approximate
// replies are checked against the same oracle through their replied
// error bound: dist <= approx <= (1 + error_bound) * dist.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "baseline/dijkstra.hpp"
#include "core/incremental.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"
#include "service/service.hpp"

namespace sepsp {
namespace {

using service::EdgeUpdate;
using service::QueryService;
using service::Reply;
using service::ServiceOptions;
using service::ServiceStats;
using service::SingleSource;
using service::StDistance;

struct Fixture {
  GeneratedGraph gg;
  SeparatorTree tree;
};

Fixture make_fixture(std::size_t side, std::uint64_t seed) {
  Rng rng(seed);
  Fixture f{make_grid({side, side}, WeightModel::uniform(1, 9), rng), {}};
  // Integer weights: exact replies compare bitwise against Dijkstra.
  GraphBuilder b(f.gg.graph.num_vertices());
  for (const EdgeTriple& e : f.gg.graph.edge_list()) {
    b.add_edge(e.from, e.to, std::floor(e.weight));
  }
  f.gg.graph = std::move(b).build(/*dedup_min=*/false);
  f.tree = build_separator_tree(Skeleton(f.gg.graph),
                                make_grid_finder({side, side}));
  return f;
}

bool bit_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// dist <= got <= (1 + bound) * dist against the exact oracle `want`.
void expect_within_bound(const std::vector<double>& got,
                         const std::vector<double>& want, double bound) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    if (std::isinf(want[v])) {
      EXPECT_TRUE(std::isinf(got[v])) << "v=" << v;
      continue;
    }
    EXPECT_GE(got[v], want[v] - 1e-9) << "v=" << v;
    EXPECT_LE(got[v], (1 + bound) * want[v] + 1e-9) << "v=" << v;
  }
}

/// completed must equal the sum of the four disjoint hit/miss ledgers.
void expect_ledger_balance(const ServiceStats& s) {
  EXPECT_EQ(s.completed, s.cache_hits + s.cache_misses + s.st_cache_hits +
                             s.st_cache_misses + s.approx_cache_hits +
                             s.approx_cache_misses + s.approx_st_hits +
                             s.approx_st_misses);
}

TEST(ApproxService, ServesBothModesWithErrorTags) {
  const Fixture f = make_fixture(9, 1);
  ServiceOptions opts;
  opts.lanes = 4;
  opts.dispatchers = 1;
  opts.point_to_point = false;
  opts.approx.enabled = true;
  opts.approx.eps = 0.3;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);

  for (const Vertex src : {Vertex{0}, Vertex{40}, Vertex{80}}) {
    const std::vector<double> want = dijkstra(f.gg.graph, src).dist;

    const Reply exact = svc.query(SingleSource{src});
    ASSERT_TRUE(exact.ok());
    EXPECT_EQ(exact.error_bound, 0.0);
    EXPECT_TRUE(bit_equal(exact.dist(), want));

    const Reply approx = svc.query(SingleSource{src, /*approx=*/true});
    ASSERT_TRUE(approx.ok());
    EXPECT_GT(approx.error_bound, 0.0);
    EXPECT_LE(approx.error_bound, opts.approx.eps + 1e-12);
    expect_within_bound(approx.dist(), want, approx.error_bound);
  }
  expect_ledger_balance(svc.stats());
  EXPECT_EQ(svc.stats().approx_requests, 3u);
}

TEST(ApproxService, CacheParityPerEpochAndMode) {
  const Fixture f = make_fixture(8, 2);
  ServiceOptions opts;
  opts.dispatchers = 1;
  opts.point_to_point = false;
  opts.approx.enabled = true;
  opts.approx.eps = 0.2;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);

  // Same source, both modes: four requests, one kernel run per mode,
  // and the repeat in each mode hands out the *same* immutable object.
  const Reply e1 = svc.query(SingleSource{17});
  const Reply a1 = svc.query(SingleSource{17, /*approx=*/true});
  const Reply e2 = svc.query(SingleSource{17});
  const Reply a2 = svc.query(SingleSource{17, /*approx=*/true});
  EXPECT_TRUE(e2.cache_hit);
  EXPECT_TRUE(a2.cache_hit);
  EXPECT_EQ(e1.value, e2.value);  // bit-identical by construction
  EXPECT_EQ(a1.value, a2.value);
  EXPECT_NE(e1.value, a1.value);  // modes never share an answer

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.approx_cache_hits, 1u);
  EXPECT_EQ(s.approx_cache_misses, 1u);
  expect_ledger_balance(s);
}

TEST(ApproxService, StDistanceWorksWithoutPointToPoint) {
  const Fixture f = make_fixture(8, 3);
  ServiceOptions opts;
  opts.dispatchers = 1;
  opts.point_to_point = false;  // approx st must not need labels
  opts.approx.enabled = true;
  opts.approx.eps = 0.25;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);

  const std::vector<double> want = dijkstra(f.gg.graph, 5).dist;
  const Reply r = svc.query(StDistance{5, 60, /*approx=*/true});
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.error_bound, 0.0);
  EXPECT_GE(r.distance(), want[60] - 1e-9);
  EXPECT_LE(r.distance(), (1 + r.error_bound) * want[60] + 1e-9);

  // The repeat is an st-cache hit; the miss also populated the approx
  // distance cache, so a SingleSource follow-up for the same source
  // hits too.
  const Reply again = svc.query(StDistance{5, 60, /*approx=*/true});
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.distance(), r.distance());
  const Reply sweep = svc.query(SingleSource{5, /*approx=*/true});
  EXPECT_TRUE(sweep.cache_hit);
  EXPECT_EQ(sweep.dist()[60], r.distance());

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.approx_st_hits, 1u);
  EXPECT_EQ(s.approx_st_misses, 1u);
  expect_ledger_balance(s);
}

TEST(ApproxService, ApplyUpdatesRebuildsTheApproxEngine) {
  const Fixture f = make_fixture(8, 4);
  ServiceOptions opts;
  opts.dispatchers = 1;
  opts.point_to_point = false;
  opts.approx.enabled = true;
  opts.approx.eps = 0.3;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);
  EXPECT_EQ(svc.stats().approx_builds, 1u);  // the constructor's

  const Reply before = svc.query(SingleSource{0, /*approx=*/true});

  // Reweight one arc heavily and check the new epoch's approximate
  // answers track the new exact oracle.
  const EdgeTriple e0 = f.gg.graph.edge_list()[0];
  const std::vector<EdgeUpdate> batch = {{e0.from, e0.to, e0.weight + 50.0}};
  const std::uint64_t epoch = svc.apply_updates(batch);
  EXPECT_GT(epoch, before.epoch);
  EXPECT_EQ(svc.stats().approx_builds, 2u);

  GraphBuilder b(f.gg.graph.num_vertices());
  for (const EdgeTriple& e : f.gg.graph.edge_list()) {
    const bool bumped = e.from == e0.from && e.to == e0.to;
    b.add_edge(e.from, e.to, bumped ? e0.weight + 50.0 : e.weight);
  }
  const Digraph reweighted = std::move(b).build(/*dedup_min=*/false);

  const Reply after = svc.query(SingleSource{0, /*approx=*/true});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.epoch, epoch);
  EXPECT_FALSE(after.cache_hit);  // the swap invalidated the approx cache
  expect_within_bound(after.dist(), dijkstra(reweighted, 0).dist,
                      after.error_bound);
}

TEST(ApproxServiceDeath, RejectsApproxTrafficWhenDisabled) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Fixture f = make_fixture(5, 5);
  ServiceOptions opts;
  opts.dispatchers = 0;
  opts.point_to_point = false;
  EXPECT_DEATH(
      {
        QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);
        (void)svc.submit(SingleSource{0, /*approx=*/true});
      },
      "approx");
  EXPECT_DEATH(
      {
        QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);
        (void)svc.submit(StDistance{0, 1, /*approx=*/true});
      },
      "approx");
}

/// Per-epoch exact ground truth for a fixed source pool (same pattern
/// as test_service_stress.cpp): the updater publishes each epoch's
/// oracle before the service can serve it.
class EpochOracle {
 public:
  EpochOracle(const Digraph& g, std::vector<Vertex> pool)
      : g_(&g), pool_(std::move(pool)) {
    weights_.reserve(g.edge_list().size());
    for (const EdgeTriple& e : g.edge_list()) weights_.push_back(e.weight);
    publish(0);
  }

  const std::vector<Vertex>& pool() const { return pool_; }

  void advance(const EdgeUpdate& u, std::uint64_t epoch) {
    const auto edges = g_->edge_list();
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].from == u.from && edges[i].to == u.to) {
        weights_[i] = u.weight;
      }
    }
    publish(epoch);
  }

  const std::vector<double>* expected(std::uint64_t epoch,
                                      std::size_t pool_index) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = by_epoch_.find(epoch);
    if (it == by_epoch_.end()) return nullptr;
    return &it->second[pool_index];
  }

 private:
  void publish(std::uint64_t epoch) {
    GraphBuilder b(g_->num_vertices());
    const auto edges = g_->edge_list();
    for (std::size_t i = 0; i < edges.size(); ++i) {
      b.add_edge(edges[i].from, edges[i].to, weights_[i]);
    }
    const Digraph shadow = std::move(b).build(/*dedup_min=*/false);
    std::vector<std::vector<double>> dists;
    dists.reserve(pool_.size());
    for (const Vertex s : pool_) dists.push_back(dijkstra(shadow, s).dist);
    std::lock_guard<std::mutex> lock(mutex_);
    by_epoch_[epoch] = std::move(dists);
  }

  const Digraph* g_;
  std::vector<Vertex> pool_;
  std::vector<double> weights_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::vector<std::vector<double>>> by_epoch_;
};

TEST(ApproxServiceStress, MixedModeQueriesRaceSwaps) {
  const Fixture f = make_fixture(9, 6);
  ServiceOptions opts;
  opts.lanes = 4;
  opts.max_delay_us = 100;
  opts.dispatchers = 2;
  opts.point_to_point = false;
  opts.approx.enabled = true;
  opts.approx.eps = 0.25;
  // Tiny caches: constant churn between hits, evictions, and
  // invalidations while epochs move underneath.
  opts.cache_capacity_bytes = 2 * (81 * sizeof(double) + 128);
  opts.cache_shards = 1;
  QueryService svc(IncrementalEngine::build(f.gg.graph, f.tree), opts);
  EpochOracle oracle(f.gg.graph, {0, 13, 40, 67, 80});

  std::atomic<bool> stop_updates{false};
  std::thread updater([&] {
    Rng pick(99);
    std::uint64_t epoch = 0;
    while (!stop_updates.load(std::memory_order_acquire)) {
      const auto edges = f.gg.graph.edge_list();
      const EdgeTriple& e = edges[pick.next_below(edges.size())];
      const EdgeUpdate u{e.from, e.to,
                         std::floor(pick.next_double(1, 9))};
      oracle.advance(u, epoch + 1);  // oracle first, then the service
      epoch = svc.apply_updates({&u, 1});
    }
  });

  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kPerThread = 80;
  std::atomic<std::uint64_t> checked{0};
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      Rng pick(70 + t);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t idx = pick.next_below(oracle.pool().size());
        const Vertex src = oracle.pool()[idx];
        const bool approx = pick.next_bool(0.5);
        const Reply r = svc.query(SingleSource{src, approx});
        ASSERT_TRUE(r.ok());
        const auto* want = oracle.expected(r.epoch, idx);
        ASSERT_NE(want, nullptr) << "unpublished epoch " << r.epoch;
        if (approx) {
          EXPECT_GT(r.error_bound, 0.0);
          EXPECT_LE(r.error_bound, opts.approx.eps + 1e-12);
          expect_within_bound(r.dist(), *want, r.error_bound);
        } else {
          EXPECT_EQ(r.error_bound, 0.0);
          EXPECT_TRUE(bit_equal(r.dist(), *want));
        }
        // A sprinkle of approximate st traffic through the same caches.
        if (i % 8 == 0) {
          const Reply st = svc.query(StDistance{src, 44, /*approx=*/true});
          ASSERT_TRUE(st.ok());
          if (const auto* w = oracle.expected(st.epoch, idx)) {
            EXPECT_GE(st.distance(), (*w)[44] - 1e-9);
            EXPECT_LE(st.distance(),
                      (1 + st.error_bound) * (*w)[44] + 1e-9);
          }
        }
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : readers) t.join();
  stop_updates.store(true, std::memory_order_release);
  updater.join();

  EXPECT_EQ(checked.load(), kThreads * kPerThread);  // zero lost
  expect_ledger_balance(svc.stats());
}

}  // namespace
}  // namespace sepsp
