// Section 6: hammock-structured graphs and the q-face pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/dijkstra.hpp"
#include "baseline/bellman_ford.hpp"
#include "graph/algorithms.hpp"
#include "planar/hammock.hpp"
#include "planar/qface.hpp"

namespace sepsp {
namespace {

TEST(Hammock, RingStructure) {
  Rng rng(1);
  const HammockGraph hg =
      make_hammock_ring(8, 10, WeightModel::uniform(1, 9), rng);
  EXPECT_EQ(hg.num_hammocks(), 8u);
  EXPECT_EQ(hg.graph.num_vertices(), 2u * 10u * 8u);
  EXPECT_TRUE(is_connected(Skeleton(hg.graph)));
  EXPECT_EQ(hg.attachment_vertices().size(), 32u);
  // Every vertex belongs to exactly one hammock; attachments are members.
  for (const Hammock& h : hg.hammocks) {
    for (const Vertex a : h.attachments) {
      EXPECT_TRUE(std::binary_search(h.vertices.begin(), h.vertices.end(), a));
    }
  }
}

TEST(Hammock, CrossEdgesOnlyBetweenAttachments) {
  Rng rng(2);
  const HammockGraph hg =
      make_hammock_ring(6, 7, WeightModel::uniform(1, 5), rng);
  const auto attach = hg.attachment_vertices();
  auto is_attachment = [&](Vertex v) {
    return std::binary_search(attach.begin(), attach.end(), v);
  };
  for (const EdgeTriple& e : hg.graph.edge_list()) {
    if (hg.hammock_of[e.from] != hg.hammock_of[e.to]) {
      EXPECT_TRUE(is_attachment(e.from));
      EXPECT_TRUE(is_attachment(e.to));
    }
  }
}

TEST(Hammock, HammocksAreOuterplanarLadders) {
  Rng rng(3);
  const HammockGraph hg =
      make_hammock_ring(5, 9, WeightModel::uniform(1, 5), rng);
  for (const Hammock& h : hg.hammocks) {
    const Digraph::Induced sub = hg.graph.induced(h.vertices);
    const Skeleton s(sub.graph);
    // Ladder with r rungs: 2r vertices, 3r - 2 undirected edges.
    EXPECT_EQ(s.num_vertices(), 18u);
    EXPECT_EQ(s.num_edges(), 25u);
    EXPECT_TRUE(is_connected(s));
  }
}

TEST(QFace, ReducedGraphIsOrderQ) {
  Rng rng(4);
  const HammockGraph hg =
      make_hammock_ring(10, 20, WeightModel::uniform(1, 9), rng);
  const QFacePipeline p = QFacePipeline::build(hg);
  EXPECT_EQ(p.reduced_vertices(), 40u);  // 4 per hammock
  EXPECT_LE(p.reduced_edges(), 10u * 12u + 4u * 10u);
}

TEST(QFace, DistancesMatchDijkstraOnWholeGraph) {
  Rng rng(5);
  const HammockGraph hg =
      make_hammock_ring(7, 8, WeightModel::uniform(1, 9), rng);
  const QFacePipeline p = QFacePipeline::build(hg);
  Rng pick(6);
  for (int trial = 0; trial < 4; ++trial) {
    const auto source =
        static_cast<Vertex>(pick.next_below(hg.graph.num_vertices()));
    const std::vector<double> got = p.distances(source);
    const DijkstraResult want = dijkstra(hg.graph, source);
    for (Vertex v = 0; v < hg.graph.num_vertices(); ++v) {
      if (std::isinf(want.dist[v])) {
        EXPECT_TRUE(std::isinf(got[v]));
      } else {
        EXPECT_NEAR(got[v], want.dist[v], 1e-8)
            << "source " << source << " target " << v;
      }
    }
  }
}

TEST(QFace, NegativeWeightsViaPotentials) {
  Rng rng(7);
  const HammockGraph hg =
      make_hammock_ring(6, 6, WeightModel::mixed_sign(6.0), rng);
  const QFacePipeline p = QFacePipeline::build(hg);
  const std::vector<double> got = p.distances(0);
  const BellmanFordResult want = bellman_ford(hg.graph, 0);
  ASSERT_FALSE(want.negative_cycle);
  for (Vertex v = 0; v < hg.graph.num_vertices(); ++v) {
    EXPECT_NEAR(got[v], want.dist[v], 1e-8) << v;
  }
}

TEST(QFace, PointToPointQueries) {
  Rng rng(8);
  const HammockGraph hg =
      make_hammock_ring(5, 6, WeightModel::uniform(1, 9), rng);
  const QFacePipeline p = QFacePipeline::build(hg);
  const DijkstraResult want = dijkstra(hg.graph, 3);
  EXPECT_NEAR(p.distance(3, 40), want.dist[40], 1e-8);
  EXPECT_NEAR(p.distance(3, 3), 0.0, 1e-12);
}

TEST(QFace, BothBuildersWork) {
  Rng rng(9);
  const HammockGraph hg =
      make_hammock_ring(5, 5, WeightModel::uniform(1, 9), rng);
  const QFacePipeline a = QFacePipeline::build(hg, BuilderKind::kRecursive);
  const QFacePipeline b = QFacePipeline::build(hg, BuilderKind::kDoubling);
  const auto da = a.distances(10);
  const auto db = b.distances(10);
  for (Vertex v = 0; v < hg.graph.num_vertices(); ++v) {
    EXPECT_NEAR(da[v], db[v], 1e-9);
  }
}

}  // namespace
}  // namespace sepsp
