// Cross-module integration tests at moderate scale: the full pipeline
// (generate -> decompose -> augment -> query -> extract trees) on every
// family at once, plus cost-accounting sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/dijkstra.hpp"
#include "baseline/johnson.hpp"
#include "core/engine.hpp"
#include "core/path_tree.hpp"
#include "graph/generators.hpp"
#include "pram/cost_model.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

TEST(Integration, LargeGridManySources) {
  Rng rng(1);
  const std::vector<std::size_t> dims = {24, 24};
  const GeneratedGraph gg = make_grid(dims, WeightModel::uniform(1, 10), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder(dims));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);

  std::vector<Vertex> sources;
  Rng pick(2);
  for (int i = 0; i < 12; ++i) {
    sources.push_back(
        static_cast<Vertex>(pick.next_below(gg.graph.num_vertices())));
  }
  const auto batch = engine.distances_batch(sources);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const DijkstraResult want = dijkstra(gg.graph, sources[i]);
    double max_err = 0;
    for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
      max_err = std::max(max_err, std::fabs(batch[i].dist[v] - want.dist[v]));
    }
    EXPECT_LT(max_err, 1e-8) << "source " << sources[i];
  }
}

TEST(Integration, MixedSign3DGridFullPipeline) {
  Rng rng(3);
  const std::vector<std::size_t> dims = {6, 6, 6};
  const GeneratedGraph gg = make_grid(dims, WeightModel::mixed_sign(9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder(dims));
  ASSERT_EQ(tree.validate(Skeleton(gg.graph)), std::nullopt);

  typename SeparatorShortestPaths<>::Options opts;
  opts.build.builder = BuilderKind::kDoubling;
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree, opts);
  const auto johnson = Johnson::build(gg.graph);
  ASSERT_TRUE(johnson.has_value());

  const Vertex source = 111;
  const auto got = engine.distances(source);
  ASSERT_FALSE(got.negative_cycle);
  const auto want = johnson->distances(source);
  for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
    EXPECT_NEAR(got.dist[v], want.dist[v], 1e-8);
  }
  // Shortest-path tree extraction works on negative weights too.
  const PathTree pt = extract_path_tree(gg.graph, source, got.dist);
  const auto far = static_cast<Vertex>(gg.graph.num_vertices() - 1);
  EXPECT_NEAR(tree_path_weight(gg.graph, pt, far), got.dist[far], 1e-6);
}

TEST(Integration, CostMeterGrowsWithWork) {
  Rng rng(4);
  const std::vector<std::size_t> dims = {12, 12};
  const GeneratedGraph gg = make_grid(dims, WeightModel::uniform(1, 5), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder(dims));

  const pram::Cost before = pram::CostMeter::snapshot();
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const pram::Cost after_build = pram::CostMeter::snapshot();
  EXPECT_GT(after_build.work, before.work);
  EXPECT_EQ(engine.augmentation().build_cost.work,
            after_build.work - before.work);
  EXPECT_GT(engine.augmentation().critical_depth, 0u);

  (void)engine.distances(0);
  const pram::Cost after_query = pram::CostMeter::snapshot();
  EXPECT_GT(after_query.work, after_build.work);
}

TEST(Integration, AllPairsOnSmallGraphIsSymmetricallyConsistent) {
  Rng rng(5);
  const GeneratedGraph gg = make_grid({5, 5}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({5, 5}));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const auto apsp = engine.all_pairs();
  ASSERT_EQ(apsp.size(), 25u);
  // Triangle inequality across the all-pairs table.
  for (Vertex a = 0; a < 25; ++a) {
    for (Vertex b = 0; b < 25; ++b) {
      for (Vertex c = 0; c < 25; c += 7) {
        EXPECT_LE(apsp[a].dist[b],
                  apsp[a].dist[c] + apsp[c].dist[b] + 1e-9);
      }
    }
  }
}

TEST(Integration, EngineWorksWhenLeafSizeVaries) {
  Rng rng(6);
  const std::vector<std::size_t> dims = {10, 10};
  const GeneratedGraph gg = make_grid(dims, WeightModel::uniform(1, 9), rng);
  const Skeleton skel(gg.graph);
  const DijkstraResult want = dijkstra(gg.graph, 42);
  for (const std::size_t leaf_size : {2u, 6u, 25u}) {
    DecompositionOptions dopts;
    dopts.leaf_size = leaf_size;
    const SeparatorTree tree =
        build_separator_tree(skel, make_grid_finder(dims), dopts);
    const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
    const auto got = engine.distances(42);
    for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
      EXPECT_NEAR(got.dist[v], want.dist[v], 1e-8)
          << "leaf_size " << leaf_size << " v " << v;
    }
  }
}

TEST(Integration, WrongTreeSizeIsRejected) {
  Rng rng(7);
  const GeneratedGraph a = make_grid({4, 4}, WeightModel::unit(), rng);
  const GeneratedGraph b = make_grid({5, 5}, WeightModel::unit(), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(a.graph), make_grid_finder({4, 4}));
  EXPECT_DEATH(
      { (void)SeparatorShortestPaths<>::build(b.graph, tree); }, "check");
}

}  // namespace
}  // namespace sepsp
