// Separator decomposition tests: every finder on every matching family,
// with the full invariant validator, plus the fallback chain on
// adversarial graphs (cliques, stars, disconnected graphs).
#include <gtest/gtest.h>

#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "separator/decomposition.hpp"
#include "separator/finders.hpp"
#include "separator/treewidth_separator.hpp"
#include "core/engine.hpp"
#include "baseline/dijkstra.hpp"
#include <cmath>

namespace sepsp {
namespace {

void expect_valid(const SeparatorTree& tree, const Skeleton& skel) {
  const auto err = tree.validate(skel);
  EXPECT_EQ(err, std::nullopt) << (err ? *err : "");
}

TEST(Decomposition, GridFinderOn2DGrid) {
  Rng rng(1);
  const std::vector<std::size_t> dims = {16, 16};
  const GeneratedGraph gg = make_grid(dims, WeightModel::unit(), rng);
  const Skeleton skel(gg.graph);
  const SeparatorTree tree = build_separator_tree(skel, make_grid_finder(dims));
  expect_valid(tree, skel);
  const auto s = tree.stats();
  EXPECT_LE(s.max_separator, 16u);      // a grid slice
  EXPECT_LE(s.height, 12u);             // logarithmic
  EXPECT_LE(s.max_leaf_vertices, 4u);   // default leaf size
}

TEST(Decomposition, GridFinderOn3DGrid) {
  Rng rng(2);
  const std::vector<std::size_t> dims = {6, 6, 6};
  const GeneratedGraph gg = make_grid(dims, WeightModel::unit(), rng);
  const Skeleton skel(gg.graph);
  const SeparatorTree tree = build_separator_tree(skel, make_grid_finder(dims));
  expect_valid(tree, skel);
  EXPECT_LE(tree.stats().max_separator, 36u);  // a 6x6 plane
}

TEST(Decomposition, TreeFinderGivesSingletonSeparators) {
  Rng rng(3);
  const GeneratedGraph gg = make_random_tree(300, WeightModel::unit(), rng);
  const Skeleton skel(gg.graph);
  const SeparatorTree tree = build_separator_tree(skel, make_tree_finder());
  expect_valid(tree, skel);
  const auto s = tree.stats();
  EXPECT_EQ(s.max_separator, 1u);
  EXPECT_LE(s.height, 2 * 20u);  // centroid halving -> O(log n) levels
}

TEST(Decomposition, GeometricFinderOnTriangulatedGrid) {
  Rng rng(4);
  const GeneratedGraph gg =
      make_triangulated_grid(15, 15, WeightModel::unit(), rng);
  const Skeleton skel(gg.graph);
  const SeparatorTree tree =
      build_separator_tree(skel, make_geometric_finder(gg.coords));
  expect_valid(tree, skel);
  // A planar mesh should get small separators (O(sqrt n) up to constants).
  EXPECT_LE(tree.stats().max_separator, 45u);
}

TEST(Decomposition, BfsFinderOnRandomGraph) {
  Rng rng(5);
  const GeneratedGraph gg =
      make_random_digraph(200, 600, WeightModel::unit(), rng);
  const Skeleton skel(gg.graph);
  const SeparatorTree tree = build_separator_tree(skel, make_bfs_finder());
  expect_valid(tree, skel);
}

TEST(Decomposition, NullFinderFallbackChainStillValid) {
  Rng rng(6);
  const GeneratedGraph gg = make_grid({10, 10}, WeightModel::unit(), rng);
  const Skeleton skel(gg.graph);
  const SeparatorTree tree = build_separator_tree(skel, make_null_finder());
  expect_valid(tree, skel);
}

TEST(Decomposition, CompleteGraphBecomesOversizedLeafOrPeels) {
  Rng rng(7);
  const GeneratedGraph gg = make_complete(9, WeightModel::unit(), rng);
  const Skeleton skel(gg.graph);
  const SeparatorTree tree = build_separator_tree(skel, make_bfs_finder());
  expect_valid(tree, skel);
  // K_9 has no separator: the whole graph must end up in one leaf.
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.stats().max_leaf_vertices, 9u);
}

TEST(Decomposition, StarGraphSeparatesAtCenter) {
  GraphBuilder b(21);
  for (Vertex leaf = 1; leaf <= 20; ++leaf) b.add_bidirectional(0, leaf, 1.0);
  const Digraph g = std::move(b).build();
  const Skeleton skel(g);
  const SeparatorTree tree = build_separator_tree(skel, make_tree_finder());
  expect_valid(tree, skel);
  EXPECT_EQ(tree.root().separator, std::vector<Vertex>{0});
}

TEST(Decomposition, DisconnectedGraphUsesEmptySeparator) {
  GraphBuilder b(8);
  b.add_bidirectional(0, 1, 1);
  b.add_bidirectional(2, 3, 1);
  b.add_bidirectional(4, 5, 1);
  b.add_bidirectional(6, 7, 1);
  const Digraph g = std::move(b).build();
  const Skeleton skel(g);
  DecompositionOptions opts;
  opts.leaf_size = 2;
  const SeparatorTree tree =
      build_separator_tree(skel, make_bfs_finder(), opts);
  expect_valid(tree, skel);
  EXPECT_TRUE(tree.root().separator.empty());
}

TEST(Decomposition, LeafSizeSweep) {
  Rng rng(8);
  const std::vector<std::size_t> dims = {12, 12};
  const GeneratedGraph gg = make_grid(dims, WeightModel::unit(), rng);
  const Skeleton skel(gg.graph);
  // leaf_size 1 is unattainable on any graph with an edge (a 2-clique has
  // no separator); 2 is the practical minimum.
  for (const std::size_t leaf_size : {2u, 3u, 8u, 32u}) {
    DecompositionOptions opts;
    opts.leaf_size = leaf_size;
    const SeparatorTree tree =
        build_separator_tree(skel, make_grid_finder(dims), opts);
    expect_valid(tree, skel);
    EXPECT_LE(tree.stats().max_leaf_vertices, leaf_size) << leaf_size;
  }
}

TEST(Decomposition, SingleVertexGraph) {
  GraphBuilder b(1);
  const Digraph g = std::move(b).build();
  const Skeleton skel(g);
  const SeparatorTree tree = build_separator_tree(skel, make_bfs_finder());
  expect_valid(tree, skel);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(Decomposition, IdsByLevelAndLeafIdsConsistent) {
  Rng rng(9);
  const std::vector<std::size_t> dims = {8, 8};
  const GeneratedGraph gg = make_grid(dims, WeightModel::unit(), rng);
  const Skeleton skel(gg.graph);
  const SeparatorTree tree = build_separator_tree(skel, make_grid_finder(dims));
  const auto by_level = tree.ids_by_level();
  std::size_t total = 0;
  for (std::size_t lvl = 0; lvl < by_level.size(); ++lvl) {
    for (const std::size_t id : by_level[lvl]) {
      EXPECT_EQ(tree.node(id).level, lvl);
      ++total;
    }
  }
  EXPECT_EQ(total, tree.num_nodes());
  for (const std::size_t id : tree.leaf_ids()) {
    EXPECT_TRUE(tree.node(id).is_leaf());
  }
  EXPECT_EQ(tree.leaf_ids().size(), tree.stats().num_leaves);
}

TEST(Decomposition, PrintProducesTreeListing) {
  Rng rng(10);
  const std::vector<std::size_t> dims = {4, 4};
  const GeneratedGraph gg = make_grid(dims, WeightModel::unit(), rng);
  const Skeleton skel(gg.graph);
  const SeparatorTree tree = build_separator_tree(skel, make_grid_finder(dims));
  std::ostringstream os;
  tree.print(os);
  EXPECT_NE(os.str().find("SeparatorTree"), std::string::npos);
  EXPECT_NE(os.str().find("leaf"), std::string::npos);
}

TEST(Decomposition, ValidatorCatchesCorruption) {
  Rng rng(11);
  const std::vector<std::size_t> dims = {6, 6};
  const GeneratedGraph gg = make_grid(dims, WeightModel::unit(), rng);
  const Skeleton skel(gg.graph);
  const SeparatorTree tree = build_separator_tree(skel, make_grid_finder(dims));
  // A skeleton of the wrong size must be rejected.
  const GeneratedGraph other = make_grid({5, 5}, WeightModel::unit(), rng);
  EXPECT_NE(tree.validate(Skeleton(other.graph)), std::nullopt);
}

TEST(Decomposition, AutoFinderPicksSensibly) {
  Rng rng(12);
  // Forest -> tree finder (singleton separators).
  const GeneratedGraph t = make_random_tree(120, WeightModel::unit(), rng);
  const Skeleton ts(t.graph);
  const SeparatorTree tt = build_separator_tree(ts, make_auto_finder(ts));
  expect_valid(tt, ts);
  EXPECT_EQ(tt.stats().max_separator, 1u);
  // With coordinates -> geometric finder.
  const GeneratedGraph m =
      make_triangulated_grid(10, 10, WeightModel::unit(), rng);
  const Skeleton ms(m.graph);
  const SeparatorTree mt =
      build_separator_tree(ms, make_auto_finder(ms, m.coords));
  expect_valid(mt, ms);
}

TEST(Decomposition, PartialKTreeDecomposes) {
  Rng rng(13);
  const GeneratedGraph gg =
      make_partial_ktree(300, 4, 0.6, WeightModel::unit(), rng);
  const Skeleton skel(gg.graph);
  const SeparatorTree tree = build_separator_tree(skel, make_bfs_finder());
  expect_valid(tree, skel);
}


TEST(Decomposition, TreewidthFinderGivesConstantBags) {
  Rng rng(14);
  const KTreeWithDecomposition kt = make_partial_ktree_decomposed(
      400, 3, 0.6, WeightModel::uniform(1, 9), rng);
  EXPECT_LE(kt.td.width(), 3u);
  const Skeleton skel(kt.gg.graph);
  const SeparatorTree tree =
      build_separator_tree(skel, make_treewidth_finder(kt.td));
  expect_valid(tree, skel);
  // Separators are bag-sized (width + 1 = 4) wherever the finder's
  // centroid bag succeeds; the builder's BFS fallback may exceed that on
  // the few nodes where a bag fails to disconnect, but stays O(1)-ish.
  EXPECT_LE(tree.stats().max_separator, 8u);
  // And the tree is logarithmically shallow thanks to centroid bags.
  EXPECT_LE(tree.stats().height, 40u);
}

TEST(Decomposition, TreewidthFinderEndToEndDistances) {
  Rng rng(15);
  const KTreeWithDecomposition kt = make_partial_ktree_decomposed(
      200, 2, 0.5, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree = build_separator_tree(
      Skeleton(kt.gg.graph), make_treewidth_finder(kt.td));
  const auto engine = SeparatorShortestPaths<>::build(kt.gg.graph, tree);
  const auto got = engine.distances(0);
  const auto want = dijkstra(kt.gg.graph, 0);
  for (Vertex v = 0; v < kt.gg.graph.num_vertices(); ++v) {
    if (std::isinf(want.dist[v])) {
      EXPECT_TRUE(std::isinf(got.dist[v]));
    } else {
      EXPECT_NEAR(got.dist[v], want.dist[v], 1e-8) << v;
    }
  }
}

}  // namespace
}  // namespace sepsp
