// (1 + eps)-approximate engine: the guarantee holds for every pair, the
// error actually shrinks with eps, and the fast path (no negative-cycle
// pass) stays correct.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/dijkstra.hpp"
#include "core/approx.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

TEST(Approx, GuaranteeHoldsOnGrid) {
  Rng rng(1);
  const GeneratedGraph gg =
      make_grid({10, 10}, WeightModel::uniform(0.5, 20), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({10, 10}));
  for (const double eps : {1.0, 0.25, 0.01}) {
    const ApproxEngine engine = ApproxEngine::build(gg.graph, tree, eps);
    for (const Vertex src : {Vertex{0}, Vertex{55}}) {
      const auto got = engine.distances(src);
      const auto want = dijkstra(gg.graph, src).dist;
      for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
        EXPECT_GE(got[v], want[v] - 1e-9) << eps << " " << v;
        EXPECT_LE(got[v], (1 + eps) * want[v] + 1e-9) << eps << " " << v;
      }
    }
  }
}

TEST(Approx, ErrorShrinksWithEps) {
  Rng rng(2);
  const GeneratedGraph gg =
      make_triangulated_grid(9, 9, WeightModel::uniform(1, 30), rng);
  const SeparatorTree tree = build_separator_tree(
      Skeleton(gg.graph), make_geometric_finder(gg.coords));
  const auto want = dijkstra(gg.graph, 0).dist;
  double prev_error = std::numeric_limits<double>::infinity();
  for (const double eps : {0.8, 0.2, 0.05}) {
    const ApproxEngine engine = ApproxEngine::build(gg.graph, tree, eps);
    const auto got = engine.distances(0);
    double max_rel = 0;
    for (Vertex v = 1; v < gg.graph.num_vertices(); ++v) {
      if (want[v] > 0) {
        max_rel = std::max(max_rel, (got[v] - want[v]) / want[v]);
      }
    }
    EXPECT_LE(max_rel, eps + 1e-12);
    EXPECT_LE(max_rel, prev_error + 1e-12);
    prev_error = max_rel;
  }
}

TEST(Approx, UnreachableStaysInfinite) {
  Rng rng(3);
  const GeneratedGraph gg = make_path(30, WeightModel::uniform(1, 5), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_tree_finder());
  const ApproxEngine engine = ApproxEngine::build(gg.graph, tree, 0.1);
  const auto got = engine.distances(15);
  for (Vertex v = 0; v < 15; ++v) EXPECT_TRUE(std::isinf(got[v]));
  for (Vertex v = 15; v < 30; ++v) EXPECT_FALSE(std::isinf(got[v]));
}

TEST(Approx, UnitScalesWithEps) {
  Rng rng(4);
  const GeneratedGraph gg = make_grid({5, 5}, WeightModel::uniform(2, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({5, 5}));
  const ApproxEngine coarse = ApproxEngine::build(gg.graph, tree, 0.5);
  const ApproxEngine fine = ApproxEngine::build(gg.graph, tree, 0.05);
  EXPECT_NEAR(coarse.unit() / fine.unit(), 10.0, 1e-9);
}

TEST(Approx, RejectsNonPositiveWeights) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 0.0);
  const Digraph g = std::move(b).build();
  const SeparatorTree tree =
      build_separator_tree(Skeleton(g), make_bfs_finder());
  EXPECT_DEATH({ (void)ApproxEngine::build(g, tree, 0.1); }, "positive");
}

TEST(EngineFastPath, SkippingDetectionSavesScansAndStaysExact) {
  Rng rng(5);
  const GeneratedGraph gg =
      make_grid({12, 12}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({12, 12}));
  typename SeparatorShortestPaths<>::Options fast;
  fast.query.detect_negative_cycles = false;
  const auto checked = SeparatorShortestPaths<>::build(gg.graph, tree);
  const auto unchecked = SeparatorShortestPaths<>::build(gg.graph, tree, fast);
  const auto a = checked.distances(0);
  const auto b = unchecked.distances(0);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_LT(b.edges_scanned, a.edges_scanned);
}

}  // namespace
}  // namespace sepsp
