// (1 + eps)-approximate engine (src/approx): the end-to-end guarantee
// holds for every pair and every eps, the error actually shrinks with
// eps, pruning at eps -> 0 degenerates to the exact build bit for bit,
// the allocation-free and batched query paths agree with the scalar
// one, and the option plumbing rejects every invalid spelling.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "approx/approx.hpp"
#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

ApproxEngine build_approx(const Digraph& g, const SeparatorTree& tree,
                          double eps) {
  ApproxEngine::Options opts;
  opts.build.approx_eps = eps;
  return ApproxEngine::build(g, tree, opts);
}

void expect_guarantee(const Digraph& g, const ApproxEngine& engine,
                      Vertex src, double eps) {
  const std::vector<double> got = engine.distances(src);
  const std::vector<double> want = dijkstra(g, src).dist;
  ASSERT_EQ(got.size(), want.size());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (std::isinf(want[v])) {
      EXPECT_TRUE(std::isinf(got[v])) << "eps=" << eps << " v=" << v;
      continue;
    }
    EXPECT_GE(got[v], want[v] - 1e-9) << "eps=" << eps << " v=" << v;
    EXPECT_LE(got[v], (1 + eps) * want[v] + 1e-9)
        << "eps=" << eps << " v=" << v;
  }
}

TEST(Approx, GuaranteeHoldsOnGrid) {
  Rng rng(1);
  const GeneratedGraph gg =
      make_grid({10, 10}, WeightModel::uniform(0.5, 20), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({10, 10}));
  for (const double eps : {1.0, 0.25, 0.01}) {
    const ApproxEngine engine = build_approx(gg.graph, tree, eps);
    for (const Vertex src : {Vertex{0}, Vertex{55}}) {
      expect_guarantee(gg.graph, engine, src, eps);
    }
  }
}

TEST(Approx, EpsGridFuzz) {
  const double eps_grid[] = {1.0, 0.5, 0.3, 0.1, 0.05, 0.01};
  for (const unsigned seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    // Sparse enough that some pairs stay unreachable.
    const GeneratedGraph gg =
        make_random_digraph(40, 100, WeightModel::uniform(0.5, 10), rng);
    const SeparatorTree tree =
        build_separator_tree(Skeleton(gg.graph), make_bfs_finder());
    for (const double eps : eps_grid) {
      const ApproxEngine engine = build_approx(gg.graph, tree, eps);
      EXPECT_LE(engine.certified_error(), eps + 1e-12);
      for (const Vertex src : {Vertex{0}, Vertex{17}, Vertex{39}}) {
        expect_guarantee(gg.graph, engine, src, eps);
      }
    }
  }
}

TEST(Approx, SingleVertexGraph) {
  GraphBuilder b(1);
  const Digraph g = std::move(b).build();
  const SeparatorTree tree =
      build_separator_tree(Skeleton(g), make_bfs_finder());
  const ApproxEngine engine = build_approx(g, tree, 0.5);
  const std::vector<double> got = engine.distances(0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 0.0);
  EXPECT_EQ(engine.eplus_dropped(), 0u);
}

TEST(Approx, ErrorShrinksWithEps) {
  Rng rng(2);
  const GeneratedGraph gg =
      make_triangulated_grid(9, 9, WeightModel::uniform(1, 30), rng);
  const SeparatorTree tree = build_separator_tree(
      Skeleton(gg.graph), make_geometric_finder(gg.coords));
  const auto want = dijkstra(gg.graph, 0).dist;
  std::vector<double> errors;
  for (const double eps : {0.8, 0.2, 0.05}) {
    const ApproxEngine engine = build_approx(gg.graph, tree, eps);
    const auto got = engine.distances(0);
    double max_rel = 0;
    for (Vertex v = 1; v < gg.graph.num_vertices(); ++v) {
      if (want[v] > 0) {
        max_rel = std::max(max_rel, (got[v] - want[v]) / want[v]);
      }
    }
    EXPECT_LE(max_rel, eps + 1e-12);
    errors.push_back(max_rel);
  }
  EXPECT_LE(errors.back(), errors.front() + 1e-12);
}

TEST(Approx, UnreachableStaysInfinite) {
  Rng rng(3);
  const GeneratedGraph gg = make_path(30, WeightModel::uniform(1, 5), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_tree_finder());
  const ApproxEngine engine = build_approx(gg.graph, tree, 0.1);
  const auto got = engine.distances(15);
  for (Vertex v = 0; v < 15; ++v) EXPECT_TRUE(std::isinf(got[v]));
  for (Vertex v = 15; v < 30; ++v) EXPECT_FALSE(std::isinf(got[v]));
}

TEST(Approx, UnitScalesWithEps) {
  Rng rng(4);
  const GeneratedGraph gg = make_grid({5, 5}, WeightModel::uniform(2, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({5, 5}));
  // unit = (eps / 2) * w_min, so the ratio of units tracks the ratio of
  // budgets.
  const ApproxEngine coarse = build_approx(gg.graph, tree, 0.5);
  const ApproxEngine fine = build_approx(gg.graph, tree, 0.05);
  EXPECT_NEAR(coarse.unit() / fine.unit(), 10.0, 1e-9);
}

// eps -> 0 must degenerate to the exact build *bit for bit*: the
// pruning slack floors at one integer unit, so nothing is ever dropped
// on a tie, and the sparsified builder walks the exact builder's
// emission order.
TEST(Approx, PruningParityAtTinyEps) {
  Rng rng(6);
  const GeneratedGraph gg =
      make_grid({8, 8}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({8, 8}));
  const double eps = 1e-6;
  const ApproxEngine approx = build_approx(gg.graph, tree, eps);
  EXPECT_EQ(approx.eplus_dropped(), 0u);

  // Rebuild the scaled graph exactly as the approx build does and run
  // the exact TropicalI engine over it.
  GraphBuilder b(gg.graph.num_vertices());
  const std::span<const Arc> arcs = gg.graph.arcs();
  const std::span<const Vertex> arc_src = gg.graph.arc_sources();
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    b.add_edge(arc_src[i], arcs[i].to,
               std::ceil(arcs[i].weight / approx.unit()));
  }
  const Digraph scaled = std::move(b).build(/*dedup_min=*/false);
  const auto exact = SeparatorShortestPaths<TropicalI>::build(scaled, tree);

  EXPECT_EQ(approx.stats().eplus_edges, exact.stats().eplus_edges);
  for (const Vertex src : {Vertex{0}, Vertex{37}}) {
    const auto a = approx.engine().distances(src);
    const auto e = exact.distances(src);
    EXPECT_EQ(a.dist, e.dist) << "src=" << src;
  }
}

TEST(Approx, DistancesIntoMatchesDistances) {
  Rng rng(7);
  const GeneratedGraph gg =
      make_grid({9, 9}, WeightModel::uniform(0.5, 12), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({9, 9}));
  const ApproxEngine engine = build_approx(gg.graph, tree, 0.2);
  std::vector<double> buf(gg.graph.num_vertices(),
                          -1.0);  // prior contents must be ignored
  for (const Vertex src : {Vertex{0}, Vertex{40}, Vertex{80}}) {
    const QueryStats stats = engine.distances_into(src, buf);
    EXPECT_GT(stats.edges_scanned, 0u);
    EXPECT_EQ(buf, engine.distances(src)) << "src=" << src;
  }
}

TEST(Approx, DistancesBatchMatchesScalar) {
  Rng rng(8);
  const GeneratedGraph gg =
      make_grid({9, 9}, WeightModel::uniform(0.5, 12), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({9, 9}));
  const ApproxEngine engine = build_approx(gg.graph, tree, 0.3);
  const std::vector<Vertex> sources = {0, 7, 7, 13, 40, 64, 80};
  const auto results = engine.distances_batch(sources);
  ASSERT_EQ(results.size(), sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(results[i].dist, engine.distances(sources[i]))
        << "lane " << i << " source " << sources[i];
  }
}

TEST(Approx, StatsExposeApproxFields) {
  Rng rng(9);
  const GeneratedGraph gg =
      make_grid({20, 20}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({20, 20}));
  const ApproxEngine engine = build_approx(gg.graph, tree, 0.3);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.approx_eps, 0.3);
  EXPECT_GT(stats.approx_unit, 0.0);
  EXPECT_EQ(stats.eplus_kept, engine.eplus_kept());
  EXPECT_EQ(stats.eplus_dropped, engine.eplus_dropped());
  EXPECT_GT(engine.eplus_dropped(), 0u);
  EXPECT_LE(stats.certified_error, 0.3 + 1e-12);
  EXPECT_GT(stats.certified_error, 0.0);

  // Pruning must shrink |E+| against the exact build of the same
  // instance.
  const auto exact = SeparatorShortestPaths<TropicalD>::build(gg.graph, tree);
  EXPECT_LT(stats.eplus_edges, exact.stats().eplus_edges);
}

TEST(Approx, ObservedErrorFeedback) {
  Rng rng(10);
  const GeneratedGraph gg = make_grid({5, 5}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({5, 5}));
  const ApproxEngine engine = build_approx(gg.graph, tree, 0.2);
  EXPECT_EQ(engine.max_observed_error(), 0.0);
  engine.note_observed_error(0.01);
  engine.note_observed_error(0.004);  // smaller: max must stick
  EXPECT_EQ(engine.max_observed_error(), 0.01);
  EXPECT_EQ(engine.stats().max_observed_error, 0.01);
}

TEST(Approx, RejectsNonPositiveWeights) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 0.0);
  const Digraph g = std::move(b).build();
  const SeparatorTree tree =
      build_separator_tree(Skeleton(g), make_bfs_finder());
  EXPECT_DEATH({ (void)build_approx(g, tree, 0.1); }, "positive");
}

TEST(Approx, RejectsEpsOutOfRange) {
  Rng rng(5);
  const GeneratedGraph gg = make_grid({4, 4}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({4, 4}));
  // Default options carry approx_eps = 0 — meaningless for an
  // approximate build.
  EXPECT_DEATH(
      { (void)ApproxEngine::build(gg.graph, tree, ApproxEngine::Options{}); },
      "approx_eps");
  EXPECT_DEATH({ (void)build_approx(gg.graph, tree, 1.5); }, "approx_eps");
  // The exact facade refuses to silently ignore a nonzero budget.
  typename SeparatorShortestPaths<>::Options opts;
  opts.build.approx_eps = 0.5;
  EXPECT_DEATH(
      { (void)SeparatorShortestPaths<>::build(gg.graph, tree, opts); },
      "ApproxEngine");
}

TEST(Approx, RejectsDoublingBuilder) {
  Rng rng(5);
  const GeneratedGraph gg = make_grid({4, 4}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({4, 4}));
  ApproxEngine::Options opts;
  opts.build.approx_eps = 0.1;
  opts.build.builder = BuilderKind::kDoubling;
  EXPECT_DEATH({ (void)ApproxEngine::build(gg.graph, tree, opts); },
               "kDoubling");
}

TEST(EngineFastPath, SkippingDetectionSavesScansAndStaysExact) {
  Rng rng(5);
  const GeneratedGraph gg =
      make_grid({12, 12}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({12, 12}));
  typename SeparatorShortestPaths<>::Options fast;
  fast.query.detect_negative_cycles = false;
  const auto checked = SeparatorShortestPaths<>::build(gg.graph, tree);
  const auto unchecked = SeparatorShortestPaths<>::build(gg.graph, tree, fast);
  const auto a = checked.distances(0);
  const auto b = unchecked.distances(0);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_LT(b.edges_scanned, a.edges_scanned);
}

}  // namespace
}  // namespace sepsp
