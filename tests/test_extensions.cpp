// Extension features: the Remark-4.4 compact builder, the
// fundamental-cycle separator, unit-disk (overlap) graphs, parallel
// in-phase relaxation, and the q-face k-pair oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "baseline/dijkstra.hpp"
#include "core/builder_compact.hpp"
#include "core/builder_recursive.hpp"
#include "core/engine.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "planar/hammock.hpp"
#include "planar/qface.hpp"
#include "separator/cycle_separator.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

// --- Remark 4.4: compact shared-pairing builder --------------------------

TEST(CompactBuilder, QueriesMatchDijkstra) {
  Rng rng(1);
  const GeneratedGraph gg = make_grid({9, 9}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({9, 9}));
  const auto aug = build_augmentation_compact<TropicalD>(gg.graph, tree);
  const auto engine =
      SeparatorShortestPaths<>::from_augmentation(gg.graph, aug);
  for (const Vertex src : {Vertex{0}, Vertex{40}, Vertex{80}}) {
    const auto got = engine.distances(src);
    ASSERT_FALSE(got.negative_cycle);
    const auto want = dijkstra(gg.graph, src);
    for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
      EXPECT_NEAR(got.dist[v], want.dist[v], 1e-8) << src << "->" << v;
    }
  }
}

TEST(CompactBuilder, ValuesBracketedByTrueDistAndPerNodeDist) {
  // Remark 4.4 weights may be tighter than per-node dist_{G(t)} but can
  // never undercut dist_G.
  Rng rng(2);
  const GeneratedGraph gg = make_grid({7, 7}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({7, 7}));
  const auto compact = build_augmentation_compact<TropicalD>(gg.graph, tree);
  const auto per_node =
      build_augmentation_recursive<TropicalD>(gg.graph, tree);
  std::map<std::pair<Vertex, Vertex>, double> node_value;
  for (const auto& e : per_node.shortcuts) {
    node_value[{e.from, e.to}] = e.value;
  }
  std::map<Vertex, DijkstraResult> truth;
  for (const auto& e : compact.shortcuts) {
    auto [it, inserted] = truth.try_emplace(e.from);
    if (inserted) it->second = dijkstra(gg.graph, e.from);
    EXPECT_GE(e.value, it->second.dist[e.to] - 1e-9);
    const auto nv = node_value.find({e.from, e.to});
    ASSERT_NE(nv, node_value.end());
    EXPECT_LE(e.value, nv->second + 1e-9);
  }
  // Same edge set as the per-node builders.
  EXPECT_EQ(compact.shortcuts.size(), per_node.shortcuts.size());
}

TEST(CompactBuilder, NegativeWeightsAndOtherSemirings) {
  Rng rng(3);
  const GeneratedGraph gg = make_grid({7, 7}, WeightModel::mixed_sign(), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({7, 7}));
  {
    const auto aug = build_augmentation_compact<TropicalD>(gg.graph, tree);
    const auto engine =
        SeparatorShortestPaths<>::from_augmentation(gg.graph, aug);
    const auto got = engine.distances(0);
    ASSERT_FALSE(got.negative_cycle);
    const auto want =
        SeparatorShortestPaths<>::build(gg.graph, tree).distances(0);
    for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
      EXPECT_NEAR(got.dist[v], want.dist[v], 1e-8);
    }
  }
  {
    const auto aug = build_augmentation_compact<BooleanSR>(gg.graph, tree);
    const auto engine =
        SeparatorShortestPaths<BooleanSR>::from_augmentation(gg.graph, aug);
    const auto got = engine.distances(0);
    for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
      EXPECT_EQ(got.dist[v], 1);  // grid is strongly connected
    }
  }
}

// --- fundamental-cycle separator -----------------------------------------

TEST(CycleFinder, DecomposesPlanarMesh) {
  Rng rng(4);
  const GeneratedGraph gg =
      make_triangulated_grid(12, 12, WeightModel::unit(), rng);
  const Skeleton skel(gg.graph);
  const SeparatorTree tree =
      build_separator_tree(skel, make_cycle_finder(gg.coords));
  const auto err = tree.validate(skel);
  EXPECT_EQ(err, std::nullopt) << (err ? *err : "");
  // Separators should stay far below n.
  EXPECT_LE(tree.stats().max_separator, gg.graph.num_vertices() / 2);
}

TEST(CycleFinder, EndToEndDistances) {
  Rng rng(5);
  const GeneratedGraph gg =
      make_triangulated_grid(9, 9, WeightModel::uniform(1, 6), rng);
  const SeparatorTree tree = build_separator_tree(
      Skeleton(gg.graph), make_cycle_finder(gg.coords, 3));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const auto got = engine.distances(0);
  const auto want = dijkstra(gg.graph, 0);
  for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
    EXPECT_NEAR(got.dist[v], want.dist[v], 1e-8);
  }
}

TEST(CycleFinder, DeclinesOnTrees) {
  Rng rng(6);
  const GeneratedGraph gg = make_random_tree(60, WeightModel::unit(), rng);
  std::vector<std::array<double, 3>> coords(60, {0, 0, 0});
  const Skeleton skel(gg.graph);
  // No cycles exist; the builder's fallback chain must still decompose.
  const SeparatorTree tree =
      build_separator_tree(skel, make_cycle_finder(coords));
  EXPECT_EQ(tree.validate(skel), std::nullopt);
}

// --- unit-disk (overlap) graphs -------------------------------------------

TEST(UnitDisk, ShapeAndSeparators) {
  Rng rng(7);
  const GeneratedGraph gg =
      make_unit_disk(600, 8.0, WeightModel::uniform(1, 5), rng);
  EXPECT_EQ(gg.graph.num_vertices(), 600u);
  const Skeleton skel(gg.graph);
  const double avg_degree =
      2.0 * static_cast<double>(skel.num_edges()) / 600.0;
  EXPECT_GT(avg_degree, 3.0);
  EXPECT_LT(avg_degree, 16.0);
  const SeparatorTree tree =
      build_separator_tree(skel, make_geometric_finder(gg.coords));
  EXPECT_EQ(tree.validate(skel), std::nullopt);
  // The r-overlap family: O(sqrt n)-ish geometric separators.
  EXPECT_LE(tree.stats().max_separator, 140u);
}

TEST(UnitDisk, EngineMatchesDijkstraOnLargestComponent) {
  Rng rng(8);
  const GeneratedGraph gg =
      make_unit_disk(400, 9.0, WeightModel::uniform(1, 5), rng);
  const SeparatorTree tree = build_separator_tree(
      Skeleton(gg.graph), make_geometric_finder(gg.coords));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const auto got = engine.distances(0);
  const auto want = dijkstra(gg.graph, 0);
  for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
    if (std::isinf(want.dist[v])) {
      EXPECT_TRUE(std::isinf(got.dist[v]));
    } else {
      EXPECT_NEAR(got.dist[v], want.dist[v], 1e-8);
    }
  }
}

// --- parallel in-phase relaxation -----------------------------------------

TEST(ParallelQuery, MatchesSequentialSchedule) {
  Rng rng(9);
  const GeneratedGraph gg =
      make_grid({12, 12}, WeightModel::uniform(1, 9), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({12, 12}));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  for (const Vertex src : {Vertex{0}, Vertex{71}, Vertex{143}}) {
    const auto seq = engine.query_engine().run(src);
    const auto par = engine.query_engine().run_parallel(src);
    ASSERT_FALSE(par.negative_cycle);
    for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
      EXPECT_NEAR(seq.dist[v], par.dist[v], 1e-9) << v;
    }
  }
}

TEST(ParallelQuery, HandlesNegativeWeights) {
  Rng rng(10);
  const GeneratedGraph gg = make_grid({8, 8}, WeightModel::mixed_sign(), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({8, 8}));
  const auto engine = SeparatorShortestPaths<>::build(gg.graph, tree);
  const auto seq = engine.query_engine().run(5);
  const auto par = engine.query_engine().run_parallel(5);
  for (Vertex v = 0; v < gg.graph.num_vertices(); ++v) {
    EXPECT_NEAR(seq.dist[v], par.dist[v], 1e-9);
  }
}

// --- q-face k-pair oracle --------------------------------------------------

TEST(PairOracle, MatchesDijkstraOnRandomPairs) {
  Rng rng(11);
  const HammockGraph hg =
      make_hammock_ring(6, 7, WeightModel::uniform(1, 9), rng);
  const QFacePipeline pipeline = QFacePipeline::build(hg);
  std::vector<std::pair<Vertex, Vertex>> pairs;
  Rng pick(12);
  for (int i = 0; i < 30; ++i) {
    pairs.emplace_back(
        static_cast<Vertex>(pick.next_below(hg.graph.num_vertices())),
        static_cast<Vertex>(pick.next_below(hg.graph.num_vertices())));
  }
  const std::vector<double> got = pipeline.distance_pairs(pairs);
  std::map<Vertex, DijkstraResult> cache;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    auto [it, inserted] = cache.try_emplace(pairs[i].first);
    if (inserted) it->second = dijkstra(hg.graph, pairs[i].first);
    EXPECT_NEAR(got[i], it->second.dist[pairs[i].second], 1e-8)
        << pairs[i].first << "->" << pairs[i].second;
  }
}

TEST(PairOracle, SameHammockPairsIncludeLocalPaths) {
  Rng rng(13);
  const HammockGraph hg =
      make_hammock_ring(5, 9, WeightModel::uniform(1, 9), rng);
  const QFacePipeline pipeline = QFacePipeline::build(hg);
  // Two interior vertices of hammock 2.
  const Vertex u = hg.hammocks[2].vertices[4];
  const Vertex v = hg.hammocks[2].vertices[9];
  const std::vector<std::pair<Vertex, Vertex>> pairs{{u, v}, {v, u}, {u, u}};
  const auto got = pipeline.distance_pairs(pairs);
  const auto dj_u = dijkstra(hg.graph, u);
  const auto dj_v = dijkstra(hg.graph, v);
  EXPECT_NEAR(got[0], dj_u.dist[v], 1e-8);
  EXPECT_NEAR(got[1], dj_v.dist[u], 1e-8);
  EXPECT_NEAR(got[2], 0.0, 1e-12);
}

}  // namespace
}  // namespace sepsp
