// DIMACS graph / coordinate I/O: round trips and malformed-input
// rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace sepsp {
namespace {

TEST(DimacsIo, GraphRoundTrip) {
  Rng rng(1);
  const GeneratedGraph gg = make_grid({6, 7}, WeightModel::uniform(1, 9), rng);
  std::stringstream ss;
  write_dimacs(ss, gg.graph);
  std::string error;
  const auto loaded = read_dimacs(ss, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->num_vertices(), gg.graph.num_vertices());
  EXPECT_EQ(loaded->num_edges(), gg.graph.num_edges());
  const auto a = gg.graph.edge_list();
  const auto b = loaded->edge_list();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].from, b[i].from);
    EXPECT_EQ(a[i].to, b[i].to);
    EXPECT_NEAR(a[i].weight, b[i].weight, 1e-9);
  }
}

TEST(DimacsIo, NegativeWeightsSurvive) {
  GraphBuilder b(3);
  b.add_edge(0, 1, -2.5);
  b.add_edge(1, 2, 4.25);
  const Digraph g = std::move(b).build();
  std::stringstream ss;
  write_dimacs(ss, g);
  const auto loaded = read_dimacs(ss);
  ASSERT_TRUE(loaded.has_value());
  double w = 0;
  EXPECT_TRUE(loaded->find_arc(0, 1, &w));
  EXPECT_DOUBLE_EQ(w, -2.5);
}

TEST(DimacsIo, ParsesHandWrittenFile) {
  std::stringstream ss(
      "c a comment\n"
      "\n"
      "p sp 3 2\n"
      "a 1 2 5\n"
      "c mid comment\n"
      "a 2 3 7.5\n");
  const auto g = read_dimacs(ss);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_vertices(), 3u);
  double w = 0;
  EXPECT_TRUE(g->find_arc(1, 2, &w));
  EXPECT_DOUBLE_EQ(w, 7.5);
}

TEST(DimacsIo, RejectsMalformedInput) {
  std::string error;
  {
    std::stringstream ss("a 1 2 5\n");  // arc before problem line
    EXPECT_FALSE(read_dimacs(ss, &error).has_value());
    EXPECT_NE(error.find("problem"), std::string::npos);
  }
  {
    std::stringstream ss("p sp 2 1\na 1 5 3\n");  // vertex out of range
    EXPECT_FALSE(read_dimacs(ss, &error).has_value());
  }
  {
    std::stringstream ss("p sp 2 2\na 1 2 3\n");  // missing edge
    EXPECT_FALSE(read_dimacs(ss, &error).has_value());
    EXPECT_NE(error.find("mismatch"), std::string::npos);
  }
  {
    std::stringstream ss("p sp 2 1\nz nonsense\n");  // unknown tag
    EXPECT_FALSE(read_dimacs(ss, &error).has_value());
  }
  {
    std::stringstream ss("p sp 2 0\np sp 2 0\n");  // duplicate header
    EXPECT_FALSE(read_dimacs(ss, &error).has_value());
  }
}

TEST(DimacsIo, CoordinateRoundTrip) {
  Rng rng(2);
  const GeneratedGraph gg =
      make_triangulated_grid(4, 5, WeightModel::unit(), rng);
  std::stringstream ss;
  write_dimacs_coords(ss, gg.coords);
  const auto loaded = read_dimacs_coords(ss, gg.coords.size());
  ASSERT_TRUE(loaded.has_value());
  for (std::size_t i = 0; i < gg.coords.size(); ++i) {
    EXPECT_NEAR((*loaded)[i][0], gg.coords[i][0], 1e-9);
    EXPECT_NEAR((*loaded)[i][1], gg.coords[i][1], 1e-9);
  }
}

TEST(DimacsIo, CoordsRejectBadIds) {
  std::stringstream ss("v 9 1.0 2.0\n");
  EXPECT_FALSE(read_dimacs_coords(ss, 3).has_value());
}

}  // namespace
}  // namespace sepsp
