// Semiring-law tests (typed over all shipped semirings) and dense
// matrix kernel tests against brute-force references.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "semiring/matrix.hpp"
#include "semiring/semiring.hpp"
#include "util/random.hpp"

namespace sepsp {
namespace {

template <typename S>
class SemiringLaws : public ::testing::Test {
 public:
  // A small pool of representative values per semiring.
  static std::vector<typename S::Value> values() {
    if constexpr (std::is_same_v<S, BooleanSR>) {
      return {0, 1};
    } else {
      return {S::zero(), S::one(), S::from_weight(1.5), S::from_weight(7.0),
              S::from_weight(3.0)};
    }
  }
};

using AllSemirings =
    ::testing::Types<TropicalD, TropicalI, BooleanSR, BottleneckSR>;
TYPED_TEST_SUITE(SemiringLaws, AllSemirings);

TYPED_TEST(SemiringLaws, CombineIsCommutativeAssociativeIdempotent) {
  using S = TypeParam;
  for (const auto a : this->values()) {
    EXPECT_EQ(S::combine(a, a), a);  // idempotent
    for (const auto b : this->values()) {
      EXPECT_EQ(S::combine(a, b), S::combine(b, a));
      for (const auto c : this->values()) {
        EXPECT_EQ(S::combine(S::combine(a, b), c),
                  S::combine(a, S::combine(b, c)));
      }
    }
  }
}

TYPED_TEST(SemiringLaws, Identities) {
  using S = TypeParam;
  for (const auto a : this->values()) {
    EXPECT_EQ(S::combine(a, S::zero()), a);
    EXPECT_EQ(S::extend(a, S::one()), a);
    EXPECT_EQ(S::extend(S::one(), a), a);
    EXPECT_EQ(S::extend(a, S::zero()), S::zero());  // zero annihilates
    EXPECT_EQ(S::extend(S::zero(), a), S::zero());
  }
}

TYPED_TEST(SemiringLaws, ExtendAssociativeAndDistributive) {
  using S = TypeParam;
  for (const auto a : this->values()) {
    for (const auto b : this->values()) {
      for (const auto c : this->values()) {
        EXPECT_EQ(S::extend(S::extend(a, b), c), S::extend(a, S::extend(b, c)));
        EXPECT_EQ(S::extend(a, S::combine(b, c)),
                  S::combine(S::extend(a, b), S::extend(a, c)));
        EXPECT_EQ(S::extend(S::combine(b, c), a),
                  S::combine(S::extend(b, a), S::extend(c, a)));
      }
    }
  }
}

TYPED_TEST(SemiringLaws, ImprovesMatchesCombine) {
  using S = TypeParam;
  for (const auto a : this->values()) {
    for (const auto b : this->values()) {
      EXPECT_EQ(S::improves(a, b), S::combine(a, b) != a)
          << "improves must mean 'combine changes the value'";
    }
  }
}

TYPED_TEST(SemiringLaws, ExtendUnguardedAgreesOffZero) {
  // The batched kernel's branch-free fast path: whenever the semiring
  // provides extend_unguarded, it must equal extend for every b except
  // zero() (edge buckets never carry zero() values). Negative b is the
  // dangerous case for saturating integer arithmetic.
  using S = TypeParam;
  using V = typename S::Value;
  if constexpr (requires(V a, V b) { S::extend_unguarded(a, b); }) {
    auto edge_values = this->values();
    if constexpr (std::is_same_v<S, TropicalD> || std::is_same_v<S, TropicalI>) {
      edge_values.push_back(S::from_weight(-4.0));
    }
    for (const auto a : this->values()) {
      for (const auto b : edge_values) {
        if (b == S::zero()) continue;
        EXPECT_EQ(S::extend_unguarded(a, b), S::extend(a, b))
            << "a, b must extend identically without the guard";
      }
    }
  }
}

// --- dense matrix kernels ---------------------------------------------

template <Semiring S>
Matrix<S> random_matrix(std::size_t n, Rng& rng, double density = 0.4) {
  Matrix<S> m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.next_bool(density)) {
        m.at(i, j) = S::from_weight(rng.next_double(1.0, 9.0));
      }
    }
  }
  return m;
}

template <Semiring S>
Matrix<S> brute_multiply(const Matrix<S>& a, const Matrix<S>& b) {
  Matrix<S> r(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      auto acc = S::zero();
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc = S::combine(acc, S::extend(a.at(i, k), b.at(k, j)));
      }
      r.at(i, j) = acc;
    }
  }
  return r;
}

TEST(Matrix, MultiplyMatchesBruteForceTropical) {
  Rng rng(21);
  for (const std::size_t n : {1u, 2u, 5u, 13u}) {
    const auto a = random_matrix<TropicalD>(n, rng);
    const auto b = random_matrix<TropicalD>(n, rng);
    EXPECT_EQ(multiply(a, b), brute_multiply(a, b)) << "n=" << n;
  }
}

TEST(Matrix, MultiplyMatchesBruteForceBottleneck) {
  Rng rng(22);
  const auto a = random_matrix<BottleneckSR>(9, rng);
  const auto b = random_matrix<BottleneckSR>(9, rng);
  EXPECT_EQ(multiply(a, b), brute_multiply(a, b));
}

TEST(Matrix, RectangularMultiplyShapes) {
  Matrix<TropicalD> a(2, 3), b(3, 4);
  a.at(0, 1) = 1.0;
  b.at(1, 3) = 2.0;
  const auto c = multiply(a, b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
  EXPECT_DOUBLE_EQ(c.at(0, 3), 3.0);
  EXPECT_EQ(c.at(1, 0), TropicalD::zero());
}

TEST(Matrix, IdentityIsMultiplicativeIdentity) {
  Rng rng(23);
  const auto a = random_matrix<TropicalD>(7, rng);
  const auto id = Matrix<TropicalD>::identity(7);
  EXPECT_EQ(multiply(a, id), a);
  EXPECT_EQ(multiply(id, a), a);
}

TEST(Matrix, FloydWarshallEqualsSquaringClosure) {
  Rng rng(24);
  for (int trial = 0; trial < 5; ++trial) {
    auto m = random_matrix<TropicalD>(11, rng, 0.3);
    auto fw = m;
    floyd_warshall(fw);
    const auto sq = closure_by_squaring(m);
    for (std::size_t i = 0; i < 11; ++i) {
      for (std::size_t j = 0; j < 11; ++j) {
        if (std::isinf(fw.at(i, j))) {
          EXPECT_TRUE(std::isinf(sq.at(i, j)));
        } else {
          EXPECT_NEAR(fw.at(i, j), sq.at(i, j), 1e-12);
        }
      }
    }
  }
}

TEST(Matrix, FloydWarshallPathExample) {
  //  0 -> 1 (5), 1 -> 2 (2), 0 -> 2 (9): best 0->2 is 7 via 1.
  Matrix<TropicalD> m(3);
  m.at(0, 1) = 5;
  m.at(1, 2) = 2;
  m.at(0, 2) = 9;
  floyd_warshall(m);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_EQ(m.at(2, 0), TropicalD::zero());
}

TEST(Matrix, FloydWarshallFlagsNegativeCycleOnDiagonal) {
  Matrix<TropicalD> m(2);
  m.at(0, 1) = 1;
  m.at(1, 0) = -3;
  floyd_warshall(m);
  EXPECT_LT(m.at(0, 0), 0.0);
}

TEST(Matrix, SquareStepReportsFixpoint) {
  Matrix<TropicalD> m = Matrix<TropicalD>::identity(4);
  m.at(0, 1) = 1;
  EXPECT_FALSE(square_step(m));  // already transitively closed
  m.at(1, 2) = 1;
  EXPECT_TRUE(square_step(m));   // 0->2 appears
  EXPECT_DOUBLE_EQ(m.at(0, 2), 2.0);
}

TEST(Matrix, ClearReleasesShape) {
  Matrix<TropicalD> m(5);
  m.clear();
  EXPECT_EQ(m.rows(), 0u);
}

TEST(Matrix, BooleanClosureIsReachability) {
  // Path 0 -> 1 -> 2 -> 3.
  Matrix<BooleanSR> m(4);
  m.at(0, 1) = 1;
  m.at(1, 2) = 1;
  m.at(2, 3) = 1;
  const auto c = closure_by_squaring(m);
  EXPECT_EQ(c.at(0, 3), 1);
  EXPECT_EQ(c.at(3, 0), 0);
  EXPECT_EQ(c.at(2, 2), 1);  // reflexive
}

}  // namespace
}  // namespace sepsp
