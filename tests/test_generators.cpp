// Unit tests for graph generators: sizes, connectivity, weight models.
#include <gtest/gtest.h>

#include "baseline/bellman_ford.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/skeleton.hpp"

namespace sepsp {
namespace {

TEST(Generators, Grid2DShape) {
  Rng rng(1);
  const GeneratedGraph gg = make_grid({4, 3}, WeightModel::unit(), rng);
  EXPECT_EQ(gg.graph.num_vertices(), 12u);
  // Undirected lattice edges: 3*(4-1) + 4*(3-1) = 17; two arcs each.
  EXPECT_EQ(gg.graph.num_edges(), 34u);
  EXPECT_TRUE(is_connected(Skeleton(gg.graph)));
  ASSERT_EQ(gg.coords.size(), 12u);
  EXPECT_DOUBLE_EQ(gg.coords[5][0], 1.0);  // id 5 = (x=1, y=1)
  EXPECT_DOUBLE_EQ(gg.coords[5][1], 1.0);
}

TEST(Generators, Grid3DShapeAndDegrees) {
  Rng rng(2);
  const GeneratedGraph gg = make_grid({3, 3, 3}, WeightModel::unit(), rng);
  EXPECT_EQ(gg.graph.num_vertices(), 27u);
  // Per axis (3-1)*3*3 = 18 undirected edges; 54 total; two arcs each.
  EXPECT_EQ(gg.graph.num_edges(), 108u);
  const Skeleton s(gg.graph);
  // The center vertex (1,1,1) has degree 6.
  EXPECT_EQ(s.degree(1 + 3 + 9), 6u);
  EXPECT_TRUE(is_connected(s));
}

TEST(Generators, Grid1DIsPath) {
  Rng rng(3);
  const GeneratedGraph gg = make_grid({7}, WeightModel::unit(), rng);
  EXPECT_EQ(gg.graph.num_vertices(), 7u);
  EXPECT_EQ(gg.graph.num_edges(), 12u);
}

TEST(Generators, UniformWeightsInRange) {
  Rng rng(4);
  const GeneratedGraph gg =
      make_grid({8, 8}, WeightModel::uniform(2.0, 5.0), rng);
  for (const EdgeTriple& e : gg.graph.edge_list()) {
    EXPECT_GE(e.weight, 2.0);
    EXPECT_LT(e.weight, 5.0);
  }
}

TEST(Generators, MixedSignHasNegativeEdgesButNoNegativeCycle) {
  Rng rng(5);
  const GeneratedGraph gg =
      make_grid({6, 6}, WeightModel::mixed_sign(10.0), rng);
  bool any_negative = false;
  for (const EdgeTriple& e : gg.graph.edge_list()) {
    any_negative = any_negative || e.weight < 0;
  }
  EXPECT_TRUE(any_negative);
  const BellmanFordResult bf = bellman_ford(gg.graph, 0);
  EXPECT_FALSE(bf.negative_cycle);
}

TEST(Generators, TriangulatedGridIsPlanarSized) {
  Rng rng(6);
  const GeneratedGraph gg =
      make_triangulated_grid(6, 7, WeightModel::unit(), rng);
  const std::size_t n = gg.graph.num_vertices();
  EXPECT_EQ(n, 42u);
  const Skeleton s(gg.graph);
  EXPECT_TRUE(is_connected(s));
  // Planar: undirected edges <= 3n - 6.
  EXPECT_LE(s.num_edges(), 3 * n - 6);
  EXPECT_EQ(gg.coords.size(), n);
}

TEST(Generators, RandomTreeHasExactlyNMinus1Edges) {
  Rng rng(7);
  const GeneratedGraph gg = make_random_tree(100, WeightModel::unit(), rng);
  const Skeleton s(gg.graph);
  EXPECT_EQ(s.num_edges(), 99u);
  EXPECT_TRUE(is_connected(s));
}

TEST(Generators, PartialKTreeConnectedAndBounded) {
  Rng rng(8);
  const GeneratedGraph gg =
      make_partial_ktree(200, 3, 0.5, WeightModel::unit(), rng);
  EXPECT_EQ(gg.graph.num_vertices(), 200u);
  const Skeleton s(gg.graph);
  EXPECT_TRUE(is_connected(s));
  // A k-tree has at most kn edges.
  EXPECT_LE(s.num_edges(), 3u * 200u);
}

TEST(Generators, RandomDigraphHasNoSelfLoops) {
  Rng rng(9);
  const GeneratedGraph gg =
      make_random_digraph(50, 400, WeightModel::uniform(0, 1), rng);
  EXPECT_EQ(gg.graph.num_vertices(), 50u);
  EXPECT_LE(gg.graph.num_edges(), 400u);  // dedup may merge
  for (const EdgeTriple& e : gg.graph.edge_list()) {
    EXPECT_NE(e.from, e.to);
  }
}

TEST(Generators, CyclePathComplete) {
  Rng rng(10);
  const GeneratedGraph cyc = make_cycle(8, WeightModel::unit(), rng);
  EXPECT_EQ(cyc.graph.num_edges(), 8u);
  const GeneratedGraph path = make_path(8, WeightModel::unit(), rng);
  EXPECT_EQ(path.graph.num_edges(), 7u);
  const GeneratedGraph bi = make_path(8, WeightModel::unit(), rng, true);
  EXPECT_EQ(bi.graph.num_edges(), 14u);
  const GeneratedGraph k4 = make_complete(4, WeightModel::unit(), rng);
  EXPECT_EQ(k4.graph.num_edges(), 12u);
}

TEST(Generators, DeterministicPerSeed) {
  Rng a(77), b(77);
  const GeneratedGraph g1 = make_grid({5, 5}, WeightModel::uniform(1, 9), a);
  const GeneratedGraph g2 = make_grid({5, 5}, WeightModel::uniform(1, 9), b);
  EXPECT_EQ(g1.graph.edge_list(), g2.graph.edge_list());
}

}  // namespace
}  // namespace sepsp
