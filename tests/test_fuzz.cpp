// Randomized differential testing ("fuzz"): many random instance
// configurations, each run through the full pipeline and compared with
// ground truth. Seeds are fixed, so failures reproduce exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/bellman_ford.hpp"
#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "separator/cycle_separator.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

struct FuzzInstance {
  GeneratedGraph gg;
  SeparatorTree tree;
  bool negative = false;
};

FuzzInstance random_instance(std::uint64_t seed) {
  Rng rng(seed);
  FuzzInstance inst;
  const int weight_kind = static_cast<int>(rng.next_below(3));
  WeightModel wm = WeightModel::uniform(0.5, 12.0);
  if (weight_kind == 1) wm = WeightModel::unit();
  if (weight_kind == 2) {
    wm = WeightModel::mixed_sign(6.0);
    inst.negative = true;
  }

  SeparatorFinder finder;
  switch (rng.next_below(6)) {
    case 0: {
      const std::size_t a = 4 + rng.next_below(10);
      const std::size_t b = 4 + rng.next_below(10);
      inst.gg = make_grid({a, b}, wm, rng);
      finder = make_grid_finder({a, b});
      break;
    }
    case 1: {
      const std::size_t side = 3 + rng.next_below(4);
      inst.gg = make_grid({side, side, side}, wm, rng);
      finder = make_grid_finder({side, side, side});
      break;
    }
    case 2: {
      inst.gg = make_random_tree(20 + rng.next_below(200), wm, rng);
      finder = make_tree_finder();
      break;
    }
    case 3: {
      const std::size_t r = 5 + rng.next_below(8);
      const std::size_t c = 5 + rng.next_below(8);
      inst.gg = make_triangulated_grid(r, c, wm, rng);
      finder = rng.next_bool() ? make_geometric_finder(inst.gg.coords)
                               : make_cycle_finder(inst.gg.coords);
      break;
    }
    case 4: {
      const std::size_t n = 40 + rng.next_below(120);
      inst.gg = make_random_digraph(n, 2 * n + rng.next_below(3 * n), wm, rng);
      finder = make_bfs_finder();
      break;
    }
    default: {
      inst.gg = make_unit_disk(80 + rng.next_below(250),
                               4.0 + rng.next_double(0, 6), wm, rng);
      finder = make_geometric_finder(inst.gg.coords);
      break;
    }
  }
  DecompositionOptions opts;
  opts.leaf_size = 2 + rng.next_below(12);
  inst.tree =
      build_separator_tree(Skeleton(inst.gg.graph), finder, opts);
  return inst;
}

TEST(Fuzz, FortyRandomConfigurations) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const FuzzInstance inst = random_instance(seed);
    const auto err = inst.tree.validate(Skeleton(inst.gg.graph));
    ASSERT_EQ(err, std::nullopt) << *err;

    Rng pick(seed * 31 + 7);
    typename SeparatorShortestPaths<>::Options opts;
    opts.build.builder =
        pick.next_bool() ? BuilderKind::kRecursive : BuilderKind::kDoubling;
    const auto engine =
        SeparatorShortestPaths<>::build(inst.gg.graph, inst.tree, opts);
    const auto source =
        static_cast<Vertex>(pick.next_below(inst.gg.graph.num_vertices()));
    const auto got = engine.distances(source);
    ASSERT_FALSE(got.negative_cycle);
    std::vector<double> want;
    if (inst.negative) {
      const BellmanFordResult bf = bellman_ford(inst.gg.graph, source);
      ASSERT_FALSE(bf.negative_cycle);
      want = bf.dist;
    } else {
      want = dijkstra(inst.gg.graph, source).dist;
    }
    for (Vertex v = 0; v < inst.gg.graph.num_vertices(); ++v) {
      if (std::isinf(want[v])) {
        ASSERT_TRUE(std::isinf(got.dist[v])) << "v=" << v;
      } else {
        ASSERT_NEAR(got.dist[v], want[v], 1e-7) << "v=" << v;
      }
    }
  }
}

TEST(Fuzz, BatchedLanesAlwaysMatchScalarQueries) {
  // The batched kernel must be lane-for-lane bit-identical to the
  // scalar schedule on arbitrary instances — including ragged blocks
  // (the source count is rarely a multiple of the lane width) and
  // mixed-sign weights.
  for (std::uint64_t seed = 200; seed < 212; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const FuzzInstance inst = random_instance(seed);
    Rng pick(seed * 17 + 3);
    typename SeparatorShortestPaths<>::Options opts;
    opts.build.builder =
        pick.next_bool() ? BuilderKind::kRecursive : BuilderKind::kDoubling;
    const auto engine =
        SeparatorShortestPaths<>::build(inst.gg.graph, inst.tree, opts);
    std::vector<Vertex> sources;
    const std::size_t count = 3 + pick.next_below(15);
    for (std::size_t i = 0; i < count; ++i) {
      sources.push_back(
          static_cast<Vertex>(pick.next_below(inst.gg.graph.num_vertices())));
    }
    const auto batched = engine.distances_batch(sources);
    ASSERT_EQ(batched.size(), sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const auto scalar = engine.query_engine().run(sources[i]);
      ASSERT_EQ(batched[i].dist, scalar.dist) << "source " << sources[i];
      ASSERT_EQ(batched[i].negative_cycle, scalar.negative_cycle);
      ASSERT_EQ(batched[i].edges_scanned, scalar.edges_scanned);
      ASSERT_EQ(batched[i].phases, scalar.phases);
    }
  }
}

TEST(Fuzz, RandomInjectedNegativeCyclesAreAlwaysDetected) {
  for (std::uint64_t seed = 100; seed < 115; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    const std::size_t side = 5 + rng.next_below(6);
    GeneratedGraph gg =
        make_grid({side, side}, WeightModel::uniform(1, 8), rng);
    // Inject a random directed cycle with clearly negative total weight.
    GraphBuilder b(gg.graph.num_vertices());
    b.add_edges(gg.graph.edge_list());
    const std::size_t len = 2 + rng.next_below(4);
    std::vector<Vertex> cyc;
    for (std::size_t i = 0; i < len; ++i) {
      cyc.push_back(
          static_cast<Vertex>(rng.next_below(gg.graph.num_vertices())));
    }
    std::sort(cyc.begin(), cyc.end());
    cyc.erase(std::unique(cyc.begin(), cyc.end()), cyc.end());
    if (cyc.size() < 2) continue;
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      const double w = i == 0 ? -20.0 * static_cast<double>(cyc.size()) : 1.0;
      b.add_edge(cyc[i], cyc[(i + 1) % cyc.size()], w);
    }
    const Digraph g = std::move(b).build();
    const SeparatorTree tree = build_separator_tree(
        Skeleton(g), make_grid_finder({side, side}));
    const auto engine = SeparatorShortestPaths<>::build(g, tree);
    // Any source that reaches the cycle must flag it; cyc[0] trivially
    // does.
    EXPECT_TRUE(engine.distances(cyc[0]).negative_cycle);
    EXPECT_TRUE(bellman_ford(g, cyc[0]).negative_cycle);
  }
}

}  // namespace
}  // namespace sepsp
