// Reachability engine (Boolean E+ via bit-matrix kernels) against BFS
// and the dense transitive closure.
#include <gtest/gtest.h>

#include "baseline/reach.hpp"
#include "core/reachability.hpp"
#include "graph/generators.hpp"
#include "separator/finders.hpp"

namespace sepsp {
namespace {

void check_engine_against_bfs(const Digraph& g, const SeparatorTree& tree,
                              std::span<const Vertex> sources) {
  const ReachabilityEngine engine = ReachabilityEngine::build(g, tree);
  for (const Vertex s : sources) {
    const auto got = engine.reachable_from(s);
    const auto want = bfs_reachable(g, s);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(got[v], want[v]) << "source " << s << " target " << v;
    }
  }
}

TEST(Reachability, DirectedGridWithRandomOrientation) {
  // Random subset of arcs of a grid: rich unreachable structure.
  Rng rng(1);
  const GeneratedGraph full = make_grid({9, 9}, WeightModel::unit(), rng);
  GraphBuilder b(full.graph.num_vertices());
  for (const EdgeTriple& e : full.graph.edge_list()) {
    if (rng.next_bool(0.6)) b.add_edge(e.from, e.to, 1.0);
  }
  const Digraph g = std::move(b).build();
  const SeparatorTree tree =
      build_separator_tree(Skeleton(g), make_bfs_finder());
  const std::vector<Vertex> sources{0, 12, 40, 66, 80};
  check_engine_against_bfs(g, tree, sources);
}

TEST(Reachability, OneWayCycleReachesEverything) {
  Rng rng(2);
  const GeneratedGraph gg = make_cycle(64, WeightModel::unit(), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_bfs_finder());
  const ReachabilityEngine engine = ReachabilityEngine::build(gg.graph, tree);
  const auto reach = engine.reachable_from(17);
  for (Vertex v = 0; v < 64; ++v) EXPECT_TRUE(reach[v]);
}

TEST(Reachability, DagLayers) {
  // A DAG: v -> v + 1 and v -> v + 8 on an 8x8 index space.
  GraphBuilder b(64);
  for (Vertex v = 0; v < 64; ++v) {
    if (v % 8 != 7) b.add_edge(v, v + 1, 1.0);
    if (v + 8 < 64) b.add_edge(v, v + 8, 1.0);
  }
  const Digraph g = std::move(b).build();
  const SeparatorTree tree =
      build_separator_tree(Skeleton(g), make_grid_finder({8, 8}));
  const std::vector<Vertex> sources{0, 9, 27, 63};
  check_engine_against_bfs(g, tree, sources);
}

TEST(Reachability, SparseRandomDigraphs) {
  Rng rng(3);
  for (int trial = 0; trial < 3; ++trial) {
    const GeneratedGraph gg =
        make_random_digraph(120, 200 + 60 * trial, WeightModel::unit(), rng);
    const SeparatorTree tree =
        build_separator_tree(Skeleton(gg.graph), make_bfs_finder());
    const std::vector<Vertex> sources{0, 60, 119};
    check_engine_against_bfs(gg.graph, tree, sources);
  }
}

TEST(Reachability, AugmentationUsesBooleanShortcuts) {
  Rng rng(4);
  const GeneratedGraph gg = make_grid({8, 8}, WeightModel::unit(), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_grid_finder({8, 8}));
  const auto aug = build_reachability_augmentation(gg.graph, tree);
  EXPECT_GT(aug.shortcuts.size(), 0u);
  for (const auto& e : aug.shortcuts) {
    EXPECT_EQ(e.value, BooleanSR::one());
    EXPECT_TRUE(aug.levels.defined(e.from));
    EXPECT_TRUE(aug.levels.defined(e.to));
  }
}

TEST(Reachability, MatchesDenseClosureEverywhere) {
  Rng rng(5);
  const GeneratedGraph gg =
      make_random_digraph(60, 120, WeightModel::unit(), rng);
  const SeparatorTree tree =
      build_separator_tree(Skeleton(gg.graph), make_bfs_finder());
  const ReachabilityEngine engine =
      ReachabilityEngine::build(gg.graph, tree);
  const BitMatrix closure = transitive_closure_dense(gg.graph);
  for (Vertex s = 0; s < 60; s += 7) {
    const auto reach = engine.reachable_from(s);
    for (Vertex v = 0; v < 60; ++v) {
      ASSERT_EQ(reach[v] != 0, closure.get(s, v));
    }
  }
}

}  // namespace
}  // namespace sepsp
