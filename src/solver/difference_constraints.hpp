// Difference-constraint systems on top of the separator engine.
//
// The paper's application (Section 1): systems of linear inequalities
// with two variables per inequality solve faster when the underlying
// constraint graph has a separator decomposition, because the Cohen–
// Megiddo machinery spends its time in an all-pairs shortest-path
// oracle. This module implements the difference special case end to end
// (DESIGN.md substitution 5): constraints  x_j - x_i <= c  map to arcs
// i -> j of weight c; the system is feasible iff the graph has no
// negative cycle, and x = (distances from a virtual source) is a
// solution. The virtual source is realized as a multi-source engine run,
// which keeps the constraint graph — and hence its separator
// decomposition — unmodified.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/engine.hpp"
#include "graph/digraph.hpp"
#include "separator/decomposition.hpp"

namespace sepsp {

/// One constraint: x[j] - x[i] <= c.
struct DifferenceConstraint {
  std::uint32_t i = 0;
  std::uint32_t j = 0;
  double c = 0;
};

/// Solver outcome.
struct DifferenceSolution {
  bool feasible = false;
  /// A satisfying assignment when feasible (empty otherwise).
  std::vector<double> x;
  /// When infeasible: the variable indices of a negative-weight
  /// constraint cycle (a certificate: summing its constraints yields
  /// 0 <= negative).
  std::vector<std::uint32_t> certificate;
};

/// A system over `num_variables` variables.
class DifferenceSystem {
 public:
  explicit DifferenceSystem(std::size_t num_variables)
      : num_variables_(num_variables) {}

  void add(std::uint32_t i, std::uint32_t j, double c) {
    SEPSP_CHECK(i < num_variables_ && j < num_variables_);
    constraints_.push_back({i, j, c});
  }

  std::size_t num_variables() const { return num_variables_; }
  std::size_t num_constraints() const { return constraints_.size(); }

  /// The constraint graph (arc i -> j of weight c per constraint).
  Digraph constraint_graph() const;

  /// Solves using the separator engine: builds (or accepts) a
  /// decomposition of the constraint graph, preprocesses E+, runs one
  /// multi-source query. The engine path is what the paper's bound
  /// O(n^{1+2mu} + mn) refers to.
  DifferenceSolution solve(const SeparatorTree* tree = nullptr,
                           BuilderKind builder = BuilderKind::kRecursive) const;

  /// Reference solver (Bellman–Ford with an explicit virtual source);
  /// used by tests to cross-check the engine path.
  DifferenceSolution solve_reference() const;

 private:
  DifferenceSolution extract_certificate(const Digraph& g) const;

  std::size_t num_variables_;
  std::vector<DifferenceConstraint> constraints_;
};

}  // namespace sepsp
