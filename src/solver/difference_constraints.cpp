#include "solver/difference_constraints.hpp"

#include <algorithm>
#include <limits>

#include "baseline/bellman_ford.hpp"
#include "baseline/negative_cycle.hpp"
#include "separator/finders.hpp"

namespace sepsp {

Digraph DifferenceSystem::constraint_graph() const {
  GraphBuilder builder(num_variables_);
  for (const DifferenceConstraint& c : constraints_) {
    builder.add_edge(c.i, c.j, c.c);
  }
  return std::move(builder).build();
}

DifferenceSolution DifferenceSystem::solve(const SeparatorTree* tree,
                                           BuilderKind builder) const {
  const Digraph g = constraint_graph();
  SeparatorTree local_tree;
  if (tree == nullptr) {
    const Skeleton skel(g);
    local_tree = build_separator_tree(skel, make_auto_finder(skel));
    tree = &local_tree;
  }
  typename SeparatorShortestPaths<TropicalD>::Options opts;
  opts.build.builder = builder;
  const auto engine = SeparatorShortestPaths<TropicalD>::build(g, *tree, opts);

  // Virtual source with 0-arcs to every variable == all-ones multi-source.
  std::vector<Vertex> all(num_variables_);
  for (Vertex v = 0; v < num_variables_; ++v) all[v] = v;
  const QueryResult<TropicalD> r = engine.query_engine().run_multi(all);
  if (r.negative_cycle) return extract_certificate(g);

  DifferenceSolution sol;
  sol.feasible = true;
  sol.x = r.dist;  // every vertex is a seed, so every x is finite
  return sol;
}

DifferenceSolution DifferenceSystem::solve_reference() const {
  const Digraph g = constraint_graph();
  const std::size_t n = num_variables_;
  GraphBuilder builder(n + 1);
  builder.add_edges(g.edge_list());
  for (Vertex v = 0; v < n; ++v) {
    builder.add_edge(static_cast<Vertex>(n), v, 0.0);
  }
  const Digraph ext = std::move(builder).build(/*dedup_min=*/false);
  const BellmanFordResult bf = bellman_ford(ext, static_cast<Vertex>(n));
  if (bf.negative_cycle) return extract_certificate(g);
  DifferenceSolution sol;
  sol.feasible = true;
  sol.x.assign(bf.dist.begin(), bf.dist.begin() + static_cast<long>(n));
  return sol;
}

DifferenceSolution DifferenceSystem::extract_certificate(
    const Digraph& g) const {
  DifferenceSolution sol;
  sol.feasible = false;
  const auto cycle = find_negative_cycle(g);
  SEPSP_CHECK_MSG(cycle.has_value(),
                  "certificate requested for a feasible system");
  sol.certificate.assign(cycle->begin(), cycle->end());
  return sol;
}

}  // namespace sepsp
