// Runtime dispatch of the SIMD kernel set (see simd.hpp).
//
// Tier availability is a compile-time fact (which tier TUs the build
// included — SEPSP_SIMD_HAS_* come from src/semiring/CMakeLists.txt);
// tier usability is a runtime fact (CPUID). The table below wires every
// Tier index to the best compiled tier at or below it, so dispatch can
// index with any Tier value; detection clamps the active tier to what
// the machine actually runs.

#include "semiring/simd.hpp"

#include "obs/obs.hpp"
#include "util/env.hpp"

namespace sepsp::simd {

namespace kernels {

// Per-tier kernel symbols (defined in simd_<tier>.cpp via
// simd_kernels.inc). Declarations stamped per suffix.
#define SEPSP_SIMD_DECLARE_TIER(SUF)                                          \
  void tile_row_minplus_d_##SUF(double*, const double*, double, std::size_t); \
  int combine_row_minplus_d_##SUF(double*, const double*, std::size_t);       \
  void sweep_minplus_d_##SUF(double*, const std::uint32_t*,                   \
                             const std::uint32_t*, const double*,             \
                             std::size_t, std::size_t);                       \
  void sweep_tracked_minplus_d_##SUF(double*, const std::uint32_t*,           \
                                     const std::uint32_t*, const double*,     \
                                     std::size_t, std::size_t,                \
                                     std::uint8_t*);                          \
  void tile_row_minplus_i_##SUF(long long*, const long long*, long long,      \
                                std::size_t);                                 \
  int combine_row_minplus_i_##SUF(long long*, const long long*, std::size_t); \
  void sweep_minplus_i_##SUF(long long*, const std::uint32_t*,                \
                             const std::uint32_t*, const long long*,          \
                             std::size_t, std::size_t);                       \
  void sweep_tracked_minplus_i_##SUF(long long*, const std::uint32_t*,        \
                                     const std::uint32_t*, const long long*,  \
                                     std::size_t, std::size_t,                \
                                     std::uint8_t*);                          \
  void tile_row_maxmin_d_##SUF(double*, const double*, double, std::size_t);  \
  int combine_row_maxmin_d_##SUF(double*, const double*, std::size_t);        \
  void sweep_maxmin_d_##SUF(double*, const std::uint32_t*,                    \
                            const std::uint32_t*, const double*, std::size_t, \
                            std::size_t);                                     \
  void sweep_tracked_maxmin_d_##SUF(double*, const std::uint32_t*,            \
                                    const std::uint32_t*, const double*,      \
                                    std::size_t, std::size_t, std::uint8_t*); \
  void tile_row_orand_b_##SUF(unsigned char*, const unsigned char*,           \
                              unsigned char, std::size_t);                    \
  int combine_row_orand_b_##SUF(unsigned char*, const unsigned char*,         \
                                std::size_t);                                 \
  void sweep_orand_b_##SUF(unsigned char*, const std::uint32_t*,              \
                           const std::uint32_t*, const unsigned char*,        \
                           std::size_t, std::size_t);                         \
  void sweep_tracked_orand_b_##SUF(unsigned char*, const std::uint32_t*,      \
                                   const std::uint32_t*,                      \
                                   const unsigned char*, std::size_t,         \
                                   std::size_t, std::uint8_t*);

SEPSP_SIMD_DECLARE_TIER(scalar)
#if defined(SEPSP_SIMD_HAS_V128)
SEPSP_SIMD_DECLARE_TIER(v128)
#endif
#if defined(SEPSP_SIMD_HAS_AVX2)
SEPSP_SIMD_DECLARE_TIER(avx2)
#endif
#if defined(SEPSP_SIMD_HAS_AVX512)
SEPSP_SIMD_DECLARE_TIER(avx512)
#endif
#undef SEPSP_SIMD_DECLARE_TIER

}  // namespace kernels

namespace {

#define SEPSP_SIMD_TIER_TABLE(SUF)                                           \
  KernelTable {                                                              \
    &kernels::tile_row_minplus_d_##SUF, &kernels::combine_row_minplus_d_##SUF, \
        &kernels::sweep_minplus_d_##SUF,                                     \
        &kernels::sweep_tracked_minplus_d_##SUF,                             \
        &kernels::tile_row_minplus_i_##SUF,                                  \
        &kernels::combine_row_minplus_i_##SUF,                               \
        &kernels::sweep_minplus_i_##SUF,                                     \
        &kernels::sweep_tracked_minplus_i_##SUF,                             \
        &kernels::tile_row_maxmin_d_##SUF,                                   \
        &kernels::combine_row_maxmin_d_##SUF, &kernels::sweep_maxmin_d_##SUF, \
        &kernels::sweep_tracked_maxmin_d_##SUF,                              \
        &kernels::tile_row_orand_b_##SUF, &kernels::combine_row_orand_b_##SUF, \
        &kernels::sweep_orand_b_##SUF, &kernels::sweep_tracked_orand_b_##SUF \
  }

// Indexed by Tier; tiers not compiled in alias the best lower tier.
const KernelTable kTables[4] = {
    SEPSP_SIMD_TIER_TABLE(scalar),
#if defined(SEPSP_SIMD_HAS_V128)
    SEPSP_SIMD_TIER_TABLE(v128),
#else
    SEPSP_SIMD_TIER_TABLE(scalar),
#endif
#if defined(SEPSP_SIMD_HAS_AVX2)
    SEPSP_SIMD_TIER_TABLE(avx2),
#elif defined(SEPSP_SIMD_HAS_V128)
    SEPSP_SIMD_TIER_TABLE(v128),
#else
    SEPSP_SIMD_TIER_TABLE(scalar),
#endif
#if defined(SEPSP_SIMD_HAS_AVX512)
    SEPSP_SIMD_TIER_TABLE(avx512),
#elif defined(SEPSP_SIMD_HAS_AVX2)
    SEPSP_SIMD_TIER_TABLE(avx2),
#elif defined(SEPSP_SIMD_HAS_V128)
    SEPSP_SIMD_TIER_TABLE(v128),
#else
    SEPSP_SIMD_TIER_TABLE(scalar),
#endif
};
#undef SEPSP_SIMD_TIER_TABLE

constexpr Tier min_tier(Tier a, Tier b) {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

/// Active-tier slot: -1 = not yet resolved. Resolved lazily on first
/// kernel dispatch (detection + SEPSP_FORCE_ISA), overridable any time
/// via force_tier().
std::atomic<int> g_active{-1};

void publish_tier_gauge(Tier t) {
  SEPSP_OBS_ONLY(obs::gauge("simd.tier").set(static_cast<std::int64_t>(t));)
  (void)t;
}

Tier initial_tier() {
  Tier t = detected_tier();
  const std::string forced = env_string("SEPSP_FORCE_ISA", "");
  Tier want;
  if (!forced.empty() && parse_tier(forced, &want)) {
    // Forcing can only lower: a tier the machine cannot run (or the
    // build does not contain) clamps down to the best available.
    t = min_tier(t, want);
  }
  return t;
}

}  // namespace

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse:
      return "sse";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "scalar";
}

bool parse_tier(std::string_view name, Tier* out) {
  if (name == "scalar") {
    *out = Tier::kScalar;
  } else if (name == "sse" || name == "v128") {
    *out = Tier::kSse;
  } else if (name == "avx2") {
    *out = Tier::kAvx2;
  } else if (name == "avx512") {
    *out = Tier::kAvx512;
  } else {
    return false;
  }
  return true;
}

bool compiled_in() {
#if defined(SEPSP_SIMD_ENABLED)
  return true;
#else
  return false;
#endif
}

Tier compiled_tier() {
#if defined(SEPSP_SIMD_HAS_AVX512)
  return Tier::kAvx512;
#elif defined(SEPSP_SIMD_HAS_AVX2)
  return Tier::kAvx2;
#elif defined(SEPSP_SIMD_HAS_V128)
  return Tier::kSse;
#else
  return Tier::kScalar;
#endif
}

Tier detected_tier() {
  static const Tier resolved = [] {
    // Generic 128-bit vectors are always runnable (base ABI on x86-64,
    // NEON or compiler-synthesized elsewhere); wider tiers need CPUID.
    Tier hw = Tier::kSse;
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl")) {
      hw = Tier::kAvx512;
    } else if (__builtin_cpu_supports("avx2")) {
      hw = Tier::kAvx2;
    }
#endif
    return min_tier(hw, compiled_tier());
  }();
  return resolved;
}

Tier active_tier() {
  int v = g_active.load(std::memory_order_relaxed);
  if (v < 0) {
    const Tier t = initial_tier();
    int expected = -1;
    if (g_active.compare_exchange_strong(expected, static_cast<int>(t),
                                         std::memory_order_relaxed)) {
      publish_tier_gauge(t);
      return t;
    }
    return static_cast<Tier>(expected);
  }
  return static_cast<Tier>(v);
}

Tier force_tier(Tier t) {
  const Tier clamped = min_tier(t, detected_tier());
  g_active.store(static_cast<int>(clamped), std::memory_order_relaxed);
  publish_tier_gauge(clamped);
  return clamped;
}

const KernelTable& table(Tier t) {
  return kTables[static_cast<std::size_t>(t)];
}

}  // namespace sepsp::simd
