// Path-algebra semirings.
//
// The paper (remark iii) notes the algorithm applies to general path
// problems over semirings; the core library is therefore templated on a
// `Semiring` policy providing:
//   Value            — element type
//   zero()           — identity of combine(); the "no path" value
//   one()            — identity of extend(); the "empty path" value
//   combine(a, b)    — choice among paths (min / or / max)
//   extend(a, b)     — path concatenation (+ / and / min)
//   improves(a, b)   — true iff combine(a, b) != a, i.e. b strictly
//                      betters a (drives relaxation convergence checks)
//   from_weight(w)   — maps a stored edge weight (double) into Value
//
// All instances here are idempotent (combine(a, a) == a), which is what
// Bellman–Ford-style relaxation and Floyd–Warshall require.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <limits>

namespace sepsp {

template <typename S>
concept Semiring = requires(typename S::Value a, typename S::Value b,
                            double w) {
  { S::zero() } -> std::same_as<typename S::Value>;
  { S::one() } -> std::same_as<typename S::Value>;
  { S::combine(a, b) } -> std::same_as<typename S::Value>;
  { S::extend(a, b) } -> std::same_as<typename S::Value>;
  { S::improves(a, b) } -> std::same_as<bool>;
  { S::from_weight(w) } -> std::same_as<typename S::Value>;
};

/// Min-plus ("tropical") semiring over doubles: shortest paths with
/// real-valued (possibly negative) weights. zero = +infinity.
struct TropicalD {
  using Value = double;
  static constexpr Value zero() {
    return std::numeric_limits<double>::infinity();
  }
  static constexpr Value one() { return 0.0; }
  static constexpr Value combine(Value a, Value b) { return a < b ? a : b; }
  static constexpr Value extend(Value a, Value b) {
    // +inf absorbs: avoids inf + (-inf) pitfalls (we never produce -inf).
    if (a == zero() || b == zero()) return zero();
    return a + b;
  }
  static constexpr bool improves(Value current, Value candidate) {
    return candidate < current;
  }
  /// extend() without the no-path guard — valid whenever b != zero(),
  /// which relaxation kernels guarantee for edge values (no-path edges
  /// are dropped at construction). Branch-free (IEEE: inf + finite =
  /// inf), so multi-lane relaxation loops vectorize.
  static constexpr Value extend_unguarded(Value a, Value b) { return a + b; }
  static constexpr Value from_weight(double w) { return w; }
  /// Relaxation can cycle indefinitely when negative cycles exist.
  static constexpr bool kDetectNegativeCycles = true;
  /// Tolerant improvement test for the negative-cycle probe: different
  /// summation orders of the same optimal path can differ by rounding, so
  /// only an improvement beyond relative epsilon certifies a cycle.
  static bool detect_improves(Value current, Value candidate) {
    if (current == zero()) return candidate < current;
    const double scale =
        std::max({1.0, current < 0 ? -current : current,
                  candidate < 0 ? -candidate : candidate});
    return candidate < current - 1e-7 * scale;
  }
};

/// Min-plus semiring over 64-bit integers; edge weights are rounded.
/// Useful for exact equality tests.
struct TropicalI {
  using Value = long long;
  static constexpr Value kInf = (1LL << 60);
  static constexpr Value zero() { return kInf; }
  static constexpr Value one() { return 0; }
  static constexpr Value combine(Value a, Value b) { return a < b ? a : b; }
  static constexpr Value extend(Value a, Value b) {
    if (a >= kInf || b >= kInf) return kInf;
    return a + b;
  }
  static constexpr bool improves(Value current, Value candidate) {
    return candidate < current;
  }
  /// Branch-free-selectable extend for b != zero(): dist values are
  /// either exact (< kInf) or exactly kInf, so one select saturates
  /// (kInf + negative b must not look reachable).
  static constexpr Value extend_unguarded(Value a, Value b) {
    return a == kInf ? kInf : a + b;
  }
  static Value from_weight(double w) { return static_cast<Value>(w); }
  static constexpr bool kDetectNegativeCycles = true;
  /// Integer arithmetic is exact: any improvement certifies a cycle.
  static constexpr bool detect_improves(Value current, Value candidate) {
    return candidate < current;
  }
};

/// Boolean (or-and) semiring: reachability / transitive closure.
/// Value is uint8_t (0/1) rather than bool so that matrices can hand out
/// references (std::vector<bool> is a proxy type).
struct BooleanSR {
  using Value = std::uint8_t;
  static constexpr Value zero() { return 0; }
  static constexpr Value one() { return 1; }
  static constexpr Value combine(Value a, Value b) { return a | b; }
  static constexpr Value extend(Value a, Value b) { return a & b; }
  static constexpr bool improves(Value current, Value candidate) {
    return candidate != 0 && current == 0;
  }
  static constexpr Value from_weight(double) { return 1; }
  static constexpr bool kDetectNegativeCycles = false;
};

/// Bottleneck (max-min) semiring: widest paths. Edge weights are
/// capacities; a path's value is its narrowest edge; among paths we take
/// the widest. zero = -infinity ("no path"), one = +infinity.
struct BottleneckSR {
  using Value = double;
  static constexpr Value zero() {
    return -std::numeric_limits<double>::infinity();
  }
  static constexpr Value one() {
    return std::numeric_limits<double>::infinity();
  }
  static constexpr Value combine(Value a, Value b) { return a > b ? a : b; }
  static constexpr Value extend(Value a, Value b) { return a < b ? a : b; }
  static constexpr bool improves(Value current, Value candidate) {
    return candidate > current;
  }
  static constexpr Value from_weight(double w) { return w; }
  static constexpr bool kDetectNegativeCycles = false;
};

static_assert(Semiring<TropicalD>);
static_assert(Semiring<TropicalI>);
static_assert(Semiring<BooleanSR>);
static_assert(Semiring<BottleneckSR>);

/// True when S ships a branch-free extend_unguarded() specialization.
template <typename S>
concept HasUnguardedExtend = requires(typename S::Value a, typename S::Value b) {
  { S::extend_unguarded(a, b) } -> std::same_as<typename S::Value>;
};

/// extend() for relaxation hot loops: selects the semiring's branch-free
/// extend_unguarded() when it exists, else the guarded extend(). Valid
/// whenever b != zero(), which every relaxation kernel guarantees for
/// edge values (no-path entries are dropped when buckets are built);
/// bit-identical to extend() on all such inputs (test_semiring enforces
/// the equivalence). This is the single home of the guarded/unguarded
/// selection shared by the scalar, lane-batched, and SIMD kernels —
/// do not re-derive it at call sites.
template <Semiring S>
constexpr typename S::Value relax_extend(typename S::Value a,
                                         typename S::Value b) {
  if constexpr (HasUnguardedExtend<S>) {
    return S::extend_unguarded(a, b);
  } else {
    return S::extend(a, b);
  }
}

}  // namespace sepsp
