// Dense matrices over a semiring, with the kernels the paper's builders
// need:
//   * semiring matrix product, rectangular (the B x S / S x B three-hop
//     composition of Algorithm 4.1 and the "path doubling" step of
//     Algorithm 4.3)
//   * Floyd–Warshall closure (sequential-in-k baseline kernel)
//   * repeated squaring closure (polylog-depth APSP; also the NC
//     all-pairs baseline whose O(n^3) work is the transitive-closure
//     bottleneck the paper attacks)
//
// The public kernels are cache-blocked: work is tiled into kKernelTile
// square tiles dispatched as tasks on the work-stealing pool (so a
// single large closure — e.g. the root separator clique — parallelizes
// even when it is the only node at its tree level), with row pointers
// hoisted out of the inner loops and no per-cell bounds checks on the
// hot path. The element-at-a-time reference kernels (multiply_reference
// & friends) are kept for the parity suite (tests/test_kernels.cpp) and
// the naive-vs-blocked rows of bench_x_kernels; blocked and reference
// kernels produce bit-identical results (identical combine order per
// cell for multiply/square; identical values for Floyd–Warshall, where
// cross-tile association of float sums is exercised with exact integer
// weights — see docs/ALGORITHMS.md "Execution substrate & kernel
// blocking").
//
// All kernels charge the PRAM cost model exactly as the reference
// versions do: work = cell updates, depth = phases (a product counts as
// one round of depth ceil(log2 k) combining; Floyd–Warshall charges its
// honest sequential-k depth). Blocking changes the schedule, not the
// model.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "obs/obs.hpp"
#include "pram/cost_model.hpp"
#include "pram/thread_pool.hpp"
#include "semiring/semiring.hpp"
#include "semiring/simd.hpp"
#include "util/check.hpp"

namespace sepsp {

/// Tile edge of the blocked kernels: 64x64 doubles = 32 KiB per tile, so
/// the three tiles a product touches stay L2-resident.
inline constexpr std::size_t kKernelTile = 64;

/// Test/bench hook: when false, the public kernels dispatch to the
/// element-at-a-time reference implementations. Bit-identical results
/// either way (the parity suite enforces it); flip only to measure or
/// to cross-check.
inline std::atomic<bool>& blocked_kernels_enabled() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

/// Row-major rows x cols matrix of semiring values, initialized to
/// zero() ("no path").
template <Semiring S>
class Matrix {
 public:
  using Value = typename S::Value;

  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), cells_(rows * cols, S::zero()) {}
  explicit Matrix(std::size_t n) : Matrix(n, n) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m.at(i, i) = S::one();
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool is_square() const { return rows_ == cols_; }

  Value& at(std::size_t i, std::size_t j) {
    SEPSP_DCHECK(i < rows_ && j < cols_);
    return cells_[i * cols_ + j];
  }
  const Value& at(std::size_t i, std::size_t j) const {
    SEPSP_DCHECK(i < rows_ && j < cols_);
    return cells_[i * cols_ + j];
  }

  /// Flat row pointers for the blocked kernels (no per-cell checks).
  Value* row(std::size_t i) { return cells_.data() + i * cols_; }
  const Value* row(std::size_t i) const { return cells_.data() + i * cols_; }

  /// combine-assign: at(i,j) = combine(at(i,j), v).
  void merge(std::size_t i, std::size_t j, Value v) {
    Value& cell = at(i, j);
    cell = S::combine(cell, v);
  }

  /// Re-shapes to rows x cols of zero(), reusing the existing storage —
  /// the scratch-arena path of the builders: no allocation once the
  /// buffer has grown to the high-water mark.
  void reset(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    cells_.assign(rows * cols, S::zero());
  }
  void reset(std::size_t n) { reset(n, n); }

  /// Releases the storage (free child matrices once a parent consumed
  /// them — Algorithm 4.1 keeps only one tree level alive).
  void clear() {
    rows_ = cols_ = 0;
    cells_.clear();
    cells_.shrink_to_fit();
  }

  bool operator==(const Matrix& rhs) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Value> cells_;
};

namespace detail {

#if SEPSP_OBS_ENABLED
// Kernel observability, charged once per kernel call (never per cell):
// tile tasks executed and cell updates issued. bench_x_kernels derives
// cells/sec from the latter.
struct KernelObs {
  obs::Counter& tiles = obs::counter("kernel.tiles");
  obs::Counter& cells = obs::counter("kernel.cells");
  obs::Counter& vcells = obs::counter("simd.cells");
  static KernelObs& get() {
    static KernelObs o;
    return o;
  }
};
#endif

inline std::size_t tiles_of(std::size_t n) {
  return (n + kKernelTile - 1) / kKernelTile;
}

/// Reference product: the seed's element-at-a-time loop, serial. Kept
/// as the parity oracle and the bench baseline.
template <Semiring S>
void multiply_reference_into(const Matrix<S>& a, const Matrix<S>& b,
                             Matrix<S>& out) {
  const std::size_t rows = a.rows();
  const std::size_t mid = a.cols();
  const std::size_t cols = b.cols();
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t k = 0; k < mid; ++k) {
      const auto aik = a.at(i, k);
      if (!S::improves(S::zero(), aik)) continue;  // aik == zero: skip
      for (std::size_t j = 0; j < cols; ++j) {
        out.merge(i, j, S::extend(aik, b.at(k, j)));
      }
    }
  }
}

/// Blocked product: (row-tile, col-tile) tasks on the pool, k-tiles
/// innermost so per-cell combine order matches the reference exactly
/// (k strictly ascending for every output cell -> bit-identical). The
/// register blocking is scalar-times-row: aik stays in a register while
/// the j-loop streams one b-row into one out-row, which GCC vectorizes
/// cleanly. (A 2-row-paired variant reusing each b-row for two output
/// rows measured ~40% SLOWER at -O3 — the branchy pair dispatch defeats
/// the vectorizer — so one row at a time it is.)
template <Semiring S>
void multiply_blocked_into(const Matrix<S>& a, const Matrix<S>& b,
                           Matrix<S>& out) {
  using Value = typename S::Value;
  const std::size_t rows = a.rows();
  const std::size_t mid = a.cols();
  const std::size_t cols = b.cols();
  constexpr std::size_t T = kKernelTile;
  const std::size_t row_tiles = tiles_of(rows);
  const std::size_t col_tiles = tiles_of(cols);
  pram::ThreadPool::global().parallel_for(
      0, row_tiles * col_tiles,
      [&](std::size_t tile) {
        const std::size_t i0 = (tile / col_tiles) * T;
        const std::size_t j0 = (tile % col_tiles) * T;
        const std::size_t i1 = std::min(rows, i0 + T);
        const std::size_t j1 = std::min(cols, j0 + T);
        for (std::size_t k0 = 0; k0 < mid; k0 += T) {
          const std::size_t k1 = std::min(mid, k0 + T);
          for (std::size_t i = i0; i < i1; ++i) {
            const Value* arow = a.row(i);
            Value* orow = out.row(i);
            for (std::size_t k = k0; k < k1; ++k) {
              const Value aik = arow[k];
              if (!S::improves(S::zero(), aik)) continue;
              const Value* brow = b.row(k);
              simd::tile_row<S>(orow + j0, brow + j0, aik, j1 - j0);
            }
          }
        }
      },
      /*grain=*/1);
  SEPSP_OBS_ONLY(
      KernelObs::get().tiles.add(row_tiles * col_tiles * tiles_of(mid));)
}

/// One Floyd–Warshall update sweep over the [i0,i1) x [j0,j1) block with
/// intermediates k in [k0,k1), k ascending outermost (the in-place FW
/// recursion order). Serial; callers parallelize across independent
/// blocks.
template <Semiring S>
void fw_sweep(Matrix<S>& m, std::size_t i0, std::size_t i1, std::size_t j0,
              std::size_t j1, std::size_t k0, std::size_t k1) {
  using Value = typename S::Value;
  for (std::size_t k = k0; k < k1; ++k) {
    const Value* krow = m.row(k);
    for (std::size_t i = i0; i < i1; ++i) {
      Value* irow = m.row(i);
      const Value mik = irow[k];
      if (!S::improves(S::zero(), mik)) continue;
      // When i == k the rows alias exactly; tile_row loads each chunk
      // before storing it, so per-cell semantics match the scalar loop
      // (which likewise reads krow[j] before writing irow[j]).
      simd::tile_row<S>(irow + j0, krow + j0, mik, j1 - j0);
    }
  }
}

/// Reference closure: the seed's sequential-in-k loop, serial over rows.
template <Semiring S>
void floyd_warshall_reference(Matrix<S>& m) {
  const std::size_t n = m.rows();
  for (std::size_t i = 0; i < n; ++i) m.merge(i, i, S::one());
  fw_sweep(m, 0, n, 0, n, 0, n);
}

/// Blocked closure: the classic three-phase tiling. Per k-panel, the
/// diagonal tile is closed first (it carries the in-panel dependency),
/// then the row and column panels (each tile depends only on itself and
/// the closed diagonal), then all interior tiles in parallel per
/// k-panel (each reads only the finished panels). Matrices that fit one
/// tile take the diagonal phase only, which IS the reference loop.
template <Semiring S>
void floyd_warshall_blocked(Matrix<S>& m) {
  const std::size_t n = m.rows();
  for (std::size_t i = 0; i < n; ++i) m.merge(i, i, S::one());
  constexpr std::size_t T = kKernelTile;
  const std::size_t nt = tiles_of(n);
  auto lo = [&](std::size_t t) { return t * T; };
  auto hi = [&](std::size_t t) { return std::min(n, t * T + T); };
  auto& pool = pram::ThreadPool::global();
  for (std::size_t kt = 0; kt < nt; ++kt) {
    const std::size_t k0 = lo(kt), k1 = hi(kt);
    // Phase 1: diagonal tile, in place.
    fw_sweep(m, k0, k1, k0, k1, k0, k1);
    if (nt == 1) break;
    // Phase 2: row panel (kt, j) and column panel (i, kt), all tiles
    // independent. Index 0..nt-2 maps to the non-diagonal tiles; the
    // first nt-1 are row-panel, the rest column-panel.
    pool.parallel_for(
        0, 2 * (nt - 1),
        [&](std::size_t x) {
          const bool is_row = x < nt - 1;
          std::size_t t = is_row ? x : x - (nt - 1);
          if (t >= kt) ++t;  // skip the diagonal
          if (is_row) {
            fw_sweep(m, k0, k1, lo(t), hi(t), k0, k1);
          } else {
            fw_sweep(m, lo(t), hi(t), k0, k1, k0, k1);
          }
        },
        /*grain=*/1);
    // Phase 3: interior tiles, all independent of each other.
    pool.parallel_for(
        0, (nt - 1) * (nt - 1),
        [&](std::size_t x) {
          std::size_t it = x / (nt - 1);
          std::size_t jt = x % (nt - 1);
          if (it >= kt) ++it;
          if (jt >= kt) ++jt;
          fw_sweep(m, lo(it), hi(it), lo(jt), hi(jt), k0, k1);
        },
        /*grain=*/1);
  }
  SEPSP_OBS_ONLY(detail::KernelObs::get().tiles.add(nt * nt * nt);)
}

}  // namespace detail

/// Semiring product a (x) b into `out` (re-shaped, storage reused); the
/// allocation-free spelling the builders' scratch arenas use.
/// O(rows * k * cols) work, depth ceil(log2 k) + 1 (EREW combining tree).
template <Semiring S>
void multiply_into(const Matrix<S>& a, const Matrix<S>& b, Matrix<S>& out) {
  SEPSP_CHECK(a.cols() == b.rows());
  out.reset(a.rows(), b.cols());
  if (blocked_kernels_enabled().load(std::memory_order_relaxed)) {
    detail::multiply_blocked_into(a, b, out);
  } else {
    detail::multiply_reference_into(a, b, out);
  }
  pram::CostMeter::charge_work(a.rows() * a.cols() * b.cols());
  pram::CostMeter::charge_depth(std::bit_width(a.cols()) + 1);
  SEPSP_OBS_ONLY({
    const std::size_t cells = a.rows() * a.cols() * b.cols();
    detail::KernelObs::get().cells.add(cells);
    if (blocked_kernels_enabled().load(std::memory_order_relaxed) &&
        simd::vector_dispatch_active<S>()) {
      detail::KernelObs::get().vcells.add(cells);
    }
  })
}

/// Semiring product a (x) b; a.cols() must equal b.rows().
template <Semiring S>
Matrix<S> multiply(const Matrix<S>& a, const Matrix<S>& b) {
  Matrix<S> result;
  multiply_into(a, b, result);
  return result;
}

/// In-place "path doubling" squaring step: M = combine(M, M (x) M),
/// with the product written into `scratch` (reused across calls — the
/// builders' doubling loop runs allocation-free at steady state) and
/// change detection fused into the combine pass.
/// Returns true if any cell changed (fixpoint detector).
template <Semiring S>
bool square_step(Matrix<S>& m, Matrix<S>& scratch) {
  SEPSP_CHECK(m.is_square());
  multiply_into(m, m, scratch);
  const std::size_t n = m.rows();
  std::atomic<bool> changed{false};
  pram::ThreadPool::global().parallel_blocks(
      0, n, [&](std::size_t lo, std::size_t hi) {
        bool local = false;
        for (std::size_t i = lo; i < hi; ++i) {
          if (simd::combine_row<S>(m.row(i), scratch.row(i), n)) local = true;
        }
        if (local) changed.store(true, std::memory_order_relaxed);
      });
  pram::CostMeter::charge_work(n * n);
  pram::CostMeter::charge_depth(1);
  SEPSP_OBS_ONLY(if (simd::vector_dispatch_active<S>()) {
    detail::KernelObs::get().vcells.add(n * n);
  })
  return changed.load(std::memory_order_relaxed);
}

/// Convenience overload allocating its own scratch.
template <Semiring S>
bool square_step(Matrix<S>& m) {
  Matrix<S> scratch;
  return square_step(m, scratch);
}

/// Floyd–Warshall closure in place: at(i,j) becomes the best path value
/// from i to j through any intermediates. With S = TropicalD this is
/// APSP; diagonal cells below one() certify negative cycles.
/// O(n^3) work, depth n (sequential in k, tiles parallel per k-panel).
template <Semiring S>
void floyd_warshall(Matrix<S>& m) {
  SEPSP_CHECK(m.is_square());
  const std::size_t n = m.rows();
  if (blocked_kernels_enabled().load(std::memory_order_relaxed)) {
    detail::floyd_warshall_blocked(m);
  } else {
    detail::floyd_warshall_reference(m);
  }
  pram::CostMeter::charge_work(n * n * n);
  pram::CostMeter::charge_depth(n);
  SEPSP_OBS_ONLY(if (simd::vector_dispatch_active<S>()) {
    detail::KernelObs::get().vcells.add(n * n * n);
  })
}

/// Closure by repeated squaring: at most ceil(log2(n-1)) squarings (or
/// until fixpoint). Polylog depth; the extra log factor of work is the
/// one in the paper's n^{3 mu} log n preprocessing bound. `scratch`
/// backs the squaring products (reused across the steps and, via the
/// builders' arenas, across tree nodes).
template <Semiring S>
void closure_by_squaring_inplace(Matrix<S>& m, Matrix<S>& scratch) {
  SEPSP_CHECK(m.is_square());
  const std::size_t n = m.rows();
  for (std::size_t i = 0; i < n; ++i) m.merge(i, i, S::one());
  if (n <= 2) return;
  const std::size_t steps = std::bit_width(n - 2);  // ceil(log2(n-1))
  for (std::size_t s = 0; s < steps; ++s) {
    if (!square_step(m, scratch)) break;
  }
}

template <Semiring S>
Matrix<S> closure_by_squaring(Matrix<S> m) {
  Matrix<S> scratch;
  closure_by_squaring_inplace(m, scratch);
  return m;
}

}  // namespace sepsp
