// Dense matrices over a semiring, with the kernels the paper's builders
// need:
//   * semiring matrix product, rectangular (the B x S / S x B three-hop
//     composition of Algorithm 4.1 and the "path doubling" step of
//     Algorithm 4.3)
//   * Floyd–Warshall closure (sequential-in-k baseline kernel)
//   * repeated squaring closure (polylog-depth APSP; also the NC
//     all-pairs baseline whose O(n^3) work is the transitive-closure
//     bottleneck the paper attacks)
//
// All kernels charge the PRAM cost model: work = cell updates, depth =
// phases (a product counts as one round of depth ceil(log2 k) combining;
// Floyd–Warshall charges its honest sequential-k depth).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "pram/cost_model.hpp"
#include "pram/thread_pool.hpp"
#include "semiring/semiring.hpp"
#include "util/check.hpp"

namespace sepsp {

/// Row-major rows x cols matrix of semiring values, initialized to
/// zero() ("no path").
template <Semiring S>
class Matrix {
 public:
  using Value = typename S::Value;

  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), cells_(rows * cols, S::zero()) {}
  explicit Matrix(std::size_t n) : Matrix(n, n) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m.at(i, i) = S::one();
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool is_square() const { return rows_ == cols_; }

  Value& at(std::size_t i, std::size_t j) {
    SEPSP_DCHECK(i < rows_ && j < cols_);
    return cells_[i * cols_ + j];
  }
  const Value& at(std::size_t i, std::size_t j) const {
    SEPSP_DCHECK(i < rows_ && j < cols_);
    return cells_[i * cols_ + j];
  }

  /// combine-assign: at(i,j) = combine(at(i,j), v).
  void merge(std::size_t i, std::size_t j, Value v) {
    Value& cell = at(i, j);
    cell = S::combine(cell, v);
  }

  /// Releases the storage (free child matrices once a parent consumed
  /// them — Algorithm 4.1 keeps only one tree level alive).
  void clear() {
    rows_ = cols_ = 0;
    cells_.clear();
    cells_.shrink_to_fit();
  }

  bool operator==(const Matrix& rhs) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Value> cells_;
};

/// Semiring product a (x) b; a.cols() must equal b.rows().
/// O(rows * k * cols) work, depth ceil(log2 k) + 1 (EREW combining tree).
template <Semiring S>
Matrix<S> multiply(const Matrix<S>& a, const Matrix<S>& b) {
  SEPSP_CHECK(a.cols() == b.rows());
  const std::size_t rows = a.rows();
  const std::size_t mid = a.cols();
  const std::size_t cols = b.cols();
  Matrix<S> result(rows, cols);
  pram::ThreadPool::global().parallel_for(0, rows, [&](std::size_t i) {
    for (std::size_t k = 0; k < mid; ++k) {
      const auto aik = a.at(i, k);
      if (!S::improves(S::zero(), aik)) continue;  // aik == zero: skip
      for (std::size_t j = 0; j < cols; ++j) {
        result.merge(i, j, S::extend(aik, b.at(k, j)));
      }
    }
  });
  pram::CostMeter::charge_work(rows * mid * cols);
  pram::CostMeter::charge_depth(std::bit_width(mid) + 1);
  return result;
}

/// In-place "path doubling" squaring step: M = combine(M, M (x) M).
/// Returns true if any cell changed (fixpoint detector).
template <Semiring S>
bool square_step(Matrix<S>& m) {
  SEPSP_CHECK(m.is_square());
  Matrix<S> next = multiply(m, m);
  const std::size_t n = m.rows();
  bool changed = false;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (S::improves(m.at(i, j), next.at(i, j))) changed = true;
      m.merge(i, j, next.at(i, j));
    }
  }
  pram::CostMeter::charge_work(n * n);
  pram::CostMeter::charge_depth(1);
  return changed;
}

/// Floyd–Warshall closure in place: at(i,j) becomes the best path value
/// from i to j through any intermediates. With S = TropicalD this is
/// APSP; diagonal cells below one() certify negative cycles.
/// O(n^3) work, depth n (sequential in k, parallel over rows).
template <Semiring S>
void floyd_warshall(Matrix<S>& m) {
  SEPSP_CHECK(m.is_square());
  const std::size_t n = m.rows();
  for (std::size_t i = 0; i < n; ++i) m.merge(i, i, S::one());
  for (std::size_t k = 0; k < n; ++k) {
    pram::ThreadPool::global().parallel_for(0, n, [&](std::size_t i) {
      const auto mik = m.at(i, k);
      if (!S::improves(S::zero(), mik)) return;
      for (std::size_t j = 0; j < n; ++j) {
        m.merge(i, j, S::extend(mik, m.at(k, j)));
      }
    });
  }
  pram::CostMeter::charge_work(n * n * n);
  pram::CostMeter::charge_depth(n);
}

/// Closure by repeated squaring: at most ceil(log2(n-1)) squarings (or
/// until fixpoint). Polylog depth; the extra log factor of work is the
/// one in the paper's n^{3 mu} log n preprocessing bound.
template <Semiring S>
Matrix<S> closure_by_squaring(Matrix<S> m) {
  SEPSP_CHECK(m.is_square());
  const std::size_t n = m.rows();
  for (std::size_t i = 0; i < n; ++i) m.merge(i, i, S::one());
  if (n <= 2) return m;
  const std::size_t steps = std::bit_width(n - 2);  // ceil(log2(n-1))
  for (std::size_t s = 0; s < steps; ++s) {
    if (!square_step(m)) break;
  }
  return m;
}

}  // namespace sepsp
