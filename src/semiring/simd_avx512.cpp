// 512-bit tier of the SIMD kernel set. This TU (and only this TU) is
// compiled with -mavx512{f,dq,bw,vl}; runtime CPUID dispatch guarantees
// none of these symbols is called on hardware without them.
#if defined(__AVX512F__)
#define SEPSP_SIMD_SUFFIX avx512
#define SEPSP_SIMD_VBYTES 64
#include "semiring/simd_kernels.inc"
#endif
