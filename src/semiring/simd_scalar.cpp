// Scalar tier of the SIMD kernel set — the bit-identity oracle every
// vector tier must reproduce. Compiled with the plain target flags.
#define SEPSP_SIMD_SUFFIX scalar
#define SEPSP_SIMD_VBYTES 0
#include "semiring/simd_kernels.inc"
