#include "semiring/semiring.hpp"

// Header-only module; this TU anchors the static library target.
namespace sepsp {
namespace {
[[maybe_unused]] constexpr double kAnchor = TropicalD::one();
}  // namespace
}  // namespace sepsp
