// 256-bit tier of the SIMD kernel set. This TU (and only this TU) is
// compiled with -mavx2; runtime CPUID dispatch guarantees none of these
// symbols is called on hardware without it.
#if defined(__AVX2__)
#define SEPSP_SIMD_SUFFIX avx2
#define SEPSP_SIMD_VBYTES 32
#include "semiring/simd_kernels.inc"
#endif
