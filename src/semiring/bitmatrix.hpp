// Packed Boolean matrices: 64 adjacency bits per machine word.
//
// This is the library's stand-in for the paper's fast Boolean matrix
// multiplication M(r) (Coppersmith–Winograd-style bounds are galactic;
// every practical system uses word-packed cubic kernels). Reachability
// variants of the builders route their separator-sized products through
// this type, so the "separator-sized products beat n-sized products"
// shape of the paper's reachability bounds is preserved.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace sepsp {

/// Row-major rows x cols bit matrix.
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::size_t rows, std::size_t cols);
  explicit BitMatrix(std::size_t n) : BitMatrix(n, n) {}

  static BitMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool is_square() const { return rows_ == cols_; }

  bool get(std::size_t i, std::size_t j) const {
    SEPSP_DCHECK(i < rows_ && j < cols_);
    return (words_[i * words_per_row_ + j / 64] >> (j % 64)) & 1u;
  }

  void set(std::size_t i, std::size_t j, bool value = true) {
    SEPSP_DCHECK(i < rows_ && j < cols_);
    const std::uint64_t bit = 1ULL << (j % 64);
    std::uint64_t& word = words_[i * words_per_row_ + j / 64];
    if (value) {
      word |= bit;
    } else {
      word &= ~bit;
    }
  }

  /// this |= rhs (elementwise; same shape).
  void merge(const BitMatrix& rhs);

  /// Boolean product this (x) rhs (cols() must equal rhs.rows()).
  /// O(rows * cols * rhs.cols/64) word operations, charged as such to the
  /// cost model with log depth.
  BitMatrix multiply(const BitMatrix& rhs) const;

  /// this = this | this (x) this; returns true if any bit was added.
  /// Square only.
  bool square_step();

  /// Reflexive-transitive closure by repeated squaring. Square only.
  BitMatrix closure() const;

  /// Number of set bits.
  std::size_t popcount() const;

  /// Releases storage.
  void clear();

  bool operator==(const BitMatrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace sepsp
