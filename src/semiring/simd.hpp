// Explicit SIMD substrate for the semiring hot loops.
//
// Two call sites dominate both phases of the system: the 64x64 tile
// rows of the blocked dense kernels (semiring/matrix.hpp, Algorithms
// 4.1/4.3) and the lane-major bucket sweeps of the source-batched
// leveled query (core/query_batch.hpp). Until now both leaned on
// compiler autovectorization of scalar loops, which is fragile across
// semirings and compilers; this layer replaces them with hand-written
// fixed-width vector kernels selected once at startup by runtime CPU
// dispatch.
//
// Tiers. Four implementations of every kernel are compiled into the
// library, each in its own translation unit with its own ISA flags:
//
//   kScalar  plain scalar loops (the PR 3 status quo; always present)
//   kSse     128-bit vectors (x86-64 baseline SSE2; portable fallback —
//            the same generic-vector code lowers to NEON on aarch64)
//   kAvx2    256-bit vectors, compiled with -mavx2
//   kAvx512  512-bit vectors, compiled with -mavx512{f,dq,bw,vl}
//
// The kernels are written against GCC/Clang fixed-width vector
// extensions (elementwise +, ?:, comparisons), NOT raw intrinsics: the
// language guarantees per-element semantics identical to the scalar
// operators, so every tier is bit-identical to the scalar reference by
// construction — the same guarantee PR 3 established for cache
// blocking, now extended across ISAs and enforced by tests/test_simd.
//
// Dispatch. simd::active_tier() is resolved once: the highest tier both
// compiled in (SEPSP_SIMD CMake option; tier TU availability) and
// supported by this CPU (CPUID), optionally lowered by the
// SEPSP_FORCE_ISA environment variable (scalar|sse|avx2|avx512; forcing
// above hardware/compile support clamps down). Tests may override it at
// runtime with force_tier(). The templated entry points below read the
// active tier per call (one relaxed atomic load per bucket sweep / tile
// row) and fall back to the inline scalar loop for semirings without a
// vector kind or when the scalar tier is active — so code compiled
// against this header never changes meaning, only speed.
//
// Alignment contract. Kernels use unaligned-tolerant loads; callers
// that want the aligned fast path allocate through AlignedVector
// (util/aligned.hpp, 64-byte base) so that every row whose stride is a
// multiple of the vector width stays aligned. No kernel reads past the
// extents it is handed — padding is a cache courtesy, not a
// correctness requirement.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "semiring/semiring.hpp"

namespace sepsp::simd {

/// Instruction-set tiers, ordered; dispatch picks the highest usable.
enum class Tier : std::uint8_t {
  kScalar = 0,
  kSse = 1,     ///< 128-bit generic vectors (SSE2 / NEON)
  kAvx2 = 2,    ///< 256-bit, requires AVX2
  kAvx512 = 3,  ///< 512-bit, requires AVX-512 F/DQ/BW/VL
};

/// Canonical lowercase tier name ("scalar", "sse", "avx2", "avx512").
const char* tier_name(Tier t);

/// Parses a tier name (the SEPSP_FORCE_ISA vocabulary). Returns false
/// on unknown input, leaving *out untouched.
bool parse_tier(std::string_view name, Tier* out);

/// True when the library was compiled with SEPSP_SIMD=ON.
bool compiled_in();

/// Highest tier compiled into this binary (kScalar with SEPSP_SIMD=OFF).
Tier compiled_tier();

/// Highest tier this machine can run: compiled_tier() clamped by CPUID.
/// Resolved once per process.
Tier detected_tier();

/// The tier the dispatched kernels currently use. Initialized to
/// detected_tier() lowered by SEPSP_FORCE_ISA (if set and parsable).
Tier active_tier();

/// Test/bench hook: re-points dispatch at `t` (clamped to
/// detected_tier(); you cannot force a tier the machine cannot run).
/// Returns the tier actually installed. Affects subsequent kernel
/// calls process-wide.
Tier force_tier(Tier t);

// --- kernel function table ---------------------------------------------
// One entry per (kernel, semiring kind). Kinds cover the value domains
// the shipped semirings relax over:
//   minplus_d  double    min / +            (TropicalD)
//   minplus_i  int64     min / saturating + (TropicalI)
//   maxmin_d   double    max / min          (BottleneckSR)
//   orand_b    uint8     or / and           (BooleanSR)
//
// Kernel shapes (V = kind's value type):
//   tile_row(o, b, a, n):      o[j] = combine(o[j], extend(a, b[j])),
//                              the blocked kernels' innermost row.
//                              Caller guarantees a != zero() for the
//                              double kinds (the tile loops skip zero
//                              aik); the int/bool kinds are total.
//   combine_row(dst, src, n):  dst[j] = combine(dst[j], src[j]);
//                              returns nonzero iff any improves() —
//                              square_step's fused change detection.
//   sweep(dist, from, to, value, m, lanes):
//                              for each edge i, relax `lanes`
//                              contiguous lanes at dist[to[i]*lanes..]
//                              from dist[from[i]*lanes..] through
//                              relax_extend — one batched-query bucket
//                              pass. lanes <= 64.
//   sweep_tracked(..., changed): same, OR-ing per-lane improvement
//                              flags into changed[0..lanes).
struct KernelTable {
  void (*tile_row_minplus_d)(double*, const double*, double, std::size_t);
  int (*combine_row_minplus_d)(double*, const double*, std::size_t);
  void (*sweep_minplus_d)(double*, const std::uint32_t*, const std::uint32_t*,
                          const double*, std::size_t, std::size_t);
  void (*sweep_tracked_minplus_d)(double*, const std::uint32_t*,
                                  const std::uint32_t*, const double*,
                                  std::size_t, std::size_t, std::uint8_t*);

  void (*tile_row_minplus_i)(long long*, const long long*, long long,
                             std::size_t);
  int (*combine_row_minplus_i)(long long*, const long long*, std::size_t);
  void (*sweep_minplus_i)(long long*, const std::uint32_t*,
                          const std::uint32_t*, const long long*, std::size_t,
                          std::size_t);
  void (*sweep_tracked_minplus_i)(long long*, const std::uint32_t*,
                                  const std::uint32_t*, const long long*,
                                  std::size_t, std::size_t, std::uint8_t*);

  void (*tile_row_maxmin_d)(double*, const double*, double, std::size_t);
  int (*combine_row_maxmin_d)(double*, const double*, std::size_t);
  void (*sweep_maxmin_d)(double*, const std::uint32_t*, const std::uint32_t*,
                         const double*, std::size_t, std::size_t);
  void (*sweep_tracked_maxmin_d)(double*, const std::uint32_t*,
                                 const std::uint32_t*, const double*,
                                 std::size_t, std::size_t, std::uint8_t*);

  void (*tile_row_orand_b)(unsigned char*, const unsigned char*, unsigned char,
                           std::size_t);
  int (*combine_row_orand_b)(unsigned char*, const unsigned char*,
                             std::size_t);
  void (*sweep_orand_b)(unsigned char*, const std::uint32_t*,
                        const std::uint32_t*, const unsigned char*,
                        std::size_t, std::size_t);
  void (*sweep_tracked_orand_b)(unsigned char*, const std::uint32_t*,
                                const std::uint32_t*, const unsigned char*,
                                std::size_t, std::size_t, std::uint8_t*);
};

/// The kernel set for a tier. Tiers not compiled in alias the next
/// lower compiled tier, so indexing any Tier value is always safe.
const KernelTable& table(Tier t);

/// Maps a shipped semiring to its KernelTable members. Semirings
/// without a specialization fall back to the inline scalar loops in the
/// dispatch wrappers below (and never touch the table).
template <typename S>
struct KindTraits;

template <>
struct KindTraits<TropicalD> {
  static constexpr auto kTileRow = &KernelTable::tile_row_minplus_d;
  static constexpr auto kCombineRow = &KernelTable::combine_row_minplus_d;
  static constexpr auto kSweep = &KernelTable::sweep_minplus_d;
  static constexpr auto kSweepTracked = &KernelTable::sweep_tracked_minplus_d;
};
template <>
struct KindTraits<TropicalI> {
  static constexpr auto kTileRow = &KernelTable::tile_row_minplus_i;
  static constexpr auto kCombineRow = &KernelTable::combine_row_minplus_i;
  static constexpr auto kSweep = &KernelTable::sweep_minplus_i;
  static constexpr auto kSweepTracked = &KernelTable::sweep_tracked_minplus_i;
};
template <>
struct KindTraits<BottleneckSR> {
  static constexpr auto kTileRow = &KernelTable::tile_row_maxmin_d;
  static constexpr auto kCombineRow = &KernelTable::combine_row_maxmin_d;
  static constexpr auto kSweep = &KernelTable::sweep_maxmin_d;
  static constexpr auto kSweepTracked = &KernelTable::sweep_tracked_maxmin_d;
};
template <>
struct KindTraits<BooleanSR> {
  static constexpr auto kTileRow = &KernelTable::tile_row_orand_b;
  static constexpr auto kCombineRow = &KernelTable::combine_row_orand_b;
  static constexpr auto kSweep = &KernelTable::sweep_orand_b;
  static constexpr auto kSweepTracked = &KernelTable::sweep_tracked_orand_b;
};

/// True when S has a vector kernel kind (the four shipped semirings).
template <typename S>
concept VectorizableSemiring = requires { KindTraits<S>::kTileRow; };

template <typename S>
inline constexpr bool kVectorizable = VectorizableSemiring<S>;

// --- dispatched entry points -------------------------------------------
// Each reads active_tier() once per call; the scalar tier (and any
// semiring without a kind) takes the inline loop, which is the exact
// pre-SIMD code — autovectorizable by the compiler as before, so the
// scalar tier measures the PR 3 status quo.

/// Blocked-kernel tile row: o[j] = combine(o[j], extend(a, b[j])).
/// Contract for the floating-point kinds: a != S::zero() (the tile
/// loops skip zero aik before reaching here).
template <Semiring S>
inline void tile_row(typename S::Value* o, const typename S::Value* b,
                     typename S::Value a, std::size_t n) {
  if constexpr (kVectorizable<S>) {
    const Tier t = active_tier();
    if (t != Tier::kScalar) {
      (table(t).*KindTraits<S>::kTileRow)(o, b, a, n);
      return;
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    o[j] = S::combine(o[j], S::extend(a, b[j]));
  }
}

/// Fused combine + change detection over one row (square_step's merge
/// pass): dst[j] = combine(dst[j], src[j]); true iff any improves().
template <Semiring S>
inline bool combine_row(typename S::Value* dst, const typename S::Value* src,
                        std::size_t n) {
  if constexpr (kVectorizable<S>) {
    const Tier t = active_tier();
    if (t != Tier::kScalar) {
      return (table(t).*KindTraits<S>::kCombineRow)(dst, src, n) != 0;
    }
  }
  bool changed = false;
  for (std::size_t j = 0; j < n; ++j) {
    if (S::improves(dst[j], src[j])) changed = true;
    dst[j] = S::combine(dst[j], src[j]);
  }
  return changed;
}

/// One bucket pass of the lane-batched query: for every edge, relax
/// `lanes` contiguous lanes of the lane-major dist matrix. lanes <= 64.
template <Semiring S>
inline void bucket_sweep(typename S::Value* dist, const std::uint32_t* from,
                         const std::uint32_t* to,
                         const typename S::Value* value, std::size_t m,
                         std::size_t lanes) {
  if constexpr (kVectorizable<S>) {
    const Tier t = active_tier();
    if (t != Tier::kScalar) {
      (table(t).*KindTraits<S>::kSweep)(dist, from, to, value, m, lanes);
      return;
    }
  }
  using Value = typename S::Value;
  for (std::size_t i = 0; i < m; ++i) {
    const Value* src = dist + static_cast<std::size_t>(from[i]) * lanes;
    Value* dst = dist + static_cast<std::size_t>(to[i]) * lanes;
    const Value w = value[i];
    for (std::size_t l = 0; l < lanes; ++l) {
      dst[l] = S::combine(dst[l], relax_extend<S>(src[l], w));
    }
  }
}

/// bucket_sweep recording per-lane improvement into changed[0..lanes)
/// (OR-semantics; callers zero the array per pass).
template <Semiring S>
inline void bucket_sweep_tracked(typename S::Value* dist,
                                 const std::uint32_t* from,
                                 const std::uint32_t* to,
                                 const typename S::Value* value, std::size_t m,
                                 std::size_t lanes, std::uint8_t* changed) {
  if constexpr (kVectorizable<S>) {
    const Tier t = active_tier();
    if (t != Tier::kScalar) {
      (table(t).*KindTraits<S>::kSweepTracked)(dist, from, to, value, m, lanes,
                                               changed);
      return;
    }
  }
  using Value = typename S::Value;
  for (std::size_t i = 0; i < m; ++i) {
    const Value* src = dist + static_cast<std::size_t>(from[i]) * lanes;
    Value* dst = dist + static_cast<std::size_t>(to[i]) * lanes;
    const Value w = value[i];
    for (std::size_t l = 0; l < lanes; ++l) {
      const Value next = S::combine(dst[l], relax_extend<S>(src[l], w));
      changed[l] |= static_cast<std::uint8_t>(next != dst[l]);
      dst[l] = next;
    }
  }
}

/// True when kernels dispatched right now would run vector code for S.
template <Semiring S>
inline bool vector_dispatch_active() {
  return kVectorizable<S> && active_tier() != Tier::kScalar;
}

}  // namespace sepsp::simd
