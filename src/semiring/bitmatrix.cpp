#include "semiring/bitmatrix.hpp"

#include <algorithm>
#include <bit>

#include "pram/cost_model.hpp"
#include "pram/thread_pool.hpp"

namespace sepsp {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_((cols + 63) / 64),
      words_(rows * words_per_row_, 0) {}

BitMatrix BitMatrix::identity(std::size_t n) {
  BitMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i);
  return m;
}

void BitMatrix::merge(const BitMatrix& rhs) {
  SEPSP_CHECK(rhs.rows_ == rows_ && rhs.cols_ == cols_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= rhs.words_[w];
}

BitMatrix BitMatrix::multiply(const BitMatrix& rhs) const {
  SEPSP_CHECK(cols_ == rhs.rows_);
  BitMatrix result(rows_, rhs.cols_);
  const std::size_t out_wpr = result.words_per_row_;
  pram::ThreadPool::global().parallel_for(0, rows_, [&](std::size_t i) {
    std::uint64_t* out_row = &result.words_[i * out_wpr];
    const std::uint64_t* a_row = &words_[i * words_per_row_];
    for (std::size_t kw = 0; kw < words_per_row_; ++kw) {
      std::uint64_t bits = a_row[kw];
      while (bits != 0) {
        const std::size_t k =
            kw * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint64_t* b_row = &rhs.words_[k * rhs.words_per_row_];
        for (std::size_t w = 0; w < out_wpr; ++w) out_row[w] |= b_row[w];
      }
    }
  });
  pram::CostMeter::charge_work(rows_ * cols_ * std::max<std::size_t>(1, out_wpr));
  pram::CostMeter::charge_depth(std::bit_width(cols_) + 1);
  return result;
}

bool BitMatrix::square_step() {
  SEPSP_CHECK(is_square());
  BitMatrix next = multiply(*this);
  bool changed = false;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t merged = words_[w] | next.words_[w];
    if (merged != words_[w]) changed = true;
    words_[w] = merged;
  }
  pram::CostMeter::charge_work(words_.size());
  pram::CostMeter::charge_depth(1);
  return changed;
}

BitMatrix BitMatrix::closure() const {
  SEPSP_CHECK(is_square());
  BitMatrix m = *this;
  for (std::size_t i = 0; i < rows_; ++i) m.set(i, i);
  if (rows_ <= 2) return m;
  const std::size_t steps = std::bit_width(rows_ - 2);
  for (std::size_t s = 0; s < steps; ++s) {
    if (!m.square_step()) break;
  }
  return m;
}

std::size_t BitMatrix::popcount() const {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

void BitMatrix::clear() {
  rows_ = cols_ = words_per_row_ = 0;
  words_.clear();
  words_.shrink_to_fit();
}

}  // namespace sepsp
