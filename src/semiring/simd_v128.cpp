// 128-bit tier of the SIMD kernel set: the portable baseline — SSE2 on
// x86-64 (part of the base ABI, no extra flags), NEON on aarch64,
// compiler-synthesized elsewhere. Always safe to dispatch to.
#define SEPSP_SIMD_SUFFIX v128
#define SEPSP_SIMD_VBYTES 16
#include "semiring/simd_kernels.inc"
