// Environment-variable helpers shared by benches and tests.
#pragma once

#include <cstdint>
#include <string>

namespace sepsp {

/// Reads an integer environment variable, returning `fallback` when unset
/// or unparsable. Used e.g. for SEPSP_BENCH_SCALE to shrink bench inputs
/// on slow machines.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Reads a string environment variable with a fallback.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace sepsp
