#include "util/random.hpp"

// Header-only; this TU pins the library so CMake has a source for the
// archive and the ODR-used inline symbols get a home during debugging.
namespace sepsp {
namespace {
[[maybe_unused]] const Rng kDefaultStream{};
}  // namespace
}  // namespace sepsp
