// Deterministic, fast PRNG for generators, tests and benchmarks.
//
// splitmix64 seeds xoshiro256++; both are public-domain algorithms
// (Blackman & Vigna). We avoid std::mt19937 so that streams are cheap to
// fork per-thread and identical across standard libraries.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace sepsp {

/// Stateless 64-bit mixer; used for seeding and hashing.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    // Distinct seeds -> distinct, well-mixed states.
    std::uint64_t x = seed;
    for (auto& word : state_) word = x = splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// True with probability p.
  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// A statistically independent child stream (for per-thread forking).
  Rng fork() { return Rng(splitmix64((*this)())); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

/// Fisher–Yates shuffle of a random-access range.
template <typename Vec>
void shuffle(Vec& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace sepsp
