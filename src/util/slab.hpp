// Slab-chunked value storage with persistent-data-structure sharing.
//
// A SlabVector<T> behaves like a flat array of T split into fixed-size
// slabs, each held through a shared_ptr. fork() produces a new vector
// aliasing every slab of the source (O(#slabs) pointer copies, no value
// copies) and marks the source's slabs as potentially shared; the next
// set() on a shared slab clones just that slab before writing
// (copy-on-write), so an owner can keep mutating while any number of
// forks stay frozen at the values they saw.
//
// This is the storage contract behind structurally-shared query-engine
// snapshots (core/incremental.hpp): the live engine owns the mutable
// vectors, every epoch snapshot is a fork, and an update batch that
// touches k values costs O(k / kSlabEntries + 1) slab copies instead of
// re-copying the whole array per epoch.
//
// Concurrency: a fork is immutable and safe to read from any thread.
// The owner's set() is NOT synchronized against concurrent owner calls
// (one writer), but never writes memory reachable through an
// outstanding fork: sharing is tracked with an explicit per-slab flag
// set at fork() time rather than by inspecting use_count(), so the
// decision to clone is deterministic and does not rely on reference-
// count ordering (ThreadSanitizer-clean by construction; the worst
// case is one extra clone after all forks died).
//
// Layout: slabs hold kSlabEntries values (the last one ragged), each in
// a 64-byte-aligned AlignedVector, and slab boundaries fall on
// multiples of kSlabEntries — so per-run kernel sweeps see aligned,
// cache-line-sized chunks exactly like the flat arrays they replaced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "util/aligned.hpp"
#include "util/check.hpp"

namespace sepsp {

template <typename T>
class SlabVector {
 public:
  /// Values per slab. 2048 doubles = 16 KiB: large enough that per-run
  /// kernel dispatch is noise, small enough that a point update copies
  /// a few KiB, not the array. Multiple of 64 so every slab boundary
  /// preserves the 64-byte alignment contract of the SoA bucket arrays.
  static constexpr std::size_t kSlabEntries = 2048;

  SlabVector() = default;

  /// Builds a vector owning fresh (unshared) slabs holding `init`.
  explicit SlabVector(std::span<const T> init) { assign(init); }

  void assign(std::span<const T> init) {
    size_ = init.size();
    const std::size_t slabs = (size_ + kSlabEntries - 1) / kSlabEntries;
    slabs_.clear();
    slabs_.reserve(slabs);
    maybe_shared_.assign(slabs, 0);
    for (std::size_t s = 0; s < slabs; ++s) {
      const std::size_t lo = s * kSlabEntries;
      const std::size_t len = std::min(kSlabEntries, size_ - lo);
      auto slab = std::make_shared<Slab>();
      slab->data.assign(init.begin() + static_cast<std::ptrdiff_t>(lo),
                        init.begin() + static_cast<std::ptrdiff_t>(lo + len));
      slabs_.push_back(std::move(slab));
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](std::size_t i) const {
    SEPSP_DCHECK(i < size_);
    return slabs_[i / kSlabEntries]->data[i % kSlabEntries];
  }

  /// Writes value `v` at index `i`, cloning the containing slab first
  /// when it may be aliased by a fork (copy-on-write). Returns true
  /// when a clone happened — the unit the `incr.slabs_copied` counter
  /// accumulates.
  bool set(std::size_t i, T v) {
    SEPSP_DCHECK(i < size_);
    const std::size_t s = i / kSlabEntries;
    bool cloned = false;
    if (maybe_shared_[s]) {
      auto fresh = std::make_shared<Slab>();
      fresh->data = slabs_[s]->data;
      slabs_[s] = std::move(fresh);
      maybe_shared_[s] = 0;
      cloned = true;
    }
    slabs_[s]->data[i % kSlabEntries] = v;
    return cloned;
  }

  /// Immutable structural-sharing copy: aliases every slab (pointer
  /// copies only) and marks the source's slabs shared so its next
  /// writes go copy-on-write. The fork must never be set() — it is the
  /// frozen side of the contract.
  SlabVector fork() {
    SlabVector out;
    out.size_ = size_;
    out.slabs_ = slabs_;
    out.maybe_shared_.assign(slabs_.size(), 1);
    maybe_shared_.assign(slabs_.size(), 1);
    return out;
  }

  /// Streams the contents as contiguous runs (one per slab):
  /// f(begin_index, count, data_pointer). The hot-loop access path —
  /// within a run the values are flat and 64-byte aligned.
  template <typename F>
  void for_each_run(F&& f) const {
    for (std::size_t s = 0; s < slabs_.size(); ++s) {
      const std::size_t lo = s * kSlabEntries;
      f(lo, std::min(kSlabEntries, size_ - lo), slabs_[s]->data.data());
    }
  }

  // --- sharing introspection (tests, obs) -----------------------------
  std::size_t slab_count() const { return slabs_.size(); }
  /// Identity of slab `s`: two vectors alias a slab iff the pointers
  /// compare equal. The sharing-invariant tests assert on this.
  const T* slab_data(std::size_t s) const { return slabs_[s]->data.data(); }
  /// How many of this vector's slabs are aliased by (some) other
  /// SlabVector — i.e. pointer-identical to the same slab there.
  std::size_t slabs_shared_with(const SlabVector& other) const {
    std::size_t shared = 0;
    const std::size_t n = std::min(slabs_.size(), other.slabs_.size());
    for (std::size_t s = 0; s < n; ++s) {
      if (slabs_[s] == other.slabs_[s]) ++shared;
    }
    return shared;
  }

 private:
  struct Slab {
    AlignedVector<T> data;
  };

  std::vector<std::shared_ptr<Slab>> slabs_;
  /// Per-slab flag: 1 when a fork may still alias the slab, so writes
  /// must clone first. Sticky-set at fork() time (never cleared by fork
  /// destruction — deliberately conservative, see file comment).
  std::vector<std::uint8_t> maybe_shared_;
  std::size_t size_ = 0;
};

}  // namespace sepsp
