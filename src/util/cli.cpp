#include "util/cli.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace sepsp {

Args::Args(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Args::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string Args::get_string(const std::string& name,
                             const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& name,
                           std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

std::size_t Args::get_uint(const std::string& name, std::size_t fallback,
                           std::size_t min, std::size_t max) const {
  const auto it = flags_.find(name);
  const std::int64_t parsed =
      it == flags_.end() ? static_cast<std::int64_t>(fallback)
                         : std::strtoll(it->second.c_str(), nullptr, 10);
  SEPSP_CHECK_MSG(parsed >= 0, ("--" + name + " must be non-negative").c_str());
  const std::size_t value = static_cast<std::size_t>(parsed);
  SEPSP_CHECK_MSG(value >= min && value <= max,
                  ("--" + name + " is out of range").c_str());
  return value;
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Args::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

}  // namespace sepsp
