// Checked assertions for library invariants.
//
// SEPSP_CHECK is always on (cheap, guards API misuse and data-structure
// invariants whose violation would silently corrupt results).
// SEPSP_DCHECK compiles away in release builds; use it on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sepsp {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "sepsp: check failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace sepsp

#define SEPSP_CHECK(expr)                                       \
  do {                                                          \
    if (!(expr)) ::sepsp::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define SEPSP_CHECK_MSG(expr, msg)                                \
  do {                                                            \
    if (!(expr)) ::sepsp::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define SEPSP_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define SEPSP_DCHECK(expr) SEPSP_CHECK(expr)
#endif
