// ASCII table printer used by the benchmark harness to emit paper-style
// result tables (rows/series matching the paper's Table 1 etc.).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sepsp {

/// Column-aligned ASCII table with a title, a header row and typed cells.
///
/// Usage:
///   Table t("Table 1a — preprocessing work");
///   t.set_header({"n", "mu", "work", "work/n^1.5"});
///   t.add_row().cell(4096).cell(0.5).cell(1.2e6).cell(4.6);
///   t.print(std::cout);
class Table {
 public:
  class Row {
   public:
    explicit Row(Table* owner) : owner_(owner) {}
    Row& cell(const std::string& s);
    Row& cell(const char* s) { return cell(std::string(s)); }
    Row& cell(double v, int precision = 3);
    Row& cell(std::int64_t v);
    Row& cell(std::uint64_t v);
    Row& cell(int v) { return cell(static_cast<std::int64_t>(v)); }

   private:
    Table* owner_;
  };

  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> names);

  /// Starts a new row; subsequent cell() calls append to it.
  Row add_row();

  std::size_t row_count() const { return rows_.size(); }

  void print(std::ostream& os) const;

 private:
  friend class Row;
  void append_cell(std::string s);

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a count with thousands separators, e.g. 1234567 -> "1,234,567".
std::string with_commas(std::uint64_t v);

/// Least-squares slope of log(y) against log(x): the empirical growth
/// exponent of a measured quantity. Used to check Table-1 shape claims.
double fit_log_log_slope(const std::vector<double>& xs,
                         const std::vector<double>& ys);

}  // namespace sepsp
