// Sorted-vertex-list membership lookup, shared by everything that keeps
// per-node vertex lists sorted (builders, incremental maintenance, hub
// labeling, routing, reachability). Hot builders use the dense
// VertexIndexMap instead; this is the one-off binary-search spelling.
//
// Lives in util (not beside the builders) so public query-side headers
// such as core/labeling.hpp do not have to pull in a builder header for
// a ten-line helper.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>

#include "graph/digraph.hpp"

namespace sepsp::detail {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Index of v in a sorted vertex list, or kNpos.
inline std::size_t index_of(std::span<const Vertex> sorted, Vertex v) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), v);
  if (it == sorted.end() || *it != v) return kNpos;
  return static_cast<std::size_t>(it - sorted.begin());
}

}  // namespace sepsp::detail
