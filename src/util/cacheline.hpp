// Cache-line-padded atomic counters for hot, concurrently-updated
// ledgers.
//
// A struct of plain adjacent std::atomic<uint64_t> counters puts eight
// unrelated counters on each 64-byte line: every fetch_add from one
// worker invalidates the line under all the others (false sharing), so
// a ledger bumped on every request turns into a cross-core ping-pong
// exactly at the throughputs it exists to measure. PaddedAtomicU64
// gives each counter its own line; the forwarding surface mirrors the
// std::atomic member functions the serving runtime uses, so call sites
// are unchanged.
//
// 64 bytes is hardcoded rather than read from
// std::hardware_destructive_interference_size: GCC warns on ABI
// instability for the latter, and 64 is correct for every x86 and
// most ARM parts this builds on (on 128-byte-line parts the padding is
// merely half as effective, never wrong).
#pragma once

#include <atomic>
#include <cstdint>

namespace sepsp {

inline constexpr std::size_t kCacheLineBytes = 64;

/// One 64-bit atomic counter alone on its cache line.
struct alignas(kCacheLineBytes) PaddedAtomicU64 {
  PaddedAtomicU64() = default;
  explicit PaddedAtomicU64(std::uint64_t init) : value(init) {}

  std::uint64_t fetch_add(std::uint64_t d,
                          std::memory_order order =
                              std::memory_order_seq_cst) {
    return value.fetch_add(d, order);
  }
  std::uint64_t load(std::memory_order order =
                         std::memory_order_seq_cst) const {
    return value.load(order);
  }
  void store(std::uint64_t v,
             std::memory_order order = std::memory_order_seq_cst) {
    value.store(v, order);
  }
  bool compare_exchange_weak(std::uint64_t& expected, std::uint64_t desired,
                             std::memory_order order =
                                 std::memory_order_seq_cst) {
    return value.compare_exchange_weak(expected, desired, order);
  }

  std::atomic<std::uint64_t> value{0};
};

static_assert(sizeof(PaddedAtomicU64) == kCacheLineBytes,
              "padding must fill exactly one cache line");
static_assert(alignof(PaddedAtomicU64) == kCacheLineBytes,
              "each counter must start on its own cache line");

}  // namespace sepsp
