// Minimal command-line flag parser for examples and bench binaries.
//
// Accepts --name=value and --name value forms plus bare --flag booleans.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sepsp {

/// Parses argv into a flag map with typed, defaulted accessors.
class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  /// Size-typed get_int with range validation: aborts (SEPSP_CHECK) when
  /// the flag parses negative or lies outside [min, max] — the
  /// replacement for the old `static_cast<std::size_t>(get_int(...))`
  /// pattern, which silently wrapped `--flag=-1` to 2^64-1.
  std::size_t get_uint(const std::string& name, std::size_t fallback,
                       std::size_t min = 0,
                       std::size_t max = SIZE_MAX) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Name of the executable (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace sepsp
