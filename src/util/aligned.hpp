// Over-aligned contiguous storage for the vector kernels.
//
// The SIMD substrate (semiring/simd.hpp) streams flat arrays — the SoA
// edge buckets of the leveled schedule and the lane-major distance
// matrix of the batched kernel. Allocating them on 64-byte boundaries
// (one cache line, one AVX-512 vector) keeps every full-width lane
// block inside a single line and lets the kernels' unaligned-tolerant
// loads hit the aligned fast path on every row whose stride is a
// multiple of the vector width.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace sepsp {

/// Cache-line / AVX-512 vector alignment of the kernel-facing arrays.
inline constexpr std::size_t kSimdAlign = 64;

/// Granularity of the on-disk engine image (store/format.hpp) and of
/// the buffer pool's residency control. Fixed at the classic 4 KiB —
/// images written on a 4 KiB-page machine stay valid everywhere.
inline constexpr std::size_t kPageBytes = 4096;

/// Rounds a byte count up to a whole number of pages — segment padding
/// in the v3 image writer and budget math in the buffer pool.
constexpr std::size_t round_up_to_page(std::size_t bytes) {
  return (bytes + kPageBytes - 1) / kPageBytes * kPageBytes;
}

/// How many large allocations the SEPSP_HUGEPAGES opt-in has advised
/// into transparent huge pages. A plain atomic rather than an obs
/// counter: sepsp_util sits below sepsp_obs in the link order, so the
/// pool mirrors this into obs (store.hugepage_adoptions) instead.
inline std::atomic<std::uint64_t>& hugepage_adoptions() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

namespace detail {

/// SEPSP_HUGEPAGES=1 opts large AlignedVector allocations into
/// MADV_HUGEPAGE. Off by default: THP can inflate RSS on sparse access
/// patterns, which is exactly what the out-of-core RSS gate measures.
inline bool hugepages_enabled() {
  static const bool enabled = [] {
    const char* e = std::getenv("SEPSP_HUGEPAGES");
    return e != nullptr && *e != '\0' && *e != '0';
  }();
  return enabled;
}

inline void maybe_advise_hugepages(void* p, std::size_t bytes) {
#if defined(__linux__)
  // THP only pays off when the kernel can actually assemble 2 MiB
  // extents; smaller allocations would just churn khugepaged.
  constexpr std::size_t kHugeThreshold = std::size_t{2} << 20;
  if (bytes < kHugeThreshold || !hugepages_enabled()) return;
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t begin = (addr + kPageBytes - 1) & ~(kPageBytes - 1);
  const std::uintptr_t end = (addr + bytes) & ~(kPageBytes - 1);
  if (end <= begin) return;
  if (madvise(reinterpret_cast<void*>(begin), end - begin, MADV_HUGEPAGE) ==
      0) {
    hugepage_adoptions().fetch_add(1, std::memory_order_relaxed);
  }
#else
  (void)p;
  (void)bytes;
#endif
}

}  // namespace detail

/// Minimal C++17 aligned allocator: storage from the over-aligned
/// operator new. Stateless — all instances are interchangeable.
template <typename T, std::size_t Align = kSimdAlign>
struct AlignedAllocator {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");
  using value_type = T;

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() = default;
  template <typename U>
  constexpr AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    T* p = static_cast<T*>(::operator new(bytes, std::align_val_t{Align}));
    detail::maybe_advise_hugepages(p, bytes);
    return p;
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <typename U>
  constexpr bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

/// std::vector whose data() is 64-byte aligned. Drop-in for the SoA
/// bucket arrays and the batched kernel's distance matrix.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Rounds an element count up so the allocation covers whole 64-byte
/// blocks — the padding contract of the lane-major distance matrix
/// (padding cells are initialized but never read back).
template <typename T>
constexpr std::size_t padded_size(std::size_t count) {
  const std::size_t per_block = kSimdAlign / sizeof(T);
  return (count + per_block - 1) / per_block * per_block;
}

}  // namespace sepsp
