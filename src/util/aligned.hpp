// Over-aligned contiguous storage for the vector kernels.
//
// The SIMD substrate (semiring/simd.hpp) streams flat arrays — the SoA
// edge buckets of the leveled schedule and the lane-major distance
// matrix of the batched kernel. Allocating them on 64-byte boundaries
// (one cache line, one AVX-512 vector) keeps every full-width lane
// block inside a single line and lets the kernels' unaligned-tolerant
// loads hit the aligned fast path on every row whose stride is a
// multiple of the vector width.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace sepsp {

/// Cache-line / AVX-512 vector alignment of the kernel-facing arrays.
inline constexpr std::size_t kSimdAlign = 64;

/// Minimal C++17 aligned allocator: storage from the over-aligned
/// operator new. Stateless — all instances are interchangeable.
template <typename T, std::size_t Align = kSimdAlign>
struct AlignedAllocator {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");
  using value_type = T;

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() = default;
  template <typename U>
  constexpr AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <typename U>
  constexpr bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

/// std::vector whose data() is 64-byte aligned. Drop-in for the SoA
/// bucket arrays and the batched kernel's distance matrix.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Rounds an element count up so the allocation covers whole 64-byte
/// blocks — the padding contract of the lane-major distance matrix
/// (padding cells are initialized but never read back).
template <typename T>
constexpr std::size_t padded_size(std::size_t count) {
  const std::size_t per_block = kSimdAlign / sizeof(T);
  return (count + per_block - 1) / per_block * per_block;
}

}  // namespace sepsp
