// Residency-control hook of the out-of-core engine.
//
// The relaxation kernels (core/query.hpp) stream edge buckets that may
// live inside an mmapped engine image instead of owned vectors. Before
// scanning a byte range of such a bucket, the kernel pins it through
// this interface; the implementation (store::BufferPool) faults the
// covered pages in, accounts them against its byte budget, and keeps
// them off the eviction clock until the matching unpin. The interface
// lives in util so core never depends on the store subsystem.
#pragma once

#include <array>
#include <cstdint>
#include <utility>

#include "util/check.hpp"

namespace sepsp {

/// Pin/unpin over byte ranges of one backing image. Implementations
/// must tolerate concurrent calls from many query threads; pin/unpin
/// pairs always cover identical ranges (enforced by PinLease).
class PageSource {
 public:
  virtual ~PageSource() = default;

  /// Makes [offset, offset + bytes) resident and eviction-proof until
  /// the matching unpin. May block on page faults; never fails.
  virtual void pin(std::uint64_t offset, std::uint64_t bytes) = 0;

  /// Releases a pin acquired with identical (offset, bytes).
  virtual void unpin(std::uint64_t offset, std::uint64_t bytes) = 0;
};

/// RAII bundle of up to four pinned ranges — one lease covers the
/// from/to/value triple of a bucket chunk. Movable so kernels can hold
/// a lease across a scan; unpins in reverse order on destruction.
class [[nodiscard]] PinLease {
 public:
  PinLease() = default;

  PinLease(PinLease&& other) noexcept
      : ranges_(other.ranges_), count_(std::exchange(other.count_, 0)) {}
  PinLease& operator=(PinLease&& other) noexcept {
    if (this != &other) {
      release();
      ranges_ = other.ranges_;
      count_ = std::exchange(other.count_, 0);
    }
    return *this;
  }
  PinLease(const PinLease&) = delete;
  PinLease& operator=(const PinLease&) = delete;

  ~PinLease() { release(); }

  /// Pins one more range. Null source or empty range is a no-op, so
  /// callers need no branches for in-heap buckets.
  void add(PageSource* source, std::uint64_t offset, std::uint64_t bytes) {
    if (source == nullptr || bytes == 0) return;
    SEPSP_CHECK_MSG(count_ < ranges_.size(),
                    "PinLease: more ranges than one lease carries");
    source->pin(offset, bytes);
    ranges_[count_++] = Range{source, offset, bytes};
  }

 private:
  struct Range {
    PageSource* source = nullptr;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
  };

  void release() {
    while (count_ > 0) {
      const Range& r = ranges_[--count_];
      r.source->unpin(r.offset, r.bytes);
    }
  }

  std::array<Range, 4> ranges_{};
  std::size_t count_ = 0;
};

}  // namespace sepsp
