#include "util/env.hpp"

#include <cstdlib>

namespace sepsp {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return end == v ? fallback : parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

}  // namespace sepsp
