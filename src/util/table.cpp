#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace sepsp {

Table::Row& Table::Row::cell(const std::string& s) {
  owner_->append_cell(s);
  return *this;
}

Table::Row& Table::Row::cell(double v, int precision) {
  char buf[64];
  if (std::isfinite(v) && v != 0 &&
      (std::fabs(v) >= 1e7 || std::fabs(v) < 1e-3)) {
    std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  } else {
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  }
  owner_->append_cell(buf);
  return *this;
}

Table::Row& Table::Row::cell(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  owner_->append_cell(buf);
  return *this;
}

Table::Row& Table::Row::cell(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  owner_->append_cell(buf);
  return *this;
}

void Table::set_header(std::vector<std::string> names) {
  header_ = std::move(names);
}

Table::Row Table::add_row() {
  rows_.emplace_back();
  return Row(this);
}

void Table::append_cell(std::string s) {
  SEPSP_CHECK_MSG(!rows_.empty(), "call add_row() before cell()");
  rows_.back().push_back(std::move(s));
}

void Table::print(std::ostream& os) const {
  const std::size_t ncols = header_.size();
  std::vector<std::size_t> width(ncols, 0);
  for (std::size_t c = 0; c < ncols; ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < std::min(ncols, row.size()); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto hline = [&]() {
    os << '+';
    for (std::size_t c = 0; c < ncols; ++c) {
      for (std::size_t i = 0; i < width[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << ' ';
      for (std::size_t i = s.size(); i < width[c]; ++i) os << ' ';
      os << s << " |";
    }
    os << '\n';
  };

  os << "\n== " << title_ << " ==\n";
  hline();
  print_row(header_);
  hline();
  for (const auto& row : rows_) print_row(row);
  hline();
}

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

double fit_log_log_slope(const std::vector<double>& xs,
                         const std::vector<double>& ys) {
  SEPSP_CHECK(xs.size() == ys.size());
  SEPSP_CHECK(xs.size() >= 2);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    SEPSP_CHECK(xs[i] > 0 && ys[i] > 0);
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  SEPSP_CHECK(denom != 0);
  return (n * sxy - sx * sy) / denom;
}

}  // namespace sepsp
