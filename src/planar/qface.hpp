// The Section-6 q-face pipeline: reduce shortest paths on a hammock-
// decomposed planar graph to shortest paths on the contracted graph G'
// with O(q) vertices, then run the separator engine on G'.
//
//   preprocessing:
//     1. per hammock, distances between / from / to its <= 4 attachment
//        vertices inside the hammock subgraph,
//     2. G' = attachment vertices + per-hammock 4x4 distance cliques +
//        the original cross-hammock edges,
//     3. separator decomposition of G' (it is planar; geometric finder)
//        and E+ construction on G'.
//   query (single source, all targets): one in-hammock sweep at the
//     source, one weighted multi-seed engine run on G', and a combine
//     pass over the per-hammock attachment-to-vertex tables. O(n + |E+|)
//     per source, matching the O(n + q log q) shape of the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "planar/hammock.hpp"
#include "separator/decomposition.hpp"

namespace sepsp {

class QFacePipeline {
 public:
  /// Preprocesses the hammock graph (which must outlive the pipeline).
  /// `builder` picks the E+ algorithm for the reduced graph G'.
  static QFacePipeline build(const HammockGraph& hg,
                             BuilderKind builder = BuilderKind::kRecursive);

  /// Distances from `source` to every vertex of the original graph.
  std::vector<double> distances(Vertex source) const;

  /// Point-to-point distance (computed via distances(u)).
  double distance(Vertex u, Vertex v) const;

  /// k-pair distance queries (the Section 6 / Djidjev-et-al. workload):
  /// after an all-pairs table on G' (O(q) sources of O(q log q) work),
  /// a cross-hammock pair costs O(1) table lookups plus the in-hammock
  /// head/tail tables; a same-hammock pair adds one local sweep. The
  /// paper's outerplanar O(log n)-per-query structures are replaced by
  /// that local sweep (see DESIGN.md substitution 4).
  std::vector<double> distance_pairs(
      std::span<const std::pair<Vertex, Vertex>> pairs) const;

  /// |V(G')| — should be O(q).
  std::size_t reduced_vertices() const;
  std::size_t reduced_edges() const;
  const SeparatorTree& reduced_tree() const;
  const SeparatorShortestPaths<TropicalD>& reduced_engine() const;

 private:
  QFacePipeline() = default;

  // All state lives behind one pointer so the pipeline is safely movable
  // (the engine points at the reduced graph stored alongside it).
  struct State;
  std::shared_ptr<const State> state_;
};

}  // namespace sepsp
