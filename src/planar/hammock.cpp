#include "planar/hammock.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sepsp {

std::vector<Vertex> HammockGraph::attachment_vertices() const {
  std::vector<Vertex> out;
  out.reserve(4 * hammocks.size());
  for (const Hammock& h : hammocks) {
    out.insert(out.end(), h.attachments.begin(), h.attachments.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

/// Shared body builder: `ring` joins hammocks pairwise with two edges
/// closing a cycle; `!ring` joins consecutive hammocks with one bridge.
HammockGraph build_hammocks(std::size_t num_hammocks, std::size_t rungs,
                            const WeightModel& weights, Rng& rng, bool ring) {
  SEPSP_CHECK(num_hammocks >= (ring ? 3u : 2u));
  SEPSP_CHECK(rungs >= 2);
  const std::size_t n = 2 * rungs * num_hammocks;

  HammockGraph out;
  out.hammock_of.assign(n, 0);
  out.coords.resize(n);
  const std::vector<double> pot = make_potentials(weights, n, rng);
  GraphBuilder builder(n);

  auto add_bi = [&](Vertex u, Vertex v) {
    builder.add_edge(u, v, shift_weight(draw_weight(weights, rng), pot, u, v));
    builder.add_edge(v, u, shift_weight(draw_weight(weights, rng), pot, v, u));
  };

  // Hammock h occupies ids [h * 2 * rungs, (h+1) * 2 * rungs): rung r has
  // a "north" vertex (2r) and a "south" vertex (2r + 1). The ladder is
  // outerplanar (all vertices on its outer face).
  out.hammocks.resize(num_hammocks);
  for (std::size_t h = 0; h < num_hammocks; ++h) {
    const auto base = static_cast<Vertex>(h * 2 * rungs);
    Hammock& ham = out.hammocks[h];
    ham.vertices.resize(2 * rungs);
    for (std::size_t i = 0; i < 2 * rungs; ++i) {
      const auto v = static_cast<Vertex>(base + i);
      ham.vertices[i] = v;
      out.hammock_of[v] = static_cast<std::uint32_t>(h);
      if (ring) {
        // Lay the ring on a circle; rungs fan outward.
        const double angle =
            2.0 * 3.14159265358979323846 *
            (static_cast<double>(h) +
             static_cast<double>(i / 2) / static_cast<double>(rungs)) /
            static_cast<double>(num_hammocks);
        const double radius = 100.0 + (i % 2 == 0 ? 0.0 : 10.0);
        out.coords[v] = {radius * std::cos(angle), radius * std::sin(angle),
                         0.0};
      } else {
        // Chain: left to right, two rails.
        out.coords[v] = {
            static_cast<double>(h) * (static_cast<double>(rungs) + 2.0) +
                static_cast<double>(i / 2),
            i % 2 == 0 ? 0.0 : 10.0, 0.0};
      }
    }
    for (std::size_t r = 0; r < rungs; ++r) {
      const auto north = static_cast<Vertex>(base + 2 * r);
      const auto south = static_cast<Vertex>(base + 2 * r + 1);
      add_bi(north, south);  // the rung
      if (r + 1 < rungs) {
        add_bi(north, static_cast<Vertex>(base + 2 * (r + 1)));      // rail
        add_bi(south, static_cast<Vertex>(base + 2 * (r + 1) + 1));  // rail
      }
    }
    // Attachments: the four corners (west pair, east pair).
    ham.attachments = {static_cast<Vertex>(base),                      // NW
                       static_cast<Vertex>(base + 1),                  // SW
                       static_cast<Vertex>(base + 2 * (rungs - 1)),    // NE
                       static_cast<Vertex>(base + 2 * rungs - 1)};     // SE
  }
  if (ring) {
    // Join consecutive hammocks east-corners -> next west-corners.
    for (std::size_t h = 0; h < num_hammocks; ++h) {
      const Hammock& cur = out.hammocks[h];
      const Hammock& next = out.hammocks[(h + 1) % num_hammocks];
      add_bi(cur.attachments[2], next.attachments[0]);
      add_bi(cur.attachments[3], next.attachments[1]);
    }
  } else {
    // Single bridges NE_h -- NW_{h+1}: detectable via biconnectivity.
    for (std::size_t h = 0; h + 1 < num_hammocks; ++h) {
      add_bi(out.hammocks[h].attachments[2],
             out.hammocks[h + 1].attachments[0]);
    }
  }

  out.graph = std::move(builder).build();
  return out;
}

}  // namespace

HammockGraph make_hammock_ring(std::size_t num_hammocks, std::size_t rungs,
                               const WeightModel& weights, Rng& rng) {
  return build_hammocks(num_hammocks, rungs, weights, rng, /*ring=*/true);
}

HammockGraph make_hammock_chain(std::size_t num_hammocks, std::size_t rungs,
                                const WeightModel& weights, Rng& rng) {
  return build_hammocks(num_hammocks, rungs, weights, rng, /*ring=*/false);
}

}  // namespace sepsp
