#include "planar/qface.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <optional>

#include "baseline/bellman_ford.hpp"
#include "separator/finders.hpp"
#include "util/check.hpp"

namespace sepsp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

/// Immutable preprocessed state; addresses are stable for its lifetime.
struct QFacePipeline::State {
  const HammockGraph* hg = nullptr;
  std::vector<Vertex> attach_global;  ///< G' local id -> global id
  std::vector<Vertex> attach_local;   ///< global id -> G' local id / invalid
  Digraph gprime;
  SeparatorTree tree;
  std::optional<SeparatorShortestPaths<TropicalD>> engine;

  /// Per-hammock induced subgraphs (forward only; the reverse sweep uses
  /// the transpose) and distance tables indexed
  /// [hammock][attachment 0..3][local vertex index].
  std::vector<Digraph::Induced> local;
  std::vector<std::array<std::vector<double>, 4>> from_attach;
  std::vector<std::array<std::vector<double>, 4>> to_attach;

  /// All-pairs distances on G' (row-major |V(G')| x |V(G')|), the
  /// "alternate encoding" of Frederickson used by the k-pair oracle.
  std::vector<double> gprime_apsp;
  double gprime_at(Vertex a, Vertex b) const {
    return gprime_apsp[static_cast<std::size_t>(a) * attach_global.size() +
                       b];
  }
};

QFacePipeline QFacePipeline::build(const HammockGraph& hg,
                                   BuilderKind builder) {
  auto state = std::make_shared<State>();
  State& s = *state;
  s.hg = &hg;
  const Digraph& g = hg.graph;
  const std::size_t n = g.num_vertices();

  // G' vertex set: all attachment vertices, remapped to dense local ids.
  s.attach_global = hg.attachment_vertices();
  s.attach_local.assign(n, kInvalidVertex);
  for (std::size_t i = 0; i < s.attach_global.size(); ++i) {
    s.attach_local[s.attach_global[i]] = static_cast<Vertex>(i);
  }

  // Per-hammock subgraphs and attachment distance tables.
  const std::size_t q = hg.num_hammocks();
  s.local.resize(q);
  s.from_attach.resize(q);
  s.to_attach.resize(q);
  GraphBuilder gp_builder(s.attach_global.size());
  for (std::size_t h = 0; h < q; ++h) {
    const Hammock& ham = hg.hammocks[h];
    s.local[h] = g.induced(ham.vertices);
    const Digraph reversed = s.local[h].graph.transpose();
    for (int k = 0; k < 4; ++k) {
      const Vertex a_local = s.local[h].local_of[ham.attachments[k]];
      SEPSP_CHECK(a_local != kInvalidVertex);
      BellmanFordResult fwd = bellman_ford(s.local[h].graph, a_local);
      SEPSP_CHECK_MSG(!fwd.negative_cycle, "negative cycle inside hammock");
      BellmanFordResult rev = bellman_ford(reversed, a_local);
      s.from_attach[h][k] = std::move(fwd.dist);
      s.to_attach[h][k] = std::move(rev.dist);
    }
    // The 4x4 in-hammock distance clique of G'.
    for (int k = 0; k < 4; ++k) {
      for (int k2 = 0; k2 < 4; ++k2) {
        if (k == k2) continue;
        const Vertex to_local = s.local[h].local_of[ham.attachments[k2]];
        const double d = s.from_attach[h][k][to_local];
        if (d < kInf) {
          gp_builder.add_edge(s.attach_local[ham.attachments[k]],
                              s.attach_local[ham.attachments[k2]], d);
        }
      }
    }
  }
  // Cross-hammock base edges: in a hammock decomposition they connect
  // attachment vertices only. An edge is *internal* when some single
  // hammock contains both endpoints (hammock_of alone is not enough:
  // hammocks may share attachment vertices, and an in-body edge at a
  // shared vertex would look cross-assigned).
  auto internal_to = [&](std::uint32_t h, Vertex u, Vertex v) {
    return s.local[h].local_of[u] != kInvalidVertex &&
           s.local[h].local_of[v] != kInvalidVertex;
  };
  for (Vertex u = 0; u < n; ++u) {
    for (const Arc& a : g.out(u)) {
      if (internal_to(hg.hammock_of[u], u, a.to) ||
          internal_to(hg.hammock_of[a.to], u, a.to)) {
        continue;
      }
      SEPSP_CHECK_MSG(s.attach_local[u] != kInvalidVertex &&
                          s.attach_local[a.to] != kInvalidVertex,
                      "cross-hammock edge between non-attachment vertices");
      gp_builder.add_edge(s.attach_local[u], s.attach_local[a.to], a.weight);
    }
  }
  s.gprime = std::move(gp_builder).build();

  // Decompose and preprocess G' (planar; vertices inherit coordinates).
  std::vector<std::array<double, 3>> gp_coords(s.attach_global.size());
  for (std::size_t i = 0; i < s.attach_global.size(); ++i) {
    gp_coords[i] = hg.coords[s.attach_global[i]];
  }
  const Skeleton gp_skel(s.gprime);
  s.tree = build_separator_tree(gp_skel,
                                make_geometric_finder(std::move(gp_coords)));
  typename SeparatorShortestPaths<TropicalD>::Options opts;
  opts.build.builder = builder;
  s.engine.emplace(
      SeparatorShortestPaths<TropicalD>::build(s.gprime, s.tree, opts));

  // All-pairs table on G' for the k-pair oracle: O(q) engine queries on
  // the O(q)-sized reduced graph.
  const std::size_t aq = s.attach_global.size();
  s.gprime_apsp.assign(aq * aq, kInf);
  for (Vertex a = 0; a < aq; ++a) {
    const QueryResult<TropicalD> row = s.engine->distances(a);
    SEPSP_CHECK(!row.negative_cycle);
    std::copy(row.dist.begin(), row.dist.end(),
              s.gprime_apsp.begin() + static_cast<std::ptrdiff_t>(a * aq));
  }

  QFacePipeline p;
  p.state_ = std::move(state);
  return p;
}

std::vector<double> QFacePipeline::distance_pairs(
    std::span<const std::pair<Vertex, Vertex>> pairs) const {
  const State& s = *state_;
  const HammockGraph& hg = *s.hg;
  std::vector<double> out;
  out.reserve(pairs.size());
  for (const auto& [u, v] : pairs) {
    SEPSP_CHECK(u < hg.graph.num_vertices() && v < hg.graph.num_vertices());
    const std::uint32_t hu = hg.hammock_of[u];
    const std::uint32_t hv = hg.hammock_of[v];
    const Vertex lu = s.local[hu].local_of[u];
    const Vertex lv = s.local[hv].local_of[v];
    // Via attachments: u -> a (in-hammock) -> b (G') -> v (in-hammock).
    double best = kInf;
    for (int ka = 0; ka < 4; ++ka) {
      const double head = s.to_attach[hu][ka][lu];
      if (head >= kInf) continue;
      const Vertex a = s.attach_local[hg.hammocks[hu].attachments[ka]];
      for (int kb = 0; kb < 4; ++kb) {
        const double tail = s.from_attach[hv][kb][lv];
        if (tail >= kInf) continue;
        const Vertex b = s.attach_local[hg.hammocks[hv].attachments[kb]];
        const double mid = s.gprime_at(a, b);
        if (mid < kInf) best = std::min(best, head + mid + tail);
      }
    }
    if (hu == hv) {
      // Paths that never leave the hammock: one local sweep.
      const BellmanFordResult sweep = bellman_ford(s.local[hu].graph, lu);
      best = std::min(best, sweep.dist[lv]);
    }
    out.push_back(best);
  }
  return out;
}

std::size_t QFacePipeline::reduced_vertices() const {
  return state_->gprime.num_vertices();
}
std::size_t QFacePipeline::reduced_edges() const {
  return state_->gprime.num_edges();
}
const SeparatorTree& QFacePipeline::reduced_tree() const {
  return state_->tree;
}
const SeparatorShortestPaths<TropicalD>& QFacePipeline::reduced_engine()
    const {
  return *state_->engine;
}

std::vector<double> QFacePipeline::distances(Vertex source) const {
  const State& s = *state_;
  const HammockGraph& hg = *s.hg;
  const std::size_t n = hg.graph.num_vertices();
  SEPSP_CHECK(source < n);
  const std::uint32_t hs = hg.hammock_of[source];
  const Hammock& src_ham = hg.hammocks[hs];
  const Vertex src_local = s.local[hs].local_of[source];

  // 1. In-hammock sweep from the source (covers paths that never leave).
  const BellmanFordResult local_sweep =
      bellman_ford(s.local[hs].graph, src_local);
  SEPSP_CHECK(!local_sweep.negative_cycle);

  // 2. Engine run on G', seeded with source -> attachment offsets.
  std::vector<std::pair<Vertex, double>> seeds;
  for (int k = 0; k < 4; ++k) {
    const double d = s.to_attach[hs][k][src_local];
    if (d < kInf) {
      seeds.emplace_back(s.attach_local[src_ham.attachments[k]], d);
    }
  }
  const QueryResult<TropicalD> gp =
      s.engine->query_engine().run_weighted(seeds);
  SEPSP_CHECK_MSG(!gp.negative_cycle, "negative cycle in reduced graph");

  // 3. Combine: dist(v) = min_k  gp[attach_k(h(v))] + in-hammock tail.
  std::vector<double> dist(n, kInf);
  for (std::size_t h = 0; h < hg.num_hammocks(); ++h) {
    const Hammock& ham = hg.hammocks[h];
    for (std::size_t i = 0; i < ham.vertices.size(); ++i) {
      const Vertex v = ham.vertices[i];
      const Vertex v_local = s.local[h].local_of[v];
      double best = kInf;
      for (int k = 0; k < 4; ++k) {
        const double head = gp.dist[s.attach_local[ham.attachments[k]]];
        const double tail = s.from_attach[h][k][v_local];
        if (head < kInf && tail < kInf) {
          best = std::min(best, head + tail);
        }
      }
      dist[v] = best;
    }
  }
  for (std::size_t i = 0; i < src_ham.vertices.size(); ++i) {
    const Vertex v = src_ham.vertices[i];
    dist[v] = std::min(dist[v], local_sweep.dist[s.local[hs].local_of[v]]);
  }
  return dist;
}

double QFacePipeline::distance(Vertex u, Vertex v) const {
  return distances(u)[v];
}

}  // namespace sepsp
