// Hammock-structured planar graphs (Section 6 workloads).
//
// Frederickson's hammock decomposition splits a planar graph with all
// vertices on q faces into O(q) outerplanar "hammocks", each attached to
// the rest of the graph through at most 4 vertices. Implementing the
// full decomposition of an arbitrary embedding is a paper-sized project
// of its own; this module instead *generates* graphs with a known
// hammock structure of parameterized q (DESIGN.md substitution 4): a
// ring of q ladder-shaped (outerplanar) hammocks, consecutive hammocks
// joined through their corner attachment vertices. The q-face pipeline
// (qface.hpp) then consumes exactly the decomposition output shape that
// Section 6's bounds describe.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/generators.hpp"

namespace sepsp {

/// One hammock: an outerplanar ladder subgraph plus its <= 4 attachment
/// vertices (global ids; attachments are hammock members).
struct Hammock {
  std::vector<Vertex> vertices;          ///< sorted global ids
  std::array<Vertex, 4> attachments{};   ///< NW, SW, NE, SE corners
};

/// A generated hammock-structured graph with its (known) decomposition.
struct HammockGraph {
  Digraph graph;
  std::vector<Hammock> hammocks;
  std::vector<std::array<double, 3>> coords;  ///< planar layout

  /// hammock id per vertex.
  std::vector<std::uint32_t> hammock_of;

  std::size_t num_hammocks() const { return hammocks.size(); }

  /// All attachment vertices (sorted, unique) — the O(q) skeleton of G'.
  std::vector<Vertex> attachment_vertices() const;
};

/// Builds a ring of `num_hammocks` ladders, each with `rungs` rungs
/// (2 * rungs vertices). Total n = 2 * rungs * num_hammocks. All edges
/// bidirectional with independently drawn weights.
HammockGraph make_hammock_ring(std::size_t num_hammocks, std::size_t rungs,
                               const WeightModel& weights, Rng& rng);

/// Chain variant: hammocks joined by single bridge edges (NE_i -- NW_i+1)
/// instead of the ring's double joins. The bridges make the hammock
/// structure recoverable by pure graph algorithms (biconnected
/// components; see hammock_detect.hpp), which the ring's 2-connected
/// joins do not allow without SPQR machinery.
HammockGraph make_hammock_chain(std::size_t num_hammocks, std::size_t rungs,
                                const WeightModel& weights, Rng& rng);

}  // namespace sepsp
