#include "planar/hammock_detect.hpp"

#include <algorithm>

#include "graph/biconnectivity.hpp"
#include "util/check.hpp"

namespace sepsp {

std::optional<HammockGraph> detect_hammocks(
    const Digraph& g, const std::vector<std::array<double, 3>>& coords) {
  const std::size_t n = g.num_vertices();
  if (n == 0 || coords.size() != n) return std::nullopt;
  const Skeleton skel(g);
  const BiconnectedComponents bcc = biconnected_components(skel);

  // Edge counts per component; bodies are the multi-edge components.
  std::vector<std::size_t> edges_in(bcc.count, 0);
  for (const std::uint32_t c : bcc.edge_component) ++edges_in[c];
  std::vector<std::int32_t> body_of_component(bcc.count, -1);
  std::size_t num_bodies = 0;
  for (std::uint32_t c = 0; c < bcc.count; ++c) {
    if (edges_in[c] >= 2) {
      body_of_component[c] = static_cast<std::int32_t>(num_bodies++);
    }
  }
  if (num_bodies == 0) return std::nullopt;

  HammockGraph out;
  out.graph = g;
  out.coords = coords;
  out.hammocks.resize(num_bodies);
  out.hammock_of.assign(n, static_cast<std::uint32_t>(-1));

  for (std::uint32_t c = 0; c < bcc.count; ++c) {
    const std::int32_t body = body_of_component[c];
    if (body < 0) continue;
    Hammock& ham = out.hammocks[static_cast<std::size_t>(body)];
    ham.vertices = bcc.component_vertices(c);
    // Attachments: articulation vertices inside this body.
    std::vector<Vertex> attach;
    for (const Vertex v : ham.vertices) {
      if (bcc.is_articulation[v]) attach.push_back(v);
    }
    if (attach.size() > 4) return std::nullopt;  // not hammock-shaped
    if (attach.empty()) attach.push_back(ham.vertices.front());
    for (std::size_t k = 0; k < 4; ++k) {
      ham.attachments[k] = attach[std::min(k, attach.size() - 1)];
    }
    for (const Vertex v : ham.vertices) {
      // Shared articulation vertices keep their first body assignment.
      if (out.hammock_of[v] == static_cast<std::uint32_t>(-1)) {
        out.hammock_of[v] = static_cast<std::uint32_t>(body);
      }
    }
  }
  // Every vertex must belong to some body (bridge endpoints are
  // articulation vertices of their bodies; isolated vertices fail).
  for (Vertex v = 0; v < n; ++v) {
    if (out.hammock_of[v] == static_cast<std::uint32_t>(-1)) {
      return std::nullopt;
    }
  }
  // Bridge edges (the only edges outside every body) must connect
  // articulation vertices, i.e. attachments of their bodies — the
  // q-face pipeline's contract. A pendant bridge with a degree-1
  // endpoint fails here (the leaf belongs to no body, caught above).
  for (std::size_t e = 0; e < bcc.edge_endpoints.size(); ++e) {
    if (body_of_component[bcc.edge_component[e]] >= 0) continue;  // internal
    const auto [u, v] = bcc.edge_endpoints[e];
    if (!bcc.is_articulation[u] || !bcc.is_articulation[v]) {
      return std::nullopt;
    }
  }
  return out;
}

}  // namespace sepsp
