// Algorithmic hammock detection for bridge-joined graphs.
//
// Frederickson's decomposition finds the hammocks of an embedded planar
// graph; the full algorithm is out of scope (DESIGN.md substitution 4),
// but for graphs whose hammocks are joined by bridges the structure is
// recoverable with classic machinery alone: bridges are exactly the
// single-edge biconnected components, the hammock bodies are the
// remaining components, and the attachment vertices are the
// articulation points inside each body. This removes the reliance on
// generator metadata: the q-face pipeline can run on a *detected*
// decomposition (tests cross-check detection against the generator's
// ground truth).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "planar/hammock.hpp"

namespace sepsp {

/// Attempts to recover the hammock structure of g. Requirements checked
/// at runtime (nullopt on violation): every non-bridge biconnected
/// component has at most 4 articulation points touching it; components
/// are vertex-disjoint apart from articulation vertices.
/// `coords` is copied into the result (the q-face pipeline needs an
/// embedding for the reduced graph's decomposition).
std::optional<HammockGraph> detect_hammocks(
    const Digraph& g, const std::vector<std::array<double, 3>>& coords);

}  // namespace sepsp
