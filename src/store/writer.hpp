// v3 image writer: streams a built engine into the page-aligned layout
// of store/format.hpp.
//
// The writer serializes the *query engine's* bucket arrays — already
// (from, to)-sorted at construction — byte for byte, never re-deriving
// them from the augmentation. That is the whole parity story: an engine
// opened from the image (store/stored_engine.hpp) replays the identical
// edge order, so its distances memcmp-equal the heap engine's.
//
// Output is deterministic: same engine, same bytes (no timestamps, all
// padding zeroed) — images are content-addressable and diffable.
#pragma once

#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "store/format.hpp"

namespace sepsp::store {

namespace writer_detail {

inline void pad_to_page(std::ostream& os, std::uint64_t written) {
  static const char zeros[kPageBytes] = {};
  const std::uint64_t padded = round_up_to_page(written);
  if (padded > written) {
    os.write(zeros, static_cast<std::streamsize>(padded - written));
  }
}

}  // namespace writer_detail

/// Writes `engine` as a v3 image at `path` (truncating). Returns false
/// and fills `error` on I/O failure. The engine may be heap-built or
/// itself opened from an image (round-tripping is exact).
template <Semiring S>
bool write_engine_image(const std::string& path,
                        const SeparatorShortestPaths<S>& engine,
                        std::string* error = nullptr) {
  using Value = typename S::Value;
  const Digraph& g = engine.graph();
  const Augmentation<S>& aug = engine.augmentation();
  const LeveledQuery<S>& q = engine.query_engine();

  struct Pending {
    SegmentRecord rec;
    std::function<void(std::ostream&)> emit;
  };
  std::vector<Pending> segments;
  auto add = [&](SegmentKind kind, std::uint32_t level, std::uint64_t count,
                 std::uint64_t elem_bytes,
                 std::function<void(std::ostream&)> emit) {
    Pending p;
    p.rec.kind = static_cast<std::uint32_t>(kind);
    p.rec.level = level;
    p.rec.count = count;
    p.rec.bytes = count * elem_bytes;
    p.emit = std::move(emit);
    segments.push_back(std::move(p));
  };
  auto add_array = [&](SegmentKind kind, std::uint32_t level, const auto* data,
                       std::uint64_t count) {
    using Elem = std::remove_cvref_t<decltype(*data)>;
    add(kind, level, count, sizeof(Elem), [data, count](std::ostream& os) {
      os.write(reinterpret_cast<const char*>(data),
               static_cast<std::streamsize>(count * sizeof(Elem)));
    });
  };
  // A bucket's three SoA segments. Values stream through the bucket's
  // run iterator (slab by slab on a heap engine, pinned chunk by chunk
  // on a stored one) — contiguous either way once on disk.
  auto add_bucket = [&](const EdgeBucket<S>& bucket, SegmentKind from_kind,
                        SegmentKind to_kind, SegmentKind value_kind,
                        std::uint32_t level) {
    const std::uint64_t count = bucket.size();
    add_array(from_kind, level, bucket.from_data(), count);
    add_array(to_kind, level, bucket.to_data(), count);
    add(value_kind, level, count, sizeof(Value),
        [&bucket](std::ostream& os) {
          bucket.for_each_values_run(
              [&os](std::size_t, std::size_t len, const Value* value) {
                os.write(reinterpret_cast<const char*>(value),
                         static_cast<std::streamsize>(len * sizeof(Value)));
              });
        });
  };

  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  const std::uint32_t h = aug.height;

  // --- segment plan, in query scan order -------------------------------
  add_array(SegmentKind::kLevelOf, 0, aug.levels.level.data(), n);
  add_array(SegmentKind::kNodeOf, 0, aug.levels.node.data(), n);
  // The CSR as three flat arrays (offsets derived per vertex via out()
  // spans; rebuilt exactly on open since arcs are already sorted).
  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (Vertex u = 0; u < n; ++u) {
    offsets[u + 1] = offsets[u] + g.out(u).size();
  }
  std::vector<Vertex> arc_to(m);
  std::vector<double> arc_weight(m);
  {
    std::size_t i = 0;
    for (Vertex u = 0; u < n; ++u) {
      for (const Arc& a : g.out(u)) {
        arc_to[i] = a.to;
        arc_weight[i] = a.weight;
        ++i;
      }
    }
  }
  add_array(SegmentKind::kGraphOffsets, 0, offsets.data(), n + 1);
  add_array(SegmentKind::kGraphArcTo, 0, arc_to.data(), m);
  add_array(SegmentKind::kGraphArcWeight, 0, arc_weight.data(), m);
  add_bucket(q.base_edges(), SegmentKind::kBaseFrom, SegmentKind::kBaseTo,
             SegmentKind::kBaseValue, 0);
  // Down sweep runs l = h..0 scanning same[l] then down[l]; the up
  // sweep re-scans same[l] (one stored copy serves both) then up[l].
  const auto same = q.same_buckets();
  const auto down = q.down_buckets();
  const auto up = q.up_buckets();
  for (std::uint32_t l = h + 1; l-- > 0;) {
    add_bucket(same[l], SegmentKind::kSameFrom, SegmentKind::kSameTo,
               SegmentKind::kSameValue, l);
    add_bucket(down[l], SegmentKind::kDownFrom, SegmentKind::kDownTo,
               SegmentKind::kDownValue, l);
  }
  for (std::uint32_t l = 0; l <= h; ++l) {
    add_bucket(up[l], SegmentKind::kUpFrom, SegmentKind::kUpTo,
               SegmentKind::kUpValue, l);
  }
  // The verification pass scans base (already early in the image) then
  // the full shortcut list — placed last, after the sweep buckets.
  add_bucket(q.shortcut_edges(), SegmentKind::kShortcutFrom,
             SegmentKind::kShortcutTo, SegmentKind::kShortcutValue, 0);

  // --- assign offsets ---------------------------------------------------
  Header header;
  header.semiring_tag = semiring_tag<S>();
  header.value_bytes = sizeof(Value);
  header.num_vertices = n;
  header.num_edges = m;
  header.num_shortcuts = q.shortcut_edges().size();
  header.ell = aug.ell;
  header.height = h;
  header.num_segments = static_cast<std::uint32_t>(segments.size());
  header.critical_depth = aug.critical_depth;
  header.build_work = aug.build_cost.work;
  header.build_depth = aug.build_cost.depth;
  header.directory_offset = round_up_to_page(sizeof(Header));
  std::uint64_t cursor =
      header.directory_offset +
      round_up_to_page(segments.size() * sizeof(SegmentRecord));
  for (Pending& p : segments) {
    p.rec.offset = cursor;
    cursor += round_up_to_page(p.rec.bytes);
  }
  header.file_bytes = cursor;

  // --- emit -------------------------------------------------------------
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  os.write(reinterpret_cast<const char*>(&header), sizeof header);
  writer_detail::pad_to_page(os, sizeof header);
  for (const Pending& p : segments) {
    os.write(reinterpret_cast<const char*>(&p.rec), sizeof p.rec);
  }
  writer_detail::pad_to_page(os, segments.size() * sizeof(SegmentRecord));
  for (const Pending& p : segments) {
    p.emit(os);
    writer_detail::pad_to_page(os, p.rec.bytes);
  }
  os.flush();
  if (!os) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace sepsp::store
