#include "store/pool.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "obs/obs.hpp"
#include "util/check.hpp"

#if defined(__linux__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace sepsp::store {

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

std::unique_ptr<BufferPool> BufferPool::open(const std::string& path,
                                             const PoolOptions& options,
                                             std::string* error) {
  std::unique_ptr<BufferPool> pool(new BufferPool());
#if defined(__linux__)
  pool->fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (pool->fd_ < 0) {
    set_error(error, "BufferPool: cannot open " + path);
    return nullptr;
  }
  struct stat st {};
  if (fstat(pool->fd_, &st) != 0 || st.st_size <= 0) {
    set_error(error, "BufferPool: cannot stat " + path + " (or empty file)");
    return nullptr;
  }
  pool->file_bytes_ = static_cast<std::size_t>(st.st_size);
  pool->map_bytes_ = round_up_to_page(pool->file_bytes_);
  int flags = MAP_SHARED;
  if (options.populate) flags |= MAP_POPULATE;
  void* base =
      mmap(nullptr, pool->map_bytes_, PROT_READ, flags, pool->fd_, 0);
  if (base == MAP_FAILED) {
    set_error(error, "BufferPool: mmap failed for " + path);
    return nullptr;
  }
  // Residency is driven explicitly (pin faults, DONTNEED eviction);
  // kernel readahead would quietly inflate RSS past the ledger.
  madvise(base, pool->map_bytes_, MADV_RANDOM);
  pool->base_ = static_cast<std::byte*>(base);
  pool->mapped_ = true;
#else
  // Portability fallback: no mmap, no eviction — the image is read into
  // one heap block and every page is permanently "resident".
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) {
    set_error(error, "BufferPool: cannot open " + path);
    return nullptr;
  }
  const std::streamoff size = is.tellg();
  if (size <= 0) {
    set_error(error, "BufferPool: empty file " + path);
    return nullptr;
  }
  pool->file_bytes_ = static_cast<std::size_t>(size);
  pool->map_bytes_ = round_up_to_page(pool->file_bytes_);
  pool->base_ = new std::byte[pool->map_bytes_]();
  is.seekg(0);
  is.read(reinterpret_cast<char*>(pool->base_),
          static_cast<std::streamsize>(pool->file_bytes_));
  if (!is) {
    set_error(error, "BufferPool: short read from " + path);
    return nullptr;
  }
#endif
  pool->num_pages_ = pool->map_bytes_ / kPageBytes;
  pool->budget_pages_ =
      std::max<std::size_t>(1, round_up_to_page(options.budget_bytes) /
                                   kPageBytes);
  pool->state_.reset(new std::atomic<std::uint32_t>[pool->num_pages_]());
  if (options.populate) {
    for (std::size_t p = 0; p < pool->num_pages_; ++p) pool->admit(p);
  }
  return pool;
}

BufferPool::~BufferPool() {
#if defined(__linux__)
  if (base_ != nullptr && mapped_) munmap(base_, map_bytes_);
  if (fd_ >= 0) ::close(fd_);
#else
  delete[] base_;
#endif
}

void BufferPool::admit(std::size_t page) {
  const std::uint32_t prev =
      state_[page].fetch_or(kResidentBit | kRefBit, std::memory_order_acq_rel);
  if ((prev & kResidentBit) == 0) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    resident_pages_.fetch_add(1, std::memory_order_relaxed);
    // Touch so the fault happens here, under the pin, instead of
    // surprising the kernel mid-sweep.
    std::atomic_signal_fence(std::memory_order_seq_cst);
    volatile std::byte sink = base_[page * kPageBytes];
    (void)sink;
  }
}

void BufferPool::pin(std::uint64_t offset, std::uint64_t bytes) {
  SEPSP_CHECK_MSG(offset + bytes <= map_bytes_,
                  "BufferPool::pin: range beyond the image");
  if (bytes == 0) return;
  const std::size_t first = offset / kPageBytes;
  const std::size_t last = (offset + bytes - 1) / kPageBytes;
  for (std::size_t p = first; p <= last; ++p) {
    const std::uint32_t prev =
        state_[p].fetch_add(1, std::memory_order_acq_rel);
    SEPSP_CHECK_MSG((prev & kPinMask) != kPinMask,
                    "BufferPool::pin: pin count overflow");
    admit(p);
  }
  if (resident_pages_.load(std::memory_order_relaxed) > budget_pages_) {
    evict_to_budget();
  }
}

void BufferPool::unpin(std::uint64_t offset, std::uint64_t bytes) {
  if (bytes == 0) return;
  const std::size_t first = offset / kPageBytes;
  const std::size_t last = (offset + bytes - 1) / kPageBytes;
  for (std::size_t p = first; p <= last; ++p) {
    // Re-arm the reference bit: a just-scanned page gets one clock
    // revolution of grace before eviction (second chance).
    state_[p].fetch_or(kRefBit, std::memory_order_relaxed);
    const std::uint32_t prev =
        state_[p].fetch_sub(1, std::memory_order_acq_rel);
    SEPSP_CHECK_MSG((prev & kPinMask) != 0,
                    "BufferPool::unpin: page was not pinned");
  }
}

void BufferPool::prefetch(std::uint64_t offset, std::uint64_t bytes) {
  if (bytes == 0) return;
  SEPSP_CHECK_MSG(offset + bytes <= map_bytes_,
                  "BufferPool::prefetch: range beyond the image");
#if defined(__linux__)
  if (mapped_) {
    const std::uint64_t begin = offset / kPageBytes * kPageBytes;
    const std::uint64_t end = round_up_to_page(offset + bytes);
    madvise(base_ + begin, end - begin, MADV_WILLNEED);
  }
#endif
  const std::size_t first = offset / kPageBytes;
  const std::size_t last = (offset + bytes - 1) / kPageBytes;
  for (std::size_t p = first; p <= last; ++p) admit(p);
  if (resident_pages_.load(std::memory_order_relaxed) > budget_pages_) {
    evict_to_budget();
  }
}

void BufferPool::evict_to_budget() {
#if defined(__linux__)
  if (!mapped_) return;
  std::lock_guard<std::mutex> lock(evict_mutex_);
  // Claimed pages are released in coalesced runs: one madvise per run
  // instead of one syscall per page during an eviction storm.
  std::vector<std::pair<std::size_t, std::size_t>> runs;  // [first, last]
  auto flush = [&] {
    for (const auto& [first, last] : runs) {
      madvise(base_ + first * kPageBytes, (last - first + 1) * kPageBytes,
              MADV_DONTNEED);
    }
    runs.clear();
  };
  // Two full revolutions with no progress means everything left is
  // pinned or freshly referenced — stop rather than spin; the pinned
  // working set is allowed to exceed the budget.
  std::size_t scanned_without_progress = 0;
  while (resident_pages_.load(std::memory_order_relaxed) > budget_pages_ &&
         scanned_without_progress < 2 * num_pages_) {
    const std::size_t p = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % num_pages_;
    std::uint32_t s = state_[p].load(std::memory_order_acquire);
    if ((s & kResidentBit) == 0 || (s & kPinMask) != 0) {
      ++scanned_without_progress;
      continue;
    }
    if ((s & kRefBit) != 0) {
      state_[p].fetch_and(~kRefBit, std::memory_order_acq_rel);
      ++scanned_without_progress;
      continue;
    }
    // Claim: clear the resident bit iff still unpinned and unreferenced.
    // A racing pin makes the CAS fail; a pin racing *after* the claim
    // re-admits the page and refaults identical bytes — benign.
    if (!state_[p].compare_exchange_strong(s, s & ~kResidentBit,
                                           std::memory_order_acq_rel)) {
      ++scanned_without_progress;
      continue;
    }
    scanned_without_progress = 0;
    resident_pages_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (!runs.empty() && runs.back().second + 1 == p) {
      runs.back().second = p;
    } else {
      runs.push_back({p, p});
      if (runs.size() >= 64) flush();
    }
  }
  flush();
  note_obs();
#endif
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.faults = faults_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.resident_bytes =
      resident_pages_.load(std::memory_order_relaxed) * kPageBytes;
  s.budget_bytes = budget_pages_ * kPageBytes;
  for (std::size_t p = 0; p < num_pages_; ++p) {
    if ((state_[p].load(std::memory_order_relaxed) & kPinMask) != 0) {
      ++s.pinned_pages;
    }
  }
  note_obs();
  return s;
}

void BufferPool::note_obs() const {
#if SEPSP_OBS_ENABLED
  // Counters register cumulative process totals, so each pool pushes
  // the delta since its last refresh; exchange() keeps concurrent
  // refreshes from double-pushing the same delta.
  static obs::Counter& faults = obs::counter("store.faults");
  static obs::Counter& evictions = obs::counter("store.evictions");
  const std::uint64_t f = faults_.load(std::memory_order_relaxed);
  const std::uint64_t e = evictions_.load(std::memory_order_relaxed);
  const std::uint64_t pf = obs_faults_pushed_.exchange(f);
  const std::uint64_t pe = obs_evictions_pushed_.exchange(e);
  if (f > pf) faults.add(f - pf);
  if (e > pe) evictions.add(e - pe);
  obs::gauge("store.resident_bytes")
      .set(static_cast<std::int64_t>(
          resident_pages_.load(std::memory_order_relaxed) * kPageBytes));
  obs::gauge("store.hugepage_adoptions")
      .set(static_cast<std::int64_t>(
          hugepage_adoptions().load(std::memory_order_relaxed)));
#endif
}

bool BufferPool::page_resident(std::size_t page) const {
  SEPSP_CHECK(page < num_pages_);
  return (state_[page].load(std::memory_order_relaxed) & kResidentBit) != 0;
}

std::uint32_t BufferPool::page_pins(std::size_t page) const {
  SEPSP_CHECK(page < num_pages_);
  return state_[page].load(std::memory_order_relaxed) & kPinMask;
}

}  // namespace sepsp::store
