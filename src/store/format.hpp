// Serialization v3: the page-aligned, separator-tree-clustered on-disk
// image of a built engine (ISSUE 9 / ROADMAP "continent-scale graphs").
//
// Unlike the v1/v2 stream formats (core/serialize.hpp), which are
// parsed element-by-element into heap structures, a v3 image is laid
// out to be *mapped*: every segment starts on a 4 KiB page boundary and
// stores its array verbatim, so an engine can serve queries straight
// out of the mapping with a buffer pool (store/pool.hpp) controlling
// which pages are resident. Segments appear in query scan order —
// level/node assignments, the graph CSR, the base bucket, then the
// per-level same/down/up buckets in the order the leveled schedule
// sweeps them, and finally the shortcut bucket the negative-cycle
// verification pass scans last — so a cold query faults pages in long
// sequential runs along its root-to-leaf path instead of seeking.
//
// The bucket segments hold the heap engine's already-(from, to)-sorted
// arrays byte for byte; an engine opened from the image replays the
// identical edge order and produces bit-identical distances (the
// memcmp-enforced parity contract every kernel in this repo obeys).
//
// Layout:
//   page 0                     Header (fixed size, rest of page zero)
//   page 1..                   SegmentRecord[num_segments] directory
//   page-aligned segments      payloads, each padded to a page
//
// All integers are little-endian PODs; value segments store the
// semiring's Value type verbatim (all shipped semirings are trivially
// copyable). Writers always emit version 3; v1/v2 streams remain
// readable through core/serialize.hpp.
#pragma once

#include <cstdint>
#include <type_traits>

#include "semiring/semiring.hpp"
#include "util/aligned.hpp"

namespace sepsp::store {

inline constexpr std::uint32_t kMagic = 0x33504553;  // "SEP3" little-endian
inline constexpr std::uint32_t kVersion = 3;

/// What one directory entry's payload is. From/to segments are Vertex
/// (u32) arrays; value segments are Value arrays; the CSR offsets are
/// u64, arc weights double, levels u32, nodes i32.
enum class SegmentKind : std::uint32_t {
  kLevelOf = 1,       ///< LevelAssignment::level, n entries
  kNodeOf = 2,        ///< LevelAssignment::node, n entries
  kGraphOffsets = 3,  ///< CSR row offsets, n + 1 entries
  kGraphArcTo = 4,    ///< CSR arc targets, m entries
  kGraphArcWeight = 5,  ///< CSR arc weights, m entries
  kBaseFrom = 6,
  kBaseTo = 7,
  kBaseValue = 8,
  kShortcutFrom = 9,
  kShortcutTo = 10,
  kShortcutValue = 11,
  kSameFrom = 12,  ///< per level (SegmentRecord::level)
  kSameTo = 13,
  kSameValue = 14,
  kDownFrom = 15,
  kDownTo = 16,
  kDownValue = 17,
  kUpFrom = 18,
  kUpTo = 19,
  kUpValue = 20,
};

/// One directory entry. `offset` is page-aligned; `bytes` is the
/// unpadded payload size (count * element size — the reader verifies).
struct SegmentRecord {
  std::uint32_t kind = 0;
  std::uint32_t level = 0;  ///< bucket level; 0 for unleveled kinds
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;
};
static_assert(std::is_trivially_copyable_v<SegmentRecord> &&
                  sizeof(SegmentRecord) == 32,
              "SegmentRecord is on-disk; its layout is frozen");

/// Fixed header in page 0. Structural metadata mirrors what
/// core/serialize.hpp's v2 augmentation carries, so engine.stats()
/// reports the same build-cost fields either way.
struct Header {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t semiring_tag = 0;  ///< semiring_tag<S>() of the writer
  std::uint32_t value_bytes = 0;   ///< sizeof(S::Value)
  std::uint64_t page_bytes = kPageBytes;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t num_shortcuts = 0;
  std::uint64_t ell = 0;
  std::uint32_t height = 0;
  std::uint32_t num_segments = 0;
  std::uint64_t critical_depth = 0;
  std::uint64_t build_work = 0;
  std::uint64_t build_depth = 0;
  std::uint64_t directory_offset = 0;  ///< page-aligned
  std::uint64_t file_bytes = 0;        ///< total image size
};
static_assert(std::is_trivially_copyable_v<Header> && sizeof(Header) == 104,
              "Header is on-disk; its layout is frozen");

/// Per-semiring format tag: a reader opening an image under the wrong
/// semiring must fail loudly, not reinterpret the value bytes.
template <Semiring S>
constexpr std::uint32_t semiring_tag() = delete;
template <>
constexpr std::uint32_t semiring_tag<TropicalD>() {
  return 0x444f5254;  // "TROD"
}
template <>
constexpr std::uint32_t semiring_tag<TropicalI>() {
  return 0x494f5254;  // "TROI"
}
template <>
constexpr std::uint32_t semiring_tag<BooleanSR>() {
  return 0x4c4f4f42;  // "BOOL"
}
template <>
constexpr std::uint32_t semiring_tag<BottleneckSR>() {
  return 0x4e544f42;  // "BOTN"
}

}  // namespace sepsp::store
