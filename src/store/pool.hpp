// vmcache-style buffer manager over an mmapped v3 engine image.
//
// The image is mapped read-only in one shot; what the pool manages is
// *residency*, not address translation — pointers into the mapping are
// always valid, but only pages the pool has admitted count against its
// byte budget, and pages evicted with madvise(MADV_DONTNEED) give their
// frames back to the kernel (RSS drops; the next touch refaults
// identical bytes from the page cache). Each page has one atomic state
// word: a 16-bit pin count, a resident bit, and a reference bit driving
// clock/second-chance eviction. Query kernels pin the byte ranges they
// scan (util/page_source.hpp); pinned pages are never evicted, so the
// budget is a target the unpinned population is trimmed to, not a hard
// wall against the pinned working set.
//
// Correctness never depends on the residency bookkeeping: an eviction
// racing a fresh pin merely costs a refault of the same file bytes.
// That is what makes the whole pool safe with lock-free pins and a
// single mutex confined to the eviction sweep.
//
// Observability: store.faults / store.evictions counters and the
// store.resident_bytes gauge, refreshed on every eviction sweep and
// stats() call.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "util/aligned.hpp"
#include "util/page_source.hpp"

namespace sepsp::store {

struct PoolOptions {
  /// Resident-set target in bytes (rounded up to whole pages, minimum
  /// one page). Eviction trims unpinned resident pages down to this
  /// after every pin that crosses it.
  std::size_t budget_bytes = std::size_t{64} << 20;
  /// MAP_POPULATE the whole image at open (all pages resident and
  /// accounted up front) — for images known to fit the budget.
  bool populate = false;
};

class BufferPool final : public PageSource {
 public:
  /// Maps the file read-only. Returns null and fills `error` on any
  /// failure (missing file, empty file, mmap refusal).
  static std::unique_ptr<BufferPool> open(const std::string& path,
                                          const PoolOptions& options,
                                          std::string* error = nullptr);
  ~BufferPool() override;

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Base of the mapping; offsets in the image's directory index it.
  const std::byte* data() const { return base_; }
  std::size_t size() const { return file_bytes_; }
  std::size_t budget_bytes() const { return budget_pages_ * kPageBytes; }

  // PageSource: pin faults the covered pages in, accounts them, and
  // trims back to budget; unpin re-arms their reference bits.
  void pin(std::uint64_t offset, std::uint64_t bytes) override;
  void unpin(std::uint64_t offset, std::uint64_t bytes) override;

  /// Readahead for a hot range (e.g. the top levels' bucket segments):
  /// madvise(WILLNEED) plus residency accounting, without the per-page
  /// touch of pin(). Prefetched pages are ordinary eviction candidates.
  void prefetch(std::uint64_t offset, std::uint64_t bytes);

  struct Stats {
    std::uint64_t faults = 0;          ///< pages admitted by pin/populate
    std::uint64_t evictions = 0;       ///< pages released to the kernel
    std::uint64_t resident_bytes = 0;  ///< pool ledger, not kernel RSS
    std::uint64_t pinned_pages = 0;    ///< pages with a nonzero pin count
    std::uint64_t budget_bytes = 0;
  };
  /// Accounting snapshot; also refreshes the store.* obs instruments.
  Stats stats() const;

  // --- test hooks -------------------------------------------------------
  bool page_resident(std::size_t page) const;
  std::uint32_t page_pins(std::size_t page) const;
  std::size_t num_pages() const { return num_pages_; }

 private:
  // State-word layout: pins in the low 16 bits so pin/unpin are plain
  // fetch_add/fetch_sub; flags above never carry into the pin field
  // (SEPSP_CHECK guards the 65536-pin overflow).
  static constexpr std::uint32_t kPinMask = 0xFFFF;
  static constexpr std::uint32_t kResidentBit = 1u << 16;
  static constexpr std::uint32_t kRefBit = 1u << 17;

  BufferPool() = default;
  void admit(std::size_t page);
  void evict_to_budget();
  void note_obs() const;

  int fd_ = -1;
  std::byte* base_ = nullptr;
  std::size_t file_bytes_ = 0;
  std::size_t map_bytes_ = 0;
  std::size_t num_pages_ = 0;
  std::size_t budget_pages_ = 1;
  bool mapped_ = false;  ///< false on the no-mmap fallback (non-Linux)
  std::unique_ptr<std::atomic<std::uint32_t>[]> state_;
  std::atomic<std::uint64_t> resident_pages_{0};
  std::atomic<std::uint64_t> faults_{0};
  std::atomic<std::uint64_t> evictions_{0};
  /// High-water marks already pushed into the obs counters.
  mutable std::atomic<std::uint64_t> obs_faults_pushed_{0};
  mutable std::atomic<std::uint64_t> obs_evictions_pushed_{0};
  std::mutex evict_mutex_;  ///< serializes the clock sweep only
  std::size_t clock_hand_ = 0;
};

}  // namespace sepsp::store
