// Open-from-file engine: the query half of SeparatorShortestPaths
// served out of a v3 image (store/format.hpp) through a buffer pool
// (store/pool.hpp).
//
// open() maps the image, validates the header and every directory
// record against the file's byte bounds (malformed input returns
// nullopt + reason, never a crash), materializes the small structural
// state on the heap — the CSR graph and a shortcut-less Augmentation,
// O(n) bytes — and assembles a LeveledQuery whose buckets are external
// views into the mapping (LeveledQuery::from_store). Bucket sweeps then
// resolve their bytes through page pins, so the resident set is bounded
// by the pool budget plus the pinned working set of in-flight queries,
// not by |E u E+|.
//
// The engine is read-only (refresh/apply paths abort) and bit-identical
// to the heap engine the image was written from: the image stores the
// heap engine's sorted bucket arrays verbatim, and the kernels scan
// them in the same order.
//
// Lifetime: StoredEngine is a shared handle. snapshot() returns the
// facade as SeparatorShortestPaths<S>::Snapshot whose control block
// keeps the pool, graph, and augmentation alive — a QueryService built
// over it may outlive the StoredEngine value itself.
#pragma once

#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "store/format.hpp"
#include "store/pool.hpp"

namespace sepsp::store {

namespace open_detail {

inline void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

/// Element size a segment kind must have — directory records are
/// validated against it so a corrupt count can never read past a
/// segment or misalign an array view.
inline std::size_t element_bytes(SegmentKind kind, std::size_t value_bytes) {
  switch (kind) {
    case SegmentKind::kGraphOffsets:
      return sizeof(std::uint64_t);
    case SegmentKind::kGraphArcWeight:
      return sizeof(double);
    case SegmentKind::kBaseValue:
    case SegmentKind::kShortcutValue:
    case SegmentKind::kSameValue:
    case SegmentKind::kDownValue:
    case SegmentKind::kUpValue:
      return value_bytes;
    default:
      return sizeof(std::uint32_t);  // vertex ids, levels, node ids
  }
}

}  // namespace open_detail

template <Semiring S = TropicalD>
class StoredEngine {
 public:
  using Value = typename S::Value;

  struct OpenOptions {
    PoolOptions pool;
    /// Only the Query half applies (detect_negative_cycles etc.); the
    /// build already happened in the process that wrote the image.
    typename SeparatorShortestPaths<S>::Options engine;
    /// Readahead for the hottest part of the image: the bucket segments
    /// of the top `hot_levels` levels (every query's sweeps scan them,
    /// so they are the highest-traffic pages). 0 disables.
    std::uint32_t hot_levels = 0;
  };

  /// Maps and validates `path`. nullopt + reason on malformed input;
  /// never throws, never aborts on bad bytes.
  static std::optional<StoredEngine> open(const std::string& path,
                                          const OpenOptions& options = {},
                                          std::string* error = nullptr);

  const SeparatorShortestPaths<S>& engine() const { return *impl_->engine; }
  BufferPool& pool() const { return *impl_->pool; }
  std::uint64_t image_bytes() const { return impl_->pool->size(); }

  /// The facade as a shareable snapshot: the aliasing control block
  /// keeps the whole Impl (pool included) alive for as long as any
  /// QueryService or caller holds it.
  typename SeparatorShortestPaths<S>::Snapshot snapshot() const {
    return typename SeparatorShortestPaths<S>::Snapshot(impl_,
                                                        impl_->engine.get());
  }

 private:
  // Destruction order matters bottom-up: the engine references the
  // graph/augmentation, whose buckets reference the mapping — so the
  // pool is declared first and destroyed last.
  struct Impl {
    std::unique_ptr<BufferPool> pool;
    std::unique_ptr<Digraph> graph;
    std::shared_ptr<const Augmentation<S>> aug;
    std::unique_ptr<SeparatorShortestPaths<S>> engine;
  };

  explicit StoredEngine(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}

  std::shared_ptr<Impl> impl_;
};

template <Semiring S>
std::optional<StoredEngine<S>> StoredEngine<S>::open(const std::string& path,
                                                     const OpenOptions& options,
                                                     std::string* error) {
  using open_detail::element_bytes;
  using open_detail::set_error;
  auto impl = std::make_shared<Impl>();
  impl->pool = BufferPool::open(path, options.pool, error);
  if (impl->pool == nullptr) return std::nullopt;
  const std::byte* base = impl->pool->data();
  const std::uint64_t file_bytes = impl->pool->size();

  // --- header -----------------------------------------------------------
  if (file_bytes < sizeof(Header)) {
    set_error(error, "v3 image: file smaller than the header");
    return std::nullopt;
  }
  Header h;
  std::memcpy(&h, base, sizeof h);
  if (h.magic != kMagic) {
    set_error(error, "v3 image: bad magic (not an engine image)");
    return std::nullopt;
  }
  if (h.version != kVersion) {
    set_error(error, "v3 image: unsupported version " +
                         std::to_string(h.version) + " (this build reads " +
                         std::to_string(kVersion) + ")");
    return std::nullopt;
  }
  if (h.semiring_tag != semiring_tag<S>() || h.value_bytes != sizeof(Value)) {
    set_error(error, "v3 image: semiring mismatch (image tag 0x" +
                         std::to_string(h.semiring_tag) + ", this engine 0x" +
                         std::to_string(semiring_tag<S>()) + ")");
    return std::nullopt;
  }
  if (h.page_bytes != kPageBytes || h.file_bytes != file_bytes ||
      h.num_vertices > (1ULL << 32) || h.num_edges > (1ULL << 40) ||
      h.height > (1u << 28)) {
    set_error(error, "v3 image: implausible header (truncated or corrupt)");
    return std::nullopt;
  }

  // --- directory --------------------------------------------------------
  const std::uint64_t dir_bytes =
      static_cast<std::uint64_t>(h.num_segments) * sizeof(SegmentRecord);
  if (h.directory_offset % kPageBytes != 0 ||
      h.directory_offset + dir_bytes > file_bytes) {
    set_error(error, "v3 image: directory out of bounds");
    return std::nullopt;
  }
  std::vector<SegmentRecord> directory(h.num_segments);
  if (h.num_segments != 0) {
    std::memcpy(directory.data(), base + h.directory_offset, dir_bytes);
  }
  // (kind, level) -> record; every record is bounds- and size-checked
  // before any pointer into the mapping is formed.
  std::unordered_map<std::uint64_t, const SegmentRecord*> index;
  auto key = [](SegmentKind kind, std::uint32_t level) {
    return (static_cast<std::uint64_t>(kind) << 32) | level;
  };
  for (const SegmentRecord& rec : directory) {
    const std::size_t elem =
        element_bytes(static_cast<SegmentKind>(rec.kind), h.value_bytes);
    if (rec.offset % kPageBytes != 0 || rec.offset > file_bytes ||
        rec.bytes > file_bytes - rec.offset ||
        rec.count != rec.bytes / elem || rec.bytes != rec.count * elem) {
      set_error(error, "v3 image: segment record out of bounds");
      return std::nullopt;
    }
    if (!index.emplace(key(static_cast<SegmentKind>(rec.kind), rec.level),
                       &rec).second) {
      set_error(error, "v3 image: duplicate segment record");
      return std::nullopt;
    }
  }
  auto find = [&](SegmentKind kind, std::uint32_t level, std::uint64_t count)
      -> const SegmentRecord* {
    const auto it = index.find(key(kind, level));
    if (it == index.end() || it->second->count != count) return nullptr;
    return it->second;
  };
  auto data_at = [&](const SegmentRecord* rec) {
    return base + rec->offset;
  };

  // --- structural state (heap, O(n)) ------------------------------------
  const std::uint64_t n = h.num_vertices;
  const std::uint64_t m = h.num_edges;
  const SegmentRecord* level_rec = find(SegmentKind::kLevelOf, 0, n);
  const SegmentRecord* node_rec = find(SegmentKind::kNodeOf, 0, n);
  const SegmentRecord* off_rec = find(SegmentKind::kGraphOffsets, 0, n + 1);
  const SegmentRecord* to_rec = find(SegmentKind::kGraphArcTo, 0, m);
  const SegmentRecord* w_rec = find(SegmentKind::kGraphArcWeight, 0, m);
  if (level_rec == nullptr || node_rec == nullptr || off_rec == nullptr ||
      to_rec == nullptr || w_rec == nullptr) {
    set_error(error, "v3 image: missing or miscounted structural segment");
    return std::nullopt;
  }
  {
    // One sequential pass over the graph segments; pinned so the pool
    // ledger accounts the pages (evictable again right after).
    PinLease lease;
    lease.add(impl->pool.get(), off_rec->offset, off_rec->bytes);
    lease.add(impl->pool.get(), to_rec->offset, to_rec->bytes);
    lease.add(impl->pool.get(), w_rec->offset, w_rec->bytes);
    const auto* offsets =
        reinterpret_cast<const std::uint64_t*>(data_at(off_rec));
    const auto* arc_to = reinterpret_cast<const Vertex*>(data_at(to_rec));
    const auto* arc_weight =
        reinterpret_cast<const double*>(data_at(w_rec));
    if (offsets[0] != 0 || offsets[n] != m) {
      set_error(error, "v3 image: CSR offsets do not cover the arcs");
      return std::nullopt;
    }
    GraphBuilder builder(n);
    for (Vertex u = 0; u < n; ++u) {
      if (offsets[u + 1] < offsets[u] || offsets[u + 1] > m) {
        set_error(error, "v3 image: CSR offsets not monotone");
        return std::nullopt;
      }
      for (std::uint64_t i = offsets[u]; i < offsets[u + 1]; ++i) {
        if (arc_to[i] >= n) {
          set_error(error, "v3 image: arc target out of range");
          return std::nullopt;
        }
        builder.add_edge(u, arc_to[i], arc_weight[i]);
      }
    }
    // dedup_min=false: the stored CSR is already sorted and deduped by
    // the original build; re-deduping could only hide a corrupt image.
    impl->graph =
        std::make_unique<Digraph>(std::move(builder).build(false));
  }
  {
    auto aug = std::make_shared<Augmentation<S>>();
    aug->height = h.height;
    aug->ell = h.ell;
    aug->critical_depth = h.critical_depth;
    aug->build_cost.work = h.build_work;
    aug->build_cost.depth = h.build_depth;
    aug->levels.height = h.height;
    aug->levels.level.resize(n);
    aug->levels.node.resize(n);
    PinLease lease;
    lease.add(impl->pool.get(), level_rec->offset, level_rec->bytes);
    lease.add(impl->pool.get(), node_rec->offset, node_rec->bytes);
    std::memcpy(aug->levels.level.data(), data_at(level_rec),
                level_rec->bytes);
    std::memcpy(aug->levels.node.data(), data_at(node_rec), node_rec->bytes);
    // aug->shortcuts stays empty: shortcut values live in the image's
    // bucket segments; every kernel reads them via shortcut_edges().
    impl->aug = std::move(aug);
  }

  // --- bucket views ------------------------------------------------------
  StoredBuckets<S> buckets;
  auto view = [&](SegmentKind from_kind, SegmentKind to_kind,
                  SegmentKind value_kind, std::uint32_t level,
                  ExternalBucketStore<Value>* out) {
    const auto fit = index.find(key(from_kind, level));
    if (fit == index.end()) return false;
    const std::uint64_t count = fit->second->count;
    const SegmentRecord* from_rec = fit->second;
    const SegmentRecord* to_rec2 = find(to_kind, level, count);
    const SegmentRecord* value_rec = find(value_kind, level, count);
    if (to_rec2 == nullptr || value_rec == nullptr) return false;
    out->from = reinterpret_cast<const Vertex*>(data_at(from_rec));
    out->to = reinterpret_cast<const Vertex*>(data_at(to_rec2));
    out->value = reinterpret_cast<const Value*>(data_at(value_rec));
    out->count = count;
    out->from_offset = from_rec->offset;
    out->to_offset = to_rec2->offset;
    out->value_offset = value_rec->offset;
    out->pages = impl->pool.get();
    return true;
  };
  bool ok = view(SegmentKind::kBaseFrom, SegmentKind::kBaseTo,
                 SegmentKind::kBaseValue, 0, &buckets.base) &&
            view(SegmentKind::kShortcutFrom, SegmentKind::kShortcutTo,
                 SegmentKind::kShortcutValue, 0, &buckets.shortcut);
  buckets.same.resize(h.height + 1);
  buckets.down.resize(h.height + 1);
  buckets.up.resize(h.height + 1);
  for (std::uint32_t l = 0; ok && l <= h.height; ++l) {
    ok = view(SegmentKind::kSameFrom, SegmentKind::kSameTo,
              SegmentKind::kSameValue, l, &buckets.same[l]) &&
         view(SegmentKind::kDownFrom, SegmentKind::kDownTo,
              SegmentKind::kDownValue, l, &buckets.down[l]) &&
         view(SegmentKind::kUpFrom, SegmentKind::kUpTo, SegmentKind::kUpValue,
              l, &buckets.up[l]);
  }
  if (!ok || buckets.base.count != m ||
      buckets.shortcut.count != h.num_shortcuts) {
    set_error(error, "v3 image: missing or inconsistent bucket segments");
    return std::nullopt;
  }
  // Leveled bucket entries reference vertices; validate once here so
  // the kernels can index dist[] unchecked, exactly like heap buckets.
  auto endpoints_ok = [&](const ExternalBucketStore<Value>& b) {
    PinLease lease;
    lease.add(impl->pool.get(), b.from_offset, b.count * sizeof(Vertex));
    lease.add(impl->pool.get(), b.to_offset, b.count * sizeof(Vertex));
    for (std::uint64_t i = 0; i < b.count; ++i) {
      if (b.from[i] >= n || b.to[i] >= n) return false;
    }
    return true;
  };
  ok = endpoints_ok(buckets.base) && endpoints_ok(buckets.shortcut);
  for (std::uint32_t l = 0; ok && l <= h.height; ++l) {
    ok = endpoints_ok(buckets.same[l]) && endpoints_ok(buckets.down[l]) &&
         endpoints_ok(buckets.up[l]);
  }
  if (!ok) {
    set_error(error, "v3 image: bucket endpoint out of range");
    return std::nullopt;
  }

  // --- assemble ----------------------------------------------------------
  const auto resolved = options.engine.validated();
  LeveledQuery<S> query = LeveledQuery<S>::from_store(
      *impl->graph, *impl->aug, buckets,
      resolved.query.detect_negative_cycles);
  impl->engine = std::make_unique<SeparatorShortestPaths<S>>(
      SeparatorShortestPaths<S>::from_forked_query(
          *impl->graph, impl->aug, std::move(query), resolved));
  for (std::uint32_t i = 0; i < options.hot_levels && i <= h.height; ++i) {
    const std::uint32_t l = h.height - i;
    for (const ExternalBucketStore<Value>* b :
         {&buckets.same[l], &buckets.down[l], &buckets.up[l]}) {
      impl->pool->prefetch(b->from_offset, b->count * sizeof(Vertex));
      impl->pool->prefetch(b->to_offset, b->count * sizeof(Vertex));
      impl->pool->prefetch(b->value_offset, b->count * sizeof(Value));
    }
  }
  return StoredEngine(std::move(impl));
}

}  // namespace sepsp::store
