#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace sepsp {

double draw_weight(const WeightModel& model, Rng& rng) {
  switch (model.kind) {
    case WeightModel::Kind::kUnit:
      return 1.0;
    case WeightModel::Kind::kUniformPositive:
      return rng.next_double(model.lo, model.hi);
    case WeightModel::Kind::kMixedSign:
      return rng.next_double(0.0, model.hi);  // shifted by potentials later
  }
  SEPSP_CHECK_MSG(false, "unknown weight model");
  return 0;
}

std::vector<double> make_potentials(const WeightModel& model, std::size_t n,
                                    Rng& rng) {
  if (model.kind != WeightModel::Kind::kMixedSign) return {};
  std::vector<double> h(n);
  for (double& x : h) x = rng.next_double(0.0, model.hi);
  return h;
}

namespace {

// Adds u->v and v->u with independently drawn weights, applying the
// mixed-sign potential shift.
void add_lattice_edge(GraphBuilder& builder, Vertex u, Vertex v,
                      const WeightModel& model, const std::vector<double>& h,
                      Rng& rng) {
  builder.add_edge(u, v, shift_weight(draw_weight(model, rng), h, u, v));
  builder.add_edge(v, u, shift_weight(draw_weight(model, rng), h, v, u));
}

}  // namespace

GeneratedGraph make_grid(const std::vector<std::size_t>& dims,
                         const WeightModel& weights, Rng& rng) {
  SEPSP_CHECK(!dims.empty());
  std::size_t n = 1;
  for (const std::size_t d : dims) {
    SEPSP_CHECK(d >= 1);
    n *= d;
  }
  // Mixed-radix strides: vertex id = sum coord[i] * stride[i].
  std::vector<std::size_t> stride(dims.size());
  stride[0] = 1;
  for (std::size_t i = 1; i < dims.size(); ++i) {
    stride[i] = stride[i - 1] * dims[i - 1];
  }

  GeneratedGraph out;
  const std::vector<double> h = make_potentials(weights, n, rng);
  GraphBuilder builder(n);
  out.coords.resize(n);
  std::vector<std::size_t> coord(dims.size(), 0);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t axis = 0; axis < std::min<std::size_t>(3, dims.size());
         ++axis) {
      out.coords[v][axis] = static_cast<double>(coord[axis]);
    }
    for (std::size_t axis = 0; axis < dims.size(); ++axis) {
      if (coord[axis] + 1 < dims[axis]) {
        const auto u = static_cast<Vertex>(v);
        const auto w = static_cast<Vertex>(v + stride[axis]);
        add_lattice_edge(builder, u, w, weights, h, rng);
      }
    }
    // Increment mixed-radix counter.
    for (std::size_t axis = 0; axis < dims.size(); ++axis) {
      if (++coord[axis] < dims[axis]) break;
      coord[axis] = 0;
    }
  }
  out.graph = std::move(builder).build();
  return out;
}

GeneratedGraph make_triangulated_grid(std::size_t rows, std::size_t cols,
                                      const WeightModel& weights, Rng& rng) {
  SEPSP_CHECK(rows >= 1 && cols >= 1);
  const std::size_t n = rows * cols;
  GeneratedGraph out;
  const std::vector<double> h = make_potentials(weights, n, rng);
  GraphBuilder builder(n);
  out.coords.resize(n);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<Vertex>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out.coords[id(r, c)] = {static_cast<double>(c), static_cast<double>(r),
                              0.0};
      if (c + 1 < cols) {
        add_lattice_edge(builder, id(r, c), id(r, c + 1), weights, h, rng);
      }
      if (r + 1 < rows) {
        add_lattice_edge(builder, id(r, c), id(r + 1, c), weights, h, rng);
      }
      if (r + 1 < rows && c + 1 < cols) {
        // One diagonal per cell keeps the drawing planar.
        if (rng.next_bool()) {
          add_lattice_edge(builder, id(r, c), id(r + 1, c + 1), weights, h,
                           rng);
        } else {
          add_lattice_edge(builder, id(r, c + 1), id(r + 1, c), weights, h,
                           rng);
        }
      }
    }
  }
  out.graph = std::move(builder).build();
  return out;
}

GeneratedGraph make_random_tree(std::size_t n, const WeightModel& weights,
                                Rng& rng) {
  SEPSP_CHECK(n >= 1);
  GeneratedGraph out;
  const std::vector<double> h = make_potentials(weights, n, rng);
  GraphBuilder builder(n);
  for (std::size_t v = 1; v < n; ++v) {
    const auto parent = static_cast<Vertex>(rng.next_below(v));
    add_lattice_edge(builder, static_cast<Vertex>(v), parent, weights, h, rng);
  }
  out.graph = std::move(builder).build();
  return out;
}

GeneratedGraph make_partial_ktree(std::size_t n, std::size_t k,
                                  double keep_prob,
                                  const WeightModel& weights, Rng& rng) {
  SEPSP_CHECK(n >= 1 && k >= 1);
  GeneratedGraph out;
  const std::vector<double> h = make_potentials(weights, n, rng);
  GraphBuilder builder(n);
  // k-tree construction: start from a (k+1)-clique, then attach each new
  // vertex to a random existing k-clique. We track cliques as vertex
  // arrays; the spanning "attachment" edge to one clique member is always
  // kept so the graph stays connected, the rest are kept with keep_prob.
  const std::size_t base = std::min(n, k + 1);
  std::vector<std::vector<Vertex>> cliques;
  std::vector<Vertex> base_clique;
  for (std::size_t v = 0; v < base; ++v) {
    base_clique.push_back(static_cast<Vertex>(v));
    for (std::size_t u = 0; u < v; ++u) {
      add_lattice_edge(builder, static_cast<Vertex>(u),
                       static_cast<Vertex>(v), weights, h, rng);
    }
  }
  if (base == k + 1) cliques.push_back(base_clique);
  for (std::size_t v = base; v < n; ++v) {
    const auto& host = cliques[rng.next_below(cliques.size())];
    // Pick which k of the k+1 host vertices this vertex connects to.
    const std::size_t skip = rng.next_below(host.size());
    std::vector<Vertex> new_clique;
    for (std::size_t i = 0; i < host.size(); ++i) {
      if (i != skip) new_clique.push_back(host[i]);
    }
    // The first attachment edge is always kept (spanning; keeps the graph
    // connected); the remaining k-1 survive with keep_prob.
    for (std::size_t i = 0; i < new_clique.size(); ++i) {
      if (i == 0 || rng.next_bool(keep_prob)) {
        add_lattice_edge(builder, static_cast<Vertex>(v), new_clique[i],
                         weights, h, rng);
      }
    }
    new_clique.push_back(static_cast<Vertex>(v));
    cliques.push_back(std::move(new_clique));
  }
  out.graph = std::move(builder).build();
  return out;
}

GeneratedGraph make_unit_disk(std::size_t n, double target_degree,
                              const WeightModel& weights, Rng& rng) {
  SEPSP_CHECK(n >= 2);
  SEPSP_CHECK(target_degree > 0);
  GeneratedGraph out;
  out.coords.resize(n);
  const double side = 1000.0;
  for (auto& c : out.coords) {
    c = {rng.next_double(0, side), rng.next_double(0, side), 0.0};
  }
  // Expected neighbors within radius r: n * pi r^2 / side^2.
  const double radius =
      std::sqrt(target_degree * side * side /
                (3.14159265358979323846 * static_cast<double>(n)));

  // Bucket grid for O(n * degree) neighbor search.
  const auto cells =
      std::max<std::size_t>(1, static_cast<std::size_t>(side / radius));
  const double cell_size = side / static_cast<double>(cells);
  std::vector<std::vector<Vertex>> bucket(cells * cells);
  auto cell_of = [&](double x) {
    return std::min(cells - 1, static_cast<std::size_t>(x / cell_size));
  };
  for (Vertex v = 0; v < n; ++v) {
    bucket[cell_of(out.coords[v][1]) * cells + cell_of(out.coords[v][0])]
        .push_back(v);
  }

  const std::vector<double> h = make_potentials(weights, n, rng);
  GraphBuilder builder(n);
  for (Vertex v = 0; v < n; ++v) {
    const std::size_t cx = cell_of(out.coords[v][0]);
    const std::size_t cy = cell_of(out.coords[v][1]);
    for (std::size_t dy = cy == 0 ? 0 : cy - 1;
         dy <= std::min(cells - 1, cy + 1); ++dy) {
      for (std::size_t dx = cx == 0 ? 0 : cx - 1;
           dx <= std::min(cells - 1, cx + 1); ++dx) {
        for (const Vertex w : bucket[dy * cells + dx]) {
          if (w <= v) continue;  // each unordered pair once
          const double ex = out.coords[v][0] - out.coords[w][0];
          const double ey = out.coords[v][1] - out.coords[w][1];
          const double dist = std::sqrt(ex * ex + ey * ey);
          if (dist > radius) continue;
          const double scale = std::max(dist / radius, 0.05);
          builder.add_edge(v, w,
                           shift_weight(draw_weight(weights, rng) * scale, h,
                                        v, w));
          builder.add_edge(w, v,
                           shift_weight(draw_weight(weights, rng) * scale, h,
                                        w, v));
        }
      }
    }
  }
  out.graph = std::move(builder).build();
  return out;
}

GeneratedGraph make_random_digraph(std::size_t n, std::size_t m,
                                   const WeightModel& weights, Rng& rng) {
  SEPSP_CHECK(n >= 2);
  GeneratedGraph out;
  const std::vector<double> h = make_potentials(weights, n, rng);
  GraphBuilder builder(n);
  for (std::size_t i = 0; i < m; ++i) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    auto v = static_cast<Vertex>(rng.next_below(n - 1));
    if (v >= u) ++v;  // avoid self loop
    builder.add_edge(u, v, shift_weight(draw_weight(weights, rng), h, u, v));
  }
  out.graph = std::move(builder).build();
  return out;
}

GeneratedGraph make_cycle(std::size_t n, const WeightModel& weights,
                          Rng& rng) {
  SEPSP_CHECK(n >= 1);
  GeneratedGraph out;
  const std::vector<double> h = make_potentials(weights, n, rng);
  GraphBuilder builder(n);
  for (std::size_t v = 0; v < n; ++v) {
    const auto u = static_cast<Vertex>(v);
    const auto w = static_cast<Vertex>((v + 1) % n);
    if (n == 1) break;
    builder.add_edge(u, w, shift_weight(draw_weight(weights, rng), h, u, w));
  }
  out.graph = std::move(builder).build();
  return out;
}

GeneratedGraph make_path(std::size_t n, const WeightModel& weights, Rng& rng,
                         bool bidirectional) {
  SEPSP_CHECK(n >= 1);
  GeneratedGraph out;
  const std::vector<double> h = make_potentials(weights, n, rng);
  GraphBuilder builder(n);
  for (std::size_t v = 0; v + 1 < n; ++v) {
    const auto u = static_cast<Vertex>(v);
    const auto w = static_cast<Vertex>(v + 1);
    builder.add_edge(u, w, shift_weight(draw_weight(weights, rng), h, u, w));
    if (bidirectional) {
      builder.add_edge(w, u, shift_weight(draw_weight(weights, rng), h, w, u));
    }
  }
  out.graph = std::move(builder).build();
  return out;
}

GeneratedGraph make_complete(std::size_t n, const WeightModel& weights,
                             Rng& rng) {
  SEPSP_CHECK(n >= 1);
  GeneratedGraph out;
  const std::vector<double> h = make_potentials(weights, n, rng);
  GraphBuilder builder(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u == v) continue;
      builder.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v),
                       shift_weight(draw_weight(weights, rng), h,
                                    static_cast<Vertex>(u),
                                    static_cast<Vertex>(v)));
    }
  }
  out.graph = std::move(builder).build();
  return out;
}

}  // namespace sepsp
