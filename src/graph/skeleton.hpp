// Undirected, unweighted skeleton of a digraph.
//
// Separator decompositions depend only on this skeleton (paper remark iv),
// so the separator layer consumes Skeleton, not Digraph.
#pragma once

#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace sepsp {

/// CSR adjacency of the undirected skeleton: u and v are neighbors iff
/// the digraph has an arc in either direction; duplicates removed.
class Skeleton {
 public:
  Skeleton() = default;
  explicit Skeleton(const Digraph& g);

  /// Builds the skeleton of the subgraph of `g` induced by `vertices`
  /// (given in local ids of a vertex set of size n_sub).
  static Skeleton from_edges(std::size_t num_vertices,
                             std::span<const EdgeTriple> edges);

  std::size_t num_vertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  /// Number of undirected edges.
  std::size_t num_edges() const { return neighbors_.size() / 2; }

  std::span<const Vertex> neighbors(Vertex u) const {
    SEPSP_DCHECK(u < num_vertices());
    return {neighbors_.data() + offsets_[u],
            neighbors_.data() + offsets_[u + 1]};
  }

  std::size_t degree(Vertex u) const { return neighbors(u).size(); }

 private:
  void finish(std::size_t n, std::vector<std::pair<Vertex, Vertex>> pairs);

  std::vector<std::size_t> offsets_;
  std::vector<Vertex> neighbors_;
};

}  // namespace sepsp
