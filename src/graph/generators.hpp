// Synthetic graph families used by tests, examples and the benchmark
// harness. These are the workload generators for the paper's separator
// families:
//   * d-dimensional grids           -> k^((d-1)/d) separators (Section 1)
//   * trees / narrow ladders        -> O(1) separators (mu -> 0)
//   * triangulated grids (planar)   -> k^(1/2) separators (Section 6)
//   * partial k-trees               -> bounded-treewidth family
//   * G(n, m) random digraphs       -> baseline comparisons
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "util/random.hpp"

namespace sepsp {

/// Edge-weight models for the generators.
struct WeightModel {
  enum class Kind {
    kUnit,             ///< all weights 1
    kUniformPositive,  ///< uniform in [lo, hi], hi > lo >= 0
    kMixedSign,        ///< negative edges allowed, but no negative cycle:
                       ///< w(u,v) = c + h(u) - h(v) with c in [0, hi]
  };
  Kind kind = Kind::kUniformPositive;
  double lo = 1.0;
  double hi = 10.0;

  static WeightModel unit() { return {Kind::kUnit, 1, 1}; }
  static WeightModel uniform(double lo, double hi) {
    return {Kind::kUniformPositive, lo, hi};
  }
  static WeightModel mixed_sign(double magnitude = 10.0) {
    return {Kind::kMixedSign, 0, magnitude};
  }
};

/// A generated graph together with geometric coordinates when the family
/// has a natural embedding (empty otherwise). Coordinates feed the
/// geometric separator finder.
struct GeneratedGraph {
  Digraph graph;
  std::vector<std::array<double, 3>> coords;
};

/// d-dimensional grid with the given extents (d = dims.size() >= 1).
/// Every lattice edge becomes two opposite arcs with independent weights.
GeneratedGraph make_grid(const std::vector<std::size_t>& dims,
                         const WeightModel& weights, Rng& rng);

/// Planar triangulated grid: rows x cols grid plus one diagonal per cell
/// (direction chosen at random). Stays planar; separator exponent 1/2.
GeneratedGraph make_triangulated_grid(std::size_t rows, std::size_t cols,
                                      const WeightModel& weights, Rng& rng);

/// Random tree on n vertices (uniform attachment), arcs in both
/// directions. Separator size 1 at every level (centroid).
GeneratedGraph make_random_tree(std::size_t n, const WeightModel& weights,
                                Rng& rng);

/// Partial k-tree: build a random k-tree (treewidth exactly k), keep each
/// non-skeleton edge with probability keep_prob. Arcs in both directions.
GeneratedGraph make_partial_ktree(std::size_t n, std::size_t k,
                                  double keep_prob,
                                  const WeightModel& weights, Rng& rng);

/// Unit-disk graph: n points uniform in a square, arcs in both
/// directions between every pair at distance <= radius. In two
/// dimensions this is the paper's r-overlap graph family (Miller, Teng
/// and Vavasis), which has O(sqrt(n)) geometric separators; pair with
/// make_geometric_finder. `radius` is chosen internally to hit
/// `target_degree` expected neighbors. Weight model draws are scaled by
/// the Euclidean edge length.
GeneratedGraph make_unit_disk(std::size_t n, double target_degree,
                              const WeightModel& weights, Rng& rng);

/// Erdos–Renyi-style random digraph with exactly m arcs (no self loops;
/// parallel arcs merged by min weight).
GeneratedGraph make_random_digraph(std::size_t n, std::size_t m,
                                   const WeightModel& weights, Rng& rng);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0.
GeneratedGraph make_cycle(std::size_t n, const WeightModel& weights, Rng& rng);

/// Directed path 0 -> 1 -> ... -> n-1 (plus reverse arcs when
/// bidirectional is true).
GeneratedGraph make_path(std::size_t n, const WeightModel& weights, Rng& rng,
                         bool bidirectional = false);

/// Complete digraph on n vertices (all ordered pairs).
GeneratedGraph make_complete(std::size_t n, const WeightModel& weights,
                             Rng& rng);

/// Draws one edge weight from the model. For kMixedSign the caller must
/// supply vertex potentials (see make_potentials).
double draw_weight(const WeightModel& model, Rng& rng);

/// Vertex potentials for the kMixedSign model (empty for other kinds).
std::vector<double> make_potentials(const WeightModel& model, std::size_t n,
                                    Rng& rng);

/// Applies the mixed-sign shift w + h[u] - h[v] when potentials are
/// non-empty; identity otherwise.
inline double shift_weight(double w, const std::vector<double>& h, Vertex u,
                           Vertex v) {
  return h.empty() ? w : w + h[u] - h[v];
}

}  // namespace sepsp
