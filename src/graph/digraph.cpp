#include "graph/digraph.hpp"

#include <algorithm>
#include <cmath>

namespace sepsp {

Vertex Digraph::source_of(std::size_t arc_index) const {
  SEPSP_DCHECK(arc_index < arcs_.size());
  return arc_sources()[arc_index];
}

std::span<const Vertex> Digraph::arc_sources() const {
  ArcSourceIndex& index = *arc_index_;
  std::call_once(index.once, [&] {
    std::vector<Vertex> source(arcs_.size());
    for (Vertex u = 0; u < num_vertices(); ++u) {
      for (std::size_t i = offsets_[u]; i < offsets_[u + 1]; ++i) {
        source[i] = u;
      }
    }
    index.source = std::move(source);
  });
  return index.source;
}

std::vector<EdgeTriple> Digraph::edge_list() const {
  std::vector<EdgeTriple> edges;
  edges.reserve(num_edges());
  for (Vertex u = 0; u < num_vertices(); ++u) {
    for (const Arc& a : out(u)) edges.push_back({u, a.to, a.weight});
  }
  return edges;
}

Digraph Digraph::transpose() const {
  GraphBuilder builder(num_vertices());
  for (Vertex u = 0; u < num_vertices(); ++u) {
    for (const Arc& a : out(u)) builder.add_edge(a.to, u, a.weight);
  }
  return std::move(builder).build(/*dedup_min=*/false);
}

Digraph::Induced Digraph::induced(std::span<const Vertex> vertices) const {
  Induced result;
  result.local_of.assign(num_vertices(), kInvalidVertex);
  result.global_of.assign(vertices.begin(), vertices.end());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const Vertex v = vertices[i];
    SEPSP_CHECK_MSG(result.local_of[v] == kInvalidVertex,
                    "duplicate vertex in induced() input");
    result.local_of[v] = static_cast<Vertex>(i);
  }
  GraphBuilder builder(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const Vertex u = vertices[i];
    for (const Arc& a : out(u)) {
      const Vertex local_to = result.local_of[a.to];
      if (local_to != kInvalidVertex) {
        builder.add_edge(static_cast<Vertex>(i), local_to, a.weight);
      }
    }
  }
  result.graph = std::move(builder).build(/*dedup_min=*/false);
  return result;
}

bool Digraph::find_arc(Vertex u, Vertex v, double* weight) const {
  const auto arcs = out(u);
  // Arcs are sorted by target; find the first with target v.
  const auto it = std::lower_bound(
      arcs.begin(), arcs.end(), v,
      [](const Arc& a, Vertex target) { return a.to < target; });
  if (it == arcs.end() || it->to != v) return false;
  if (weight != nullptr) {
    double best = it->weight;
    for (auto jt = it + 1; jt != arcs.end() && jt->to == v; ++jt) {
      best = std::min(best, jt->weight);
    }
    *weight = best;
  }
  return true;
}

double Digraph::total_weight() const {
  double sum = 0;
  for (const Arc& a : arcs_) sum += a.weight;
  return sum;
}

Digraph GraphBuilder::build(bool dedup_min) && {
  std::sort(edges_.begin(), edges_.end(),
            [](const EdgeTriple& a, const EdgeTriple& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              return a.weight < b.weight;
            });
  if (dedup_min) {
    // Sorted by weight within (from, to), so unique keeps the minimum.
    edges_.erase(std::unique(edges_.begin(), edges_.end(),
                             [](const EdgeTriple& a, const EdgeTriple& b) {
                               return a.from == b.from && a.to == b.to;
                             }),
                 edges_.end());
  }
  Digraph g;
  g.offsets_.assign(n_ + 1, 0);
  for (const EdgeTriple& e : edges_) ++g.offsets_[e.from + 1];
  for (std::size_t i = 1; i <= n_; ++i) g.offsets_[i] += g.offsets_[i - 1];
  g.arcs_.reserve(edges_.size());
  for (const EdgeTriple& e : edges_) g.arcs_.push_back({e.to, e.weight});
  return g;
}

}  // namespace sepsp
