#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace sepsp {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

void write_dimacs(std::ostream& os, const Digraph& g) {
  os.precision(17);  // round-trippable doubles
  os << "c sepsp digraph\n";
  os << "p sp " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.out(u)) {
      os << "a " << (u + 1) << ' ' << (a.to + 1) << ' ' << a.weight << '\n';
    }
  }
}

std::optional<Digraph> read_dimacs(std::istream& is, std::string* error) {
  std::string line;
  std::optional<GraphBuilder> builder;
  std::size_t declared_edges = 0;
  std::size_t seen_edges = 0;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'p') {
      std::string kind;
      std::size_t n = 0, m = 0;
      if (!(ls >> kind >> n >> m) || kind != "sp") {
        set_error(error, "bad problem line at " + std::to_string(line_number));
        return std::nullopt;
      }
      if (builder.has_value()) {
        set_error(error, "duplicate problem line");
        return std::nullopt;
      }
      builder.emplace(n);
      declared_edges = m;
    } else if (tag == 'a') {
      if (!builder.has_value()) {
        set_error(error, "arc before problem line");
        return std::nullopt;
      }
      std::size_t from = 0, to = 0;
      double weight = 0;
      if (!(ls >> from >> to >> weight) || from == 0 || to == 0 ||
          from > builder->num_vertices() || to > builder->num_vertices()) {
        set_error(error, "bad arc at line " + std::to_string(line_number));
        return std::nullopt;
      }
      builder->add_edge(static_cast<Vertex>(from - 1),
                        static_cast<Vertex>(to - 1), weight);
      ++seen_edges;
    } else {
      set_error(error,
                "unknown line tag at line " + std::to_string(line_number));
      return std::nullopt;
    }
  }
  if (!builder.has_value()) {
    set_error(error, "missing problem line");
    return std::nullopt;
  }
  if (seen_edges != declared_edges) {
    set_error(error, "edge count mismatch: declared " +
                         std::to_string(declared_edges) + ", found " +
                         std::to_string(seen_edges));
    return std::nullopt;
  }
  return std::move(*builder).build(/*dedup_min=*/false);
}

void write_dimacs_coords(std::ostream& os,
                         const std::vector<std::array<double, 3>>& coords) {
  os.precision(17);  // round-trippable doubles
  os << "c sepsp coordinates\n";
  for (std::size_t i = 0; i < coords.size(); ++i) {
    os << "v " << (i + 1) << ' ' << coords[i][0] << ' ' << coords[i][1]
       << '\n';
  }
}

std::optional<std::vector<std::array<double, 3>>> read_dimacs_coords(
    std::istream& is, std::size_t num_vertices, std::string* error) {
  std::vector<std::array<double, 3>> coords(num_vertices, {0, 0, 0});
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == 'c' || line[0] == 'p') continue;
    std::istringstream ls(line);
    char tag = 0;
    std::size_t id = 0;
    double x = 0, y = 0;
    ls >> tag;
    if (tag != 'v') {
      set_error(error,
                "unknown line tag at line " + std::to_string(line_number));
      return std::nullopt;
    }
    if (!(ls >> id >> x >> y) || id == 0 || id > num_vertices) {
      set_error(error, "bad vertex at line " + std::to_string(line_number));
      return std::nullopt;
    }
    coords[id - 1] = {x, y, 0};
  }
  return coords;
}

}  // namespace sepsp
