// Graph file I/O in the 9th DIMACS Implementation Challenge formats —
// the de-facto interchange format for road-network shortest-path code:
//
//   .gr   problem line "p sp <n> <m>", arcs "a <from> <to> <weight>"
//         (1-based vertex ids; weights parsed as doubles)
//   .co   coordinate lines "v <id> <x> <y>"
//
// Both readers tolerate comment lines ("c ...") and blank lines.
#pragma once

#include <array>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace sepsp {

/// Writes g in DIMACS .gr format.
void write_dimacs(std::ostream& os, const Digraph& g);

/// Parses a DIMACS .gr stream; returns nullopt with `error` filled on
/// malformed input.
std::optional<Digraph> read_dimacs(std::istream& is, std::string* error = nullptr);

/// Writes coordinates in DIMACS .co format (z is dropped).
void write_dimacs_coords(std::ostream& os,
                         const std::vector<std::array<double, 3>>& coords);

/// Parses a DIMACS .co stream; `num_vertices` sizes the result (vertices
/// without a line get {0,0,0}).
std::optional<std::vector<std::array<double, 3>>> read_dimacs_coords(
    std::istream& is, std::size_t num_vertices, std::string* error = nullptr);

}  // namespace sepsp
