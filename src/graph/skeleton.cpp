#include "graph/skeleton.hpp"

#include <algorithm>
#include <utility>

namespace sepsp {

Skeleton::Skeleton(const Digraph& g) {
  std::vector<std::pair<Vertex, Vertex>> pairs;
  pairs.reserve(2 * g.num_edges());
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.out(u)) {
      if (a.to == u) continue;  // self-loops are irrelevant to separators
      pairs.emplace_back(u, a.to);
      pairs.emplace_back(a.to, u);
    }
  }
  finish(g.num_vertices(), std::move(pairs));
}

Skeleton Skeleton::from_edges(std::size_t num_vertices,
                              std::span<const EdgeTriple> edges) {
  Skeleton s;
  std::vector<std::pair<Vertex, Vertex>> pairs;
  pairs.reserve(2 * edges.size());
  for (const EdgeTriple& e : edges) {
    if (e.from == e.to) continue;
    pairs.emplace_back(e.from, e.to);
    pairs.emplace_back(e.to, e.from);
  }
  s.finish(num_vertices, std::move(pairs));
  return s;
}

void Skeleton::finish(std::size_t n,
                      std::vector<std::pair<Vertex, Vertex>> pairs) {
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : pairs) ++offsets_[u + 1];
  for (std::size_t i = 1; i <= n; ++i) offsets_[i] += offsets_[i - 1];
  neighbors_.reserve(pairs.size());
  for (const auto& [u, v] : pairs) neighbors_.push_back(v);
}

}  // namespace sepsp
