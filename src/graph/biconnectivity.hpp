// Articulation points and biconnected components of an undirected
// skeleton (Hopcroft–Tarjan, iterative).
//
// Substrate for the planar layer: Frederickson's hammocks attach to the
// rest of the graph through at most four vertices; on our ring-of-
// ladders family the hammock bodies are exactly the large biconnected
// components and the attachments are their articulation/boundary
// vertices, so hammock structure can be *detected* instead of trusted
// from generator metadata (planar/hammock_detect.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/skeleton.hpp"

namespace sepsp {

struct BiconnectedComponents {
  /// Component id per undirected edge; edges are identified by their
  /// position in `edge_endpoints`.
  std::vector<std::uint32_t> edge_component;
  /// Endpoint pairs (u < v) for every undirected skeleton edge, in the
  /// order used by edge_component.
  std::vector<std::pair<Vertex, Vertex>> edge_endpoints;
  std::size_t count = 0;
  /// is_articulation[v] == 1 iff removing v disconnects its component.
  std::vector<std::uint8_t> is_articulation;

  /// Vertices of one component (unique, sorted).
  std::vector<Vertex> component_vertices(std::uint32_t component) const;
};

/// Hopcroft–Tarjan over the whole skeleton (all connected components).
BiconnectedComponents biconnected_components(const Skeleton& s);

}  // namespace sepsp
