// Classic graph traversals used across the library: BFS, connected
// components on skeletons, strongly connected components, topological
// order.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/skeleton.hpp"

namespace sepsp {

/// Hop distances and a BFS tree from `source` over directed arcs.
/// Unreached vertices get hops == kUnreachedHops, parent == kInvalidVertex.
struct BfsResult {
  static constexpr std::uint32_t kUnreachedHops = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> hops;
  std::vector<Vertex> parent;
};
BfsResult bfs(const Digraph& g, Vertex source);

/// BFS over an undirected skeleton, optionally restricted to vertices
/// where mask[v] is true (mask empty = no restriction).
BfsResult bfs(const Skeleton& s, Vertex source,
              std::span<const std::uint8_t> mask = {});

/// Connected components of the skeleton; returns component id per vertex
/// and the number of components. Optional mask restricts to a subset
/// (masked-out vertices get id kNoComponent).
struct Components {
  static constexpr std::uint32_t kNoComponent = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> id;
  std::size_t count = 0;
  std::vector<std::size_t> size;  ///< per component
};
Components connected_components(const Skeleton& s,
                                std::span<const std::uint8_t> mask = {});

/// Tarjan strongly connected components (iterative). Components are
/// numbered in reverse topological order of the condensation.
struct SccResult {
  std::vector<std::uint32_t> id;
  std::size_t count = 0;
};
SccResult strongly_connected_components(const Digraph& g);

/// Topological order of a DAG; nullopt if the graph has a cycle.
std::optional<std::vector<Vertex>> topological_order(const Digraph& g);

/// True if every vertex is reachable from every other in the skeleton.
bool is_connected(const Skeleton& s);

}  // namespace sepsp
