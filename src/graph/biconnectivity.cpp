#include "graph/biconnectivity.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sepsp {

std::vector<Vertex> BiconnectedComponents::component_vertices(
    std::uint32_t component) const {
  std::vector<Vertex> out;
  for (std::size_t e = 0; e < edge_component.size(); ++e) {
    if (edge_component[e] == component) {
      out.push_back(edge_endpoints[e].first);
      out.push_back(edge_endpoints[e].second);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

BiconnectedComponents biconnected_components(const Skeleton& s) {
  const std::size_t n = s.num_vertices();
  BiconnectedComponents result;
  result.is_articulation.assign(n, 0);

  // Canonical edge ids: position of (u, v) with u < v in a sorted list.
  for (Vertex u = 0; u < n; ++u) {
    for (const Vertex v : s.neighbors(u)) {
      if (u < v) result.edge_endpoints.emplace_back(u, v);
    }
  }
  std::sort(result.edge_endpoints.begin(), result.edge_endpoints.end());
  result.edge_component.assign(result.edge_endpoints.size(),
                               static_cast<std::uint32_t>(-1));
  auto edge_id = [&](Vertex a, Vertex b) {
    if (a > b) std::swap(a, b);
    const auto it = std::lower_bound(result.edge_endpoints.begin(),
                                     result.edge_endpoints.end(),
                                     std::make_pair(a, b));
    SEPSP_DCHECK(it != result.edge_endpoints.end() &&
                 *it == std::make_pair(a, b));
    return static_cast<std::size_t>(it - result.edge_endpoints.begin());
  };

  constexpr std::uint32_t kUnvisited = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> disc(n, kUnvisited);
  std::vector<std::uint32_t> low(n, 0);
  std::vector<std::size_t> edge_stack;  // edge ids awaiting a component
  std::uint32_t timer = 0;

  struct Frame {
    Vertex v;
    Vertex parent;
    std::size_t next_neighbor;
    std::uint32_t tree_children;
  };
  std::vector<Frame> stack;

  auto pop_component = [&](std::size_t until_edge) {
    const auto comp = static_cast<std::uint32_t>(result.count++);
    for (;;) {
      SEPSP_CHECK(!edge_stack.empty());
      const std::size_t e = edge_stack.back();
      edge_stack.pop_back();
      result.edge_component[e] = comp;
      if (e == until_edge) break;
    }
  };

  for (Vertex root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    stack.push_back({root, kInvalidVertex, 0, 0});
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const Vertex v = frame.v;
      const auto neighbors = s.neighbors(v);
      if (frame.next_neighbor < neighbors.size()) {
        const Vertex w = neighbors[frame.next_neighbor++];
        if (w == frame.parent) {
          // Skip exactly one parent edge occurrence (parallel edges were
          // deduplicated by Skeleton).
          frame.parent = kInvalidVertex - 1;  // sentinel: already skipped
          continue;
        }
        if (disc[w] == kUnvisited) {
          edge_stack.push_back(edge_id(v, w));
          ++frame.tree_children;
          disc[w] = low[w] = timer++;
          stack.push_back({w, v, 0, 0});
        } else if (disc[w] < disc[v]) {
          edge_stack.push_back(edge_id(v, w));  // back edge
          low[v] = std::min(low[v], disc[w]);
        }
        continue;
      }
      // v finished: propagate lowlink and close components.
      stack.pop_back();
      if (stack.empty()) {
        // Root: it is an articulation point iff it has >= 2 tree
        // children (already detected when closing each child below).
        continue;
      }
      Frame& parent_frame = stack.back();
      const Vertex u = parent_frame.v;
      low[u] = std::min(low[u], low[v]);
      if (low[v] >= disc[u]) {
        // u separates v's subtree: close the component rooted at (u, v).
        pop_component(edge_id(u, v));
      }
    }
  }

  // Articulation points, exactly: a vertex is an articulation point iff
  // edges of at least two distinct biconnected components touch it.
  {
    std::vector<std::uint32_t> first_comp(n, static_cast<std::uint32_t>(-1));
    std::vector<std::uint8_t> multi(n, 0);
    for (std::size_t e = 0; e < result.edge_endpoints.size(); ++e) {
      const auto comp = result.edge_component[e];
      for (const Vertex v :
           {result.edge_endpoints[e].first, result.edge_endpoints[e].second}) {
        if (first_comp[v] == static_cast<std::uint32_t>(-1)) {
          first_comp[v] = comp;
        } else if (first_comp[v] != comp) {
          multi[v] = 1;
        }
      }
    }
    result.is_articulation = std::move(multi);
  }
  return result;
}

}  // namespace sepsp
