// Weighted directed graph in compressed-sparse-row form.
//
// Vertices are dense ids [0, n). Weights are real-valued (double); the
// semiring layer (src/semiring) maps them into other path algebras, so
// one graph instance serves shortest-path, reachability and bottleneck
// computations (paper remark iv: the decomposition depends only on the
// unweighted skeleton).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace sepsp {

using Vertex = std::uint32_t;
constexpr Vertex kInvalidVertex = static_cast<Vertex>(-1);

/// A directed edge as stored in adjacency lists: target + weight.
struct Arc {
  Vertex to = 0;
  double weight = 0.0;
  bool operator==(const Arc&) const = default;
};

/// A directed edge with explicit endpoints, used by builders.
struct EdgeTriple {
  Vertex from = 0;
  Vertex to = 0;
  double weight = 0.0;
  bool operator==(const EdgeTriple&) const = default;
};

/// Immutable CSR digraph. Construct via GraphBuilder.
class Digraph {
 public:
  Digraph() = default;

  std::size_t num_vertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_edges() const { return arcs_.size(); }

  /// Out-arcs of u, ordered by target id.
  std::span<const Arc> out(Vertex u) const {
    SEPSP_DCHECK(u < num_vertices());
    return {arcs_.data() + offsets_[u], arcs_.data() + offsets_[u + 1]};
  }

  std::size_t out_degree(Vertex u) const { return out(u).size(); }

  /// All arcs grouped by source; arc i has source `source_of(i)`.
  std::span<const Arc> arcs() const { return arcs_; }

  /// Source vertex of arc index i: O(1) lookup in the memoized
  /// arc→source index (built on first use; the seed's binary search
  /// over offsets cost O(log n) per call).
  Vertex source_of(std::size_t arc_index) const;

  /// The full arc→source map: entry i is the source of arcs()[i].
  /// Built lazily once per graph structure (thread-safe); copies of the
  /// graph share the memoized index. Callers iterating arcs() resolve
  /// sources with one indexed load per arc instead of a binary search.
  std::span<const Vertex> arc_sources() const;

  /// Edge list reconstruction (m triples, grouped by source).
  std::vector<EdgeTriple> edge_list() const;

  /// Graph with every arc reversed (weights preserved).
  Digraph transpose() const;

  /// Subgraph induced by `vertices` (need not be sorted; duplicates are
  /// an error). See InducedSubgraph below. Declared out-of-class because
  /// the result holds a Digraph by value.
  struct Induced;
  Induced induced(std::span<const Vertex> vertices) const;

  /// True if (u, v) is an arc; if so, *weight receives the minimum weight
  /// among parallel (u, v) arcs.
  bool find_arc(Vertex u, Vertex v, double* weight = nullptr) const;

  /// Sum of all arc weights (diagnostic).
  double total_weight() const;

 private:
  friend class GraphBuilder;

  /// Memoized arc→source map (see arc_sources()). Held behind a
  /// shared_ptr so the defaulted copy/move members stay valid — the
  /// graph is immutable once built, so copies sharing the index (and
  /// its std::once_flag, which is itself neither copyable nor movable)
  /// is exactly right.
  struct ArcSourceIndex {
    std::once_flag once;
    std::vector<Vertex> source;
  };

  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<Arc> arcs_;             // size m, sorted by (source, target)
  std::shared_ptr<ArcSourceIndex> arc_index_ =
      std::make_shared<ArcSourceIndex>();
};

/// Result of Digraph::induced(): the subgraph plus both id mappings.
struct Digraph::Induced {
  Digraph graph;
  std::vector<Vertex> global_of;  ///< local id -> original id
  std::vector<Vertex> local_of;   ///< original id -> local id or invalid
};

/// Accumulates edges, then freezes them into a Digraph.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_vertices) : n_(num_vertices) {}

  std::size_t num_vertices() const { return n_; }
  std::size_t num_edges() const { return edges_.size(); }

  /// Appends the directed edge u -> v.
  void add_edge(Vertex u, Vertex v, double weight) {
    SEPSP_DCHECK(u < n_ && v < n_);
    edges_.push_back({u, v, weight});
  }

  /// Appends u -> v and v -> u with the same weight.
  void add_bidirectional(Vertex u, Vertex v, double weight) {
    add_edge(u, v, weight);
    add_edge(v, u, weight);
  }

  void add_edges(std::span<const EdgeTriple> edges) {
    edges_.insert(edges_.end(), edges.begin(), edges.end());
  }

  /// Builds the CSR graph. Parallel edges are merged keeping the minimum
  /// weight when `dedup_min` (the correct reduction for all semirings we
  /// instantiate: min-plus, Boolean, max-min on costs mapped accordingly).
  Digraph build(bool dedup_min = true) &&;

 private:
  std::size_t n_;
  std::vector<EdgeTriple> edges_;
};

}  // namespace sepsp
