#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>

namespace sepsp {

BfsResult bfs(const Digraph& g, Vertex source) {
  const std::size_t n = g.num_vertices();
  SEPSP_CHECK(source < n);
  BfsResult r;
  r.hops.assign(n, BfsResult::kUnreachedHops);
  r.parent.assign(n, kInvalidVertex);
  std::deque<Vertex> queue{source};
  r.hops[source] = 0;
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop_front();
    for (const Arc& a : g.out(u)) {
      if (r.hops[a.to] == BfsResult::kUnreachedHops) {
        r.hops[a.to] = r.hops[u] + 1;
        r.parent[a.to] = u;
        queue.push_back(a.to);
      }
    }
  }
  return r;
}

BfsResult bfs(const Skeleton& s, Vertex source,
              std::span<const std::uint8_t> mask) {
  const std::size_t n = s.num_vertices();
  SEPSP_CHECK(source < n);
  SEPSP_CHECK(mask.empty() || mask.size() == n);
  SEPSP_CHECK(mask.empty() || mask[source]);
  BfsResult r;
  r.hops.assign(n, BfsResult::kUnreachedHops);
  r.parent.assign(n, kInvalidVertex);
  std::deque<Vertex> queue{source};
  r.hops[source] = 0;
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop_front();
    for (const Vertex v : s.neighbors(u)) {
      if (!mask.empty() && !mask[v]) continue;
      if (r.hops[v] == BfsResult::kUnreachedHops) {
        r.hops[v] = r.hops[u] + 1;
        r.parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  return r;
}

Components connected_components(const Skeleton& s,
                                std::span<const std::uint8_t> mask) {
  const std::size_t n = s.num_vertices();
  SEPSP_CHECK(mask.empty() || mask.size() == n);
  Components c;
  c.id.assign(n, Components::kNoComponent);
  std::vector<Vertex> stack;
  for (Vertex root = 0; root < n; ++root) {
    if (c.id[root] != Components::kNoComponent) continue;
    if (!mask.empty() && !mask[root]) continue;
    const auto comp = static_cast<std::uint32_t>(c.count++);
    c.size.push_back(0);
    stack.push_back(root);
    c.id[root] = comp;
    while (!stack.empty()) {
      const Vertex u = stack.back();
      stack.pop_back();
      ++c.size[comp];
      for (const Vertex v : s.neighbors(u)) {
        if (!mask.empty() && !mask[v]) continue;
        if (c.id[v] == Components::kNoComponent) {
          c.id[v] = comp;
          stack.push_back(v);
        }
      }
    }
  }
  return c;
}

namespace {

// Iterative Tarjan SCC frame.
struct TarjanFrame {
  Vertex v;
  std::size_t arc_index;
};

}  // namespace

SccResult strongly_connected_components(const Digraph& g) {
  const std::size_t n = g.num_vertices();
  SccResult result;
  result.id.assign(n, static_cast<std::uint32_t>(-1));

  constexpr std::uint32_t kUnvisited = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<Vertex> scc_stack;
  std::vector<TarjanFrame> frames;
  std::uint32_t next_index = 0;

  for (Vertex root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    while (!frames.empty()) {
      auto& frame = frames.back();
      const Vertex v = frame.v;
      if (frame.arc_index == 0) {
        index[v] = lowlink[v] = next_index++;
        scc_stack.push_back(v);
        on_stack[v] = 1;
      }
      const auto arcs = g.out(v);
      bool descended = false;
      while (frame.arc_index < arcs.size()) {
        const Vertex w = arcs[frame.arc_index++].to;
        if (index[w] == kUnvisited) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;
      // All arcs processed: close v.
      if (lowlink[v] == index[v]) {
        const auto comp = static_cast<std::uint32_t>(result.count++);
        for (;;) {
          const Vertex w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = 0;
          result.id[w] = comp;
          if (w == v) break;
        }
      }
      frames.pop_back();
      if (!frames.empty()) {
        const Vertex parent = frames.back().v;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  return result;
}

std::optional<std::vector<Vertex>> topological_order(const Digraph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<std::uint32_t> in_degree(n, 0);
  for (const Arc& a : g.arcs()) ++in_degree[a.to];
  std::vector<Vertex> order;
  order.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    if (in_degree[v] == 0) order.push_back(v);
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (const Arc& a : g.out(order[head])) {
      if (--in_degree[a.to] == 0) order.push_back(a.to);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool is_connected(const Skeleton& s) {
  if (s.num_vertices() == 0) return true;
  const auto r = bfs(s, 0);
  return std::none_of(r.hops.begin(), r.hops.end(), [](std::uint32_t h) {
    return h == BfsResult::kUnreachedHops;
  });
}

}  // namespace sepsp
