// (1 + eps)-approximate engine: weight rounding + shortcut pruning.
//
// The error budget eps splits in two:
//
//   * Rounding (eps_r = eps / 2): weights are rounded *up* to multiples
//     of the unit u = eps_r * w_min and the whole pipeline runs over
//     the exact integer semiring TropicalI — bit-reproducible across
//     platforms, no floating-point drift. A path of k edges gains at
//     most k * u <= eps_r * dist (Klein–Sairam-style scaling, as in the
//     seed this subsystem replaces).
//   * Pruning (delta = eps_r / (1 + eps_r)): the sparsified Algorithm
//     4.1 build (approx/sparsify.hpp) drops emitted shortcuts that a
//     retained pivot witnesses within relative slack delta, shrinking
//     |E+| and every |E+|-proportional build/query phase.
//
// Composition: (1 + eps_r)(1 + delta) = 1 + eps exactly, so
//     dist(u,v) <= approx(u,v) <= (1 + eps) * dist(u,v)
// for positive weights. The build also reports the tighter factor it
// actually certifies (delta_used = 0 when nothing was pruned).
//
// Queries run the leveled schedule plus a fixpoint polish
// (LeveledQuery::run_into_converged / run_block_converged): pruning can
// put two consecutive same-level hops on an optimal pruned path, which
// the fixed sweep order alone does not cover. Everything else — the
// buckets, the batched/SIMD TropicalI kernels, the structural sharing —
// is the exact machinery, unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "graph/digraph.hpp"
#include "separator/decomposition.hpp"

namespace sepsp {

class ApproxEngine {
 public:
  /// The exact facade's options type: Options::Build::approx_eps is the
  /// end-to-end budget (required nonzero here, rejected by the exact
  /// build()); the Query half applies as usual except that
  /// detect_negative_cycles is forced off (positive weights are a
  /// precondition). Only the recursive builder supports the sparsified
  /// emission — BuilderKind::kDoubling is rejected.
  using Options = SeparatorShortestPaths<TropicalI>::Options;

  /// Preprocesses with budget options.build.approx_eps in (0, 1]. All
  /// weights must be > 0. The caller must keep `g` alive for the
  /// engine's lifetime (the engine snapshots the weights into its own
  /// scaled graph, but not the structure).
  static ApproxEngine build(const Digraph& g, const SeparatorTree& tree,
                            const Options& options);

  /// Like build(), but reads arc weights from `weights` (indexed like
  /// g.arcs()) instead of the graph's own — the serving hook: an
  /// IncrementalEngine's effective weights can be snapshotted into an
  /// approximate engine without materializing a reweighted Digraph.
  static ApproxEngine build_with_weights(const Digraph& g,
                                         const SeparatorTree& tree,
                                         std::span<const double> weights,
                                         const Options& options);

  /// Approximate distances from `source`, rescaled to the original
  /// weighting: dist <= out[v] <= (1 + eps) * dist; +infinity for
  /// unreachable vertices.
  std::vector<double> distances(Vertex source) const;

  /// Allocation-free distances(): fills the caller's buffer (size must
  /// equal num_vertices; prior contents ignored) and returns the run's
  /// counters. The integer scratch row is thread_local, so steady-state
  /// serving does no per-query heap traffic.
  QueryStats distances_into(Vertex source, std::span<double> out) const;

  /// Batched many-source queries through the converged batched kernel;
  /// same BatchPolicy semantics as the exact facade. Results are
  /// rescaled doubles (reported as TropicalD-valued QueryResults with
  /// the usual zero()-sentinel contract for unreachable vertices).
  std::vector<QueryResult<TropicalD>> distances_batch(
      std::span<const Vertex> sources, BatchPolicy policy = {}) const;

  double eps() const;   ///< the end-to-end budget the build was given
  double unit() const;  ///< the rounding unit actually used

  /// The error factor minus one this build certifies:
  /// (1 + eps_r)(1 + delta_used) - 1 <= eps. Replies served from this
  /// engine are tagged with it.
  double certified_error() const;

  /// Largest relative error measured against an exact oracle and fed
  /// back via note_observed_error (0 until anything was fed back).
  double max_observed_error() const;
  void note_observed_error(double rel_error) const;

  std::uint64_t eplus_kept() const;     ///< finite shortcuts emitted
  std::uint64_t eplus_dropped() const;  ///< shortcuts pruned away

  /// The underlying exact-machinery engine over the scaled graph
  /// (integer distances; tests and benches introspect it).
  const SeparatorShortestPaths<TropicalI>& engine() const;

  /// Exact-facade stats of the underlying engine plus the approx block
  /// (approx_eps, unit, kept/dropped, certified vs. observed error).
  EngineStats stats() const;

 private:
  ApproxEngine() = default;
  struct State;
  std::shared_ptr<const State> state_;
};

}  // namespace sepsp
