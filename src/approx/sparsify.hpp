// Eps-pruned Algorithm 4.1: the exact leaves-up E+ build with a
// witness-based sparsification pass at every emission site.
//
// The recursive builder (core/builder_recursive.hpp) emits, per node,
// the *complete* shortcut graph on its separator and boundary sets.
// Completeness is what makes E+ large: most of those k(k-1) pairs are
// nearly the composition of two other pairs through some well-connected
// "pivot" vertex of the same set. This builder keeps the build-side
// recursion exact and prunes only what gets emitted:
//
//   * Per emission set (leaf B x B, internal S x S, internal B x B) a
//     handful of pivot vertices is chosen by connectivity score; every
//     pair touching a pivot is always emitted (the pivot "star").
//   * A non-pivot pair (i, j) of value v is dropped iff some pivot p
//     witnesses it within the certified slack:
//         extend(m[i][p], m[p][j]) <= v + floor(delta_l * v)
//     where delta_l is the pruning budget of the node's level.
//   * Budgets below kMinPruneDelta disable pruning outright. The floor
//     on the slack alone is not enough for a clean exact limit: scaled
//     values grow like 1/eps, so floor(delta * v) converges to
//     dist/w_min — not to 0 — and exactly-witnessed pairs would keep
//     being dropped at every budget. With the delta floor, the eps -> 0
//     limit reproduces the exact builder bit-for-bit.
//   * Hop compression: an internal node whose B -> S / S -> B
//     rectangles are smaller than its B x B square (2|B||S| <
//     |B|(|B|-1)) emits the rectangles instead. The square's
//     "cross the separator" component is exactly the three-hop
//     composition rectangle (x) S x S closure (x) rectangle — all three
//     emitted — and its "stay in one child" component is already
//     covered by that child's own emissions, so the square adds edges
//     but no information. Compression is exact and consumes no error
//     budget; it costs extra query hops, which the converged query
//     path absorbs. Like pruning it is enabled only when delta > 0, so
//     the exact limit stays bit-for-bit.
//
// Error composition — why budgets combine by max, not by product: the
// boundary matrices handed to the parent are the *exact* child
// distances (pruning touches only the emitted copy), so every retained
// witness pair carries an exact value. A query path decomposes into
// consecutive shortcut segments; replacing one dropped segment (i, j)
// by its witness (i, p), (p, j) costs at most a (1 + delta_l) factor
// on that segment alone and both replacement edges are themselves
// retained-and-exact, never re-inflated by another level's budget.
// Summing segment bounds, a path is stretched by at most
// (1 + max_l delta_l) end to end. A uniform per-level schedule
// delta_l = delta is therefore optimal: tapering any level only
// shrinks its pruning power without buying the other levels anything.
// sparsify_level_delta() keeps the per-level hook explicit.
//
// Query-side caveat the engine must honor: a witness pair (i, p),
// (p, j) lives on the *same* tree level as the dropped pair, so a
// pruned path can need two consecutive same-level hops — one more than
// the bitonic witness structure the fixed leveled schedule is built
// for — and a hop-compressed B x B pair needs the three-hop rectangle
// composition. LeveledQuery::run_into_converged() (the approx query
// path) closes both gaps with a fixpoint polish after the sweeps.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "core/augment.hpp"
#include "core/builder_recursive.hpp"
#include "core/builder_scratch.hpp"
#include "obs/obs.hpp"
#include "pram/thread_pool.hpp"
#include "semiring/matrix.hpp"
#include "util/vertex_index.hpp"

namespace sepsp {

/// Outcome counters of one sparsified build. kept counts the finite
/// shortcuts actually emitted (including rectangle entries the exact
/// builder has no counterpart for); dropped + hop_compressed counts the
/// finite pairs elided relative to the exact builder. Unreachable pairs
/// are compacted away before dedup (as in the exact builder's dedup)
/// and counted in neither.
struct SparsifyStats {
  std::uint64_t kept = 0;     ///< finite shortcuts emitted
  std::uint64_t dropped = 0;  ///< finite shortcuts pruned under a witness
  /// Finite internal B x B pairs elided by hop compression: the node
  /// emitted its B->S / S->B rectangles instead of the B x B square,
  /// so these pairs are recovered *exactly* at query time as the
  /// three-hop composition through the (emitted) S x S closure. They
  /// consume no error budget.
  std::uint64_t hop_compressed = 0;
  double delta = 0.0;  ///< per-level pruning budget delta_l
  /// max_l delta_l over levels that actually dropped something — the
  /// factor the build certifies (0 when nothing was pruned).
  double delta_used = 0.0;
};

namespace detail {

/// Pivots per emission set. More pivots widen the witness net (more
/// drops) but enlarge the always-kept star; 4 is a good trade on the
/// mesh/grid families.
inline constexpr std::size_t kSparsifyPivots = 4;
/// Sets smaller than this are emitted verbatim: with k(k-1) pairs near
/// the star size there is nothing to win.
inline constexpr std::size_t kSparsifyMinSet = 2 * kSparsifyPivots;
/// Budgets below this floor disable pruning outright (see the header
/// comment): in the scaled integer domain the per-pair slack
/// floor(delta * v) does not vanish with delta, so without the floor a
/// minuscule budget would still strip exactly-witnessed pairs and the
/// eps -> 0 limit would never reach the exact build.
inline constexpr double kMinPruneDelta = 1e-4;

/// The per-level budget schedule (see the header comment for why the
/// uniform schedule is the right one).
inline double sparsify_level_delta(double delta, std::uint32_t /*level*/) {
  return delta;
}

struct PruneCounters {
  std::atomic<std::uint64_t> kept{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> hop_compressed{0};
};

/// Whether an internal node's B x B square should be replaced by its
/// B -> S / S -> B rectangles. Purely size-driven, so the decision is
/// re-derivable anywhere from the node alone.
inline bool hop_compress_node(const DecompNode& t, double delta) {
  const std::size_t b = t.boundary.size();
  const std::size_t s = t.separator.size();
  return delta > 0.0 && b != 0 && s != 0 && 2 * b * s < pair_count(b);
}

/// Emits the complete ordered-pair set over `verts` (values from
/// at(i, j), indices into `verts`) into `out`, dropping witnessed
/// non-pivot pairs as described above. Returns past-the-end of the
/// emitted entries; the caller pads its slice. Emission order matches
/// the exact builder's (i-major), so a zero-drop run is bit-identical.
/// Chooses up to kSparsifyPivots pivot indices over a k-element set with
/// values at(i, j). Candidates are ranked by how widely they reach and
/// are reached: fewest unreachable partners first, then smallest summed
/// distance (sums accumulate in double so kInf-free totals cannot
/// overflow Value). Returns the number chosen: 0 when the set is below
/// kSparsifyMinSet (nothing to win over the star size).
template <typename At>
std::size_t select_pivots(std::size_t k, const At& at,
                          std::array<std::size_t, kSparsifyPivots>& pivots) {
  using S = TropicalI;
  using Value = S::Value;
  if (k < kSparsifyMinSet) return 0;
  struct Rank {
    std::uint32_t inf = 0;
    double sum = 0.0;
    std::uint32_t idx = 0;
  };
  std::vector<Rank> rank(k);
  for (std::size_t i = 0; i < k; ++i) rank[i].idx = static_cast<std::uint32_t>(i);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      const Value v = at(i, j);
      if (v >= S::kInf) {
        ++rank[i].inf;
        ++rank[j].inf;
      } else {
        rank[i].sum += static_cast<double>(v);
        rank[j].sum += static_cast<double>(v);
      }
    }
  }
  std::partial_sort(rank.begin(), rank.begin() + kSparsifyPivots, rank.end(),
                    [](const Rank& a, const Rank& b) {
                      if (a.inf != b.inf) return a.inf < b.inf;
                      if (a.sum != b.sum) return a.sum < b.sum;
                      return a.idx < b.idx;
                    });
  for (std::size_t p = 0; p < kSparsifyPivots; ++p) pivots[p] = rank[p].idx;
  return kSparsifyPivots;
}

template <typename At>
Shortcut<TropicalI>* emit_pruned(std::span<const Vertex> verts, const At& at,
                                 double delta, Shortcut<TropicalI>* out,
                                 PruneCounters& counters) {
  using S = TropicalI;
  using Value = S::Value;
  const std::size_t k = verts.size();

  std::array<std::size_t, kSparsifyPivots> pivots{};
  std::size_t num_pivots = 0;
  if (delta > 0.0) num_pivots = select_pivots(k, at, pivots);

  std::uint64_t kept = 0, dropped = 0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      const Value v = at(i, j);
      if (v >= S::kInf) {
        *out++ = {verts[i], verts[j], v};  // dedup removes it either way
        continue;
      }
      bool drop = false;
      if (num_pivots != 0) {
        bool star = false;
        for (std::size_t p = 0; p < num_pivots; ++p) {
          star = star || pivots[p] == i || pivots[p] == j;
        }
        // floor(delta v): the slack the level's budget certifies. A
        // slack of 0 keeps the pair, so delta -> 0 never drops (exact
        // parity) and witnesses are never accepted on a tie alone.
        const Value slack = static_cast<Value>(delta * static_cast<double>(v));
        if (!star && slack >= 1) {
          const Value bound = v + slack;
          for (std::size_t p = 0; p < num_pivots && !drop; ++p) {
            const std::size_t pv = pivots[p];
            drop = S::extend(at(i, pv), at(pv, j)) <= bound;
          }
        }
      }
      if (drop) {
        ++dropped;
      } else {
        ++kept;
        *out++ = {verts[i], verts[j], v};
      }
    }
  }
  counters.kept.fetch_add(kept, std::memory_order_relaxed);
  counters.dropped.fetch_add(dropped, std::memory_order_relaxed);
  return out;
}

}  // namespace detail

/// Algorithm 4.1 with eps-pruned emission, for the rounded-integer
/// semiring. Identical recursion and scratch machinery as
/// build_augmentation_recursive<TropicalI>; only the emitted shortcut
/// sets differ. `delta` is the per-level pruning budget (relative
/// slack); `delta < kMinPruneDelta` (in particular 0) reproduces the
/// exact builder's output bit-for-bit. Node slices are sized for the
/// unpruned counts and
/// padded with zero()-valued entries, which dedup_shortcuts() removes
/// along with ordinary unreachable pairs.
inline Augmentation<TropicalI> build_augmentation_sparsified(
    const Digraph& g, const SeparatorTree& tree, ClosureKind closure,
    double delta, SparsifyStats* stats = nullptr) {
  using S = TropicalI;
  using detail::kNpos;

  SEPSP_TRACE_SPAN("build.sparsified");
  if (delta < detail::kMinPruneDelta) delta = 0.0;
  const pram::CostScope scope;
  Augmentation<S> aug;
  aug.levels = compute_levels(tree);
  aug.height = tree.height();
  aug.ell = leaf_diameter_bound(tree);

  const std::size_t num_nodes = tree.num_nodes();
  std::vector<Matrix<S>> bnd(num_nodes);

  // Slices are sized for the *unpruned* counts — pruning decisions are
  // data-dependent, but a slice can only shrink. The unused tail of a
  // node's slice is padded with zero()-valued entries the final dedup
  // provably drops (no path beats the combine identity).
  std::vector<std::size_t> offsets(num_nodes);
  for (std::size_t id = 0; id < num_nodes; ++id) {
    const DecompNode& t = tree.node(id);
    if (t.is_leaf()) {
      offsets[id] = detail::pair_count(t.boundary.size());
    } else if (detail::hop_compress_node(t, delta)) {
      offsets[id] = detail::pair_count(t.separator.size()) +
                    2 * t.boundary.size() * t.separator.size();
    } else {
      offsets[id] = detail::pair_count(t.separator.size()) +
                    (t.boundary.empty()
                         ? 0
                         : detail::pair_count(t.boundary.size()));
    }
  }
  aug.shortcuts.resize(detail::offsets_from_counts(offsets));

  detail::ScratchPool<detail::RecursiveScratch<S>> scratch_pool([&] {
    return std::make_unique<detail::RecursiveScratch<S>>(g.num_vertices());
  });

  detail::PruneCounters counters;
  std::atomic<std::uint64_t> delta_used_bits{0};
  auto pad = [&](Shortcut<S>* out, std::size_t id) {
    Shortcut<S>* const end = aug.shortcuts.data() + offsets[id + 1];
    SEPSP_DCHECK(out <= end);
    while (out != end) *out++ = {0, 0, S::zero()};
  };
  auto note_drop_budget = [&](std::uint64_t before, double used) {
    // Record the largest per-level budget that actually dropped a pair
    // (monotone CAS on the double's bit pattern; budgets are >= 0).
    if (counters.dropped.load(std::memory_order_relaxed) == before) return;
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(used);
    std::uint64_t cur = delta_used_bits.load(std::memory_order_relaxed);
    while (std::bit_cast<double>(cur) < used &&
           !delta_used_bits.compare_exchange_weak(cur, bits,
                                                  std::memory_order_relaxed)) {
    }
  };

  // --- leaves: exact local APSP, pruned B x B emission ------------------
  auto process_leaf = [&](std::size_t id, double delta_l) {
    SEPSP_TRACE_SPAN("build.leaf");
    auto scratch = scratch_pool.acquire();
    const DecompNode& t = tree.node(id);
    const std::span<const Vertex> verts = t.vertices;
    scratch->map0.bind(verts);
    Matrix<S>& local = scratch->local;
    local.reset(verts.size());
    for (std::size_t i = 0; i < verts.size(); ++i) {
      local.at(i, i) = S::one();
      for (const Arc& a : g.out(verts[i])) {
        const std::size_t j = scratch->map0.find(a.to);
        if (j != kNpos) local.merge(i, j, S::from_weight(a.weight));
      }
    }
    floyd_warshall(local);
    const std::span<const Vertex> b = t.boundary;
    Matrix<S> bm(b.size());
    for (std::size_t p = 0; p < b.size(); ++p) {
      const std::size_t ip = scratch->map0.find(b[p]);
      for (std::size_t q = 0; q < b.size(); ++q) {
        bm.at(p, q) = local.at(ip, scratch->map0.find(b[q]));
      }
    }
    const std::uint64_t before = counters.dropped.load(std::memory_order_relaxed);
    Shortcut<S>* out = detail::emit_pruned(
        b, [&](std::size_t p, std::size_t q) { return bm.at(p, q); }, delta_l,
        aug.shortcuts.data() + offsets[id], counters);
    note_drop_budget(before, delta_l);
    pad(out, id);
    bnd[id] = std::move(bm);
  };

  // --- internal nodes: steps i-v, pruned S x S and B x B emission -------
  auto process_internal = [&](std::size_t id, double delta_l) {
    SEPSP_TRACE_SPAN("build.internal");
    auto scratch = scratch_pool.acquire();
    const DecompNode& t = tree.node(id);
    const std::span<const Vertex> st = t.separator;
    const std::span<const Vertex> bt = t.boundary;
    const std::array<std::size_t, 2> kids = {
        static_cast<std::size_t>(t.child[0]),
        static_cast<std::size_t>(t.child[1])};

    scratch->map0.bind(tree.node(kids[0]).boundary);
    scratch->map1.bind(tree.node(kids[1]).boundary);
    const detail::VertexIndexMap* child_map[2] = {&scratch->map0,
                                                  &scratch->map1};
    for (int c = 0; c < 2; ++c) {
      auto& s_in_child = scratch->s_in_child[c];
      s_in_child.resize(st.size());
      for (std::size_t i = 0; i < st.size(); ++i) {
        s_in_child[i] = child_map[c]->find(st[i]);
        SEPSP_CHECK_MSG(s_in_child[i] != kNpos,
                        "separator vertex missing from child boundary");
      }
      auto& b_in_child = scratch->b_in_child[c];
      b_in_child.resize(bt.size());
      for (std::size_t p = 0; p < bt.size(); ++p) {
        b_in_child[p] = child_map[c]->find(bt[p]);
      }
    }

    Matrix<S>& hs = scratch->hs;
    hs.reset(st.size());
    for (int c = 0; c < 2; ++c) {
      const Matrix<S>& cm = bnd[kids[c]];
      const auto& s_in_child = scratch->s_in_child[c];
      for (std::size_t i = 0; i < st.size(); ++i) {
        for (std::size_t j = 0; j < st.size(); ++j) {
          hs.merge(i, j, cm.at(s_in_child[i], s_in_child[j]));
        }
      }
    }
    detail::run_closure(hs, closure, scratch->square);
    const std::uint64_t before = counters.dropped.load(std::memory_order_relaxed);
    Shortcut<S>* out = detail::emit_pruned(
        st, [&](std::size_t i, std::size_t j) { return hs.at(i, j); }, delta_l,
        aug.shortcuts.data() + offsets[id], counters);

    if (!bt.empty()) {
      Matrix<S>& b_to_s = scratch->b_to_s;
      Matrix<S>& s_to_b = scratch->s_to_b;
      b_to_s.reset(bt.size(), st.size());
      s_to_b.reset(st.size(), bt.size());
      for (int c = 0; c < 2; ++c) {
        const Matrix<S>& cm = bnd[kids[c]];
        const auto& s_in_child = scratch->s_in_child[c];
        const auto& b_in_child = scratch->b_in_child[c];
        for (std::size_t p = 0; p < bt.size(); ++p) {
          const std::size_t bp = b_in_child[p];
          if (bp == kNpos) continue;
          for (std::size_t q = 0; q < st.size(); ++q) {
            b_to_s.merge(p, q, cm.at(bp, s_in_child[q]));
            s_to_b.merge(q, p, cm.at(s_in_child[q], bp));
          }
        }
      }
      multiply_into(b_to_s, hs, scratch->tmp);
      multiply_into(scratch->tmp, s_to_b, scratch->through);
      const Matrix<S>& through = scratch->through;
      Matrix<S> bm(bt.size());
      for (std::size_t p = 0; p < bt.size(); ++p) bm.at(p, p) = S::one();
      for (std::size_t p = 0; p < bt.size(); ++p) {
        for (std::size_t q = 0; q < bt.size(); ++q) {
          bm.merge(p, q, through.at(p, q));
        }
      }
      for (int c = 0; c < 2; ++c) {
        const Matrix<S>& cm = bnd[kids[c]];
        const auto& b_in_child = scratch->b_in_child[c];
        for (std::size_t p = 0; p < bt.size(); ++p) {
          const std::size_t bp = b_in_child[p];
          if (bp == kNpos) continue;
          for (std::size_t q = 0; q < bt.size(); ++q) {
            const std::size_t bq = b_in_child[q];
            if (bq == kNpos) continue;
            bm.merge(p, q, cm.at(bp, bq));
          }
        }
      }
      if (detail::hop_compress_node(t, delta)) {
        // The square is elided: emit the two rectangles the through
        // product was built from (exact child distances; finite entries
        // only — the padded tail covers the rest) and account the
        // square's finite pairs as hop-compressed. The rectangles are
        // witness-pruned with the S-side pivots of the hs closure: a
        // witness hop rides a pivot column of the rectangle (always
        // kept) and an hs star edge (always kept, exact), so dropped
        // entries keep the one-level exact-witness invariant the error
        // bound rests on.
        std::array<std::size_t, detail::kSparsifyPivots> spiv{};
        const std::size_t nsp = detail::select_pivots(
            st.size(),
            [&](std::size_t i, std::size_t j) { return hs.at(i, j); }, spiv);
        auto is_pivot = [&](std::size_t q) {
          for (std::size_t p = 0; p < nsp; ++p) {
            if (spiv[p] == q) return true;
          }
          return false;
        };
        std::uint64_t rect_kept = 0, rect_dropped = 0, square = 0;
        for (std::size_t p = 0; p < bt.size(); ++p) {
          for (std::size_t q = 0; q < st.size(); ++q) {
            const S::Value to_s = b_to_s.at(p, q);
            if (to_s < S::kInf) {
              bool drop = false;
              const S::Value slack =
                  static_cast<S::Value>(delta_l * static_cast<double>(to_s));
              if (nsp != 0 && slack >= 1 && !is_pivot(q)) {
                const S::Value bound = to_s + slack;
                for (std::size_t sp = 0; sp < nsp && !drop; ++sp) {
                  drop = S::extend(b_to_s.at(p, spiv[sp]),
                                   hs.at(spiv[sp], q)) <= bound;
                }
              }
              if (drop) {
                ++rect_dropped;
              } else {
                *out++ = {bt[p], st[q], to_s};
                ++rect_kept;
              }
            }
            const S::Value from_s = s_to_b.at(q, p);
            if (from_s < S::kInf) {
              bool drop = false;
              const S::Value slack =
                  static_cast<S::Value>(delta_l * static_cast<double>(from_s));
              if (nsp != 0 && slack >= 1 && !is_pivot(q)) {
                const S::Value bound = from_s + slack;
                for (std::size_t sp = 0; sp < nsp && !drop; ++sp) {
                  drop = S::extend(hs.at(q, spiv[sp]),
                                   s_to_b.at(spiv[sp], p)) <= bound;
                }
              }
              if (drop) {
                ++rect_dropped;
              } else {
                *out++ = {st[q], bt[p], from_s};
                ++rect_kept;
              }
            }
          }
        }
        for (std::size_t p = 0; p < bt.size(); ++p) {
          for (std::size_t q = 0; q < bt.size(); ++q) {
            if (p != q && bm.at(p, q) < S::kInf) ++square;
          }
        }
        counters.kept.fetch_add(rect_kept, std::memory_order_relaxed);
        counters.dropped.fetch_add(rect_dropped, std::memory_order_relaxed);
        counters.hop_compressed.fetch_add(square, std::memory_order_relaxed);
      } else {
        out = detail::emit_pruned(
            bt, [&](std::size_t p, std::size_t q) { return bm.at(p, q); },
            delta_l, out, counters);
      }
      bnd[id] = std::move(bm);
    } else {
      bnd[id] = Matrix<S>(0);
    }
    note_drop_budget(before, delta_l);
    pad(out, id);
    bnd[kids[0]].clear();
    bnd[kids[1]].clear();
  };

  const auto by_level = tree.ids_by_level();
  for (std::size_t lvl = by_level.size(); lvl-- > 0;) {
    SEPSP_TRACE_SPAN("build.level");
    const auto& ids = by_level[lvl];
    const double delta_l =
        detail::sparsify_level_delta(delta, static_cast<std::uint32_t>(lvl));
    pram::ThreadPool::global().parallel_for(0, ids.size(), [&](std::size_t k) {
      const std::size_t id = ids[k];
      if (tree.node(id).is_leaf()) {
        process_leaf(id, delta_l);
      } else {
        process_internal(id, delta_l);
      }
    });
    // Same critical-path accounting as the exact builder: the pruning
    // scan is O(set^2), dominated by the kernels it rides along with.
    std::uint64_t level_depth = 1;
    for (const std::size_t id : ids) {
      const DecompNode& t = tree.node(id);
      std::uint64_t d = 0;
      if (t.is_leaf()) {
        d = t.vertices.size();
      } else {
        const std::uint64_t s = t.separator.size();
        const std::uint64_t log_s = s < 2 ? 1 : std::bit_width(s - 1);
        d = closure == ClosureKind::kSquaring ? log_s * (log_s + 2) : s;
        d += 2 * (log_s + 1);
      }
      level_depth = std::max(level_depth, d);
    }
    aug.critical_depth += level_depth;
  }

  // Padding and unreachable entries all carry zero(); dedup would sort
  // and then discard them, so compact them out first — otherwise the
  // dedup sort stays proportional to the *unpruned* emission count and
  // the pruning never shows up in the build time.
  std::erase_if(aug.shortcuts, [](const Shortcut<S>& e) {
    return !S::improves(S::zero(), e.value);
  });
  dedup_shortcuts<S>(aug.shortcuts);
  aug.build_cost = scope.cost();
  if (stats != nullptr) {
    stats->kept = counters.kept.load(std::memory_order_relaxed);
    stats->dropped = counters.dropped.load(std::memory_order_relaxed);
    stats->hop_compressed =
        counters.hop_compressed.load(std::memory_order_relaxed);
    stats->delta = delta;
    stats->delta_used =
        std::bit_cast<double>(delta_used_bits.load(std::memory_order_relaxed));
  }
  SEPSP_OBS_ONLY(obs::counter("build.shortcuts").add(aug.shortcuts.size());
                 obs::counter("approx.eplus_dropped")
                     .add(counters.dropped.load(std::memory_order_relaxed));)
  return aug;
}

}  // namespace sepsp
