#include "approx/approx.hpp"

#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "approx/sparsify.hpp"
#include "core/query_batch.hpp"
#include "pram/thread_pool.hpp"
#include "util/check.hpp"

namespace sepsp {

struct ApproxEngine::State {
  Digraph scaled;  // integer-valued weights (stored in doubles)
  double eps = 0.0;
  double unit = 1.0;
  double eps_round = 0.0;  ///< rounding half of the budget
  double delta = 0.0;      ///< pruning half of the budget
  SparsifyStats sparsify;
  std::optional<SeparatorShortestPaths<TropicalI>> engine;
  /// Monotone max of oracle-measured relative errors (stats feedback).
  mutable std::atomic<double> observed{0.0};
};

namespace {

double rescaled(long long v, double unit) {
  return v >= TropicalI::kInf ? std::numeric_limits<double>::infinity()
                              : static_cast<double>(v) * unit;
}

QueryResult<TropicalD> rescaled_result(const QueryResult<TropicalI>& r,
                                       double unit) {
  QueryResult<TropicalD> out;
  out.dist.resize(r.dist.size());
  for (std::size_t v = 0; v < r.dist.size(); ++v) {
    out.dist[v] = rescaled(r.dist[v], unit);
  }
  out.negative_cycle = r.negative_cycle;
  out.edges_scanned = r.edges_scanned;
  out.phases = r.phases;
  return out;
}

template <std::size_t B>
std::vector<QueryResult<TropicalD>> batch_converged(
    const SeparatorShortestPaths<TropicalI>& engine, double unit,
    std::span<const Vertex> sources) {
  std::vector<QueryResult<TropicalD>> results(sources.size());
  if (sources.empty()) return results;
  const BatchedLeveledQuery<TropicalI, B> batched(engine.query_engine());
  const std::size_t blocks = (sources.size() + B - 1) / B;
  pram::ThreadPool::global().parallel_for(
      0, blocks,
      [&](std::size_t blk) {
        const std::size_t lo = blk * B;
        const std::size_t len = std::min(B, sources.size() - lo);
        const auto block = batched.run_block_converged(sources.subspan(lo, len));
        for (std::size_t i = 0; i < len; ++i) {
          results[lo + i] = rescaled_result(block[i], unit);
        }
      },
      /*grain=*/1);
  return results;
}

}  // namespace

ApproxEngine ApproxEngine::build(const Digraph& g, const SeparatorTree& tree,
                                 const Options& options) {
  std::vector<double> weights;
  weights.reserve(g.num_edges());
  for (const Arc& a : g.arcs()) weights.push_back(a.weight);
  return build_with_weights(g, tree, weights, options);
}

ApproxEngine ApproxEngine::build_with_weights(const Digraph& g,
                                              const SeparatorTree& tree,
                                              std::span<const double> weights,
                                              const Options& options) {
  SEPSP_CHECK(tree.num_graph_vertices() == g.num_vertices());
  SEPSP_TRACE_SPAN("approx.build");
  const Options resolved = options.validated();
  SEPSP_CHECK_MSG(resolved.build.approx_eps > 0.0,
                  "ApproxEngine needs Options::Build::approx_eps in (0, 1]");
  SEPSP_CHECK_MSG(resolved.build.builder == BuilderKind::kRecursive,
                  "the sparsified build prunes Algorithm 4.1's emission "
                  "sites; BuilderKind::kDoubling is not supported");
  SEPSP_CHECK(weights.size() == g.num_edges());

  // The state is heap-allocated before anything is built into it: the
  // engine references state->scaled, so the graph must already sit at
  // its final address when the engine is constructed.
  auto state = std::make_shared<State>();
  State& s = *state;
  s.eps = resolved.build.approx_eps;
  // Budget split: (1 + eps_r)(1 + delta) = 1 + eps exactly.
  s.eps_round = s.eps / 2.0;
  s.delta = s.eps_round / (1.0 + s.eps_round);

  double min_weight = std::numeric_limits<double>::infinity();
  for (const double w : weights) {
    SEPSP_CHECK_MSG(w > 0, "approx engine needs positive weights");
    min_weight = std::min(min_weight, w);
  }
  s.unit = std::isinf(min_weight) ? 1.0 : s.eps_round * min_weight;

  GraphBuilder builder_scaled(g.num_vertices());
  const std::span<const Arc> arcs = g.arcs();
  const std::span<const Vertex> arc_src = g.arc_sources();
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    // Round *up*: approximations never undercut true distances.
    builder_scaled.add_edge(arc_src[i], arcs[i].to,
                            std::ceil(weights[i] / s.unit));
  }
  s.scaled = std::move(builder_scaled).build();

  Augmentation<TropicalI> aug = build_augmentation_sparsified(
      s.scaled, tree, resolved.build.closure, s.delta, &s.sparsify);

  Options engine_opts = resolved;
  engine_opts.build.approx_eps = 0.0;  // the exact facade rejects it
  engine_opts.query.detect_negative_cycles = false;  // weights are positive
  s.engine.emplace(SeparatorShortestPaths<TropicalI>::from_augmentation(
      s.scaled, std::move(aug), engine_opts));

  ApproxEngine out;
  out.state_ = std::move(state);
  return out;
}

std::vector<double> ApproxEngine::distances(Vertex source) const {
  std::vector<double> out(state_->scaled.num_vertices());
  distances_into(source, out);
  return out;
}

QueryStats ApproxEngine::distances_into(Vertex source,
                                        std::span<double> out) const {
  const State& s = *state_;
  SEPSP_CHECK(out.size() == s.scaled.num_vertices());
  // Integer scratch row: thread_local so steady-state serving allocates
  // only on a thread's first query (the buffer cannot alias the
  // caller's double span — the value types differ).
  static thread_local std::vector<long long> scratch;
  scratch.resize(out.size());
  const QueryStats stats = s.engine->query_engine().run_into_converged(
      source, std::span<long long>(scratch));
  for (std::size_t v = 0; v < out.size(); ++v) {
    out[v] = rescaled(scratch[v], s.unit);
  }
  return stats;
}

std::vector<QueryResult<TropicalD>> ApproxEngine::distances_batch(
    std::span<const Vertex> sources, BatchPolicy policy) const {
  const State& s = *state_;
  if (policy.force_per_source) {
    std::vector<QueryResult<TropicalD>> results(sources.size());
    pram::ThreadPool::global().parallel_for(0, sources.size(),
                                            [&](std::size_t i) {
      QueryResult<TropicalD>& r = results[i];
      r.dist.resize(s.scaled.num_vertices());
      const QueryStats st = distances_into(sources[i], r.dist);
      r.negative_cycle = st.negative_cycle;
      r.edges_scanned = st.edges_scanned;
      r.phases = st.phases;
    });
    return results;
  }
  const std::size_t lanes =
      policy.lanes == 0 ? s.engine->query_options().batch_lanes : policy.lanes;
  switch (lanes) {
    case 1:
      return batch_converged<1>(*s.engine, s.unit, sources);
    case 2:
      return batch_converged<2>(*s.engine, s.unit, sources);
    case 4:
      return batch_converged<4>(*s.engine, s.unit, sources);
    case 8:
      return batch_converged<8>(*s.engine, s.unit, sources);
    case 16:
      return batch_converged<16>(*s.engine, s.unit, sources);
    case 32:
      return batch_converged<32>(*s.engine, s.unit, sources);
    default:
      SEPSP_CHECK_MSG(false,
                      "BatchPolicy::lanes must be one of 1, 2, 4, 8, 16, 32 "
                      "(or 0 for the engine default)");
      return {};
  }
}

double ApproxEngine::eps() const { return state_->eps; }
double ApproxEngine::unit() const { return state_->unit; }

double ApproxEngine::certified_error() const {
  const State& s = *state_;
  return (1.0 + s.eps_round) * (1.0 + s.sparsify.delta_used) - 1.0;
}

double ApproxEngine::max_observed_error() const {
  return state_->observed.load(std::memory_order_relaxed);
}

void ApproxEngine::note_observed_error(double rel_error) const {
  std::atomic<double>& obs = state_->observed;
  double cur = obs.load(std::memory_order_relaxed);
  while (rel_error > cur &&
         !obs.compare_exchange_weak(cur, rel_error,
                                    std::memory_order_relaxed)) {
  }
}

std::uint64_t ApproxEngine::eplus_kept() const {
  return state_->sparsify.kept;
}
std::uint64_t ApproxEngine::eplus_dropped() const {
  // Witness-pruned pairs plus hop-compressed B x B pairs: everything
  // the exact builder would have emitted that this build elided.
  return state_->sparsify.dropped + state_->sparsify.hop_compressed;
}

const SeparatorShortestPaths<TropicalI>& ApproxEngine::engine() const {
  return *state_->engine;
}

EngineStats ApproxEngine::stats() const {
  const State& s = *state_;
  EngineStats st = s.engine->stats();
  st.approx_eps = s.eps;
  st.approx_unit = s.unit;
  st.eplus_kept = s.sparsify.kept;
  st.eplus_dropped = s.sparsify.dropped + s.sparsify.hop_compressed;
  st.certified_error = certified_error();
  st.max_observed_error = max_observed_error();
  return st;
}

}  // namespace sepsp
