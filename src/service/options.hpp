// Tuning knobs of the query-serving runtime (src/service/service.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "semiring/semiring.hpp"
#include "util/check.hpp"

namespace sepsp::service {

struct ServiceOptions {
  // --- batch coalescer ------------------------------------------------
  /// Lane-group width B: requests are coalesced into distances_batch
  /// calls of at most this many sources (one batched-kernel block).
  /// Must be a width the kernel dispatches: 1, 2, 4, 8, 16, or 32.
  std::size_t lanes = 8;
  /// Flush deadline: a partial lane group is dispatched once its oldest
  /// request has waited this long. 0 flushes immediately (no
  /// coalescing beyond what is already queued).
  std::uint32_t max_delay_us = 200;
  /// Admission bound on queued (not yet dispatched) requests; a submit
  /// that would exceed it is shed with ReplyStatus::kShed instead of
  /// growing the queue without bound.
  std::size_t max_queue = 1024;
  /// Dispatcher threads draining the queue into lane groups. 0 means no
  /// background dispatch: requests queue until stop() drains them —
  /// only useful for tests that need deterministic queue states.
  unsigned dispatchers = 1;

  // --- distance cache -------------------------------------------------
  /// Master switch; when false every request takes the miss path.
  bool cache_enabled = true;
  /// Total byte budget across shards for cached distance vectors
  /// (payload-accounted: n doubles + fixed per-entry overhead).
  std::size_t cache_capacity_bytes = std::size_t{64} << 20;
  /// Lock shards; higher values cut contention at the cost of slightly
  /// ragged per-shard LRU. Rounded up to a power of two.
  std::size_t cache_shards = 8;

  // --- point-to-point serving ------------------------------------------
  /// Builds hub labels + routing tables per epoch so StDistance/StPath
  /// requests resolve at submit time. Costs a transpose-engine build at
  /// startup and a label/routing rebuild per apply_updates() (off the
  /// swap critical path, on the work-stealing pool). When false, st
  /// submits abort: a caller that never sends st traffic pays nothing.
  bool point_to_point = true;
  /// Byte budget of the (epoch, s, t)-keyed answer cache.
  std::size_t st_cache_capacity_bytes = std::size_t{16} << 20;
  /// Lock shards of the st-cache; rounded up to a power of two.
  std::size_t st_cache_shards = 8;

  // --- placement --------------------------------------------------------
  /// Logical CPUs this service's dispatcher threads pin themselves to
  /// (dispatcher i pins to pin_cpus[i % size]). Empty = no pinning.
  /// Used by the sharded front-end (service/sharded.hpp) to keep each
  /// shard's workers on the shard's home NUMA node; pinning is
  /// advisory — a rejected affinity call is ignored.
  std::vector<int> pin_cpus;

  // --- approximate serving ----------------------------------------------
  struct Approx {
    /// Builds a (1 + eps)-approximate engine (src/approx) beside the
    /// exact one — at construction and again inside every
    /// apply_updates() — so requests submitted with `approx = true`
    /// resolve against it. Approximate answers live in their own
    /// (epoch, mode)-keyed caches and replies carry the engine's
    /// certified error bound. When false, approx submits abort: a
    /// caller that never sends approx traffic pays nothing.
    bool enabled = false;
    /// End-to-end relative-error budget of that engine, in (0, 1].
    double eps = 0.1;
  };
  Approx approx;

  // --- snapshot engines -------------------------------------------------
  /// Options for the engines frozen at each epoch swap; only the Query
  /// half applies (builds already happened in the incremental engine).
  SeparatorShortestPaths<TropicalD>::Options engine;

  /// Verifies coherence (fatal SEPSP_CHECK on nonsense): a lane width
  /// the batched kernel cannot dispatch, or a zero-shard cache.
  ServiceOptions validated() const {
    ServiceOptions r = *this;
    SEPSP_CHECK_MSG(r.lanes == 1 || r.lanes == 2 || r.lanes == 4 ||
                        r.lanes == 8 || r.lanes == 16 || r.lanes == 32,
                    "ServiceOptions::lanes must be one of 1, 2, 4, 8, 16, 32");
    SEPSP_CHECK_MSG(r.max_queue > 0,
                    "ServiceOptions::max_queue must admit at least one "
                    "request");
    SEPSP_CHECK_MSG(r.cache_shards > 0,
                    "ServiceOptions::cache_shards must be positive");
    while ((r.cache_shards & (r.cache_shards - 1)) != 0) ++r.cache_shards;
    SEPSP_CHECK_MSG(r.st_cache_shards > 0,
                    "ServiceOptions::st_cache_shards must be positive");
    while ((r.st_cache_shards & (r.st_cache_shards - 1)) != 0) {
      ++r.st_cache_shards;
    }
    SEPSP_CHECK_MSG(!r.approx.enabled ||
                        (r.approx.eps > 0.0 && r.approx.eps <= 1.0),
                    "ServiceOptions::approx.eps must lie in (0, 1]");
    r.engine = r.engine.validated();
    return r;
  }
};

}  // namespace sepsp::service
