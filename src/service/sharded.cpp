#include "service/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "util/check.hpp"
#include "util/random.hpp"

namespace sepsp::service {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void fetch_max(PaddedAtomicU64& cell, std::uint64_t v) {
  std::uint64_t prev = cell.load(std::memory_order_relaxed);
  while (prev < v && !cell.compare_exchange_weak(prev, v,
                                                 std::memory_order_relaxed)) {
  }
}

}  // namespace

ShardedOptions ShardedOptions::validated(const pram::Topology& topo) const {
  ShardedOptions r = *this;
  if (r.shards == 0) {
    r.shards = static_cast<unsigned>(std::max<std::size_t>(
        1, topo.nodes.size()));
  }
  r.shard = r.shard.validated();
  if (r.divide_cache_budget && r.shards > 1) {
    r.shard.cache_capacity_bytes /= r.shards;
    r.shard.st_cache_capacity_bytes /= r.shards;
  }
  return r;
}

ShardedService::ShardedService(const Digraph& g, const SeparatorTree& tree,
                               const ShardedOptions& options)
    : topo_(pram::Topology::system()),
      opts_(options.validated(topo_)) {
  const std::size_t n = opts_.shards;
  shards_.resize(n);
  home_cpus_.resize(n);
  if (opts_.routing.kind == RoutingPolicy::Kind::kHotReplicated) {
    for (const Vertex v : opts_.routing.hot_sources) {
      if (static_cast<std::size_t>(v) >= hot_.size()) {
        hot_.resize(static_cast<std::size_t>(v) + 1, false);
      }
      hot_[static_cast<std::size_t>(v)] = true;
    }
  }

  // Build every replica on a thread pinned to its home node: the
  // engine build's first-touch faults then land the shard's E+
  // labels, caches, and queue on node-local pages. The builds (the
  // expensive part of construction) run in parallel across shards.
  std::vector<std::thread> builders;
  std::vector<std::exception_ptr> errors(n);
  builders.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ServiceOptions shard_opts = opts_.shard;
    if (opts_.pin) {
      home_cpus_[i] = topo_.home_of(i).cpus;
      shard_opts.pin_cpus = home_cpus_[i];
    }
    builders.emplace_back([this, i, &g, &tree, &errors,
                           shard_opts = std::move(shard_opts)] {
      try {
        if (!home_cpus_[i].empty()) pram::pin_current_thread(home_cpus_[i]);
        shards_[i] = std::make_unique<QueryService>(
            IncrementalEngine::build(g, tree), shard_opts);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& b : builders) b.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

ShardedService::~ShardedService() { stop(); }

std::size_t ShardedService::shard_of_source(Vertex source) {
  if (shards_.size() == 1) return 0;
  const auto v = static_cast<std::size_t>(source);
  if (v < hot_.size() && hot_[v]) {
    // Hot sources round-robin so their (replicated) cache entries and
    // read load spread over every shard.
    return round_robin_.fetch_add(1, std::memory_order_relaxed) %
           shards_.size();
  }
  return splitmix64(static_cast<std::uint64_t>(source)) % shards_.size();
}

std::size_t ShardedService::shard_of_pair(Vertex s, Vertex t) const {
  if (shards_.size() == 1) return 0;
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(s) << 32) | static_cast<std::uint64_t>(t);
  return splitmix64(packed) % shards_.size();
}

std::uint64_t ShardedService::apply_updates(
    std::span<const EdgeUpdate> updates) {
  std::lock_guard<std::mutex> lock(fanout_mutex_);
  const std::uint64_t start = now_ns();
  std::vector<std::uint64_t> epochs(shards_.size(), 0);
  std::vector<std::exception_ptr> errors(shards_.size());
  std::vector<std::thread> workers;
  workers.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    workers.emplace_back([this, i, updates, &epochs, &errors] {
      try {
        if (!home_cpus_[i].empty()) pram::pin_current_thread(home_cpus_[i]);
        epochs[i] = shards_[i]->apply_updates(updates);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& w : workers) w.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  for (std::size_t i = 1; i < epochs.size(); ++i) {
    SEPSP_CHECK_MSG(epochs[i] == epochs[0],
                    "sharded epoch fan-out must land every shard on the "
                    "same epoch");
  }
  const std::uint64_t wall = now_ns() - start;
  swap_fanouts_.fetch_add(1, std::memory_order_relaxed);
  swap_wall_ns_sum_.fetch_add(wall, std::memory_order_relaxed);
  fetch_max(swap_wall_ns_max_, wall);
  return epochs[0];
}

ShardedStats ShardedService::stats() const {
  ShardedStats out;
  out.shards.reserve(shards_.size());
  for (const auto& s : shards_) out.shards.push_back(s->stats());
  out.total = out.shards.front();
  for (std::size_t i = 1; i < out.shards.size(); ++i) {
    accumulate(out.total, out.shards[i]);
    out.epochs_consistent &= out.shards[i].epoch == out.shards[0].epoch;
  }
  out.swap_fanouts = swap_fanouts_.load(std::memory_order_relaxed);
  out.swap_wall_ns_sum = swap_wall_ns_sum_.load(std::memory_order_relaxed);
  out.swap_wall_ns_max = swap_wall_ns_max_.load(std::memory_order_relaxed);
  return out;
}

void ShardedService::stop() {
  for (auto& s : shards_) {
    if (s) s->stop();
  }
}

double ShardedStats::completed_balance() const {
  if (shards.empty()) return 1.0;
  std::uint64_t lo = shards.front().completed;
  std::uint64_t hi = lo;
  for (const auto& s : shards) {
    lo = std::min(lo, s.completed);
    hi = std::max(hi, s.completed);
  }
  return hi == 0 ? 1.0 : static_cast<double>(lo) / static_cast<double>(hi);
}

}  // namespace sepsp::service
