// The typed request/response surface of the query-serving runtime
// (src/service/).
//
// Requests come in three kinds. SingleSource rides the coalescing queue
// into batched kernel groups; StDistance and StPath resolve at submit
// time against the current snapshot's hub labels / routing tables (no
// queue hop, no lane group — a label merge runs in microseconds, so
// batching would only add latency).
//
// Replies share their payloads: a cache hit and the miss that populated
// it hand out the same immutable object (CachedDistances for
// single-source, CachedStAnswer for point-to-point), so hit/miss parity
// is bit-identical by construction and a reply stays valid after the
// service, the cache entry, and the engine snapshot that computed it
// are gone.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/digraph.hpp"
#include "util/check.hpp"

namespace sepsp::service {

/// What a request asks for; every Reply is tagged with the kind that
/// produced it.
enum class RequestKind : std::uint8_t {
  kSingleSource,  ///< full distance vector from one source
  kStDistance,    ///< scalar s -> t distance (label merge)
  kStPath,        ///< s -> t distance + unpacked vertex path (routing walk)
};

/// Full single-source distances — the queued, lane-coalesced kind.
struct SingleSource {
  Vertex source = 0;
  /// Resolve against the snapshot's (1 + eps)-approximate engine
  /// (requires ServiceOptions::approx.enabled). The reply's error_bound
  /// carries the engine's certified bound.
  bool approx = false;
};

/// Point-to-point distance, answered from the snapshot's hub labels.
struct StDistance {
  Vertex s = 0;
  Vertex t = 0;
  /// Resolve against the approximate engine (see SingleSource::approx).
  /// Approximate st answers come from the approx distance cache (filled
  /// on miss), not from hub labels, so they work without point_to_point.
  bool approx = false;
};

/// Point-to-point distance plus the actual vertex path, unpacked by
/// forwarding hop-by-hop through the snapshot's routing tables.
struct StPath {
  Vertex s = 0;
  Vertex t = 0;
};

/// One immutable single-source answer, shared between the cache and
/// every reply that resolves to it.
struct CachedDistances {
  std::vector<double> dist;     ///< dist[v]; +inf = unreachable
  bool negative_cycle = false;  ///< a negative cycle is reachable
};

/// One immutable point-to-point answer. A StDistance miss stores just
/// the scalar; a StPath miss (or an upgraded entry) also carries the
/// unpacked path. Shared between the st-cache and every reply that
/// resolves to it.
struct CachedStAnswer {
  double distance = 0.0;  ///< +inf = unreachable
  bool has_path = false;  ///< path was unpacked (empty = unreachable)
  std::vector<Vertex> path;  ///< s, ..., t when has_path and reachable
};

enum class ReplyStatus : std::uint8_t {
  kOk,       ///< answered; the kind's payload is set
  kShed,     ///< rejected at admission (queue full) — retry or degrade
  kStopped,  ///< the service was stopped before the request was admitted
};

/// What a submitted request resolves to. The payload matching `kind` is
/// set when ok(): `value` for kSingleSource, `st` for the two
/// point-to-point kinds.
struct Reply {
  ReplyStatus status = ReplyStatus::kOk;
  RequestKind kind = RequestKind::kSingleSource;
  /// Weighting version the answer was computed against (the snapshot's
  /// epoch at resolution time). Meaningful only when ok().
  std::uint64_t epoch = 0;
  bool cache_hit = false;
  /// Nanoseconds from submit() to resolution (queue wait + coalesce
  /// delay + batch execution for queued misses; ~0 for submit-time
  /// resolutions).
  std::uint64_t latency_ns = 0;
  /// Certified relative error bound of the engine that answered:
  /// 0 for exact replies; for approximate replies the value v satisfies
  /// dist <= v <= (1 + error_bound) * dist.
  double error_bound = 0.0;
  std::shared_ptr<const CachedDistances> value;  ///< kSingleSource payload
  std::shared_ptr<const CachedStAnswer> st;      ///< kStDistance/kStPath

  bool ok() const { return status == ReplyStatus::kOk; }
  const std::vector<double>& dist() const {
    SEPSP_CHECK_MSG(value != nullptr, "Reply::dist(): not a kSingleSource "
                                      "reply (or not ok)");
    return value->dist;
  }
  /// Scalar s -> t distance of a point-to-point reply.
  double distance() const {
    SEPSP_CHECK_MSG(st != nullptr,
                    "Reply::distance(): not a point-to-point reply");
    return st->distance;
  }
  /// Unpacked vertex path of a kStPath reply (empty when unreachable).
  const std::vector<Vertex>& path() const {
    SEPSP_CHECK_MSG(st != nullptr && st->has_path,
                    "Reply::path(): not a kStPath reply");
    return st->path;
  }
};

/// One staged weight change for QueryService::apply_updates().
struct EdgeUpdate {
  Vertex from = 0;
  Vertex to = 0;
  double weight = 0.0;
};

}  // namespace sepsp::service
