// The response type of the query-serving runtime (src/service/).
//
// Replies share their distance vectors: a cache hit and the miss that
// populated it hand out the same immutable CachedDistances object, so
// hit/miss parity is bit-identical by construction and a reply stays
// valid after the service, the cache entry, and the engine snapshot
// that computed it are gone.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/digraph.hpp"

namespace sepsp::service {

/// One immutable single-source answer, shared between the cache and
/// every reply that resolves to it.
struct CachedDistances {
  std::vector<double> dist;     ///< dist[v]; +inf = unreachable
  bool negative_cycle = false;  ///< a negative cycle is reachable
};

enum class ReplyStatus : std::uint8_t {
  kOk,       ///< answered; dist is set
  kShed,     ///< rejected at admission (queue full) — retry or degrade
  kStopped,  ///< the service was stopped before the request was admitted
};

/// What a submitted request resolves to.
struct Reply {
  ReplyStatus status = ReplyStatus::kOk;
  /// Weighting version the answer was computed against (the snapshot's
  /// epoch at resolution time). Meaningful only when ok().
  std::uint64_t epoch = 0;
  bool cache_hit = false;
  /// Nanoseconds from submit() to resolution (queue wait + coalesce
  /// delay + batch execution for misses; ~0 for submit-time cache hits).
  std::uint64_t latency_ns = 0;
  std::shared_ptr<const CachedDistances> value;  ///< null unless ok()

  bool ok() const { return status == ReplyStatus::kOk; }
  const std::vector<double>& dist() const { return value->dist; }
};

/// One staged weight change for QueryService::apply_updates().
struct EdgeUpdate {
  Vertex from = 0;
  Vertex to = 0;
  double weight = 0.0;
};

}  // namespace sepsp::service
