#include "service/cache.hpp"

#include "util/check.hpp"

namespace sepsp::service {

DistanceCache::DistanceCache(const Config& config)
    : capacity_bytes_(config.capacity_bytes) {
  SEPSP_CHECK_MSG(config.shards > 0 &&
                      (config.shards & (config.shards - 1)) == 0,
                  "DistanceCache shard count must be a power of two");
  shards_ = std::vector<Shard>(config.shards);
  shard_mask_ = config.shards - 1;
  per_shard_capacity_ = capacity_bytes_ / config.shards;
}

std::shared_ptr<const CachedDistances> DistanceCache::lookup(
    std::uint64_t epoch, Vertex source) {
  Shard& s = shard_of(source);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(source);
  if (it == s.index.end()) {
    ++s.misses;
    return nullptr;
  }
  if (it->second->epoch != epoch) {
    // Stale weighting: remove on contact so the slot cannot be served
    // to anyone else either.
    s.bytes -= it->second->bytes;
    s.lru.erase(it->second);
    s.index.erase(it);
    ++s.invalidations;
    ++s.misses;
    return nullptr;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  ++s.hits;
  return it->second->value;
}

void DistanceCache::insert(std::uint64_t epoch, Vertex source,
                           std::shared_ptr<const CachedDistances> value) {
  SEPSP_CHECK(value != nullptr);
  const std::size_t bytes = entry_bytes(*value);
  Shard& s = shard_of(source);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(source);
  if (it != s.index.end()) {
    s.bytes -= it->second->bytes;
    s.lru.erase(it->second);
    s.index.erase(it);
  }
  if (bytes > per_shard_capacity_) return;  // would never fit; skip
  s.lru.push_front(Entry{source, epoch, bytes, std::move(value)});
  s.index[source] = s.lru.begin();
  s.bytes += bytes;
  ++s.insertions;
  while (s.bytes > per_shard_capacity_) {
    const Entry& victim = s.lru.back();
    s.bytes -= victim.bytes;
    s.index.erase(victim.source);
    s.lru.pop_back();
    ++s.evictions;
  }
}

std::size_t DistanceCache::invalidate_older_than(std::uint64_t epoch) {
  std::size_t removed = 0;
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (auto it = s.lru.begin(); it != s.lru.end();) {
      if (it->epoch < epoch) {
        s.bytes -= it->bytes;
        s.index.erase(it->source);
        it = s.lru.erase(it);
        ++s.invalidations;
        ++removed;
      } else {
        ++it;
      }
    }
  }
  return removed;
}

void DistanceCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.lru.clear();
    s.index.clear();
    s.bytes = 0;
  }
}

DistanceCache::Stats DistanceCache::stats() const {
  Stats out;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    out.hits += s.hits;
    out.misses += s.misses;
    out.insertions += s.insertions;
    out.evictions += s.evictions;
    out.invalidations += s.invalidations;
    out.entries += s.index.size();
    out.bytes += s.bytes;
  }
  return out;
}

}  // namespace sepsp::service
