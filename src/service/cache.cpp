#include "service/cache.hpp"

// The cache logic is the header-only detail::ShardedLruCache template
// (both instantiations are concrete here so every TU shares one copy of
// the out-of-line-able code).

namespace sepsp::service::detail {

template class ShardedLruCache<Vertex, CachedDistances, DistancePayloadBytes>;
template class ShardedLruCache<std::uint64_t, CachedStAnswer, StPayloadBytes>;

}  // namespace sepsp::service::detail
