#include "service/stats.hpp"

#include "util/table.hpp"

namespace sepsp::service {

void ServiceStats::print(std::ostream& os) const {
  Table t("service stats");
  t.set_header({"stat", "value"});
  t.add_row().cell("submitted").cell(with_commas(submitted));
  t.add_row().cell("completed").cell(with_commas(completed));
  t.add_row().cell("shed").cell(with_commas(shed));
  t.add_row().cell("stopped").cell(with_commas(stopped));
  t.add_row().cell("cache hits").cell(with_commas(cache_hits));
  t.add_row().cell("cache misses").cell(with_commas(cache_misses));
  t.add_row().cell("cache hit rate").cell(hit_rate(), 3);
  t.add_row().cell("cache entries").cell(
      with_commas(static_cast<std::uint64_t>(cache_entries)));
  t.add_row().cell("cache bytes").cell(
      with_commas(static_cast<std::uint64_t>(cache_bytes)));
  t.add_row().cell("cache capacity").cell(
      with_commas(static_cast<std::uint64_t>(cache_capacity_bytes)));
  t.add_row().cell("cache evictions").cell(with_commas(cache_evictions));
  t.add_row().cell("cache invalidations").cell(
      with_commas(cache_invalidations));
  t.add_row().cell("single-source requests").cell(with_commas(single_source));
  t.add_row().cell("st-distance requests").cell(with_commas(st_distance));
  t.add_row().cell("st-path requests").cell(with_commas(st_path));
  t.add_row().cell("st cache hits").cell(with_commas(st_cache_hits));
  t.add_row().cell("st cache misses").cell(with_commas(st_cache_misses));
  t.add_row().cell("st cache hit rate").cell(st_hit_rate(), 3);
  t.add_row().cell("st cache entries").cell(
      with_commas(static_cast<std::uint64_t>(st_cache_entries)));
  t.add_row().cell("st cache bytes").cell(
      with_commas(static_cast<std::uint64_t>(st_cache_bytes)));
  t.add_row().cell("mean st merge ns").cell(mean_st_merge_ns(), 1);
  t.add_row().cell("max st merge ns").cell(
      static_cast<double>(st_merge_ns_max), 1);
  t.add_row().cell("label builds").cell(with_commas(label_builds));
  t.add_row().cell("mean label build ms").cell(mean_label_build_ms(), 2);
  t.add_row().cell("batches").cell(with_commas(batches));
  t.add_row().cell("batch occupancy").cell(batch_occupancy(), 3);
  t.add_row().cell("mean coalesce us").cell(mean_coalesce_us(), 1);
  t.add_row().cell("max coalesce us").cell(
      static_cast<double>(coalesce_ns_max) / 1e3, 1);
  t.add_row().cell("queue depth").cell(
      static_cast<std::uint64_t>(queue_depth));
  t.add_row().cell("queue peak").cell(static_cast<std::uint64_t>(queue_peak));
  t.add_row().cell("epoch").cell(epoch);
  t.add_row().cell("epoch swaps").cell(with_commas(epoch_swaps));
  t.add_row().cell("epoch lag").cell(epoch_lag);
  t.add_row().cell("mean swap us").cell(mean_swap_us(), 1);
  t.add_row().cell("max swap us").cell(static_cast<double>(swap_ns_max) / 1e3,
                                       1);
  t.print(os);
}

}  // namespace sepsp::service
