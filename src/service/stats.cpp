#include "service/stats.hpp"

#include <algorithm>

#include "util/table.hpp"

namespace sepsp::service {

void accumulate(ServiceStats& into, const ServiceStats& shard) {
  into.submitted += shard.submitted;
  into.completed += shard.completed;
  into.shed += shard.shed;
  into.stopped += shard.stopped;
  into.single_source += shard.single_source;
  into.st_distance += shard.st_distance;
  into.st_path += shard.st_path;
  into.cache_hits += shard.cache_hits;
  into.cache_misses += shard.cache_misses;
  into.cache_evictions += shard.cache_evictions;
  into.cache_invalidations += shard.cache_invalidations;
  into.cache_entries += shard.cache_entries;
  into.cache_bytes += shard.cache_bytes;
  into.cache_capacity_bytes += shard.cache_capacity_bytes;
  into.st_cache_hits += shard.st_cache_hits;
  into.st_cache_misses += shard.st_cache_misses;
  into.st_cache_evictions += shard.st_cache_evictions;
  into.st_cache_invalidations += shard.st_cache_invalidations;
  into.st_cache_entries += shard.st_cache_entries;
  into.st_cache_bytes += shard.st_cache_bytes;
  into.st_cache_capacity_bytes += shard.st_cache_capacity_bytes;
  into.st_merge_ns_sum += shard.st_merge_ns_sum;
  into.st_merge_ns_max = std::max(into.st_merge_ns_max, shard.st_merge_ns_max);
  into.st_unpack_ns_sum += shard.st_unpack_ns_sum;
  into.st_unpack_ns_max =
      std::max(into.st_unpack_ns_max, shard.st_unpack_ns_max);
  into.label_builds += shard.label_builds;
  into.label_build_ns_sum += shard.label_build_ns_sum;
  into.label_build_ns_last =
      std::max(into.label_build_ns_last, shard.label_build_ns_last);
  into.approx_requests += shard.approx_requests;
  into.approx_cache_hits += shard.approx_cache_hits;
  into.approx_cache_misses += shard.approx_cache_misses;
  into.approx_st_hits += shard.approx_st_hits;
  into.approx_st_misses += shard.approx_st_misses;
  into.approx_cache_evictions += shard.approx_cache_evictions;
  into.approx_cache_invalidations += shard.approx_cache_invalidations;
  into.approx_cache_entries += shard.approx_cache_entries;
  into.approx_cache_bytes += shard.approx_cache_bytes;
  into.approx_builds += shard.approx_builds;
  into.approx_build_ns_sum += shard.approx_build_ns_sum;
  into.approx_build_ns_last =
      std::max(into.approx_build_ns_last, shard.approx_build_ns_last);
  into.batches += shard.batches;
  into.batch_lanes_used += shard.batch_lanes_used;
  into.batch_lane_capacity += shard.batch_lane_capacity;
  into.coalesce_ns_sum += shard.coalesce_ns_sum;
  into.coalesce_ns_max =
      std::max(into.coalesce_ns_max, shard.coalesce_ns_max);
  into.queue_depth += shard.queue_depth;
  into.queue_peak += shard.queue_peak;
  into.epoch = std::min(into.epoch, shard.epoch);
  into.epoch_swaps = std::max(into.epoch_swaps, shard.epoch_swaps);
  into.epoch_lag = std::max(into.epoch_lag, shard.epoch_lag);
  into.swap_ns_sum += shard.swap_ns_sum;
  into.swap_ns_max = std::max(into.swap_ns_max, shard.swap_ns_max);
  into.swap_ns_last = std::max(into.swap_ns_last, shard.swap_ns_last);
}

void ServiceStats::print(std::ostream& os) const {
  Table t("service stats");
  t.set_header({"stat", "value"});
  t.add_row().cell("submitted").cell(with_commas(submitted));
  t.add_row().cell("completed").cell(with_commas(completed));
  t.add_row().cell("shed").cell(with_commas(shed));
  t.add_row().cell("stopped").cell(with_commas(stopped));
  t.add_row().cell("cache hits").cell(with_commas(cache_hits));
  t.add_row().cell("cache misses").cell(with_commas(cache_misses));
  t.add_row().cell("cache hit rate").cell(hit_rate(), 3);
  t.add_row().cell("cache entries").cell(
      with_commas(static_cast<std::uint64_t>(cache_entries)));
  t.add_row().cell("cache bytes").cell(
      with_commas(static_cast<std::uint64_t>(cache_bytes)));
  t.add_row().cell("cache capacity").cell(
      with_commas(static_cast<std::uint64_t>(cache_capacity_bytes)));
  t.add_row().cell("cache evictions").cell(with_commas(cache_evictions));
  t.add_row().cell("cache invalidations").cell(
      with_commas(cache_invalidations));
  t.add_row().cell("single-source requests").cell(with_commas(single_source));
  t.add_row().cell("st-distance requests").cell(with_commas(st_distance));
  t.add_row().cell("st-path requests").cell(with_commas(st_path));
  t.add_row().cell("st cache hits").cell(with_commas(st_cache_hits));
  t.add_row().cell("st cache misses").cell(with_commas(st_cache_misses));
  t.add_row().cell("st cache hit rate").cell(st_hit_rate(), 3);
  t.add_row().cell("st cache entries").cell(
      with_commas(static_cast<std::uint64_t>(st_cache_entries)));
  t.add_row().cell("st cache bytes").cell(
      with_commas(static_cast<std::uint64_t>(st_cache_bytes)));
  t.add_row().cell("mean st merge ns").cell(mean_st_merge_ns(), 1);
  t.add_row().cell("max st merge ns").cell(
      static_cast<double>(st_merge_ns_max), 1);
  t.add_row().cell("label builds").cell(with_commas(label_builds));
  t.add_row().cell("mean label build ms").cell(mean_label_build_ms(), 2);
  if (approx_requests > 0 || approx_builds > 0) {
    t.add_row().cell("approx requests").cell(with_commas(approx_requests));
    t.add_row().cell("approx cache hits").cell(with_commas(approx_cache_hits));
    t.add_row().cell("approx cache misses").cell(
        with_commas(approx_cache_misses));
    t.add_row().cell("approx st hits").cell(with_commas(approx_st_hits));
    t.add_row().cell("approx st misses").cell(with_commas(approx_st_misses));
    t.add_row().cell("approx hit rate").cell(approx_hit_rate(), 3);
    t.add_row().cell("approx cache entries").cell(
        with_commas(static_cast<std::uint64_t>(approx_cache_entries)));
    t.add_row().cell("approx cache bytes").cell(
        with_commas(static_cast<std::uint64_t>(approx_cache_bytes)));
    t.add_row().cell("approx builds").cell(with_commas(approx_builds));
    t.add_row().cell("mean approx build ms").cell(mean_approx_build_ms(), 2);
  }
  t.add_row().cell("batches").cell(with_commas(batches));
  t.add_row().cell("batch occupancy").cell(batch_occupancy(), 3);
  t.add_row().cell("mean coalesce us").cell(mean_coalesce_us(), 1);
  t.add_row().cell("max coalesce us").cell(
      static_cast<double>(coalesce_ns_max) / 1e3, 1);
  t.add_row().cell("queue depth").cell(
      static_cast<std::uint64_t>(queue_depth));
  t.add_row().cell("queue peak").cell(static_cast<std::uint64_t>(queue_peak));
  t.add_row().cell("epoch").cell(epoch);
  t.add_row().cell("epoch swaps").cell(with_commas(epoch_swaps));
  t.add_row().cell("epoch lag").cell(epoch_lag);
  t.add_row().cell("mean swap us").cell(mean_swap_us(), 1);
  t.add_row().cell("max swap us").cell(static_cast<double>(swap_ns_max) / 1e3,
                                       1);
  t.print(os);
}

}  // namespace sepsp::service
