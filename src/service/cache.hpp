// Sharded, byte-accounted LRU cache of single-source distance vectors,
// keyed by source and tagged with the weighting epoch that computed
// them.
//
// Epoch semantics: lookups name the epoch they want; an entry whose
// tag differs is *stale* — it is evicted on contact and reported as a
// miss, so a reader can never observe distances from a weighting other
// than the one it asked for. After an epoch swap the service also
// calls invalidate_older_than() to sweep survivors eagerly (stale
// entries would otherwise only die lazily, squatting on byte budget).
//
// Sharding: a source hashes to one of 2^k shards, each with its own
// mutex, map, and LRU list; concurrent hits on different shards never
// contend. Capacity is split evenly across shards (per-shard LRU, like
// any sharded cache, is ragged against a global LRU by at most one
// shard's worth of recency).
//
// Values are shared immutable CachedDistances objects: a hit hands out
// the very object the populating miss inserted, which is what makes
// hit/miss parity bit-identical by construction (test_service).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/digraph.hpp"
#include "service/reply.hpp"

namespace sepsp::service {

class DistanceCache {
 public:
  struct Config {
    std::size_t capacity_bytes = std::size_t{64} << 20;
    std::size_t shards = 8;  ///< must be a power of two
  };

  /// Point-in-time counters, summed over shards.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;         ///< includes stale-epoch contacts
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;      ///< capacity evictions only
    std::uint64_t invalidations = 0;  ///< stale-epoch removals (lazy + sweep)
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };

  explicit DistanceCache(const Config& config);

  /// The cached answer for `source` at exactly `epoch`, or null. A hit
  /// refreshes LRU recency; touching an entry of any other epoch
  /// removes it and misses.
  std::shared_ptr<const CachedDistances> lookup(std::uint64_t epoch,
                                                Vertex source);

  /// Publishes an answer (replacing any entry for the same source) and
  /// evicts from the shard's LRU tail until its byte budget holds.
  void insert(std::uint64_t epoch, Vertex source,
              std::shared_ptr<const CachedDistances> value);

  /// Sweeps out every entry whose epoch predates `epoch`; returns how
  /// many were removed. Called by the service right after a swap.
  std::size_t invalidate_older_than(std::uint64_t epoch);

  /// Drops everything (capacity and configuration are kept).
  void clear();

  std::size_t capacity_bytes() const { return capacity_bytes_; }
  Stats stats() const;

 private:
  struct Entry {
    Vertex source = 0;
    std::uint64_t epoch = 0;
    std::size_t bytes = 0;
    std::shared_ptr<const CachedDistances> value;
  };

  /// Fixed per-entry overhead charged on top of the distance payload
  /// (map node, list node, control block — a round engineering figure,
  /// not an exact one).
  static constexpr std::size_t kEntryOverhead = 128;

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<Vertex, std::list<Entry>::iterator> index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
  };

  Shard& shard_of(Vertex source) {
    // Multiplicative hash: sources are dense small integers, so the
    // low bits alone would put whole vertex ranges in one shard.
    const std::uint64_t h =
        static_cast<std::uint64_t>(source) * 0x9E3779B97F4A7C15ull;
    return shards_[(h >> 32) & shard_mask_];
  }

  static std::size_t entry_bytes(const CachedDistances& value) {
    return value.dist.size() * sizeof(double) + kEntryOverhead;
  }

  std::size_t capacity_bytes_;
  std::size_t per_shard_capacity_;
  std::size_t shard_mask_;
  std::vector<Shard> shards_;
};

}  // namespace sepsp::service
