// Sharded, byte-accounted LRU caches for the serving runtime, tagged
// with the weighting epoch that computed each entry. One generic core
// (detail::ShardedLruCache) instantiated twice:
//
//  * DistanceCache — single-source distance vectors keyed by source.
//  * StCache — point-to-point answers keyed by the (s, t) pair.
//
// Epoch semantics (identical for both): lookups name the epoch they
// want; an entry whose tag differs is *stale* — it is evicted on
// contact and reported as a miss, so a reader can never observe answers
// from a weighting other than the one it asked for. After an epoch swap
// the service also calls invalidate_older_than() to sweep survivors
// eagerly (stale entries would otherwise only die lazily, squatting on
// byte budget).
//
// Sharding: a key hashes to one of 2^k shards, each with its own mutex,
// map, and LRU list; concurrent hits on different shards never contend.
// Capacity is split evenly across shards (per-shard LRU, like any
// sharded cache, is ragged against a global LRU by at most one shard's
// worth of recency).
//
// Values are shared immutable objects: a hit hands out the very object
// the populating miss inserted, which is what makes hit/miss parity
// bit-identical by construction (test_service).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "service/reply.hpp"
#include "util/check.hpp"

namespace sepsp::service {

namespace detail {

/// The sharded LRU core. Key is a cheap integral id; PayloadBytes maps
/// a value to its payload size (the fixed per-entry overhead is charged
/// here on top).
template <typename Key, typename Value, typename PayloadBytes>
class ShardedLruCache {
 public:
  struct Config {
    std::size_t capacity_bytes = std::size_t{64} << 20;
    std::size_t shards = 8;  ///< must be a power of two
  };

  /// Point-in-time counters, summed over shards.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;         ///< includes stale-epoch contacts
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;      ///< capacity evictions only
    std::uint64_t invalidations = 0;  ///< stale-epoch removals (lazy + sweep)
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };

  explicit ShardedLruCache(const Config& config)
      : capacity_bytes_(config.capacity_bytes) {
    SEPSP_CHECK_MSG(config.shards > 0 &&
                        (config.shards & (config.shards - 1)) == 0,
                    "cache shard count must be a power of two");
    shards_ = std::vector<Shard>(config.shards);
    shard_mask_ = config.shards - 1;
    per_shard_capacity_ = capacity_bytes_ / config.shards;
  }

  /// The cached answer for `key` at exactly `epoch`, or null. A hit
  /// refreshes LRU recency; touching an entry of any other epoch
  /// removes it and misses.
  std::shared_ptr<const Value> lookup(std::uint64_t epoch, Key key) {
    Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.index.find(key);
    if (it == s.index.end()) {
      ++s.misses;
      return nullptr;
    }
    if (it->second->epoch != epoch) {
      // Stale weighting: remove on contact so the slot cannot be served
      // to anyone else either.
      s.bytes -= it->second->bytes;
      s.lru.erase(it->second);
      s.index.erase(it);
      ++s.invalidations;
      ++s.misses;
      return nullptr;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
    ++s.hits;
    return it->second->value;
  }

  /// Publishes an answer (replacing any entry for the same key) and
  /// evicts from the shard's LRU tail until its byte budget holds.
  void insert(std::uint64_t epoch, Key key,
              std::shared_ptr<const Value> value) {
    SEPSP_CHECK(value != nullptr);
    const std::size_t bytes = PayloadBytes{}(*value) + kEntryOverhead;
    Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.index.find(key);
    if (it != s.index.end()) {
      s.bytes -= it->second->bytes;
      s.lru.erase(it->second);
      s.index.erase(it);
    }
    if (bytes > per_shard_capacity_) return;  // would never fit; skip
    s.lru.push_front(Entry{key, epoch, bytes, std::move(value)});
    s.index[key] = s.lru.begin();
    s.bytes += bytes;
    ++s.insertions;
    while (s.bytes > per_shard_capacity_) {
      const Entry& victim = s.lru.back();
      s.bytes -= victim.bytes;
      s.index.erase(victim.key);
      s.lru.pop_back();
      ++s.evictions;
    }
  }

  /// Sweeps out every entry whose epoch predates `epoch`; returns how
  /// many were removed. Called by the service right after a swap.
  std::size_t invalidate_older_than(std::uint64_t epoch) {
    std::size_t removed = 0;
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      for (auto it = s.lru.begin(); it != s.lru.end();) {
        if (it->epoch < epoch) {
          s.bytes -= it->bytes;
          s.index.erase(it->key);
          it = s.lru.erase(it);
          ++s.invalidations;
          ++removed;
        } else {
          ++it;
        }
      }
    }
    return removed;
  }

  /// Drops everything (capacity and configuration are kept).
  void clear() {
    for (Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      s.lru.clear();
      s.index.clear();
      s.bytes = 0;
    }
  }

  std::size_t capacity_bytes() const { return capacity_bytes_; }

  Stats stats() const {
    Stats out;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      out.hits += s.hits;
      out.misses += s.misses;
      out.insertions += s.insertions;
      out.evictions += s.evictions;
      out.invalidations += s.invalidations;
      out.entries += s.index.size();
      out.bytes += s.bytes;
    }
    return out;
  }

 private:
  struct Entry {
    Key key{};
    std::uint64_t epoch = 0;
    std::size_t bytes = 0;
    std::shared_ptr<const Value> value;
  };

  /// Fixed per-entry overhead charged on top of the payload (map node,
  /// list node, control block — a round engineering figure, not an
  /// exact one).
  static constexpr std::size_t kEntryOverhead = 128;

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<Key, typename std::list<Entry>::iterator> index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
  };

  Shard& shard_of(Key key) {
    // Multiplicative hash: keys are dense small integers (sources) or
    // packed pairs of them, so the low bits alone would put whole
    // ranges in one shard.
    const std::uint64_t h =
        static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull;
    return shards_[(h >> 32) & shard_mask_];
  }

  std::size_t capacity_bytes_;
  std::size_t per_shard_capacity_;
  std::size_t shard_mask_;
  std::vector<Shard> shards_;
};

struct DistancePayloadBytes {
  std::size_t operator()(const CachedDistances& v) const {
    return v.dist.size() * sizeof(double);
  }
};

struct StPayloadBytes {
  std::size_t operator()(const CachedStAnswer& v) const {
    return sizeof(double) + v.path.size() * sizeof(Vertex);
  }
};

}  // namespace detail

/// Single-source distance vectors keyed by source.
class DistanceCache
    : public detail::ShardedLruCache<Vertex, CachedDistances,
                                     detail::DistancePayloadBytes> {
 public:
  using ShardedLruCache::ShardedLruCache;
};

/// Point-to-point answers keyed by the (s, t) pair — the st kinds'
/// cache, with the same epoch/parity contract as DistanceCache. One
/// entry serves both st kinds: StDistance hits any entry for the pair,
/// StPath treats a path-less entry as a miss and upgrades it in place
/// (the service's replacement insert).
class StCache
    : public detail::ShardedLruCache<std::uint64_t, CachedStAnswer,
                                     detail::StPayloadBytes> {
 public:
  using ShardedLruCache::ShardedLruCache;

  std::shared_ptr<const CachedStAnswer> lookup(std::uint64_t epoch, Vertex s,
                                               Vertex t) {
    return ShardedLruCache::lookup(epoch, pack(s, t));
  }
  void insert(std::uint64_t epoch, Vertex s, Vertex t,
              std::shared_ptr<const CachedStAnswer> value) {
    ShardedLruCache::insert(epoch, pack(s, t), std::move(value));
  }

  static std::uint64_t pack(Vertex s, Vertex t) {
    return (static_cast<std::uint64_t>(s) << 32) |
           static_cast<std::uint64_t>(t);
  }
};

}  // namespace sepsp::service
