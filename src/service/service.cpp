#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace sepsp::service {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

/// A future that is already resolved (hit / shed / stopped paths).
std::future<Reply> ready(Reply reply) {
  std::promise<Reply> p;
  p.set_value(std::move(reply));
  return p.get_future();
}

}  // namespace

QueryService::QueryService(IncrementalEngine engine,
                           const ServiceOptions& options)
    : opts_(options.validated()),
      engine_(std::move(engine)),
      cache_(DistanceCache::Config{opts_.cache_capacity_bytes,
                                   opts_.cache_shards}),
      queue_(opts_.max_queue) {
  publish(std::make_shared<const IncrementalEngine::Snapshot>(
      engine_.snapshot(opts_.engine)));
  dispatchers_.reserve(opts_.dispatchers);
  for (unsigned i = 0; i < opts_.dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

QueryService::~QueryService() { stop(); }

std::future<Reply> QueryService::submit(Vertex source) {
  SEPSP_TRACE_SPAN("service.submit");
  const auto t0 = Clock::now();
  SEPSP_CHECK_MSG(source < engine_.graph().num_vertices(),
                  "QueryService::submit: source out of range");
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  SEPSP_OBS_ONLY(obs::counter("service.submitted").add();)

  if (queue_.closed()) {
    // Stopped services reject uniformly — even sources the cache could
    // still answer — so "stopped" is observable, not load-dependent.
    counters_.stopped.fetch_add(1, std::memory_order_relaxed);
    Reply rejected;
    rejected.status = ReplyStatus::kStopped;
    return ready(std::move(rejected));
  }

  if (opts_.cache_enabled) {
    const Snapshot snap = current();
    if (auto value = cache_.lookup(snap->epoch, source)) {
      counters_.completed.fetch_add(1, std::memory_order_relaxed);
      counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      SEPSP_OBS_ONLY(obs::counter("service.cache.hits").add();)
      return ready(Reply{ReplyStatus::kOk, snap->epoch, /*cache_hit=*/true,
                         ns_between(t0, Clock::now()), std::move(value)});
    }
  }

  Pending pending{source, std::promise<Reply>{}, t0};
  std::future<Reply> future = pending.promise.get_future();
  if (!queue_.push(std::move(pending))) {
    // push() leaves `pending` untouched on failure, but the future we
    // already extracted is the one the caller gets — resolve it here.
    Reply rejected;
    if (queue_.closed()) {
      counters_.stopped.fetch_add(1, std::memory_order_relaxed);
      rejected.status = ReplyStatus::kStopped;
    } else {
      counters_.shed.fetch_add(1, std::memory_order_relaxed);
      SEPSP_OBS_ONLY(obs::counter("service.shed").add();)
      rejected.status = ReplyStatus::kShed;
    }
    pending.promise.set_value(std::move(rejected));
  }
  SEPSP_OBS_ONLY(obs::gauge("service.queue_depth")
                     .set(static_cast<std::int64_t>(queue_.depth()));)
  return future;
}

Reply QueryService::query(Vertex source) { return submit(source).get(); }

void QueryService::dispatcher_loop() {
  std::vector<Pending> group;
  group.reserve(opts_.lanes);
  const std::chrono::microseconds delay(opts_.max_delay_us);
  while (queue_.pop_batch(group, opts_.lanes, delay)) {
    flush_group(group);
  }
}

void QueryService::resolve(Pending& p, const Snapshot& snap,
                           std::shared_ptr<const CachedDistances> value,
                           bool hit) {
  counters_.completed.fetch_add(1, std::memory_order_relaxed);
  (hit ? counters_.cache_hits : counters_.cache_misses)
      .fetch_add(1, std::memory_order_relaxed);
  p.promise.set_value(Reply{ReplyStatus::kOk, snap->epoch, hit,
                            ns_between(p.enqueued, Clock::now()),
                            std::move(value)});
}

void QueryService::flush_group(std::vector<Pending>& group) {
  SEPSP_TRACE_SPAN("service.flush");
  const auto dispatched = Clock::now();
  counters_.batches.fetch_add(1, std::memory_order_relaxed);
  counters_.lanes_used.fetch_add(group.size(), std::memory_order_relaxed);
  counters_.lane_capacity.fetch_add(opts_.lanes, std::memory_order_relaxed);
  std::uint64_t wait_sum = 0;
  std::uint64_t wait_max = 0;
  for (const Pending& p : group) {
    const std::uint64_t wait = ns_between(p.enqueued, dispatched);
    wait_sum += wait;
    wait_max = std::max(wait_max, wait);
  }
  counters_.coalesce_ns_sum.fetch_add(wait_sum, std::memory_order_relaxed);
  std::uint64_t prev =
      counters_.coalesce_ns_max.load(std::memory_order_relaxed);
  while (prev < wait_max && !counters_.coalesce_ns_max.compare_exchange_weak(
                                prev, wait_max, std::memory_order_relaxed)) {
  }
  SEPSP_OBS_ONLY({
    obs::counter("service.batches").add();
    obs::histogram("service.batch_fill").record(group.size());
    obs::histogram("service.coalesce_us").record(wait_sum / 1000 /
                                                 group.size());
  })

  // Every request in the group resolves against ONE snapshot load: the
  // group's answers are mutually consistent even mid-swap.
  const Snapshot snap = current();

  // Re-check the cache at the captured epoch (a concurrent miss may
  // have populated it since admission) and dedupe repeated sources so
  // the kernel computes each one once.
  std::unordered_map<Vertex, std::shared_ptr<const CachedDistances>> answers;
  std::vector<Vertex> misses;
  misses.reserve(group.size());
  for (const Pending& p : group) {
    if (answers.count(p.source) != 0) continue;
    std::shared_ptr<const CachedDistances> value =
        opts_.cache_enabled ? cache_.lookup(snap->epoch, p.source) : nullptr;
    if (value == nullptr) misses.push_back(p.source);
    answers.emplace(p.source, std::move(value));
  }

  if (!misses.empty()) {
    SEPSP_TRACE_SPAN("service.batch");
    std::vector<QueryResult<TropicalD>> results = snap->engine->distances_batch(
        misses, BatchPolicy{.lanes = opts_.lanes});
    for (std::size_t i = 0; i < misses.size(); ++i) {
      auto value = std::make_shared<const CachedDistances>(CachedDistances{
          std::move(results[i].dist), results[i].negative_cycle});
      if (opts_.cache_enabled) cache_.insert(snap->epoch, misses[i], value);
      answers[misses[i]] = std::move(value);
      SEPSP_OBS_ONLY(obs::counter("service.cache.misses").add();)
    }
  }

  for (Pending& p : group) {
    auto& value = answers[p.source];
    // `hit` reports whether the request was answered without running
    // the kernel for it — true for dedup winners' followers too.
    const bool hit = std::find(misses.begin(), misses.end(), p.source) ==
                     misses.end();
    resolve(p, snap, value, hit);
  }
}

std::uint64_t QueryService::apply_updates(std::span<const EdgeUpdate> updates) {
  SEPSP_TRACE_SPAN("service.swap");
  std::lock_guard<std::mutex> lock(update_mutex_);
  if (updates.empty()) return engine_.epoch();
  for (const EdgeUpdate& u : updates) {
    engine_.update_edge(u.from, u.to, u.weight);
  }
  engine_.apply();
  const std::uint64_t next = engine_.epoch();
  // Readers keep resolving against the old snapshot while the
  // successor is built; the lag gauge is nonzero exactly during that
  // window.
  counters_.epoch_lag.store(next - current()->epoch,
                            std::memory_order_relaxed);
  SEPSP_OBS_ONLY(obs::gauge("service.epoch_lag")
                     .set(static_cast<std::int64_t>(
                         counters_.epoch_lag.load(std::memory_order_relaxed)));)
  // The swap itself: freeze a structurally-shared snapshot (O(#slabs)
  // pointer copies — see IncrementalEngine::snapshot()) and publish it.
  // Timed separately from the dirty-region recompute above; this is the
  // window readers could observe as epoch lag.
  const auto swap_begin = Clock::now();
  auto snap = std::make_shared<const IncrementalEngine::Snapshot>(
      engine_.snapshot(opts_.engine));
  publish(std::move(snap));
  const std::uint64_t swap_ns = ns_between(swap_begin, Clock::now());
  counters_.epoch_lag.store(0, std::memory_order_relaxed);
  counters_.swaps.fetch_add(1, std::memory_order_relaxed);
  counters_.swap_ns_sum.fetch_add(swap_ns, std::memory_order_relaxed);
  counters_.swap_ns_last.store(swap_ns, std::memory_order_relaxed);
  std::uint64_t prev = counters_.swap_ns_max.load(std::memory_order_relaxed);
  while (prev < swap_ns && !counters_.swap_ns_max.compare_exchange_weak(
                               prev, swap_ns, std::memory_order_relaxed)) {
  }
  cache_.invalidate_older_than(next);
  SEPSP_OBS_ONLY({
    obs::counter("service.epoch_swaps").add();
    obs::gauge("service.epoch").set(static_cast<std::int64_t>(next));
    obs::gauge("service.epoch_lag").set(0);
    obs::histogram("service.swap_us").record(swap_ns / 1000);
  })
  return next;
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  out.submitted = counters_.submitted.load(std::memory_order_relaxed);
  out.completed = counters_.completed.load(std::memory_order_relaxed);
  out.shed = counters_.shed.load(std::memory_order_relaxed);
  out.stopped = counters_.stopped.load(std::memory_order_relaxed);
  const DistanceCache::Stats c = cache_.stats();
  out.cache_hits = counters_.cache_hits.load(std::memory_order_relaxed);
  out.cache_misses = counters_.cache_misses.load(std::memory_order_relaxed);
  out.cache_evictions = c.evictions;
  out.cache_invalidations = c.invalidations;
  out.cache_entries = c.entries;
  out.cache_bytes = c.bytes;
  out.cache_capacity_bytes = cache_.capacity_bytes();
  out.batches = counters_.batches.load(std::memory_order_relaxed);
  out.batch_lanes_used = counters_.lanes_used.load(std::memory_order_relaxed);
  out.batch_lane_capacity =
      counters_.lane_capacity.load(std::memory_order_relaxed);
  out.coalesce_ns_sum =
      counters_.coalesce_ns_sum.load(std::memory_order_relaxed);
  out.coalesce_ns_max =
      counters_.coalesce_ns_max.load(std::memory_order_relaxed);
  out.queue_depth = queue_.depth();
  out.queue_peak = queue_.peak_depth();
  out.epoch = current()->epoch;
  out.epoch_swaps = counters_.swaps.load(std::memory_order_relaxed);
  out.epoch_lag = counters_.epoch_lag.load(std::memory_order_relaxed);
  out.swap_ns_sum = counters_.swap_ns_sum.load(std::memory_order_relaxed);
  out.swap_ns_max = counters_.swap_ns_max.load(std::memory_order_relaxed);
  out.swap_ns_last = counters_.swap_ns_last.load(std::memory_order_relaxed);
  return out;
}

void QueryService::stop() {
  std::call_once(stop_once_, [this] {
    queue_.close();
    if (dispatchers_.empty()) {
      // No background dispatch configured: drain on the caller's
      // thread so the no-admitted-request-dropped contract still
      // holds.
      std::vector<Pending> group;
      group.reserve(opts_.lanes);
      while (queue_.pop_batch(group, opts_.lanes,
                              std::chrono::microseconds(0))) {
        flush_group(group);
      }
    }
    for (std::thread& t : dispatchers_) t.join();
  });
}

}  // namespace sepsp::service
