#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <unordered_map>
#include <utility>

#include "approx/approx.hpp"
#include "core/labeling.hpp"
#include "core/routing.hpp"
#include "obs/obs.hpp"
#include "pram/topology.hpp"
#include "util/check.hpp"

namespace sepsp::service {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

/// A future that is already resolved (hit / shed / stopped paths).
std::future<Reply> ready(Reply reply) {
  std::promise<Reply> p;
  p.set_value(std::move(reply));
  return p.get_future();
}

}  // namespace

QueryService::QueryService(IncrementalEngine engine,
                           const ServiceOptions& options)
    : opts_(options.validated()),
      engine_(std::move(engine)),
      cache_(DistanceCache::Config{opts_.cache_capacity_bytes,
                                   opts_.cache_shards}),
      st_cache_(StCache::Config{opts_.st_cache_capacity_bytes,
                                opts_.st_cache_shards}),
      approx_cache_(DistanceCache::Config{opts_.cache_capacity_bytes,
                                          opts_.cache_shards}),
      approx_st_cache_(StCache::Config{opts_.st_cache_capacity_bytes,
                                       opts_.st_cache_shards}),
      queue_(opts_.max_queue) {
  num_vertices_ = engine_->graph().num_vertices();
  IncrementalEngine::Snapshot snap = engine_->snapshot(opts_.engine);
  if (opts_.approx.enabled) attach_approx(snap);
  if (opts_.point_to_point) {
    // Reverse the graph under the engine's *effective* weights (a
    // handed-over engine may carry applied update history its baked
    // graph weights predate), so forward and backward engines agree
    // from the first epoch served.
    const Digraph& g = engine_->graph();
    const std::span<const Arc> arcs = g.arcs();
    const std::span<const Vertex> arc_src = g.arc_sources();
    const std::span<const double> weights = engine_->weights();
    GraphBuilder builder(g.num_vertices());
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      builder.add_edge(arcs[i].to, arc_src[i], weights[i]);
    }
    // No dedup: the routing build checks arc-count parity with g.
    reversed_ = std::move(builder).build(/*dedup_min=*/false);
    bwd_engine_ = IncrementalEngine::build(*reversed_, engine_->tree());
    attach_point_to_point(snap);
  }
  publish(std::make_shared<const IncrementalEngine::Snapshot>(std::move(snap)));
  start_dispatchers();
}

QueryService::QueryService(SeparatorShortestPaths<TropicalD>::Snapshot engine,
                           const ServiceOptions& options)
    : opts_(options.validated()),
      cache_(DistanceCache::Config{opts_.cache_capacity_bytes,
                                   opts_.cache_shards}),
      st_cache_(StCache::Config{opts_.st_cache_capacity_bytes,
                                opts_.st_cache_shards}),
      approx_cache_(DistanceCache::Config{opts_.cache_capacity_bytes,
                                          opts_.cache_shards}),
      approx_st_cache_(StCache::Config{opts_.st_cache_capacity_bytes,
                                       opts_.st_cache_shards}),
      queue_(opts_.max_queue) {
  SEPSP_CHECK_MSG(engine != nullptr,
                  "QueryService: null engine snapshot");
  SEPSP_CHECK_MSG(!opts_.point_to_point,
                  "QueryService: a snapshot-constructed (read-only) service "
                  "cannot serve point-to-point traffic — set "
                  "ServiceOptions::point_to_point = false");
  SEPSP_CHECK_MSG(!opts_.approx.enabled,
                  "QueryService: a snapshot-constructed (read-only) service "
                  "cannot serve approximate traffic — the approx engine is "
                  "built from the incremental engine's effective weights; "
                  "set ServiceOptions::approx.enabled = false");
  num_vertices_ = engine->graph().num_vertices();
  IncrementalEngine::Snapshot snap;
  snap.epoch = 0;
  snap.engine = std::move(engine);
  publish(std::make_shared<const IncrementalEngine::Snapshot>(std::move(snap)));
  start_dispatchers();
}

void QueryService::start_dispatchers() {
  dispatchers_.reserve(opts_.dispatchers);
  for (unsigned i = 0; i < opts_.dispatchers; ++i) {
    dispatchers_.emplace_back([this, i] {
      if (!opts_.pin_cpus.empty()) {
        pram::pin_current_thread({opts_.pin_cpus[i % opts_.pin_cpus.size()]});
      }
      dispatcher_loop();
    });
  }
}

QueryService::~QueryService() { stop(); }

std::future<Reply> QueryService::submit(SingleSource request) {
  SEPSP_TRACE_SPAN("service.submit");
  const auto t0 = Clock::now();
  const Vertex source = request.source;
  SEPSP_CHECK_MSG(source < num_vertices_,
                  "QueryService::submit: source out of range");
  SEPSP_CHECK_MSG(!request.approx || opts_.approx.enabled,
                  "QueryService: approximate requests need "
                  "ServiceOptions::approx.enabled");
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  counters_.single_source.fetch_add(1, std::memory_order_relaxed);
  if (request.approx) {
    counters_.approx_requests.fetch_add(1, std::memory_order_relaxed);
  }
  SEPSP_OBS_ONLY(obs::counter("service.submitted").add();)

  if (queue_.closed()) {
    // Stopped services reject uniformly — even sources the cache could
    // still answer — so "stopped" is observable, not load-dependent.
    counters_.stopped.fetch_add(1, std::memory_order_relaxed);
    Reply rejected;
    rejected.status = ReplyStatus::kStopped;
    return ready(std::move(rejected));
  }

  if (opts_.cache_enabled) {
    const Snapshot snap = current();
    DistanceCache& cache = request.approx ? approx_cache_ : cache_;
    if (auto value = cache.lookup(snap->epoch, source)) {
      counters_.completed.fetch_add(1, std::memory_order_relaxed);
      (request.approx ? counters_.approx_cache_hits : counters_.cache_hits)
          .fetch_add(1, std::memory_order_relaxed);
      SEPSP_OBS_ONLY(obs::counter("service.cache.hits").add();)
      Reply reply;
      reply.epoch = snap->epoch;
      reply.cache_hit = true;
      reply.latency_ns = ns_between(t0, Clock::now());
      if (request.approx) {
        reply.error_bound = snap->approx->certified_error();
      }
      reply.value = std::move(value);
      return ready(std::move(reply));
    }
  }

  Pending pending{source, std::promise<Reply>{}, t0, request.approx};
  std::future<Reply> future = pending.promise.get_future();
  if (!queue_.push(std::move(pending))) {
    // push() leaves `pending` untouched on failure, but the future we
    // already extracted is the one the caller gets — resolve it here.
    Reply rejected;
    if (queue_.closed()) {
      counters_.stopped.fetch_add(1, std::memory_order_relaxed);
      rejected.status = ReplyStatus::kStopped;
    } else {
      counters_.shed.fetch_add(1, std::memory_order_relaxed);
      SEPSP_OBS_ONLY(obs::counter("service.shed").add();)
      rejected.status = ReplyStatus::kShed;
    }
    pending.promise.set_value(std::move(rejected));
  }
  SEPSP_OBS_ONLY(obs::gauge("service.queue_depth")
                     .set(static_cast<std::int64_t>(queue_.depth()));)
  return future;
}

std::future<Reply> QueryService::submit(StDistance request) {
  return submit_st(request.s, request.t, RequestKind::kStDistance,
                   request.approx);
}

std::future<Reply> QueryService::submit(StPath request) {
  return submit_st(request.s, request.t, RequestKind::kStPath,
                   /*approx=*/false);
}

std::future<Reply> QueryService::submit_st(Vertex s, Vertex t,
                                           RequestKind kind, bool approx) {
  SEPSP_TRACE_SPAN("service.submit");
  const auto t0 = Clock::now();
  // Approximate st answers come from the approximate distance cache,
  // not from hub labels, so they need approx.enabled but *not*
  // point_to_point.
  SEPSP_CHECK_MSG(!approx || opts_.approx.enabled,
                  "QueryService: approximate requests need "
                  "ServiceOptions::approx.enabled");
  SEPSP_CHECK_MSG(approx || opts_.point_to_point,
                  "QueryService: st requests need ServiceOptions::"
                  "point_to_point");
  SEPSP_CHECK_MSG(s < num_vertices_ && t < num_vertices_,
                  "QueryService::submit: st endpoint out of range");
  const bool want_path = kind == RequestKind::kStPath;
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  (want_path ? counters_.st_path : counters_.st_distance)
      .fetch_add(1, std::memory_order_relaxed);
  if (approx) {
    counters_.approx_requests.fetch_add(1, std::memory_order_relaxed);
  }
  SEPSP_OBS_ONLY({
    obs::counter("service.submitted").add();
    obs::counter(want_path ? "service.st_path" : "service.st_distance").add();
  })

  if (queue_.closed()) {
    counters_.stopped.fetch_add(1, std::memory_order_relaxed);
    Reply rejected;
    rejected.status = ReplyStatus::kStopped;
    rejected.kind = kind;
    return ready(std::move(rejected));
  }

  // One snapshot load answers the whole request: the epoch the cache is
  // probed at is the epoch the labels belong to, so a reply can never
  // pair an answer with a weighting it was not computed under.
  const Snapshot snap = current();

  if (approx) {
    SEPSP_CHECK(snap->approx != nullptr);
    std::shared_ptr<const CachedStAnswer> answer;
    if (opts_.cache_enabled) {
      answer = approx_st_cache_.lookup(snap->epoch, s, t);
    }
    const bool hit = answer != nullptr;
    if (!hit) {
      // Resolve from the approximate single-source vector — cached, or
      // computed here and cached so the next source-s request (either
      // shape) reuses it.
      std::shared_ptr<const CachedDistances> vec =
          opts_.cache_enabled ? approx_cache_.lookup(snap->epoch, s) : nullptr;
      if (vec == nullptr) {
        auto fresh = std::make_shared<const CachedDistances>(
            CachedDistances{snap->approx->distances(s), false});
        if (opts_.cache_enabled) approx_cache_.insert(snap->epoch, s, fresh);
        vec = std::move(fresh);
      }
      CachedStAnswer st;
      st.distance = vec->dist[t];
      auto owned = std::make_shared<const CachedStAnswer>(std::move(st));
      if (opts_.cache_enabled) {
        approx_st_cache_.insert(snap->epoch, s, t, owned);
      }
      answer = std::move(owned);
    }
    counters_.completed.fetch_add(1, std::memory_order_relaxed);
    (hit ? counters_.approx_st_hits : counters_.approx_st_misses)
        .fetch_add(1, std::memory_order_relaxed);
    Reply reply;
    reply.kind = kind;
    reply.epoch = snap->epoch;
    reply.cache_hit = hit;
    reply.latency_ns = ns_between(t0, Clock::now());
    reply.error_bound = snap->approx->certified_error();
    reply.st = std::move(answer);
    return ready(std::move(reply));
  }

  SEPSP_CHECK(snap->labels != nullptr && snap->routing != nullptr);

  std::shared_ptr<const CachedStAnswer> answer;
  if (opts_.cache_enabled) {
    answer = st_cache_.lookup(snap->epoch, s, t);
    // A path request upgrades a distance-only entry: treat it as a miss
    // and replace it with the path-carrying answer below.
    if (want_path && answer != nullptr && !answer->has_path) answer = nullptr;
  }
  const bool hit = answer != nullptr;
  if (!hit) {
    CachedStAnswer fresh;
    const auto merge_begin = Clock::now();
    fresh.distance = snap->labels->distance(s, t);
    const std::uint64_t merge_ns = ns_between(merge_begin, Clock::now());
    counters_.st_merge_ns_sum.fetch_add(merge_ns, std::memory_order_relaxed);
    std::uint64_t prev =
        counters_.st_merge_ns_max.load(std::memory_order_relaxed);
    while (prev < merge_ns &&
           !counters_.st_merge_ns_max.compare_exchange_weak(
               prev, merge_ns, std::memory_order_relaxed)) {
    }
    SEPSP_OBS_ONLY(obs::histogram("service.st_merge_ns").record(merge_ns);)
    if (want_path) {
      const auto unpack_begin = Clock::now();
      fresh.has_path = true;
      if (fresh.distance !=
          std::numeric_limits<double>::infinity()) {
        fresh.path = snap->routing->route(s, t);
      }
      const std::uint64_t unpack_ns = ns_between(unpack_begin, Clock::now());
      counters_.st_unpack_ns_sum.fetch_add(unpack_ns,
                                           std::memory_order_relaxed);
      prev = counters_.st_unpack_ns_max.load(std::memory_order_relaxed);
      while (prev < unpack_ns &&
             !counters_.st_unpack_ns_max.compare_exchange_weak(
                 prev, unpack_ns, std::memory_order_relaxed)) {
      }
      SEPSP_OBS_ONLY(
          obs::histogram("service.st_unpack_ns").record(unpack_ns);)
    }
    auto owned = std::make_shared<const CachedStAnswer>(std::move(fresh));
    if (opts_.cache_enabled) st_cache_.insert(snap->epoch, s, t, owned);
    answer = std::move(owned);
  }
  counters_.completed.fetch_add(1, std::memory_order_relaxed);
  (hit ? counters_.st_cache_hits : counters_.st_cache_misses)
      .fetch_add(1, std::memory_order_relaxed);
  SEPSP_OBS_ONLY(obs::counter(hit ? "service.st_cache.hits"
                                  : "service.st_cache.misses")
                     .add();)
  Reply reply;
  reply.kind = kind;
  reply.epoch = snap->epoch;
  reply.cache_hit = hit;
  reply.latency_ns = ns_between(t0, Clock::now());
  reply.st = std::move(answer);
  return ready(std::move(reply));
}

void QueryService::dispatcher_loop() {
  std::vector<Pending> group;
  group.reserve(opts_.lanes);
  const std::chrono::microseconds delay(opts_.max_delay_us);
  while (queue_.pop_batch(group, opts_.lanes, delay)) {
    flush_group(group);
  }
}

void QueryService::resolve(Pending& p, const Snapshot& snap,
                           std::shared_ptr<const CachedDistances> value,
                           bool hit) {
  counters_.completed.fetch_add(1, std::memory_order_relaxed);
  if (p.approx) {
    (hit ? counters_.approx_cache_hits : counters_.approx_cache_misses)
        .fetch_add(1, std::memory_order_relaxed);
  } else {
    (hit ? counters_.cache_hits : counters_.cache_misses)
        .fetch_add(1, std::memory_order_relaxed);
  }
  Reply reply;
  reply.epoch = snap->epoch;
  reply.cache_hit = hit;
  reply.latency_ns = ns_between(p.enqueued, Clock::now());
  if (p.approx) reply.error_bound = snap->approx->certified_error();
  reply.value = std::move(value);
  p.promise.set_value(std::move(reply));
}

void QueryService::flush_group(std::vector<Pending>& group) {
  SEPSP_TRACE_SPAN("service.flush");
  const auto dispatched = Clock::now();
  counters_.batches.fetch_add(1, std::memory_order_relaxed);
  counters_.lanes_used.fetch_add(group.size(), std::memory_order_relaxed);
  counters_.lane_capacity.fetch_add(opts_.lanes, std::memory_order_relaxed);
  std::uint64_t wait_sum = 0;
  std::uint64_t wait_max = 0;
  for (const Pending& p : group) {
    const std::uint64_t wait = ns_between(p.enqueued, dispatched);
    wait_sum += wait;
    wait_max = std::max(wait_max, wait);
  }
  counters_.coalesce_ns_sum.fetch_add(wait_sum, std::memory_order_relaxed);
  std::uint64_t prev =
      counters_.coalesce_ns_max.load(std::memory_order_relaxed);
  while (prev < wait_max && !counters_.coalesce_ns_max.compare_exchange_weak(
                                prev, wait_max, std::memory_order_relaxed)) {
  }
  SEPSP_OBS_ONLY({
    obs::counter("service.batches").add();
    obs::histogram("service.batch_fill").record(group.size());
    obs::histogram("service.coalesce_us").record(wait_sum / 1000 /
                                                 group.size());
  })

  // Every request in the group resolves against ONE snapshot load: the
  // group's answers are mutually consistent even mid-swap.
  const Snapshot snap = current();

  // Re-check the cache at the captured epoch (a concurrent miss may
  // have populated it since admission) and dedupe repeated sources so
  // the kernel computes each one once. The mode bit participates in the
  // dedup key: an exact and an approximate request for the same source
  // never share an answer.
  const auto key = [](const Pending& p) {
    return (static_cast<std::uint64_t>(p.source) << 1) |
           static_cast<std::uint64_t>(p.approx);
  };
  std::unordered_map<std::uint64_t, std::shared_ptr<const CachedDistances>>
      answers;
  std::vector<Vertex> misses;         // exact-mode sources to compute
  std::vector<Vertex> approx_misses;  // approx-mode sources to compute
  misses.reserve(group.size());
  for (const Pending& p : group) {
    const std::uint64_t k = key(p);
    if (answers.count(k) != 0) continue;
    DistanceCache& cache = p.approx ? approx_cache_ : cache_;
    std::shared_ptr<const CachedDistances> value =
        opts_.cache_enabled ? cache.lookup(snap->epoch, p.source) : nullptr;
    if (value == nullptr) {
      (p.approx ? approx_misses : misses).push_back(p.source);
    }
    answers.emplace(k, std::move(value));
  }

  if (!misses.empty()) {
    SEPSP_TRACE_SPAN("service.batch");
    std::vector<QueryResult<TropicalD>> results = snap->engine->distances_batch(
        misses, BatchPolicy{.lanes = opts_.lanes});
    for (std::size_t i = 0; i < misses.size(); ++i) {
      auto value = std::make_shared<const CachedDistances>(CachedDistances{
          std::move(results[i].dist), results[i].negative_cycle});
      if (opts_.cache_enabled) cache_.insert(snap->epoch, misses[i], value);
      answers[static_cast<std::uint64_t>(misses[i]) << 1] = std::move(value);
      SEPSP_OBS_ONLY(obs::counter("service.cache.misses").add();)
    }
  }

  if (!approx_misses.empty()) {
    SEPSP_TRACE_SPAN("service.batch");
    SEPSP_CHECK(snap->approx != nullptr);
    std::vector<QueryResult<TropicalD>> results =
        snap->approx->distances_batch(approx_misses,
                                      BatchPolicy{.lanes = opts_.lanes});
    for (std::size_t i = 0; i < approx_misses.size(); ++i) {
      auto value = std::make_shared<const CachedDistances>(CachedDistances{
          std::move(results[i].dist), results[i].negative_cycle});
      if (opts_.cache_enabled) {
        approx_cache_.insert(snap->epoch, approx_misses[i], value);
      }
      answers[(static_cast<std::uint64_t>(approx_misses[i]) << 1) | 1] =
          std::move(value);
      SEPSP_OBS_ONLY(obs::counter("service.cache.misses").add();)
    }
  }

  for (Pending& p : group) {
    auto& value = answers[key(p)];
    // `hit` reports whether the request was answered without running
    // the kernel for it — true for dedup winners' followers too.
    const std::vector<Vertex>& computed = p.approx ? approx_misses : misses;
    const bool hit = std::find(computed.begin(), computed.end(), p.source) ==
                     computed.end();
    resolve(p, snap, value, hit);
  }
}

std::uint64_t QueryService::apply_updates(std::span<const EdgeUpdate> updates) {
  SEPSP_TRACE_SPAN("service.swap");
  SEPSP_CHECK_MSG(engine_.has_value(),
                  "QueryService::apply_updates: read-only service (built "
                  "over a frozen engine snapshot) cannot be reweighted");
  std::lock_guard<std::mutex> lock(update_mutex_);
  if (updates.empty()) return engine_->epoch();
  for (const EdgeUpdate& u : updates) {
    engine_->update_edge(u.from, u.to, u.weight);
    // Mirror into the backward engine (the reversed arc), so both
    // engines describe the same weighting at every epoch.
    if (bwd_engine_) bwd_engine_->update_edge(u.to, u.from, u.weight);
  }
  engine_->apply();
  if (bwd_engine_) bwd_engine_->apply();
  const std::uint64_t next = engine_->epoch();
  // Readers keep resolving against the old snapshot while the
  // successor is built; the lag gauge is nonzero exactly during that
  // window.
  counters_.epoch_lag.store(next - current()->epoch,
                            std::memory_order_relaxed);
  SEPSP_OBS_ONLY(obs::gauge("service.epoch_lag")
                     .set(static_cast<std::int64_t>(
                         counters_.epoch_lag.load(std::memory_order_relaxed)));)
  // The swap itself: freeze a structurally-shared snapshot (O(#slabs)
  // pointer copies — see IncrementalEngine::snapshot()) and publish it.
  // Timed separately from the dirty-region recompute above and from the
  // label/routing rebuild in between (readers ride the old snapshot
  // through that build — it stretches epoch lag, not swap latency).
  const auto fork_begin = Clock::now();
  IncrementalEngine::Snapshot next_snap = engine_->snapshot(opts_.engine);
  std::uint64_t swap_ns = ns_between(fork_begin, Clock::now());
  if (opts_.point_to_point) attach_point_to_point(next_snap);
  if (opts_.approx.enabled) attach_approx(next_snap);
  const auto publish_begin = Clock::now();
  publish(std::make_shared<const IncrementalEngine::Snapshot>(
      std::move(next_snap)));
  swap_ns += ns_between(publish_begin, Clock::now());
  counters_.epoch_lag.store(0, std::memory_order_relaxed);
  counters_.swaps.fetch_add(1, std::memory_order_relaxed);
  counters_.swap_ns_sum.fetch_add(swap_ns, std::memory_order_relaxed);
  counters_.swap_ns_last.store(swap_ns, std::memory_order_relaxed);
  std::uint64_t prev = counters_.swap_ns_max.load(std::memory_order_relaxed);
  while (prev < swap_ns && !counters_.swap_ns_max.compare_exchange_weak(
                               prev, swap_ns, std::memory_order_relaxed)) {
  }
  cache_.invalidate_older_than(next);
  st_cache_.invalidate_older_than(next);
  approx_cache_.invalidate_older_than(next);
  approx_st_cache_.invalidate_older_than(next);
  SEPSP_OBS_ONLY({
    obs::counter("service.epoch_swaps").add();
    obs::gauge("service.epoch").set(static_cast<std::int64_t>(next));
    obs::gauge("service.epoch_lag").set(0);
    obs::histogram("service.swap_us").record(swap_ns / 1000);
  })
  return next;
}

void QueryService::attach_point_to_point(IncrementalEngine::Snapshot& snap) {
  SEPSP_TRACE_SPAN("service.label_build");
  const auto t0 = Clock::now();
  // The forward engine half is the snapshot just forked; the backward
  // half freezes here, after the mirrored apply(), so both describe the
  // same weighting. engine_->weights() is safe to read: callers hold
  // update_mutex_ (or are the constructor, before any dispatcher runs).
  const IncrementalEngine::Snapshot bwd = bwd_engine_->snapshot(opts_.engine);
  snap.labels = std::make_shared<const DistanceLabeling>(
      DistanceLabeling::build_from_engines(engine_->graph(), engine_->tree(),
                                           *snap.engine, *bwd.engine,
                                           engine_->weights()));
  snap.routing = std::make_shared<const RoutingScheme>(
      RoutingScheme::build_from_engines(engine_->graph(), engine_->tree(),
                                        *snap.engine, *bwd.engine, *reversed_,
                                        engine_->weights(),
                                        bwd_engine_->weights()));
  const std::uint64_t build_ns = ns_between(t0, Clock::now());
  counters_.label_builds.fetch_add(1, std::memory_order_relaxed);
  counters_.label_build_ns_sum.fetch_add(build_ns, std::memory_order_relaxed);
  counters_.label_build_ns_last.store(build_ns, std::memory_order_relaxed);
  SEPSP_OBS_ONLY(obs::histogram("service.label_build_us")
                     .record(build_ns / 1000);)
}

void QueryService::attach_approx(IncrementalEngine::Snapshot& snap) {
  SEPSP_TRACE_SPAN("service.approx_build");
  const auto t0 = Clock::now();
  // Built from the incremental engine's *effective* weights (like the
  // reversed graph in the constructor), so the approximate snapshot
  // describes exactly the weighting the paired exact snapshot serves.
  ApproxEngine::Options aopts;
  aopts.build.approx_eps = opts_.approx.eps;
  snap.approx = std::make_shared<const ApproxEngine>(
      ApproxEngine::build_with_weights(engine_->graph(), engine_->tree(),
                                       engine_->weights(), aopts));
  const std::uint64_t build_ns = ns_between(t0, Clock::now());
  counters_.approx_builds.fetch_add(1, std::memory_order_relaxed);
  counters_.approx_build_ns_sum.fetch_add(build_ns,
                                          std::memory_order_relaxed);
  counters_.approx_build_ns_last.store(build_ns, std::memory_order_relaxed);
  SEPSP_OBS_ONLY(obs::histogram("service.approx_build_us")
                     .record(build_ns / 1000);)
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  out.submitted = counters_.submitted.load(std::memory_order_relaxed);
  out.completed = counters_.completed.load(std::memory_order_relaxed);
  out.shed = counters_.shed.load(std::memory_order_relaxed);
  out.stopped = counters_.stopped.load(std::memory_order_relaxed);
  out.single_source = counters_.single_source.load(std::memory_order_relaxed);
  out.st_distance = counters_.st_distance.load(std::memory_order_relaxed);
  out.st_path = counters_.st_path.load(std::memory_order_relaxed);
  const DistanceCache::Stats c = cache_.stats();
  out.cache_hits = counters_.cache_hits.load(std::memory_order_relaxed);
  out.cache_misses = counters_.cache_misses.load(std::memory_order_relaxed);
  out.cache_evictions = c.evictions;
  out.cache_invalidations = c.invalidations;
  out.cache_entries = c.entries;
  out.cache_bytes = c.bytes;
  out.cache_capacity_bytes = cache_.capacity_bytes();
  const StCache::Stats sc = st_cache_.stats();
  out.st_cache_hits = counters_.st_cache_hits.load(std::memory_order_relaxed);
  out.st_cache_misses =
      counters_.st_cache_misses.load(std::memory_order_relaxed);
  out.st_cache_evictions = sc.evictions;
  out.st_cache_invalidations = sc.invalidations;
  out.st_cache_entries = sc.entries;
  out.st_cache_bytes = sc.bytes;
  out.st_cache_capacity_bytes = st_cache_.capacity_bytes();
  out.st_merge_ns_sum =
      counters_.st_merge_ns_sum.load(std::memory_order_relaxed);
  out.st_merge_ns_max =
      counters_.st_merge_ns_max.load(std::memory_order_relaxed);
  out.st_unpack_ns_sum =
      counters_.st_unpack_ns_sum.load(std::memory_order_relaxed);
  out.st_unpack_ns_max =
      counters_.st_unpack_ns_max.load(std::memory_order_relaxed);
  out.approx_requests =
      counters_.approx_requests.load(std::memory_order_relaxed);
  out.approx_cache_hits =
      counters_.approx_cache_hits.load(std::memory_order_relaxed);
  out.approx_cache_misses =
      counters_.approx_cache_misses.load(std::memory_order_relaxed);
  out.approx_st_hits = counters_.approx_st_hits.load(std::memory_order_relaxed);
  out.approx_st_misses =
      counters_.approx_st_misses.load(std::memory_order_relaxed);
  const DistanceCache::Stats ac = approx_cache_.stats();
  out.approx_cache_evictions = ac.evictions;
  out.approx_cache_invalidations = ac.invalidations;
  out.approx_cache_entries = ac.entries;
  out.approx_cache_bytes = ac.bytes;
  out.approx_builds = counters_.approx_builds.load(std::memory_order_relaxed);
  out.approx_build_ns_sum =
      counters_.approx_build_ns_sum.load(std::memory_order_relaxed);
  out.approx_build_ns_last =
      counters_.approx_build_ns_last.load(std::memory_order_relaxed);
  out.label_builds = counters_.label_builds.load(std::memory_order_relaxed);
  out.label_build_ns_sum =
      counters_.label_build_ns_sum.load(std::memory_order_relaxed);
  out.label_build_ns_last =
      counters_.label_build_ns_last.load(std::memory_order_relaxed);
  out.batches = counters_.batches.load(std::memory_order_relaxed);
  out.batch_lanes_used = counters_.lanes_used.load(std::memory_order_relaxed);
  out.batch_lane_capacity =
      counters_.lane_capacity.load(std::memory_order_relaxed);
  out.coalesce_ns_sum =
      counters_.coalesce_ns_sum.load(std::memory_order_relaxed);
  out.coalesce_ns_max =
      counters_.coalesce_ns_max.load(std::memory_order_relaxed);
  out.queue_depth = queue_.depth();
  out.queue_peak = queue_.peak_depth();
  out.epoch = current()->epoch;
  out.epoch_swaps = counters_.swaps.load(std::memory_order_relaxed);
  out.epoch_lag = counters_.epoch_lag.load(std::memory_order_relaxed);
  out.swap_ns_sum = counters_.swap_ns_sum.load(std::memory_order_relaxed);
  out.swap_ns_max = counters_.swap_ns_max.load(std::memory_order_relaxed);
  out.swap_ns_last = counters_.swap_ns_last.load(std::memory_order_relaxed);
  return out;
}

void QueryService::stop() {
  std::call_once(stop_once_, [this] {
    queue_.close();
    if (dispatchers_.empty()) {
      // No background dispatch configured: drain on the caller's
      // thread so the no-admitted-request-dropped contract still
      // holds.
      std::vector<Pending> group;
      group.reserve(opts_.lanes);
      while (queue_.pop_batch(group, opts_.lanes,
                              std::chrono::microseconds(0))) {
        flush_group(group);
      }
    }
    for (std::thread& t : dispatchers_) t.join();
  });
}

}  // namespace sepsp::service
