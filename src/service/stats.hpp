// Point-in-time counters of one QueryService — the payload of
// QueryService::stats().
//
// Unlike EngineStats' dynamic half, these are populated in every build
// mode: the service's counters sit at request/batch/swap granularity
// (never per edge), so they are kept as plain relaxed atomics inside
// the service and merely *mirrored* into the process-wide obs registry
// when SEPSP_OBS is compiled in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>

namespace sepsp::service {

struct ServiceStats {
  // --- requests ---------------------------------------------------------
  std::uint64_t submitted = 0;  ///< submit() calls, all kinds
  std::uint64_t completed = 0;  ///< replies resolved with kOk
  std::uint64_t shed = 0;       ///< rejected at admission (queue full)
  std::uint64_t stopped = 0;    ///< rejected because the service stopped
  /// Per-kind admission counts; their sum is `submitted`.
  std::uint64_t single_source = 0;
  std::uint64_t st_distance = 0;
  std::uint64_t st_path = 0;

  // --- cache ------------------------------------------------------------
  /// Per-request accounting over single-source requests: a hit is any
  /// completed request answered without running the kernel for it
  /// (cache hits at submit or flush time, plus in-group dedup shares).
  /// With the approximate pairs below: cache_hits + cache_misses +
  /// st_cache_hits + st_cache_misses + approx_cache_hits +
  /// approx_cache_misses + approx_st_hits + approx_st_misses ==
  /// completed.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;      ///< capacity evictions
  std::uint64_t cache_invalidations = 0;  ///< stale-epoch removals
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
  std::size_t cache_capacity_bytes = 0;

  // --- point-to-point -----------------------------------------------------
  /// Per-request st-cache accounting (the submit-time kinds), disjoint
  /// from the single-source pair above.
  std::uint64_t st_cache_hits = 0;
  std::uint64_t st_cache_misses = 0;
  std::uint64_t st_cache_evictions = 0;
  std::uint64_t st_cache_invalidations = 0;
  std::size_t st_cache_entries = 0;
  std::size_t st_cache_bytes = 0;
  std::size_t st_cache_capacity_bytes = 0;
  /// Label-merge latency across st misses, and the routing-walk
  /// (path-unpack) latency of kStPath misses on top of it.
  std::uint64_t st_merge_ns_sum = 0;
  std::uint64_t st_merge_ns_max = 0;
  std::uint64_t st_unpack_ns_sum = 0;
  std::uint64_t st_unpack_ns_max = 0;
  /// Per-epoch hub-label + routing-table rebuild cost (one build per
  /// swap plus the constructor's; off the swap critical path).
  std::uint64_t label_builds = 0;
  std::uint64_t label_build_ns_sum = 0;
  std::uint64_t label_build_ns_last = 0;

  // --- approximate serving -------------------------------------------------
  /// Requests submitted with approx = true (a subset of the per-kind
  /// admission counts above) and their per-request hit/miss ledgers.
  /// Approximate answers live in their own (epoch, mode)-keyed caches,
  /// so these pairs are disjoint from the exact ones.
  std::uint64_t approx_requests = 0;
  std::uint64_t approx_cache_hits = 0;
  std::uint64_t approx_cache_misses = 0;
  std::uint64_t approx_st_hits = 0;
  std::uint64_t approx_st_misses = 0;
  std::uint64_t approx_cache_evictions = 0;
  std::uint64_t approx_cache_invalidations = 0;
  std::size_t approx_cache_entries = 0;
  std::size_t approx_cache_bytes = 0;
  /// Per-epoch approximate-engine rebuild cost (one build per swap plus
  /// the constructor's; off the swap critical path, like labels).
  std::uint64_t approx_builds = 0;
  std::uint64_t approx_build_ns_sum = 0;
  std::uint64_t approx_build_ns_last = 0;

  // --- coalescer ----------------------------------------------------------
  std::uint64_t batches = 0;            ///< lane groups dispatched
  std::uint64_t batch_lanes_used = 0;   ///< sources across those groups
  std::uint64_t batch_lane_capacity = 0;  ///< groups * lane width
  std::uint64_t coalesce_ns_sum = 0;  ///< submit -> dispatch wait, summed
  std::uint64_t coalesce_ns_max = 0;
  std::size_t queue_depth = 0;  ///< sampled at stats() time
  std::size_t queue_peak = 0;   ///< high-water mark since start

  // --- epochs -------------------------------------------------------------
  std::uint64_t epoch = 0;        ///< weighting version currently served
  std::uint64_t epoch_swaps = 0;  ///< snapshot replacements so far
  /// Epochs the served snapshot trails the incremental engine by;
  /// nonzero only while a successor snapshot is being built.
  std::uint64_t epoch_lag = 0;
  /// Snapshot+publish latency of apply_updates() (the swap itself,
  /// excluding the dirty-region recompute): structurally-shared
  /// snapshots keep this proportional to the slabs the batch touched.
  std::uint64_t swap_ns_sum = 0;
  std::uint64_t swap_ns_max = 0;
  std::uint64_t swap_ns_last = 0;

  /// Mean fraction of dispatched lane-group slots that carried a
  /// request (1.0 = every group full).
  double batch_occupancy() const {
    return batch_lane_capacity == 0
               ? 0.0
               : static_cast<double>(batch_lanes_used) /
                     static_cast<double>(batch_lane_capacity);
  }

  /// Fraction of completed single-source requests answered from the
  /// cache.
  double hit_rate() const {
    const std::uint64_t looked = cache_hits + cache_misses;
    return looked == 0 ? 0.0
                       : static_cast<double>(cache_hits) /
                             static_cast<double>(looked);
  }

  /// Fraction of completed point-to-point requests answered from the
  /// st-cache.
  double st_hit_rate() const {
    const std::uint64_t looked = st_cache_hits + st_cache_misses;
    return looked == 0 ? 0.0
                       : static_cast<double>(st_cache_hits) /
                             static_cast<double>(looked);
  }

  /// Fraction of completed approximate requests (both shapes) answered
  /// from the approximate caches.
  double approx_hit_rate() const {
    const std::uint64_t hits = approx_cache_hits + approx_st_hits;
    const std::uint64_t looked = hits + approx_cache_misses + approx_st_misses;
    return looked == 0 ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(looked);
  }

  /// Mean per-epoch approximate-engine rebuild cost, in milliseconds.
  double mean_approx_build_ms() const {
    return approx_builds == 0
               ? 0.0
               : static_cast<double>(approx_build_ns_sum) / 1e6 /
                     static_cast<double>(approx_builds);
  }

  /// Mean sorted-label-merge latency of st misses, in nanoseconds.
  double mean_st_merge_ns() const {
    return st_cache_misses == 0
               ? 0.0
               : static_cast<double>(st_merge_ns_sum) /
                     static_cast<double>(st_cache_misses);
  }

  /// Mean per-epoch label + routing rebuild cost, in milliseconds.
  double mean_label_build_ms() const {
    return label_builds == 0 ? 0.0
                             : static_cast<double>(label_build_ns_sum) / 1e6 /
                                   static_cast<double>(label_builds);
  }

  /// Mean time a dispatched request spent queued + coalescing, in
  /// microseconds.
  double mean_coalesce_us() const {
    return batch_lanes_used == 0
               ? 0.0
               : static_cast<double>(coalesce_ns_sum) / 1e3 /
                     static_cast<double>(batch_lanes_used);
  }

  /// Mean epoch-swap (snapshot + publish) latency, in microseconds.
  double mean_swap_us() const {
    return epoch_swaps == 0 ? 0.0
                            : static_cast<double>(swap_ns_sum) / 1e3 /
                                  static_cast<double>(epoch_swaps);
  }

  /// Human-readable rendering (one summary table).
  void print(std::ostream& os) const;
};

/// Accumulates one shard's ledger into a cross-shard aggregate (the
/// sharded front-end's stats()). Additive counters and byte/entry
/// gauges sum; *_ns_max fields take the max; `epoch` takes the
/// *minimum* (the weighting every shard is guaranteed to serve) and
/// `epoch_swaps`/`epoch_lag` the maximum (shards swap in lockstep, so
/// the max counts fan-outs, not shards x fan-outs). Time *sums* stay
/// sums — mean_swap_us() over an aggregate therefore reads as total
/// swap *work* per fan-out across shards, not wall latency; the
/// sharded front-end reports fan-out wall latency separately.
void accumulate(ServiceStats& into, const ServiceStats& shard);

}  // namespace sepsp::service
