// QueryService — the concurrent query-serving runtime over the
// separator-decomposition engine.
//
// Four cooperating parts (ISSUE 5 / ROADMAP "serve heavy traffic"):
//
//  * Batch coalescer. submit() admits a single-source distance request
//    into a bounded MPMC queue (queue.hpp) and returns a future.
//    Dispatcher threads drain the queue into lane groups of at most
//    `lanes` sources — flushing early once the oldest request has
//    waited `max_delay_us` — and resolve each group with one
//    distances_batch call, so concurrent traffic rides the
//    source-batched kernel (core/query_batch.hpp) instead of paying a
//    full E u E+ stream per request. Overload is shed at admission
//    (ReplyStatus::kShed), never by queueing without bound.
//
//  * Distance cache. A sharded byte-accounted LRU (cache.hpp) keyed by
//    source and tagged by epoch. Hits resolve at submit time without
//    touching the queue; hit and miss hand out the same immutable
//    object, so cached responses are bit-identical to computed ones.
//
//  * Epoch-swapped snapshots. Readers resolve against an immutable
//    shared engine snapshot (IncrementalEngine::snapshot()) obtained
//    from one shared_ptr copy. apply_updates() stages weight
//    changes on the incremental engine, recomputes the affected part
//    of E+, builds the successor snapshot in the background, and swaps
//    it in RCU-style: in-flight queries keep the snapshot they
//    captured (the last holder frees it), updates never block reads,
//    and the cache invalidates by epoch. Every reply names the epoch
//    it was computed against.
//
//  * Observability. Per-stage TraceSpans (service.submit / flush /
//    batch / swap) plus counters and histograms for queue depth, batch
//    occupancy, coalesce latency, hit rate, shed count, and epoch lag,
//    surfaced through ServiceStats in every build mode (stats.hpp).
//
// Thread-safety: submit(), query(), stats(), epoch(), and
// apply_updates() may all be called concurrently from any threads.
// apply_updates() serializes against itself; nothing blocks readers.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/incremental.hpp"
#include "service/cache.hpp"
#include "service/options.hpp"
#include "service/queue.hpp"
#include "service/reply.hpp"
#include "service/stats.hpp"

namespace sepsp::service {

class QueryService {
 public:
  /// Takes over `engine` (the caller must not keep driving it — staged
  /// updates would race the service's swaps) and starts the dispatcher
  /// threads. The graph and tree behind the engine must outlive the
  /// service.
  explicit QueryService(IncrementalEngine engine,
                        const ServiceOptions& options = {});

  /// Stops and drains (see stop()).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits one single-source distance request. Resolution order:
  /// cache hit -> future is ready on return; queue full -> ready with
  /// kShed; stopped -> ready with kStopped; otherwise the future
  /// resolves when the request's lane group executes.
  std::future<Reply> submit(Vertex source);

  /// Convenience synchronous spelling of submit(source).get().
  Reply query(Vertex source);

  /// Applies a batch of weight updates as one new epoch: stages them
  /// on the incremental engine, recomputes the affected part of E+,
  /// freezes the successor snapshot, swaps it in, and sweeps stale
  /// cache entries. Readers are never blocked; concurrent
  /// apply_updates() calls serialize. Returns the new epoch (or the
  /// current one when `updates` is empty).
  std::uint64_t apply_updates(std::span<const EdgeUpdate> updates);

  /// Epoch of the snapshot queries are currently resolved against.
  std::uint64_t epoch() const { return current()->epoch; }

  /// The snapshot new queries would use right now (shareable; useful
  /// for oracle comparisons in tests).
  IncrementalEngine::Snapshot current_snapshot() const { return *current(); }

  ServiceStats stats() const;

  /// Closes admission (subsequent submits resolve kStopped), lets the
  /// dispatchers drain every already-admitted request, and joins them.
  /// Idempotent. With dispatchers == 0 the caller's thread drains the
  /// queue here. No admitted request is ever dropped.
  void stop();

 private:
  struct Counters {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> stopped{0};
    // Per-request hit accounting (a "hit" is any request answered
    // without running the kernel for it — submit-time cache hits,
    // flush-time re-check hits, and in-group dedup shares). The raw
    // DistanceCache counters would double-count the two-phase lookup.
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> lanes_used{0};
    std::atomic<std::uint64_t> lane_capacity{0};
    std::atomic<std::uint64_t> coalesce_ns_sum{0};
    std::atomic<std::uint64_t> coalesce_ns_max{0};
    std::atomic<std::uint64_t> swaps{0};
    std::atomic<std::uint64_t> epoch_lag{0};
    // Snapshot+publish latency of apply_updates() — the epoch-swap cost
    // the structurally-shared snapshots keep proportional to the dirty
    // region. Mirrored into the service.swap_us histogram under
    // SEPSP_OBS.
    std::atomic<std::uint64_t> swap_ns_sum{0};
    std::atomic<std::uint64_t> swap_ns_max{0};
    std::atomic<std::uint64_t> swap_ns_last{0};
  };

  using Snapshot = std::shared_ptr<const IncrementalEngine::Snapshot>;

  // The snapshot cell is a mutex-guarded shared_ptr rather than
  // std::atomic<shared_ptr>: libstdc++'s _Sp_atomic unlocks its
  // embedded spin bit with relaxed ordering on the load path, which
  // ThreadSanitizer (correctly, per the formal model) reports as a
  // race against store. The lock is held only for the pointer copy —
  // never while a successor snapshot is built — so readers still
  // don't block on updates in any meaningful sense.
  Snapshot current() const {
    std::lock_guard<std::mutex> lock(current_mutex_);
    return current_;
  }

  void publish(Snapshot snap) {
    std::lock_guard<std::mutex> lock(current_mutex_);
    current_ = std::move(snap);
  }

  void dispatcher_loop();
  void flush_group(std::vector<Pending>& group);
  void resolve(Pending& p, const Snapshot& snap,
               std::shared_ptr<const CachedDistances> value, bool hit);

  ServiceOptions opts_;
  IncrementalEngine engine_;    // touched only under update_mutex_
  std::mutex update_mutex_;     // serializes apply_updates()
  mutable std::mutex current_mutex_;  // guards the pointer copy only
  Snapshot current_;            // RCU-style cell readers copy
  DistanceCache cache_;
  SubmitQueue queue_;
  Counters counters_;
  std::vector<std::thread> dispatchers_;
  std::once_flag stop_once_;
};

}  // namespace sepsp::service
