// QueryService — the concurrent query-serving runtime over the
// separator-decomposition engine.
//
// Four cooperating parts (ISSUE 5 / ROADMAP "serve heavy traffic"):
//
//  * Batch coalescer. submit() admits a single-source distance request
//    into a bounded MPMC queue (queue.hpp) and returns a future.
//    Dispatcher threads drain the queue into lane groups of at most
//    `lanes` sources — flushing early once the oldest request has
//    waited `max_delay_us` — and resolve each group with one
//    distances_batch call, so concurrent traffic rides the
//    source-batched kernel (core/query_batch.hpp) instead of paying a
//    full E u E+ stream per request. Overload is shed at admission
//    (ReplyStatus::kShed), never by queueing without bound.
//
//  * Distance cache. A sharded byte-accounted LRU (cache.hpp) keyed by
//    source and tagged by epoch. Hits resolve at submit time without
//    touching the queue; hit and miss hand out the same immutable
//    object, so cached responses are bit-identical to computed ones.
//
//  * Epoch-swapped snapshots. Readers resolve against an immutable
//    shared engine snapshot (IncrementalEngine::snapshot()) obtained
//    from one shared_ptr copy. apply_updates() stages weight
//    changes on the incremental engine, recomputes the affected part
//    of E+, builds the successor snapshot in the background, and swaps
//    it in RCU-style: in-flight queries keep the snapshot they
//    captured (the last holder frees it), updates never block reads,
//    and the cache invalidates by epoch. Every reply names the epoch
//    it was computed against.
//
//  * Point-to-point serving (ISSUE 7). StDistance and StPath requests
//    resolve at submit time — no queue hop, no lane group — against the
//    snapshot's epoch-tagged hub labels (core/labeling.hpp) and routing
//    tables (core/routing.hpp). The service owns a second incremental
//    engine over the reversed graph; apply_updates() mirrors every
//    weight change into it and rebuilds labels + routing during
//    successor-snapshot construction (off the swap critical path, on
//    the work-stealing pool), so every epoch's st answers are exact
//    under that epoch's weighting. A second sharded LRU keyed
//    (epoch, s, t) caches st answers with the same bit-identical
//    hit/miss parity as the distance cache.
//
//  * Approximate serving (ISSUE 10). When ServiceOptions::approx is
//    enabled, every epoch additionally carries a (1 + eps)-approximate
//    engine (src/approx) built beside the exact snapshot inside
//    apply_updates(). Requests submitted with `approx = true` coalesce
//    into their own lane groups, resolve against that engine, and are
//    cached in separate (epoch, mode)-keyed caches; each approximate
//    reply is tagged with the engine's certified error bound.
//
//  * Observability. Per-stage TraceSpans (service.submit / flush /
//    batch / swap / label_build) plus counters and histograms for queue
//    depth, batch occupancy, coalesce latency, hit rate, shed count,
//    per-kind traffic, label-merge latency, and epoch lag, surfaced
//    through ServiceStats in every build mode (stats.hpp).
//
// Thread-safety: submit(), query(), stats(), epoch(), and
// apply_updates() may all be called concurrently from any threads.
// apply_updates() serializes against itself; nothing blocks readers.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "core/incremental.hpp"
#include "service/cache.hpp"
#include "service/options.hpp"
#include "service/queue.hpp"
#include "service/reply.hpp"
#include "service/stats.hpp"
#include "util/cacheline.hpp"

namespace sepsp::service {

class QueryService {
 public:
  /// Takes over `engine` (the caller must not keep driving it — staged
  /// updates would race the service's swaps) and starts the dispatcher
  /// threads. The graph and tree behind the engine must outlive the
  /// service.
  explicit QueryService(IncrementalEngine engine,
                        const ServiceOptions& options = {});

  /// Read-only service over a frozen engine snapshot — the open-from-
  /// file path (store/stored_engine.hpp): the shared_ptr's control
  /// block keeps whatever backs the engine (buffer pool, mapping)
  /// alive, so a service can be constructed over an image larger than
  /// the pool budget. Serves single-source traffic (cache, coalescing,
  /// batched kernel) at a fixed epoch 0; apply_updates() aborts, and
  /// `options.point_to_point` must be false (labels/routing need the
  /// incremental engines).
  explicit QueryService(SeparatorShortestPaths<TropicalD>::Snapshot engine,
                        const ServiceOptions& options = {});

  /// Stops and drains (see stop()).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits one single-source distance request. Resolution order:
  /// cache hit -> future is ready on return; queue full -> ready with
  /// kShed; stopped -> ready with kStopped; otherwise the future
  /// resolves when the request's lane group executes.
  std::future<Reply> submit(SingleSource request);

  /// Bare-vertex spelling of submit(SingleSource{source}) — the pre-
  /// typed-API surface, kept as a convenience alias.
  std::future<Reply> submit(Vertex source) {
    return submit(SingleSource{source});
  }

  /// Submits one point-to-point distance request. Resolves at submit
  /// time (the returned future is always ready): st-cache hit, or one
  /// sorted label merge against the current snapshot's hub labels.
  /// Requires ServiceOptions::point_to_point (aborts otherwise).
  std::future<Reply> submit(StDistance request);

  /// Submits one point-to-point path request. Resolves at submit time:
  /// st-cache hit carrying a path, or a label merge plus a hop-by-hop
  /// routing-table walk. A cached path-less StDistance answer for the
  /// same (s, t) is upgraded in place. Requires point_to_point.
  std::future<Reply> submit(StPath request);

  /// Convenience synchronous spellings of submit(...).get().
  Reply query(Vertex source) { return submit(source).get(); }
  Reply query(SingleSource request) { return submit(request).get(); }
  Reply query(StDistance request) { return submit(request).get(); }
  Reply query(StPath request) { return submit(request).get(); }

  /// Applies a batch of weight updates as one new epoch: stages them
  /// on the incremental engine, recomputes the affected part of E+,
  /// freezes the successor snapshot, swaps it in, and sweeps stale
  /// cache entries. Readers are never blocked; concurrent
  /// apply_updates() calls serialize. Returns the new epoch (or the
  /// current one when `updates` is empty).
  std::uint64_t apply_updates(std::span<const EdgeUpdate> updates);

  /// Epoch of the snapshot queries are currently resolved against.
  std::uint64_t epoch() const { return current()->epoch; }

  /// The snapshot new queries would use right now (shareable; useful
  /// for oracle comparisons in tests).
  IncrementalEngine::Snapshot current_snapshot() const { return *current(); }

  ServiceStats stats() const;

  /// Closes admission (subsequent submits resolve kStopped), lets the
  /// dispatchers drain every already-admitted request, and joins them.
  /// Idempotent. With dispatchers == 0 the caller's thread drains the
  /// queue here. No admitted request is ever dropped.
  void stop();

 private:
  // Every counter sits alone on its cache line (util/cacheline.hpp):
  // the ledger is bumped from every submitting thread and every
  // dispatcher on every request, and adjacent plain atomics would
  // false-share — the submit-path fetch_adds of one core evicting the
  // line under all the others.
  struct Counters {
    PaddedAtomicU64 submitted;
    PaddedAtomicU64 completed;
    PaddedAtomicU64 shed;
    PaddedAtomicU64 stopped;
    // Per-request hit accounting (a "hit" is any request answered
    // without running the kernel for it — submit-time cache hits,
    // flush-time re-check hits, and in-group dedup shares). The raw
    // DistanceCache counters would double-count the two-phase lookup.
    PaddedAtomicU64 cache_hits;
    PaddedAtomicU64 cache_misses;
    PaddedAtomicU64 batches;
    PaddedAtomicU64 lanes_used;
    PaddedAtomicU64 lane_capacity;
    PaddedAtomicU64 coalesce_ns_sum;
    PaddedAtomicU64 coalesce_ns_max;
    // Per-kind admission counts (submitted = sum of the three).
    PaddedAtomicU64 single_source;
    PaddedAtomicU64 st_distance;
    PaddedAtomicU64 st_path;
    // Per-request st-cache accounting, disjoint from the single-source
    // hit/miss pair. With the approximate pairs below:
    // completed == cache_hits + cache_misses + st_cache_hits +
    // st_cache_misses + approx_cache_hits + approx_cache_misses +
    // approx_st_hits + approx_st_misses.
    PaddedAtomicU64 st_cache_hits;
    PaddedAtomicU64 st_cache_misses;
    // Approximate-mode traffic (requests submitted with approx = true;
    // a subset of the per-kind admission counts above) and its own
    // per-request hit/miss ledger — approximate answers live in
    // (epoch, mode)-disjoint caches, so these pairs never overlap the
    // exact ones.
    PaddedAtomicU64 approx_requests;
    PaddedAtomicU64 approx_cache_hits;
    PaddedAtomicU64 approx_cache_misses;
    PaddedAtomicU64 approx_st_hits;
    PaddedAtomicU64 approx_st_misses;
    // Label-merge latency of st misses (the submit-time kernel), and
    // the routing-walk latency of kStPath misses on top of it.
    PaddedAtomicU64 st_merge_ns_sum;
    PaddedAtomicU64 st_merge_ns_max;
    PaddedAtomicU64 st_unpack_ns_sum;
    PaddedAtomicU64 st_unpack_ns_max;
    // Per-epoch label + routing rebuild cost (off the swap critical
    // path; see attach_point_to_point()).
    PaddedAtomicU64 label_builds;
    PaddedAtomicU64 label_build_ns_sum;
    PaddedAtomicU64 label_build_ns_last;
    // Per-epoch approximate-engine rebuild cost (like the label rebuild,
    // off the swap critical path; see attach_approx()).
    PaddedAtomicU64 approx_builds;
    PaddedAtomicU64 approx_build_ns_sum;
    PaddedAtomicU64 approx_build_ns_last;
    PaddedAtomicU64 swaps;
    PaddedAtomicU64 epoch_lag;
    // Snapshot+publish latency of apply_updates() — the epoch-swap cost
    // the structurally-shared snapshots keep proportional to the dirty
    // region. Mirrored into the service.swap_us histogram under
    // SEPSP_OBS.
    PaddedAtomicU64 swap_ns_sum;
    PaddedAtomicU64 swap_ns_max;
    PaddedAtomicU64 swap_ns_last;
  };
  static_assert(alignof(Counters) == kCacheLineBytes,
                "hot ledger counters must be cache-line padded");

  using Snapshot = std::shared_ptr<const IncrementalEngine::Snapshot>;

  // The snapshot cell is a mutex-guarded shared_ptr rather than
  // std::atomic<shared_ptr>: libstdc++'s _Sp_atomic unlocks its
  // embedded spin bit with relaxed ordering on the load path, which
  // ThreadSanitizer (correctly, per the formal model) reports as a
  // race against store. The lock is held only for the pointer copy —
  // never while a successor snapshot is built — so readers still
  // don't block on updates in any meaningful sense.
  Snapshot current() const {
    std::lock_guard<std::mutex> lock(current_mutex_);
    return current_;
  }

  void publish(Snapshot snap) {
    std::lock_guard<std::mutex> lock(current_mutex_);
    current_ = std::move(snap);
  }

  void dispatcher_loop();
  void flush_group(std::vector<Pending>& group);
  void resolve(Pending& p, const Snapshot& snap,
               std::shared_ptr<const CachedDistances> value, bool hit);
  /// Shared submit-time resolution of the two point-to-point kinds.
  /// `approx` routes kStDistance through the approximate caches (never
  /// set for kStPath — paths have no approximate spelling).
  std::future<Reply> submit_st(Vertex s, Vertex t, RequestKind kind,
                               bool approx);
  /// Builds this epoch's hub labels + routing tables from the two
  /// incremental engines and hangs them off `snap`. Called inside
  /// apply_updates() between snapshot fork and publish — readers keep
  /// the previous snapshot for the whole build, so the cost shows up as
  /// epoch lag, never as swap latency.
  void attach_point_to_point(IncrementalEngine::Snapshot& snap);
  /// Builds this epoch's (1 + eps)-approximate engine (src/approx) over
  /// the incremental engine's effective weights and hangs it off `snap`.
  /// Same placement as attach_point_to_point: between snapshot fork and
  /// publish, so the build cost shows up as epoch lag, never as swap
  /// latency. Caller holds update_mutex_ (or is the constructor).
  void attach_approx(IncrementalEngine::Snapshot& snap);

  /// Starts the dispatcher threads (tail of both constructors).
  void start_dispatchers();

  ServiceOptions opts_;
  /// Absent on a read-only (snapshot-constructed) service; touched
  /// only under update_mutex_ otherwise.
  std::optional<IncrementalEngine> engine_;
  /// Vertex count of the served graph, cached for the submit-path
  /// bounds checks (valid in both construction modes).
  std::size_t num_vertices_ = 0;
  /// Reversed graph + backward incremental engine behind the labels'
  /// to-hub distances (point_to_point only). The reversed graph bakes
  /// the forward engine's *effective* weights at construction time, so
  /// a handed-over engine with applied history starts consistent;
  /// apply_updates() mirrors every change. The forward epoch is
  /// authoritative everywhere (the backward engine's own counter is
  /// never read).
  std::optional<Digraph> reversed_;
  std::optional<IncrementalEngine> bwd_engine_;  // under update_mutex_
  std::mutex update_mutex_;     // serializes apply_updates()
  mutable std::mutex current_mutex_;  // guards the pointer copy only
  Snapshot current_;            // RCU-style cell readers copy
  DistanceCache cache_;
  StCache st_cache_;
  /// Approximate-mode answers, keyed by the same (epoch, source) /
  /// (epoch, s, t) shapes but in separate cache instances — (epoch,
  /// mode) keying by construction, so an approximate vector can never
  /// satisfy an exact request or vice versa.
  DistanceCache approx_cache_;
  StCache approx_st_cache_;
  SubmitQueue queue_;
  Counters counters_;
  std::vector<std::thread> dispatchers_;
  std::once_flag stop_once_;
};

}  // namespace sepsp::service
