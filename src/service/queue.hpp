// Bounded MPMC submission queue with deadline-aware batch pops — the
// coalescing front of the serving runtime.
//
// Producers (submit() callers) push one pending request under a single
// mutex hop; consumers (dispatcher threads) pop a *batch*: block for
// the first request, then keep collecting arrivals until the lane
// group is full or the oldest popped request has aged past the flush
// deadline. One lock round-trip admits a request and one drains a
// whole lane group, so the queue costs O(1) lock hops per request and
// per batch — lock-light in the sense that matters here (the relaxed
// ring alternatives save nanoseconds the 10^2..10^4-ns batch kernel
// cannot see, and a plain mutex is trivially TSan-clean).
//
// Admission control: push() reports failure instead of growing past
// the configured bound; the caller sheds the request.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "graph/digraph.hpp"
#include "service/reply.hpp"

namespace sepsp::service {

/// One admitted, not-yet-dispatched request.
struct Pending {
  Vertex source = 0;
  std::promise<Reply> promise;
  std::chrono::steady_clock::time_point enqueued;
  /// Resolve against the approximate engine (mode of the lane group the
  /// dispatcher folds this request into; modes never share a group).
  bool approx = false;
};

class SubmitQueue {
 public:
  explicit SubmitQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admits one request. Returns false — leaving `p` untouched — when
  /// the queue is at capacity (shed) or closed (stopped).
  bool push(Pending&& p) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(p));
      if (items_.size() > peak_) peak_ = items_.size();
    }
    ready_.notify_one();
    return true;
  }

  /// Pops the next batch into `out` (cleared first): blocks until a
  /// request arrives, then collects up to `max` requests, waiting at
  /// most until the first one has aged `max_delay` past its enqueue
  /// time. Returns false only when the queue is closed *and* drained —
  /// the dispatcher's exit condition; every admitted request is
  /// delivered to some batch first.
  bool pop_batch(std::vector<Pending>& out, std::size_t max,
                 std::chrono::microseconds max_delay) {
    out.clear();
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    out.push_back(take_front());
    const auto deadline = out.front().enqueued + max_delay;
    while (out.size() < max) {
      if (!items_.empty()) {
        out.push_back(take_front());
        continue;
      }
      if (closed_ ||
          ready_.wait_until(lock, deadline,
                            [&] { return closed_ || !items_.empty(); }) ==
              false) {
        break;  // deadline hit with nothing new — flush partial group
      }
      if (items_.empty()) break;  // woken by close()
    }
    return true;
  }

  /// Stops admissions and wakes every blocked consumer; already-queued
  /// requests are still handed out by pop_batch until drained.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// High-water mark of the queue depth since construction.
  std::size_t peak_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_;
  }

 private:
  Pending take_front() {
    Pending p = std::move(items_.front());
    items_.pop_front();
    return p;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Pending> items_;
  std::size_t peak_ = 0;
  bool closed_ = false;
};

}  // namespace sepsp::service
