// ShardedService — the NUMA-aware, topology-placed front-end over N
// QueryService replicas (ISSUE 8 / ROADMAP "NUMA-aware sharded
// serving").
//
// One QueryService is one socket's worth of serving: one MPMC queue,
// one cache, one dispatcher set, one epoch swap. Past that, every
// additional core funnels through the same queue mutex and the same
// cache lines, and on a multi-socket box half the snapshot reads cross
// the interconnect. The sharded front-end removes that ceiling by
// *replication*:
//
//  * Shards. N full QueryService replicas over the same graph and
//    separator tree, each with its own engine, snapshot chain, caches,
//    queue, and dispatchers. Replies are bit-identical across shards
//    (the engine is deterministic), so routing is a pure load-balancing
//    decision — any shard can answer anything, and a sharded deployment
//    is answer-for-answer indistinguishable from a single instance
//    (memcmp-enforced in bench_x_service and test_service_sharded).
//
//  * Placement (src/pram/topology.hpp). Shard i's home is NUMA node
//    i % nodes. Each replica is *constructed* on a thread pinned to its
//    home node — Linux first-touch then backs the engine state, cache
//    shards, and queue with node-local pages — and its dispatcher
//    threads pin to the home node's CPUs (ServiceOptions::pin_cpus), so
//    the batch kernel's hot reads stay on-socket. On a non-NUMA box
//    discovery yields one node and placement degrades to round-robin
//    over it (pinning to "all CPUs of node 0" is a no-op by
//    construction); nothing else changes.
//
//  * Routing (pluggable). kHashSource sends a source's whole traffic to
//    one shard — maximal cache locality, and the default. kHotReplicated
//    additionally spreads a configured hot set (e.g. the head of a Zipf
//    popularity order) round-robin over every shard: a hot source's
//    entries replicate into each shard's cache, so its read load scales
//    with shards instead of saturating one. Point-to-point requests
//    hash the (s, t) pair either way.
//
//  * Epoch swaps. apply_updates() fans the batch out to every shard in
//    parallel (one pinned thread per shard), so all replicas step to
//    the same epoch; the fan-out serializes against itself, which keeps
//    shards in lockstep — a reader may observe shard A at the new epoch
//    while shard B still builds it (each shard's swap is atomic, so
//    every *reply* is internally consistent and epoch-tagged), but
//    never a shard more than one fan-out behind. The replica trade-off
//    is honest: N shards recompute the dirty region N times (in
//    parallel, on their own sockets) in exchange for zero cross-shard
//    read traffic between swaps.
//
//  * Ledger. stats() returns the per-shard ServiceStats plus their
//    aggregate (service/stats.hpp accumulate()); the aggregate
//    satisfies the same balance invariants as a single instance
//    (submitted == completed + shed + stopped, hits + misses ==
//    completed), and the fan-out's wall latency is tracked separately
//    from the per-shard swap work.
//
// Thread-safety: submit(), query(), stats(), epoch(), and
// apply_updates() may be called concurrently from any threads;
// apply_updates() serializes against itself. stop() is idempotent.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "pram/topology.hpp"
#include "service/service.hpp"

namespace sepsp::service {

/// How the front-end maps a request to a shard.
struct RoutingPolicy {
  enum class Kind : std::uint8_t {
    /// splitmix64(source) mod shards: one shard owns each source's
    /// traffic (and its cache entry). Point-to-point requests hash the
    /// packed (s, t) pair the same way.
    kHashSource,
    /// As kHashSource, except sources in `hot_sources` round-robin over
    /// every shard: their cache entries replicate wherever they land
    /// and their read load scales with the shard count.
    kHotReplicated,
  };
  Kind kind = Kind::kHashSource;
  /// The replicated set under kHotReplicated (ignored otherwise) —
  /// typically the head of the workload's popularity order.
  std::vector<Vertex> hot_sources;
};

struct ShardedOptions {
  /// Replica count. 0 = auto: one shard per NUMA node (so a two-socket
  /// box gets two shards and a non-NUMA box gets one — benches and
  /// multi-shard deployments on non-NUMA hardware pass an explicit
  /// count).
  unsigned shards = 0;
  /// Per-shard template. `cache_capacity_bytes` and
  /// `st_cache_capacity_bytes` are treated as the *total* budget and
  /// divided evenly across shards when `divide_cache_budget`;
  /// `pin_cpus` is overwritten by placement when `pin`.
  ServiceOptions shard;
  /// Construct each replica on (and pin its dispatchers to) its home
  /// node's CPUs. Advisory: where affinity calls are unsupported the
  /// shards still run, just unplaced.
  bool pin = true;
  /// Split the template's cache byte budgets across shards so a sharded
  /// deployment holds the same total bytes as the single instance it
  /// replaces. When false every shard gets the full template budget.
  bool divide_cache_budget = true;
  RoutingPolicy routing;

  /// Resolves shards == 0 against `topo` and validates the rest
  /// (fatal SEPSP_CHECK on nonsense, same contract as ServiceOptions).
  ShardedOptions validated(const pram::Topology& topo) const;
};

/// Point-in-time view of the sharded ledger: per-shard ServiceStats
/// plus their aggregate and the fan-out swap timings.
struct ShardedStats {
  ServiceStats total;                ///< accumulate() over shards
  std::vector<ServiceStats> shards;  ///< one ledger per shard
  /// apply_updates() fan-outs completed, and their wall latency (the
  /// max over shards per fan-out, since shards swap in parallel).
  std::uint64_t swap_fanouts = 0;
  std::uint64_t swap_wall_ns_sum = 0;
  std::uint64_t swap_wall_ns_max = 0;
  /// True when every shard served the same epoch at sampling time.
  bool epochs_consistent = true;

  /// min/max completed over shards (1.0 = perfectly even, 0 = some
  /// shard saw nothing). The routing policy's balance report.
  double completed_balance() const;
  double mean_swap_wall_us() const {
    return swap_fanouts == 0 ? 0.0
                             : static_cast<double>(swap_wall_ns_sum) / 1e3 /
                                   static_cast<double>(swap_fanouts);
  }
};

class ShardedService {
 public:
  /// Builds `options.shards` replicas over `g` and `tree` (which must
  /// outlive the service), each constructed on a thread pinned to its
  /// home node. Construction runs the shards' engine builds in
  /// parallel.
  ShardedService(const Digraph& g, const SeparatorTree& tree,
                 const ShardedOptions& options = {});

  /// Stops and drains every shard (see stop()).
  ~ShardedService();

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Routed submits: same future contract as QueryService::submit.
  std::future<Reply> submit(SingleSource request) {
    return shards_[shard_of_source(request.source)]->submit(request);
  }
  std::future<Reply> submit(Vertex source) {
    return submit(SingleSource{source});
  }
  std::future<Reply> submit(StDistance request) {
    return shards_[shard_of_pair(request.s, request.t)]->submit(request);
  }
  std::future<Reply> submit(StPath request) {
    return shards_[shard_of_pair(request.s, request.t)]->submit(request);
  }

  /// Convenience synchronous spellings of submit(...).get().
  Reply query(Vertex source) { return submit(source).get(); }
  Reply query(SingleSource request) { return submit(request).get(); }
  Reply query(StDistance request) { return submit(request).get(); }
  Reply query(StPath request) { return submit(request).get(); }

  /// Applies one update batch to every shard as parallel per-shard
  /// epoch swaps; all shards land on the same epoch, which is
  /// returned. Serializes against itself.
  std::uint64_t apply_updates(std::span<const EdgeUpdate> updates);

  /// Epoch shard 0 currently serves (all shards agree between
  /// fan-outs).
  std::uint64_t epoch() const { return shards_.front()->epoch(); }

  ShardedStats stats() const;

  /// Closes admission on and drains every shard. Idempotent.
  void stop();

  std::size_t shard_count() const { return shards_.size(); }

  /// The routing decision, exposed for tests and balance probes.
  std::size_t shard_of_source(Vertex source);
  std::size_t shard_of_pair(Vertex s, Vertex t) const;

  /// Direct access to one replica (oracle comparisons in tests).
  QueryService& shard(std::size_t i) { return *shards_[i]; }

  /// The topology the shards were placed against.
  const pram::Topology& topology() const { return topo_; }

  /// Logical CPUs shard `i` was placed on (empty when pinning is off).
  const std::vector<int>& home_cpus(std::size_t i) const {
    return home_cpus_[i];
  }

 private:
  pram::Topology topo_;
  ShardedOptions opts_;
  std::vector<std::unique_ptr<QueryService>> shards_;
  std::vector<std::vector<int>> home_cpus_;  // per shard; empty = unpinned
  std::vector<bool> hot_;                    // hot-source bitmap (by vertex)
  std::atomic<std::uint64_t> round_robin_{0};
  std::mutex fanout_mutex_;  // serializes apply_updates()
  PaddedAtomicU64 swap_fanouts_;
  PaddedAtomicU64 swap_wall_ns_sum_;
  PaddedAtomicU64 swap_wall_ns_max_;
};

}  // namespace sepsp::service
