// sepsp::obs — process-wide observability: named counters / gauges /
// histograms (stats.hpp), RAII timing spans assembling a nested trace
// tree (trace.hpp), and sinks rendering both as human tables or JSON
// (sink.hpp).
//
// Compile-time gating: the CMake option SEPSP_OBS (default ON) defines
// SEPSP_OBS_ENABLED for every target linking sepsp_obs. When OFF, every
// recording class in this subsystem collapses to an empty inline no-op —
// zero instructions, zero data — so hot relaxation loops stay exactly as
// they were. Instrumentation is only ever placed at phase granularity
// (never per edge), so the ON cost is one clock read + one mutex hop per
// phase.
//
// Usage:
//   obs::counter("query.runs").add(1);
//   obs::gauge("pool.threads").set(n);
//   obs::histogram("pool.region_items").record(range);
//   { SEPSP_TRACE_SPAN("build.level"); ... }     // timed scope
//   obs::StatsRegistry::instance().snapshot();   // all counters
//   obs::trace_snapshot();                       // merged timing tree
#pragma once

// All in-tree targets receive SEPSP_OBS_ENABLED (0 or 1) from the
// sepsp_obs CMake target; standalone inclusion defaults to ON.
#ifndef SEPSP_OBS_ENABLED
#define SEPSP_OBS_ENABLED 1
#endif

#include "obs/stats.hpp"   // IWYU pragma: export
#include "obs/trace.hpp"   // IWYU pragma: export

// Splices statements in only when observability is compiled in. The
// variadic form tolerates commas in the argument.
#if SEPSP_OBS_ENABLED
#define SEPSP_OBS_ONLY(...) __VA_ARGS__
#else
#define SEPSP_OBS_ONLY(...)
#endif
