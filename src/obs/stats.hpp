// Named metric instruments and the process-wide StatsRegistry.
//
// Instruments are interned by name: the first counter("x") call creates
// the counter, later calls return the same object at a stable address,
// so hot paths look a handle up once (at construction time) and then pay
// one relaxed atomic per bulk charge. The snapshot types below are plain
// data and exist in both SEPSP_OBS modes; only the recording machinery
// compiles away when observability is off.
#pragma once

#ifndef SEPSP_OBS_ENABLED
#define SEPSP_OBS_ENABLED 1
#endif

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sepsp::obs {

/// Point-in-time copy of every registered instrument, sorted by name.
struct StatsSnapshot {
  struct HistogramData {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  ///< meaningful only when count > 0
    std::uint64_t max = 0;
    /// bucket[i] counts samples with bit_width(sample) == i (bucket 0 is
    /// the sample 0); power-of-two buckets keep record() allocation-free.
    std::array<std::uint64_t, 65> buckets{};
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramData> histograms;

  /// Approximate q-quantile (q in [0, 1]) of a histogram,
  /// reconstructed from its power-of-two buckets: the rank-q sample is
  /// located in its bucket and linearly interpolated across the
  /// bucket's value range [2^(i-1), 2^i). Within a factor of two of the
  /// true quantile by construction; 0 when the histogram is empty.
  static double quantile(const HistogramData& h, double q);

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Counter value by exact name, or 0 when absent.
  std::uint64_t counter_or_zero(std::string_view name) const {
    for (const auto& [n, v] : counters) {
      if (n == name) return v;
    }
    return 0;
  }
};

/// True when the library was compiled with observability support.
constexpr bool compiled_in() { return SEPSP_OBS_ENABLED != 0; }

#if SEPSP_OBS_ENABLED

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (pool width, queue depth, ...).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Lock-free power-of-two histogram: record() is a handful of relaxed
/// atomics, suitable for per-phase (not per-edge) call sites.
class Histogram {
 public:
  void record(std::uint64_t sample) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    buckets_[std::bit_width(sample)].fetch_add(1, std::memory_order_relaxed);
    update_min(sample);
    update_max(sample);
  }
  void snapshot_into(StatsSnapshot::HistogramData* out) const {
    out->count = count_.load(std::memory_order_relaxed);
    out->sum = sum_.load(std::memory_order_relaxed);
    out->min = min_.load(std::memory_order_relaxed);
    out->max = max_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      out->buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
  }
  void reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  void update_min(std::uint64_t sample) {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (sample < cur &&
           !min_.compare_exchange_weak(cur, sample,
                                       std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t sample) {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (sample > cur &&
           !max_.compare_exchange_weak(cur, sample,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, 65> buckets_{};
};

/// Process-wide instrument registry. Lookup takes a mutex (do it once,
/// outside hot loops); the returned references stay valid for the
/// process lifetime.
class StatsRegistry {
 public:
  static StatsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  StatsSnapshot snapshot() const;

  /// Zeroes every instrument's value; names and addresses persist.
  /// Intended for tests and bench repetitions.
  void reset_values();

 private:
  StatsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

inline Counter& counter(std::string_view name) {
  return StatsRegistry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return StatsRegistry::instance().gauge(name);
}
inline Histogram& histogram(std::string_view name) {
  return StatsRegistry::instance().histogram(name);
}

#else  // !SEPSP_OBS_ENABLED — header-only no-op mirrors of the API above.

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(std::int64_t) {}
  void add(std::int64_t) {}
  std::int64_t value() const { return 0; }
  void reset() {}
};

class Histogram {
 public:
  void record(std::uint64_t) {}
  void snapshot_into(StatsSnapshot::HistogramData*) const {}
  void reset() {}
};

class StatsRegistry {
 public:
  static StatsRegistry& instance() {
    static StatsRegistry registry;
    return registry;
  }
  Counter& counter(std::string_view) { return dummy_counter_; }
  Gauge& gauge(std::string_view) { return dummy_gauge_; }
  Histogram& histogram(std::string_view) { return dummy_histogram_; }
  StatsSnapshot snapshot() const { return {}; }
  void reset_values() {}

 private:
  Counter dummy_counter_;
  Gauge dummy_gauge_;
  Histogram dummy_histogram_;
};

inline Counter& counter(std::string_view name) {
  return StatsRegistry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return StatsRegistry::instance().gauge(name);
}
inline Histogram& histogram(std::string_view name) {
  return StatsRegistry::instance().histogram(name);
}

#endif  // SEPSP_OBS_ENABLED

}  // namespace sepsp::obs
