#include "obs/trace.hpp"

#include <algorithm>

namespace sepsp::obs {

const TraceSnapshotNode* find_trace_node(const TraceSnapshotNode& root,
                                         std::string_view name) {
  if (root.name == name) return &root;
  for (const TraceSnapshotNode& child : root.children) {
    if (const TraceSnapshotNode* hit = find_trace_node(child, name)) {
      return hit;
    }
  }
  return nullptr;
}

}  // namespace sepsp::obs

#if SEPSP_OBS_ENABLED

namespace sepsp::obs {

namespace {

using trace_detail::Arena;
using trace_detail::Node;

Node* find_or_create_child(Node* parent, std::string_view name) {
  for (const auto& child : parent->children) {
    if (child->name == name) return child.get();
  }
  auto node = std::make_unique<Node>();
  node->name = std::string(name);
  Node* raw = node.get();
  parent->children.push_back(std::move(node));
  return raw;
}

void merge_into(TraceSnapshotNode* out, const Node& node) {
  out->calls += node.calls;
  out->total_ns += node.total_ns;
  for (const auto& child : node.children) {
    TraceSnapshotNode* slot = nullptr;
    for (TraceSnapshotNode& existing : out->children) {
      if (existing.name == child->name) {
        slot = &existing;
        break;
      }
    }
    if (slot == nullptr) {
      out->children.emplace_back();
      slot = &out->children.back();
      slot->name = child->name;
    }
    merge_into(slot, *child);
  }
}

}  // namespace

TraceRegistry& TraceRegistry::instance() {
  static TraceRegistry* registry = new TraceRegistry();  // never destroyed
  return *registry;
}

Arena& TraceRegistry::local() {
  thread_local Arena* arena = [this] {
    auto owned = std::make_unique<Arena>();
    Arena* raw = owned.get();
    std::lock_guard<std::mutex> lock(mutex_);
    arenas_.push_back(std::move(owned));
    return raw;
  }();
  return *arena;
}

TraceSnapshotNode TraceRegistry::snapshot() const {
  TraceSnapshotNode merged;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& arena : arenas_) {
    std::lock_guard<std::mutex> arena_lock(arena->mutex);
    merge_into(&merged, arena->root);
  }
  // Deterministic output across thread registration orders.
  std::sort(merged.children.begin(), merged.children.end(),
            [](const TraceSnapshotNode& a, const TraceSnapshotNode& b) {
              return a.name < b.name;
            });
  return merged;
}

void TraceRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& arena : arenas_) {
    std::lock_guard<std::mutex> arena_lock(arena->mutex);
    arena->root.children.clear();
    arena->root.calls = 0;
    arena->root.total_ns = 0;
    arena->current = &arena->root;
  }
}

TraceSpan::TraceSpan(std::string_view name)
    : arena_(&TraceRegistry::instance().local()) {
  std::lock_guard<std::mutex> lock(arena_->mutex);
  parent_ = arena_->current;
  node_ = find_or_create_child(parent_, name);
  arena_->current = node_;
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  std::lock_guard<std::mutex> lock(arena_->mutex);
  node_->calls += 1;
  node_->total_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  arena_->current = parent_;
}

}  // namespace sepsp::obs

#endif  // SEPSP_OBS_ENABLED
