// RAII timing spans assembling a nested trace tree.
//
// A TraceSpan names a scope; nested spans become children of the
// enclosing span *on the same thread*. Spans are aggregated, not logged:
// every (path, name) pair owns one tree node accumulating call count and
// total wall time, so instrumenting a loop of ten thousand separator-tree
// nodes yields one "build.node" row, not ten thousand events.
//
// Threading: each thread records into its own arena (registered once,
// owned by the process-wide registry); trace_snapshot() merges all
// arenas by node name into one tree. Spans opened on pool worker threads
// therefore appear at the root of the merged tree rather than under the
// span that launched the parallel region — the phase structure within
// each thread is what the tree preserves.
#pragma once

#ifndef SEPSP_OBS_ENABLED
#define SEPSP_OBS_ENABLED 1
#endif

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sepsp::obs {

/// Plain-data aggregated trace tree (exists in both SEPSP_OBS modes).
struct TraceSnapshotNode {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::vector<TraceSnapshotNode> children;
};

/// Depth-first search for the first node named `name` (the root's name
/// is ""); nullptr when absent.
const TraceSnapshotNode* find_trace_node(const TraceSnapshotNode& root,
                                         std::string_view name);

#if SEPSP_OBS_ENABLED

namespace trace_detail {

struct Node {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::vector<std::unique_ptr<Node>> children;
};

/// One thread's private trace tree plus its cursor. The arena mutex
/// orders span open/close against cross-thread snapshots.
struct Arena {
  std::mutex mutex;
  Node root;
  Node* current = &root;
};

}  // namespace trace_detail

/// Owns every thread's arena; merges them on demand.
class TraceRegistry {
 public:
  static TraceRegistry& instance();

  /// The calling thread's arena (created and registered on first use).
  trace_detail::Arena& local();

  TraceSnapshotNode snapshot() const;

  /// Zeroes all recorded calls/timings and prunes children. Safe only
  /// while no spans are open on other threads (tests, bench reps).
  void reset();

 private:
  TraceRegistry() = default;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<trace_detail::Arena>> arenas_;
};

/// RAII timed scope; see file comment for aggregation semantics.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  trace_detail::Arena* arena_;
  trace_detail::Node* parent_;
  trace_detail::Node* node_;
  std::chrono::steady_clock::time_point start_;
};

/// Merged aggregated trace tree across all threads.
inline TraceSnapshotNode trace_snapshot() {
  return TraceRegistry::instance().snapshot();
}
inline void trace_reset() { TraceRegistry::instance().reset(); }

#else  // !SEPSP_OBS_ENABLED

class TraceSpan {
 public:
  explicit TraceSpan(std::string_view) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

inline TraceSnapshotNode trace_snapshot() { return {}; }
inline void trace_reset() {}

#endif  // SEPSP_OBS_ENABLED

}  // namespace sepsp::obs

// Opens an aggregated timing span for the rest of the enclosing scope.
#define SEPSP_OBS_CONCAT_INNER(a, b) a##b
#define SEPSP_OBS_CONCAT(a, b) SEPSP_OBS_CONCAT_INNER(a, b)
#define SEPSP_TRACE_SPAN(name) \
  ::sepsp::obs::TraceSpan SEPSP_OBS_CONCAT(sepsp_obs_span_, __LINE__)(name)
