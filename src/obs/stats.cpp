#include "obs/stats.hpp"

#if SEPSP_OBS_ENABLED

namespace sepsp::obs {

StatsRegistry& StatsRegistry::instance() {
  static StatsRegistry* registry = new StatsRegistry();  // never destroyed:
  return *registry;  // instruments may be touched by late-exiting threads
}

Counter& StatsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& StatsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& StatsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

StatsSnapshot StatsRegistry::snapshot() const {
  StatsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    StatsSnapshot::HistogramData data;
    data.name = name;
    h->snapshot_into(&data);
    snap.histograms.push_back(std::move(data));
  }
  return snap;
}

void StatsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

}  // namespace sepsp::obs

#endif  // SEPSP_OBS_ENABLED
