#include "obs/stats.hpp"

#include <algorithm>
#include <cmath>

namespace sepsp::obs {

double StatsSnapshot::quantile(const HistogramData& h, double q) {
  if (h.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested sample (1-based), then walk the buckets.
  const double rank = std::max(1.0, std::ceil(q * static_cast<double>(h.count)));
  double seen = 0.0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(h.buckets[i]);
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= rank) {
      // Bucket i holds samples with bit_width == i: bucket 0 is the
      // single value 0, bucket i covers [2^(i-1), 2^i - 1].
      if (i == 0) return 0.0;
      const double lo = std::ldexp(1.0, static_cast<int>(i) - 1);
      const double hi = std::ldexp(1.0, static_cast<int>(i)) - 1.0;
      const double frac = (rank - seen) / in_bucket;
      const double estimate = lo + (hi - lo) * frac;
      // Never report outside the recorded extremes.
      return std::clamp(estimate, static_cast<double>(h.min),
                        static_cast<double>(h.max));
    }
    seen += in_bucket;
  }
  return static_cast<double>(h.max);
}

}  // namespace sepsp::obs

#if SEPSP_OBS_ENABLED

namespace sepsp::obs {

StatsRegistry& StatsRegistry::instance() {
  static StatsRegistry* registry = new StatsRegistry();  // never destroyed:
  return *registry;  // instruments may be touched by late-exiting threads
}

Counter& StatsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& StatsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& StatsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

StatsSnapshot StatsRegistry::snapshot() const {
  StatsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    StatsSnapshot::HistogramData data;
    data.name = name;
    h->snapshot_into(&data);
    snap.histograms.push_back(std::move(data));
  }
  return snap;
}

void StatsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

}  // namespace sepsp::obs

#endif  // SEPSP_OBS_ENABLED
