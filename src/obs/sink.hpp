// Pluggable renderings of observability snapshots.
//
// Two sinks ship: a human-readable table sink built on util/table, and a
// JSON sink emitting the same flat record-array shape as the bench
// harness's JsonReport (an array of objects, each tagged with a "kind"
// discriminator) so tooling that already parses BENCH_*.json can ingest
// observability dumps unchanged.
//
// Both sinks are compiled in either SEPSP_OBS mode — they operate on the
// plain snapshot structs, which are simply empty when observability is
// compiled out.
#pragma once

#include <iosfwd>

#include "obs/stats.hpp"
#include "obs/trace.hpp"

namespace sepsp::obs {

/// Renders counters, gauges and histogram summaries as ASCII tables.
void print_stats(std::ostream& os, const StatsSnapshot& snapshot);

/// Renders the aggregated timing tree, indented by nesting depth.
void print_trace(std::ostream& os, const TraceSnapshotNode& root);

/// Convenience: snapshot both registries and print them.
void print_all(std::ostream& os);

/// Writes one JSON array of records:
///   {"kind": "counter", "name": ..., "value": ...}
///   {"kind": "gauge", "name": ..., "value": ...}
///   {"kind": "histogram", "name": ..., "count": ..., "sum": ...,
///    "min": ..., "max": ...}
///   {"kind": "span", "name": ..., "path": ..., "calls": ...,
///    "total_ns": ...}
void write_json(std::ostream& os, const StatsSnapshot& snapshot,
                const TraceSnapshotNode& trace);

}  // namespace sepsp::obs
