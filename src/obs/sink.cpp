#include "obs/sink.hpp"

#include <ostream>
#include <string>

#include "util/table.hpp"

namespace sepsp::obs {

namespace {

std::string json_escaped(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void emit_span_records(std::ostream& os, const TraceSnapshotNode& node,
                       const std::string& path, bool* first) {
  const std::string here =
      path.empty() ? node.name : path + "/" + node.name;
  if (!node.name.empty()) {
    os << (*first ? "" : ",\n") << "  {\"kind\": \"span\", \"name\": \""
       << json_escaped(node.name) << "\", \"path\": \"" << json_escaped(here)
       << "\", \"calls\": " << node.calls
       << ", \"total_ns\": " << node.total_ns << "}";
    *first = false;
  }
  for (const TraceSnapshotNode& child : node.children) {
    emit_span_records(os, child, node.name.empty() ? path : here, first);
  }
}

void add_trace_rows(Table* t, const TraceSnapshotNode& node, int depth) {
  if (!node.name.empty()) {
    t->add_row()
        .cell(std::string(static_cast<std::size_t>(depth) * 2, ' ') +
              node.name)
        .cell(static_cast<std::uint64_t>(node.calls))
        .cell(static_cast<double>(node.total_ns) * 1e-6, 3)
        .cell(node.calls == 0
                  ? 0.0
                  : static_cast<double>(node.total_ns) /
                        static_cast<double>(node.calls) * 1e-3,
              3);
  }
  for (const TraceSnapshotNode& child : node.children) {
    add_trace_rows(t, child, node.name.empty() ? depth : depth + 1);
  }
}

}  // namespace

void print_stats(std::ostream& os, const StatsSnapshot& snapshot) {
  if (snapshot.empty()) {
    os << "(no observability data"
       << (compiled_in() ? "" : "; compiled out with SEPSP_OBS=OFF")
       << ")\n";
    return;
  }
  if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
    Table t("obs — counters & gauges");
    t.set_header({"name", "value"});
    for (const auto& [name, v] : snapshot.counters) {
      t.add_row().cell(name).cell(with_commas(v));
    }
    for (const auto& [name, v] : snapshot.gauges) {
      t.add_row().cell(name).cell(std::int64_t{v});
    }
    t.print(os);
  }
  if (!snapshot.histograms.empty()) {
    Table t("obs — histograms");
    t.set_header({"name", "count", "sum", "min", "max", "mean"});
    for (const auto& h : snapshot.histograms) {
      t.add_row()
          .cell(h.name)
          .cell(with_commas(h.count))
          .cell(with_commas(h.sum))
          .cell(h.count == 0 ? std::uint64_t{0} : h.min)
          .cell(h.max)
          .cell(h.count == 0 ? 0.0
                             : static_cast<double>(h.sum) /
                                   static_cast<double>(h.count),
                1);
    }
    t.print(os);
  }
}

void print_trace(std::ostream& os, const TraceSnapshotNode& root) {
  if (root.children.empty()) {
    os << "(no trace spans recorded"
       << (compiled_in() ? "" : "; compiled out with SEPSP_OBS=OFF")
       << ")\n";
    return;
  }
  Table t("obs — timing spans");
  t.set_header({"span", "calls", "total ms", "mean us"});
  add_trace_rows(&t, root, 0);
  t.print(os);
}

void print_all(std::ostream& os) {
  print_stats(os, StatsRegistry::instance().snapshot());
  print_trace(os, trace_snapshot());
}

void write_json(std::ostream& os, const StatsSnapshot& snapshot,
                const TraceSnapshotNode& trace) {
  os << "[\n";
  bool first = true;
  for (const auto& [name, v] : snapshot.counters) {
    os << (first ? "" : ",\n") << "  {\"kind\": \"counter\", \"name\": \""
       << json_escaped(name) << "\", \"value\": " << v << "}";
    first = false;
  }
  for (const auto& [name, v] : snapshot.gauges) {
    os << (first ? "" : ",\n") << "  {\"kind\": \"gauge\", \"name\": \""
       << json_escaped(name) << "\", \"value\": " << v << "}";
    first = false;
  }
  for (const auto& h : snapshot.histograms) {
    os << (first ? "" : ",\n") << "  {\"kind\": \"histogram\", \"name\": \""
       << json_escaped(h.name) << "\", \"count\": " << h.count
       << ", \"sum\": " << h.sum
       << ", \"min\": " << (h.count == 0 ? 0 : h.min)
       << ", \"max\": " << h.max << "}";
    first = false;
  }
  emit_span_records(os, trace, "", &first);
  os << "\n]\n";
}

}  // namespace sepsp::obs
