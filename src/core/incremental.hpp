// Incremental reweighting (paper remark iv, taken seriously).
//
// The decomposition depends only on the unweighted skeleton, so weight
// changes never invalidate the tree — and they invalidate only part of
// E+: an edge (u, v) is inside G(t) exactly for the tree nodes
// containing both endpoints, a root-path-shaped set that branches only
// where both endpoints sit in a separator. This engine keeps every
// node's boundary-distance matrix from the Algorithm-4.1 build alive
// and, after a batch of weight updates, recomputes just the affected
// nodes bottom-up before splicing their shortcut lists back into E+.
//
// Cost per batch: the Algorithm-4.1 node cost summed over the affected
// subtree path — O(polylog) nodes for a few edges, against the full
// O(n + n^{3 mu}) rebuild (ablated in bench_x_incremental).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/augment.hpp"
#include "core/engine.hpp"
#include "core/query.hpp"
#include "graph/digraph.hpp"
#include "separator/decomposition.hpp"

namespace sepsp {

class IncrementalEngine {
 public:
  /// Full Algorithm-4.1 build that retains all per-node state. `g` and
  /// `tree` must outlive the engine.
  static IncrementalEngine build(const Digraph& g, const SeparatorTree& tree);

  /// Stages a new weight for the arc u -> v (all parallel arcs are set).
  /// Aborts if the arc does not exist. Cheap; takes effect at apply().
  void update_edge(Vertex u, Vertex v, double weight);

  /// Recomputes the affected part of E+ and refreshes the query engine.
  /// Returns the number of tree nodes recomputed. Each apply() that had
  /// staged changes advances epoch() by one.
  std::size_t apply();

  /// Number of applied update batches since build() (the version tag of
  /// the current weighting). Snapshots carry the epoch they froze.
  std::uint64_t epoch() const;

  /// The base graph the engine was built over (original weights; the
  /// engine's effective weights live beside it — see weight()).
  const Digraph& graph() const;

  /// Freezes the current weighting — applied updates only; aborts when
  /// updates are staged but not applied — into an immutable, shareable
  /// query engine. The snapshot copies the augmentation, so later
  /// apply() calls never disturb it: readers keep resolving against the
  /// snapshot they hold while successors are built (the epoch-swap
  /// contract of the serving runtime, src/service/). Only the Query
  /// half of `options` applies.
  struct Snapshot {
    std::uint64_t epoch = 0;
    SeparatorShortestPaths<TropicalD>::Snapshot engine;
  };
  Snapshot snapshot(
      const SeparatorShortestPaths<TropicalD>::Options& options = {}) const;

  /// Current weight of arc u -> v (staged updates included once applied).
  double weight(Vertex u, Vertex v) const;

  /// Single-source distances under the current weights.
  QueryResult<TropicalD> distances(Vertex source) const;

  const Augmentation<TropicalD>& augmentation() const;

 private:
  IncrementalEngine() = default;
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace sepsp
