// Incremental reweighting (paper remark iv, taken seriously).
//
// The decomposition depends only on the unweighted skeleton, so weight
// changes never invalidate the tree — and they invalidate only part of
// E+: an edge (u, v) is inside G(t) exactly for the tree nodes
// containing both endpoints, a root-path-shaped set that branches only
// where both endpoints sit in a separator. This engine keeps every
// node's boundary-distance matrix from the Algorithm-4.1 build alive
// and, after a batch of weight updates, recomputes just the affected
// nodes bottom-up before splicing their shortcut lists back into E+.
//
// Cost per batch: the Algorithm-4.1 node cost summed over the affected
// subtree path — O(polylog) nodes for a few edges, against the full
// O(n + n^{3 mu}) rebuild (ablated in bench_x_incremental).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/augment.hpp"
#include "core/query.hpp"
#include "graph/digraph.hpp"
#include "separator/decomposition.hpp"

namespace sepsp {

class IncrementalEngine {
 public:
  /// Full Algorithm-4.1 build that retains all per-node state. `g` and
  /// `tree` must outlive the engine.
  static IncrementalEngine build(const Digraph& g, const SeparatorTree& tree);

  /// Stages a new weight for the arc u -> v (all parallel arcs are set).
  /// Aborts if the arc does not exist. Cheap; takes effect at apply().
  void update_edge(Vertex u, Vertex v, double weight);

  /// Recomputes the affected part of E+ and refreshes the query engine.
  /// Returns the number of tree nodes recomputed.
  std::size_t apply();

  /// Current weight of arc u -> v (staged updates included once applied).
  double weight(Vertex u, Vertex v) const;

  /// Single-source distances under the current weights.
  QueryResult<TropicalD> distances(Vertex source) const;

  const Augmentation<TropicalD>& augmentation() const;

 private:
  IncrementalEngine() = default;
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace sepsp
