// Incremental reweighting (paper remark iv, taken seriously).
//
// The decomposition depends only on the unweighted skeleton, so weight
// changes never invalidate the tree — and they invalidate only part of
// E+: an edge (u, v) is inside G(t) exactly for the tree nodes
// containing both endpoints, a root-path-shaped set that branches only
// where both endpoints sit in a separator. This engine keeps every
// node's boundary-distance matrix from the Algorithm-4.1 build alive
// and, after a batch of weight updates, recomputes just the affected
// nodes bottom-up before splicing their shortcut lists back into E+.
//
// Proportionality contract: every phase of apply() is bounded by the
// dirty region, never the whole structure.
//   * Recompute: the affected tree nodes, processed per level on the
//     work-stealing pool (nodes within a level are independent; the
//     change-propagation order is serialized so results are
//     bit-identical to the serial path — see set_parallel_apply()).
//   * Re-minimize: a touched-slot worklist built from the recomputed
//     nodes' slot lists (epoch-stamped dedup) — O(touched x owners),
//     not O(|E+|).
//   * Snapshot: the query engine's bucket values live in slab-chunked
//     copy-on-write storage (util/slab.hpp), so snapshot() is a
//     structural fork — O(#slabs) pointer copies — and the refreshes of
//     the *next* apply() detach only the slabs they touch. A held
//     snapshot stays bit-identical forever.
//
// Cost per batch: the Algorithm-4.1 node cost summed over the affected
// subtree path — O(polylog) nodes for a few edges, against the full
// O(n + n^{3 mu}) rebuild (ablated in bench_x_incremental).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include <span>

#include "core/augment.hpp"
#include "core/engine.hpp"
#include "core/query.hpp"
#include "graph/digraph.hpp"
#include "separator/decomposition.hpp"

namespace sepsp {

class DistanceLabeling;  // core/labeling.hpp
class RoutingScheme;     // core/routing.hpp
class ApproxEngine;      // approx/approx.hpp

class IncrementalEngine {
 public:
  /// Full Algorithm-4.1 build that retains all per-node state. `g` and
  /// `tree` must outlive the engine.
  static IncrementalEngine build(const Digraph& g, const SeparatorTree& tree);

  /// Stages a new weight for the arc u -> v (all parallel arcs are set).
  /// Aborts if the arc does not exist. Cheap; takes effect at apply().
  /// The arc's containing leaves are memoized on first touch, so a
  /// streaming workload hitting the same arcs pays an O(#leaves) lookup
  /// per call, not a subtree walk.
  void update_edge(Vertex u, Vertex v, double weight);

  /// Recomputes the affected part of E+ and refreshes the query engine.
  /// Returns the number of tree nodes recomputed. Each apply() that had
  /// staged changes advances epoch() by one. Dirty nodes are recomputed
  /// in parallel per tree level (see set_parallel_apply()); the result
  /// is bit-identical to the serial path either way.
  std::size_t apply();

  /// Toggles the pooled per-level recompute inside apply() (default on).
  /// The serial path exists for ablation and debugging; both paths
  /// produce bit-identical matrices, shortcut values, and recomputed
  /// counts.
  void set_parallel_apply(bool enabled);
  bool parallel_apply() const;

  /// Counters of the most recent apply(): the three proportionality
  /// measures. `slabs_copied` counts value slabs detached from
  /// outstanding snapshots by this batch's refreshes (the incremental
  /// cost the next snapshot() inherits). Mirrored into the obs counters
  /// incr.nodes_recomputed / incr.slots_touched / incr.slabs_copied.
  struct ApplyStats {
    std::size_t nodes_recomputed = 0;
    std::size_t slots_touched = 0;
    std::size_t slabs_copied = 0;
  };
  ApplyStats last_apply_stats() const;

  /// Number of applied update batches since build() (the version tag of
  /// the current weighting). Snapshots carry the epoch they froze.
  std::uint64_t epoch() const;

  /// The base graph the engine was built over (original weights; the
  /// engine's effective weights live beside it — see weight()).
  const Digraph& graph() const;

  /// The separator tree the engine was built against.
  const SeparatorTree& tree() const;

  /// Effective weight per flat arc index (indexed like graph().arcs(),
  /// staged updates included immediately). The span aliases live engine
  /// state: read it only while no update_edge() call can run
  /// concurrently — e.g. under the serving runtime's update lock.
  std::span<const double> weights() const;

  /// Freezes the current weighting — applied updates only; aborts when
  /// updates are staged but not applied — into an immutable, shareable
  /// query engine. The snapshot structurally shares the live query
  /// engine's bucket values (copy-on-write slabs): taking it costs
  /// O(#slabs) pointer copies, and later apply() calls copy only the
  /// slabs they actually touch, so readers keep resolving against the
  /// snapshot they hold while successors are built (the epoch-swap
  /// contract of the serving runtime, src/service/). The snapshot keeps
  /// the engine's internal state alive; it does not copy it. Only the
  /// Query half of `options` applies.
  struct Snapshot {
    std::uint64_t epoch = 0;
    SeparatorShortestPaths<TropicalD>::Snapshot engine;
    /// Optional epoch-tagged point-to-point structures, attached by the
    /// serving runtime during successor-snapshot construction (null when
    /// point-to-point serving is off): hub labels answering st-distance
    /// by label merge and routing tables unpacking st-paths hop by hop.
    /// Both are immutable and share the snapshot's lifetime, so replies
    /// built from them stay valid across epoch swaps.
    std::shared_ptr<const DistanceLabeling> labels;
    std::shared_ptr<const RoutingScheme> routing;
    /// Optional (1 + eps)-approximate engine over the same epoch's
    /// weights, attached by the serving runtime when
    /// ServiceOptions::approx is enabled (null otherwise). Immutable
    /// and epoch-consistent with `engine`.
    std::shared_ptr<const ApproxEngine> approx;
  };
  Snapshot snapshot(
      const SeparatorShortestPaths<TropicalD>::Options& options = {}) const;

  /// Current weight of arc u -> v (staged updates included once applied).
  double weight(Vertex u, Vertex v) const;

  /// Single-source distances under the current weights.
  QueryResult<TropicalD> distances(Vertex source) const;

  const Augmentation<TropicalD>& augmentation() const;

  /// The live query engine (sharing introspection for tests/benches).
  const LeveledQuery<TropicalD>& query_engine() const;

 private:
  IncrementalEngine() = default;
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace sepsp
