// Structural and cumulative runtime statistics of one
// SeparatorShortestPaths engine — the payload of engine.stats().
//
// Structural fields (graph/augmentation/schedule shape, build cost) are
// always populated. Dynamic fields (query counters, batch lane
// occupancy, per-level scans) accumulate only when the library is built
// with SEPSP_OBS=ON; with observability compiled out they stay zero.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace sepsp {

/// Bucket sizes and cumulative scans for one separator-tree level of
/// the leveled query schedule.
struct EngineLevelStats {
  std::uint32_t level = 0;
  std::size_t same_edges = 0;  ///< level-l same-level bucket size
  std::size_t down_edges = 0;  ///< level-l descending bucket size
  std::size_t up_edges = 0;    ///< level-l ascending bucket size
  std::uint64_t edges_scanned = 0;  ///< cumulative scans (0 when OBS off)
};

struct EngineStats {
  // --- structural (always populated) ---------------------------------
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  std::size_t eplus_edges = 0;   ///< |E+|
  std::size_t bucket_edges = 0;  ///< leveled entries incl. E+ re-bucketing
  std::uint32_t height = 0;      ///< separator-tree height d_G
  std::size_t ell = 1;           ///< leaf min-weight-diameter bound
  std::size_t diameter_bound = 0;  ///< Theorem 3.1: 4 height + 2 ell + 1
  std::uint64_t build_work = 0;    ///< PRAM work charged building E+
  std::uint64_t build_depth = 0;   ///< summed kernel phases of the build
  std::uint64_t critical_depth = 0;  ///< critical-path depth of the build
  std::string simd_tier;  ///< active SIMD dispatch tier (scalar/sse/avx2/avx512)
  std::vector<EngineLevelStats> levels;

  // --- approximate mode (populated by ApproxEngine::stats(); all zero
  // --- on an exact engine) --------------------------------------------
  double approx_eps = 0.0;   ///< end-to-end relative-error budget
  double approx_unit = 0.0;  ///< rounding unit u the weights were scaled by
  std::uint64_t eplus_kept = 0;     ///< shortcuts the pruned build emitted
  std::uint64_t eplus_dropped = 0;  ///< shortcuts pruned under a witness
  /// Composed bound the build certifies: (1+eps_round)(1+delta_used)-1,
  /// always <= approx_eps.
  double certified_error = 0.0;
  /// Largest relative error actually measured against an exact oracle
  /// and fed back via ApproxEngine::note_observed_error (0 until then).
  double max_observed_error = 0.0;

  // --- dynamic (all zero when SEPSP_OBS=OFF) -------------------------
  std::uint64_t queries = 0;        ///< engine-initiated query runs
  std::uint64_t edges_scanned = 0;  ///< summed over those runs
  std::uint64_t phases = 0;         ///< summed over those runs
  std::uint64_t batch_blocks = 0;      ///< batched kernel blocks executed
  std::uint64_t batch_lanes_used = 0;  ///< seeded lanes over those blocks
  std::uint64_t batch_lane_capacity = 0;  ///< blocks * lane width
  // Unlike the query counters above, the three below are process-wide
  // (the dense kernels and the thread pool are shared by all engines):
  std::uint64_t kernel_tiles = 0;  ///< blocked-kernel tile tasks executed
  std::uint64_t kernel_cells = 0;  ///< min-plus cell updates issued
  std::uint64_t pool_steals = 0;   ///< work-stealing pool steals
  std::uint64_t simd_cells = 0;    ///< cells routed through vector kernels

  /// Mean fraction of batched-kernel lanes that carried a source
  /// (1.0 = every block full; ragged last blocks lower it).
  double lane_occupancy() const {
    return batch_lane_capacity == 0
               ? 0.0
               : static_cast<double>(batch_lanes_used) /
                     static_cast<double>(batch_lane_capacity);
  }

  /// Human-readable rendering (summary table + per-level table).
  void print(std::ostream& os) const {
    Table summary("engine stats");
    summary.set_header({"stat", "value"});
    summary.add_row().cell("n").cell(with_commas(num_vertices));
    summary.add_row().cell("m").cell(with_commas(num_edges));
    summary.add_row().cell("|E+|").cell(with_commas(eplus_edges));
    summary.add_row().cell("bucket edges").cell(with_commas(bucket_edges));
    summary.add_row().cell("height").cell(std::uint64_t{height});
    summary.add_row().cell("ell").cell(static_cast<std::uint64_t>(ell));
    summary.add_row().cell("diameter bound").cell(
        static_cast<std::uint64_t>(diameter_bound));
    summary.add_row().cell("build work").cell(with_commas(build_work));
    summary.add_row().cell("build depth").cell(with_commas(build_depth));
    summary.add_row().cell("critical depth").cell(with_commas(critical_depth));
    summary.add_row().cell("queries").cell(with_commas(queries));
    summary.add_row().cell("edges scanned").cell(with_commas(edges_scanned));
    summary.add_row().cell("phases").cell(with_commas(phases));
    summary.add_row().cell("lane occupancy").cell(lane_occupancy(), 3);
    summary.add_row().cell("kernel tiles").cell(with_commas(kernel_tiles));
    summary.add_row().cell("kernel cells").cell(with_commas(kernel_cells));
    summary.add_row().cell("pool steals").cell(with_commas(pool_steals));
    summary.add_row().cell("simd tier").cell(simd_tier);
    summary.add_row().cell("simd cells").cell(with_commas(simd_cells));
    if (approx_eps > 0.0) {
      summary.add_row().cell("approx eps").cell(approx_eps, 4);
      summary.add_row().cell("approx unit").cell(approx_unit, 6);
      summary.add_row().cell("E+ kept").cell(with_commas(eplus_kept));
      summary.add_row().cell("E+ dropped").cell(with_commas(eplus_dropped));
      summary.add_row().cell("certified error").cell(certified_error, 4);
      summary.add_row().cell("max observed error").cell(max_observed_error, 4);
    }
    summary.print(os);
    if (!levels.empty()) {
      Table per_level("engine stats — per bucket level");
      per_level.set_header({"level", "same", "down", "up", "edges scanned"});
      for (const EngineLevelStats& l : levels) {
        per_level.add_row()
            .cell(std::uint64_t{l.level})
            .cell(static_cast<std::uint64_t>(l.same_edges))
            .cell(static_cast<std::uint64_t>(l.down_edges))
            .cell(static_cast<std::uint64_t>(l.up_edges))
            .cell(with_commas(l.edges_scanned));
      }
      per_level.print(os);
    }
  }
};

}  // namespace sepsp
