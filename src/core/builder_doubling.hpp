// Algorithm 4.3: computing E+ by simultaneous path doubling.
//
// Every tree node t keeps a matrix over V_H(t) = S(t) u B(t), initialized
// from direct edges (exact leaf distances at leaves). The main loop
// repeats, for all nodes at once:
//   (1) one path-doubling (semiring squaring) step per node, and
//   (2) a weight pull from each node's children,
// for 2*ceil(log2 n) + 2*d_G iterations (Proposition 4.5 proves this
// suffices; we also stop early at a global fixpoint). Compared with
// Algorithm 4.1 this saves a factor of d_G in parallel time and pays a
// log-factor more work — the trade-off ablated in bench S4.
//
// Node tasks lease scratch arenas (builder_scratch.hpp): the squaring
// product buffer is reused across nodes and iterations, vertex lookups
// are dense-map probes, and the extraction step writes shortcuts into
// pre-computed slices of the final array (no per-node vectors).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#include "core/augment.hpp"
#include "core/builder_recursive.hpp"  // ClosureKind, detail helpers
#include "core/builder_scratch.hpp"
#include "obs/obs.hpp"
#include "pram/thread_pool.hpp"
#include "semiring/matrix.hpp"

namespace sepsp {

/// Options for the doubling builder.
struct DoublingOptions {
  /// Stop as soon as a whole iteration changes nothing (on by default;
  /// the paper's fixed 2 ceil(log n) + 2 d_G count is an upper bound).
  bool early_exit = true;
  /// Extra iterations beyond the proven bound (testing hook).
  std::size_t extra_iterations = 0;

  bool operator==(const DoublingOptions&) const = default;
};

/// Builds E+ with Algorithm 4.3. The tree must decompose g's skeleton.
template <Semiring S>
Augmentation<S> build_augmentation_doubling(const Digraph& g,
                                            const SeparatorTree& tree,
                                            const DoublingOptions& options = {}) {
  using detail::kNpos;

  SEPSP_TRACE_SPAN("build.doubling");
  const pram::CostScope scope;
  Augmentation<S> aug;
  aug.levels = compute_levels(tree);
  aug.height = tree.height();
  aug.ell = leaf_diameter_bound(tree);

  const std::size_t num_nodes = tree.num_nodes();

  detail::ScratchPool<detail::DoublingScratch<S>> scratch_pool([&] {
    return std::make_unique<detail::DoublingScratch<S>>(g.num_vertices());
  });

  // V_H(t) per node and index maps child-VH-index -> parent-VH-index.
  std::vector<std::vector<Vertex>> vh(num_nodes);
  std::vector<Matrix<S>> mat(num_nodes);
  struct ChildMap {
    std::size_t child_id = 0;
    std::vector<std::size_t> to_parent;  // kNpos when absent from parent VH
  };
  std::vector<std::array<ChildMap, 2>> child_maps(num_nodes);

  pram::ThreadPool::global().parallel_for(0, num_nodes, [&](std::size_t id) {
    const DecompNode& t = tree.node(id);
    std::vector<Vertex> verts;
    verts.reserve(t.separator.size() + t.boundary.size());
    std::set_union(t.separator.begin(), t.separator.end(), t.boundary.begin(),
                   t.boundary.end(), std::back_inserter(verts));
    vh[id] = std::move(verts);
  });

  // Step i: initialization.
  pram::ThreadPool::global().parallel_for(0, num_nodes, [&](std::size_t id) {
    auto scratch = scratch_pool.acquire();
    const DecompNode& t = tree.node(id);
    const std::span<const Vertex> verts = vh[id];
    scratch->map0.bind(verts);
    if (t.is_leaf()) {
      // Exact distances inside the leaf, restricted to V_H x V_H.
      const std::span<const Vertex> all = t.vertices;
      scratch->map1.bind(all);
      Matrix<S>& local = scratch->local;
      local.reset(all.size());
      for (std::size_t i = 0; i < all.size(); ++i) {
        local.at(i, i) = S::one();
        for (const Arc& a : g.out(all[i])) {
          const std::size_t j = scratch->map1.find(a.to);
          if (j != kNpos) local.merge(i, j, S::from_weight(a.weight));
        }
      }
      floyd_warshall(local);
      Matrix<S> m(verts.size());
      for (std::size_t i = 0; i < verts.size(); ++i) {
        const std::size_t ii = scratch->map1.find(verts[i]);
        for (std::size_t j = 0; j < verts.size(); ++j) {
          m.at(i, j) = local.at(ii, scratch->map1.find(verts[j]));
        }
      }
      mat[id] = std::move(m);
      return;
    }
    // Internal: direct base arcs between V_H vertices (V_H(t) is a
    // subset of V(t), so such arcs lie in the induced subgraph G(t)).
    Matrix<S> m(verts.size());
    for (std::size_t i = 0; i < verts.size(); ++i) {
      m.at(i, i) = S::one();
      for (const Arc& a : g.out(verts[i])) {
        const std::size_t j = scratch->map0.find(a.to);
        if (j != kNpos) m.merge(i, j, S::from_weight(a.weight));
      }
    }
    mat[id] = std::move(m);
    for (int c = 0; c < 2; ++c) {
      auto& cm = child_maps[id][c];
      cm.child_id = static_cast<std::size_t>(t.child[c]);
      const std::span<const Vertex> cv = vh[cm.child_id];
      cm.to_parent.resize(cv.size());
      for (std::size_t i = 0; i < cv.size(); ++i) {
        cm.to_parent[i] = scratch->map0.find(cv[i]);
      }
    }
  });

  // Step ii: the doubling loop.
  const std::size_t n = g.num_vertices();
  const std::size_t log_n = n < 2 ? 1 : std::bit_width(n - 1);
  const std::size_t max_iterations =
      2 * log_n + 2 * aug.height + options.extra_iterations;
  std::vector<std::uint8_t> node_changed(num_nodes, 0);
  std::size_t iterations_run = 0;
  std::uint64_t per_iter_depth = 0;
  for (const auto& verts : vh) {
    const std::size_t k = verts.size();
    per_iter_depth = std::max<std::uint64_t>(
        per_iter_depth, (k < 2 ? 1 : std::bit_width(k - 1)) + 2);
  }

  // Pulls write the parent matrix while reading the child's; running all
  // pulls at once would race (a node is read by its parent while pulled
  // into from its own children). Splitting by level parity synchronizes:
  // within one phase no node is both reader and writee.
  std::array<std::vector<std::size_t>, 2> by_parity;
  for (std::size_t id = 0; id < num_nodes; ++id) {
    if (!tree.node(id).is_leaf()) {
      by_parity[tree.node(id).level % 2].push_back(id);
    }
  }

  // A node whose matrix is idempotent-stable (its last squaring changed
  // nothing and no pull has touched it since) can skip squaring until a
  // pull dirties it again — a large practical saving in late iterations
  // once deep subtrees have converged.
  std::vector<std::uint8_t> dirty(num_nodes, 1);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    SEPSP_TRACE_SPAN("build.doubling_iter");  // merged: calls = iterations
    ++iterations_run;
    // (1) one squaring step everywhere (dirty nodes only).
    pram::ThreadPool::global().parallel_for(0, num_nodes, [&](std::size_t id) {
      if (!dirty[id]) {
        node_changed[id] = 0;
        return;
      }
      auto scratch = scratch_pool.acquire();
      node_changed[id] = square_step(mat[id], scratch->square) ? 1 : 0;
      dirty[id] = node_changed[id];
    });
    // (2) pull weights from children.
    auto pull_into = [&](std::size_t id) {
      Matrix<S>& m = mat[id];
      std::uint64_t pulled = 0;
      for (int c = 0; c < 2; ++c) {
        const auto& cm = child_maps[id][c];
        const Matrix<S>& child = mat[cm.child_id];
        const std::size_t ck = cm.to_parent.size();
        pulled += ck * ck;
        for (std::size_t i = 0; i < ck; ++i) {
          const std::size_t pi = cm.to_parent[i];
          if (pi == kNpos) continue;
          for (std::size_t j = 0; j < ck; ++j) {
            const std::size_t pj = cm.to_parent[j];
            if (pj == kNpos) continue;
            if (S::improves(m.at(pi, pj), child.at(i, j))) {
              m.at(pi, pj) = child.at(i, j);
              node_changed[id] = 1;
              dirty[id] = 1;
            }
          }
        }
      }
      pram::CostMeter::charge_work(pulled);
    };
    for (const auto& phase : by_parity) {
      pram::ThreadPool::global().parallel_for(
          0, phase.size(), [&](std::size_t k) { pull_into(phase[k]); });
    }
    bool any_changed = false;
    for (std::size_t id = 0; id < num_nodes; ++id) {
      any_changed = any_changed || node_changed[id];
    }
    if (options.early_exit && !any_changed) break;
  }
  aug.critical_depth = iterations_run * per_iter_depth;

  // Step iii: extract S x S and B x B entries into pre-computed slices
  // of the final array; dedup keeps the best.
  std::vector<std::size_t> offsets(num_nodes);
  for (std::size_t id = 0; id < num_nodes; ++id) {
    const DecompNode& t = tree.node(id);
    offsets[id] = detail::pair_count(t.separator.size()) +
                  detail::pair_count(t.boundary.size());
  }
  aug.shortcuts.resize(detail::offsets_from_counts(offsets));
  pram::ThreadPool::global().parallel_for(0, num_nodes, [&](std::size_t id) {
    auto scratch = scratch_pool.acquire();
    const DecompNode& t = tree.node(id);
    const std::span<const Vertex> verts = vh[id];
    const Matrix<S>& m = mat[id];
    scratch->map0.bind(verts);
    Shortcut<S>* out = aug.shortcuts.data() + offsets[id];
    auto emit = [&](std::span<const Vertex> group) {
      for (const Vertex u : group) {
        const std::size_t i = scratch->map0.find(u);
        for (const Vertex v : group) {
          if (u == v) continue;
          *out++ = {u, v, m.at(i, scratch->map0.find(v))};
        }
      }
    };
    emit(t.separator);
    emit(t.boundary);
    SEPSP_DCHECK(out == aug.shortcuts.data() + offsets[id + 1]);
  });

  dedup_shortcuts<S>(aug.shortcuts);
  aug.build_cost = scope.cost();
  SEPSP_OBS_ONLY(obs::counter("build.shortcuts").add(aug.shortcuts.size());
                 obs::counter("build.doubling_iterations").add(iterations_run);)
  return aug;
}

}  // namespace sepsp
