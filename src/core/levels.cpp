#include "core/levels.hpp"

#include "util/check.hpp"

namespace sepsp {

LevelAssignment compute_levels(const SeparatorTree& tree) {
  LevelAssignment out;
  const std::size_t n = tree.num_graph_vertices();
  out.level.assign(n, LevelAssignment::kUndefined);
  out.node.assign(n, -1);
  out.height = tree.height();

  // level(v): minimum tree level among nodes whose separator holds v.
  for (std::size_t id = 0; id < tree.num_nodes(); ++id) {
    const DecompNode& t = tree.node(id);
    for (const Vertex v : t.separator) {
      if (t.level < out.level[v]) {
        out.level[v] = t.level;
        out.node[v] = static_cast<std::int32_t>(id);
      }
    }
  }
  // Vertices that appear in no separator live in exactly one leaf (only
  // separator membership duplicates a vertex into both children).
  for (std::size_t id = 0; id < tree.num_nodes(); ++id) {
    const DecompNode& t = tree.node(id);
    if (!t.is_leaf()) continue;
    for (const Vertex v : t.vertices) {
      if (out.level[v] == LevelAssignment::kUndefined && out.node[v] < 0) {
        out.node[v] = static_cast<std::int32_t>(id);
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    SEPSP_CHECK_MSG(out.node[v] >= 0, "vertex missing from every leaf");
  }
  return out;
}

}  // namespace sepsp
