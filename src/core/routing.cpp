#include "core/routing.hpp"

#include <algorithm>
#include <limits>

#include "core/labeling.hpp"  // detail::designate_leaves / hub chunking
#include "core/path_tree.hpp"
#include "pram/thread_pool.hpp"
#include "semiring/matrix.hpp"
#include "util/vertex_index.hpp"  // detail::index_of

namespace sepsp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

struct RoutingScheme::State {
  struct Entry {
    Vertex hub;
    double to_hub;        // d(v, hub)
    double from_hub;      // d(hub, v)
    Vertex toward_hub;    // first arc of an optimal v -> hub path
    Vertex hub_out;       // first arc after hub of an optimal hub -> v path
  };
  struct LeafTable {
    std::vector<Vertex> verts;
    std::vector<double> dist;   // |verts|^2 row-major
    std::vector<Vertex> next;   // Floyd–Warshall next-hop matrix
  };
  std::size_t n = 0;
  std::vector<std::vector<Entry>> labels;
  std::vector<std::int32_t> leaf_of;
  std::vector<LeafTable> leaf_tables;
  std::vector<std::int32_t> table_of_leaf;

  /// Best (value, entry-pair) over common hubs and the same-leaf table.
  /// Returns the chosen next hop directly.
  double best(Vertex u, Vertex v, Vertex* hop) const;
};

RoutingScheme RoutingScheme::build(const Digraph& g, const SeparatorTree& tree,
                                   const Options& options) {
  const Options resolved = options.validated();
  const Digraph reversed = g.transpose();
  const auto fwd = SeparatorShortestPaths<TropicalD>::build(g, tree, resolved);
  const auto bwd =
      SeparatorShortestPaths<TropicalD>::build(reversed, tree, resolved);
  return build_from_engines(g, tree, fwd, bwd, reversed);
}

RoutingScheme RoutingScheme::build_from_engines(
    const Digraph& g, const SeparatorTree& tree,
    const SeparatorShortestPaths<TropicalD>& fwd,
    const SeparatorShortestPaths<TropicalD>& bwd, const Digraph& reversed,
    std::span<const double> arc_weights,
    std::span<const double> reversed_arc_weights) {
  using detail::index_of;
  SEPSP_CHECK(reversed.num_vertices() == g.num_vertices() &&
              reversed.num_edges() == g.num_edges());
  SEPSP_CHECK(arc_weights.empty() || arc_weights.size() == g.num_edges());
  SEPSP_CHECK(reversed_arc_weights.empty() ||
              reversed_arc_weights.size() == g.num_edges());
  auto state = std::make_shared<State>();
  State& s = *state;
  s.n = g.num_vertices();
  s.labels.resize(s.n);

  detail::DesignatedMap map = detail::designate_leaves(tree, s.n);
  s.leaf_of = std::move(map.leaf_of);
  const std::vector<std::vector<Vertex>>& designated = map.designated;

  // Level-major, like the labeling build: one chunked forward+backward
  // source batch per separator level, then pooled per-node tasks that
  // extract the two shortest-path trees per hub and scatter the hop
  // fields. Nodes of one level have disjoint designated sets, so the
  // scatter is race-free.
  constexpr std::size_t kMaxChunk = 256;
  pram::ThreadPool& pool = pram::ThreadPool::global();
  const auto by_level = tree.ids_by_level();
  for (const std::vector<std::size_t>& ids : by_level) {
    detail::for_each_hub_chunk(
        tree, ids, kMaxChunk,
        [&](std::span<const Vertex> sources,
            std::span<const detail::HubSegment> segments) {
          const auto from_batch = fwd.distances_batch(sources);
          const auto to_batch = bwd.distances_batch(sources);
          pool.parallel_for(
              0, segments.size(),
              [&](std::size_t si) {
                const detail::HubSegment& seg = segments[si];
                for (std::size_t k = 0; k < seg.count; ++k) {
                  const std::size_t b = seg.offset + k;
                  const Vertex h = sources[b];
                  const QueryResult<TropicalD>& from_h = from_batch[b];
                  const QueryResult<TropicalD>& to_h = to_batch[b];
                  SEPSP_CHECK_MSG(
                      !from_h.negative_cycle && !to_h.negative_cycle,
                      "routing needs negative-cycle-free input");
                  // Shortest-path trees give the hop fields:
                  //  * in g rooted at h: parents point backward along
                  //    h -> v, so the first arc after h toward v is found
                  //    by lifting v to depth 1;
                  //  * in gT rooted at h: the gT-parent of v is the
                  //    g-successor of v on an optimal v -> h path, i.e.
                  //    v's toward-hub hop.
                  const PathTree out_tree =
                      extract_path_tree(g, h, from_h.dist, arc_weights);
                  const PathTree in_tree = extract_path_tree(
                      reversed, h, to_h.dist, reversed_arc_weights);
                  // first_from_h[v]: child of h on the tree path to v
                  // (O(n) memoized lift).
                  std::vector<Vertex> first_from_h(s.n, kInvalidVertex);
                  for (const Vertex v : designated[seg.node]) {
                    Vertex cursor = v;
                    std::vector<Vertex> chain;
                    while (cursor != h && cursor != kInvalidVertex &&
                           first_from_h[cursor] == kInvalidVertex) {
                      chain.push_back(cursor);
                      const Vertex p = out_tree.parent[cursor];
                      if (p == h) {
                        first_from_h[cursor] = cursor;
                        break;
                      }
                      cursor = p;
                    }
                    const Vertex resolved =
                        cursor == kInvalidVertex || cursor == h
                            ? kInvalidVertex
                            : first_from_h[cursor];
                    for (const Vertex c : chain) {
                      if (first_from_h[c] == kInvalidVertex) {
                        first_from_h[c] = resolved;
                      }
                    }
                  }
                  for (const Vertex v : designated[seg.node]) {
                    s.labels[v].push_back({h, to_h.dist[v], from_h.dist[v],
                                           in_tree.parent[v],
                                           first_from_h[v]});
                  }
                }
              },
              /*grain=*/1);
        });
  }
  pool.parallel_for(
      0, s.n,
      [&](std::size_t v) {
        auto& label = s.labels[v];
        std::sort(label.begin(), label.end(),
                  [](const State::Entry& a, const State::Entry& b) {
                    return a.hub < b.hub;
                  });
        label.erase(
            std::unique(label.begin(), label.end(),
                        [](const State::Entry& a, const State::Entry& b) {
                          return a.hub == b.hub;
                        }),
            label.end());
      },
      /*grain=*/64);

  // Per-leaf tables with Floyd–Warshall next-hop reconstruction, one
  // independent pool task per used leaf.
  s.table_of_leaf.assign(tree.num_nodes(), -1);
  std::vector<std::size_t> used_leaves;
  for (const std::size_t id : tree.leaf_ids()) {
    bool used = false;
    for (const Vertex v : tree.node(id).vertices) {
      used = used || s.leaf_of[v] == static_cast<std::int32_t>(id);
    }
    if (!used) continue;
    s.table_of_leaf[id] = static_cast<std::int32_t>(used_leaves.size());
    used_leaves.push_back(id);
  }
  s.leaf_tables.resize(used_leaves.size());
  const Arc* arc_base = g.arcs().data();
  pool.parallel_for(
      0, used_leaves.size(),
      [&](std::size_t li) {
        const std::size_t id = used_leaves[li];
        const std::span<const Vertex> verts = tree.node(id).vertices;
        const std::size_t k = verts.size();
        State::LeafTable& table = s.leaf_tables[li];
        table.verts.assign(verts.begin(), verts.end());
        table.dist.assign(k * k, kInf);
        table.next.assign(k * k, kInvalidVertex);
        for (std::size_t i = 0; i < k; ++i) {
          table.dist[i * k + i] = 0;
          for (const Arc& a : g.out(verts[i])) {
            const std::size_t j = index_of(verts, a.to);
            if (j == detail::kNpos) continue;
            const double w =
                arc_weights.empty()
                    ? a.weight
                    : arc_weights[static_cast<std::size_t>(&a - arc_base)];
            if (w < table.dist[i * k + j]) {
              table.dist[i * k + j] = w;
              table.next[i * k + j] = verts[j];
            }
          }
        }
        for (std::size_t mid = 0; mid < k; ++mid) {
          for (std::size_t i = 0; i < k; ++i) {
            if (table.dist[i * k + mid] == kInf) continue;
            for (std::size_t j = 0; j < k; ++j) {
              const double via =
                  table.dist[i * k + mid] + table.dist[mid * k + j];
              if (via < table.dist[i * k + j]) {
                table.dist[i * k + j] = via;
                table.next[i * k + j] = table.next[i * k + mid];
              }
            }
          }
        }
      },
      /*grain=*/1);

  RoutingScheme out;
  out.state_ = std::move(state);
  return out;
}

double RoutingScheme::State::best(Vertex u, Vertex v, Vertex* hop) const {
  double best_value = kInf;
  Vertex best_hop = kInvalidVertex;
  const auto& lu = labels[u];
  const auto& lv = labels[v];
  std::size_t i = 0, j = 0;
  while (i < lu.size() && j < lv.size()) {
    if (lu[i].hub < lv[j].hub) {
      ++i;
    } else if (lu[i].hub > lv[j].hub) {
      ++j;
    } else {
      const double via = lu[i].to_hub + lv[j].from_hub;
      if (via < best_value) {
        best_value = via;
        // Standing at the hub: leave along the hub's out-arc toward v;
        // otherwise move toward the hub.
        best_hop = (u == lu[i].hub) ? lv[j].hub_out : lu[i].toward_hub;
      }
      ++i;
      ++j;
    }
  }
  if (leaf_of[u] == leaf_of[v]) {
    const auto& table = leaf_tables[static_cast<std::size_t>(
        table_of_leaf[static_cast<std::size_t>(leaf_of[u])])];
    const auto iu = static_cast<std::size_t>(
        std::lower_bound(table.verts.begin(), table.verts.end(), u) -
        table.verts.begin());
    const auto iv = static_cast<std::size_t>(
        std::lower_bound(table.verts.begin(), table.verts.end(), v) -
        table.verts.begin());
    const double local = table.dist[iu * table.verts.size() + iv];
    if (local < best_value) {
      best_value = local;
      best_hop = table.next[iu * table.verts.size() + iv];
    }
  }
  if (hop != nullptr) *hop = best_hop;
  return best_value;
}

Vertex RoutingScheme::next_hop(Vertex u, Vertex v) const {
  SEPSP_CHECK(u < state_->n && v < state_->n);
  if (u == v) return kInvalidVertex;
  Vertex hop = kInvalidVertex;
  const double d = state_->best(u, v, &hop);
  return d == kInf ? kInvalidVertex : hop;
}

double RoutingScheme::distance(Vertex u, Vertex v) const {
  SEPSP_CHECK(u < state_->n && v < state_->n);
  if (u == v) return 0.0;
  return state_->best(u, v, nullptr);
}

std::vector<Vertex> RoutingScheme::route(Vertex u, Vertex v) const {
  std::vector<Vertex> path{u};
  if (u == v) return path;
  Vertex cursor = u;
  while (cursor != v) {
    const Vertex hop = next_hop(cursor, v);
    if (hop == kInvalidVertex) return {};
    path.push_back(hop);
    cursor = hop;
    SEPSP_CHECK_MSG(path.size() <= state_->n + 1,
                    "routing walk exceeded n hops (zero-weight cycle?)");
  }
  return path;
}

std::size_t RoutingScheme::total_entries() const {
  std::size_t total = 0;
  for (const auto& label : state_->labels) total += label.size();
  return total;
}

}  // namespace sepsp
