// Algorithm 4.1: computing E+ leaves-up.
//
// Nodes are processed level by level from the deepest level to the root;
// within a level all nodes are processed in parallel. A node t keeps a
// |B(t)| x |B(t)| matrix of exact distances in G(t) between its boundary
// vertices; the parent combines its two children's matrices:
//
//   i.   H_S: complete graph on S(t), entry = best child distance
//   ii.  APSP closure of H_S                      -> S x S shortcuts
//   iii. H: B->S and S->B entries from children
//   iv.  3-limited composition  B->S (x) H_S* (x) S->B
//   v.   boundary matrix = min(3-limited, direct child distance)
//                                                 -> B x B shortcuts
//
// Work per node: O(|S|^3 log|S| + |B|^2 |S| + |B| |S|^2) with the
// polylog-depth squaring closure (the paper's Table-1 bound); the
// sequential-k Floyd–Warshall closure saves the log factor of work at
// depth |S| (ablated in bench S4).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <span>

#include "core/augment.hpp"
#include "obs/obs.hpp"
#include "pram/thread_pool.hpp"
#include "semiring/matrix.hpp"

namespace sepsp {

/// APSP kernel used inside the builders.
enum class ClosureKind {
  kSquaring,       ///< repeated squaring: polylog depth, +log work
  kFloydWarshall,  ///< sequential-in-k: minimal work, linear depth
};

namespace detail {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Index of v in a sorted vertex list, or kNpos.
inline std::size_t index_of(std::span<const Vertex> sorted, Vertex v) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), v);
  if (it == sorted.end() || *it != v) return kNpos;
  return static_cast<std::size_t>(it - sorted.begin());
}

template <Semiring S>
void run_closure(Matrix<S>& m, ClosureKind kind) {
  if (kind == ClosureKind::kSquaring) {
    m = closure_by_squaring(std::move(m));
  } else {
    floyd_warshall(m);
  }
}

}  // namespace detail

/// Builds E+ with Algorithm 4.1. The tree must decompose g's skeleton.
template <Semiring S>
Augmentation<S> build_augmentation_recursive(
    const Digraph& g, const SeparatorTree& tree,
    ClosureKind closure = ClosureKind::kSquaring) {
  using detail::index_of;
  using detail::kNpos;

  SEPSP_TRACE_SPAN("build.recursive");
  const pram::CostScope scope;
  Augmentation<S> aug;
  aug.levels = compute_levels(tree);
  aug.height = tree.height();
  aug.ell = leaf_diameter_bound(tree);

  const std::size_t num_nodes = tree.num_nodes();
  // Per-node boundary distance matrix (row/col i = i-th boundary vertex)
  // and per-node extracted shortcut edges.
  std::vector<Matrix<S>> bnd(num_nodes);
  std::vector<std::vector<Shortcut<S>>> per_node_edges(num_nodes);

  // --- leaves: exact APSP on the (constant-size) induced subgraph -------
  auto process_leaf = [&](std::size_t id) {
    SEPSP_TRACE_SPAN("build.leaf");  // merged by name: calls = leaf count
    const DecompNode& t = tree.node(id);
    const std::span<const Vertex> verts = t.vertices;
    Matrix<S> local(verts.size());
    for (std::size_t i = 0; i < verts.size(); ++i) {
      local.at(i, i) = S::one();
      for (const Arc& a : g.out(verts[i])) {
        const std::size_t j = index_of(verts, a.to);
        if (j != kNpos) local.merge(i, j, S::from_weight(a.weight));
      }
    }
    floyd_warshall(local);  // leaves are O(1)-sized; any kernel is fine
    const std::span<const Vertex> b = t.boundary;
    Matrix<S> bm(b.size());
    for (std::size_t p = 0; p < b.size(); ++p) {
      const std::size_t ip = index_of(verts, b[p]);
      for (std::size_t q = 0; q < b.size(); ++q) {
        bm.at(p, q) = local.at(ip, index_of(verts, b[q]));
        if (p != q) {
          per_node_edges[id].push_back({b[p], b[q], bm.at(p, q)});
        }
      }
    }
    bnd[id] = std::move(bm);
  };

  // --- internal nodes: steps i-v of Algorithm 4.1 -----------------------
  auto process_internal = [&](std::size_t id) {
    SEPSP_TRACE_SPAN("build.internal");  // merged: calls = internal nodes
    const DecompNode& t = tree.node(id);
    const std::span<const Vertex> st = t.separator;
    const std::span<const Vertex> bt = t.boundary;
    const std::array<std::size_t, 2> kids = {
        static_cast<std::size_t>(t.child[0]),
        static_cast<std::size_t>(t.child[1])};

    // Index of each separator / boundary vertex inside each child's
    // boundary list (kNpos when the vertex is not in that child).
    std::array<std::vector<std::size_t>, 2> s_in_child;
    std::array<std::vector<std::size_t>, 2> b_in_child;
    for (int c = 0; c < 2; ++c) {
      const std::span<const Vertex> cb = tree.node(kids[c]).boundary;
      s_in_child[c].resize(st.size());
      for (std::size_t i = 0; i < st.size(); ++i) {
        s_in_child[c][i] = index_of(cb, st[i]);
        SEPSP_CHECK_MSG(s_in_child[c][i] != kNpos,
                        "separator vertex missing from child boundary");
      }
      b_in_child[c].resize(bt.size());
      for (std::size_t p = 0; p < bt.size(); ++p) {
        b_in_child[c][p] = index_of(cb, bt[p]);
      }
    }

    // Step i: H_S from the children's boundary distances.
    Matrix<S> hs(st.size());
    for (int c = 0; c < 2; ++c) {
      const Matrix<S>& cm = bnd[kids[c]];
      for (std::size_t i = 0; i < st.size(); ++i) {
        for (std::size_t j = 0; j < st.size(); ++j) {
          hs.merge(i, j, cm.at(s_in_child[c][i], s_in_child[c][j]));
        }
      }
    }
    // Step ii: closure -> exact S x S distances in G(t).
    detail::run_closure(hs, closure);
    for (std::size_t i = 0; i < st.size(); ++i) {
      for (std::size_t j = 0; j < st.size(); ++j) {
        if (i != j) per_node_edges[id].push_back({st[i], st[j], hs.at(i, j)});
      }
    }

    if (!bt.empty()) {
      // Step iii: B->S and S->B entries of H from the children.
      Matrix<S> b_to_s(bt.size(), st.size());
      Matrix<S> s_to_b(st.size(), bt.size());
      for (int c = 0; c < 2; ++c) {
        const Matrix<S>& cm = bnd[kids[c]];
        for (std::size_t p = 0; p < bt.size(); ++p) {
          const std::size_t bp = b_in_child[c][p];
          if (bp == kNpos) continue;
          for (std::size_t q = 0; q < st.size(); ++q) {
            b_to_s.merge(p, q, cm.at(bp, s_in_child[c][q]));
            s_to_b.merge(q, p, cm.at(s_in_child[c][q], bp));
          }
        }
      }
      // Step iv: 3-limited paths B -> S -> S -> B (H_S* includes the
      // diagonal, so 1- and 2-hop crossings are covered too).
      const Matrix<S> through = multiply(multiply(b_to_s, hs), s_to_b);
      // Step v: best of the separator crossing and staying in one child.
      Matrix<S> bm(bt.size());
      for (std::size_t p = 0; p < bt.size(); ++p) bm.at(p, p) = S::one();
      for (std::size_t p = 0; p < bt.size(); ++p) {
        for (std::size_t q = 0; q < bt.size(); ++q) {
          bm.merge(p, q, through.at(p, q));
        }
      }
      for (int c = 0; c < 2; ++c) {
        const Matrix<S>& cm = bnd[kids[c]];
        for (std::size_t p = 0; p < bt.size(); ++p) {
          const std::size_t bp = b_in_child[c][p];
          if (bp == kNpos) continue;
          for (std::size_t q = 0; q < bt.size(); ++q) {
            const std::size_t bq = b_in_child[c][q];
            if (bq == kNpos) continue;
            bm.merge(p, q, cm.at(bp, bq));
          }
        }
      }
      for (std::size_t p = 0; p < bt.size(); ++p) {
        for (std::size_t q = 0; q < bt.size(); ++q) {
          if (p != q) {
            per_node_edges[id].push_back({bt[p], bt[q], bm.at(p, q)});
          }
        }
      }
      bnd[id] = std::move(bm);
    } else {
      bnd[id] = Matrix<S>(0);
    }
    // The children's matrices are no longer needed.
    bnd[kids[0]].clear();
    bnd[kids[1]].clear();
  };

  const auto by_level = tree.ids_by_level();
  for (std::size_t lvl = by_level.size(); lvl-- > 0;) {
    SEPSP_TRACE_SPAN("build.level");  // merged: calls = processed levels
    const auto& ids = by_level[lvl];
    pram::ThreadPool::global().parallel_for(0, ids.size(), [&](std::size_t k) {
      const std::size_t id = ids[k];
      if (tree.node(id).is_leaf()) {
        process_leaf(id);
      } else {
        process_internal(id);
      }
    });
    // Critical path of this level = the largest node's kernel depth:
    // closure on |S| plus two rectangular products, or a leaf's FW.
    std::uint64_t level_depth = 1;
    for (const std::size_t id : ids) {
      const DecompNode& t = tree.node(id);
      std::uint64_t d = 0;
      if (t.is_leaf()) {
        d = t.vertices.size();  // leaf Floyd–Warshall
      } else {
        const std::uint64_t s = t.separator.size();
        const std::uint64_t log_s = s < 2 ? 1 : std::bit_width(s - 1);
        d = closure == ClosureKind::kSquaring ? log_s * (log_s + 2)
                                              : s;
        d += 2 * (log_s + 1);  // the two 3-limited products
      }
      level_depth = std::max(level_depth, d);
    }
    aug.critical_depth += level_depth;
  }

  std::size_t total = 0;
  for (const auto& edges : per_node_edges) total += edges.size();
  aug.shortcuts.reserve(total);
  for (auto& edges : per_node_edges) {
    aug.shortcuts.insert(aug.shortcuts.end(), edges.begin(), edges.end());
  }
  dedup_shortcuts<S>(aug.shortcuts);
  aug.build_cost = scope.cost();
  SEPSP_OBS_ONLY(obs::counter("build.shortcuts").add(aug.shortcuts.size());
                 obs::histogram("build.node_count").record(num_nodes);)
  return aug;
}

}  // namespace sepsp
