// Algorithm 4.1: computing E+ leaves-up.
//
// Nodes are processed level by level from the deepest level to the root;
// within a level all nodes are processed in parallel. A node t keeps a
// |B(t)| x |B(t)| matrix of exact distances in G(t) between its boundary
// vertices; the parent combines its two children's matrices:
//
//   i.   H_S: complete graph on S(t), entry = best child distance
//   ii.  APSP closure of H_S                      -> S x S shortcuts
//   iii. H: B->S and S->B entries from children
//   iv.  3-limited composition  B->S (x) H_S* (x) S->B
//   v.   boundary matrix = min(3-limited, direct child distance)
//                                                 -> B x B shortcuts
//
// Work per node: O(|S|^3 log|S| + |B|^2 |S| + |B| |S|^2) with the
// polylog-depth squaring closure (the paper's Table-1 bound); the
// sequential-k Floyd–Warshall closure saves the log factor of work at
// depth |S| (ablated in bench S4).
//
// Node tasks lease a scratch arena (builder_scratch.hpp): intermediate
// matrices reuse storage across nodes, vertex->index lookups are O(1)
// dense-map probes instead of per-arc binary searches, and shortcut
// edges are written straight into their pre-computed slice of the final
// array (no per-node vectors, no concat pass). Only the cross-level
// boundary matrices (`bnd`) own long-lived storage.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <span>

#include "core/augment.hpp"
#include "core/builder_scratch.hpp"
#include "obs/obs.hpp"
#include "pram/thread_pool.hpp"
#include "semiring/matrix.hpp"
#include "util/vertex_index.hpp"  // detail::index_of / kNpos

namespace sepsp {

/// APSP kernel used inside the builders.
enum class ClosureKind {
  kSquaring,       ///< repeated squaring: polylog depth, +log work
  kFloydWarshall,  ///< sequential-in-k: minimal work, linear depth
};

namespace detail {

template <Semiring S>
void run_closure(Matrix<S>& m, ClosureKind kind) {
  if (kind == ClosureKind::kSquaring) {
    m = closure_by_squaring(std::move(m));
  } else {
    floyd_warshall(m);
  }
}

template <Semiring S>
void run_closure(Matrix<S>& m, ClosureKind kind, Matrix<S>& scratch) {
  if (kind == ClosureKind::kSquaring) {
    closure_by_squaring_inplace(m, scratch);
  } else {
    floyd_warshall(m);
  }
}

/// Turns per-node shortcut counts into exclusive-prefix-sum offsets and
/// returns the total; node i then owns slice [offsets[i], offsets[i+1]).
inline std::size_t offsets_from_counts(std::vector<std::size_t>& counts) {
  std::size_t total = 0;
  for (auto& c : counts) {
    const std::size_t here = c;
    c = total;
    total += here;
  }
  counts.push_back(total);
  return total;
}

/// Shortcuts a group of k mutually-connected vertices emits: all ordered
/// pairs minus the diagonal.
inline std::size_t pair_count(std::size_t k) { return k * (k - 1); }

}  // namespace detail

/// Builds E+ with Algorithm 4.1. The tree must decompose g's skeleton.
template <Semiring S>
Augmentation<S> build_augmentation_recursive(
    const Digraph& g, const SeparatorTree& tree,
    ClosureKind closure = ClosureKind::kSquaring) {
  using detail::kNpos;

  SEPSP_TRACE_SPAN("build.recursive");
  const pram::CostScope scope;
  Augmentation<S> aug;
  aug.levels = compute_levels(tree);
  aug.height = tree.height();
  aug.ell = leaf_diameter_bound(tree);

  const std::size_t num_nodes = tree.num_nodes();
  // Per-node boundary distance matrix (row/col i = i-th boundary vertex).
  std::vector<Matrix<S>> bnd(num_nodes);

  // Every node's shortcut count is known up front (complete graphs on
  // its separator and boundary), so the output array is sized once and
  // node tasks write disjoint slices — no per-node vectors to concat.
  std::vector<std::size_t> offsets(num_nodes);
  for (std::size_t id = 0; id < num_nodes; ++id) {
    const DecompNode& t = tree.node(id);
    if (t.is_leaf()) {
      offsets[id] = detail::pair_count(t.boundary.size());
    } else {
      offsets[id] = detail::pair_count(t.separator.size()) +
                    (t.boundary.empty()
                         ? 0
                         : detail::pair_count(t.boundary.size()));
    }
  }
  aug.shortcuts.resize(detail::offsets_from_counts(offsets));

  detail::ScratchPool<detail::RecursiveScratch<S>> scratch_pool([&] {
    return std::make_unique<detail::RecursiveScratch<S>>(g.num_vertices());
  });

  // --- leaves: exact APSP on the (constant-size) induced subgraph -------
  auto process_leaf = [&](std::size_t id) {
    SEPSP_TRACE_SPAN("build.leaf");  // merged by name: calls = leaf count
    auto scratch = scratch_pool.acquire();
    const DecompNode& t = tree.node(id);
    const std::span<const Vertex> verts = t.vertices;
    scratch->map0.bind(verts);
    Matrix<S>& local = scratch->local;
    local.reset(verts.size());
    for (std::size_t i = 0; i < verts.size(); ++i) {
      local.at(i, i) = S::one();
      for (const Arc& a : g.out(verts[i])) {
        const std::size_t j = scratch->map0.find(a.to);
        if (j != kNpos) local.merge(i, j, S::from_weight(a.weight));
      }
    }
    floyd_warshall(local);  // leaves are O(1)-sized; any kernel is fine
    const std::span<const Vertex> b = t.boundary;
    Matrix<S> bm(b.size());
    Shortcut<S>* out = aug.shortcuts.data() + offsets[id];
    for (std::size_t p = 0; p < b.size(); ++p) {
      const std::size_t ip = scratch->map0.find(b[p]);
      for (std::size_t q = 0; q < b.size(); ++q) {
        bm.at(p, q) = local.at(ip, scratch->map0.find(b[q]));
        if (p != q) *out++ = {b[p], b[q], bm.at(p, q)};
      }
    }
    SEPSP_DCHECK(out == aug.shortcuts.data() + offsets[id + 1]);
    bnd[id] = std::move(bm);
  };

  // --- internal nodes: steps i-v of Algorithm 4.1 -----------------------
  auto process_internal = [&](std::size_t id) {
    SEPSP_TRACE_SPAN("build.internal");  // merged: calls = internal nodes
    auto scratch = scratch_pool.acquire();
    const DecompNode& t = tree.node(id);
    const std::span<const Vertex> st = t.separator;
    const std::span<const Vertex> bt = t.boundary;
    const std::array<std::size_t, 2> kids = {
        static_cast<std::size_t>(t.child[0]),
        static_cast<std::size_t>(t.child[1])};

    // Index of each separator / boundary vertex inside each child's
    // boundary list (kNpos when the vertex is not in that child).
    scratch->map0.bind(tree.node(kids[0]).boundary);
    scratch->map1.bind(tree.node(kids[1]).boundary);
    const detail::VertexIndexMap* child_map[2] = {&scratch->map0,
                                                  &scratch->map1};
    for (int c = 0; c < 2; ++c) {
      auto& s_in_child = scratch->s_in_child[c];
      s_in_child.resize(st.size());
      for (std::size_t i = 0; i < st.size(); ++i) {
        s_in_child[i] = child_map[c]->find(st[i]);
        SEPSP_CHECK_MSG(s_in_child[i] != kNpos,
                        "separator vertex missing from child boundary");
      }
      auto& b_in_child = scratch->b_in_child[c];
      b_in_child.resize(bt.size());
      for (std::size_t p = 0; p < bt.size(); ++p) {
        b_in_child[p] = child_map[c]->find(bt[p]);
      }
    }

    // Step i: H_S from the children's boundary distances.
    Matrix<S>& hs = scratch->hs;
    hs.reset(st.size());
    for (int c = 0; c < 2; ++c) {
      const Matrix<S>& cm = bnd[kids[c]];
      const auto& s_in_child = scratch->s_in_child[c];
      for (std::size_t i = 0; i < st.size(); ++i) {
        for (std::size_t j = 0; j < st.size(); ++j) {
          hs.merge(i, j, cm.at(s_in_child[i], s_in_child[j]));
        }
      }
    }
    // Step ii: closure -> exact S x S distances in G(t).
    detail::run_closure(hs, closure, scratch->square);
    Shortcut<S>* out = aug.shortcuts.data() + offsets[id];
    for (std::size_t i = 0; i < st.size(); ++i) {
      for (std::size_t j = 0; j < st.size(); ++j) {
        if (i != j) *out++ = {st[i], st[j], hs.at(i, j)};
      }
    }

    if (!bt.empty()) {
      // Step iii: B->S and S->B entries of H from the children.
      Matrix<S>& b_to_s = scratch->b_to_s;
      Matrix<S>& s_to_b = scratch->s_to_b;
      b_to_s.reset(bt.size(), st.size());
      s_to_b.reset(st.size(), bt.size());
      for (int c = 0; c < 2; ++c) {
        const Matrix<S>& cm = bnd[kids[c]];
        const auto& s_in_child = scratch->s_in_child[c];
        const auto& b_in_child = scratch->b_in_child[c];
        for (std::size_t p = 0; p < bt.size(); ++p) {
          const std::size_t bp = b_in_child[p];
          if (bp == kNpos) continue;
          for (std::size_t q = 0; q < st.size(); ++q) {
            b_to_s.merge(p, q, cm.at(bp, s_in_child[q]));
            s_to_b.merge(q, p, cm.at(s_in_child[q], bp));
          }
        }
      }
      // Step iv: 3-limited paths B -> S -> S -> B (H_S* includes the
      // diagonal, so 1- and 2-hop crossings are covered too).
      multiply_into(b_to_s, hs, scratch->tmp);
      multiply_into(scratch->tmp, s_to_b, scratch->through);
      const Matrix<S>& through = scratch->through;
      // Step v: best of the separator crossing and staying in one child.
      Matrix<S> bm(bt.size());
      for (std::size_t p = 0; p < bt.size(); ++p) bm.at(p, p) = S::one();
      for (std::size_t p = 0; p < bt.size(); ++p) {
        for (std::size_t q = 0; q < bt.size(); ++q) {
          bm.merge(p, q, through.at(p, q));
        }
      }
      for (int c = 0; c < 2; ++c) {
        const Matrix<S>& cm = bnd[kids[c]];
        const auto& b_in_child = scratch->b_in_child[c];
        for (std::size_t p = 0; p < bt.size(); ++p) {
          const std::size_t bp = b_in_child[p];
          if (bp == kNpos) continue;
          for (std::size_t q = 0; q < bt.size(); ++q) {
            const std::size_t bq = b_in_child[q];
            if (bq == kNpos) continue;
            bm.merge(p, q, cm.at(bp, bq));
          }
        }
      }
      for (std::size_t p = 0; p < bt.size(); ++p) {
        for (std::size_t q = 0; q < bt.size(); ++q) {
          if (p != q) *out++ = {bt[p], bt[q], bm.at(p, q)};
        }
      }
      bnd[id] = std::move(bm);
    } else {
      bnd[id] = Matrix<S>(0);
    }
    SEPSP_DCHECK(out == aug.shortcuts.data() + offsets[id + 1]);
    // The children's matrices are no longer needed.
    bnd[kids[0]].clear();
    bnd[kids[1]].clear();
  };

  const auto by_level = tree.ids_by_level();
  for (std::size_t lvl = by_level.size(); lvl-- > 0;) {
    SEPSP_TRACE_SPAN("build.level");  // merged: calls = processed levels
    const auto& ids = by_level[lvl];
    pram::ThreadPool::global().parallel_for(0, ids.size(), [&](std::size_t k) {
      const std::size_t id = ids[k];
      if (tree.node(id).is_leaf()) {
        process_leaf(id);
      } else {
        process_internal(id);
      }
    });
    // Critical path of this level = the largest node's kernel depth:
    // closure on |S| plus two rectangular products, or a leaf's FW.
    std::uint64_t level_depth = 1;
    for (const std::size_t id : ids) {
      const DecompNode& t = tree.node(id);
      std::uint64_t d = 0;
      if (t.is_leaf()) {
        d = t.vertices.size();  // leaf Floyd–Warshall
      } else {
        const std::uint64_t s = t.separator.size();
        const std::uint64_t log_s = s < 2 ? 1 : std::bit_width(s - 1);
        d = closure == ClosureKind::kSquaring ? log_s * (log_s + 2)
                                              : s;
        d += 2 * (log_s + 1);  // the two 3-limited products
      }
      level_depth = std::max(level_depth, d);
    }
    aug.critical_depth += level_depth;
  }

  dedup_shortcuts<S>(aug.shortcuts);
  aug.build_cost = scope.cost();
  SEPSP_OBS_ONLY(obs::counter("build.shortcuts").add(aug.shortcuts.size());
                 obs::histogram("build.node_count").record(num_nodes);)
  return aug;
}

}  // namespace sepsp
