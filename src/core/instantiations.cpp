// Explicit instantiations of the core templates for every semiring the
// library ships. Keeps template errors local to the library build and
// gives downstream TUs smaller compile times.
#include "core/builder_compact.hpp"
#include "core/builder_doubling.hpp"
#include "core/builder_recursive.hpp"
#include "core/engine.hpp"
#include "core/query.hpp"

namespace sepsp {

template Augmentation<TropicalD> build_augmentation_recursive<TropicalD>(
    const Digraph&, const SeparatorTree&, ClosureKind);
template Augmentation<TropicalI> build_augmentation_recursive<TropicalI>(
    const Digraph&, const SeparatorTree&, ClosureKind);
template Augmentation<BooleanSR> build_augmentation_recursive<BooleanSR>(
    const Digraph&, const SeparatorTree&, ClosureKind);
template Augmentation<BottleneckSR> build_augmentation_recursive<BottleneckSR>(
    const Digraph&, const SeparatorTree&, ClosureKind);

template Augmentation<TropicalD> build_augmentation_doubling<TropicalD>(
    const Digraph&, const SeparatorTree&, const DoublingOptions&);
template Augmentation<TropicalI> build_augmentation_doubling<TropicalI>(
    const Digraph&, const SeparatorTree&, const DoublingOptions&);
template Augmentation<BooleanSR> build_augmentation_doubling<BooleanSR>(
    const Digraph&, const SeparatorTree&, const DoublingOptions&);
template Augmentation<BottleneckSR> build_augmentation_doubling<BottleneckSR>(
    const Digraph&, const SeparatorTree&, const DoublingOptions&);

template Augmentation<TropicalD> build_augmentation_compact<TropicalD>(
    const Digraph&, const SeparatorTree&, const DoublingOptions&);
template Augmentation<TropicalI> build_augmentation_compact<TropicalI>(
    const Digraph&, const SeparatorTree&, const DoublingOptions&);
template Augmentation<BooleanSR> build_augmentation_compact<BooleanSR>(
    const Digraph&, const SeparatorTree&, const DoublingOptions&);
template Augmentation<BottleneckSR> build_augmentation_compact<BottleneckSR>(
    const Digraph&, const SeparatorTree&, const DoublingOptions&);

template class LeveledQuery<TropicalD>;
template class LeveledQuery<TropicalI>;
template class LeveledQuery<BooleanSR>;
template class LeveledQuery<BottleneckSR>;

template class SeparatorShortestPaths<TropicalD>;
template class SeparatorShortestPaths<TropicalI>;
template class SeparatorShortestPaths<BooleanSR>;
template class SeparatorShortestPaths<BottleneckSR>;

}  // namespace sepsp
