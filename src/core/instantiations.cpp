// Explicit instantiations of the core templates for every semiring the
// library ships. Keeps template errors local to the library build and
// gives downstream TUs smaller compile times.
#include "core/builder_compact.hpp"
#include "core/builder_doubling.hpp"
#include "core/builder_recursive.hpp"
#include "core/engine.hpp"
#include "core/query.hpp"
#include "core/query_batch.hpp"

namespace sepsp {

template Augmentation<TropicalD> build_augmentation_recursive<TropicalD>(
    const Digraph&, const SeparatorTree&, ClosureKind);
template Augmentation<TropicalI> build_augmentation_recursive<TropicalI>(
    const Digraph&, const SeparatorTree&, ClosureKind);
template Augmentation<BooleanSR> build_augmentation_recursive<BooleanSR>(
    const Digraph&, const SeparatorTree&, ClosureKind);
template Augmentation<BottleneckSR> build_augmentation_recursive<BottleneckSR>(
    const Digraph&, const SeparatorTree&, ClosureKind);

template Augmentation<TropicalD> build_augmentation_doubling<TropicalD>(
    const Digraph&, const SeparatorTree&, const DoublingOptions&);
template Augmentation<TropicalI> build_augmentation_doubling<TropicalI>(
    const Digraph&, const SeparatorTree&, const DoublingOptions&);
template Augmentation<BooleanSR> build_augmentation_doubling<BooleanSR>(
    const Digraph&, const SeparatorTree&, const DoublingOptions&);
template Augmentation<BottleneckSR> build_augmentation_doubling<BottleneckSR>(
    const Digraph&, const SeparatorTree&, const DoublingOptions&);

template Augmentation<TropicalD> build_augmentation_compact<TropicalD>(
    const Digraph&, const SeparatorTree&, const DoublingOptions&);
template Augmentation<TropicalI> build_augmentation_compact<TropicalI>(
    const Digraph&, const SeparatorTree&, const DoublingOptions&);
template Augmentation<BooleanSR> build_augmentation_compact<BooleanSR>(
    const Digraph&, const SeparatorTree&, const DoublingOptions&);
template Augmentation<BottleneckSR> build_augmentation_compact<BottleneckSR>(
    const Digraph&, const SeparatorTree&, const DoublingOptions&);

template class LeveledQuery<TropicalD>;
template class LeveledQuery<TropicalI>;
template class LeveledQuery<BooleanSR>;
template class LeveledQuery<BottleneckSR>;

// The default engine lane width for every semiring, plus the sweep of
// widths the batched bench compares (tropical only).
template class BatchedLeveledQuery<TropicalD, 8>;
template class BatchedLeveledQuery<TropicalI, 8>;
template class BatchedLeveledQuery<BooleanSR, 8>;
template class BatchedLeveledQuery<BottleneckSR, 8>;
template class BatchedLeveledQuery<TropicalD, 1>;
template class BatchedLeveledQuery<TropicalD, 4>;
template class BatchedLeveledQuery<TropicalD, 16>;

template class SeparatorShortestPaths<TropicalD>;
template class SeparatorShortestPaths<TropicalI>;
template class SeparatorShortestPaths<BooleanSR>;
template class SeparatorShortestPaths<BottleneckSR>;

}  // namespace sepsp
