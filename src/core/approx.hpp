// (1 + eps)-approximate shortest paths by weight scaling.
//
// The paper's related work cites Klein–Sairam's (1 + eps)-approximate
// parallel SSSP; this module provides the analogous accuracy/cost knob
// on top of the exact engine: round each weight up to a multiple of a
// unit u = eps * w_min, run the exact machinery over TropicalI (exact
// 64-bit arithmetic — no floating-point drift at all), and rescale.
//
// Guarantee (positive weights): a path of k edges gains at most k * u
// <= eps * k * w_min <= eps * dist, so
//     dist(u,v) <= approx(u,v) <= (1 + eps) * dist(u,v).
// Integer arithmetic also makes results bit-reproducible across
// platforms, which the double engine cannot promise.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "graph/digraph.hpp"
#include "separator/decomposition.hpp"

namespace sepsp {

class ApproxEngine {
 public:
  /// Preprocesses with rounding unit eps * (minimum positive weight).
  /// All weights must be > 0. eps in (0, 1].
  static ApproxEngine build(const Digraph& g, const SeparatorTree& tree,
                            double eps,
                            BuilderKind builder = BuilderKind::kRecursive);

  /// Approximate distances from `source`: within [dist, (1+eps) dist].
  std::vector<double> distances(Vertex source) const;

  double unit() const;  ///< the rounding unit actually used

 private:
  ApproxEngine() = default;
  struct State;
  std::shared_ptr<const State> state_;
};

}  // namespace sepsp
