// Per-node scratch arenas for the E+ builders.
//
// Both builders process many tree nodes per level, and every node used
// to allocate its own index-lookup structures and intermediate matrices.
// The arenas here let a node task lease a reusable scratch object
// instead: matrix storage is re-shaped with Matrix::reset (no
// allocation once grown to the high-water mark) and vertex->index
// lookups use an epoch-stamped dense map (O(1) per probe, O(list) per
// bind, no clearing pass).
//
// IMPORTANT: leases come from a mutex-protected pool, NOT from
// thread_local storage. The work-stealing pool's joins are help-first —
// a thread waiting on a nested parallel region (say, inside a blocked
// kernel) may pick up and execute a *different node's* task before its
// join completes. A thread_local scratch would be re-entered mid-use;
// pool leases give each in-flight node task its own object. The pool's
// size is bounded by the maximum number of simultaneously in-flight
// node tasks, which is small (≈ workers x nesting depth).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "semiring/matrix.hpp"
#include "util/check.hpp"

namespace sepsp::detail {

/// Dense vertex -> index map over a bound vertex list. Probes are O(1)
/// array reads; bind() is O(list) with no clearing (epoch stamps mark
/// which entries belong to the current binding).
class VertexIndexMap {
 public:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  explicit VertexIndexMap(std::size_t num_vertices)
      : stamp_(num_vertices, 0), index_(num_vertices, 0) {}

  /// Binds the map to `list` (entries must be < num_vertices). Any
  /// previous binding is implicitly dropped.
  void bind(std::span<const Vertex> list) {
    if (++epoch_ == 0) {  // stamp wrap: invalidate everything once
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
    for (std::size_t i = 0; i < list.size(); ++i) {
      const auto v = static_cast<std::size_t>(list[i]);
      SEPSP_DCHECK(v < stamp_.size());
      stamp_[v] = epoch_;
      index_[v] = static_cast<std::uint32_t>(i);
    }
  }

  /// Index of v in the bound list, or kNpos.
  std::size_t find(Vertex v) const {
    const auto i = static_cast<std::size_t>(v);
    SEPSP_DCHECK(i < stamp_.size());
    return stamp_[i] == epoch_ ? index_[i] : kNpos;
  }

 private:
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> index_;
  std::uint32_t epoch_ = 0;
};

/// Pool of reusable scratch objects handed out as RAII leases. Acquire
/// returns a recycled object when one is free, else constructs a new one
/// via the factory.
template <typename T>
class ScratchPool {
 public:
  template <typename Factory>
  explicit ScratchPool(Factory&& make) : make_(std::forward<Factory>(make)) {}

  class Lease {
   public:
    Lease(ScratchPool* pool, std::unique_ptr<T> obj)
        : pool_(pool), obj_(std::move(obj)) {}
    ~Lease() {
      if (obj_) pool_->release(std::move(obj_));
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease(Lease&&) = default;

    T& operator*() { return *obj_; }
    T* operator->() { return obj_.get(); }

   private:
    ScratchPool* pool_;
    std::unique_ptr<T> obj_;
  };

  Lease acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        auto obj = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(obj));
      }
    }
    return Lease(this, make_());
  }

 private:
  void release(std::unique_ptr<T> obj) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(obj));
  }

  std::function<std::unique_ptr<T>()> make_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<T>> free_;  // guarded by mutex_
};

/// Scratch for one node task of the recursive builder (Algorithm 4.1).
template <Semiring S>
struct RecursiveScratch {
  explicit RecursiveScratch(std::size_t num_vertices)
      : map0(num_vertices), map1(num_vertices) {}

  VertexIndexMap map0;  // leaf: t.vertices / internal: child-0 boundary
  VertexIndexMap map1;  // internal: child-1 boundary
  Matrix<S> local;      // leaf: APSP on the induced subgraph
  Matrix<S> hs;         // H_S and its closure
  Matrix<S> b_to_s;
  Matrix<S> s_to_b;
  Matrix<S> tmp;      // b_to_s (x) hs
  Matrix<S> through;  // tmp (x) s_to_b
  Matrix<S> square;   // squaring-closure product buffer
  std::vector<std::size_t> s_in_child[2];
  std::vector<std::size_t> b_in_child[2];
};

/// Scratch for one node task of the doubling builder (Algorithm 4.3).
template <Semiring S>
struct DoublingScratch {
  explicit DoublingScratch(std::size_t num_vertices)
      : map0(num_vertices), map1(num_vertices) {}

  VertexIndexMap map0;  // node V_H
  VertexIndexMap map1;  // leaf t.vertices
  Matrix<S> local;      // leaf APSP buffer
  Matrix<S> square;     // square_step product buffer
};

}  // namespace sepsp::detail
