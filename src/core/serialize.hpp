// Binary persistence for the expensive preprocessing artifacts: the
// separator tree and the augmentation E+. A production deployment
// preprocesses once (Table 1's O(n^{3 mu}) work), stores the artifacts,
// and serves queries from any process (O(n + n^{2 mu}) per source).
//
// Format: little-endian PODs behind a magic/version header; semiring
// values must be trivially copyable (all shipped semirings are).
// Loading validates counts and ranges; corrupted streams return nullopt
// rather than aborting, and the optional `error` out-param receives a
// human-readable reason (bad magic vs. unsupported version vs.
// truncation) for surfacing in tooling.
//
// Versioning contract: writers always emit the current version; readers
// accept every version in [kMinVersion, current]. Fields added by a
// newer version default sanely when reading an older payload (an
// augmentation v1 file loads with zero build-cost metadata). A reader
// seeing a *newer* version than it knows refuses with a clear error —
// guessing at an unknown layout would misparse silently.
//
// Augmentation format history:
//   v1  magic, version, n, height, ell, level[], node[], shortcuts[]
//   v2  v1 + critical_depth, build_work, build_depth (after ell) — the
//       build-cost metadata engine.stats() reports, preserved across
//       save/load round trips.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <type_traits>

#include "core/augment.hpp"
#include "separator/decomposition.hpp"

namespace sepsp {

namespace serial_detail {

constexpr std::uint32_t kTreeMagic = 0x53455054;  // "SEPT"
constexpr std::uint32_t kAugMagic = 0x53455041;   // "SEPA"
constexpr std::uint32_t kTreeVersion = 1;         ///< current tree format
constexpr std::uint32_t kAugVersion = 2;          ///< current aug format
constexpr std::uint32_t kMinVersion = 1;          ///< oldest readable

/// Pre-versioning alias (deprecated): the single shared version number,
/// valid while both formats sat at 1. Use kTreeVersion / kAugVersion.
[[deprecated("use kTreeVersion / kAugVersion")]]
constexpr std::uint32_t kVersion = 1;

inline void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

/// Checks a magic/version header. On success stores the on-disk version
/// (callers branch on it to skip fields the payload predates).
inline bool read_header(std::istream& is, std::uint32_t want_magic,
                        std::uint32_t current_version,
                        const char* artifact, std::uint32_t* version_out,
                        std::string* error);

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
bool read_pod(std::istream& is, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  is.read(reinterpret_cast<char*>(value), sizeof *value);
  return static_cast<bool>(is);
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  if (!v.empty()) {
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

/// Bytes between the stream's read position and its end, or nullopt
/// when the stream is not seekable. Every segment read bounds its
/// element count against this before allocating, so a corrupted count
/// fails as truncation instead of as a multi-GiB resize().
inline std::optional<std::uint64_t> remaining_bytes(std::istream& is) {
  const std::istream::pos_type pos = is.tellg();
  if (pos == std::istream::pos_type(-1)) return std::nullopt;
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) return std::nullopt;
  return static_cast<std::uint64_t>(end - pos);
}

template <typename T>
bool read_vec(std::istream& is, std::vector<T>* v,
              std::uint64_t max_elems = (1ULL << 32)) {
  std::uint64_t count = 0;
  if (!read_pod(is, &count) || count > max_elems) return false;
  v->clear();
  if (count != 0) {
    // count > remaining/sizeof(T) (not count * sizeof(T), which could
    // wrap) — the payload cannot possibly be present past this point.
    if (const std::optional<std::uint64_t> left = remaining_bytes(is);
        left.has_value() && count > *left / sizeof(T)) {
      return false;
    }
    v->resize(count);
    is.read(reinterpret_cast<char*>(v->data()),
            static_cast<std::streamsize>(count * sizeof(T)));
  }
  return static_cast<bool>(is);
}

inline bool read_header(std::istream& is, std::uint32_t want_magic,
                        std::uint32_t current_version, const char* artifact,
                        std::uint32_t* version_out, std::string* error) {
  std::uint32_t magic = 0, version = 0;
  if (!read_pod(is, &magic)) {
    set_error(error, std::string(artifact) + ": truncated header");
    return false;
  }
  if (magic != want_magic) {
    set_error(error, std::string(artifact) + ": bad magic 0x" + [&] {
      char buf[9];
      std::snprintf(buf, sizeof buf, "%08x", magic);
      return std::string(buf);
    }() + " (not a " + artifact + " file)");
    return false;
  }
  if (!read_pod(is, &version)) {
    set_error(error, std::string(artifact) + ": truncated header");
    return false;
  }
  if (version < kMinVersion || version > current_version) {
    set_error(error, std::string(artifact) + ": unsupported format version " +
                         std::to_string(version) + " (this build reads " +
                         std::to_string(kMinVersion) + ".." +
                         std::to_string(current_version) + ")");
    return false;
  }
  *version_out = version;
  return true;
}

}  // namespace serial_detail

/// Serializes a separator tree.
void save_tree(std::ostream& os, const SeparatorTree& tree);

/// Deserializes a tree; nullopt on malformed input (reason in `error`
/// when provided). Run validate() against the skeleton when the stream
/// is untrusted.
std::optional<SeparatorTree> load_tree(std::istream& is,
                                       std::string* error = nullptr);

/// Serializes an augmentation (any semiring with trivially copyable
/// values). Always writes the current format version.
template <Semiring S>
void save_augmentation(std::ostream& os, const Augmentation<S>& aug) {
  using serial_detail::write_pod;
  using serial_detail::write_vec;
  static_assert(std::is_trivially_copyable_v<typename S::Value>);
  write_pod(os, serial_detail::kAugMagic);
  write_pod(os, serial_detail::kAugVersion);
  write_pod(os, static_cast<std::uint64_t>(aug.levels.level.size()));
  write_pod(os, aug.height);
  write_pod(os, static_cast<std::uint64_t>(aug.ell));
  // v2: build-cost metadata (engine.stats() structural fields).
  write_pod(os, aug.critical_depth);
  write_pod(os, aug.build_cost.work);
  write_pod(os, aug.build_cost.depth);
  write_vec(os, aug.levels.level);
  write_vec(os, aug.levels.node);
  write_vec(os, aug.shortcuts);
}

/// Deserializes an augmentation; nullopt on malformed input (reason in
/// `error` when provided). Reads every version since kMinVersion — v1
/// payloads load with zeroed build-cost metadata.
template <Semiring S>
std::optional<Augmentation<S>> load_augmentation(std::istream& is,
                                                 std::string* error = nullptr) {
  using serial_detail::read_pod;
  using serial_detail::read_vec;
  using serial_detail::set_error;
  std::uint32_t version = 0;
  std::uint64_t n = 0, ell = 0;
  Augmentation<S> aug;
  if (!serial_detail::read_header(is, serial_detail::kAugMagic,
                                  serial_detail::kAugVersion, "augmentation",
                                  &version, error)) {
    return std::nullopt;
  }
  if (!read_pod(is, &n) || !read_pod(is, &aug.height) ||
      !read_pod(is, &ell)) {
    set_error(error, "augmentation: truncated metadata");
    return std::nullopt;
  }
  if (n > (1ULL << 32) || aug.height > (1u << 28) || ell > (1ULL << 32)) {
    set_error(error, "augmentation: implausible metadata (corrupt stream?)");
    return std::nullopt;
  }
  aug.ell = ell;
  if (version >= 2) {
    std::uint64_t work = 0, depth = 0;
    if (!read_pod(is, &aug.critical_depth) || !read_pod(is, &work) ||
        !read_pod(is, &depth)) {
      set_error(error, "augmentation: truncated v2 build-cost metadata");
      return std::nullopt;
    }
    aug.build_cost.work = work;
    aug.build_cost.depth = depth;
  }
  // max_elems == n: a count disagreeing with the header fails before
  // any allocation, not after a wasted resize.
  if (!read_vec(is, &aug.levels.level, n) || aug.levels.level.size() != n) {
    set_error(error, "augmentation: bad level assignment");
    return std::nullopt;
  }
  if (!read_vec(is, &aug.levels.node, n) || aug.levels.node.size() != n) {
    set_error(error, "augmentation: bad node assignment");
    return std::nullopt;
  }
  if (!read_vec(is, &aug.shortcuts)) {
    set_error(error, "augmentation: bad shortcut list");
    return std::nullopt;
  }
  aug.levels.height = aug.height;
  for (const Shortcut<S>& e : aug.shortcuts) {
    if (e.from >= n || e.to >= n) {
      set_error(error, "augmentation: shortcut endpoint out of range");
      return std::nullopt;
    }
  }
  return aug;
}

}  // namespace sepsp
