// Binary persistence for the expensive preprocessing artifacts: the
// separator tree and the augmentation E+. A production deployment
// preprocesses once (Table 1's O(n^{3 mu}) work), stores the artifacts,
// and serves queries from any process (O(n + n^{2 mu}) per source).
//
// Format: little-endian PODs behind a magic/version header; semiring
// values must be trivially copyable (all shipped semirings are).
// Loading validates counts and ranges; corrupted streams return nullopt
// rather than aborting.
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <optional>
#include <ostream>
#include <type_traits>

#include "core/augment.hpp"
#include "separator/decomposition.hpp"

namespace sepsp {

namespace serial_detail {

constexpr std::uint32_t kTreeMagic = 0x53455054;  // "SEPT"
constexpr std::uint32_t kAugMagic = 0x53455041;   // "SEPA"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
bool read_pod(std::istream& is, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  is.read(reinterpret_cast<char*>(value), sizeof *value);
  return static_cast<bool>(is);
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  if (!v.empty()) {
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

template <typename T>
bool read_vec(std::istream& is, std::vector<T>* v,
              std::uint64_t max_elems = (1ULL << 32)) {
  std::uint64_t count = 0;
  if (!read_pod(is, &count) || count > max_elems) return false;
  v->resize(count);
  if (count != 0) {
    is.read(reinterpret_cast<char*>(v->data()),
            static_cast<std::streamsize>(count * sizeof(T)));
  }
  return static_cast<bool>(is);
}

}  // namespace serial_detail

/// Serializes a separator tree.
void save_tree(std::ostream& os, const SeparatorTree& tree);

/// Deserializes a tree; nullopt on malformed input. Run validate()
/// against the skeleton when the stream is untrusted.
std::optional<SeparatorTree> load_tree(std::istream& is);

/// Serializes an augmentation (any semiring with trivially copyable
/// values).
template <Semiring S>
void save_augmentation(std::ostream& os, const Augmentation<S>& aug) {
  using serial_detail::write_pod;
  using serial_detail::write_vec;
  static_assert(std::is_trivially_copyable_v<typename S::Value>);
  write_pod(os, serial_detail::kAugMagic);
  write_pod(os, serial_detail::kVersion);
  write_pod(os, static_cast<std::uint64_t>(aug.levels.level.size()));
  write_pod(os, aug.height);
  write_pod(os, static_cast<std::uint64_t>(aug.ell));
  write_vec(os, aug.levels.level);
  write_vec(os, aug.levels.node);
  write_vec(os, aug.shortcuts);
}

/// Deserializes an augmentation; nullopt on malformed input.
template <Semiring S>
std::optional<Augmentation<S>> load_augmentation(std::istream& is) {
  using serial_detail::read_pod;
  using serial_detail::read_vec;
  std::uint32_t magic = 0, version = 0;
  std::uint64_t n = 0, ell = 0;
  Augmentation<S> aug;
  if (!read_pod(is, &magic) || magic != serial_detail::kAugMagic) {
    return std::nullopt;
  }
  if (!read_pod(is, &version) || version != serial_detail::kVersion) {
    return std::nullopt;
  }
  if (!read_pod(is, &n) || !read_pod(is, &aug.height) ||
      !read_pod(is, &ell)) {
    return std::nullopt;
  }
  aug.ell = ell;
  if (!read_vec(is, &aug.levels.level) || aug.levels.level.size() != n) {
    return std::nullopt;
  }
  if (!read_vec(is, &aug.levels.node) || aug.levels.node.size() != n) {
    return std::nullopt;
  }
  if (!read_vec(is, &aug.shortcuts)) return std::nullopt;
  aug.levels.height = aug.height;
  for (const Shortcut<S>& e : aug.shortcuts) {
    if (e.from >= n || e.to >= n) return std::nullopt;
  }
  return aug;
}

}  // namespace sepsp
