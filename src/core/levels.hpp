// The level / node labeling of Section 3.1.
//
//   level(v) = min { level(t) : v in S(t) }   (kUndefined if v is in no
//                                              separator)
//   node(v)  = the t attaining that minimum, or the unique leaf
//              containing v when level(v) is undefined.
//
// The labeling drives both the diameter proof (Theorem 3.1: shortcut
// paths have bitonic level sequences) and the leveled Bellman–Ford
// schedule of Section 3.2.
#pragma once

#include <cstdint>
#include <vector>

#include "separator/decomposition.hpp"

namespace sepsp {

/// Per-vertex level/node labels derived from a separator tree.
struct LevelAssignment {
  static constexpr std::uint32_t kUndefined = static_cast<std::uint32_t>(-1);

  std::vector<std::uint32_t> level;  ///< level(v) or kUndefined
  std::vector<std::int32_t> node;    ///< node(v): tree node id
  std::uint32_t height = 0;          ///< d_G, max tree level

  bool defined(Vertex v) const { return level[v] != kUndefined; }
};

/// Computes the labeling; O(sum |S(t)| + sum_leaf |V(t)|).
LevelAssignment compute_levels(const SeparatorTree& tree);

}  // namespace sepsp
