// Public facade: preprocess once, query many sources.
//
// Typical use (see examples/quickstart.cpp):
//
//   auto grid   = make_grid({64, 64}, WeightModel::uniform(1, 10), rng);
//   Skeleton sk(grid.graph);
//   auto tree   = build_separator_tree(sk, make_grid_finder({64, 64}));
//
//   SeparatorShortestPaths<>::Options opts;
//   opts.build.builder = BuilderKind::kRecursive;  // Options::Build
//   opts.query.detect_negative_cycles = true;      // Options::Query
//   auto engine = SeparatorShortestPaths<>::build(grid.graph, tree, opts);
//
//   auto result = engine.distances(source);            // one source
//   auto batch  = engine.distances_batch(sources);     // batched kernel
//   auto scalar = engine.distances_batch(sources,      // kernel selection
//                     {.lanes = 16});
//   engine.stats().print(std::cout);                   // observability
//
// The facade is templated on the semiring (paper remark iii); the
// default TropicalD computes real-weight shortest paths.
//
// History note: the pre-redesign flat Options fields and the split
// batch entry points (distances_batch_lanes<B>,
// distances_batch_persource) were deprecated for one release and have
// been removed; see docs/API.md for the migration table.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/builder_doubling.hpp"
#include "core/builder_recursive.hpp"
#include "core/engine_stats.hpp"
#include "core/query.hpp"
#include "core/query_batch.hpp"
#include "obs/obs.hpp"
#include "pram/thread_pool.hpp"

namespace sepsp {

/// Which E+ construction to run.
enum class BuilderKind {
  kRecursive,  ///< Algorithm 4.1 (less work, depth grows with d_G)
  kDoubling,   ///< Algorithm 4.3 (polylog depth, +log-factor work)
};

/// Kernel selection for distances_batch(). `lanes` is the number of
/// sources relaxed per edge load by the source-batched kernel
/// (compile-time-dispatched; one of 1, 2, 4, 8, 16, 32, or 0 for the
/// engine's configured Options::Query::batch_lanes).
/// `force_per_source` bypasses the batched kernel entirely and runs one
/// independent scalar query per source — the baseline the batched
/// kernel is benchmarked against, and the right choice when sources
/// cannot amortize a shared edge stream.
struct BatchPolicy {
  std::size_t lanes = 0;
  bool force_per_source = false;
};

template <Semiring S = TropicalD>
class SeparatorShortestPaths {
 public:
  using Value = typename S::Value;

  /// Default lane width of the batched many-source path: each edge load
  /// relaxes this many sources at once (see core/query_batch.hpp).
  static constexpr std::size_t kBatchLanes = 8;

  struct Options {
    /// Preprocessing knobs (consumed once, inside build()).
    struct Build {
      BuilderKind builder = BuilderKind::kRecursive;
      ClosureKind closure = ClosureKind::kSquaring;  ///< Alg 4.1 APSP kernel
      DoublingOptions doubling;                      ///< Alg 4.3 knobs
      /// End-to-end relative-error budget of the approximate mode, in
      /// [0, 1]. 0 (the default) means exact. A nonzero budget is only
      /// honored by ApproxEngine (src/approx/approx.hpp), which splits
      /// it between weight rounding and shortcut pruning; the exact
      /// build() rejects it rather than silently ignore it.
      double approx_eps = 0.0;
    };
    /// Query-time knobs (consulted on every query).
    struct Query {
      /// Skip the per-query negative-cycle verification pass (sound when
      /// the input is known cycle-free, e.g. nonnegative weights); saves
      /// one full E u E+ scan per source.
      bool detect_negative_cycles = true;
      /// Default lane width for distances_batch(); one of 1, 2, 4, 8,
      /// 16, 32.
      std::size_t batch_lanes = kBatchLanes;
    };

    Build build;
    Query query;

    /// Verifies coherence; called by build() on every options object.
    /// Rejected combinations (SEPSP_CHECK): a batch_lanes width the
    /// batched kernel cannot dispatch, a non-default Algorithm 4.1
    /// closure paired with the doubling builder, and non-default
    /// doubling knobs paired with the recursive builder.
    Options validated() const {
      Options r = *this;
      SEPSP_CHECK_MSG(valid_lane_width(r.query.batch_lanes),
                      "Options::Query::batch_lanes must be one of "
                      "1, 2, 4, 8, 16, 32");
      SEPSP_CHECK_MSG(!(r.build.builder == BuilderKind::kDoubling &&
                        r.build.closure != ClosureKind::kSquaring),
                      "Options::Build::closure selects Algorithm 4.1's APSP "
                      "kernel; it is meaningless with the doubling builder");
      SEPSP_CHECK_MSG(!(r.build.builder == BuilderKind::kRecursive &&
                        !(r.build.doubling == DoublingOptions{})),
                      "Options::Build::doubling configures Algorithm 4.3; it "
                      "is meaningless with the recursive builder");
      SEPSP_CHECK_MSG(r.build.approx_eps >= 0.0 && r.build.approx_eps <= 1.0,
                      "Options::Build::approx_eps must lie in [0, 1]");
      return r;
    }
  };

  /// Preprocesses g against the given decomposition of its skeleton.
  /// Cost: Table 1 preprocessing row (O(n + n^{3 mu}) work for k^mu
  /// separator families). The caller must keep `g` alive (and at a
  /// stable address) for the engine's lifetime; the engine itself is
  /// safely movable (its internal state lives behind unique_ptrs).
  static SeparatorShortestPaths build(const Digraph& g,
                                      const SeparatorTree& tree,
                                      const Options& options = {}) {
    SEPSP_CHECK(tree.num_graph_vertices() == g.num_vertices());
    SEPSP_TRACE_SPAN("engine.build");
    SEPSP_OBS_ONLY(obs::counter("engine.builds").add(1);)
    const Options resolved = options.validated();
    SEPSP_CHECK_MSG(resolved.build.approx_eps == 0.0,
                    "the exact engine cannot honor "
                    "Options::Build::approx_eps — build an ApproxEngine "
                    "(src/approx/approx.hpp) instead");
    SeparatorShortestPaths engine(g, resolved.query);
    engine.aug_ = std::make_shared<const Augmentation<S>>(
        resolved.build.builder == BuilderKind::kRecursive
            ? build_augmentation_recursive<S>(g, tree, resolved.build.closure)
            : build_augmentation_doubling<S>(g, tree,
                                             resolved.build.doubling));
    engine.query_ = std::make_unique<LeveledQuery<S>>(
        g, *engine.aug_, resolved.query.detect_negative_cycles);
    SEPSP_OBS_ONLY(
        obs::counter("engine.shortcuts").add(engine.aug_->shortcuts.size());)
    return engine;
  }

  /// Wraps a precomputed augmentation (e.g. loaded via
  /// core/serialize.hpp) without rebuilding E+. Only the Query half of
  /// the options applies (the Build half already happened elsewhere).
  static SeparatorShortestPaths from_augmentation(const Digraph& g,
                                                  Augmentation<S> aug,
                                                  const Options& options = {}) {
    SEPSP_CHECK(aug.levels.level.size() == g.num_vertices());
    const Options resolved = options.validated();
    SeparatorShortestPaths engine(g, resolved.query);
    engine.aug_ = std::make_shared<const Augmentation<S>>(std::move(aug));
    engine.query_ = std::make_unique<LeveledQuery<S>>(
        g, *engine.aug_, resolved.query.detect_negative_cycles);
    return engine;
  }

  /// Wraps an already-forked LeveledQuery into a facade without
  /// reconstructing anything: the structurally-shared snapshot path of
  /// IncrementalEngine::snapshot(). `aug` is the (possibly aliasing)
  /// shared handle keeping the query's augmentation alive; `query` must
  /// have been produced by LeveledQuery::fork_shared() or
  /// LeveledQuery::from_store() against that augmentation. Cost:
  /// O(#slabs) pointer moves — no value copies.
  static SeparatorShortestPaths from_forked_query(
      const Digraph& g, std::shared_ptr<const Augmentation<S>> aug,
      LeveledQuery<S> query, const Options& options = {}) {
    const Options resolved = options.validated();
    SeparatorShortestPaths engine(g, resolved.query);
    engine.aug_ = std::move(aug);
    engine.query_ = std::make_unique<LeveledQuery<S>>(std::move(query));
    return engine;
  }

  /// Like from_augmentation(), but overrides the value of every base
  /// arc with S::from_weight(arc_weights[i]) (indexed like g.arcs()).
  /// This is the snapshot hook of IncrementalEngine::snapshot(): a
  /// reweighted engine can be frozen into an immutable engine without
  /// materializing a reweighted Digraph. The shortcut values inside
  /// `aug` must already reflect the same weighting.
  static SeparatorShortestPaths from_augmentation(
      const Digraph& g, Augmentation<S> aug,
      std::span<const double> arc_weights, const Options& options = {}) {
    SEPSP_CHECK(arc_weights.size() == g.num_edges());
    SeparatorShortestPaths engine =
        from_augmentation(g, std::move(aug), options);
    for (std::size_t arc = 0; arc < arc_weights.size(); ++arc) {
      engine.query_->refresh_base(arc, S::from_weight(arc_weights[arc]));
    }
    return engine;
  }

  /// Immutable shared handle to an engine: the unit the serving runtime
  /// (src/service/) swaps RCU-style — readers resolve queries against
  /// the snapshot they captured while a successor builds in the
  /// background, and the last reader releases the old engine.
  using Snapshot = std::shared_ptr<const SeparatorShortestPaths>;

  /// Freezes an engine into a shared immutable snapshot handle.
  static Snapshot freeze(SeparatorShortestPaths engine) {
    return std::make_shared<const SeparatorShortestPaths>(std::move(engine));
  }

  const Digraph& graph() const { return *g_; }
  const Augmentation<S>& augmentation() const { return *aug_; }
  const LeveledQuery<S>& query_engine() const { return *query_; }
  const typename Options::Query& query_options() const { return qopts_; }

  /// Distances from one source; O(ell |E| + |E+|) work.
  QueryResult<S> distances(Vertex source) const {
    QueryResult<S> r = query_->run(source);
    note_run(QueryStats{r.negative_cycle, r.edges_scanned, r.phases});
    return r;
  }

  /// Allocation-free distances(): fills the caller's buffer (size must
  /// equal num_vertices; prior contents ignored) and returns the run's
  /// counters. Reuse one buffer across queries to keep a serving hot
  /// path free of per-query heap traffic.
  QueryStats distances_into(Vertex source, std::span<Value> out) const {
    const QueryStats s = query_->run_into(source, out);
    note_run(s);
    return s;
  }

  /// Distances from many sources (the s-source workload of Corollary
  /// 5.2). The BatchPolicy selects the kernel: by default sources are
  /// grouped into blocks of Options::Query::batch_lanes lanes relaxed
  /// simultaneously by the source-batched kernel (core/query_batch.hpp)
  /// with blocks running in parallel on the thread pool;
  /// `{.force_per_source = true}` instead runs one independent scalar
  /// query per source. Per-source results are identical either way —
  /// lanes never interact.
  std::vector<QueryResult<S>> distances_batch(std::span<const Vertex> sources,
                                              BatchPolicy policy = {}) const {
    if (policy.force_per_source) return per_source_impl(sources);
    const std::size_t lanes =
        policy.lanes == 0 ? qopts_.batch_lanes : policy.lanes;
    switch (lanes) {
      case 1:
        return batch_impl<1>(sources);
      case 2:
        return batch_impl<2>(sources);
      case 4:
        return batch_impl<4>(sources);
      case 8:
        return batch_impl<8>(sources);
      case 16:
        return batch_impl<16>(sources);
      case 32:
        return batch_impl<32>(sources);
      default:
        SEPSP_CHECK_MSG(false,
                        "BatchPolicy::lanes must be one of 1, 2, 4, 8, 16, 32 "
                        "(or 0 for the engine default)");
        return {};
    }
  }

  /// All-pairs driver (s = n sources).
  std::vector<QueryResult<S>> all_pairs() const {
    std::vector<Vertex> sources(g_->num_vertices());
    for (Vertex v = 0; v < sources.size(); ++v) sources[v] = v;
    return distances_batch(sources);
  }

  /// Structural schedule statistics plus cumulative query counters.
  /// Structural fields are always populated; the dynamic counters
  /// (queries, edges_scanned, lane occupancy, per-level scans) require
  /// the library to be compiled with SEPSP_OBS=ON and stay zero
  /// otherwise. Counters are per-engine (not process-wide) and cover
  /// queries issued through this facade.
  EngineStats stats() const {
    EngineStats st;
    st.num_vertices = g_->num_vertices();
    st.num_edges = g_->num_edges();
    // Counted through the query engine, not the augmentation: an engine
    // opened from a v3 image carries a structural augmentation whose
    // shortcut list is empty (the values live in the image's segments).
    st.eplus_edges = query_->shortcut_edges().size();
    st.bucket_edges = query_->bucket_edges();
    st.height = aug_->height;
    st.ell = aug_->ell;
    st.diameter_bound = aug_->diameter_bound();
    st.build_work = aug_->build_cost.work;
    st.build_depth = aug_->build_cost.depth;
    st.critical_depth = aug_->critical_depth;
    st.simd_tier = simd::tier_name(simd::active_tier());
    const auto same = query_->same_buckets();
    const auto down = query_->down_buckets();
    const auto up = query_->up_buckets();
    st.levels.reserve(aug_->height + 1);
    for (std::uint32_t l = 0; l <= aug_->height; ++l) {
      st.levels.push_back({l, same[l].size(), down[l].size(), up[l].size(),
                           query_->level_edges_scanned(l)});
    }
#if SEPSP_OBS_ENABLED
    st.queries = counters_->queries.load(std::memory_order_relaxed);
    st.edges_scanned = counters_->edges.load(std::memory_order_relaxed);
    st.phases = counters_->phases.load(std::memory_order_relaxed);
    st.batch_blocks = counters_->blocks.load(std::memory_order_relaxed);
    st.batch_lanes_used =
        counters_->lanes_used.load(std::memory_order_relaxed);
    st.batch_lane_capacity =
        counters_->lane_capacity.load(std::memory_order_relaxed);
    // Process-wide kernel/scheduler counters (shared by all engines):
    st.kernel_tiles = obs::counter("kernel.tiles").value();
    st.kernel_cells = obs::counter("kernel.cells").value();
    st.pool_steals = obs::counter("pool.steals").value();
    st.simd_cells = obs::counter("simd.cells").value();
#endif
    return st;
  }

 private:
  explicit SeparatorShortestPaths(const Digraph& g,
                                  const typename Options::Query& qopts)
      : g_(&g), qopts_(qopts) {
#if SEPSP_OBS_ENABLED
    counters_ = std::make_unique<EngineCounters>();
#endif
  }

  static constexpr bool valid_lane_width(std::size_t lanes) {
    return lanes == 1 || lanes == 2 || lanes == 4 || lanes == 8 ||
           lanes == 16 || lanes == 32;
  }

  template <std::size_t B>
  std::vector<QueryResult<S>> batch_impl(
      std::span<const Vertex> sources) const {
    std::vector<QueryResult<S>> results(sources.size());
    if (sources.empty()) return results;
    const BatchedLeveledQuery<S, B> batched(*query_);
    const std::size_t blocks = (sources.size() + B - 1) / B;
    pram::ThreadPool::global().parallel_for(
        0, blocks,
        [&](std::size_t blk) {
          const std::size_t lo = blk * B;
          const std::size_t len = std::min(B, sources.size() - lo);
          auto block = batched.run_block(sources.subspan(lo, len));
          for (std::size_t i = 0; i < len; ++i) {
            results[lo + i] = std::move(block[i]);
          }
          note_block(B, len);
        },
        /*grain=*/1);
    note_results(results);
    return results;
  }

  /// The unbatched many-source path: one independent LeveledQuery::run
  /// per source, parallelized across sources. Kept as the baseline the
  /// batched kernel is benchmarked against (bench_x_batched) and as the
  /// fallback when blocks cannot amortize (it re-streams E u E+ once per
  /// source).
  std::vector<QueryResult<S>> per_source_impl(
      std::span<const Vertex> sources) const {
    std::vector<QueryResult<S>> results(sources.size());
    pram::ThreadPool::global().parallel_for(0, sources.size(),
                                            [&](std::size_t i) {
                                              results[i] =
                                                  query_->run(sources[i]);
                                            });
    note_results(results);
    return results;
  }

#if SEPSP_OBS_ENABLED
  struct EngineCounters {
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> edges{0};
    std::atomic<std::uint64_t> phases{0};
    std::atomic<std::uint64_t> blocks{0};
    std::atomic<std::uint64_t> lanes_used{0};
    std::atomic<std::uint64_t> lane_capacity{0};
  };
  void note_run(const QueryStats& s) const {
    counters_->queries.fetch_add(1, std::memory_order_relaxed);
    counters_->edges.fetch_add(s.edges_scanned, std::memory_order_relaxed);
    counters_->phases.fetch_add(s.phases, std::memory_order_relaxed);
  }
  void note_block(std::size_t width, std::size_t used) const {
    counters_->blocks.fetch_add(1, std::memory_order_relaxed);
    counters_->lanes_used.fetch_add(used, std::memory_order_relaxed);
    counters_->lane_capacity.fetch_add(width, std::memory_order_relaxed);
  }
  void note_results(std::span<const QueryResult<S>> results) const {
    std::uint64_t edges = 0, phases = 0;
    for (const QueryResult<S>& r : results) {
      edges += r.edges_scanned;
      phases += r.phases;
    }
    counters_->queries.fetch_add(results.size(), std::memory_order_relaxed);
    counters_->edges.fetch_add(edges, std::memory_order_relaxed);
    counters_->phases.fetch_add(phases, std::memory_order_relaxed);
  }
#else
  void note_run(const QueryStats&) const {}
  void note_block(std::size_t, std::size_t) const {}
  void note_results(std::span<const QueryResult<S>>) const {}
#endif

  const Digraph* g_;
  typename Options::Query qopts_;
  // Stable-address handles so the engine can be moved (the query holds
  // a pointer to the augmentation). The augmentation is shared because
  // snapshot engines built via from_forked_query() alias the live
  // IncrementalEngine's augmentation (structural fields only — value
  // reads go through the query's own slab store).
  std::shared_ptr<const Augmentation<S>> aug_;
  std::unique_ptr<LeveledQuery<S>> query_;
#if SEPSP_OBS_ENABLED
  std::unique_ptr<EngineCounters> counters_;
#endif
};

}  // namespace sepsp
