// Public facade: preprocess once, query many sources.
//
// Typical use (see examples/quickstart.cpp):
//
//   auto grid   = make_grid({64, 64}, WeightModel::uniform(1, 10), rng);
//   Skeleton sk(grid.graph);
//   auto tree   = build_separator_tree(sk, make_grid_finder({64, 64}));
//   auto engine = SeparatorShortestPaths<>::build(grid.graph, tree);
//   auto result = engine.distances(source);          // one source
//   auto batch  = engine.distances_batch(sources);   // parallel over sources
//
// The facade is templated on the semiring (paper remark iii); the
// default TropicalD computes real-weight shortest paths.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/builder_doubling.hpp"
#include "core/builder_recursive.hpp"
#include "core/query.hpp"
#include "core/query_batch.hpp"
#include "pram/thread_pool.hpp"

namespace sepsp {

/// Which E+ construction to run.
enum class BuilderKind {
  kRecursive,  ///< Algorithm 4.1 (less work, depth grows with d_G)
  kDoubling,   ///< Algorithm 4.3 (polylog depth, +log-factor work)
};

template <Semiring S = TropicalD>
class SeparatorShortestPaths {
 public:
  struct Options {
    BuilderKind builder = BuilderKind::kRecursive;
    ClosureKind closure = ClosureKind::kSquaring;  ///< Alg 4.1 APSP kernel
    DoublingOptions doubling;                      ///< Alg 4.3 knobs
    /// Skip the per-query negative-cycle verification pass (sound when
    /// the input is known cycle-free, e.g. nonnegative weights); saves
    /// one full E u E+ scan per source.
    bool detect_negative_cycles = true;
  };

  /// Preprocesses g against the given decomposition of its skeleton.
  /// Cost: Table 1 preprocessing row (O(n + n^{3 mu}) work for k^mu
  /// separator families). The caller must keep `g` alive (and at a
  /// stable address) for the engine's lifetime; the engine itself is
  /// safely movable (its internal state lives behind unique_ptrs).
  static SeparatorShortestPaths build(const Digraph& g,
                                      const SeparatorTree& tree,
                                      const Options& options = {}) {
    SEPSP_CHECK(tree.num_graph_vertices() == g.num_vertices());
    SeparatorShortestPaths engine(g);
    engine.aug_ = std::make_unique<Augmentation<S>>(
        options.builder == BuilderKind::kRecursive
            ? build_augmentation_recursive<S>(g, tree, options.closure)
            : build_augmentation_doubling<S>(g, tree, options.doubling));
    engine.query_ = std::make_unique<LeveledQuery<S>>(
        g, *engine.aug_, options.detect_negative_cycles);
    return engine;
  }

  /// Wraps a precomputed augmentation (e.g. loaded via
  /// core/serialize.hpp) without rebuilding E+.
  static SeparatorShortestPaths from_augmentation(const Digraph& g,
                                                  Augmentation<S> aug) {
    SEPSP_CHECK(aug.levels.level.size() == g.num_vertices());
    SeparatorShortestPaths engine(g);
    engine.aug_ = std::make_unique<Augmentation<S>>(std::move(aug));
    engine.query_ = std::make_unique<LeveledQuery<S>>(g, *engine.aug_);
    return engine;
  }

  const Digraph& graph() const { return *g_; }
  const Augmentation<S>& augmentation() const { return *aug_; }
  const LeveledQuery<S>& query_engine() const { return *query_; }

  /// Distances from one source; O(ell |E| + |E+|) work.
  QueryResult<S> distances(Vertex source) const { return query_->run(source); }

  /// Lane width of the default batched many-source path: each edge load
  /// relaxes this many sources at once (see core/query_batch.hpp).
  static constexpr std::size_t kBatchLanes = 8;

  /// Distances from many sources (the s-source workload of Corollary
  /// 5.2): sources are grouped into blocks of kBatchLanes relaxed
  /// simultaneously by the source-batched kernel; blocks run in parallel
  /// on the thread pool. Per-source results are identical to
  /// distances() — lanes never interact.
  std::vector<QueryResult<S>> distances_batch(
      std::span<const Vertex> sources) const {
    return distances_batch_lanes<kBatchLanes>(sources);
  }

  /// distances_batch with an explicit compile-time lane count (B = 1
  /// degenerates to the scalar schedule run through the batched kernel).
  template <std::size_t B>
  std::vector<QueryResult<S>> distances_batch_lanes(
      std::span<const Vertex> sources) const {
    std::vector<QueryResult<S>> results(sources.size());
    if (sources.empty()) return results;
    const BatchedLeveledQuery<S, B> batched(*query_);
    const std::size_t blocks = (sources.size() + B - 1) / B;
    pram::ThreadPool::global().parallel_for(
        0, blocks,
        [&](std::size_t blk) {
          const std::size_t lo = blk * B;
          const std::size_t len = std::min(B, sources.size() - lo);
          auto block = batched.run_block(sources.subspan(lo, len));
          for (std::size_t i = 0; i < len; ++i) {
            results[lo + i] = std::move(block[i]);
          }
        },
        /*grain=*/1);
    return results;
  }

  /// The unbatched many-source path: one independent LeveledQuery::run
  /// per source, parallelized across sources. Kept as the baseline the
  /// batched kernel is benchmarked against (bench_x_batched) and as the
  /// fallback when blocks cannot amortize (it re-streams E u E+ once per
  /// source).
  std::vector<QueryResult<S>> distances_batch_persource(
      std::span<const Vertex> sources) const {
    std::vector<QueryResult<S>> results(sources.size());
    pram::ThreadPool::global().parallel_for(0, sources.size(),
                                            [&](std::size_t i) {
                                              results[i] =
                                                  query_->run(sources[i]);
                                            });
    return results;
  }

  /// All-pairs driver (s = n sources).
  std::vector<QueryResult<S>> all_pairs() const {
    std::vector<Vertex> sources(g_->num_vertices());
    for (Vertex v = 0; v < sources.size(); ++v) sources[v] = v;
    return distances_batch(sources);
  }

 private:
  explicit SeparatorShortestPaths(const Digraph& g) : g_(&g) {}

  const Digraph* g_;
  // unique_ptr keeps the augmentation and query at stable addresses so
  // the engine can be moved (the query holds a pointer to the
  // augmentation).
  std::unique_ptr<Augmentation<S>> aug_;
  std::unique_ptr<LeveledQuery<S>> query_;
};

}  // namespace sepsp
