// Public facade: preprocess once, query many sources.
//
// Typical use (see examples/quickstart.cpp):
//
//   auto grid   = make_grid({64, 64}, WeightModel::uniform(1, 10), rng);
//   Skeleton sk(grid.graph);
//   auto tree   = build_separator_tree(sk, make_grid_finder({64, 64}));
//   auto engine = SeparatorShortestPaths<>::build(grid.graph, tree);
//   auto result = engine.distances(source);          // one source
//   auto batch  = engine.distances_batch(sources);   // parallel over sources
//
// The facade is templated on the semiring (paper remark iii); the
// default TropicalD computes real-weight shortest paths.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/builder_doubling.hpp"
#include "core/builder_recursive.hpp"
#include "core/query.hpp"
#include "pram/thread_pool.hpp"

namespace sepsp {

/// Which E+ construction to run.
enum class BuilderKind {
  kRecursive,  ///< Algorithm 4.1 (less work, depth grows with d_G)
  kDoubling,   ///< Algorithm 4.3 (polylog depth, +log-factor work)
};

template <Semiring S = TropicalD>
class SeparatorShortestPaths {
 public:
  struct Options {
    BuilderKind builder = BuilderKind::kRecursive;
    ClosureKind closure = ClosureKind::kSquaring;  ///< Alg 4.1 APSP kernel
    DoublingOptions doubling;                      ///< Alg 4.3 knobs
    /// Skip the per-query negative-cycle verification pass (sound when
    /// the input is known cycle-free, e.g. nonnegative weights); saves
    /// one full E u E+ scan per source.
    bool detect_negative_cycles = true;
  };

  /// Preprocesses g against the given decomposition of its skeleton.
  /// Cost: Table 1 preprocessing row (O(n + n^{3 mu}) work for k^mu
  /// separator families). The caller must keep `g` alive (and at a
  /// stable address) for the engine's lifetime; the engine itself is
  /// safely movable (its internal state lives behind unique_ptrs).
  static SeparatorShortestPaths build(const Digraph& g,
                                      const SeparatorTree& tree,
                                      const Options& options = {}) {
    SEPSP_CHECK(tree.num_graph_vertices() == g.num_vertices());
    SeparatorShortestPaths engine(g);
    engine.aug_ = std::make_unique<Augmentation<S>>(
        options.builder == BuilderKind::kRecursive
            ? build_augmentation_recursive<S>(g, tree, options.closure)
            : build_augmentation_doubling<S>(g, tree, options.doubling));
    engine.query_ = std::make_unique<LeveledQuery<S>>(
        g, *engine.aug_, options.detect_negative_cycles);
    return engine;
  }

  /// Wraps a precomputed augmentation (e.g. loaded via
  /// core/serialize.hpp) without rebuilding E+.
  static SeparatorShortestPaths from_augmentation(const Digraph& g,
                                                  Augmentation<S> aug) {
    SEPSP_CHECK(aug.levels.level.size() == g.num_vertices());
    SeparatorShortestPaths engine(g);
    engine.aug_ = std::make_unique<Augmentation<S>>(std::move(aug));
    engine.query_ = std::make_unique<LeveledQuery<S>>(g, *engine.aug_);
    return engine;
  }

  const Digraph& graph() const { return *g_; }
  const Augmentation<S>& augmentation() const { return *aug_; }
  const LeveledQuery<S>& query_engine() const { return *query_; }

  /// Distances from one source; O(ell |E| + |E+|) work.
  QueryResult<S> distances(Vertex source) const { return query_->run(source); }

  /// Distances from many sources, parallelized across sources (this is
  /// how the s-source bounds of Corollary 5.2 parallelize).
  std::vector<QueryResult<S>> distances_batch(
      std::span<const Vertex> sources) const {
    std::vector<QueryResult<S>> results(sources.size());
    pram::ThreadPool::global().parallel_for(0, sources.size(),
                                            [&](std::size_t i) {
                                              results[i] =
                                                  query_->run(sources[i]);
                                            });
    return results;
  }

  /// All-pairs driver (s = n sources).
  std::vector<QueryResult<S>> all_pairs() const {
    std::vector<Vertex> sources(g_->num_vertices());
    for (Vertex v = 0; v < sources.size(); ++v) sources[v] = v;
    return distances_batch(sources);
  }

 private:
  explicit SeparatorShortestPaths(const Digraph& g) : g_(&g) {}

  const Digraph* g_;
  // unique_ptr keeps the augmentation and query at stable addresses so
  // the engine can be moved (the query holds a pointer to the
  // augmentation).
  std::unique_ptr<Augmentation<S>> aug_;
  std::unique_ptr<LeveledQuery<S>> query_;
};

}  // namespace sepsp
