// Reachability (transitive closure) via the separator decomposition.
//
// The paper's reachability bounds replace the per-node APSP kernels with
// Boolean matrix multiplication M(r). This module is the concrete
// realization: Algorithm 4.1's per-node steps run on word-packed
// BitMatrix kernels (our M(r) = r^3/64 substitute — DESIGN.md
// substitution 2), yielding a Boolean Augmentation that the generic
// LeveledQuery<BooleanSR> answers per-source reachability on in
// O(ell |E| + |E+|) scans.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/augment.hpp"
#include "core/query.hpp"
#include "graph/digraph.hpp"
#include "separator/decomposition.hpp"

namespace sepsp {

/// Builds the Boolean E+ with bit-packed kernels (Algorithm 4.1 shape).
Augmentation<BooleanSR> build_reachability_augmentation(
    const Digraph& g, const SeparatorTree& tree);

/// Preprocess-once, query-many facade for reachability.
class ReachabilityEngine {
 public:
  static ReachabilityEngine build(const Digraph& g, const SeparatorTree& tree);

  const Augmentation<BooleanSR>& augmentation() const { return *aug_; }

  /// reachable[v] == 1 iff v is reachable from source (source included).
  std::vector<std::uint8_t> reachable_from(Vertex source) const;

  /// Access to the underlying leveled query (for diagnostics / custom
  /// multi-source runs).
  const LeveledQuery<BooleanSR>& query() const { return *query_; }

 private:
  ReachabilityEngine() = default;
  const Digraph* g_ = nullptr;
  // Stable addresses so the engine is safely movable (the query holds a
  // pointer to the augmentation).
  std::unique_ptr<Augmentation<BooleanSR>> aug_;
  std::unique_ptr<LeveledQuery<BooleanSR>> query_;
};

}  // namespace sepsp
