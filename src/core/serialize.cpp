#include "core/serialize.hpp"

namespace sepsp {

void save_tree(std::ostream& os, const SeparatorTree& tree) {
  using serial_detail::write_pod;
  using serial_detail::write_vec;
  write_pod(os, serial_detail::kTreeMagic);
  write_pod(os, serial_detail::kTreeVersion);
  write_pod(os, static_cast<std::uint64_t>(tree.num_graph_vertices()));
  write_pod(os, static_cast<std::uint64_t>(tree.num_nodes()));
  for (std::size_t id = 0; id < tree.num_nodes(); ++id) {
    const DecompNode& t = tree.node(id);
    write_vec(os, t.vertices);
    write_vec(os, t.separator);
    write_vec(os, t.boundary);
    write_pod(os, t.parent);
    write_pod(os, t.child[0]);
    write_pod(os, t.child[1]);
    write_pod(os, t.level);
  }
}

std::optional<SeparatorTree> load_tree(std::istream& is, std::string* error) {
  using serial_detail::read_pod;
  using serial_detail::read_vec;
  using serial_detail::set_error;
  std::uint32_t version = 0;
  std::uint64_t num_vertices = 0, num_nodes = 0;
  if (!serial_detail::read_header(is, serial_detail::kTreeMagic,
                                  serial_detail::kTreeVersion,
                                  "separator tree", &version, error)) {
    return std::nullopt;
  }
  if (!read_pod(is, &num_vertices) || !read_pod(is, &num_nodes) ||
      num_nodes == 0 || num_nodes > (1ULL << 32) ||
      num_vertices > (1ULL << 32)) {
    set_error(error, "separator tree: bad node count");
    return std::nullopt;
  }
  // Every node record is at least 40 bytes (three empty vector counts,
  // three links, one level), so a node count the remaining bytes cannot
  // possibly hold is a corruption — reject it before allocating the
  // node array rather than after.
  if (const std::optional<std::uint64_t> left =
          serial_detail::remaining_bytes(is);
      left.has_value() && num_nodes > *left / 40) {
    set_error(error, "separator tree: node count exceeds stream size");
    return std::nullopt;
  }
  std::vector<DecompNode> nodes(num_nodes);
  for (DecompNode& t : nodes) {
    if (!read_vec(is, &t.vertices, num_vertices) ||
        !read_vec(is, &t.separator, num_vertices) ||
        !read_vec(is, &t.boundary, num_vertices) || !read_pod(is, &t.parent) ||
        !read_pod(is, &t.child[0]) || !read_pod(is, &t.child[1]) ||
        !read_pod(is, &t.level)) {
      set_error(error, "separator tree: truncated node record");
      return std::nullopt;
    }
    for (const Vertex v : t.vertices) {
      if (v >= num_vertices) {
        set_error(error, "separator tree: vertex id out of range");
        return std::nullopt;
      }
    }
    for (const std::int32_t c : {t.parent, t.child[0], t.child[1]}) {
      if (c >= static_cast<std::int64_t>(num_nodes) || c < -1) {
        set_error(error, "separator tree: node link out of range");
        return std::nullopt;
      }
    }
  }
  return SeparatorTree::from_nodes(std::move(nodes), num_vertices);
}

}  // namespace sepsp
