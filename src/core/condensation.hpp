// Reachability through SCC condensation.
//
// Strongly connected components are mutually reachable, so reachability
// factors through the condensation DAG: contract SCCs (Tarjan), run the
// separator reachability engine on the (often much smaller) DAG, and
// answer vertex queries via component ids. This mirrors how the
// related-work planar reachability results (Kao–Klein / Kao–Shannon)
// lean on strongly-connected-component machinery before attacking the
// acyclic core.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/reachability.hpp"
#include "graph/digraph.hpp"

namespace sepsp {

class CondensedReachability {
 public:
  /// Contracts g's SCCs and preprocesses the condensation. The input
  /// graph may be dropped afterwards (queries need only the component
  /// map, which is copied).
  static CondensedReachability build(const Digraph& g);

  /// reachable[v] == 1 iff v is reachable from source in the original
  /// graph (source included).
  std::vector<std::uint8_t> reachable_from(Vertex source) const;

  std::size_t num_components() const;
  std::size_t condensation_edges() const;
  const ReachabilityEngine& engine() const;

 private:
  CondensedReachability() = default;
  struct State;
  std::shared_ptr<const State> state_;
};

}  // namespace sepsp
