#include "core/incremental.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <limits>
#include <optional>
#include <unordered_map>

#include "util/vertex_index.hpp"  // detail::index_of
#include "core/builder_scratch.hpp"    // detail::ScratchPool
#include "obs/obs.hpp"
#include "pram/thread_pool.hpp"
#include "semiring/matrix.hpp"

namespace sepsp {

using detail::index_of;
using detail::kNpos;
using S = TropicalD;

namespace {

/// Per-task arena for one node recomputation, leased from a ScratchPool
/// (never thread_local: the pool's help-first joins can re-enter a
/// worker mid-task). Matrices reuse their high-water storage across
/// leases, so a steady update stream recomputes allocation-free.
struct IncrScratch {
  Matrix<S> local;             // leaf: full subgraph matrix
  Matrix<S> hs;                // internal: separator closure
  Matrix<S> b_to_s, s_to_b;    // internal: boundary<->separator blocks
  Matrix<S> tmp, through;      // internal: product staging
  Matrix<S> result;            // the recomputed boundary matrix
  std::vector<Shortcut<S>> old_edges;  // stashed pre-recompute edges
};

}  // namespace

struct IncrementalEngine::State {
  const Digraph* g = nullptr;
  const SeparatorTree* tree = nullptr;

  /// Effective weight per flat arc index (indexes g->arcs()).
  std::vector<double> weights;

  /// Retained Algorithm-4.1 state: per-node boundary matrices and the
  /// shortcut edges each node contributes (pair structure is fixed; only
  /// values change under reweighting).
  std::vector<Matrix<S>> bnd;
  std::vector<std::vector<Shortcut<S>>> per_node_edges;

  /// E+ with one stable slot per distinct (from, to) pair — including
  /// currently-unreachable pairs (value +inf), which reweighting may
  /// activate. slot_of mirrors per_node_edges; owners is a CSR from slot
  /// to its contributing (node, index-in-node) entries.
  std::vector<std::vector<std::uint32_t>> slot_of;
  std::vector<std::size_t> owner_offset;        // size slots+1
  std::vector<std::pair<std::uint32_t, std::uint32_t>> owner_entries;

  /// Staged changes. dirty_seen doubles as apply()'s queued flag (set
  /// for every node on the recompute worklist, cleared when the batch
  /// finishes); arc_staged dedupes updated_arcs.
  std::vector<std::size_t> dirty_leaves;
  std::vector<std::uint8_t> dirty_seen;    // per tree node
  std::vector<std::size_t> updated_arcs;   // flat arc indices
  std::vector<std::uint8_t> arc_staged;    // per flat arc

  /// Memoized arc -> containing leaves, keyed by the first arc of the
  /// (u, v) parallel range (parallel arcs share endpoints, hence leaf
  /// sets). An empty list is a legitimate value (both-endpoint leaves
  /// may not exist), so presence is tracked separately.
  std::vector<std::vector<std::uint32_t>> arc_leaves;
  std::vector<std::uint8_t> arc_leaves_known;

  /// Structural recompute plans, built once: the index maps recompute
  /// would otherwise re-derive with index_of linear scans on every
  /// batch. For a leaf: (local i, local j, flat arc) triples plus the
  /// boundary's positions in the vertex list. For an internal node: the
  /// separator's and boundary's positions in each child's boundary
  /// (kNoPos where absent).
  static constexpr std::uint32_t kNoPos = 0xffffffffu;
  struct LeafPlan {
    std::vector<std::array<std::uint32_t, 3>> arcs;
    std::vector<std::uint32_t> boundary_pos;
  };
  struct ChildMaps {
    std::array<std::vector<std::uint32_t>, 2> s_pos, b_pos;
  };
  std::vector<LeafPlan> leaf_plan;    // per node id, empty for internal
  std::vector<ChildMaps> child_maps;  // per node id, empty for leaves

  /// Per-entry change flags of the latest recompute, CSR-flat beside
  /// slot_of (entry_off is the prefix sum of slot_of sizes). Empty
  /// during the initial build, which needs no re-minimization.
  std::vector<std::size_t> entry_off;
  std::vector<std::uint8_t> entry_changed;

  /// Epoch-stamped slot marks: the touched-slot worklist of apply()
  /// dedupes via mark_token instead of clearing a bitmap per batch.
  std::vector<std::uint64_t> slot_mark;
  std::uint64_t mark_token = 0;

  /// Staging buffers for the pooled re-minimize combines (high-water
  /// storage reused across batches).
  std::vector<S::Value> remin_values;
  std::vector<std::uint8_t> remin_changed;

  /// Applied update batches (the version tag snapshots carry).
  std::uint64_t epoch = 0;

  bool run_parallel = true;
  ApplyStats last_stats;

  Augmentation<S> aug;
  std::optional<LeveledQuery<S>> query;
  std::optional<detail::ScratchPool<IncrScratch>> scratch;

  double effective(const Arc& a) const {
    return weights[static_cast<std::size_t>(&a - g->arcs().data())];
  }

  void recompute_leaf(std::size_t id, IncrScratch& sc);
  void recompute_internal(std::size_t id, IncrScratch& sc);

  /// Recomputes node `id` into leased scratch and, when the boundary
  /// matrix changed, copy-assigns it into bnd[id] (capacity reuse).
  /// Writes only this node's rows (per_node_edges[id], bnd[id], its
  /// entry_changed range) — safe to run concurrently for distinct nodes
  /// of one tree level. Two distinct change signals come back: `matrix`
  /// (the boundary matrix — drives upward propagation) and `edges` (the
  /// contributed shortcut values — drives slot re-minimization; an
  /// internal node's S x S closure entries can change while its
  /// boundary matrix does not, and vice versa). The per-entry diff is
  /// recorded in entry_changed so apply() re-minimizes only slots whose
  /// contributed value actually moved, not every slot of a changed
  /// node.
  struct Recomputed {
    bool matrix = false;
    bool edges = false;
  };
  Recomputed recompute_node(std::size_t id, IncrScratch& sc) {
    sc.old_edges.swap(per_node_edges[id]);
    if (tree->node(id).is_leaf()) {
      recompute_leaf(id, sc);
    } else {
      recompute_internal(id, sc);
    }
    Recomputed r;
    r.matrix = !(sc.result == bnd[id]);
    if (r.matrix) bnd[id] = sc.result;
    const std::vector<Shortcut<S>>& now = per_node_edges[id];
    if (sc.old_edges.size() != now.size()) {
      // Initial build (old list empty): every entry is new. The pair
      // structure is fixed afterwards, so sizes never diverge again.
      r.edges = true;
      if (!entry_changed.empty()) {
        std::fill_n(entry_changed.begin() +
                        static_cast<std::ptrdiff_t>(entry_off[id]),
                    now.size(), std::uint8_t{1});
      }
    } else {
      std::uint8_t* flags =
          entry_changed.empty() ? nullptr : entry_changed.data() + entry_off[id];
      bool any = false;
      for (std::size_t j = 0; j < now.size(); ++j) {
        const bool moved = std::memcmp(&sc.old_edges[j].value, &now[j].value,
                                       sizeof(S::Value)) != 0;
        if (flags) flags[j] = moved ? 1 : 0;
        any = any || moved;
      }
      r.edges = any;
    }
    return r;
  }
};

void IncrementalEngine::State::recompute_leaf(std::size_t id,
                                              IncrScratch& sc) {
  const DecompNode& t = tree->node(id);
  const LeafPlan& plan = leaf_plan[id];
  Matrix<S>& local = sc.local;
  local.reset(t.vertices.size());
  for (std::size_t i = 0; i < t.vertices.size(); ++i) local.at(i, i) = S::one();
  for (const auto& e : plan.arcs) local.merge(e[0], e[1], weights[e[2]]);
  floyd_warshall(local);
  const std::span<const Vertex> b = t.boundary;
  Matrix<S>& bm = sc.result;
  bm.reset(b.size());
  per_node_edges[id].clear();
  for (std::size_t p = 0; p < b.size(); ++p) {
    const std::uint32_t ip = plan.boundary_pos[p];
    for (std::size_t q = 0; q < b.size(); ++q) {
      bm.at(p, q) = local.at(ip, plan.boundary_pos[q]);
      if (p != q) per_node_edges[id].push_back({b[p], b[q], bm.at(p, q)});
    }
  }
}

void IncrementalEngine::State::recompute_internal(std::size_t id,
                                                  IncrScratch& sc) {
  const DecompNode& t = tree->node(id);
  const std::span<const Vertex> st = t.separator;
  const std::span<const Vertex> bt = t.boundary;
  const std::array<std::size_t, 2> kids = {
      static_cast<std::size_t>(t.child[0]),
      static_cast<std::size_t>(t.child[1])};
  const ChildMaps& maps = child_maps[id];
  per_node_edges[id].clear();

  Matrix<S>& hs = sc.hs;
  hs.reset(st.size());
  for (int c = 0; c < 2; ++c) {
    const Matrix<S>& cm = bnd[kids[c]];
    const std::vector<std::uint32_t>& sp = maps.s_pos[c];
    for (std::size_t i = 0; i < st.size(); ++i) {
      for (std::size_t j = 0; j < st.size(); ++j) {
        hs.merge(i, j, cm.at(sp[i], sp[j]));
      }
    }
  }
  floyd_warshall(hs);
  for (std::size_t i = 0; i < st.size(); ++i) {
    for (std::size_t j = 0; j < st.size(); ++j) {
      if (i != j) per_node_edges[id].push_back({st[i], st[j], hs.at(i, j)});
    }
  }

  if (bt.empty()) {
    sc.result.reset(0);
    return;
  }
  Matrix<S>& b_to_s = sc.b_to_s;
  Matrix<S>& s_to_b = sc.s_to_b;
  b_to_s.reset(bt.size(), st.size());
  s_to_b.reset(st.size(), bt.size());
  for (int c = 0; c < 2; ++c) {
    const Matrix<S>& cm = bnd[kids[c]];
    const std::vector<std::uint32_t>& sp = maps.s_pos[c];
    for (std::size_t p = 0; p < bt.size(); ++p) {
      const std::uint32_t bp = maps.b_pos[c][p];
      if (bp == kNoPos) continue;
      for (std::size_t q = 0; q < st.size(); ++q) {
        b_to_s.merge(p, q, cm.at(bp, sp[q]));
        s_to_b.merge(q, p, cm.at(sp[q], bp));
      }
    }
  }
  multiply_into(b_to_s, hs, sc.tmp);
  multiply_into(sc.tmp, s_to_b, sc.through);
  Matrix<S>& bm = sc.result;
  bm.reset(bt.size());
  for (std::size_t p = 0; p < bt.size(); ++p) bm.at(p, p) = S::one();
  for (std::size_t p = 0; p < bt.size(); ++p) {
    for (std::size_t q = 0; q < bt.size(); ++q) {
      bm.merge(p, q, sc.through.at(p, q));
    }
  }
  for (int c = 0; c < 2; ++c) {
    const Matrix<S>& cm = bnd[kids[c]];
    for (std::size_t p = 0; p < bt.size(); ++p) {
      const std::uint32_t bp = maps.b_pos[c][p];
      if (bp == kNoPos) continue;
      for (std::size_t q = 0; q < bt.size(); ++q) {
        const std::uint32_t bq = maps.b_pos[c][q];
        if (bq != kNoPos) bm.merge(p, q, cm.at(bp, bq));
      }
    }
  }
  for (std::size_t p = 0; p < bt.size(); ++p) {
    for (std::size_t q = 0; q < bt.size(); ++q) {
      if (p != q) per_node_edges[id].push_back({bt[p], bt[q], bm.at(p, q)});
    }
  }
}

IncrementalEngine IncrementalEngine::build(const Digraph& g,
                                           const SeparatorTree& tree) {
  SEPSP_CHECK(tree.num_graph_vertices() == g.num_vertices());
  IncrementalEngine engine;
  engine.state_ = std::make_shared<State>();
  State& s = *engine.state_;
  s.g = &g;
  s.tree = &tree;
  s.weights.reserve(g.num_edges());
  for (const Arc& a : g.arcs()) s.weights.push_back(a.weight);
  s.bnd.resize(tree.num_nodes());
  s.per_node_edges.resize(tree.num_nodes());
  s.dirty_seen.assign(tree.num_nodes(), 0);
  s.arc_staged.assign(g.num_edges(), 0);
  s.arc_leaves.resize(g.num_edges());
  s.arc_leaves_known.assign(g.num_edges(), 0);
  s.scratch.emplace([] { return std::make_unique<IncrScratch>(); });

  s.aug.levels = compute_levels(tree);
  s.aug.height = tree.height();
  s.aug.ell = leaf_diameter_bound(tree);

  // Structural plans, derived once: every recompute of the same node
  // reuses them instead of re-running index_of scans (those scans were
  // a sizeable slice of the per-batch critical path).
  s.leaf_plan.resize(tree.num_nodes());
  s.child_maps.resize(tree.num_nodes());
  for (std::size_t id = 0; id < tree.num_nodes(); ++id) {
    const DecompNode& t = tree.node(id);
    if (t.is_leaf()) {
      State::LeafPlan& plan = s.leaf_plan[id];
      const std::span<const Vertex> verts = t.vertices;
      for (std::size_t i = 0; i < verts.size(); ++i) {
        for (const Arc& a : g.out(verts[i])) {
          const std::size_t j = index_of(verts, a.to);
          if (j == kNpos) continue;
          plan.arcs.push_back(
              {static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j),
               static_cast<std::uint32_t>(&a - g.arcs().data())});
        }
      }
      plan.boundary_pos.reserve(t.boundary.size());
      for (const Vertex v : t.boundary) {
        const std::size_t ip = index_of(verts, v);
        SEPSP_CHECK(ip != kNpos);
        plan.boundary_pos.push_back(static_cast<std::uint32_t>(ip));
      }
    } else {
      State::ChildMaps& maps = s.child_maps[id];
      for (int c = 0; c < 2; ++c) {
        const std::span<const Vertex> cb =
            tree.node(static_cast<std::size_t>(t.child[c])).boundary;
        maps.s_pos[c].reserve(t.separator.size());
        for (const Vertex v : t.separator) {
          const std::size_t i = index_of(cb, v);
          SEPSP_CHECK(i != kNpos);
          maps.s_pos[c].push_back(static_cast<std::uint32_t>(i));
        }
        maps.b_pos[c].reserve(t.boundary.size());
        for (const Vertex v : t.boundary) {
          const std::size_t i = index_of(cb, v);
          maps.b_pos[c].push_back(i == kNpos ? State::kNoPos
                                             : static_cast<std::uint32_t>(i));
        }
      }
    }
  }

  const auto by_level = tree.ids_by_level();
  {
    auto sc = s.scratch->acquire();
    for (std::size_t lvl = by_level.size(); lvl-- > 0;) {
      for (const std::size_t id : by_level[lvl]) {
        s.recompute_node(id, *sc);
      }
    }
  }

  // Stable slot layout: one aug shortcut per distinct (from, to) pair
  // (unreachable pairs kept at +inf so reweighting can activate them),
  // plus the owner CSR for value re-minimization.
  auto pack = [](Vertex a, Vertex b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  std::unordered_map<std::uint64_t, std::uint32_t> slot_index;
  s.slot_of.resize(tree.num_nodes());
  for (std::size_t id = 0; id < tree.num_nodes(); ++id) {
    s.slot_of[id].reserve(s.per_node_edges[id].size());
    for (const auto& e : s.per_node_edges[id]) {
      const auto [it, inserted] = slot_index.try_emplace(
          pack(e.from, e.to),
          static_cast<std::uint32_t>(s.aug.shortcuts.size()));
      if (inserted) s.aug.shortcuts.push_back({e.from, e.to, S::zero()});
      s.slot_of[id].push_back(it->second);
    }
  }
  // Owner CSR + initial values.
  std::vector<std::size_t> counts(s.aug.shortcuts.size(), 0);
  for (const auto& slots : s.slot_of) {
    for (const std::uint32_t slot : slots) ++counts[slot];
  }
  s.owner_offset.assign(s.aug.shortcuts.size() + 1, 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    s.owner_offset[i + 1] = s.owner_offset[i] + counts[i];
  }
  s.owner_entries.resize(s.owner_offset.back());
  std::vector<std::size_t> cursor(s.owner_offset.begin(),
                                  s.owner_offset.end() - 1);
  for (std::size_t id = 0; id < tree.num_nodes(); ++id) {
    for (std::size_t k = 0; k < s.slot_of[id].size(); ++k) {
      const std::uint32_t slot = s.slot_of[id][k];
      s.owner_entries[cursor[slot]++] = {static_cast<std::uint32_t>(id),
                                         static_cast<std::uint32_t>(k)};
      s.aug.shortcuts[slot].value = S::combine(
          s.aug.shortcuts[slot].value, s.per_node_edges[id][k].value);
    }
  }
  s.slot_mark.assign(s.aug.shortcuts.size(), 0);
  s.entry_off.assign(tree.num_nodes() + 1, 0);
  for (std::size_t id = 0; id < tree.num_nodes(); ++id) {
    s.entry_off[id + 1] = s.entry_off[id] + s.slot_of[id].size();
  }
  s.entry_changed.assign(s.entry_off.back(), 0);

  s.query.emplace(g, s.aug);
  return engine;
}

void IncrementalEngine::update_edge(Vertex u, Vertex v, double weight) {
  State& s = *state_;
  SEPSP_CHECK(u < s.g->num_vertices() && v < s.g->num_vertices());
  // out(u) is sorted by target, so the parallel (u, v) arcs form one
  // contiguous range found by binary search — no per-call scan of the
  // whole adjacency list.
  const auto arcs = s.g->out(u);
  const auto lo = std::lower_bound(
      arcs.begin(), arcs.end(), v,
      [](const Arc& a, Vertex target) { return a.to < target; });
  const auto hi = std::upper_bound(
      lo, arcs.end(), v,
      [](Vertex target, const Arc& a) { return target < a.to; });
  SEPSP_CHECK_MSG(lo != hi, "update_edge: arc does not exist");
  const std::size_t base =
      static_cast<std::size_t>(arcs.data() - s.g->arcs().data());
  const std::size_t first =
      base + static_cast<std::size_t>(lo - arcs.begin());
  for (auto it = lo; it != hi; ++it) {
    const std::size_t arc =
        base + static_cast<std::size_t>(it - arcs.begin());
    s.weights[arc] = weight;
    if (!s.arc_staged[arc]) {
      s.arc_staged[arc] = 1;
      s.updated_arcs.push_back(arc);
    }
  }

  // Only leaves read edge weights directly (internal nodes consume
  // their children's matrices), so seed dirtiness at the leaves whose
  // subgraph contains the arc; apply() propagates upward exactly as far
  // as matrices actually change. The containing-leaf set depends only
  // on the endpoints, so it is memoized per parallel-arc range: a
  // streaming workload walks the subtree once per arc, ever.
  if (!s.arc_leaves_known[first]) {
    std::vector<std::uint32_t> leaves;
    std::vector<std::size_t> pending{0};
    while (!pending.empty()) {
      const std::size_t id = pending.back();
      pending.pop_back();
      const DecompNode& t = s.tree->node(id);
      if (t.is_leaf()) {
        leaves.push_back(static_cast<std::uint32_t>(id));
        continue;
      }
      for (const std::int32_t child : t.child) {
        const DecompNode& c = s.tree->node(static_cast<std::size_t>(child));
        if (std::binary_search(c.vertices.begin(), c.vertices.end(), u) &&
            std::binary_search(c.vertices.begin(), c.vertices.end(), v)) {
          pending.push_back(static_cast<std::size_t>(child));
        }
      }
    }
    s.arc_leaves[first] = std::move(leaves);
    s.arc_leaves_known[first] = 1;
  }
  for (const std::uint32_t id : s.arc_leaves[first]) {
    if (!s.dirty_seen[id]) {
      s.dirty_seen[id] = 1;
      s.dirty_leaves.push_back(id);
    }
  }
}

std::size_t IncrementalEngine::apply() {
  State& s = *state_;
  if (s.dirty_leaves.empty() && s.updated_arcs.empty()) return 0;
  SEPSP_TRACE_SPAN("incremental.apply");
  // Recompute bottom-up, level by level. A node is recomputed when a
  // weight it reads changed (leaves) or when a child's boundary matrix
  // changed; propagation stops as soon as a recomputation reproduces the
  // old matrix, so local updates rarely climb far. Within a level the
  // dirty nodes are independent (each reads its children — a strictly
  // deeper, already-final level — and writes only its own rows), so
  // they run on the work-stealing pool; the change flags are then
  // folded serially in worklist order, which makes the recomputed list
  // and parent enqueue order — hence the whole batch — bit-identical to
  // the serial path.
  std::vector<std::vector<std::size_t>> by_level(s.tree->height() + 1);
  for (const std::size_t id : s.dirty_leaves) {
    by_level[s.tree->node(id).level].push_back(id);  // dirty_seen already 1
  }
  ++s.mark_token;
  std::vector<std::size_t> recomputed;
  std::vector<std::uint32_t> touched;
  std::vector<State::Recomputed> changed;
  for (std::size_t lvl = by_level.size(); lvl-- > 0;) {
    // The level worklist can grow while deeper levels run (parent
    // enqueue), but never once its own level starts.
    const std::vector<std::size_t>& ids = by_level[lvl];
    if (ids.empty()) continue;
    changed.assign(ids.size(), {});
    // One scratch lease per block, not per node: the lease comes off a
    // mutex-guarded pool, and a wide level would otherwise serialize on
    // it.
    auto run_block = [&](std::size_t lo, std::size_t hi) {
      auto sc = s.scratch->acquire();
      for (std::size_t k = lo; k < hi; ++k) {
        changed[k] = s.recompute_node(ids[k], *sc);
      }
    };
    if (s.run_parallel && ids.size() > 1) {
      pram::ThreadPool::global().parallel_blocks(0, ids.size(), run_block,
                                                 /*grain=*/2);
    } else {
      run_block(0, ids.size());
    }
    // Serial fold in worklist order: bit-identical to the serial path.
    // Only slots whose contributed value actually moved (the per-entry
    // diff recompute_node recorded) are marked for re-minimization — an
    // entry that kept its value cannot move its slot's minimum, and on
    // big nodes most entries sit far from any dirty leaf.
    for (std::size_t k = 0; k < ids.size(); ++k) {
      const std::size_t id = ids[k];
      recomputed.push_back(id);
      if (changed[k].edges) {
        const std::uint8_t* flags = s.entry_changed.data() + s.entry_off[id];
        const std::vector<std::uint32_t>& slots = s.slot_of[id];
        for (std::size_t j = 0; j < slots.size(); ++j) {
          if (!flags[j]) continue;
          const std::uint32_t slot = slots[j];
          if (s.slot_mark[slot] != s.mark_token) {
            s.slot_mark[slot] = s.mark_token;
            touched.push_back(slot);
          }
        }
      }
      const std::int32_t parent = s.tree->node(id).parent;
      if (parent >= 0 && changed[k].matrix) {
        const auto pid = static_cast<std::size_t>(parent);
        if (!s.dirty_seen[pid]) {
          s.dirty_seen[pid] = 1;
          by_level[s.tree->node(pid).level].push_back(pid);
        }
      }
    }
  }

  // Re-minimize only the touched slots — O(touched x owners) instead of
  // a full O(|E+|) scan per batch. Each slot's minimum depends only on
  // its own owner entries, so the combines (and the did-it-change
  // checks) run on the pool into staging buffers; the refreshes — the
  // only writes into shared bucket storage — then run serially in
  // worklist order, identical to the serial path. Most touched slots
  // re-minimize to their old value (the owner that changed was not the
  // minimum): the bucket already holds it, so the refresh — and its
  // slab detach — is skipped. Bitwise comparison keeps the skip exactly
  // as strict as the parity contract.
  s.remin_values.resize(touched.size());
  s.remin_changed.assign(touched.size(), 0);
  const auto combine_one = [&](std::size_t i) {
    const std::uint32_t slot = touched[i];
    auto value = S::zero();
    for (std::size_t o = s.owner_offset[slot]; o < s.owner_offset[slot + 1];
         ++o) {
      const auto [node, k] = s.owner_entries[o];
      value = S::combine(value, s.per_node_edges[node][k].value);
    }
    s.remin_values[i] = value;
    s.remin_changed[i] =
        std::memcmp(&value, &s.aug.shortcuts[slot].value, sizeof(value)) != 0;
  };
  if (s.run_parallel && touched.size() > 4096) {
    pram::ThreadPool::global().parallel_for(0, touched.size(), combine_one,
                                            /*grain=*/512);
  } else {
    for (std::size_t i = 0; i < touched.size(); ++i) combine_one(i);
  }
  std::size_t slabs_copied = 0;
  for (std::size_t i = 0; i < touched.size(); ++i) {
    if (!s.remin_changed[i]) continue;
    const std::uint32_t slot = touched[i];
    const S::Value value = s.remin_values[i];
    s.aug.shortcuts[slot].value = value;
    slabs_copied += s.query->refresh_shortcut(slot, value);
  }
  for (const std::size_t arc : s.updated_arcs) {
    slabs_copied += s.query->refresh_base(arc, S::from_weight(s.weights[arc]));
  }

  s.last_stats = {recomputed.size(), touched.size(), slabs_copied};
  SEPSP_OBS_ONLY({
    obs::counter("incr.nodes_recomputed").add(recomputed.size());
    obs::counter("incr.slots_touched").add(touched.size());
    obs::counter("incr.slabs_copied").add(slabs_copied);
  })

  for (const std::size_t id : recomputed) s.dirty_seen[id] = 0;
  s.dirty_leaves.clear();
  for (const std::size_t arc : s.updated_arcs) s.arc_staged[arc] = 0;
  s.updated_arcs.clear();
  ++s.epoch;
  return recomputed.size();
}

void IncrementalEngine::set_parallel_apply(bool enabled) {
  state_->run_parallel = enabled;
}

bool IncrementalEngine::parallel_apply() const { return state_->run_parallel; }

IncrementalEngine::ApplyStats IncrementalEngine::last_apply_stats() const {
  return state_->last_stats;
}

std::uint64_t IncrementalEngine::epoch() const { return state_->epoch; }

const Digraph& IncrementalEngine::graph() const { return *state_->g; }

const SeparatorTree& IncrementalEngine::tree() const { return *state_->tree; }

std::span<const double> IncrementalEngine::weights() const {
  return state_->weights;
}

IncrementalEngine::Snapshot IncrementalEngine::snapshot(
    const SeparatorShortestPaths<TropicalD>::Options& options) const {
  State& s = *state_;
  SEPSP_CHECK_MSG(s.dirty_leaves.empty() && s.updated_arcs.empty(),
                  "staged updates pending — call apply() before snapshot()");
  // Structural fork: the snapshot aliases every value slab of the live
  // query engine (future refreshes detach only touched slabs) and keeps
  // this engine's whole state alive through an aliasing handle to the
  // augmentation — no copies proportional to the structure. The aug
  // values may keep mutating under later apply() calls; the snapshot
  // never reads them (its query resolves values from its own forked
  // slabs).
  std::shared_ptr<const Augmentation<S>> aug_alias(state_, &s.aug);
  Snapshot snap;
  snap.epoch = s.epoch;
  snap.engine = SeparatorShortestPaths<S>::freeze(
      SeparatorShortestPaths<S>::from_forked_query(
          *s.g, std::move(aug_alias),
          s.query->fork_shared(options.query.detect_negative_cycles),
          options));
  return snap;
}

double IncrementalEngine::weight(Vertex u, Vertex v) const {
  const State& s = *state_;
  const auto arcs = s.g->out(u);
  const auto lo = std::lower_bound(
      arcs.begin(), arcs.end(), v,
      [](const Arc& a, Vertex target) { return a.to < target; });
  const auto hi = std::upper_bound(
      lo, arcs.end(), v,
      [](Vertex target, const Arc& a) { return target < a.to; });
  const std::size_t base =
      static_cast<std::size_t>(arcs.data() - s.g->arcs().data());
  double best = std::numeric_limits<double>::infinity();
  for (auto it = lo; it != hi; ++it) {
    const std::size_t arc =
        base + static_cast<std::size_t>(it - arcs.begin());
    best = std::min(best, s.weights[arc]);
  }
  return best;
}

QueryResult<TropicalD> IncrementalEngine::distances(Vertex source) const {
  SEPSP_CHECK_MSG(state_->dirty_leaves.empty() && state_->updated_arcs.empty(),
                  "staged updates pending — call apply() first");
  return state_->query->run(source);
}

const Augmentation<TropicalD>& IncrementalEngine::augmentation() const {
  return state_->aug;
}

const LeveledQuery<TropicalD>& IncrementalEngine::query_engine() const {
  return *state_->query;
}

}  // namespace sepsp
