#include "core/incremental.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <optional>
#include <set>
#include <unordered_map>

#include "core/builder_recursive.hpp"  // detail::index_of
#include "semiring/matrix.hpp"

namespace sepsp {

using detail::index_of;
using detail::kNpos;
using S = TropicalD;

struct IncrementalEngine::State {
  const Digraph* g = nullptr;
  const SeparatorTree* tree = nullptr;

  /// Effective weight per flat arc index (indexes g->arcs()).
  std::vector<double> weights;

  /// Retained Algorithm-4.1 state: per-node boundary matrices and the
  /// shortcut edges each node contributes (pair structure is fixed; only
  /// values change under reweighting).
  std::vector<Matrix<S>> bnd;
  std::vector<std::vector<Shortcut<S>>> per_node_edges;

  /// E+ with one stable slot per distinct (from, to) pair — including
  /// currently-unreachable pairs (value +inf), which reweighting may
  /// activate. slot_of mirrors per_node_edges; owners is a CSR from slot
  /// to its contributing (node, index-in-node) entries.
  std::vector<std::vector<std::uint32_t>> slot_of;
  std::vector<std::size_t> owner_offset;        // size slots+1
  std::vector<std::pair<std::uint32_t, std::uint32_t>> owner_entries;

  /// Staged changes.
  std::set<std::size_t> dirty;             // leaf ids to recompute
  std::vector<std::size_t> updated_arcs;   // flat arc indices

  /// Applied update batches (the version tag snapshots carry).
  std::uint64_t epoch = 0;

  Augmentation<S> aug;
  std::optional<LeveledQuery<S>> query;

  double effective(const Arc& a) const {
    return weights[static_cast<std::size_t>(&a - g->arcs().data())];
  }

  void recompute_leaf(std::size_t id);
  void recompute_internal(std::size_t id);
};

void IncrementalEngine::State::recompute_leaf(std::size_t id) {
  const DecompNode& t = tree->node(id);
  const std::span<const Vertex> verts = t.vertices;
  Matrix<S> local(verts.size());
  for (std::size_t i = 0; i < verts.size(); ++i) {
    local.at(i, i) = S::one();
    for (const Arc& a : g->out(verts[i])) {
      const std::size_t j = index_of(verts, a.to);
      if (j != kNpos) local.merge(i, j, effective(a));
    }
  }
  floyd_warshall(local);
  const std::span<const Vertex> b = t.boundary;
  Matrix<S> bm(b.size());
  per_node_edges[id].clear();
  for (std::size_t p = 0; p < b.size(); ++p) {
    const std::size_t ip = index_of(verts, b[p]);
    for (std::size_t q = 0; q < b.size(); ++q) {
      bm.at(p, q) = local.at(ip, index_of(verts, b[q]));
      if (p != q) per_node_edges[id].push_back({b[p], b[q], bm.at(p, q)});
    }
  }
  bnd[id] = std::move(bm);
}

void IncrementalEngine::State::recompute_internal(std::size_t id) {
  const DecompNode& t = tree->node(id);
  const std::span<const Vertex> st = t.separator;
  const std::span<const Vertex> bt = t.boundary;
  const std::array<std::size_t, 2> kids = {
      static_cast<std::size_t>(t.child[0]),
      static_cast<std::size_t>(t.child[1])};
  per_node_edges[id].clear();

  std::array<std::vector<std::size_t>, 2> s_in_child;
  std::array<std::vector<std::size_t>, 2> b_in_child;
  for (int c = 0; c < 2; ++c) {
    const std::span<const Vertex> cb = tree->node(kids[c]).boundary;
    s_in_child[c].resize(st.size());
    for (std::size_t i = 0; i < st.size(); ++i) {
      s_in_child[c][i] = index_of(cb, st[i]);
      SEPSP_CHECK(s_in_child[c][i] != kNpos);
    }
    b_in_child[c].resize(bt.size());
    for (std::size_t p = 0; p < bt.size(); ++p) {
      b_in_child[c][p] = index_of(cb, bt[p]);
    }
  }

  Matrix<S> hs(st.size());
  for (int c = 0; c < 2; ++c) {
    const Matrix<S>& cm = bnd[kids[c]];
    for (std::size_t i = 0; i < st.size(); ++i) {
      for (std::size_t j = 0; j < st.size(); ++j) {
        hs.merge(i, j, cm.at(s_in_child[c][i], s_in_child[c][j]));
      }
    }
  }
  floyd_warshall(hs);
  for (std::size_t i = 0; i < st.size(); ++i) {
    for (std::size_t j = 0; j < st.size(); ++j) {
      if (i != j) per_node_edges[id].push_back({st[i], st[j], hs.at(i, j)});
    }
  }

  if (bt.empty()) {
    bnd[id] = Matrix<S>(0);
    return;
  }
  Matrix<S> b_to_s(bt.size(), st.size());
  Matrix<S> s_to_b(st.size(), bt.size());
  for (int c = 0; c < 2; ++c) {
    const Matrix<S>& cm = bnd[kids[c]];
    for (std::size_t p = 0; p < bt.size(); ++p) {
      const std::size_t bp = b_in_child[c][p];
      if (bp == kNpos) continue;
      for (std::size_t q = 0; q < st.size(); ++q) {
        b_to_s.merge(p, q, cm.at(bp, s_in_child[c][q]));
        s_to_b.merge(q, p, cm.at(s_in_child[c][q], bp));
      }
    }
  }
  const Matrix<S> through = multiply(multiply(b_to_s, hs), s_to_b);
  Matrix<S> bm(bt.size());
  for (std::size_t p = 0; p < bt.size(); ++p) bm.at(p, p) = S::one();
  for (std::size_t p = 0; p < bt.size(); ++p) {
    for (std::size_t q = 0; q < bt.size(); ++q) {
      bm.merge(p, q, through.at(p, q));
    }
  }
  for (int c = 0; c < 2; ++c) {
    const Matrix<S>& cm = bnd[kids[c]];
    for (std::size_t p = 0; p < bt.size(); ++p) {
      const std::size_t bp = b_in_child[c][p];
      if (bp == kNpos) continue;
      for (std::size_t q = 0; q < bt.size(); ++q) {
        const std::size_t bq = b_in_child[c][q];
        if (bq != kNpos) bm.merge(p, q, cm.at(bp, bq));
      }
    }
  }
  for (std::size_t p = 0; p < bt.size(); ++p) {
    for (std::size_t q = 0; q < bt.size(); ++q) {
      if (p != q) per_node_edges[id].push_back({bt[p], bt[q], bm.at(p, q)});
    }
  }
  bnd[id] = std::move(bm);
}

IncrementalEngine IncrementalEngine::build(const Digraph& g,
                                           const SeparatorTree& tree) {
  SEPSP_CHECK(tree.num_graph_vertices() == g.num_vertices());
  IncrementalEngine engine;
  engine.state_ = std::make_shared<State>();
  State& s = *engine.state_;
  s.g = &g;
  s.tree = &tree;
  s.weights.reserve(g.num_edges());
  for (const Arc& a : g.arcs()) s.weights.push_back(a.weight);
  s.bnd.resize(tree.num_nodes());
  s.per_node_edges.resize(tree.num_nodes());

  s.aug.levels = compute_levels(tree);
  s.aug.height = tree.height();
  s.aug.ell = leaf_diameter_bound(tree);

  const auto by_level = tree.ids_by_level();
  for (std::size_t lvl = by_level.size(); lvl-- > 0;) {
    for (const std::size_t id : by_level[lvl]) {
      if (tree.node(id).is_leaf()) {
        s.recompute_leaf(id);
      } else {
        s.recompute_internal(id);
      }
    }
  }

  // Stable slot layout: one aug shortcut per distinct (from, to) pair
  // (unreachable pairs kept at +inf so reweighting can activate them),
  // plus the owner CSR for value re-minimization.
  auto pack = [](Vertex a, Vertex b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  std::unordered_map<std::uint64_t, std::uint32_t> slot_index;
  s.slot_of.resize(tree.num_nodes());
  for (std::size_t id = 0; id < tree.num_nodes(); ++id) {
    s.slot_of[id].reserve(s.per_node_edges[id].size());
    for (const auto& e : s.per_node_edges[id]) {
      const auto [it, inserted] = slot_index.try_emplace(
          pack(e.from, e.to),
          static_cast<std::uint32_t>(s.aug.shortcuts.size()));
      if (inserted) s.aug.shortcuts.push_back({e.from, e.to, S::zero()});
      s.slot_of[id].push_back(it->second);
    }
  }
  // Owner CSR + initial values.
  std::vector<std::size_t> counts(s.aug.shortcuts.size(), 0);
  for (const auto& slots : s.slot_of) {
    for (const std::uint32_t slot : slots) ++counts[slot];
  }
  s.owner_offset.assign(s.aug.shortcuts.size() + 1, 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    s.owner_offset[i + 1] = s.owner_offset[i] + counts[i];
  }
  s.owner_entries.resize(s.owner_offset.back());
  std::vector<std::size_t> cursor(s.owner_offset.begin(),
                                  s.owner_offset.end() - 1);
  for (std::size_t id = 0; id < tree.num_nodes(); ++id) {
    for (std::size_t k = 0; k < s.slot_of[id].size(); ++k) {
      const std::uint32_t slot = s.slot_of[id][k];
      s.owner_entries[cursor[slot]++] = {static_cast<std::uint32_t>(id),
                                         static_cast<std::uint32_t>(k)};
      s.aug.shortcuts[slot].value = S::combine(
          s.aug.shortcuts[slot].value, s.per_node_edges[id][k].value);
    }
  }

  s.query.emplace(g, s.aug);
  return engine;
}

void IncrementalEngine::update_edge(Vertex u, Vertex v, double weight) {
  State& s = *state_;
  SEPSP_CHECK(u < s.g->num_vertices() && v < s.g->num_vertices());
  // Set every parallel (u, v) arc.
  const auto arcs = s.g->out(u);
  const std::size_t base =
      static_cast<std::size_t>(arcs.data() - s.g->arcs().data());
  bool found = false;
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (arcs[i].to == v) {
      s.weights[base + i] = weight;
      s.updated_arcs.push_back(base + i);
      found = true;
    }
  }
  SEPSP_CHECK_MSG(found, "update_edge: arc does not exist");

  // Only leaves read edge weights directly (internal nodes consume
  // their children's matrices), so seed dirtiness at the leaves whose
  // subgraph contains the arc; apply() propagates upward exactly as far
  // as matrices actually change.
  std::vector<std::size_t> pending{0};
  while (!pending.empty()) {
    const std::size_t id = pending.back();
    pending.pop_back();
    const DecompNode& t = s.tree->node(id);
    if (t.is_leaf()) {
      s.dirty.insert(id);
      continue;
    }
    for (const std::int32_t child : t.child) {
      const DecompNode& c = s.tree->node(static_cast<std::size_t>(child));
      if (std::binary_search(c.vertices.begin(), c.vertices.end(), u) &&
          std::binary_search(c.vertices.begin(), c.vertices.end(), v)) {
        pending.push_back(static_cast<std::size_t>(child));
      }
    }
  }
}

std::size_t IncrementalEngine::apply() {
  State& s = *state_;
  if (s.dirty.empty() && s.updated_arcs.empty()) return 0;
  // Recompute bottom-up, level by level. A node is recomputed when a
  // weight it reads changed (leaves) or when a child's boundary matrix
  // changed; propagation stops as soon as a recomputation reproduces the
  // old matrix, so local updates rarely climb far.
  std::vector<std::vector<std::size_t>> by_level(s.tree->height() + 1);
  std::vector<std::uint8_t> queued(s.tree->num_nodes(), 0);
  for (const std::size_t id : s.dirty) {
    by_level[s.tree->node(id).level].push_back(id);
    queued[id] = 1;
  }
  std::vector<std::size_t> recomputed;
  for (std::size_t lvl = by_level.size(); lvl-- > 0;) {
    for (const std::size_t id : by_level[lvl]) {
      const Matrix<S> old_bnd = std::move(s.bnd[id]);
      if (s.tree->node(id).is_leaf()) {
        s.recompute_leaf(id);
      } else {
        s.recompute_internal(id);
      }
      recomputed.push_back(id);
      const std::int32_t parent = s.tree->node(id).parent;
      if (parent >= 0 && !(s.bnd[id] == old_bnd)) {
        const auto pid = static_cast<std::size_t>(parent);
        if (!queued[pid]) {
          queued[pid] = 1;
          by_level[s.tree->node(pid).level].push_back(pid);
        }
      }
    }
  }

  // Re-minimize the affected slots from their owner entries and patch
  // the query buckets in place (pair structure is fixed).
  std::vector<std::uint8_t> slot_touched(s.aug.shortcuts.size(), 0);
  for (const std::size_t id : recomputed) {
    for (const std::uint32_t slot : s.slot_of[id]) slot_touched[slot] = 1;
  }
  for (std::size_t slot = 0; slot < s.aug.shortcuts.size(); ++slot) {
    if (!slot_touched[slot]) continue;
    auto value = S::zero();
    for (std::size_t o = s.owner_offset[slot]; o < s.owner_offset[slot + 1];
         ++o) {
      const auto [node, k] = s.owner_entries[o];
      value = S::combine(value, s.per_node_edges[node][k].value);
    }
    s.aug.shortcuts[slot].value = value;
    s.query->refresh_shortcut(slot);
  }
  for (const std::size_t arc : s.updated_arcs) {
    s.query->refresh_base(arc, s.weights[arc]);
  }

  const std::size_t count = recomputed.size();
  s.dirty.clear();
  s.updated_arcs.clear();
  ++s.epoch;
  return count;
}

std::uint64_t IncrementalEngine::epoch() const { return state_->epoch; }

const Digraph& IncrementalEngine::graph() const { return *state_->g; }

IncrementalEngine::Snapshot IncrementalEngine::snapshot(
    const SeparatorShortestPaths<TropicalD>::Options& options) const {
  const State& s = *state_;
  SEPSP_CHECK_MSG(s.dirty.empty() && s.updated_arcs.empty(),
                  "staged updates pending — call apply() before snapshot()");
  // The augmentation copy is what detaches the snapshot from future
  // apply() calls; the weight overrides freeze the effective base-arc
  // weighting (g itself still carries the original weights).
  return {s.epoch, SeparatorShortestPaths<TropicalD>::freeze(
                       SeparatorShortestPaths<TropicalD>::from_augmentation(
                           *s.g, s.aug, s.weights, options))};
}

double IncrementalEngine::weight(Vertex u, Vertex v) const {
  const State& s = *state_;
  const auto arcs = s.g->out(u);
  const std::size_t base =
      static_cast<std::size_t>(arcs.data() - s.g->arcs().data());
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (arcs[i].to == v) best = std::min(best, s.weights[base + i]);
  }
  return best;
}

QueryResult<TropicalD> IncrementalEngine::distances(Vertex source) const {
  SEPSP_CHECK_MSG(state_->dirty.empty() && state_->updated_arcs.empty(),
                  "staged updates pending — call apply() first");
  return state_->query->run(source);
}

const Augmentation<TropicalD>& IncrementalEngine::augmentation() const {
  return state_->aug;
}

}  // namespace sepsp
