#include "core/condensation.hpp"

#include <optional>

#include "graph/algorithms.hpp"
#include "separator/finders.hpp"

namespace sepsp {

struct CondensedReachability::State {
  std::vector<std::uint32_t> component;  ///< per original vertex
  std::size_t num_original = 0;
  Digraph dag;
  SeparatorTree tree;
  std::optional<ReachabilityEngine> engine;
};

CondensedReachability CondensedReachability::build(const Digraph& g) {
  auto state = std::make_shared<State>();
  State& s = *state;
  s.num_original = g.num_vertices();
  const SccResult scc = strongly_connected_components(g);
  s.component = scc.id;

  GraphBuilder builder(scc.count);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.out(u)) {
      if (scc.id[u] != scc.id[a.to]) {
        builder.add_edge(scc.id[u], scc.id[a.to], 1.0);
      }
    }
  }
  s.dag = std::move(builder).build();  // dedup merges parallel arcs
  const Skeleton skel(s.dag);
  s.tree = build_separator_tree(skel, make_auto_finder(skel));
  s.engine.emplace(ReachabilityEngine::build(s.dag, s.tree));

  CondensedReachability result;
  result.state_ = std::move(state);
  return result;
}

std::vector<std::uint8_t> CondensedReachability::reachable_from(
    Vertex source) const {
  const State& s = *state_;
  SEPSP_CHECK(source < s.num_original);
  const std::vector<std::uint8_t> comp_reach =
      s.engine->reachable_from(s.component[source]);
  std::vector<std::uint8_t> out(s.num_original, 0);
  for (Vertex v = 0; v < s.num_original; ++v) {
    out[v] = comp_reach[s.component[v]];
  }
  return out;
}

std::size_t CondensedReachability::num_components() const {
  return state_->dag.num_vertices();
}

std::size_t CondensedReachability::condensation_edges() const {
  return state_->dag.num_edges();
}

const ReachabilityEngine& CondensedReachability::engine() const {
  return *state_->engine;
}

}  // namespace sepsp
