// Remark 4.4: the compact shared-pairing variant of Algorithm 4.3.
//
// Algorithm 4.3 keeps one matrix per tree node and re-pairs the same
// edge pair (u1,u2),(u2,u3) once per node containing all three vertices.
// The remark observes that it suffices to keep a SINGLE weight per edge
// of U_t E_H(t) and one pairing entry per distinct triple
//   { (u1,u2,u3) : exists t with {u1,u2,u3} in V_H(t) },
// computed once up front. Each doubling iteration then costs
// O(#distinct triples) instead of sum_t |V_H(t)|^3.
//
// The shared weights dominate the per-node weights from below while
// never undercutting true distances (every relaxation composes walks
// certified inside some node, hence real walks in G), so the resulting
// shortcut set satisfies Theorem 3.1's requirements: value(u,v) is
// >= dist_G(u,v) and <= dist_{G(t)}(u,v) for every node t owning the
// pair. Tests verify both inequalities and end-to-end query equality.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/augment.hpp"
#include "core/builder_doubling.hpp"
#include "util/vertex_index.hpp"  // detail::index_of
#include "semiring/matrix.hpp"

namespace sepsp {

/// Builds E+ per Remark 4.4. Semantics: same distances as the other
/// builders; individual shortcut values may be tighter (closer to
/// dist_G) than the per-node dist_{G(t)}.
template <Semiring S>
Augmentation<S> build_augmentation_compact(const Digraph& g,
                                           const SeparatorTree& tree,
                                           const DoublingOptions& options = {}) {
  using detail::index_of;
  using detail::kNpos;
  using Value = typename S::Value;

  const pram::CostScope scope;
  Augmentation<S> aug;
  aug.levels = compute_levels(tree);
  aug.height = tree.height();
  aug.ell = leaf_diameter_bound(tree);

  const std::size_t num_nodes = tree.num_nodes();

  // V_H(t) per node.
  std::vector<std::vector<Vertex>> vh(num_nodes);
  for (std::size_t id = 0; id < num_nodes; ++id) {
    const DecompNode& t = tree.node(id);
    std::set_union(t.separator.begin(), t.separator.end(), t.boundary.begin(),
                   t.boundary.end(), std::back_inserter(vh[id]));
  }

  // --- the single shared edge table -------------------------------------
  auto pack = [](Vertex a, Vertex b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  std::unordered_map<std::uint64_t, std::uint32_t> edge_index;
  std::vector<Value> weight;            // by edge index
  std::vector<std::pair<Vertex, Vertex>> endpoints;
  auto intern = [&](Vertex a, Vertex b) -> std::uint32_t {
    const auto [it, inserted] =
        edge_index.try_emplace(pack(a, b),
                               static_cast<std::uint32_t>(weight.size()));
    if (inserted) {
      weight.push_back(a == b ? S::one() : S::zero());
      endpoints.emplace_back(a, b);
    }
    return it->second;
  };

  // Register all edges node by node; collect the distinct pairing
  // triples as (edge12, edge23, edge13) index triples.
  struct Triple {
    std::uint32_t e12, e23, e13;
  };
  std::vector<Triple> triples;
  std::unordered_set<std::uint64_t> seen_pairings;
  std::uint64_t enumerated = 0;
  for (std::size_t id = 0; id < num_nodes; ++id) {
    const auto& verts = vh[id];
    const std::size_t k = verts.size();
    std::vector<std::uint32_t> local_edges(k * k);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        local_edges[i * k + j] = intern(verts[i], verts[j]);
      }
    }
    enumerated += k * k * k;
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t mid = 0; mid < k; ++mid) {
        const std::uint32_t e1 = local_edges[i * k + mid];
        for (std::size_t j = 0; j < k; ++j) {
          const std::uint32_t e2 = local_edges[mid * k + j];
          const std::uint64_t key =
              (static_cast<std::uint64_t>(e1) << 32) | e2;
          if (seen_pairings.insert(key).second) {
            triples.push_back({e1, e2, local_edges[i * k + j]});
          }
        }
      }
    }
  }
  seen_pairings.clear();
  pram::CostMeter::charge_work(enumerated);  // one-time table construction

  // --- initialization ----------------------------------------------------
  // Direct base arcs (any node containing both endpoints also contains
  // the arc: V_H(t) is a subset of V(t)).
  for (const auto& [key, idx] : edge_index) {
    const auto [u, v] = endpoints[idx];
    double w = 0;
    if (u != v && g.find_arc(u, v, &w)) {
      weight[idx] = S::combine(weight[idx], S::from_weight(w));
    }
  }
  // Leaves: exact distances (step i of Algorithm 4.3).
  for (std::size_t id = 0; id < num_nodes; ++id) {
    const DecompNode& t = tree.node(id);
    if (!t.is_leaf()) continue;
    const std::span<const Vertex> all = t.vertices;
    Matrix<S> local(all.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
      local.at(i, i) = S::one();
      for (const Arc& a : g.out(all[i])) {
        const std::size_t j = index_of(all, a.to);
        if (j != kNpos) local.merge(i, j, S::from_weight(a.weight));
      }
    }
    floyd_warshall(local);
    for (const Vertex u : vh[id]) {
      const std::size_t iu = index_of(all, u);
      for (const Vertex v : vh[id]) {
        const std::uint32_t e = edge_index.at(pack(u, v));
        weight[e] = S::combine(weight[e], local.at(iu, index_of(all, v)));
      }
    }
  }

  // --- doubling iterations over the shared triples -----------------------
  const std::size_t n = g.num_vertices();
  const std::size_t log_n = n < 2 ? 1 : std::bit_width(n - 1);
  const std::size_t max_iterations =
      2 * log_n + 2 * aug.height + options.extra_iterations;
  std::size_t iterations_run = 0;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    ++iterations_run;
    bool changed = false;
    for (const Triple& t : triples) {
      const Value via = S::extend(weight[t.e12], weight[t.e23]);
      if (S::improves(weight[t.e13], via)) {
        weight[t.e13] = via;
        changed = true;
      }
    }
    pram::CostMeter::charge_work(triples.size());
    pram::CostMeter::charge_depth(1);
    if (options.early_exit && !changed) break;
  }
  aug.critical_depth = iterations_run;  // one synchronous phase per round

  // --- extraction: E_t = S x S u B x B per node --------------------------
  std::vector<Shortcut<S>> out;
  for (std::size_t id = 0; id < num_nodes; ++id) {
    const DecompNode& t = tree.node(id);
    auto emit = [&](std::span<const Vertex> group) {
      for (const Vertex u : group) {
        for (const Vertex v : group) {
          if (u == v) continue;
          out.push_back({u, v, weight[edge_index.at(pack(u, v))]});
        }
      }
    };
    emit(t.separator);
    emit(t.boundary);
  }
  aug.shortcuts = std::move(out);
  dedup_shortcuts<S>(aug.shortcuts);
  aug.build_cost = scope.cost();
  return aug;
}

}  // namespace sepsp
