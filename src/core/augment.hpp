// The augmentation E+ of Section 3: shortcut edges whose weights are
// exact subgraph distances, shared by both builder algorithms and the
// query engine.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/levels.hpp"
#include "graph/digraph.hpp"
#include "pram/cost_model.hpp"
#include "semiring/semiring.hpp"
#include "separator/decomposition.hpp"

namespace sepsp {

/// One shortcut edge of E+ with its semiring value.
template <Semiring S>
struct Shortcut {
  Vertex from = 0;
  Vertex to = 0;
  typename S::Value value{};
};

/// The computed augmentation: E+ plus the labeling the query needs.
/// Distances in (V, E u E+) equal distances in G, and every distance is
/// realized by a path of size <= 4*height + 2*ell + 1 (Theorem 3.1).
///
/// Value-mutation discipline: the structural fields (shortcut
/// endpoints, levels, height, ell, build_cost) are immutable after
/// construction and safe to share across threads. The shortcut *values*
/// are owned by whoever built the augmentation — a live
/// IncrementalEngine rewrites them in apply() — so concurrent readers
/// (snapshot query engines) must never resolve values through this
/// struct; they read from their own copy-on-write store
/// (LeveledQuery::shortcut_edges()).
template <Semiring S>
struct Augmentation {
  std::vector<Shortcut<S>> shortcuts;  ///< E+, deduplicated, no zero() edges
  LevelAssignment levels;
  std::uint32_t height = 0;  ///< d_G of the decomposition tree
  std::size_t ell = 1;       ///< bound on leaf min-weight diameters
  pram::Cost build_cost;     ///< work/depth spent building E+ (the meter's
                             ///< depth sums kernel phases over all nodes)
  /// Critical-path parallel depth of the build: per synchronized phase,
  /// the depth of the *largest* node kernel (the PRAM "time" of Table 1).
  std::uint64_t critical_depth = 0;

  /// Theorem 3.1's bound on the min-weight diameter of G+.
  std::size_t diameter_bound() const { return 4 * height + 2 * ell + 1; }
};

/// Sorts shortcuts by (from, to) and keeps the best value per pair,
/// dropping pairs whose value is zero() ("no path") and self loops that
/// cannot improve anything (value >= one() is useless on the diagonal).
template <Semiring S>
void dedup_shortcuts(std::vector<Shortcut<S>>& edges) {
  std::sort(edges.begin(), edges.end(),
            [](const Shortcut<S>& a, const Shortcut<S>& b) {
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < edges.size();) {
    std::size_t j = i;
    auto best = edges[i].value;
    for (++j; j < edges.size() && edges[j].from == edges[i].from &&
              edges[j].to == edges[i].to;
         ++j) {
      best = S::combine(best, edges[j].value);
    }
    const bool useless =
        !S::improves(S::zero(), best) ||  // no path
        (edges[i].from == edges[i].to && !S::improves(S::one(), best));
    if (!useless) {
      edges[out++] = {edges[i].from, edges[i].to, best};
    }
    i = j;
  }
  edges.resize(out);
}

/// ell: upper bound on the min-weight diameter of every leaf subgraph.
/// Absent negative cycles a shortest path inside a leaf uses at most
/// |V(t)| - 1 edges.
inline std::size_t leaf_diameter_bound(const SeparatorTree& tree) {
  std::size_t ell = 1;
  for (std::size_t id = 0; id < tree.num_nodes(); ++id) {
    const DecompNode& t = tree.node(id);
    if (t.is_leaf() && t.vertices.size() > 1) {
      ell = std::max(ell, t.vertices.size() - 1);
    }
  }
  return ell;
}

}  // namespace sepsp
