// Shortest-path tree extraction (paper remark ii).
//
// The engine computes exact distances; a shortest-path tree *in the
// original graph* is then recoverable in one O(m) pass: BFS from the
// source over the "tight" base arcs (u, v) with dist[u] + w(u,v) equal
// to dist[v]. The tight subgraph contains an optimal path to every
// reachable vertex (by optimality of the distances), so the BFS tree is
// a shortest-path tree. This avoids expanding shortcut edges entirely.
// Floating-point distances are compared with a relative tolerance.
#pragma once

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "util/check.hpp"

namespace sepsp {

/// A shortest-path tree: parent arc per vertex (kInvalidVertex at the
/// source and at unreachable vertices).
struct PathTree {
  Vertex source = 0;
  std::vector<Vertex> parent;

  /// Reconstructs the vertex sequence source -> ... -> target, empty if
  /// target is unreachable.
  std::vector<Vertex> path_to(Vertex target) const {
    if (target != source && parent[target] == kInvalidVertex) return {};
    std::vector<Vertex> p{target};
    while (p.back() != source) p.push_back(parent[p.back()]);
    std::reverse(p.begin(), p.end());
    return p;
  }
};

/// Extracts a shortest-path tree from exact distances (TropicalD).
/// `arc_weights`, when nonempty, overrides g's baked arc weights
/// (indexed like g.arcs()) — the reweighted-engine spelling used by the
/// serving runtime's routing rebuilds. `tolerance` absorbs
/// floating-point drift between equivalent paths; the
/// BFS-over-tight-arcs construction is acyclic even when zero-weight
/// cycles make many arcs tight.
inline PathTree extract_path_tree(const Digraph& g, Vertex source,
                                  const std::vector<double>& dist,
                                  std::span<const double> arc_weights,
                                  double tolerance = 1e-9) {
  SEPSP_CHECK(dist.size() == g.num_vertices());
  SEPSP_CHECK(source < g.num_vertices());
  SEPSP_CHECK(arc_weights.empty() || arc_weights.size() == g.num_edges());
  const Arc* arc_base = g.arcs().data();
  PathTree tree;
  tree.source = source;
  tree.parent.assign(g.num_vertices(), kInvalidVertex);
  std::vector<std::uint8_t> visited(g.num_vertices(), 0);
  std::deque<Vertex> queue{source};
  visited[source] = 1;
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop_front();
    for (const Arc& a : g.out(u)) {
      if (visited[a.to] || !std::isfinite(dist[a.to])) continue;
      const double w =
          arc_weights.empty()
              ? a.weight
              : arc_weights[static_cast<std::size_t>(&a - arc_base)];
      const double via = dist[u] + w;
      const double scale =
          std::max({std::fabs(dist[u]), std::fabs(dist[a.to]), 1.0});
      if (via > dist[a.to] + tolerance * scale) continue;  // not tight
      visited[a.to] = 1;
      tree.parent[a.to] = u;
      queue.push_back(a.to);
    }
  }
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    SEPSP_CHECK_MSG(v == source || !std::isfinite(dist[v]) || visited[v],
                    "reachable vertex not covered by tight arcs — "
                    "distances are not exact");
  }
  return tree;
}

/// Baked-weight spelling of extract_path_tree().
inline PathTree extract_path_tree(const Digraph& g, Vertex source,
                                  const std::vector<double>& dist,
                                  double tolerance = 1e-9) {
  return extract_path_tree(g, source, dist, std::span<const double>{},
                           tolerance);
}

/// Total weight of the tree path to `target` (diagnostic; matches
/// dist[target] up to accumulated tolerance).
inline double tree_path_weight(const Digraph& g, const PathTree& tree,
                               Vertex target) {
  const std::vector<Vertex> p = tree.path_to(target);
  double total = 0;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    double w = 0;
    SEPSP_CHECK(g.find_arc(p[i], p[i + 1], &w));
    total += w;
  }
  return total;
}

}  // namespace sepsp
